file(REMOVE_RECURSE
  "CMakeFiles/dmcc_baseline_test.dir/baseline/LocationCentricTest.cpp.o"
  "CMakeFiles/dmcc_baseline_test.dir/baseline/LocationCentricTest.cpp.o.d"
  "CMakeFiles/dmcc_baseline_test.dir/baseline/LocationCompilerTest.cpp.o"
  "CMakeFiles/dmcc_baseline_test.dir/baseline/LocationCompilerTest.cpp.o.d"
  "dmcc_baseline_test"
  "dmcc_baseline_test.pdb"
  "dmcc_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
