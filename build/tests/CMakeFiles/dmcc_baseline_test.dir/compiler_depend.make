# Empty compiler generated dependencies file for dmcc_baseline_test.
# This may be replaced when dependencies are built.
