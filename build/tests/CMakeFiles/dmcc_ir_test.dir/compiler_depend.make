# Empty compiler generated dependencies file for dmcc_ir_test.
# This may be replaced when dependencies are built.
