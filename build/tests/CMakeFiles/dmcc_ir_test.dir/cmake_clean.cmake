file(REMOVE_RECURSE
  "CMakeFiles/dmcc_ir_test.dir/ir/InterpTest.cpp.o"
  "CMakeFiles/dmcc_ir_test.dir/ir/InterpTest.cpp.o.d"
  "CMakeFiles/dmcc_ir_test.dir/ir/ProgramTest.cpp.o"
  "CMakeFiles/dmcc_ir_test.dir/ir/ProgramTest.cpp.o.d"
  "dmcc_ir_test"
  "dmcc_ir_test.pdb"
  "dmcc_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
