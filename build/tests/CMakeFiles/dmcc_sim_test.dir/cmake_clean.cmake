file(REMOVE_RECURSE
  "CMakeFiles/dmcc_sim_test.dir/sim/SimulatorTest.cpp.o"
  "CMakeFiles/dmcc_sim_test.dir/sim/SimulatorTest.cpp.o.d"
  "dmcc_sim_test"
  "dmcc_sim_test.pdb"
  "dmcc_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
