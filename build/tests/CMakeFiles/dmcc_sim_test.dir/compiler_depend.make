# Empty compiler generated dependencies file for dmcc_sim_test.
# This may be replaced when dependencies are built.
