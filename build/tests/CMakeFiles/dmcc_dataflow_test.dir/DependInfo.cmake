
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dataflow/LWTPropertyTest.cpp" "tests/CMakeFiles/dmcc_dataflow_test.dir/dataflow/LWTPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_dataflow_test.dir/dataflow/LWTPropertyTest.cpp.o.d"
  "/root/repo/tests/dataflow/LastWriteTreeTest.cpp" "tests/CMakeFiles/dmcc_dataflow_test.dir/dataflow/LastWriteTreeTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_dataflow_test.dir/dataflow/LastWriteTreeTest.cpp.o.d"
  "/root/repo/tests/dataflow/StrideTest.cpp" "tests/CMakeFiles/dmcc_dataflow_test.dir/dataflow/StrideTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_dataflow_test.dir/dataflow/StrideTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/dmcc_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/dmcc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dmcc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/dmcc_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
