# Empty compiler generated dependencies file for dmcc_dataflow_test.
# This may be replaced when dependencies are built.
