file(REMOVE_RECURSE
  "CMakeFiles/dmcc_dataflow_test.dir/dataflow/LWTPropertyTest.cpp.o"
  "CMakeFiles/dmcc_dataflow_test.dir/dataflow/LWTPropertyTest.cpp.o.d"
  "CMakeFiles/dmcc_dataflow_test.dir/dataflow/LastWriteTreeTest.cpp.o"
  "CMakeFiles/dmcc_dataflow_test.dir/dataflow/LastWriteTreeTest.cpp.o.d"
  "CMakeFiles/dmcc_dataflow_test.dir/dataflow/StrideTest.cpp.o"
  "CMakeFiles/dmcc_dataflow_test.dir/dataflow/StrideTest.cpp.o.d"
  "dmcc_dataflow_test"
  "dmcc_dataflow_test.pdb"
  "dmcc_dataflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_dataflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
