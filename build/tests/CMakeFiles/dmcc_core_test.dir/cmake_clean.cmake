file(REMOVE_RECURSE
  "CMakeFiles/dmcc_core_test.dir/core/SpecParserTest.cpp.o"
  "CMakeFiles/dmcc_core_test.dir/core/SpecParserTest.cpp.o.d"
  "dmcc_core_test"
  "dmcc_core_test.pdb"
  "dmcc_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
