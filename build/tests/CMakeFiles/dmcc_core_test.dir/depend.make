# Empty dependencies file for dmcc_core_test.
# This may be replaced when dependencies are built.
