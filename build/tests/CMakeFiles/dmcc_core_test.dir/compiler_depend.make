# Empty compiler generated dependencies file for dmcc_core_test.
# This may be replaced when dependencies are built.
