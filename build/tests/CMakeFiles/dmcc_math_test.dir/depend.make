# Empty dependencies file for dmcc_math_test.
# This may be replaced when dependencies are built.
