file(REMOVE_RECURSE
  "CMakeFiles/dmcc_math_test.dir/math/AffineTest.cpp.o"
  "CMakeFiles/dmcc_math_test.dir/math/AffineTest.cpp.o.d"
  "CMakeFiles/dmcc_math_test.dir/math/CoalesceTest.cpp.o"
  "CMakeFiles/dmcc_math_test.dir/math/CoalesceTest.cpp.o.d"
  "CMakeFiles/dmcc_math_test.dir/math/LexOptTest.cpp.o"
  "CMakeFiles/dmcc_math_test.dir/math/LexOptTest.cpp.o.d"
  "CMakeFiles/dmcc_math_test.dir/math/ProjectionPropertyTest.cpp.o"
  "CMakeFiles/dmcc_math_test.dir/math/ProjectionPropertyTest.cpp.o.d"
  "CMakeFiles/dmcc_math_test.dir/math/RegionPropertyTest.cpp.o"
  "CMakeFiles/dmcc_math_test.dir/math/RegionPropertyTest.cpp.o.d"
  "CMakeFiles/dmcc_math_test.dir/math/RegionTest.cpp.o"
  "CMakeFiles/dmcc_math_test.dir/math/RegionTest.cpp.o.d"
  "CMakeFiles/dmcc_math_test.dir/math/SpaceTest.cpp.o"
  "CMakeFiles/dmcc_math_test.dir/math/SpaceTest.cpp.o.d"
  "CMakeFiles/dmcc_math_test.dir/math/SystemTest.cpp.o"
  "CMakeFiles/dmcc_math_test.dir/math/SystemTest.cpp.o.d"
  "dmcc_math_test"
  "dmcc_math_test.pdb"
  "dmcc_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
