
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/math/AffineTest.cpp" "tests/CMakeFiles/dmcc_math_test.dir/math/AffineTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_math_test.dir/math/AffineTest.cpp.o.d"
  "/root/repo/tests/math/CoalesceTest.cpp" "tests/CMakeFiles/dmcc_math_test.dir/math/CoalesceTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_math_test.dir/math/CoalesceTest.cpp.o.d"
  "/root/repo/tests/math/LexOptTest.cpp" "tests/CMakeFiles/dmcc_math_test.dir/math/LexOptTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_math_test.dir/math/LexOptTest.cpp.o.d"
  "/root/repo/tests/math/ProjectionPropertyTest.cpp" "tests/CMakeFiles/dmcc_math_test.dir/math/ProjectionPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_math_test.dir/math/ProjectionPropertyTest.cpp.o.d"
  "/root/repo/tests/math/RegionPropertyTest.cpp" "tests/CMakeFiles/dmcc_math_test.dir/math/RegionPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_math_test.dir/math/RegionPropertyTest.cpp.o.d"
  "/root/repo/tests/math/RegionTest.cpp" "tests/CMakeFiles/dmcc_math_test.dir/math/RegionTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_math_test.dir/math/RegionTest.cpp.o.d"
  "/root/repo/tests/math/SpaceTest.cpp" "tests/CMakeFiles/dmcc_math_test.dir/math/SpaceTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_math_test.dir/math/SpaceTest.cpp.o.d"
  "/root/repo/tests/math/SystemTest.cpp" "tests/CMakeFiles/dmcc_math_test.dir/math/SystemTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_math_test.dir/math/SystemTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/dmcc_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
