# Empty compiler generated dependencies file for dmcc_comm_test.
# This may be replaced when dependencies are built.
