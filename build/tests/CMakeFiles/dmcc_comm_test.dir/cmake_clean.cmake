file(REMOVE_RECURSE
  "CMakeFiles/dmcc_comm_test.dir/comm/CommSetTest.cpp.o"
  "CMakeFiles/dmcc_comm_test.dir/comm/CommSetTest.cpp.o.d"
  "CMakeFiles/dmcc_comm_test.dir/comm/FinalizationTest.cpp.o"
  "CMakeFiles/dmcc_comm_test.dir/comm/FinalizationTest.cpp.o.d"
  "dmcc_comm_test"
  "dmcc_comm_test.pdb"
  "dmcc_comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
