file(REMOVE_RECURSE
  "CMakeFiles/dmcc_integration_test.dir/integration/EndToEndTest.cpp.o"
  "CMakeFiles/dmcc_integration_test.dir/integration/EndToEndTest.cpp.o.d"
  "CMakeFiles/dmcc_integration_test.dir/integration/FailureModeTest.cpp.o"
  "CMakeFiles/dmcc_integration_test.dir/integration/FailureModeTest.cpp.o.d"
  "CMakeFiles/dmcc_integration_test.dir/integration/FuzzPipelineTest.cpp.o"
  "CMakeFiles/dmcc_integration_test.dir/integration/FuzzPipelineTest.cpp.o.d"
  "CMakeFiles/dmcc_integration_test.dir/integration/Grid2DTest.cpp.o"
  "CMakeFiles/dmcc_integration_test.dir/integration/Grid2DTest.cpp.o.d"
  "CMakeFiles/dmcc_integration_test.dir/integration/GroupReuseTest.cpp.o"
  "CMakeFiles/dmcc_integration_test.dir/integration/GroupReuseTest.cpp.o.d"
  "CMakeFiles/dmcc_integration_test.dir/integration/IfConversionTest.cpp.o"
  "CMakeFiles/dmcc_integration_test.dir/integration/IfConversionTest.cpp.o.d"
  "dmcc_integration_test"
  "dmcc_integration_test.pdb"
  "dmcc_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
