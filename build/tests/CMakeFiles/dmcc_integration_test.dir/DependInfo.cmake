
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/EndToEndTest.cpp" "tests/CMakeFiles/dmcc_integration_test.dir/integration/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_integration_test.dir/integration/EndToEndTest.cpp.o.d"
  "/root/repo/tests/integration/FailureModeTest.cpp" "tests/CMakeFiles/dmcc_integration_test.dir/integration/FailureModeTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_integration_test.dir/integration/FailureModeTest.cpp.o.d"
  "/root/repo/tests/integration/FuzzPipelineTest.cpp" "tests/CMakeFiles/dmcc_integration_test.dir/integration/FuzzPipelineTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_integration_test.dir/integration/FuzzPipelineTest.cpp.o.d"
  "/root/repo/tests/integration/Grid2DTest.cpp" "tests/CMakeFiles/dmcc_integration_test.dir/integration/Grid2DTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_integration_test.dir/integration/Grid2DTest.cpp.o.d"
  "/root/repo/tests/integration/GroupReuseTest.cpp" "tests/CMakeFiles/dmcc_integration_test.dir/integration/GroupReuseTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_integration_test.dir/integration/GroupReuseTest.cpp.o.d"
  "/root/repo/tests/integration/IfConversionTest.cpp" "tests/CMakeFiles/dmcc_integration_test.dir/integration/IfConversionTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_integration_test.dir/integration/IfConversionTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dmcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dmcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/dmcc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dmcc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/dmcc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dmcc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/dmcc_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dmcc_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/dmcc_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
