# Empty dependencies file for dmcc_integration_test.
# This may be replaced when dependencies are built.
