file(REMOVE_RECURSE
  "CMakeFiles/dmcc_codegen_test.dir/codegen/AggregationTest.cpp.o"
  "CMakeFiles/dmcc_codegen_test.dir/codegen/AggregationTest.cpp.o.d"
  "CMakeFiles/dmcc_codegen_test.dir/codegen/LoopSplitTest.cpp.o"
  "CMakeFiles/dmcc_codegen_test.dir/codegen/LoopSplitTest.cpp.o.d"
  "CMakeFiles/dmcc_codegen_test.dir/codegen/PrinterTest.cpp.o"
  "CMakeFiles/dmcc_codegen_test.dir/codegen/PrinterTest.cpp.o.d"
  "CMakeFiles/dmcc_codegen_test.dir/codegen/ScanTest.cpp.o"
  "CMakeFiles/dmcc_codegen_test.dir/codegen/ScanTest.cpp.o.d"
  "dmcc_codegen_test"
  "dmcc_codegen_test.pdb"
  "dmcc_codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
