# Empty compiler generated dependencies file for dmcc_codegen_test.
# This may be replaced when dependencies are built.
