file(REMOVE_RECURSE
  "CMakeFiles/dmcc_decomp_test.dir/decomp/DecompositionTest.cpp.o"
  "CMakeFiles/dmcc_decomp_test.dir/decomp/DecompositionTest.cpp.o.d"
  "dmcc_decomp_test"
  "dmcc_decomp_test.pdb"
  "dmcc_decomp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_decomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
