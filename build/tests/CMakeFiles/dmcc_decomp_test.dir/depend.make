# Empty dependencies file for dmcc_decomp_test.
# This may be replaced when dependencies are built.
