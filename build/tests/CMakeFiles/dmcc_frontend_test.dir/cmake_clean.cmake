file(REMOVE_RECURSE
  "CMakeFiles/dmcc_frontend_test.dir/frontend/LexerTest.cpp.o"
  "CMakeFiles/dmcc_frontend_test.dir/frontend/LexerTest.cpp.o.d"
  "dmcc_frontend_test"
  "dmcc_frontend_test.pdb"
  "dmcc_frontend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
