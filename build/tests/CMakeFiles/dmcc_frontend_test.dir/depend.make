# Empty dependencies file for dmcc_frontend_test.
# This may be replaced when dependencies are built.
