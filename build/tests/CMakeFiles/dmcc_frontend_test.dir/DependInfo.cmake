
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/frontend/LexerTest.cpp" "tests/CMakeFiles/dmcc_frontend_test.dir/frontend/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/dmcc_frontend_test.dir/frontend/LexerTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/dmcc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dmcc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/dmcc_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
