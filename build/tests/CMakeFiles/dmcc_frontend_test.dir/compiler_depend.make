# Empty compiler generated dependencies file for dmcc_frontend_test.
# This may be replaced when dependencies are built.
