# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dmcc_math_test[1]_include.cmake")
include("/root/repo/build/tests/dmcc_ir_test[1]_include.cmake")
include("/root/repo/build/tests/dmcc_dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/dmcc_decomp_test[1]_include.cmake")
include("/root/repo/build/tests/dmcc_comm_test[1]_include.cmake")
include("/root/repo/build/tests/dmcc_codegen_test[1]_include.cmake")
include("/root/repo/build/tests/dmcc_integration_test[1]_include.cmake")
include("/root/repo/build/tests/dmcc_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/dmcc_core_test[1]_include.cmake")
include("/root/repo/build/tests/dmcc_sim_test[1]_include.cmake")
include("/root/repo/build/tests/dmcc_frontend_test[1]_include.cmake")
