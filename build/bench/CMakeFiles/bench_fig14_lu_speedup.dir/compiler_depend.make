# Empty compiler generated dependencies file for bench_fig14_lu_speedup.
# This may be replaced when dependencies are built.
