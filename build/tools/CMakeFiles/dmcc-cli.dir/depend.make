# Empty dependencies file for dmcc-cli.
# This may be replaced when dependencies are built.
