file(REMOVE_RECURSE
  "CMakeFiles/dmcc-cli.dir/dmcc-cli.cpp.o"
  "CMakeFiles/dmcc-cli.dir/dmcc-cli.cpp.o.d"
  "dmcc-cli"
  "dmcc-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
