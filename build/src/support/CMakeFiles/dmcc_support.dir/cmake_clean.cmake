file(REMOVE_RECURSE
  "CMakeFiles/dmcc_support.dir/IntOps.cpp.o"
  "CMakeFiles/dmcc_support.dir/IntOps.cpp.o.d"
  "libdmcc_support.a"
  "libdmcc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
