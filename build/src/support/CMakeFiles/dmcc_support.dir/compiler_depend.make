# Empty compiler generated dependencies file for dmcc_support.
# This may be replaced when dependencies are built.
