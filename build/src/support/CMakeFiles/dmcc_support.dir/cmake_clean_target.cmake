file(REMOVE_RECURSE
  "libdmcc_support.a"
)
