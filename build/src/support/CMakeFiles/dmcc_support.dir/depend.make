# Empty dependencies file for dmcc_support.
# This may be replaced when dependencies are built.
