file(REMOVE_RECURSE
  "libdmcc_sim.a"
)
