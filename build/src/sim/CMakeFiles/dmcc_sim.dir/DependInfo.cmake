
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Simulator.cpp" "src/sim/CMakeFiles/dmcc_sim.dir/Simulator.cpp.o" "gcc" "src/sim/CMakeFiles/dmcc_sim.dir/Simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dmcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dmcc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/dmcc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dmcc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/dmcc_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/dmcc_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/dmcc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/dmcc_math.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
