file(REMOVE_RECURSE
  "CMakeFiles/dmcc_sim.dir/Simulator.cpp.o"
  "CMakeFiles/dmcc_sim.dir/Simulator.cpp.o.d"
  "libdmcc_sim.a"
  "libdmcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
