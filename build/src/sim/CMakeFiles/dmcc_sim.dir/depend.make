# Empty dependencies file for dmcc_sim.
# This may be replaced when dependencies are built.
