file(REMOVE_RECURSE
  "CMakeFiles/dmcc_ir.dir/Interp.cpp.o"
  "CMakeFiles/dmcc_ir.dir/Interp.cpp.o.d"
  "CMakeFiles/dmcc_ir.dir/Program.cpp.o"
  "CMakeFiles/dmcc_ir.dir/Program.cpp.o.d"
  "libdmcc_ir.a"
  "libdmcc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
