file(REMOVE_RECURSE
  "libdmcc_ir.a"
)
