# Empty dependencies file for dmcc_ir.
# This may be replaced when dependencies are built.
