file(REMOVE_RECURSE
  "CMakeFiles/dmcc_comm.dir/CommSet.cpp.o"
  "CMakeFiles/dmcc_comm.dir/CommSet.cpp.o.d"
  "libdmcc_comm.a"
  "libdmcc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
