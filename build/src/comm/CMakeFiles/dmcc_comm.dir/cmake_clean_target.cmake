file(REMOVE_RECURSE
  "libdmcc_comm.a"
)
