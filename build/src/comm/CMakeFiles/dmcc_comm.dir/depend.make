# Empty dependencies file for dmcc_comm.
# This may be replaced when dependencies are built.
