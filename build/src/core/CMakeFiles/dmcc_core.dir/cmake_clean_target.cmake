file(REMOVE_RECURSE
  "libdmcc_core.a"
)
