file(REMOVE_RECURSE
  "CMakeFiles/dmcc_core.dir/Compiler.cpp.o"
  "CMakeFiles/dmcc_core.dir/Compiler.cpp.o.d"
  "CMakeFiles/dmcc_core.dir/SpecParser.cpp.o"
  "CMakeFiles/dmcc_core.dir/SpecParser.cpp.o.d"
  "libdmcc_core.a"
  "libdmcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
