# Empty dependencies file for dmcc_core.
# This may be replaced when dependencies are built.
