file(REMOVE_RECURSE
  "CMakeFiles/dmcc_codegen.dir/CodeGen.cpp.o"
  "CMakeFiles/dmcc_codegen.dir/CodeGen.cpp.o.d"
  "CMakeFiles/dmcc_codegen.dir/LoopSplit.cpp.o"
  "CMakeFiles/dmcc_codegen.dir/LoopSplit.cpp.o.d"
  "CMakeFiles/dmcc_codegen.dir/Printer.cpp.o"
  "CMakeFiles/dmcc_codegen.dir/Printer.cpp.o.d"
  "CMakeFiles/dmcc_codegen.dir/Scan.cpp.o"
  "CMakeFiles/dmcc_codegen.dir/Scan.cpp.o.d"
  "libdmcc_codegen.a"
  "libdmcc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
