file(REMOVE_RECURSE
  "libdmcc_codegen.a"
)
