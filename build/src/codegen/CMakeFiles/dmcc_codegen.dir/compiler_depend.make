# Empty compiler generated dependencies file for dmcc_codegen.
# This may be replaced when dependencies are built.
