file(REMOVE_RECURSE
  "CMakeFiles/dmcc_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/dmcc_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/dmcc_frontend.dir/Parser.cpp.o"
  "CMakeFiles/dmcc_frontend.dir/Parser.cpp.o.d"
  "libdmcc_frontend.a"
  "libdmcc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
