file(REMOVE_RECURSE
  "libdmcc_frontend.a"
)
