# Empty compiler generated dependencies file for dmcc_frontend.
# This may be replaced when dependencies are built.
