file(REMOVE_RECURSE
  "libdmcc_baseline.a"
)
