file(REMOVE_RECURSE
  "CMakeFiles/dmcc_baseline.dir/LocationCentric.cpp.o"
  "CMakeFiles/dmcc_baseline.dir/LocationCentric.cpp.o.d"
  "CMakeFiles/dmcc_baseline.dir/LocationCompiler.cpp.o"
  "CMakeFiles/dmcc_baseline.dir/LocationCompiler.cpp.o.d"
  "libdmcc_baseline.a"
  "libdmcc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
