# Empty dependencies file for dmcc_baseline.
# This may be replaced when dependencies are built.
