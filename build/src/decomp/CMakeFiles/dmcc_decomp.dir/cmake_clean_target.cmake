file(REMOVE_RECURSE
  "libdmcc_decomp.a"
)
