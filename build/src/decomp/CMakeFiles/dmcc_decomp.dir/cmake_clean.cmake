file(REMOVE_RECURSE
  "CMakeFiles/dmcc_decomp.dir/Decomposition.cpp.o"
  "CMakeFiles/dmcc_decomp.dir/Decomposition.cpp.o.d"
  "libdmcc_decomp.a"
  "libdmcc_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
