# Empty compiler generated dependencies file for dmcc_decomp.
# This may be replaced when dependencies are built.
