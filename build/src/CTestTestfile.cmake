# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("math")
subdirs("ir")
subdirs("frontend")
subdirs("dataflow")
subdirs("decomp")
subdirs("comm")
subdirs("codegen")
subdirs("core")
subdirs("sim")
subdirs("baseline")
