file(REMOVE_RECURSE
  "CMakeFiles/dmcc_math.dir/Affine.cpp.o"
  "CMakeFiles/dmcc_math.dir/Affine.cpp.o.d"
  "CMakeFiles/dmcc_math.dir/LexOpt.cpp.o"
  "CMakeFiles/dmcc_math.dir/LexOpt.cpp.o.d"
  "CMakeFiles/dmcc_math.dir/Region.cpp.o"
  "CMakeFiles/dmcc_math.dir/Region.cpp.o.d"
  "CMakeFiles/dmcc_math.dir/Space.cpp.o"
  "CMakeFiles/dmcc_math.dir/Space.cpp.o.d"
  "CMakeFiles/dmcc_math.dir/System.cpp.o"
  "CMakeFiles/dmcc_math.dir/System.cpp.o.d"
  "libdmcc_math.a"
  "libdmcc_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
