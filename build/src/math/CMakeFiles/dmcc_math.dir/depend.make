# Empty dependencies file for dmcc_math.
# This may be replaced when dependencies are built.
