
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/Affine.cpp" "src/math/CMakeFiles/dmcc_math.dir/Affine.cpp.o" "gcc" "src/math/CMakeFiles/dmcc_math.dir/Affine.cpp.o.d"
  "/root/repo/src/math/LexOpt.cpp" "src/math/CMakeFiles/dmcc_math.dir/LexOpt.cpp.o" "gcc" "src/math/CMakeFiles/dmcc_math.dir/LexOpt.cpp.o.d"
  "/root/repo/src/math/Region.cpp" "src/math/CMakeFiles/dmcc_math.dir/Region.cpp.o" "gcc" "src/math/CMakeFiles/dmcc_math.dir/Region.cpp.o.d"
  "/root/repo/src/math/Space.cpp" "src/math/CMakeFiles/dmcc_math.dir/Space.cpp.o" "gcc" "src/math/CMakeFiles/dmcc_math.dir/Space.cpp.o.d"
  "/root/repo/src/math/System.cpp" "src/math/CMakeFiles/dmcc_math.dir/System.cpp.o" "gcc" "src/math/CMakeFiles/dmcc_math.dir/System.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
