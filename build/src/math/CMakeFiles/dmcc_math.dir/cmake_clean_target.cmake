file(REMOVE_RECURSE
  "libdmcc_math.a"
)
