# Empty dependencies file for dmcc_dataflow.
# This may be replaced when dependencies are built.
