file(REMOVE_RECURSE
  "libdmcc_dataflow.a"
)
