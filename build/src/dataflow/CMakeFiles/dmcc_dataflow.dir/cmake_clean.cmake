file(REMOVE_RECURSE
  "CMakeFiles/dmcc_dataflow.dir/LastWriteTree.cpp.o"
  "CMakeFiles/dmcc_dataflow.dir/LastWriteTree.cpp.o.d"
  "libdmcc_dataflow.a"
  "libdmcc_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmcc_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
