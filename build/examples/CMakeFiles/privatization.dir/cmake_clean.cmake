file(REMOVE_RECURSE
  "CMakeFiles/privatization.dir/privatization.cpp.o"
  "CMakeFiles/privatization.dir/privatization.cpp.o.d"
  "privatization"
  "privatization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privatization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
