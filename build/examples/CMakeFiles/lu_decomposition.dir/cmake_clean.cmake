file(REMOVE_RECURSE
  "CMakeFiles/lu_decomposition.dir/lu_decomposition.cpp.o"
  "CMakeFiles/lu_decomposition.dir/lu_decomposition.cpp.o.d"
  "lu_decomposition"
  "lu_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
