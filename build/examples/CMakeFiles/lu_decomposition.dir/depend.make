# Empty dependencies file for lu_decomposition.
# This may be replaced when dependencies are built.
