//===- bench/bench_sim_scale.cpp ------------------------------*- C++ -*-===//
//
// Scaling study for the event-queue simulator engine (DESIGN.md section
// 14): Figure 14's LU decomposition in performance mode (collapsed
// inner loops), weak-scaled from P = 64 / N = 512 up to P = 4096 /
// N = 8192. At every cell both engines run the identical schedule; the
// event leg is checked bit-identical to the round-robin leg — makespan
// and every counter — before either wall time is reported, so
// throughput can never be bought with a divergent schedule. The figure
// of merit is simulated events per second of host wall time: the knee
// in events/sec as P grows is the simulator's cache footprint, not
// scheduling overhead, so the event engine's job at this scale is to
// sustain the run — O(1) message matching and amortized checkpoint
// gates keep it at parity with the round engine on compute-dominated
// programs while never re-polling a blocked processor. Output is one
// JSON object (committed as BENCH_sim_scale.json at the repo root).
//
// Set DMCC_BENCH_SMALL=1 to run at reduced scale, or override the
// sweep with DMCC_BENCH_CELLS="P:N,P:N,...".
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sim/Simulator.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

using namespace dmcc;

namespace {

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

SimOptions simOpts(IntT Procs, IntT N, SimEngine Engine) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = {{"N", N}};
  SO.Functional = false;
  SO.CollapseLoops = true;
  SO.Engine = Engine;
  return SO;
}

struct Leg {
  double WallSeconds = 0;
  SimResult R;
};

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Leg runLeg(const Program &P, const CompiledProgram &CP,
           const CompileSpec &Spec, IntT Procs, IntT N, SimEngine Engine) {
  Simulator Sim(P, CP, Spec, simOpts(Procs, N, Engine));
  Leg L;
  double T0 = now();
  L.R = Sim.run();
  L.WallSeconds = now() - T0;
  return L;
}

bool identical(const SimResult &A, const SimResult &B) {
  return A.MakespanSeconds == B.MakespanSeconds && A.Messages == B.Messages &&
         A.Words == B.Words && A.Flops == B.Flops &&
         A.TotalEvents == B.TotalEvents &&
         A.ComputeIterations == B.ComputeIterations;
}

using CellList = std::vector<std::pair<IntT, IntT>>;

// "P:N,P:N,..." override for the sweep, e.g. DMCC_BENCH_CELLS=1024:2048.
CellList parseCells(const char *Spec) {
  CellList Cells;
  while (*Spec) {
    char *End = nullptr;
    IntT Procs = std::strtoll(Spec, &End, 10);
    if (End == Spec || *End != ':')
      break;
    Spec = End + 1;
    IntT N = std::strtoll(Spec, &End, 10);
    if (End == Spec)
      break;
    Cells.emplace_back(Procs, N);
    Spec = *End == ',' ? End + 1 : End;
  }
  return Cells;
}

} // namespace

int main() {
  const bool Small = std::getenv("DMCC_BENCH_SMALL") != nullptr;
  CellList Cells = Small ? CellList{{16, 64}, {64, 128}}
                         : CellList{{64, 512},
                                    {256, 1024},
                                    {1024, 2048},
                                    {4096, 8192}};
  if (const char *Env = std::getenv("DMCC_BENCH_CELLS"))
    Cells = parseCells(Env);

  Program P = parseProgramOrDie(LUSource);
  std::printf("{\n");
  std::printf("  \"bench\": \"sim_scale\",\n");
  std::printf("  \"mode\": \"%s\",\n", Small ? "small" : "full");
  std::printf("  \"program\": \"lu\",\n");
  std::printf("  \"functional\": false,\n");
  std::printf("  \"cells\": [\n");
  for (std::size_t I = 0; I != Cells.size(); ++I) {
    const IntT Procs = Cells[I].first;
    const IntT N = Cells[I].second;
    CompileSpec Spec = luSpec(P);
    CompiledProgram CP = compile(P, Spec);
    if (!CP.Ok) {
      std::fprintf(stderr, "compile failed: %s\n", CP.ErrorMessage.c_str());
      return 1;
    }
    Leg Rounds = runLeg(P, CP, Spec, Procs, N, SimEngine::Rounds);
    Leg Event = runLeg(P, CP, Spec, Procs, N, SimEngine::Event);
    if (!Rounds.R.Ok || !Event.R.Ok) {
      std::fprintf(stderr, "P=%lld failed: %s\n",
                   static_cast<long long>(Procs),
                   (Rounds.R.Ok ? Event.R : Rounds.R).Error.c_str());
      return 1;
    }
    if (!identical(Rounds.R, Event.R)) {
      std::fprintf(stderr,
                   "P=%lld: event engine diverges from the round engine\n",
                   static_cast<long long>(Procs));
      return 1;
    }
    const double REv = Rounds.WallSeconds > 0
                           ? Rounds.R.TotalEvents / Rounds.WallSeconds
                           : 0.0;
    const double EEv =
        Event.WallSeconds > 0 ? Event.R.TotalEvents / Event.WallSeconds : 0.0;
    std::printf("    {\"procs\": %lld, \"n\": %lld, "
                "\"total_events\": %llu, \"makespan_seconds\": %.6f,\n"
                "     \"rounds_wall_seconds\": %.6f, "
                "\"rounds_events_per_sec\": %.0f,\n"
                "     \"event_wall_seconds\": %.6f, "
                "\"event_events_per_sec\": %.0f,\n"
                "     \"event_speedup\": %.3f, "
                "\"identical_to_rounds\": true}%s\n",
                static_cast<long long>(Procs), static_cast<long long>(N),
                static_cast<unsigned long long>(Event.R.TotalEvents),
                Event.R.MakespanSeconds, Rounds.WallSeconds, REv,
                Event.WallSeconds, EEv,
                Event.WallSeconds > 0 ? Rounds.WallSeconds / Event.WallSeconds
                                      : 0.0,
                I + 1 == Cells.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}
