//===- bench/bench_overlap.cpp --------------------------------*- C++ -*-===//
//
// Communication–computation overlap study (DESIGN.md §11): LU
// decomposition and the 1-D Jacobi stencil pipeline, simulated with
// early sends off and on at the default cost model. Performance-mode
// legs report the simulated makespan reduction and the per-run overlap
// telemetry (deferred / exposed / hidden NIC seconds); a small
// functional leg per program verifies the early schedule leaves every
// final array element bit-identical before any number is reported.
// Output is one JSON object; snapshotted as BENCH_overlap.json.
//
// Set DMCC_BENCH_SMALL=1 to run at reduced scale.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

using namespace dmcc;

namespace {

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

const char *StencilSource = R"(
param T;
param N;
array X[N + 1];
array Y[N + 1];
for t = 0 to T {
  for i = 1 to N - 1 {
    Y[i] = X[i - 1] + X[i] + X[i + 1];
  }
  for i2 = 1 to N - 1 {
    X[i2] = Y[i2];
  }
}
)";

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

CompileSpec stencilSpec(const Program &P, IntT Block) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, Block)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, Block)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, Block, /*OverlapLo=*/1,
                                        /*OverlapHi=*/1));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, Block));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, Block));
  Spec.FinalData.emplace(1, blockData(P, 1, 0, Block));
  return Spec;
}

SimOptions simOpts(IntT Procs, std::map<std::string, IntT> Params,
                   bool Functional) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = std::move(Params);
  SO.Functional = Functional;
  SO.CollapseLoops = !Functional;
  return SO;
}

struct ProgramCase {
  std::string Name;
  Program P;
  CompileSpec Spec;
  IntT Procs;
  std::map<std::string, IntT> PerfParams;
  std::map<std::string, IntT> FuncParams;
};

/// Runs functional legs with early sends off and on and checks every
/// element of every finalized array is bit-identical. A divergence is
/// fatal: no makespan number is worth reporting from a wrong schedule.
bool verifyIdenticalArrays(const ProgramCase &C, const CompiledProgram &Off,
                           const CompiledProgram &On) {
  Simulator A(C.P, Off, C.Spec, simOpts(C.Procs, C.FuncParams, true));
  Simulator B(C.P, On, C.Spec, simOpts(C.Procs, C.FuncParams, true));
  SimResult RA = A.run(), RB = B.run();
  if (!RA.Ok || !RB.Ok) {
    std::fprintf(stderr, "%s: functional leg failed: %s%s\n",
                 C.Name.c_str(), RA.Error.c_str(), RB.Error.c_str());
    return false;
  }
  std::vector<IntT> Env(C.P.space().size(), 0);
  for (unsigned I = 0; I != C.P.space().size(); ++I)
    if (C.P.space().kind(I) == VarKind::Param)
      Env[I] = C.FuncParams.at(C.P.space().name(I));
  for (const auto &[AId, FD] : C.Spec.FinalData) {
    (void)FD;
    std::vector<IntT> Sizes;
    for (const AffineExpr &D : C.P.array(AId).DimSizes)
      Sizes.push_back(D.evaluate(Env));
    std::vector<IntT> Idx(Sizes.size(), 0);
    bool Done = Sizes.empty();
    while (!Done) {
      if (A.finalValue(AId, Idx) != B.finalValue(AId, Idx)) {
        std::fprintf(stderr, "%s: array %u diverges with early sends\n",
                     C.Name.c_str(), AId);
        return false;
      }
      for (unsigned K = Idx.size(); K-- > 0;) {
        if (++Idx[K] < Sizes[K])
          break;
        Idx[K] = 0;
        if (K == 0)
          Done = true;
      }
    }
  }
  return true;
}

} // namespace

int main() {
  const bool Small = std::getenv("DMCC_BENCH_SMALL") != nullptr;

  std::vector<ProgramCase> Cases;
  {
    ProgramCase LU;
    LU.Name = "lu";
    LU.P = parseProgramOrDie(LUSource);
    LU.Spec = luSpec(LU.P);
    LU.Procs = Small ? 8 : 16;
    LU.PerfParams = {{"N", Small ? 96 : 256}};
    LU.FuncParams = {{"N", 32}};
    Cases.push_back(std::move(LU));

    ProgramCase St;
    St.Name = "stencil";
    St.P = parseProgramOrDie(StencilSource);
    St.Spec = stencilSpec(St.P, 32);
    St.Procs = 8;
    St.PerfParams = {{"T", Small ? 8 : 16}, {"N", 255}};
    St.FuncParams = {{"T", 5}, {"N", 255}};
    Cases.push_back(std::move(St));
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"overlap\",\n");
  std::printf("  \"mode\": \"%s\",\n", Small ? "small" : "full");
  std::printf("  \"programs\": [\n");
  for (std::size_t CI = 0; CI != Cases.size(); ++CI) {
    const ProgramCase &C = Cases[CI];
    CompilerOptions OptsOff, OptsOn;
    OptsOn.EarlySends = true;
    CompiledProgram Off = compile(C.P, C.Spec, OptsOff);
    CompiledProgram On = compile(C.P, C.Spec, OptsOn);
    if (!Off.Ok || !On.Ok) {
      std::fprintf(stderr, "%s: compile failed\n", C.Name.c_str());
      return 1;
    }
    if (!verifyIdenticalArrays(C, Off, On))
      return 1;

    Simulator SimOff(C.P, Off, C.Spec,
                     simOpts(C.Procs, C.PerfParams, false));
    Simulator SimOn(C.P, On, C.Spec,
                    simOpts(C.Procs, C.PerfParams, false));
    SimResult ROff = SimOff.run();
    SimResult ROn = SimOn.run();
    if (!ROff.Ok || !ROn.Ok) {
      std::fprintf(stderr, "%s: perf leg failed: %s%s\n", C.Name.c_str(),
                   ROff.Error.c_str(), ROn.Error.c_str());
      return 1;
    }
    double Reduction =
        ROff.MakespanSeconds > 0
            ? 1.0 - ROn.MakespanSeconds / ROff.MakespanSeconds
            : 0.0;
    std::printf("    {\"program\": \"%s\", \"procs\": %lld,\n",
                C.Name.c_str(), static_cast<long long>(C.Procs));
    std::printf("     \"early_sends_marked\": %u,\n",
                On.Stats.NumEarlySends);
    std::printf("     \"makespan_off_seconds\": %.6f,\n",
                ROff.MakespanSeconds);
    std::printf("     \"makespan_on_seconds\": %.6f,\n",
                ROn.MakespanSeconds);
    std::printf("     \"makespan_reduction\": %.4f,\n", Reduction);
    std::printf("     \"early_sends\": %llu,\n",
                static_cast<unsigned long long>(ROn.Overlap.EarlySends));
    std::printf("     \"deferred_seconds\": %.6f,\n",
                ROn.Overlap.DeferredSeconds);
    std::printf("     \"exposed_seconds\": %.6f,\n",
                ROn.Overlap.ExposedSeconds);
    std::printf("     \"hidden_seconds\": %.6f,\n",
                ROn.Overlap.hiddenSeconds());
    std::printf("     \"arrays_identical\": true}%s\n",
                CI + 1 == Cases.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}
