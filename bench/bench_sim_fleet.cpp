//===- bench/bench_sim_fleet.cpp ------------------------------*- C++ -*-===//
//
// Fleet-runner throughput and survival study: LU decomposition swept
// through a hostile scenario matrix (fault seed x crash seed x
// checkpoint interval x engine thread count) under the fork-based
// orchestrator, with every hostile mode engaged (loss, duplication,
// corruption, transient partitions, straggler links, crash-stop with
// checkpoint/restart). Reports scenario throughput, per-status survival
// counts and aggregate transport telemetry as one JSON object.
//
// Every surviving scenario is hash-verified bit-identical to the clean
// sequential run inside the fleet itself; any mismatch fails the
// benchmark.
//
// Set DMCC_FAULT_BENCH_SMALL=1 to run at reduced scale.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sim/Fleet.h"

#include <cstdio>
#include <cstdlib>

using namespace dmcc;

namespace {

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

} // namespace

int main() {
  bool Small = std::getenv("DMCC_FAULT_BENCH_SMALL") != nullptr;
  const IntT N = Small ? 16 : 24;
  const IntT Procs = 4;

  Program P = parseProgramOrDie(LUSource);
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  CompiledProgram CP = compile(P, Spec);

  FleetMatrixSpec MS;
  for (uint64_t S = 1; S <= (Small ? 4u : 8u); ++S)
    MS.FaultSeeds.push_back(S);
  MS.CrashSeeds = {1, 2};
  MS.CheckpointIntervals = {0, 4096};
  MS.ThreadCounts = {1, 2};
  MS.Base.DropRate = 0.04;
  MS.Base.DupRate = 0.02;
  MS.Base.CorruptRate = 0.05;
  MS.Base.PartitionRate = 0.03;
  MS.Base.PartitionMaxOutage = 3;
  MS.Base.SlowLinkRate = 0.3;
  MS.Base.SlowLinkMaxFactor = 2.5;
  MS.Base.CrashRate = 5e-4;
  std::vector<FleetScenario> Matrix = buildMatrix(MS);

  FleetOptions FO;
  FO.Jobs = 4;
  FO.TimeoutSeconds = 120;
  FO.MaxRetries = 2;
  Fleet F(P, CP, Spec, {{"N", N}}, Procs, FO);
  FleetReport Rep = F.run(Matrix);

  uint64_t Retrans = 0, Crashes = 0, Rollbacks = 0;
  unsigned TotalAttempts = 0;
  for (const ScenarioOutcome &O : Rep.Outcomes) {
    Retrans += O.Retransmissions;
    Crashes += O.Crashes;
    Rollbacks += O.Rollbacks;
    TotalAttempts += O.Attempts;
  }
  unsigned Ok = Rep.count(ScenarioStatus::Ok);
  unsigned Mismatch = Rep.count(ScenarioStatus::Mismatch);

  std::printf("{\n");
  std::printf("  \"benchmark\": \"sim_fleet\",\n");
  std::printf("  \"case\": \"lu\",\n");
  std::printf("  \"n\": %lld,\n  \"procs\": %lld,\n  \"jobs\": %u,\n",
              static_cast<long long>(N), static_cast<long long>(Procs),
              FO.Jobs);
  std::printf("  \"scenarios\": %zu,\n", Matrix.size());
  std::printf("  \"elapsed_seconds\": %.3f,\n", Rep.ElapsedSeconds);
  std::printf("  \"scenarios_per_second\": %.2f,\n",
              Rep.ElapsedSeconds > 0
                  ? static_cast<double>(Matrix.size()) / Rep.ElapsedSeconds
                  : 0.0);
  std::printf("  \"worker_attempts\": %u,\n", TotalAttempts);
  std::printf(
      "  \"counts\": {\"ok\": %u, \"mismatch\": %u, \"deadlock\": %u, "
      "\"transport_exhausted\": %u, \"timeout\": %u, \"worker_crash\": "
      "%u, \"retry_exhausted\": %u},\n",
      Ok, Mismatch, Rep.count(ScenarioStatus::Deadlock),
      Rep.count(ScenarioStatus::TransportExhausted),
      Rep.count(ScenarioStatus::Timeout),
      Rep.count(ScenarioStatus::WorkerCrash),
      Rep.count(ScenarioStatus::RetryExhausted));
  std::printf("  \"retransmissions\": %llu,\n"
              "  \"crashes\": %llu,\n  \"rollbacks\": %llu,\n",
              static_cast<unsigned long long>(Retrans),
              static_cast<unsigned long long>(Crashes),
              static_cast<unsigned long long>(Rollbacks));
  std::printf("  \"notes\": \"every ok scenario hash-verified "
              "bit-identical to the clean sequential run; drop/dup/"
              "corrupt/partition/slow-link/crash modes all engaged\"\n");
  std::printf("}\n");

  if (Mismatch || Ok != Matrix.size()) {
    std::fprintf(stderr,
                 "bench_sim_fleet: %u of %zu scenarios not ok "
                 "(%u mismatch)\n",
                 static_cast<unsigned>(Matrix.size()) - Ok, Matrix.size(),
                 Mismatch);
    return 1;
  }
  return 0;
}
