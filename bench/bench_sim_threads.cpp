//===- bench/bench_sim_threads.cpp ----------------------------*- C++ -*-===//
//
// Scaling study for the threaded simulator engine (DESIGN.md section
// 10): LU decomposition in functional mode on a 32-processor simulated
// machine, swept over --sim-threads worker counts. Every threaded leg
// is checked bit-identical to the sequential engine — array contents,
// makespan, and every counter — before its wall time is reported, so a
// speedup can never be bought with a divergent schedule. Output is one
// JSON object; `hardware_concurrency` is included so a run on a
// single-core container is honest about why its speedups are flat.
//
// Set DMCC_BENCH_SMALL=1 to run at reduced scale (N=64, 8 processors,
// workers {1, 2}).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sim/Simulator.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>
#include <vector>

using namespace dmcc;

namespace {

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

SimOptions simOpts(IntT Procs, IntT N, unsigned Threads) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = {{"N", N}};
  SO.Functional = true;
  SO.Threads = Threads;
  return SO;
}

struct Leg {
  unsigned Threads = 1;
  double WallSeconds = 0;
  bool Identical = true;
  SimResult R;
};

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main() {
  const bool Small = std::getenv("DMCC_BENCH_SMALL") != nullptr;
  const IntT N = Small ? 64 : 1024;
  const IntT Procs = Small ? 8 : 32;
  std::vector<unsigned> Workers =
      Small ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};

  Program P = parseProgramOrDie(LUSource);
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  if (!CP.Ok) {
    std::fprintf(stderr, "compile failed: %s\n", CP.ErrorMessage.c_str());
    return 1;
  }

  std::vector<Leg> Legs;
  std::vector<std::optional<double>> Baseline;
  for (unsigned W : Workers) {
    Simulator Sim(P, CP, Spec, simOpts(Procs, N, W));
    Leg L;
    L.Threads = W;
    double T0 = now();
    L.R = Sim.run();
    L.WallSeconds = now() - T0;
    if (!L.R.Ok) {
      std::fprintf(stderr, "threads=%u failed: %s\n", W, L.R.Error.c_str());
      return 1;
    }
    std::vector<IntT> Idx(2);
    if (Legs.empty()) {
      Baseline.reserve(static_cast<std::size_t>(N + 1) * (N + 1));
      for (Idx[0] = 0; Idx[0] <= N; ++Idx[0])
        for (Idx[1] = 0; Idx[1] <= N; ++Idx[1])
          Baseline.push_back(Sim.finalValue(0, Idx));
    } else {
      const SimResult &B = Legs.front().R;
      L.Identical = L.R.MakespanSeconds == B.MakespanSeconds &&
                    L.R.Messages == B.Messages && L.R.Words == B.Words &&
                    L.R.Flops == B.Flops &&
                    L.R.TotalEvents == B.TotalEvents &&
                    L.R.ComputeIterations == B.ComputeIterations;
      std::size_t K = 0;
      for (Idx[0] = 0; Idx[0] <= N && L.Identical; ++Idx[0])
        for (Idx[1] = 0; Idx[1] <= N; ++Idx[1], ++K)
          if (Sim.finalValue(0, Idx) != Baseline[K]) {
            L.Identical = false;
            break;
          }
      if (!L.Identical) {
        std::fprintf(stderr,
                     "threads=%u diverges from the sequential engine\n", W);
        return 1;
      }
    }
    Legs.push_back(std::move(L));
  }

  const double Base = Legs.front().WallSeconds;
  std::printf("{\n");
  std::printf("  \"bench\": \"sim_threads\",\n");
  std::printf("  \"mode\": \"%s\",\n", Small ? "small" : "full");
  std::printf("  \"program\": \"lu\",\n");
  std::printf("  \"n\": %lld,\n", static_cast<long long>(N));
  std::printf("  \"procs\": %lld,\n", static_cast<long long>(Procs));
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"legs\": [\n");
  for (std::size_t I = 0; I != Legs.size(); ++I) {
    const Leg &L = Legs[I];
    std::printf("    {\"threads\": %u, \"wall_seconds\": %.6f, "
                "\"speedup_vs_sequential\": %.4f, "
                "\"total_events\": %llu, \"makespan_seconds\": %.6f, "
                "\"identical_to_sequential\": %s}%s\n",
                L.Threads, L.WallSeconds,
                L.WallSeconds > 0 ? Base / L.WallSeconds : 0.0,
                static_cast<unsigned long long>(L.R.TotalEvents),
                L.R.MakespanSeconds, L.Identical ? "true" : "false",
                I + 1 == Legs.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return 0;
}
