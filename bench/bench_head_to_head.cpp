//===- bench/bench_head_to_head.cpp ---------------------------*- C++ -*-===//
//
// The paper's central comparison, run end to end on the simulated
// machine: the same programs and decompositions compiled by (a) the
// location-centric FORTRAN-D-style scheme of Section 2 and (b) the
// value-centric compiler of Sections 3-6. Both binaries execute on the
// simulator; results are verified against sequential execution before
// any number is reported.
//
//===----------------------------------------------------------------------===//

#include "baseline/LocationCompiler.h"
#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace dmcc;

namespace {

bool verify(const Program &P, Simulator &Sim, const CompileSpec &Spec,
            const std::map<std::string, IntT> &Params) {
  SeqInterpreter Gold(P, Params);
  Gold.run();
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  for (const auto &[AId, FD] : Spec.FinalData) {
    (void)FD;
    std::vector<IntT> Sizes;
    for (const AffineExpr &D : P.array(AId).DimSizes)
      Sizes.push_back(D.evaluate(Env));
    std::vector<IntT> Idx(Sizes.size(), 0);
    bool Done = Sizes.empty();
    while (!Done) {
      auto Got = Sim.finalValue(AId, Idx);
      if (!Got || *Got != Gold.arrayValue(AId, Idx))
        return false;
      for (unsigned K = Idx.size(); K-- > 0;) {
        if (++Idx[K] < Sizes[K])
          break;
        Idx[K] = 0;
        if (K == 0)
          Done = true;
      }
    }
  }
  return true;
}

void compare(const char *Title, const Program &P, const LocationSpec &LS,
             const std::map<std::string, IntT> &Params, IntT Procs) {
  CompileSpec LocSpec;
  CompiledProgram Loc = compileLocationCentric(P, LS, LocSpec);
  CompileSpec VSpec = LocSpec;
  CompiledProgram Val = compile(P, VSpec);

  std::printf("== %s (P = %lld) ==\n", Title,
              static_cast<long long>(Procs));
  std::printf("%-18s %12s %12s %14s %10s\n", "scheme", "messages",
              "words", "makespan(s)", "verified");
  struct Row {
    const char *Name;
    const CompiledProgram *CP;
    const CompileSpec *Spec;
  } Rows[] = {{"location-centric", &Loc, &LocSpec},
              {"value-centric", &Val, &VSpec}};
  double Times[2] = {0, 0};
  for (unsigned K = 0; K != 2; ++K) {
    SimOptions SO;
    SO.PhysGrid = {Procs};
    SO.ParamValues = Params;
    SO.Functional = true;
    Simulator Sim(P, *Rows[K].CP, *Rows[K].Spec, SO);
    SimResult R = Sim.run();
    bool Ok = R.Ok && verify(P, Sim, *Rows[K].Spec, Params);
    Times[K] = R.MakespanSeconds;
    std::printf("%-18s %12llu %12llu %14.5f %10s\n", Rows[K].Name,
                static_cast<unsigned long long>(R.Messages),
                static_cast<unsigned long long>(R.Words),
                R.MakespanSeconds, Ok ? "yes" : "NO");
  }
  if (Times[1] > 0)
    std::printf("value-centric advantage: %.2fx\n\n",
                Times[0] / Times[1]);
}

} // namespace

int main() {
  {
    Program P = parseProgramOrDie(R"(
param N;
array X[N + 1];
array Y[N + 1];
for i = 1 to N {
  X[i] = i;
  for j = 1 to N {
    Y[j] = Y[j] + X[j - 1];
  }
}
)");
    LocationSpec LS;
    LS.Data.emplace(0, blockData(P, 0, 0, 16));
    LS.Data.emplace(1, blockData(P, 1, 0, 16));
    compare("producer/consumer Y[j] += X[j-1], N = 127, blocks of 16", P,
            LS, {{"N", 127}}, 8);
  }
  {
    Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3] + 1;
  }
}
)");
    LocationSpec LS;
    LS.Data.emplace(0, blockData(P, 0, 0, 16));
    compare("shift X[i] = X[i-3], T = 32, N = 127, blocks of 16", P, LS,
            {{"T", 32}, {"N", 127}}, 8);
  }
  {
    Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
    LocationSpec LS;
    LS.Data.emplace(0, cyclicData(P, 0, 0));
    compare("LU decomposition, N = 48, cyclic rows", P, LS, {{"N", 48}},
            8);
  }
  return 0;
}
