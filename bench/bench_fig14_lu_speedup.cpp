//===- bench/bench_fig14_lu_speedup.cpp -----------------------*- C++ -*-===//
//
// Regenerates Figure 14: speedup of compiler-parallelized single-precision
// LU decomposition for N = 1024 and N = 2048 on 1..32 processors of the
// simulated iPSC/860-class machine. The paper reports ~250 MFLOPS at
// N = 2048 on 32 processors, near-perfect speedup for N = 2048, and a
// visible efficiency drop for N = 1024 at high processor counts.
//
// Set DMCC_FIG14_SMALL=1 to run at quarter scale (N = 256 / 512).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <cstdlib>

using namespace dmcc;

namespace {

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

} // namespace

int main() {
  bool Small = std::getenv("DMCC_FIG14_SMALL") != nullptr;
  Program P = parseProgramOrDie(LUSource);
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0); // cyclic rows, Section 7
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  CompiledProgram CP = compile(P, Spec);
  std::printf("== Figure 14: LU decomposition speedup (simulated "
              "iPSC/860-class machine) ==\n");
  std::printf("compile: %.2f s; %u communication sets (%u multicast)\n",
              CP.Stats.CompileSeconds,
              CP.Stats.NumCommSetsAfterSelfReuse,
              CP.Stats.NumMulticastSets);

  const IntT Sizes[2] = {Small ? 256 : 1024, Small ? 512 : 2048};
  const IntT Procs[] = {1, 2, 4, 8, 16, 32};
  for (IntT N : Sizes) {
    std::printf("\nN = %lld\n", static_cast<long long>(N));
    std::printf("%6s %12s %9s %9s %9s %10s %12s\n", "procs", "time(s)",
                "speedup", "perfect", "eff(%)", "MFLOPS", "messages");
    double T1 = 0;
    for (IntT Np : Procs) {
      SimOptions SO;
      SO.PhysGrid = {Np};
      SO.ParamValues = {{"N", N}};
      SO.Functional = false;
      SO.CollapseLoops = true;
      Simulator Sim(P, CP, Spec, SO);
      SimResult R = Sim.run();
      if (!R.Ok) {
        std::printf("  P=%lld failed: %s\n", static_cast<long long>(Np),
                    R.Error.c_str());
        return 1;
      }
      if (Np == 1)
        T1 = R.MakespanSeconds;
      double Speedup = T1 / R.MakespanSeconds;
      std::printf("%6lld %12.3f %9.2f %9lld %9.1f %10.1f %12llu\n",
                  static_cast<long long>(Np), R.MakespanSeconds, Speedup,
                  static_cast<long long>(Np),
                  100.0 * Speedup / static_cast<double>(Np),
                  static_cast<double>(R.Flops) / R.MakespanSeconds / 1e6,
                  static_cast<unsigned long long>(R.Messages));
    }
  }
  std::printf("\npaper reference: 250 single-precision MFLOPS for "
              "2048x2048 LU on 32 processors;\nnear-linear speedup at "
              "N = 2048, degraded efficiency at N = 1024.\n");
  return 0;
}
