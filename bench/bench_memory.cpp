//===- bench/bench_memory.cpp ---------------------------------*- C++ -*-===//
//
// Regenerates the Section 5.5 / Section 7 local-memory results: under the
// cyclic row decomposition of LU, each physical processor's local array
// is ((N + P) / P) x 1 x (N + 1) and the communication buffer holds at
// most N + 1 words (the largest aggregated message). Prints the bounding
// boxes our compiler derives and the largest message observed in
// simulation.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"
#include "frontend/Parser.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace dmcc;

int main() {
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
  Decomposition D = cyclicData(P, 0, 0);
  StmtPlan SP1{1, ownerComputes(P, 1, D)};

  std::printf("== Section 5.5: local memory for LU under cyclic rows ==\n");
  SpmdSpace SS(P, 1);
  LocalBox Box;
  if (!computeLocalBox(SS, SP1, P.statement(1).Write, Box)) {
    std::printf("bounding box computation failed\n");
    return 1;
  }
  const Space &Sp = SS.prog().Sp;
  std::printf("write access X[i2][i3] on virtual processor p:\n");
  for (unsigned K = 0; K != Box.Lower.size(); ++K) {
    std::printf("  dim %u: [", K);
    for (unsigned I = 0; I != Box.Lower[K].size(); ++I) {
      const SpmdBound &B = Box.Lower[K][I];
      std::printf("%s%s%s", I ? ", " : "",
                  B.Den == 1 ? "" : "ceil:", "");
      std::string E;
      for (unsigned V = 0; V != B.Num.size() && V < Sp.size(); ++V)
        if (B.Num.coeff(V))
          E += (E.empty() ? "" : " + ") +
               std::to_string(B.Num.coeff(V)) + "*" + Sp.name(V);
      if (B.Num.constant() || E.empty())
        E += (E.empty() ? "" : " + ") + std::to_string(B.Num.constant());
      std::printf("%s", E.c_str());
    }
    std::printf(" .. ");
    for (unsigned I = 0; I != Box.Upper[K].size(); ++I) {
      const SpmdBound &B = Box.Upper[K][I];
      std::string E;
      for (unsigned V = 0; V != B.Num.size() && V < Sp.size(); ++V)
        if (B.Num.coeff(V))
          E += (E.empty() ? "" : " + ") +
               std::to_string(B.Num.coeff(V)) + "*" + Sp.name(V);
      if (B.Num.constant() || E.empty())
        E += (E.empty() ? "" : " + ") + std::to_string(B.Num.constant());
      std::printf("%s%s", I ? ", " : "", E.c_str());
    }
    std::printf("]\n");
  }
  std::printf("=> one matrix row per virtual processor: with V virtual "
              "rows folded onto P physical\n   processors, the local "
              "array is ((N + P) / P) rows x (N + 1) columns, matching\n"
              "   the paper's ((N+P)/P) x 1 x (N+1).\n\n");

  // Largest aggregated message = the communication buffer size.
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(SP1);
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  CompiledProgram CP = compile(P, Spec);
  for (IntT N : {64, 128, 256}) {
    SimOptions SO;
    SO.PhysGrid = {8};
    SO.ParamValues = {{"N", N}};
    SO.Functional = false;
    SO.CollapseLoops = true;
    Simulator Sim(P, CP, Spec, SO);
    SimResult R = Sim.run();
    if (!R.Ok) {
      std::printf("simulation failed: %s\n", R.Error.c_str());
      return 1;
    }
    double AvgWords = R.Messages
                          ? static_cast<double>(R.Words) /
                                static_cast<double>(R.Messages)
                          : 0.0;
    std::printf("N = %4lld: %8llu messages, avg %7.1f words "
                "(buffer bound N + 1 = %lld)\n",
                static_cast<long long>(N),
                static_cast<unsigned long long>(R.Messages), AvgWords,
                static_cast<long long>(N + 1));
  }
  return 0;
}
