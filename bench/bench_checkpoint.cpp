//===- bench/bench_checkpoint.cpp -----------------------------*- C++ -*-===//
//
// Checkpoint/restart cost study: LU decomposition on the simulated
// machine, sweeping the checkpoint interval. For each interval the
// benchmark runs a crash-free leg (isolating pure checkpoint overhead)
// and a crash leg with a fixed seed-driven crash schedule (adding
// detection, rollback and replay). Output is a single JSON object so
// the numbers can be plotted directly; per-leg rows separate compute,
// protocol, checkpoint and recovery time.
//
// Every crash leg is verified bit-exact against the sequential
// interpreter — a mismatch fails the benchmark.
//
// Set DMCC_FAULT_BENCH_SMALL=1 to run at reduced scale.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <cstdlib>

using namespace dmcc;

namespace {

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

SimOptions simOpts(IntT Procs, IntT N, FaultOptions F,
                   CheckpointOptions CK) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = {{"N", N}};
  SO.Functional = true; // crash legs are verified bit-exact
  SO.Faults = F;
  SO.Checkpoint = CK;
  return SO;
}

/// Returns the number of missing-or-wrong elements of X vs the
/// sequential interpreter.
unsigned verify(const Program &P, Simulator &Sim, const SeqInterpreter &Gold,
                IntT N) {
  unsigned Bad = 0;
  std::vector<IntT> Idx(2);
  for (Idx[0] = 0; Idx[0] <= N; ++Idx[0])
    for (Idx[1] = 0; Idx[1] <= N; ++Idx[1]) {
      auto Got = Sim.finalValue(0, Idx);
      if (!Got || *Got != Gold.arrayValue(0, Idx))
        ++Bad;
    }
  return Bad;
}

void printLeg(const char *Name, const SimResult &R, double Ideal,
              bool TrailingComma) {
  std::printf(
      "      \"%s\": {\"makespan_seconds\": %.6f, \"inflation\": %.4f,\n"
      "        \"compute_seconds\": %.6f, \"protocol_seconds\": %.6f,\n"
      "        \"checkpoint_seconds\": %.6f, \"recovery_seconds\": %.6f,\n"
      "        \"checkpoints\": %llu, \"checkpoint_bytes\": %llu,\n"
      "        \"crashes\": %llu, \"rollbacks\": %llu, "
      "\"replayed_steps\": %llu, \"replayed_messages\": %llu}%s\n",
      Name, R.MakespanSeconds, Ideal > 0 ? R.MakespanSeconds / Ideal : 0.0,
      R.Recovery.ComputeSeconds, R.Recovery.ProtocolSeconds,
      R.Recovery.CheckpointSeconds, R.Recovery.RecoverySeconds,
      static_cast<unsigned long long>(R.Recovery.CheckpointsTaken),
      static_cast<unsigned long long>(R.Recovery.CheckpointBytes),
      static_cast<unsigned long long>(R.Recovery.Crashes),
      static_cast<unsigned long long>(R.Recovery.Rollbacks),
      static_cast<unsigned long long>(R.Recovery.ReplayedSteps),
      static_cast<unsigned long long>(R.Recovery.ReplayedMessages),
      TrailingComma ? "," : "");
}

} // namespace

int main() {
  bool Small = std::getenv("DMCC_FAULT_BENCH_SMALL") != nullptr;
  const IntT N = Small ? 32 : 64;
  const IntT Procs = 4;
  const uint64_t CrashSeed = 11;
  const double CrashRate = 4e-5;

  Program P = parseProgramOrDie(LUSource);
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  CompiledProgram CP = compile(P, Spec);

  SeqInterpreter Gold(P, {{"N", N}});
  Gold.run();

  // The fault-free, checkpoint-free run anchors the ideal makespan.
  double Ideal = 0;
  {
    Simulator Sim(P, CP, Spec, simOpts(Procs, N, {}, {}));
    SimResult R = Sim.run();
    if (!R.Ok || verify(P, Sim, Gold, N) != 0) {
      std::fprintf(stderr, "ideal leg failed: %s\n", R.Error.c_str());
      return 1;
    }
    Ideal = R.MakespanSeconds;
  }

  const uint64_t Intervals[] = {Small ? 5000u : 10000u,
                                Small ? 10000u : 20000u,
                                Small ? 20000u : 40000u,
                                Small ? 40000u : 80000u};
  const size_t NumIntervals = sizeof(Intervals) / sizeof(Intervals[0]);

  std::printf("{\n");
  std::printf("  \"benchmark\": \"checkpoint\",\n");
  std::printf("  \"case\": \"lu\",\n");
  std::printf("  \"n\": %lld,\n  \"procs\": %lld,\n",
              static_cast<long long>(N), static_cast<long long>(Procs));
  std::printf("  \"crash_seed\": %llu,\n  \"crash_rate\": %g,\n",
              static_cast<unsigned long long>(CrashSeed), CrashRate);
  std::printf("  \"ideal_seconds\": %.6f,\n", Ideal);
  std::printf("  \"rows\": [\n");

  for (size_t I = 0; I != NumIntervals; ++I) {
    CheckpointOptions CK;
    CK.IntervalSteps = Intervals[I];

    // Crash-free leg: pure checkpoint overhead at this interval.
    Simulator CkSim(P, CP, Spec, simOpts(Procs, N, {}, CK));
    SimResult CkRes = CkSim.run();
    if (!CkRes.Ok || verify(P, CkSim, Gold, N) != 0) {
      std::fprintf(stderr, "checkpoint-only leg (interval %llu) failed\n",
                   static_cast<unsigned long long>(CK.IntervalSteps));
      return 1;
    }

    // Crash leg: the same interval under a seed-driven crash schedule.
    FaultOptions F;
    F.CrashRate = CrashRate;
    F.CrashSeed = CrashSeed;
    Simulator CrSim(P, CP, Spec, simOpts(Procs, N, F, CK));
    SimResult CrRes = CrSim.run();
    if (!CrRes.Ok) {
      std::fprintf(stderr, "crash leg (interval %llu) failed: %s\n",
                   static_cast<unsigned long long>(CK.IntervalSteps),
                   CrRes.Error.c_str());
      return 1;
    }
    if (verify(P, CrSim, Gold, N) != 0) {
      std::fprintf(stderr,
                   "crash leg (interval %llu) is NOT bit-exact\n",
                   static_cast<unsigned long long>(CK.IntervalSteps));
      return 1;
    }

    std::printf("    {\"interval_steps\": %llu,\n",
                static_cast<unsigned long long>(CK.IntervalSteps));
    printLeg("no_crash", CkRes, Ideal, true);
    printLeg("crash", CrRes, Ideal, false);
    std::printf("    }%s\n", I + 1 != NumIntervals ? "," : "");
  }

  std::printf("  ],\n");
  std::printf("  \"notes\": \"crash legs verified bit-exact against the "
              "sequential interpreter; recovery_seconds = detection + "
              "restore + undone work, checkpoint_seconds = snapshot "
              "latency + per-word copy cost\"\n");
  std::printf("}\n");
  return 0;
}
