//===- bench/bench_ablation.cpp -------------------------------*- C++ -*-===//
//
// Ablations of the Section 6 communication optimizations on LU and on a
// 1-D stencil: self-reuse redundancy elimination (6.1.1), multicast
// (6.2.1), and aggressive (level - 1) aggregation (6.2), each toggled
// independently. Reports simulated messages, words, and makespan.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace dmcc;

namespace {

struct Config {
  const char *Name;
  CompilerOptions Opts;
};

void run(const char *Title, const Program &P, const CompileSpec &Spec,
         const std::map<std::string, IntT> &Params, IntT Procs) {
  CompilerOptions Base;
  Config Configs[] = {
      {"all optimizations", Base},
      {"no self-reuse elim", Base},
      {"no multicast", Base},
      {"no aggressive agg", Base},
  };
  Configs[1].Opts.EliminateSelfReuse = false;
  Configs[2].Opts.DetectMulticast = false;
  Configs[3].Opts.AggressiveAggregation = false;

  std::printf("== %s (P = %lld) ==\n", Title,
              static_cast<long long>(Procs));
  std::printf("%-22s %10s %12s %12s %12s\n", "configuration", "sets",
              "messages", "words", "makespan(s)");
  for (const Config &C : Configs) {
    CompiledProgram CP = compile(P, Spec, C.Opts);
    SimOptions SO;
    SO.PhysGrid = {Procs};
    SO.ParamValues = Params;
    SO.Functional = false;
    SO.CollapseLoops = true;
    Simulator Sim(P, CP, Spec, SO);
    SimResult R = Sim.run();
    if (!R.Ok) {
      std::printf("%-22s failed: %s\n", C.Name, R.Error.c_str());
      continue;
    }
    std::printf("%-22s %10u %12llu %12llu %12.4f\n", C.Name,
                CP.Stats.NumCommSetsAfterSelfReuse,
                static_cast<unsigned long long>(R.Messages),
                static_cast<unsigned long long>(R.Words),
                R.MakespanSeconds);
  }
  std::printf("\n");
}

} // namespace

int main() {
  {
    Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
    CompileSpec Spec;
    Decomposition D = cyclicData(P, 0, 0);
    Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
    Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
    Spec.InitialData.emplace(0, D);
    Spec.FinalData.emplace(0, D);
    run("LU decomposition, N = 256, cyclic rows", P, Spec, {{"N", 256}},
        8);
  }
  {
    Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
array Y[N + 1];
for t = 0 to T {
  for i = 1 to N - 1 {
    Y[i] = X[i - 1] + X[i] + X[i + 1];
  }
  for i2 = 1 to N - 1 {
    X[i2] = Y[i2];
  }
}
)");
    CompileSpec Spec;
    Decomposition DX = blockData(P, 0, 0, 64);
    Decomposition DY = blockData(P, 1, 0, 64);
    Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 64)});
    Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 64)});
    Spec.InitialData.emplace(0, DX);
    Spec.InitialData.emplace(1, DY);
    Spec.FinalData.emplace(0, DX);
    Spec.FinalData.emplace(1, DY);
    run("1-D Jacobi stencil, N = 512, T = 64, blocks of 64", P, Spec,
        {{"T", 64}, {"N", 512}}, 8);
  }
  {
    // The Figure 2/10 kernel: the dependence is carried by the inner
    // loop (level 2), so aggressive aggregation batches the three
    // boundary words per outer iteration into one message while the
    // conservative level batches per inner iteration.
    Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
    CompileSpec Spec;
    Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 32)});
    Spec.InitialData.emplace(0, blockData(P, 0, 0, 32));
    Spec.FinalData.emplace(0, blockData(P, 0, 0, 32));
    run("Figure 10 shift X[i] = X[i-3], N = 512, T = 128, blocks of 32",
        P, Spec, {{"T", 128}, {"N", 512}}, 8);
  }
  return 0;
}
