//===- bench/bench_decomp_search.cpp --------------------------*- C++ -*-===//
//
// Decomposition auto-search study: for every workload spec under
// examples/ (cholesky, 2-D/3-D Jacobi, ADI, Floyd-Warshall), run the
// bounded decomposition search (decomp/Search.h) seeded with the
// hand-written directives and report the hand-written makespan, the
// winner's makespan and description, the candidate count, and the
// relative improvement. Output is one JSON object; snapshotted as
// BENCH_decomp_search.json. The search's never-worse-than-hint
// guarantee means "improvement" is always >= 0; a workload where the
// hand-written spec already wins reports the hint itself.
//
// Set DMCC_BENCH_SMALL=1 to run with a trimmed block-size axis.
//
//===----------------------------------------------------------------------===//

#include "core/SpecParser.h"
#include "decomp/Search.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace dmcc;

namespace {

std::string repoPath(const std::string &Rel) {
  return std::string(DMCC_REPO_ROOT) + "/" + Rel;
}

} // namespace

int main() {
  const bool Small = std::getenv("DMCC_BENCH_SMALL") != nullptr;
  const char *Names[] = {"cholesky", "jacobi2d", "jacobi3d", "adi",
                         "floyd"};

  std::printf("{\n");
  std::printf("  \"bench\": \"decomp_search\",\n");
  std::printf("  \"mode\": \"%s\",\n", Small ? "small" : "full");
  std::printf("  \"procs\": 4,\n");
  std::printf("  \"workloads\": [\n");
  bool FirstRow = true;
  for (const char *Name : Names) {
    std::ifstream In(repoPath("examples/" + std::string(Name) + ".dm"));
    if (!In) {
      std::fprintf(stderr, "%s: cannot open spec\n", Name);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    SpecParseOutput SP = parseWithSpec(Buf.str());
    if (!SP.ok()) {
      std::fprintf(stderr, "%s: %s\n", Name, SP.Error.c_str());
      return 1;
    }

    SearchOptions SO;
    SO.Procs = 4;
    SO.Params = SP.ParamDefaults;
    SO.Jobs = 4;
    SO.TimeoutSeconds = 120;
    SO.MaxBlockChoices = Small ? 2 : 4;
    SearchResult SR = searchDecompositions(*SP.Prog, &SP.Spec, SO);
    if (!SR.ok()) {
      std::fprintf(stderr, "%s: search failed: %s\n", Name,
                   SR.Error.c_str());
      return 1;
    }
    const SpecScore &Hand = SR.Candidates[0].Score;
    if (!Hand.Ok) {
      std::fprintf(stderr, "%s: hand-written spec infeasible: %s\n",
                   Name, Hand.Error.c_str());
      return 1;
    }
    const ScoredCandidate &Best = SR.best();
    unsigned Feasible = 0;
    for (const ScoredCandidate &C : SR.Candidates)
      Feasible += C.Score.Ok;
    double Improvement =
        Hand.MakespanSeconds > 0
            ? 1.0 - Best.Score.MakespanSeconds / Hand.MakespanSeconds
            : 0.0;
    std::printf("%s    {\"workload\": \"%s\",\n", FirstRow ? "" : ",\n",
                Name);
    std::printf("     \"hand_makespan_seconds\": %.9f,\n",
                Hand.MakespanSeconds);
    std::printf("     \"hand_messages\": %llu,\n",
                static_cast<unsigned long long>(Hand.Messages));
    std::printf("     \"best_desc\": \"%s\",\n", Best.Cand.Desc.c_str());
    std::printf("     \"best_makespan_seconds\": %.9f,\n",
                Best.Score.MakespanSeconds);
    std::printf("     \"best_messages\": %llu,\n",
                static_cast<unsigned long long>(Best.Score.Messages));
    std::printf("     \"candidates\": %zu,\n", SR.Candidates.size());
    std::printf("     \"candidates_feasible\": %u,\n", Feasible);
    std::printf("     \"improvement\": %.6f}", Improvement);
    FirstRow = false;
    std::fprintf(stderr, "%-10s hand %.6f s -> best %.6f s (%s), %+.1f%%\n",
                 Name, Hand.MakespanSeconds, Best.Score.MakespanSeconds,
                 Best.Cand.Desc.c_str(), 100.0 * Improvement);
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
