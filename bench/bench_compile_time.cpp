//===- bench/bench_compile_time.cpp ---------------------------*- C++ -*-===//
//
// Section 7 reports that the compiler pass took 2.9 seconds to generate
// the LU computation and communication code (on 1993 hardware). This
// google-benchmark harness times the full pipeline — Last Write Trees,
// communication sets, optimizations, SPMD generation — for several
// kernels, plus the individual analysis stages.
//
//===----------------------------------------------------------------------===//

#include "dataflow/LastWriteTree.h"
#include "frontend/Parser.h"
#include "sim/Simulator.h"

#include <benchmark/benchmark.h>

using namespace dmcc;

namespace {

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

const char *StencilSource = R"(
param T;
param N;
array X[N + 1];
array Y[N + 1];
for t = 0 to T {
  for i = 1 to N - 1 {
    Y[i] = X[i - 1] + X[i] + X[i + 1];
  }
  for i2 = 1 to N - 1 {
    X[i2] = Y[i2];
  }
}
)";

const char *ShiftSource = R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)";

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

void BM_ParseLU(benchmark::State &State) {
  for (auto _ : State) {
    Program P = parseProgramOrDie(LUSource);
    benchmark::DoNotOptimize(P.numStatements());
  }
}
BENCHMARK(BM_ParseLU);

void BM_LastWriteTreesLU(benchmark::State &State) {
  Program P = parseProgramOrDie(LUSource);
  for (auto _ : State) {
    for (unsigned S = 0; S != P.numStatements(); ++S)
      for (unsigned R = 0; R != P.statement(S).Reads.size(); ++R) {
        LastWriteTree T = buildLWT(P, S, R);
        benchmark::DoNotOptimize(T.Contexts.size());
      }
  }
}
BENCHMARK(BM_LastWriteTreesLU);

void BM_CompileLU(benchmark::State &State) {
  // The paper's end-to-end number: "2.9 seconds to generate the
  // computation and communication code" for LU.
  Program P = parseProgramOrDie(LUSource);
  CompileSpec Spec = luSpec(P);
  for (auto _ : State) {
    CompiledProgram CP = compile(P, Spec);
    benchmark::DoNotOptimize(CP.Comms.size());
  }
}
BENCHMARK(BM_CompileLU)->Unit(benchmark::kMillisecond);

void BM_CompileStencil(benchmark::State &State) {
  Program P = parseProgramOrDie(StencilSource);
  CompileSpec Spec;
  Decomposition DX = blockData(P, 0, 0, 64);
  Decomposition DY = blockData(P, 1, 0, 64);
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 64)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 64)});
  Spec.InitialData.emplace(0, DX);
  Spec.InitialData.emplace(1, DY);
  Spec.FinalData.emplace(0, DX);
  Spec.FinalData.emplace(1, DY);
  for (auto _ : State) {
    CompiledProgram CP = compile(P, Spec);
    benchmark::DoNotOptimize(CP.Comms.size());
  }
}
BENCHMARK(BM_CompileStencil)->Unit(benchmark::kMillisecond);

void BM_CompileShift(benchmark::State &State) {
  Program P = parseProgramOrDie(ShiftSource);
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 32)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 32));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 32));
  for (auto _ : State) {
    CompiledProgram CP = compile(P, Spec);
    benchmark::DoNotOptimize(CP.Comms.size());
  }
}
BENCHMARK(BM_CompileShift)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
