//===- bench/bench_compile_time.cpp ---------------------------*- C++ -*-===//
//
// Section 7 reports that the compiler pass took 2.9 seconds to generate
// the LU computation and communication code (on 1993 hardware). This
// harness times the full pipeline — Last Write Trees, communication
// sets, optimizations, SPMD generation — for several kernels, plus the
// individual analysis stages.
//
// Each case runs a baseline leg (projection cache and accelerators off)
// and an optimized leg (projectionOptions() defaults); the optimized leg
// keeps its caches warm across iterations, which is exactly how repeated
// compiles in one process behave. Output is one JSON object (same
// convention as bench_checkpoint); the checked-in snapshot lives in
// BENCH_compile_time.json.
//
// Set DMCC_BENCH_SMALL=1 to run at reduced scale.
//
//===----------------------------------------------------------------------===//

#include "dataflow/LastWriteTree.h"
#include "frontend/Parser.h"
#include "sim/Simulator.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

using namespace dmcc;

namespace {

/// Keeps results observable so the legs are not optimized away.
volatile unsigned long long Sink = 0;

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

const char *StencilSource = R"(
param T;
param N;
array X[N + 1];
array Y[N + 1];
for t = 0 to T {
  for i = 1 to N - 1 {
    Y[i] = X[i - 1] + X[i] + X[i + 1];
  }
  for i2 = 1 to N - 1 {
    X[i2] = Y[i2];
  }
}
)";

const char *ShiftSource = R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)";

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

CompileSpec stencilSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition DX = blockData(P, 0, 0, 64);
  Decomposition DY = blockData(P, 1, 0, 64);
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 64)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 64)});
  Spec.InitialData.emplace(0, DX);
  Spec.InitialData.emplace(1, DY);
  Spec.FinalData.emplace(0, DX);
  Spec.FinalData.emplace(1, DY);
  return Spec;
}

CompileSpec shiftSpec(const Program &P) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 32)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 32));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 32));
  return Spec;
}

/// Times \p Fn over \p Iters iterations and returns seconds/iteration.
/// One extra warmup iteration runs first (it populates the caches on
/// the optimized leg — deliberately, that persistence is the feature).
double timeLeg(const std::function<void()> &Fn, unsigned Iters) {
  Fn();
  using Clock = std::chrono::steady_clock;
  auto T0 = Clock::now();
  for (unsigned I = 0; I != Iters; ++I)
    Fn();
  return std::chrono::duration<double>(Clock::now() - T0).count() / Iters;
}

struct Case {
  const char *Name;
  std::function<void()> Fn;
  bool UsesProjection; ///< false: single leg (e.g. pure parsing)
};

} // namespace

int main() {
  bool Small = std::getenv("DMCC_BENCH_SMALL") != nullptr;
  unsigned Iters = Small ? 1 : 5;

  Program LU = parseProgramOrDie(LUSource);
  Program Stencil = parseProgramOrDie(StencilSource);
  Program Shift = parseProgramOrDie(ShiftSource);
  CompileSpec LUSpec = luSpec(LU);
  CompileSpec StSpec = stencilSpec(Stencil);
  CompileSpec ShSpec = shiftSpec(Shift);

  ProjectionOptions Baseline;
  Baseline.Cache = false;
  Baseline.QuickChecks = false;
  Baseline.OrderHeuristic = false;

  // The case lambdas read the current leg's options from here.
  CompilerOptions LegOpts;

  auto compileCase = [&](const Program &P, const CompileSpec &Spec) {
    Sink = Sink + compile(P, Spec, LegOpts).Comms.size();
  };

  const Case Cases[] = {
      {"parse_lu",
       [&] { Sink = Sink + parseProgramOrDie(LUSource).numStatements(); },
       false},
      {"lwt_lu",
       [&] {
         for (unsigned S = 0; S != LU.numStatements(); ++S)
           for (unsigned R = 0; R != LU.statement(S).Reads.size(); ++R)
             Sink = Sink + buildLWT(LU, S, R).Contexts.size();
       },
       true},
      {"compile_lu", [&] { compileCase(LU, LUSpec); }, true},
      {"compile_stencil", [&] { compileCase(Stencil, StSpec); }, true},
      {"compile_shift", [&] { compileCase(Shift, ShSpec); }, true},
  };
  constexpr unsigned NumCases = sizeof(Cases) / sizeof(Cases[0]);

  std::printf("{\n");
  std::printf("  \"benchmark\": \"compile_time\",\n");
  std::printf("  \"small\": %s,\n", Small ? "true" : "false");
  std::printf("  \"iters\": %u,\n", Iters);
  std::printf("  \"rows\": [\n");
  for (unsigned I = 0; I != NumCases; ++I) {
    const Case &C = Cases[I];

    // Baseline leg: accelerators off. compile() installs the options it
    // is given; the LWT case follows the process-wide setting instead.
    LegOpts.Projection = Baseline;
    projectionOptions() = Baseline;
    clearProjectionCaches();
    double BaseSec = timeLeg(C.Fn, Iters);

    LegOpts.Projection = ProjectionOptions();
    projectionOptions() = ProjectionOptions();
    clearProjectionCaches();
    resetProjectionStats();
    double OptSec = timeLeg(C.Fn, Iters);
    double HitRate = projectionStats().feasHitRate();

    std::printf("    {\"case\": \"%s\", \"baseline_ms\": %.3f, "
                "\"optimized_ms\": %.3f,\n"
                "     \"speedup\": %.2f, \"feas_cache_hit_rate\": %.3f}%s\n",
                C.Name, BaseSec * 1e3, OptSec * 1e3,
                OptSec > 0 ? BaseSec / OptSec : 0.0,
                C.UsesProjection ? HitRate : 0.0,
                I + 1 != NumCases ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"notes\": \"per-compile wall time after one warmup; the "
              "optimized leg keeps the projection caches warm across "
              "iterations\"\n");
  std::printf("}\n");
  return 0;
}
