//===- bench/bench_projection.cpp -----------------------------*- C++ -*-===//
//
// Microbenchmarks of the polyhedral primitives every compiler phase rests
// on (Section 5.1/5.2): Fourier-Motzkin elimination with and without
// superfluous-constraint removal, integer feasibility, polyhedron
// scanning, and parametric lexicographic optimization.
//
// Each case runs two legs: a baseline with the fast-path machinery off
// (no memoization, no syntactic quick-checks, legacy elimination order)
// and an optimized leg with the projectionOptions() defaults. Output is
// one JSON object (same convention as bench_checkpoint) so the speedups
// can be tracked across commits; the checked-in snapshot lives in
// BENCH_projection.json.
//
// Set DMCC_BENCH_SMALL=1 to run at reduced scale.
//
//===----------------------------------------------------------------------===//

#include "codegen/Scan.h"
#include "math/LexOpt.h"
#include "math/System.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

using namespace dmcc;

namespace {

/// Keeps results observable so the legs are not optimized away.
volatile unsigned long long Sink = 0;

/// The Figure 5 communication-set system for the shift example.
System figure5System() {
  Space Sp;
  Sp.add("ps", VarKind::Proc);
  Sp.add("ts", VarKind::Loop);
  Sp.add("is", VarKind::Loop);
  Sp.add("pr", VarKind::Proc);
  Sp.add("tr", VarKind::Loop);
  Sp.add("ir", VarKind::Loop);
  Sp.add("a", VarKind::Data);
  Sp.add("T", VarKind::Param);
  Sp.add("N", VarKind::Param);
  System S(std::move(Sp));
  auto V = [&](const char *N) {
    return S.varExpr(static_cast<unsigned>(S.space().indexOf(N)));
  };
  S.addGE(V("tr"));
  S.addGE(V("T") - V("tr"));
  S.addGE(V("ir").plusConst(-3));
  S.addGE(V("N") - V("ir"));
  S.addGE(V("ir").plusConst(-6));
  S.addEq(V("ts"), V("tr"));
  S.addEq(V("is"), V("ir").plusConst(-3));
  S.addEq(V("a"), V("ir").plusConst(-3));
  S.addGE(V("ir") - V("ps").scale(32));
  S.addGE(V("ps").scale(32).plusConst(31 + 3) - V("ir"));
  S.addGE(V("ir") - V("pr").scale(32));
  S.addGE(V("pr").scale(32).plusConst(31) - V("ir"));
  S.addGE(V("pr") - V("ps").plusConst(-1)); // ps < pr
  return S;
}

void fmChain() {
  System R = figure5System();
  for (unsigned I = 0; I != 7; ++I)
    if (R.involves(I))
      R = R.fmEliminated(I);
  Sink = Sink + R.numConstraints();
}

void redundancyRemoval() {
  System R = figure5System();
  R.removeRedundant();
  Sink = Sink + R.numConstraints();
}

void integerFeasibility() {
  System S = figure5System();
  Sink = Sink + static_cast<unsigned>(S.checkIntegerFeasible());
}

void scanFigure6() {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("j", VarKind::Loop);
  System S(std::move(Sp));
  S.addGE(S.varExpr(1) - S.constExpr(16) + S.varExpr(0));
  S.addGE(S.varExpr(0).plusConst(12) - S.varExpr(1).scale(2));
  S.addGE(S.varExpr(1).plusConst(-1));
  S.addGE(S.constExpr(14) - S.varExpr(0));
  std::vector<ScanVarPlan> Plan{ScanVarPlan{0, false, AffineExpr()},
                                ScanVarPlan{1, false, AffineExpr()}};
  auto Code = scanPolyhedron(S, Plan, [&]() {
    SpmdStmt C;
    C.K = SpmdStmt::Kind::Compute;
    std::vector<SpmdStmt> B;
    B.push_back(std::move(C));
    return B;
  });
  Sink = Sink + Code.size();
}

void parametricLexMax() {
  // The Figure 2 last-write query: maximize (tw, iw).
  Space Sp;
  Sp.add("tw", VarKind::Loop);
  Sp.add("iw", VarKind::Loop);
  Sp.add("tr", VarKind::Param);
  Sp.add("ir", VarKind::Param);
  Sp.add("T", VarKind::Param);
  Sp.add("N", VarKind::Param);
  System S(std::move(Sp));
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(4) - S.varExpr(0));
  S.addGE(S.varExpr(1).plusConst(-3));
  S.addGE(S.varExpr(5) - S.varExpr(1));
  S.addEq(S.varExpr(1), S.varExpr(3).plusConst(-3));
  S.addEq(S.varExpr(0), S.varExpr(2));
  LexResult R = lexMax(S, {0, 1});
  Sink = Sink + R.Pieces.size();
}

void enumerate2DTriangle() {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("j", VarKind::Loop);
  System S(std::move(Sp));
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(1) - S.varExpr(0));
  S.addGE(S.constExpr(60) - S.varExpr(1));
  unsigned N = 0;
  S.enumeratePoints([&](const std::vector<IntT> &) { ++N; });
  Sink = Sink + N;
}

/// Runs \p Fn repeatedly until at least \p MinSeconds have elapsed
/// (doubling the batch size), then returns seconds per iteration.
double timeLeg(const std::function<void()> &Fn, double MinSeconds) {
  // Warm up once: first-touch allocation and (for the optimized leg)
  // cache population are not what we are measuring.
  Fn();
  using Clock = std::chrono::steady_clock;
  unsigned long long Total = 0;
  double Elapsed = 0;
  unsigned long long Batch = 1;
  for (;;) {
    auto T0 = Clock::now();
    for (unsigned long long I = 0; I != Batch; ++I)
      Fn();
    Elapsed += std::chrono::duration<double>(Clock::now() - T0).count();
    Total += Batch;
    if (Elapsed >= MinSeconds)
      return Elapsed / static_cast<double>(Total);
    Batch *= 2;
  }
}

struct Case {
  const char *Name;
  std::function<void()> Fn;
};

} // namespace

int main() {
  bool Small = std::getenv("DMCC_BENCH_SMALL") != nullptr;
  double MinSeconds = Small ? 0.002 : 0.2;

  const Case Cases[] = {
      {"fm_elimination_chain", fmChain},
      {"redundancy_removal", redundancyRemoval},
      {"integer_feasibility", integerFeasibility},
      {"scan_figure6", scanFigure6},
      {"parametric_lexmax", parametricLexMax},
      {"enumerate_2d_triangle", enumerate2DTriangle},
  };
  constexpr unsigned NumCases = sizeof(Cases) / sizeof(Cases[0]);

  ProjectionOptions Optimized; // defaults: cache + accelerators on
  ProjectionOptions Baseline;
  Baseline.Cache = false;
  Baseline.QuickChecks = false;
  Baseline.OrderHeuristic = false;

  std::printf("{\n");
  std::printf("  \"benchmark\": \"projection\",\n");
  std::printf("  \"small\": %s,\n", Small ? "true" : "false");
  std::printf("  \"rows\": [\n");
  for (unsigned I = 0; I != NumCases; ++I) {
    const Case &C = Cases[I];

    projectionOptions() = Baseline;
    clearProjectionCaches();
    double BaseSec = timeLeg(C.Fn, MinSeconds);

    projectionOptions() = Optimized;
    clearProjectionCaches();
    resetProjectionStats();
    double OptSec = timeLeg(C.Fn, MinSeconds);
    double HitRate = projectionStats().feasHitRate();

    std::printf("    {\"case\": \"%s\", \"baseline_us\": %.3f, "
                "\"optimized_us\": %.3f,\n"
                "     \"speedup\": %.2f, \"feas_cache_hit_rate\": %.3f}%s\n",
                C.Name, BaseSec * 1e6, OptSec * 1e6,
                OptSec > 0 ? BaseSec / OptSec : 0.0, HitRate,
                I + 1 != NumCases ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"notes\": \"per-iteration wall time; baseline leg runs "
              "with memoization, syntactic quick-checks and the "
              "elimination-order heuristic disabled\"\n");
  std::printf("}\n");
  return 0;
}
