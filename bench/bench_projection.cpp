//===- bench/bench_projection.cpp -----------------------------*- C++ -*-===//
//
// Microbenchmarks of the polyhedral primitives every compiler phase rests
// on (Section 5.1/5.2): Fourier-Motzkin elimination with and without
// superfluous-constraint removal, integer feasibility, polyhedron
// scanning, and parametric lexicographic optimization.
//
//===----------------------------------------------------------------------===//

#include "codegen/Scan.h"
#include "math/LexOpt.h"
#include "math/System.h"

#include <benchmark/benchmark.h>

using namespace dmcc;

namespace {

/// The Figure 5 communication-set system for the shift example.
System figure5System() {
  Space Sp;
  Sp.add("ps", VarKind::Proc);
  Sp.add("ts", VarKind::Loop);
  Sp.add("is", VarKind::Loop);
  Sp.add("pr", VarKind::Proc);
  Sp.add("tr", VarKind::Loop);
  Sp.add("ir", VarKind::Loop);
  Sp.add("a", VarKind::Data);
  Sp.add("T", VarKind::Param);
  Sp.add("N", VarKind::Param);
  System S(std::move(Sp));
  auto V = [&](const char *N) {
    return S.varExpr(static_cast<unsigned>(S.space().indexOf(N)));
  };
  S.addGE(V("tr"));
  S.addGE(V("T") - V("tr"));
  S.addGE(V("ir").plusConst(-3));
  S.addGE(V("N") - V("ir"));
  S.addGE(V("ir").plusConst(-6));
  S.addEq(V("ts"), V("tr"));
  S.addEq(V("is"), V("ir").plusConst(-3));
  S.addEq(V("a"), V("ir").plusConst(-3));
  S.addGE(V("ir") - V("ps").scale(32));
  S.addGE(V("ps").scale(32).plusConst(31 + 3) - V("ir"));
  S.addGE(V("ir") - V("pr").scale(32));
  S.addGE(V("pr").scale(32).plusConst(31) - V("ir"));
  S.addGE(V("pr") - V("ps").plusConst(-1)); // ps < pr
  return S;
}

void BM_FMEliminationChain(benchmark::State &State) {
  System S = figure5System();
  for (auto _ : State) {
    System R = S;
    for (unsigned I = 0; I != 7; ++I)
      if (R.involves(I))
        R = R.fmEliminated(I);
    benchmark::DoNotOptimize(R.numConstraints());
  }
}
BENCHMARK(BM_FMEliminationChain);

void BM_RedundancyRemoval(benchmark::State &State) {
  System S = figure5System();
  for (auto _ : State) {
    System R = S;
    R.removeRedundant();
    benchmark::DoNotOptimize(R.numConstraints());
  }
}
BENCHMARK(BM_RedundancyRemoval);

void BM_IntegerFeasibility(benchmark::State &State) {
  System S = figure5System();
  for (auto _ : State)
    benchmark::DoNotOptimize(S.checkIntegerFeasible());
}
BENCHMARK(BM_IntegerFeasibility);

void BM_ScanFigure6(benchmark::State &State) {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("j", VarKind::Loop);
  System S(std::move(Sp));
  S.addGE(S.varExpr(1) - S.constExpr(16) + S.varExpr(0));
  S.addGE(S.varExpr(0).plusConst(12) - S.varExpr(1).scale(2));
  S.addGE(S.varExpr(1).plusConst(-1));
  S.addGE(S.constExpr(14) - S.varExpr(0));
  std::vector<ScanVarPlan> Plan{ScanVarPlan{0, false, AffineExpr()},
                                ScanVarPlan{1, false, AffineExpr()}};
  for (auto _ : State) {
    auto Code = scanPolyhedron(S, Plan, [&]() {
      SpmdStmt C;
      C.K = SpmdStmt::Kind::Compute;
      std::vector<SpmdStmt> B;
      B.push_back(std::move(C));
      return B;
    });
    benchmark::DoNotOptimize(Code.size());
  }
}
BENCHMARK(BM_ScanFigure6);

void BM_ParametricLexMax(benchmark::State &State) {
  // The Figure 2 last-write query: maximize (tw, iw).
  Space Sp;
  Sp.add("tw", VarKind::Loop);
  Sp.add("iw", VarKind::Loop);
  Sp.add("tr", VarKind::Param);
  Sp.add("ir", VarKind::Param);
  Sp.add("T", VarKind::Param);
  Sp.add("N", VarKind::Param);
  System S(std::move(Sp));
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(4) - S.varExpr(0));
  S.addGE(S.varExpr(1).plusConst(-3));
  S.addGE(S.varExpr(5) - S.varExpr(1));
  S.addEq(S.varExpr(1), S.varExpr(3).plusConst(-3));
  S.addEq(S.varExpr(0), S.varExpr(2));
  for (auto _ : State) {
    LexResult R = lexMax(S, {0, 1});
    benchmark::DoNotOptimize(R.Pieces.size());
  }
}
BENCHMARK(BM_ParametricLexMax);

void BM_Enumerate2DTriangle(benchmark::State &State) {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("j", VarKind::Loop);
  System S(std::move(Sp));
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(1) - S.varExpr(0));
  S.addGE(S.constExpr(60) - S.varExpr(1));
  for (auto _ : State) {
    unsigned N = 0;
    S.enumeratePoints([&](const std::vector<IntT> &) { ++N; });
    benchmark::DoNotOptimize(N);
  }
}
BENCHMARK(BM_Enumerate2DTriangle);

} // namespace

BENCHMARK_MAIN();
