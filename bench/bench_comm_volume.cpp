//===- bench/bench_comm_volume.cpp ----------------------------*- C++ -*-===//
//
// Regenerates the quantitative claims of Section 2.2: value-centric
// communication vs the location-centric (FORTRAN-D-style) baseline.
//
//  (E11) Producer/consumer Y[j] += X[j-1]: dependence analysis forces the
//        whole non-local section across every outer iteration; exact data
//        flow moves at most one fresh word per outer iteration.
//  (E12) Sparse subscript A[1000 i + j]: a single regular section
//        descriptor transfers ~20x the accessed data.
//
//===----------------------------------------------------------------------===//

#include "baseline/LocationCentric.h"
#include "frontend/Parser.h"

#include <cstdio>

using namespace dmcc;

static void producerConsumer() {
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1];
array Y[N + 1];
for i = 0 to N {
  X[i] = i;
  for j = max(i, 1) to N {
    Y[j] = Y[j] + X[j - 1];
  }
}
)");
  std::printf("== Section 2.2.2: producer/consumer Y[j] += X[j-1], "
              "block distribution ==\n");
  std::printf("%6s %8s | %16s %16s | %8s\n", "N", "block",
              "location words", "value words", "ratio");
  for (IntT N : {31, 63, 127, 255}) {
    std::map<std::string, IntT> Params{{"N", N}};
    IntT Block = (N + 1) / 8;
    Decomposition DataD = blockData(P, 0, 0, Block);
    TrafficEstimate Loc = locationCentricTraffic(P, 1, 1, DataD, Params);
    TrafficEstimate Val = valueCentricTraffic(P, 1, 1, DataD, Params);
    std::printf("%6lld %8lld | %16llu %16llu | %7.1fx\n",
                static_cast<long long>(N), static_cast<long long>(Block),
                static_cast<unsigned long long>(Loc.Words),
                static_cast<unsigned long long>(Val.Words),
                Val.Words ? static_cast<double>(Loc.Words) /
                                static_cast<double>(Val.Words)
                          : 0.0);
  }
  std::printf("paper: \"at most one word needs to be transferred in each "
              "iteration of the outermost loop\"\n\n");
}

static void sparseSection() {
  Program P = parseProgramOrDie(R"(
param M;
array A[101000];
array B[300];
for i = 1 to 100 {
  for j = i to 100 {
    B[i + j] = A[1000 * i + j];
  }
}
)");
  std::map<std::string, IntT> Params{{"M", 0}};
  RegularSection S = sectionOf(P, 0, 0, {}, Params);
  uint64_t Accessed = 0;
  for (IntT I = 1; I <= 100; ++I)
    Accessed += static_cast<uint64_t>(100 - I + 1);
  std::printf("== Section 2.2.3: regular-section blowup for "
              "A[1000 i + j] ==\n");
  std::printf("accessed elements:        %llu\n",
              static_cast<unsigned long long>(Accessed));
  std::printf("regular section [%lld, %lld]: %llu elements\n",
              static_cast<long long>(S.Lo[0]),
              static_cast<long long>(S.Hi[0]),
              static_cast<unsigned long long>(S.volume()));
  std::printf("blowup factor:            %.1fx (paper: ~20x)\n\n",
              static_cast<double>(S.volume()) /
                  static_cast<double>(Accessed));
}

static void killChain() {
  // Sanity: when every element of the section is a live value consumed
  // exactly once (dense reversal through an updated array), the two
  // schemes move the same volume — the value-centric approach only wins
  // when values are reused or sections over-approximate.
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array B[N + 1];
for i = 0 to N {
  A[i] = i;
}
for k = 0 to N {
  A[k] = A[k] + 1;
}
for j = 0 to N {
  B[j] = A[N - j];
}
)");
  std::printf("== Dense update + reversal: equal volumes expected ==\n");
  std::printf("%6s | %16s %16s\n", "N", "location words", "value words");
  for (IntT N : {31, 127}) {
    std::map<std::string, IntT> Params{{"N", N}};
    Decomposition DataD = blockData(P, 0, 0, (N + 1) / 4);
    TrafficEstimate Loc = locationCentricTraffic(P, 2, 0, DataD, Params);
    TrafficEstimate Val = valueCentricTraffic(P, 2, 0, DataD, Params);
    std::printf("%6lld | %16llu %16llu\n", static_cast<long long>(N),
                static_cast<unsigned long long>(Loc.Words),
                static_cast<unsigned long long>(Val.Words));
  }
  std::printf("\n");
}

int main() {
  producerConsumer();
  sparseSection();
  killChain();
  return 0;
}
