//===- bench/bench_fault_overhead.cpp -------------------------*- C++ -*-===//
//
// Cost of the reliable transport under injected faults: LU decomposition
// on the simulated machine, sweeping packet drop rates with a fixed fault
// seed. For each rate the table reports the retransmission count and the
// makespan inflation relative to the fault-free ideal, plus a functional
// leg at small N proving the result stays bit-exact against the
// sequential interpreter while packets are being dropped.
//
// Set DMCC_FAULT_BENCH_SMALL=1 to run the perf sweep at quarter scale.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <cstdlib>

using namespace dmcc;

namespace {

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

SimOptions simOpts(IntT Procs, IntT N, bool Functional, FaultOptions F,
                   CheckpointOptions CK = {}) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = {{"N", N}};
  SO.Functional = Functional;
  SO.CollapseLoops = !Functional;
  SO.Faults = F;
  SO.Checkpoint = CK;
  return SO;
}

/// Compares the simulated final X against the sequential interpreter.
/// Returns the number of missing-or-wrong elements.
unsigned verify(const Program &P, Simulator &Sim, IntT N) {
  SeqInterpreter Gold(P, {{"N", N}});
  Gold.run();
  unsigned Bad = 0;
  std::vector<IntT> Idx(2);
  for (Idx[0] = 0; Idx[0] <= N; ++Idx[0])
    for (Idx[1] = 0; Idx[1] <= N; ++Idx[1]) {
      auto Got = Sim.finalValue(0, Idx);
      if (!Got || *Got != Gold.arrayValue(0, Idx))
        ++Bad;
    }
  return Bad;
}

} // namespace

int main() {
  bool Small = std::getenv("DMCC_FAULT_BENCH_SMALL") != nullptr;
  Program P = parseProgramOrDie(LUSource);
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  CompiledProgram CP = compile(P, Spec);

  std::printf("== Fault-injection overhead: LU under a lossy network ==\n");
  std::printf("compile: %.2f s; %u communication channels\n",
              CP.Stats.CompileSeconds, CP.Stats.NumCommChannels);

  // Functional leg: every element must stay bit-exact while the network
  // drops a tenth of the packets.
  {
    const IntT N = 32;
    FaultOptions F;
    F.Seed = 42;
    F.DropRate = 0.1;
    Simulator Sim(P, CP, Spec, simOpts(4, N, true, F));
    SimResult R = Sim.run();
    if (!R.Ok) {
      std::printf("functional leg failed: %s\n", R.Error.c_str());
      return 1;
    }
    unsigned Bad = verify(P, Sim, N);
    std::printf("\nfunctional leg (N = %lld, P = 4, drop = 0.10, "
                "seed = 42): %s (%llu retransmissions)\n",
                static_cast<long long>(N),
                Bad == 0 ? "bit-exact" : "MISMATCH",
                static_cast<unsigned long long>(R.Retransmissions));
    if (Bad != 0)
      return 1;
  }

  // Perf sweep: fixed seed, rising drop rate. drop = 0 runs the
  // default (unreliable, zero-overhead) path and anchors the ideal.
  const IntT N = Small ? 128 : 512;
  const IntT Procs = 8;
  // Row 0 is the default (unreliable, zero-overhead) path; the second
  // row turns the ack protocol on with no faults, isolating protocol
  // overhead from fault-recovery overhead in the rows that follow.
  struct Leg {
    const char *Name;
    double Rate;
    bool Reliable;
  };
  const Leg Legs[] = {{"ideal", 0.0, false}, {"ack-only", 0.0, true},
                      {"0.02", 0.02, true},  {"0.05", 0.05, true},
                      {"0.10", 0.1, true},   {"0.20", 0.2, true}};
  std::printf("\nperf sweep (N = %lld, P = %lld, seed = 42)\n",
              static_cast<long long>(N), static_cast<long long>(Procs));
  std::printf("%9s %12s %11s %9s %9s %11s %10s\n", "drop", "time(s)",
              "inflation", "retrans", "dropped", "dups-supp", "acks");
  double Ideal = 0;
  for (const Leg &L : Legs) {
    FaultOptions F;
    F.Seed = 42;
    F.DropRate = L.Rate;
    F.AlwaysReliable = L.Reliable;
    Simulator Sim(P, CP, Spec, simOpts(Procs, N, false, F));
    SimResult R = Sim.run();
    if (!R.Ok) {
      std::printf("  %s failed: %s\n", L.Name, R.Error.c_str());
      return 1;
    }
    if (Ideal == 0)
      Ideal = R.MakespanSeconds;
    std::printf("%9s %12.4f %10.2fx %9llu %9llu %11llu %10llu\n", L.Name,
                R.MakespanSeconds, R.MakespanSeconds / Ideal,
                static_cast<unsigned long long>(R.Retransmissions),
                static_cast<unsigned long long>(R.DroppedPackets),
                static_cast<unsigned long long>(R.DuplicatesSuppressed),
                static_cast<unsigned long long>(R.AcksSent));
  }
  std::printf("\ninflation is makespan relative to the fault-free ideal; "
              "the ack-only row is\npure stop-and-wait protocol cost. "
              "Message/word counters stay logical, so wire\noverhead "
              "appears only in the retransmission and ack columns.\n");

  // Crash leg: packet loss plus crash-stop failures with checkpoint/
  // restart recovery; the result must still be bit-exact.
  {
    const IntT CN = 32;
    FaultOptions F;
    F.Seed = 42;
    F.DropRate = 0.05;
    F.CrashRate = 1e-4;
    F.CrashSeed = 7;
    CheckpointOptions CK;
    CK.IntervalSteps = 10000;
    Simulator Sim(P, CP, Spec, simOpts(4, CN, true, F, CK));
    SimResult R = Sim.run();
    if (!R.Ok) {
      std::printf("crash leg failed: %s\n", R.Error.c_str());
      return 1;
    }
    unsigned Bad = verify(P, Sim, CN);
    std::printf("\ncrash leg (N = %lld, P = 4, drop = 0.05, crash = 1e-4, "
                "checkpoint every %llu steps):\n  %s; %llu crashes, "
                "%llu rollbacks, %llu checkpoints, %llu steps replayed\n",
                static_cast<long long>(CN),
                static_cast<unsigned long long>(CK.IntervalSteps),
                Bad == 0 ? "bit-exact" : "MISMATCH",
                static_cast<unsigned long long>(R.Recovery.Crashes),
                static_cast<unsigned long long>(R.Recovery.Rollbacks),
                static_cast<unsigned long long>(R.Recovery.CheckpointsTaken),
                static_cast<unsigned long long>(R.Recovery.ReplayedSteps));
    if (Bad != 0)
      return 1;
  }
  return 0;
}
