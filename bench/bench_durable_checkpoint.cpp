//===- bench/bench_durable_checkpoint.cpp ---------------------*- C++ -*-===//
//
// Durability cost study (DESIGN.md §13): LU on the simulated machine,
// sweeping the checkpoint interval. For each interval the benchmark
// times three legs by host wall clock:
//
//  - in_memory: checkpoints kept in the in-process stable store only;
//  - durable:   every checkpoint additionally serialized, CRC-framed
//               and fsynced to disk (the SIGKILL-survivable mode);
//  - resume:    a fresh simulator restoring the newest intact image
//               from a half-prefix of the durable run's directory (the
//               state a mid-run kill leaves) and replaying to the end.
//
// Every resume leg is required to reproduce the uninterrupted run's
// makespan exactly — a divergence fails the benchmark. Output is one
// JSON object; the repo snapshot lives in BENCH_durability.json.
//
// Set DMCC_FAULT_BENCH_SMALL=1 to run at reduced scale.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sim/Simulator.h"
#include "support/StableStore.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unistd.h>

using namespace dmcc;

namespace {

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

SimOptions simOpts(IntT N, CheckpointOptions CK) {
  SimOptions SO;
  SO.PhysGrid = {4};
  SO.ParamValues = {{"N", N}};
  SO.Functional = true;
  SO.Checkpoint = CK;
  return SO;
}

double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch())
      .count();
}

void removeDir(const std::string &Dir) {
  for (const std::string &F : stable::listFiles(Dir, "", ""))
    ::unlink((Dir + "/" + F).c_str());
  ::rmdir(Dir.c_str());
}

uint64_t dirBytes(const std::string &Dir, unsigned &Files) {
  uint64_t Total = 0;
  Files = 0;
  for (const std::string &F :
       stable::listFiles(Dir, "ckpt-", ".dmc")) {
    FILE *Fp = std::fopen((Dir + "/" + F).c_str(), "rb");
    if (!Fp)
      continue;
    std::fseek(Fp, 0, SEEK_END);
    Total += static_cast<uint64_t>(std::ftell(Fp));
    std::fclose(Fp);
    ++Files;
  }
  return Total;
}

} // namespace

int main() {
  bool Small = std::getenv("DMCC_FAULT_BENCH_SMALL") != nullptr;
  const IntT N = Small ? 24 : 48;

  Program P = parseProgramOrDie(LUSource);
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  CompiledProgram CP = compile(P, Spec);

  char Template[] = "/tmp/dmcc-bench-durable-XXXXXX";
  std::string Root = mkdtemp(Template);
  if (Root.empty()) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  const uint64_t Intervals[] = {Small ? 100u : 500u,
                                Small ? 400u : 2000u,
                                Small ? 1600u : 8000u};
  const size_t NumIntervals = sizeof(Intervals) / sizeof(Intervals[0]);

  std::printf("{\n");
  std::printf("  \"benchmark\": \"durable_checkpoint\",\n");
  std::printf("  \"case\": \"lu\",\n");
  std::printf("  \"n\": %lld,\n  \"procs\": 4,\n",
              static_cast<long long>(N));
  std::printf("  \"rows\": [\n");

  int Rc = 0;
  for (size_t I = 0; I != NumIntervals && Rc == 0; ++I) {
    CheckpointOptions CK;
    CK.IntervalSteps = Intervals[I];

    // Leg 1: in-memory checkpoints only.
    double T0 = now();
    SimResult Mem = Simulator(P, CP, Spec, simOpts(N, CK)).run();
    double MemWall = now() - T0;
    if (!Mem.Ok) {
      std::fprintf(stderr, "in-memory leg failed: %s\n",
                   Mem.Error.c_str());
      Rc = 1;
      break;
    }

    // Leg 2: the same schedule with every image fsynced to disk.
    std::string Dir =
        Root + "/full-" + std::to_string(CK.IntervalSteps);
    CK.DurableDir = Dir;
    T0 = now();
    SimResult Dur = Simulator(P, CP, Spec, simOpts(N, CK)).run();
    double DurWall = now() - T0;
    unsigned Files = 0;
    uint64_t Bytes = dirBytes(Dir, Files);
    if (!Dur.Ok || Dur.MakespanSeconds != Mem.MakespanSeconds) {
      std::fprintf(stderr, "durable leg diverged from in-memory\n");
      Rc = 1;
      break;
    }

    // Leg 3: resume from a half-prefix of the images (a mid-run kill).
    std::string Cut =
        Root + "/cut-" + std::to_string(CK.IntervalSteps);
    std::string Err;
    if (!stable::ensureDir(Cut, Err)) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      Rc = 1;
      break;
    }
    std::vector<std::string> Imgs =
        stable::listFiles(Dir, "ckpt-", ".dmc");
    for (size_t K = 0; K != Imgs.size() / 2; ++K) {
      stable::ReadFramesResult RF =
          stable::readFrames(Dir + "/" + Imgs[K]);
      std::vector<uint8_t> Raw;
      for (const stable::Frame &Fr : RF.Frames) {
        std::vector<uint8_t> E = stable::encodeFrame(Fr.Type, Fr.Payload);
        Raw.insert(Raw.end(), E.begin(), E.end());
      }
      if (!stable::atomicWriteFile(Cut + "/" + Imgs[K], Raw, Err)) {
        std::fprintf(stderr, "%s\n", Err.c_str());
        Rc = 1;
        break;
      }
    }
    CK.DurableDir = Cut;
    CK.Resume = true;
    T0 = now();
    Simulator Res(P, CP, Spec, simOpts(N, CK));
    SimResult RRes = Res.run();
    double ResWall = now() - T0;
    if (!RRes.Ok || RRes.MakespanSeconds != Dur.MakespanSeconds) {
      std::fprintf(stderr, "resume leg is NOT bit-identical\n");
      Rc = 1;
      break;
    }

    std::printf(
        "    {\"interval_steps\": %llu,\n"
        "      \"in_memory_wall_seconds\": %.4f,\n"
        "      \"durable_wall_seconds\": %.4f,\n"
        "      \"durable_overhead\": %.3f,\n"
        "      \"checkpoint_files\": %u, \"checkpoint_bytes\": %llu,\n"
        "      \"resume_wall_seconds\": %.4f,\n"
        "      \"resumed_at_events\": %llu, \"total_events\": %llu}%s\n",
        static_cast<unsigned long long>(CK.IntervalSteps), MemWall,
        DurWall, MemWall > 0 ? DurWall / MemWall : 0.0, Files,
        static_cast<unsigned long long>(Bytes), ResWall,
        static_cast<unsigned long long>(
            Res.resumeInfo().ResumedAtEvents),
        static_cast<unsigned long long>(RRes.TotalEvents),
        I + 1 != NumIntervals ? "," : "");

    removeDir(Cut);
    removeDir(Dir);
  }

  removeDir(Root);
  if (Rc)
    return Rc;
  std::printf("  ],\n");
  std::printf("  \"notes\": \"durable legs fsync one CRC-framed image "
              "per checkpoint via temp+rename; every resume leg "
              "restored a half-prefix kill and reproduced the "
              "uninterrupted makespan exactly\"\n");
  std::printf("}\n");
  return 0;
}
