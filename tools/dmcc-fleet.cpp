//===- tools/dmcc-fleet.cpp - Scenario fleet orchestrator ------*- C++ -*-===//
//
// Compile a program once, then fan a scenario matrix (fault seed x
// crash seed x checkpoint interval x engine/thread count) across a
// fork-based worker pool with watchdog timeouts, crash detection and
// bounded retry with exponential backoff (DESIGN.md §12). Every
// surviving scenario's final arrays are checked bit-identical to the
// clean sequential run; the aggregated JSON report accounts for every
// scenario with a terminal status.
//
//   dmcc-fleet FILE [options]
//     --procs P              simulated processors per scenario (def 8)
//     --param NAME=VALUE     parameter binding (repeatable; applies to
//                            every program, after its own defaults)
//
//   Matrix axes (cross product = scenario count):
//     --programs LIST        comma-separated .dm files: the whole
//                            scenario matrix runs once per program and
//                            the JSON report groups outcomes
//                            per-program (a positional FILE is
//                            prepended to the list; with --programs the
//                            positional FILE is optional). Journals get
//                            a per-program suffix when more than one
//                            program runs.
//     --fault-seeds N        fault-schedule seeds 1..N       (def 4)
//     --crash-seeds N        crash-schedule seeds 1..N       (def 1)
//     --checkpoint-intervals LIST
//                            comma-separated logical-step intervals;
//                            0 = no checkpoints (crash rate is zeroed
//                            in those cells)                 (def 0,64)
//     --threads LIST         comma-separated engine thread counts
//                            (1 = sequential)                (def 1,2)
//     --engines LIST         comma-separated scheduler engines from
//                            {rounds, event}; event cells run only at
//                            thread count 1                (def rounds)
//
//   Base fault rates applied to every scenario:
//     --drop-rate R --dup-rate R --corrupt-rate R --partition-rate R
//     --partition-outage N --slow-link-rate R --slow-link-factor F
//     --crash-rate R --max-retries N --retry-timeout T
//
//   Supervision:
//     --jobs N               worker shards (def 4)
//     --timeout T            per-scenario watchdog seconds (def 30)
//     --fleet-retries N      respawns after a timeout/crash (def 2)
//     --backoff T            first respawn delay, doubles (def 0.05)
//     --report PATH          write the JSON report here (def stdout);
//                            written atomically (temp+fsync+rename)
//
//   Crash-resumable sweeps (DESIGN.md §13):
//     --journal PATH         append-only CRC-framed journal of scenario
//                            start/verdict records
//     --resume               replay --journal first: journaled verdicts
//                            are restored, in-flight scenarios re-run;
//                            the merged report equals an uninterrupted
//                            sweep
//
//   Sabotage hooks (supervision tests; repeatable):
//     --hang-scenario I      worker for scenario I hangs forever
//     --abort-scenario I     worker for scenario I aborts every attempt
//     --abort-once-scenario I  worker aborts on the first attempt only
//
//   Exit codes (support/ExitCodes.h): 0 when the matrix is fully
//   accounted for and no scenario mismatched the clean run; 6 on any
//   mismatch; 2 usage (incl. a journal that belongs to a different
//   matrix); 3 parse/compile error; 7 report/journal I/O failure.
//
//===----------------------------------------------------------------------===//

#include "core/SpecParser.h"
#include "sim/Fleet.h"
#include "support/ExitCodes.h"
#include "support/StableStore.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace dmcc;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s FILE [--procs P] [--param N=V]...\n"
      "       [--programs FILE1,FILE2,...]\n"
      "       [--fault-seeds N] [--crash-seeds N]\n"
      "       [--checkpoint-intervals LIST] [--threads LIST]\n"
      "       [--engines LIST]\n"
      "       [--drop-rate R] [--dup-rate R] [--corrupt-rate R]\n"
      "       [--partition-rate R] [--partition-outage N]\n"
      "       [--slow-link-rate R] [--slow-link-factor F]\n"
      "       [--crash-rate R] [--max-retries N] [--retry-timeout T]\n"
      "       [--jobs N] [--timeout T] [--fleet-retries N] "
      "[--backoff T]\n"
      "       [--report PATH] [--journal PATH] [--resume]\n"
      "       [--hang-scenario I] [--abort-scenario I]\n"
      "       [--abort-once-scenario I]\n",
      Argv0);
  return ExitUsage;
}

/// Parses a comma-separated list of nonnegative integers.
bool parseList(const char *Flag, const char *Arg,
               std::vector<uint64_t> &Out) {
  Out.clear();
  const char *C = Arg;
  while (*C) {
    char *End = nullptr;
    uint64_t V = std::strtoull(C, &End, 10);
    if (End == C) {
      std::fprintf(stderr,
                   "error: %s expects a comma-separated integer list, "
                   "got '%s'\n",
                   Flag, Arg);
      return false;
    }
    Out.push_back(V);
    C = End;
    if (*C == ',')
      ++C;
    else if (*C) {
      std::fprintf(stderr,
                   "error: %s expects a comma-separated integer list, "
                   "got '%s'\n",
                   Flag, Arg);
      return false;
    }
  }
  if (Out.empty()) {
    std::fprintf(stderr, "error: %s got an empty list\n", Flag);
    return false;
  }
  return true;
}

bool badProbability(const char *Flag, double V) {
  if (V >= 0.0 && V <= 1.0)
    return false;
  std::fprintf(stderr,
               "error: %s must be a probability in [0, 1], got %g\n",
               Flag, V);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  const char *File = nullptr;
  const char *ReportPath = nullptr;
  std::vector<std::string> ProgramList;
  bool ProgramsGiven = false;
  IntT Procs = 8;
  FleetMatrixSpec MS;
  uint64_t NumFaultSeeds = 4, NumCrashSeeds = 1;
  MS.CheckpointIntervals = {0, 64};
  MS.ThreadCounts = {1, 2};
  FleetOptions FO;
  std::map<std::string, IntT> Params;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 < Argc)
        return Argv[++I];
      std::fprintf(stderr, "error: option '%s' requires a value\n",
                   Flag);
      return nullptr;
    };
    const char *V;
    if (std::strcmp(A, "--procs") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      Procs = std::atoll(V);
    } else if (std::strcmp(A, "--fault-seeds") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      NumFaultSeeds = std::strtoull(V, nullptr, 10);
    } else if (std::strcmp(A, "--crash-seeds") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      NumCrashSeeds = std::strtoull(V, nullptr, 10);
    } else if (std::strcmp(A, "--checkpoint-intervals") == 0) {
      if (!(V = Value(A)) || !parseList(A, V, MS.CheckpointIntervals))
        return ExitUsage;
    } else if (std::strcmp(A, "--threads") == 0) {
      std::vector<uint64_t> L;
      if (!(V = Value(A)) || !parseList(A, V, L))
        return ExitUsage;
      MS.ThreadCounts.clear();
      for (uint64_t T : L)
        MS.ThreadCounts.push_back(static_cast<unsigned>(T ? T : 1));
    } else if (std::strcmp(A, "--engines") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Engines.clear();
      const char *C = V;
      while (*C) {
        const char *End = C;
        while (*End && *End != ',')
          ++End;
        std::string Name(C, End - C);
        if (Name == "rounds")
          MS.Engines.push_back(SimEngine::Rounds);
        else if (Name == "event")
          MS.Engines.push_back(SimEngine::Event);
        else {
          std::fprintf(stderr,
                       "error: --engines expects a comma-separated list "
                       "of 'rounds'/'event', got '%s'\n",
                       V);
          return ExitUsage;
        }
        C = *End ? End + 1 : End;
      }
      if (MS.Engines.empty()) {
        std::fprintf(stderr, "error: --engines got an empty list\n");
        return ExitUsage;
      }
    } else if (std::strcmp(A, "--drop-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.DropRate = std::atof(V);
    } else if (std::strcmp(A, "--dup-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.DupRate = std::atof(V);
    } else if (std::strcmp(A, "--corrupt-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.CorruptRate = std::atof(V);
    } else if (std::strcmp(A, "--partition-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.PartitionRate = std::atof(V);
    } else if (std::strcmp(A, "--partition-outage") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.PartitionMaxOutage =
          static_cast<unsigned>(std::strtoull(V, nullptr, 10));
    } else if (std::strcmp(A, "--slow-link-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.SlowLinkRate = std::atof(V);
    } else if (std::strcmp(A, "--slow-link-factor") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.SlowLinkMaxFactor = std::atof(V);
    } else if (std::strcmp(A, "--crash-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.CrashRate = std::atof(V);
    } else if (std::strcmp(A, "--max-retries") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.MaxRetries =
          static_cast<unsigned>(std::strtoull(V, nullptr, 10));
    } else if (std::strcmp(A, "--retry-timeout") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.RetryTimeoutSeconds = std::atof(V);
    } else if (std::strcmp(A, "--jobs") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.Jobs = static_cast<unsigned>(std::strtoull(V, nullptr, 10));
    } else if (std::strcmp(A, "--timeout") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.TimeoutSeconds = std::atof(V);
    } else if (std::strcmp(A, "--fleet-retries") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.MaxRetries =
          static_cast<unsigned>(std::strtoull(V, nullptr, 10));
    } else if (std::strcmp(A, "--backoff") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.RetryBackoffSeconds = std::atof(V);
    } else if (std::strcmp(A, "--report") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      ReportPath = V;
    } else if (std::strcmp(A, "--journal") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.JournalPath = V;
    } else if (std::strcmp(A, "--resume") == 0) {
      FO.Resume = true;
    } else if (std::strcmp(A, "--hang-scenario") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.HangScenarios.insert(
          static_cast<unsigned>(std::strtoull(V, nullptr, 10)));
    } else if (std::strcmp(A, "--abort-scenario") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.AbortScenarios.insert(
          static_cast<unsigned>(std::strtoull(V, nullptr, 10)));
    } else if (std::strcmp(A, "--abort-once-scenario") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.AbortOnceScenarios.insert(
          static_cast<unsigned>(std::strtoull(V, nullptr, 10)));
    } else if (std::strcmp(A, "--programs") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      ProgramsGiven = true;
      const char *C = V;
      while (*C) {
        const char *End = C;
        while (*End && *End != ',')
          ++End;
        if (End != C)
          ProgramList.emplace_back(C, End - C);
        C = *End ? End + 1 : End;
      }
      if (ProgramList.empty()) {
        std::fprintf(stderr, "error: --programs got an empty list\n");
        return ExitUsage;
      }
    } else if (std::strcmp(A, "--param") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      const char *Eq = std::strchr(V, '=');
      if (!Eq) {
        std::fprintf(stderr, "error: --param expects NAME=VALUE\n");
        return ExitUsage;
      }
      Params[std::string(V, Eq - V)] = std::atoll(Eq + 1);
    } else if (A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A);
      return usage(Argv[0]);
    } else if (!File) {
      File = A;
    } else {
      return usage(Argv[0]);
    }
  }
  if (File)
    ProgramList.insert(ProgramList.begin(), File);
  if (ProgramList.empty())
    return usage(Argv[0]);
  if (badProbability("--drop-rate", MS.Base.DropRate) ||
      badProbability("--dup-rate", MS.Base.DupRate) ||
      badProbability("--corrupt-rate", MS.Base.CorruptRate) ||
      badProbability("--partition-rate", MS.Base.PartitionRate) ||
      badProbability("--slow-link-rate", MS.Base.SlowLinkRate) ||
      badProbability("--crash-rate", MS.Base.CrashRate))
    return ExitUsage;
  if (Procs < 1) {
    std::fprintf(stderr, "error: --procs needs a count >= 1\n");
    return ExitUsage;
  }
  if (NumFaultSeeds == 0 || NumCrashSeeds == 0) {
    std::fprintf(stderr,
                 "error: --fault-seeds/--crash-seeds need >= 1 seed\n");
    return ExitUsage;
  }
  if (FO.Resume && FO.JournalPath.empty()) {
    std::fprintf(stderr,
                 "error: --resume requires --journal PATH (there is "
                 "no journal to resume from)\n");
    return ExitUsage;
  }
  for (uint64_t S = 1; S <= NumFaultSeeds; ++S)
    MS.FaultSeeds.push_back(S);
  for (uint64_t S = 1; S <= NumCrashSeeds; ++S)
    MS.CrashSeeds.push_back(S);

  std::vector<FleetScenario> Matrix = buildMatrix(MS);
  std::fprintf(stderr,
               "dmcc-fleet: %zu scenarios across %u shards (timeout "
               "%.1f s, %u retries)%s\n",
               Matrix.size(), FO.Jobs ? FO.Jobs : 1, FO.TimeoutSeconds,
               FO.MaxRetries,
               ProgramList.size() > 1 ? ", per program" : "");

  // The whole matrix runs once per program; Params holds the CLI
  // bindings only, so one program's defaults never leak into another's.
  const std::map<std::string, IntT> CliParams = Params;
  std::vector<NamedFleetReport> Reports;
  for (size_t Pi = 0; Pi != ProgramList.size(); ++Pi) {
    const std::string &ProgFile = ProgramList[Pi];
    std::ifstream In(ProgFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   ProgFile.c_str());
      return ExitCompileError;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    SpecParseOutput SP = parseWithSpec(Buf.str());
    if (!SP.ok()) {
      std::fprintf(stderr, "%s: error: %s\n", ProgFile.c_str(),
                   SP.Error.c_str());
      return ExitCompileError;
    }
    Program &P = *SP.Prog;
    std::map<std::string, IntT> ProgParams = CliParams;
    for (const auto &[Name, Val] : SP.ParamDefaults)
      ProgParams.emplace(Name, Val);
    for (unsigned I = 0; I != P.space().size(); ++I) {
      if (P.space().kind(I) != VarKind::Param)
        continue;
      if (!ProgParams.count(P.space().name(I))) {
        std::fprintf(stderr,
                     "%s: error: parameter '%s' needs --param %s=VALUE\n",
                     ProgFile.c_str(), P.space().name(I).c_str(),
                     P.space().name(I).c_str());
        return ExitUsage;
      }
    }

    // Compile once per program; every worker reuses it.
    CompiledProgram CP = compile(P, SP.Spec, CompilerOptions());
    if (!CP.Ok) {
      std::fprintf(stderr, "%s: error: %s\n", ProgFile.c_str(),
                   CP.ErrorMessage.c_str());
      return ExitCompileError;
    }

    // With several programs each gets its own journal: the scenario
    // index alone no longer identifies a cell across the sweep.
    FleetOptions ProgFO = FO;
    if (!FO.JournalPath.empty() && ProgramList.size() > 1)
      ProgFO.JournalPath = FO.JournalPath + ".p" + std::to_string(Pi);

    Fleet F(P, CP, SP.Spec, ProgParams, Procs, ProgFO);
    FleetReport Rep = F.run(Matrix);
    if (!Rep.Error.empty()) {
      std::fprintf(stderr, "%s: error: %s\n", ProgFile.c_str(),
                   Rep.Error.c_str());
      return Rep.ErrorIsIo ? ExitIo : ExitUsage;
    }
    if (Rep.ResumedFromJournal)
      std::fprintf(stderr,
                   "dmcc-fleet: %s: resumed %u verdict(s) from '%s', "
                   "re-running %zu scenario(s)\n",
                   ProgFile.c_str(), Rep.ResumedFromJournal,
                   ProgFO.JournalPath.c_str(),
                   Matrix.size() - Rep.ResumedFromJournal);
    if (ProgramList.size() > 1)
      std::fprintf(stderr, "dmcc-fleet: %s: %u ok, %u mismatch in %.2f s\n",
                   ProgFile.c_str(), Rep.count(ScenarioStatus::Ok),
                   Rep.count(ScenarioStatus::Mismatch),
                   Rep.ElapsedSeconds);
    Reports.push_back(NamedFleetReport{ProgFile, std::move(Rep)});
  }

  // Grouped shape iff --programs was given (even for a single entry);
  // a plain positional run keeps the original single-report document.
  std::string Json = ProgramsGiven ? groupedFleetJson(Reports)
                                   : Reports[0].Report.json();
  if (ReportPath) {
    // Atomic (temp+fsync+rename): a crash mid-write must never leave a
    // torn report behind — consumers see the old report or the new one.
    std::string Err;
    if (!stable::atomicWriteFile(ReportPath, Json, Err)) {
      std::fprintf(stderr, "error: cannot write report: %s\n",
                   Err.c_str());
      return ExitIo;
    }
  } else {
    std::fputs(Json.c_str(), stdout);
  }

  unsigned Totals[7] = {};
  double Elapsed = 0;
  static const ScenarioStatus All[] = {
      ScenarioStatus::Ok,       ScenarioStatus::Mismatch,
      ScenarioStatus::Deadlock, ScenarioStatus::TransportExhausted,
      ScenarioStatus::Timeout,  ScenarioStatus::WorkerCrash,
      ScenarioStatus::RetryExhausted};
  for (const NamedFleetReport &R : Reports) {
    Elapsed += R.Report.ElapsedSeconds;
    for (unsigned I = 0; I != 7; ++I)
      Totals[I] += R.Report.count(All[I]);
  }
  std::fprintf(
      stderr,
      "dmcc-fleet: %u ok, %u mismatch, %u deadlock, %u "
      "transport-exhausted, %u timeout, %u worker-crash, %u "
      "retry-exhausted in %.2f s\n",
      Totals[0], Totals[1], Totals[2], Totals[3], Totals[4], Totals[5],
      Totals[6], Elapsed);

  // Any mismatch against the clean sequential run is a correctness
  // failure of dmcc itself, not of the hostile scenario.
  return Totals[1] ? ExitVerifyMismatch : ExitSuccess;
}
