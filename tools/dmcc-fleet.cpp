//===- tools/dmcc-fleet.cpp - Scenario fleet orchestrator ------*- C++ -*-===//
//
// Compile a program once, then fan a scenario matrix (fault seed x
// crash seed x checkpoint interval x engine/thread count) across a
// fork-based worker pool with watchdog timeouts, crash detection and
// bounded retry with exponential backoff (DESIGN.md §12). Every
// surviving scenario's final arrays are checked bit-identical to the
// clean sequential run; the aggregated JSON report accounts for every
// scenario with a terminal status.
//
//   dmcc-fleet FILE [options]
//     --procs P              simulated processors per scenario (def 8)
//     --param NAME=VALUE     parameter binding (repeatable)
//
//   Matrix axes (cross product = scenario count):
//     --fault-seeds N        fault-schedule seeds 1..N       (def 4)
//     --crash-seeds N        crash-schedule seeds 1..N       (def 1)
//     --checkpoint-intervals LIST
//                            comma-separated logical-step intervals;
//                            0 = no checkpoints (crash rate is zeroed
//                            in those cells)                 (def 0,64)
//     --threads LIST         comma-separated engine thread counts
//                            (1 = sequential)                (def 1,2)
//     --engines LIST         comma-separated scheduler engines from
//                            {rounds, event}; event cells run only at
//                            thread count 1                (def rounds)
//
//   Base fault rates applied to every scenario:
//     --drop-rate R --dup-rate R --corrupt-rate R --partition-rate R
//     --partition-outage N --slow-link-rate R --slow-link-factor F
//     --crash-rate R --max-retries N --retry-timeout T
//
//   Supervision:
//     --jobs N               worker shards (def 4)
//     --timeout T            per-scenario watchdog seconds (def 30)
//     --fleet-retries N      respawns after a timeout/crash (def 2)
//     --backoff T            first respawn delay, doubles (def 0.05)
//     --report PATH          write the JSON report here (def stdout);
//                            written atomically (temp+fsync+rename)
//
//   Crash-resumable sweeps (DESIGN.md §13):
//     --journal PATH         append-only CRC-framed journal of scenario
//                            start/verdict records
//     --resume               replay --journal first: journaled verdicts
//                            are restored, in-flight scenarios re-run;
//                            the merged report equals an uninterrupted
//                            sweep
//
//   Sabotage hooks (supervision tests; repeatable):
//     --hang-scenario I      worker for scenario I hangs forever
//     --abort-scenario I     worker for scenario I aborts every attempt
//     --abort-once-scenario I  worker aborts on the first attempt only
//
//   Exit codes (support/ExitCodes.h): 0 when the matrix is fully
//   accounted for and no scenario mismatched the clean run; 6 on any
//   mismatch; 2 usage (incl. a journal that belongs to a different
//   matrix); 3 parse/compile error; 7 report/journal I/O failure.
//
//===----------------------------------------------------------------------===//

#include "core/SpecParser.h"
#include "sim/Fleet.h"
#include "support/ExitCodes.h"
#include "support/StableStore.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace dmcc;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s FILE [--procs P] [--param N=V]...\n"
      "       [--fault-seeds N] [--crash-seeds N]\n"
      "       [--checkpoint-intervals LIST] [--threads LIST]\n"
      "       [--engines LIST]\n"
      "       [--drop-rate R] [--dup-rate R] [--corrupt-rate R]\n"
      "       [--partition-rate R] [--partition-outage N]\n"
      "       [--slow-link-rate R] [--slow-link-factor F]\n"
      "       [--crash-rate R] [--max-retries N] [--retry-timeout T]\n"
      "       [--jobs N] [--timeout T] [--fleet-retries N] "
      "[--backoff T]\n"
      "       [--report PATH] [--journal PATH] [--resume]\n"
      "       [--hang-scenario I] [--abort-scenario I]\n"
      "       [--abort-once-scenario I]\n",
      Argv0);
  return ExitUsage;
}

/// Parses a comma-separated list of nonnegative integers.
bool parseList(const char *Flag, const char *Arg,
               std::vector<uint64_t> &Out) {
  Out.clear();
  const char *C = Arg;
  while (*C) {
    char *End = nullptr;
    uint64_t V = std::strtoull(C, &End, 10);
    if (End == C) {
      std::fprintf(stderr,
                   "error: %s expects a comma-separated integer list, "
                   "got '%s'\n",
                   Flag, Arg);
      return false;
    }
    Out.push_back(V);
    C = End;
    if (*C == ',')
      ++C;
    else if (*C) {
      std::fprintf(stderr,
                   "error: %s expects a comma-separated integer list, "
                   "got '%s'\n",
                   Flag, Arg);
      return false;
    }
  }
  if (Out.empty()) {
    std::fprintf(stderr, "error: %s got an empty list\n", Flag);
    return false;
  }
  return true;
}

bool badProbability(const char *Flag, double V) {
  if (V >= 0.0 && V <= 1.0)
    return false;
  std::fprintf(stderr,
               "error: %s must be a probability in [0, 1], got %g\n",
               Flag, V);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  const char *File = nullptr;
  const char *ReportPath = nullptr;
  IntT Procs = 8;
  FleetMatrixSpec MS;
  uint64_t NumFaultSeeds = 4, NumCrashSeeds = 1;
  MS.CheckpointIntervals = {0, 64};
  MS.ThreadCounts = {1, 2};
  FleetOptions FO;
  std::map<std::string, IntT> Params;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 < Argc)
        return Argv[++I];
      std::fprintf(stderr, "error: option '%s' requires a value\n",
                   Flag);
      return nullptr;
    };
    const char *V;
    if (std::strcmp(A, "--procs") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      Procs = std::atoll(V);
    } else if (std::strcmp(A, "--fault-seeds") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      NumFaultSeeds = std::strtoull(V, nullptr, 10);
    } else if (std::strcmp(A, "--crash-seeds") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      NumCrashSeeds = std::strtoull(V, nullptr, 10);
    } else if (std::strcmp(A, "--checkpoint-intervals") == 0) {
      if (!(V = Value(A)) || !parseList(A, V, MS.CheckpointIntervals))
        return ExitUsage;
    } else if (std::strcmp(A, "--threads") == 0) {
      std::vector<uint64_t> L;
      if (!(V = Value(A)) || !parseList(A, V, L))
        return ExitUsage;
      MS.ThreadCounts.clear();
      for (uint64_t T : L)
        MS.ThreadCounts.push_back(static_cast<unsigned>(T ? T : 1));
    } else if (std::strcmp(A, "--engines") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Engines.clear();
      const char *C = V;
      while (*C) {
        const char *End = C;
        while (*End && *End != ',')
          ++End;
        std::string Name(C, End - C);
        if (Name == "rounds")
          MS.Engines.push_back(SimEngine::Rounds);
        else if (Name == "event")
          MS.Engines.push_back(SimEngine::Event);
        else {
          std::fprintf(stderr,
                       "error: --engines expects a comma-separated list "
                       "of 'rounds'/'event', got '%s'\n",
                       V);
          return ExitUsage;
        }
        C = *End ? End + 1 : End;
      }
      if (MS.Engines.empty()) {
        std::fprintf(stderr, "error: --engines got an empty list\n");
        return ExitUsage;
      }
    } else if (std::strcmp(A, "--drop-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.DropRate = std::atof(V);
    } else if (std::strcmp(A, "--dup-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.DupRate = std::atof(V);
    } else if (std::strcmp(A, "--corrupt-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.CorruptRate = std::atof(V);
    } else if (std::strcmp(A, "--partition-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.PartitionRate = std::atof(V);
    } else if (std::strcmp(A, "--partition-outage") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.PartitionMaxOutage =
          static_cast<unsigned>(std::strtoull(V, nullptr, 10));
    } else if (std::strcmp(A, "--slow-link-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.SlowLinkRate = std::atof(V);
    } else if (std::strcmp(A, "--slow-link-factor") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.SlowLinkMaxFactor = std::atof(V);
    } else if (std::strcmp(A, "--crash-rate") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.CrashRate = std::atof(V);
    } else if (std::strcmp(A, "--max-retries") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.MaxRetries =
          static_cast<unsigned>(std::strtoull(V, nullptr, 10));
    } else if (std::strcmp(A, "--retry-timeout") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      MS.Base.RetryTimeoutSeconds = std::atof(V);
    } else if (std::strcmp(A, "--jobs") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.Jobs = static_cast<unsigned>(std::strtoull(V, nullptr, 10));
    } else if (std::strcmp(A, "--timeout") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.TimeoutSeconds = std::atof(V);
    } else if (std::strcmp(A, "--fleet-retries") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.MaxRetries =
          static_cast<unsigned>(std::strtoull(V, nullptr, 10));
    } else if (std::strcmp(A, "--backoff") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.RetryBackoffSeconds = std::atof(V);
    } else if (std::strcmp(A, "--report") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      ReportPath = V;
    } else if (std::strcmp(A, "--journal") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.JournalPath = V;
    } else if (std::strcmp(A, "--resume") == 0) {
      FO.Resume = true;
    } else if (std::strcmp(A, "--hang-scenario") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.HangScenarios.insert(
          static_cast<unsigned>(std::strtoull(V, nullptr, 10)));
    } else if (std::strcmp(A, "--abort-scenario") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.AbortScenarios.insert(
          static_cast<unsigned>(std::strtoull(V, nullptr, 10)));
    } else if (std::strcmp(A, "--abort-once-scenario") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      FO.AbortOnceScenarios.insert(
          static_cast<unsigned>(std::strtoull(V, nullptr, 10)));
    } else if (std::strcmp(A, "--param") == 0) {
      if (!(V = Value(A)))
        return ExitUsage;
      const char *Eq = std::strchr(V, '=');
      if (!Eq) {
        std::fprintf(stderr, "error: --param expects NAME=VALUE\n");
        return ExitUsage;
      }
      Params[std::string(V, Eq - V)] = std::atoll(Eq + 1);
    } else if (A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A);
      return usage(Argv[0]);
    } else if (!File) {
      File = A;
    } else {
      return usage(Argv[0]);
    }
  }
  if (!File)
    return usage(Argv[0]);
  if (badProbability("--drop-rate", MS.Base.DropRate) ||
      badProbability("--dup-rate", MS.Base.DupRate) ||
      badProbability("--corrupt-rate", MS.Base.CorruptRate) ||
      badProbability("--partition-rate", MS.Base.PartitionRate) ||
      badProbability("--slow-link-rate", MS.Base.SlowLinkRate) ||
      badProbability("--crash-rate", MS.Base.CrashRate))
    return ExitUsage;
  if (Procs < 1) {
    std::fprintf(stderr, "error: --procs needs a count >= 1\n");
    return ExitUsage;
  }
  if (NumFaultSeeds == 0 || NumCrashSeeds == 0) {
    std::fprintf(stderr,
                 "error: --fault-seeds/--crash-seeds need >= 1 seed\n");
    return ExitUsage;
  }
  if (FO.Resume && FO.JournalPath.empty()) {
    std::fprintf(stderr,
                 "error: --resume requires --journal PATH (there is "
                 "no journal to resume from)\n");
    return ExitUsage;
  }
  for (uint64_t S = 1; S <= NumFaultSeeds; ++S)
    MS.FaultSeeds.push_back(S);
  for (uint64_t S = 1; S <= NumCrashSeeds; ++S)
    MS.CrashSeeds.push_back(S);

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File);
    return ExitCompileError;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  SpecParseOutput SP = parseWithSpec(Buf.str());
  if (!SP.ok()) {
    std::fprintf(stderr, "%s: error: %s\n", File, SP.Error.c_str());
    return ExitCompileError;
  }
  Program &P = *SP.Prog;
  for (const auto &[Name, Val] : SP.ParamDefaults)
    Params.emplace(Name, Val);
  for (unsigned I = 0; I != P.space().size(); ++I) {
    if (P.space().kind(I) != VarKind::Param)
      continue;
    if (!Params.count(P.space().name(I))) {
      std::fprintf(stderr,
                   "error: parameter '%s' needs --param %s=VALUE\n",
                   P.space().name(I).c_str(), P.space().name(I).c_str());
      return ExitUsage;
    }
  }

  // Compile once; every worker reuses the compiled program.
  CompiledProgram CP = compile(P, SP.Spec, CompilerOptions());
  if (!CP.Ok) {
    std::fprintf(stderr, "%s: error: %s\n", File,
                 CP.ErrorMessage.c_str());
    return ExitCompileError;
  }

  std::vector<FleetScenario> Matrix = buildMatrix(MS);
  std::fprintf(stderr,
               "dmcc-fleet: %zu scenarios across %u shards (timeout "
               "%.1f s, %u retries)\n",
               Matrix.size(), FO.Jobs ? FO.Jobs : 1, FO.TimeoutSeconds,
               FO.MaxRetries);

  Fleet F(P, CP, SP.Spec, Params, Procs, FO);
  FleetReport Rep = F.run(Matrix);
  if (!Rep.Error.empty()) {
    std::fprintf(stderr, "error: %s\n", Rep.Error.c_str());
    return Rep.ErrorIsIo ? ExitIo : ExitUsage;
  }
  if (Rep.ResumedFromJournal)
    std::fprintf(stderr,
                 "dmcc-fleet: resumed %u verdict(s) from '%s', "
                 "re-running %zu scenario(s)\n",
                 Rep.ResumedFromJournal, FO.JournalPath.c_str(),
                 Matrix.size() - Rep.ResumedFromJournal);

  std::string Json = Rep.json();
  if (ReportPath) {
    // Atomic (temp+fsync+rename): a crash mid-write must never leave a
    // torn report behind — consumers see the old report or the new one.
    std::string Err;
    if (!stable::atomicWriteFile(ReportPath, Json, Err)) {
      std::fprintf(stderr, "error: cannot write report: %s\n",
                   Err.c_str());
      return ExitIo;
    }
  } else {
    std::fputs(Json.c_str(), stdout);
  }

  std::fprintf(
      stderr,
      "dmcc-fleet: %u ok, %u mismatch, %u deadlock, %u "
      "transport-exhausted, %u timeout, %u worker-crash, %u "
      "retry-exhausted in %.2f s\n",
      Rep.count(ScenarioStatus::Ok), Rep.count(ScenarioStatus::Mismatch),
      Rep.count(ScenarioStatus::Deadlock),
      Rep.count(ScenarioStatus::TransportExhausted),
      Rep.count(ScenarioStatus::Timeout),
      Rep.count(ScenarioStatus::WorkerCrash),
      Rep.count(ScenarioStatus::RetryExhausted), Rep.ElapsedSeconds);

  // Any mismatch against the clean sequential run is a correctness
  // failure of dmcc itself, not of the hostile scenario.
  return Rep.count(ScenarioStatus::Mismatch) ? ExitVerifyMismatch
                                             : ExitSuccess;
}
