//===- tools/dmcc-cli.cpp - Command-line compiler driver -------*- C++ -*-===//
//
// The user-facing entry point: compile an annotated mini-language file
// and inspect any stage of the pipeline, or run the result on the
// simulated machine.
//
//   dmcc-cli FILE [options]
//     --print-program        echo the parsed program
//     --print-lwt            Last Write Trees for every read access
//     --print-comm           optimized communication sets
//     --print-spmd           the generated SPMD program (default)
//     --simulate P           run on P simulated processors
//     --functional           simulate with real arithmetic and verify
//                            against sequential execution
//     --param NAME=VALUE     parameter binding (repeatable; defaults
//                            from `param NAME = VALUE;` declarations)
//     --no-self-reuse --no-group-reuse --no-multicast --no-aggressive
//                            optimization ablations
//
//   Fault injection (simulation only; enables the reliable transport):
//     --fault-seed S         deterministic fault-schedule seed
//     --drop-rate R          P(a data/ack transmission is lost), 0..1
//     --dup-rate R           P(a delivered packet is duplicated), 0..1
//     --max-delay T          extra delivery delay, uniform in [0,T] secs
//     --retry-timeout T      first retransmission timeout in seconds
//     --max-retries N        retransmissions before giving up
//     --slowdown F           per-processor compute slowdown in [1,F]
//     --reliable             engage the transport even with zero rates
//
//   Crash-stop failures and checkpoint/restart (simulation only):
//     --crash-rate R         P(a processor dies before a logical step)
//     --crash-seed S         deterministic crash-schedule seed
//     --checkpoint-interval N  logical steps between coordinated
//                            checkpoints (0 = no checkpoints, crashes
//                            are unrecoverable)
//
//===----------------------------------------------------------------------===//

#include "core/SpecParser.h"
#include "dataflow/LastWriteTree.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace dmcc;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s FILE [--print-program] [--print-lwt] "
               "[--print-comm] [--print-spmd]\n"
               "       [--simulate P] [--functional] [--param N=V]...\n"
               "       [--no-self-reuse] [--no-group-reuse] "
               "[--no-multicast] [--no-aggressive]\n"
               "       [--fault-seed S] [--drop-rate R] [--dup-rate R] "
               "[--max-delay T]\n"
               "       [--retry-timeout T] [--max-retries N] "
               "[--slowdown F] [--reliable]\n"
               "       [--crash-rate R] [--crash-seed S] "
               "[--checkpoint-interval N]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  const char *File = nullptr;
  bool PrintProgram = false, PrintLWT = false, PrintComm = false;
  bool PrintSpmd = false, Functional = false;
  IntT SimProcs = 0;
  CompilerOptions Opts;
  FaultOptions Faults;
  CheckpointOptions Checkpoint;
  std::map<std::string, IntT> Params;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--print-program") == 0)
      PrintProgram = true;
    else if (std::strcmp(A, "--print-lwt") == 0)
      PrintLWT = true;
    else if (std::strcmp(A, "--print-comm") == 0)
      PrintComm = true;
    else if (std::strcmp(A, "--print-spmd") == 0)
      PrintSpmd = true;
    else if (std::strcmp(A, "--functional") == 0)
      Functional = true;
    else if (std::strcmp(A, "--no-self-reuse") == 0)
      Opts.EliminateSelfReuse = false;
    else if (std::strcmp(A, "--no-group-reuse") == 0)
      Opts.EliminateGroupReuse = false;
    else if (std::strcmp(A, "--no-multicast") == 0)
      Opts.DetectMulticast = false;
    else if (std::strcmp(A, "--no-aggressive") == 0)
      Opts.AggressiveAggregation = false;
    else if (std::strcmp(A, "--simulate") == 0 && I + 1 < Argc)
      SimProcs = std::atoll(Argv[++I]);
    else if (std::strcmp(A, "--fault-seed") == 0 && I + 1 < Argc)
      Faults.Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(A, "--drop-rate") == 0 && I + 1 < Argc)
      Faults.DropRate = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--dup-rate") == 0 && I + 1 < Argc)
      Faults.DupRate = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--max-delay") == 0 && I + 1 < Argc)
      Faults.MaxDelaySeconds = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--retry-timeout") == 0 && I + 1 < Argc)
      Faults.RetryTimeoutSeconds = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--max-retries") == 0 && I + 1 < Argc)
      Faults.MaxRetries = static_cast<unsigned>(std::atoll(Argv[++I]));
    else if (std::strcmp(A, "--slowdown") == 0 && I + 1 < Argc)
      Faults.MaxSlowdown = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--reliable") == 0)
      Faults.AlwaysReliable = true;
    else if (std::strcmp(A, "--crash-rate") == 0 && I + 1 < Argc)
      Faults.CrashRate = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--crash-seed") == 0 && I + 1 < Argc)
      Faults.CrashSeed = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(A, "--checkpoint-interval") == 0 && I + 1 < Argc)
      Checkpoint.IntervalSteps =
          std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(A, "--param") == 0 && I + 1 < Argc) {
      const char *Eq = std::strchr(Argv[++I], '=');
      if (!Eq) {
        std::fprintf(stderr, "error: --param expects NAME=VALUE\n");
        return 2;
      }
      Params[std::string(Argv[I], Eq - Argv[I])] = std::atoll(Eq + 1);
    } else if (A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A);
      return usage(Argv[0]);
    } else if (!File) {
      File = A;
    } else {
      return usage(Argv[0]);
    }
  }
  if (!File)
    return usage(Argv[0]);
  if (!PrintProgram && !PrintLWT && !PrintComm && !SimProcs)
    PrintSpmd = true;

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  SpecParseOutput SP = parseWithSpec(Buf.str());
  if (!SP.ok()) {
    // Standard file:line[:col]: error: format so editors can jump to it.
    if (SP.ErrorLine && SP.ErrorCol)
      std::fprintf(stderr, "%s:%u:%u: error: %s\n", File, SP.ErrorLine,
                   SP.ErrorCol, SP.Error.c_str());
    else if (SP.ErrorLine)
      std::fprintf(stderr, "%s:%u: error: %s\n", File, SP.ErrorLine,
                   SP.Error.c_str());
    else
      std::fprintf(stderr, "%s: error: %s\n", File, SP.Error.c_str());
    return 1;
  }
  Program &P = *SP.Prog;
  for (const auto &[Name, V] : SP.ParamDefaults)
    Params.emplace(Name, V);

  if (PrintProgram)
    std::printf("%s\n", P.str().c_str());
  if (PrintLWT) {
    for (unsigned S = 0; S != P.numStatements(); ++S)
      for (unsigned R = 0; R != P.statement(S).Reads.size(); ++R)
        std::printf("%s\n", buildLWT(P, S, R).str(P).c_str());
  }

  CompiledProgram CP = compile(P, SP.Spec, Opts);
  if (!CP.Ok) {
    std::fprintf(stderr, "%s: error: %s\n", File,
                 CP.ErrorMessage.c_str());
    return 1;
  }
  if (!CP.Diagnostics.empty())
    std::fprintf(stderr, "%s", CP.Diagnostics.c_str());
  if (PrintComm) {
    for (const CommPlan &Pl : CP.Comms)
      std::printf("[agg %u%s] %s\n", Pl.AggLevel,
                  Pl.Multicast ? ", multicast" : "",
                  Pl.Set.str().c_str());
  }
  if (PrintSpmd)
    std::printf("%s", CP.Spmd.str().c_str());

  if (SimProcs > 0) {
    // Every program parameter needs a value.
    for (unsigned I = 0; I != P.space().size(); ++I) {
      if (P.space().kind(I) != VarKind::Param)
        continue;
      if (!Params.count(P.space().name(I))) {
        std::fprintf(stderr,
                     "error: parameter '%s' needs --param %s=VALUE\n",
                     P.space().name(I).c_str(),
                     P.space().name(I).c_str());
        return 1;
      }
    }
    SimOptions SO;
    SO.PhysGrid = {SimProcs};
    SO.ParamValues = Params;
    SO.Functional = Functional;
    SO.CollapseLoops = !Functional;
    SO.Faults = Faults;
    SO.Checkpoint = Checkpoint;
    Simulator Sim(P, CP, SP.Spec, SO);
    SimResult R = Sim.run();
    if (!R.Ok) {
      std::fprintf(stderr, "simulation failed: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("simulated %lld processors: makespan %.6f s, %llu "
                "messages, %llu words, %llu flops\n",
                static_cast<long long>(SimProcs), R.MakespanSeconds,
                static_cast<unsigned long long>(R.Messages),
                static_cast<unsigned long long>(R.Words),
                static_cast<unsigned long long>(R.Flops));
    if (Faults.transportActive() || Faults.faulty())
      std::printf("transport (%u channels): %llu retransmissions, %llu "
                  "dropped, %llu duplicates suppressed, %llu acks\n",
                  CP.Stats.NumCommChannels,
                  static_cast<unsigned long long>(R.Retransmissions),
                  static_cast<unsigned long long>(R.DroppedPackets),
                  static_cast<unsigned long long>(R.DuplicatesSuppressed),
                  static_cast<unsigned long long>(R.AcksSent));
    if (Faults.CrashRate > 0 || Checkpoint.enabled()) {
      std::printf(
          "recovery: %llu checkpoints (%llu bytes), %llu crashes, %llu "
          "rollbacks, %llu steps replayed\n",
          static_cast<unsigned long long>(R.Recovery.CheckpointsTaken),
          static_cast<unsigned long long>(R.Recovery.CheckpointBytes),
          static_cast<unsigned long long>(R.Recovery.Crashes),
          static_cast<unsigned long long>(R.Recovery.Rollbacks),
          static_cast<unsigned long long>(R.Recovery.ReplayedSteps));
      std::printf("time split: compute %.6f s, protocol %.6f s, "
                  "checkpoint %.6f s, recovery %.6f s\n",
                  R.Recovery.ComputeSeconds, R.Recovery.ProtocolSeconds,
                  R.Recovery.CheckpointSeconds,
                  R.Recovery.RecoverySeconds);
    }
    if (Functional) {
      SeqInterpreter Gold(P, Params);
      Gold.run();
      unsigned Wrong = 0, Missing = 0, Checked = 0;
      std::vector<IntT> Env(P.space().size(), 0);
      for (unsigned I = 0; I != P.space().size(); ++I)
        if (P.space().kind(I) == VarKind::Param)
          Env[I] = Params.at(P.space().name(I));
      for (const auto &[AId, FD] : SP.Spec.FinalData) {
        (void)FD;
        const ArrayDecl &AD = P.array(AId);
        std::vector<IntT> Sizes;
        for (const AffineExpr &D : AD.DimSizes)
          Sizes.push_back(D.evaluate(Env));
        std::vector<IntT> Idx(Sizes.size(), 0);
        bool Done = Sizes.empty();
        for (IntT S2 : Sizes)
          if (S2 <= 0)
            Done = true;
        while (!Done) {
          ++Checked;
          auto Got = Sim.finalValue(AId, Idx);
          if (!Got)
            ++Missing;
          else if (*Got != Gold.arrayValue(AId, Idx))
            ++Wrong;
          for (unsigned K = Idx.size(); K-- > 0;) {
            if (++Idx[K] < Sizes[K])
              break;
            Idx[K] = 0;
            if (K == 0)
              Done = true;
          }
        }
      }
      std::printf("verification: %u checked, %u missing, %u wrong\n",
                  Checked, Missing, Wrong);
      if (Missing || Wrong)
        return 1;
    }
  }
  return 0;
}
