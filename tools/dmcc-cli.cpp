//===- tools/dmcc-cli.cpp - Command-line compiler driver -------*- C++ -*-===//
//
// The user-facing entry point: compile an annotated mini-language file
// and inspect any stage of the pipeline, or run the result on the
// simulated machine.
//
//   dmcc-cli FILE [options]
//     --print-program        echo the parsed program
//     --print-lwt            Last Write Trees for every read access
//     --print-comm           optimized communication sets
//     --print-spmd           the generated SPMD program (default)
//     --simulate P           run on P simulated processors
//     --sim-threads N        run the simulated physical processors on N
//                            OS threads (0 = hardware concurrency;
//                            default 1 = sequential engine); results are
//                            bit-identical at every thread count
//     --sim-engine E         scheduler: 'rounds' (default; sequential
//                            or threaded global rounds) or 'event'
//                            (discrete-event queue, single-threaded,
//                            built for P >= 1024); accepts
//                            --sim-engine=E too; results are
//                            bit-identical across engines
//     --functional           simulate with real arithmetic and verify
//                            against sequential execution
//     --auto-decomp          decomposition auto-search (decomp/Search.h):
//                            enumerate the bounded candidate space, score
//                            every candidate by simulated makespan, and
//                            compile/simulate the winner instead of the
//                            file's hand-written spec (which competes as
//                            candidate 0, so the winner is never worse).
//                            Requires --simulate P; exits 3 when no
//                            candidate compiles
//     --param NAME=VALUE     parameter binding (repeatable; defaults
//                            from `param NAME = VALUE;` declarations)
//     --no-self-reuse --no-group-reuse --no-multicast --no-aggressive
//                            optimization ablations
//     --early-sends          Section 6: mark provably safe sends as
//                            nonblocking (isend) and hoist them after
//                            their producers; the simulator overlaps
//                            message latency with computation and
//                            reports per-run overlap telemetry
//     --stats                compile-phase profile: wall time per phase,
//                            feasibility/projection cache hit rates,
//                            Fourier-Motzkin counters
//     --node-budget N        branch-and-bound node budget for all
//                            polyhedral queries (0 keeps the defaults)
//     --no-proj-cache        disable projection/feasibility memoization
//     --no-proj-heuristics   disable syntactic quick-checks and the
//                            elimination-order heuristic
//
//   Fault injection (simulation only; enables the reliable transport):
//     --fault-seed S         deterministic fault-schedule seed
//     --drop-rate R          P(a data/ack transmission is lost), 0..1
//     --dup-rate R           P(a delivered packet is duplicated), 0..1
//     --max-delay T          extra delivery delay, uniform in [0,T] secs
//     --corrupt-rate R       P(a delivered payload fails its checksum
//                            and is NACKed back for retransmission)
//     --partition-rate R     P(a packet's first sends fall inside a
//                            transient partition that heals after a
//                            seeded number of attempts)
//     --partition-outage N   longest partition outage, in blackholed
//                            transmission attempts (default 3)
//     --slow-link-rate R     P(a directed physical link is a straggler)
//     --slow-link-factor F   straggler latency multiplier in [1,F]
//     --retry-timeout T      first retransmission timeout in seconds
//     --max-retries N        retransmissions before giving up
//     --slowdown F           per-processor compute slowdown in [1,F]
//     --reliable             engage the transport even with zero rates
//
//   Crash-stop failures and checkpoint/restart (simulation only):
//     --crash-rate R         P(a processor dies before a logical step)
//     --crash-seed S         deterministic crash-schedule seed
//     --checkpoint-interval N  logical steps between coordinated
//                            checkpoints (omit for no checkpoints;
//                            crashes are then unrecoverable)
//
//   Durable checkpoints and crash-resumable runs (DESIGN.md §13):
//     --durable-dir DIR      persist every coordinated checkpoint to
//                            DIR as a CRC-framed image (atomic
//                            temp+rename), so the run survives a kill
//                            of the simulator process itself; requires
//                            --checkpoint-interval
//     --resume               before running, restore the newest intact
//                            checkpoint image from --durable-dir
//                            (torn or corrupt files are skipped) and
//                            replay to completion bit-identically to
//                            an uninterrupted run; an empty directory
//                            starts fresh, so kill/restart loops can
//                            pass --resume unconditionally
//
//   Exit codes (support/ExitCodes.h; stable for scripted callers):
//     0 success · 2 usage/flag error · 3 parse/compile error
//     4 simulation deadlock · 5 transport retry exhaustion
//     6 verification mismatch · 7 durable-storage I/O failure
//     70 internal error
//
//===----------------------------------------------------------------------===//

#include "core/SpecParser.h"
#include "dataflow/LastWriteTree.h"
#include "decomp/Search.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"
#include "support/ExitCodes.h"
#include "support/StableStore.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace dmcc;

namespace {

/// Renders the --stats report: per-phase wall time with the dominant
/// polyhedral counters, then compile-wide cache totals.
void printCompileStats(const CompileStats &St) {
  std::printf("compile: %.3f ms total\n", St.CompileSeconds * 1e3);
  std::printf("  %-16s %10s %6s %10s %10s %8s\n", "phase", "ms", "calls",
              "feas", "fm-elims", "nodes");
  for (const PhaseProfile &Ph : St.Phases)
    std::printf("  %-16s %10.3f %6llu %10llu %10llu %8llu\n",
                Ph.Name.c_str(), Ph.Seconds * 1e3,
                static_cast<unsigned long long>(Ph.Invocations),
                static_cast<unsigned long long>(Ph.Delta.FeasQueries),
                static_cast<unsigned long long>(Ph.Delta.FmEliminations),
                static_cast<unsigned long long>(Ph.Delta.NodesExpanded));
  const ProjectionStats &PS = St.Proj;
  std::printf("feasibility: %llu queries, %.1f%% cache hits, %llu "
              "unknown, %llu search nodes\n",
              static_cast<unsigned long long>(PS.FeasQueries),
              PS.feasHitRate() * 100.0,
              static_cast<unsigned long long>(PS.FeasUnknown),
              static_cast<unsigned long long>(PS.NodesExpanded));
  std::printf("projection: %llu FM eliminations, %llu projections "
              "(%llu cached), %llu lexmax, %llu scans\n",
              static_cast<unsigned long long>(PS.FmEliminations),
              static_cast<unsigned long long>(PS.ProjectionCalls),
              static_cast<unsigned long long>(PS.ProjectionCacheHits),
              static_cast<unsigned long long>(PS.LexMaxCalls),
              static_cast<unsigned long long>(PS.ScanCalls));
  std::printf("redundancy: %llu calls (%llu cached), %llu exact tests, "
              "%llu quick kills\n",
              static_cast<unsigned long long>(PS.RedundancyCalls),
              static_cast<unsigned long long>(PS.RedundancyCacheHits),
              static_cast<unsigned long long>(PS.RedundancyTests),
              static_cast<unsigned long long>(PS.RedundancyQuickKills));
  std::printf("caches: %llu entries live, %llu evictions\n",
              static_cast<unsigned long long>(projectionCacheEntries()),
              static_cast<unsigned long long>(PS.CacheEvictions));
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s FILE [--print-program] [--print-lwt] "
               "[--print-comm] [--print-spmd]\n"
               "       [--simulate P] [--sim-threads N] "
               "[--sim-engine rounds|event] [--functional]\n"
               "       [--auto-decomp]\n"
               "       [--param N=V]...\n"
               "       [--no-self-reuse] [--no-group-reuse] "
               "[--no-multicast] [--no-aggressive]\n"
               "       [--early-sends]\n"
               "       [--stats] [--node-budget N] [--no-proj-cache] "
               "[--no-proj-heuristics]\n"
               "       [--fault-seed S] [--drop-rate R] [--dup-rate R] "
               "[--max-delay T]\n"
               "       [--corrupt-rate R] [--partition-rate R] "
               "[--partition-outage N]\n"
               "       [--slow-link-rate R] [--slow-link-factor F]\n"
               "       [--retry-timeout T] [--max-retries N] "
               "[--slowdown F] [--reliable]\n"
               "       [--crash-rate R] [--crash-seed S] "
               "[--checkpoint-interval N]\n"
               "       [--durable-dir DIR] [--resume]\n",
               Argv0);
  return ExitUsage;
}

/// Named range check for a probability flag: rejects anything outside
/// [0, 1] before the simulator can silently misbehave on it.
bool badProbability(const char *Flag, double V) {
  if (V >= 0.0 && V <= 1.0)
    return false;
  std::fprintf(stderr,
               "error: %s must be a probability in [0, 1], got %g\n",
               Flag, V);
  return true;
}

/// Named range check for a nonnegative duration/count flag.
bool badNonNegative(const char *Flag, double V) {
  if (V >= 0.0)
    return false;
  std::fprintf(stderr, "error: %s must be >= 0, got %g\n", Flag, V);
  return true;
}

/// Named range check for a multiplicative factor flag (>= 1).
bool badFactor(const char *Flag, double V) {
  if (V >= 1.0)
    return false;
  std::fprintf(stderr, "error: %s must be a factor >= 1, got %g\n", Flag,
               V);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  const char *File = nullptr;
  bool PrintProgram = false, PrintLWT = false, PrintComm = false;
  bool PrintSpmd = false, Functional = false, PrintStats = false;
  bool AutoDecomp = false;
  IntT SimProcs = 0;
  unsigned SimThreads = 1;
  std::string SimEngineName = "rounds";
  bool SimulateGiven = false, CheckpointGiven = false;
  long long MaxRetriesRaw = -1;
  CompilerOptions Opts;
  FaultOptions Faults;
  CheckpointOptions Checkpoint;
  std::map<std::string, IntT> Params;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--print-program") == 0)
      PrintProgram = true;
    else if (std::strcmp(A, "--print-lwt") == 0)
      PrintLWT = true;
    else if (std::strcmp(A, "--print-comm") == 0)
      PrintComm = true;
    else if (std::strcmp(A, "--print-spmd") == 0)
      PrintSpmd = true;
    else if (std::strcmp(A, "--functional") == 0)
      Functional = true;
    else if (std::strcmp(A, "--auto-decomp") == 0)
      AutoDecomp = true;
    else if (std::strcmp(A, "--no-self-reuse") == 0)
      Opts.EliminateSelfReuse = false;
    else if (std::strcmp(A, "--no-group-reuse") == 0)
      Opts.EliminateGroupReuse = false;
    else if (std::strcmp(A, "--no-multicast") == 0)
      Opts.DetectMulticast = false;
    else if (std::strcmp(A, "--no-aggressive") == 0)
      Opts.AggressiveAggregation = false;
    else if (std::strcmp(A, "--early-sends") == 0)
      Opts.EarlySends = true;
    else if (std::strcmp(A, "--stats") == 0)
      PrintStats = true;
    else if (std::strcmp(A, "--node-budget") == 0 && I + 1 < Argc) {
      unsigned B = static_cast<unsigned>(std::atoll(Argv[++I]));
      if (B != 0) {
        Opts.Projection.FeasibilityBudget = B;
        Opts.Projection.RedundancyBudget = B;
        Opts.Projection.ScanBudget = B;
        Opts.Projection.SearchBudget = B;
      }
    } else if (std::strcmp(A, "--no-proj-cache") == 0)
      Opts.Projection.Cache = false;
    else if (std::strcmp(A, "--no-proj-heuristics") == 0) {
      Opts.Projection.QuickChecks = false;
      Opts.Projection.OrderHeuristic = false;
    }
    else if (std::strcmp(A, "--simulate") == 0 && I + 1 < Argc) {
      SimProcs = std::atoll(Argv[++I]);
      SimulateGiven = true;
    } else if (std::strcmp(A, "--sim-threads") == 0 && I + 1 < Argc)
      SimThreads = static_cast<unsigned>(std::atoll(Argv[++I]));
    else if (std::strcmp(A, "--sim-engine") == 0 && I + 1 < Argc)
      SimEngineName = Argv[++I];
    else if (std::strncmp(A, "--sim-engine=", 13) == 0)
      SimEngineName = A + 13;
    else if (std::strcmp(A, "--fault-seed") == 0 && I + 1 < Argc)
      Faults.Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(A, "--drop-rate") == 0 && I + 1 < Argc)
      Faults.DropRate = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--dup-rate") == 0 && I + 1 < Argc)
      Faults.DupRate = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--max-delay") == 0 && I + 1 < Argc)
      Faults.MaxDelaySeconds = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--corrupt-rate") == 0 && I + 1 < Argc)
      Faults.CorruptRate = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--partition-rate") == 0 && I + 1 < Argc)
      Faults.PartitionRate = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--partition-outage") == 0 && I + 1 < Argc)
      Faults.PartitionMaxOutage =
          static_cast<unsigned>(std::strtoull(Argv[++I], nullptr, 10));
    else if (std::strcmp(A, "--slow-link-rate") == 0 && I + 1 < Argc)
      Faults.SlowLinkRate = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--slow-link-factor") == 0 && I + 1 < Argc)
      Faults.SlowLinkMaxFactor = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--retry-timeout") == 0 && I + 1 < Argc)
      Faults.RetryTimeoutSeconds = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--max-retries") == 0 && I + 1 < Argc) {
      MaxRetriesRaw = std::atoll(Argv[++I]);
      Faults.MaxRetries = static_cast<unsigned>(MaxRetriesRaw);
    } else if (std::strcmp(A, "--slowdown") == 0 && I + 1 < Argc)
      Faults.MaxSlowdown = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--reliable") == 0)
      Faults.AlwaysReliable = true;
    else if (std::strcmp(A, "--crash-rate") == 0 && I + 1 < Argc)
      Faults.CrashRate = std::atof(Argv[++I]);
    else if (std::strcmp(A, "--crash-seed") == 0 && I + 1 < Argc)
      Faults.CrashSeed = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(A, "--checkpoint-interval") == 0 &&
             I + 1 < Argc) {
      Checkpoint.IntervalSteps = std::strtoull(Argv[++I], nullptr, 10);
      CheckpointGiven = true;
    } else if (std::strcmp(A, "--durable-dir") == 0 && I + 1 < Argc)
      Checkpoint.DurableDir = Argv[++I];
    else if (std::strcmp(A, "--resume") == 0)
      Checkpoint.Resume = true;
    else if (std::strcmp(A, "--param") == 0 && I + 1 < Argc) {
      const char *Eq = std::strchr(Argv[++I], '=');
      if (!Eq) {
        std::fprintf(stderr, "error: --param expects NAME=VALUE\n");
        return ExitUsage;
      }
      Params[std::string(Argv[I], Eq - Argv[I])] = std::atoll(Eq + 1);
    } else if (A[0] == '-') {
      // A value-taking flag at the end of the command line fails its
      // `I + 1 < Argc` guard above and lands here; name the real
      // problem instead of claiming the option is unknown.
      static const char *const ValueFlags[] = {
          "--simulate",       "--sim-threads",
          "--sim-engine",     "--node-budget",
          "--fault-seed",
          "--drop-rate",      "--dup-rate",
          "--max-delay",      "--corrupt-rate",
          "--partition-rate", "--partition-outage",
          "--slow-link-rate", "--slow-link-factor",
          "--retry-timeout",  "--max-retries",
          "--slowdown",       "--crash-rate",
          "--crash-seed",     "--checkpoint-interval",
          "--durable-dir",    "--param"};
      for (const char *VF : ValueFlags)
        if (std::strcmp(A, VF) == 0) {
          std::fprintf(stderr, "error: option '%s' requires a value\n",
                       A);
          return ExitUsage;
        }
      std::fprintf(stderr, "error: unknown option '%s'\n", A);
      return usage(Argv[0]);
    } else if (!File) {
      File = A;
    } else {
      return usage(Argv[0]);
    }
  }
  if (!File)
    return usage(Argv[0]);

  // Range-check every fault/sim knob up front with a named error: an
  // out-of-range probability would otherwise just skew the schedule
  // (e.g. a rate of 1.5 behaves as "always"), and a negative count
  // would wrap through the unsigned conversion.
  if (badProbability("--drop-rate", Faults.DropRate) ||
      badProbability("--dup-rate", Faults.DupRate) ||
      badProbability("--corrupt-rate", Faults.CorruptRate) ||
      badProbability("--partition-rate", Faults.PartitionRate) ||
      badProbability("--slow-link-rate", Faults.SlowLinkRate) ||
      badProbability("--crash-rate", Faults.CrashRate) ||
      badNonNegative("--max-delay", Faults.MaxDelaySeconds) ||
      badNonNegative("--retry-timeout", Faults.RetryTimeoutSeconds) ||
      badFactor("--slowdown", Faults.MaxSlowdown) ||
      badFactor("--slow-link-factor", Faults.SlowLinkMaxFactor))
    return ExitUsage;
  if (MaxRetriesRaw != -1 &&
      badNonNegative("--max-retries", static_cast<double>(MaxRetriesRaw)))
    return ExitUsage;
  SimEngine Engine = SimEngine::Rounds;
  if (SimEngineName == "event")
    Engine = SimEngine::Event;
  else if (SimEngineName != "rounds") {
    std::fprintf(stderr,
                 "error: --sim-engine expects 'rounds' or 'event', got "
                 "'%s'\n",
                 SimEngineName.c_str());
    return ExitUsage;
  }
  if (Engine == SimEngine::Event && SimThreads != 1) {
    std::fprintf(stderr,
                 "error: --sim-engine event is single-threaded; it "
                 "cannot be combined with --sim-threads %u (use "
                 "--sim-engine rounds for the threaded engine)\n",
                 SimThreads);
    return ExitUsage;
  }
  if (SimulateGiven && SimProcs < 1) {
    std::fprintf(stderr,
                 "error: --simulate needs a processor count >= 1, got "
                 "%lld\n",
                 static_cast<long long>(SimProcs));
    return ExitUsage;
  }
  // The search ranks by simulated makespan, so it is meaningless
  // without a machine size to rank on.
  if (AutoDecomp && !SimulateGiven) {
    std::fprintf(stderr,
                 "error: --auto-decomp requires --simulate P; the "
                 "search ranks candidates by simulated makespan on P "
                 "processors\n");
    return ExitUsage;
  }
  if (CheckpointGiven && Checkpoint.IntervalSteps == 0) {
    std::fprintf(stderr,
                 "error: --checkpoint-interval must be >= 1 logical "
                 "step; omit the flag to disable checkpointing\n");
    return ExitUsage;
  }
  // The durable/resume flags only mean something as a trio: a durable
  // directory with no checkpoint interval would never write an image,
  // and a resume with no directory has nothing to restore from. Name
  // each missing piece rather than silently ignoring the flag.
  if (Checkpoint.Resume && !CheckpointGiven) {
    std::fprintf(stderr,
                 "error: --resume requires --checkpoint-interval N; a "
                 "resumed run must keep writing durable checkpoints\n");
    return ExitUsage;
  }
  if (Checkpoint.Resume && Checkpoint.DurableDir.empty()) {
    std::fprintf(stderr,
                 "error: --resume requires --durable-dir DIR; there is "
                 "no checkpoint directory to restore from\n");
    return ExitUsage;
  }
  if (!Checkpoint.DurableDir.empty() && !CheckpointGiven) {
    std::fprintf(stderr,
                 "error: --durable-dir requires --checkpoint-interval "
                 "N; without an interval no checkpoint would ever be "
                 "written\n");
    return ExitUsage;
  }
  if (!Checkpoint.DurableDir.empty()) {
    std::string Err;
    if (!stable::ensureDir(Checkpoint.DurableDir, Err)) {
      std::fprintf(stderr,
                   "error: cannot create durable checkpoint directory "
                   "'%s': %s\n",
                   Checkpoint.DurableDir.c_str(), Err.c_str());
      return ExitIo;
    }
  }

  if (!PrintProgram && !PrintLWT && !PrintComm && !SimProcs)
    PrintSpmd = true;

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File);
    return ExitCompileError;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  SpecParseOutput SP = parseWithSpec(Buf.str());
  if (!SP.ok()) {
    // Standard file:line[:col]: error: format so editors can jump to it.
    if (SP.ErrorLine && SP.ErrorCol)
      std::fprintf(stderr, "%s:%u:%u: error: %s\n", File, SP.ErrorLine,
                   SP.ErrorCol, SP.Error.c_str());
    else if (SP.ErrorLine)
      std::fprintf(stderr, "%s:%u: error: %s\n", File, SP.ErrorLine,
                   SP.Error.c_str());
    else
      std::fprintf(stderr, "%s: error: %s\n", File, SP.Error.c_str());
    return ExitCompileError;
  }
  Program &P = *SP.Prog;
  for (const auto &[Name, V] : SP.ParamDefaults)
    Params.emplace(Name, V);

  projectionOptions() = Opts.Projection;

  if (PrintProgram)
    std::printf("%s\n", P.str().c_str());
  if (PrintLWT) {
    for (unsigned S = 0; S != P.numStatements(); ++S)
      for (unsigned R = 0; R != P.statement(S).Reads.size(); ++R)
        std::printf("%s\n", buildLWT(P, S, R).str(P).c_str());
  }

  if (AutoDecomp) {
    // Candidate extents need every parameter; check here (instead of
    // the later --simulate check) so the error precedes the search.
    for (unsigned I = 0; I != P.space().size(); ++I) {
      if (P.space().kind(I) != VarKind::Param)
        continue;
      if (!Params.count(P.space().name(I))) {
        std::fprintf(stderr,
                     "error: parameter '%s' needs --param %s=VALUE\n",
                     P.space().name(I).c_str(),
                     P.space().name(I).c_str());
        return ExitUsage;
      }
    }
    SearchOptions SearchOpts;
    SearchOpts.Procs = SimProcs;
    SearchOpts.Params = Params;
    SearchOpts.Compile = Opts;
    SearchResult SR = searchDecompositions(P, &SP.Spec, SearchOpts);
    if (!SR.ok()) {
      std::fprintf(stderr, "%s: error: auto-decomp: %s\n", File,
                   SR.Error.c_str());
      return ExitCompileError;
    }
    std::printf("auto-decomp: scored %zu candidates on %lld processors\n",
                SR.Candidates.size(), static_cast<long long>(SimProcs));
    for (size_t I = 0; I != SR.Candidates.size(); ++I) {
      const ScoredCandidate &C = SR.Candidates[I];
      if (C.Score.Ok)
        std::printf("auto-decomp:   [%zu] %-28s makespan %.6f s, %llu "
                    "messages, %llu words\n",
                    I, C.Cand.Desc.c_str(), C.Score.MakespanSeconds,
                    static_cast<unsigned long long>(C.Score.Messages),
                    static_cast<unsigned long long>(C.Score.Words));
      else
        std::printf("auto-decomp:   [%zu] %-28s infeasible: %s\n", I,
                    C.Cand.Desc.c_str(), C.Score.Error.c_str());
    }
    std::printf("auto-decomp: winner [%d] %s (makespan %.6f s)\n",
                SR.BestIndex, SR.best().Cand.Desc.c_str(),
                SR.best().Score.MakespanSeconds);
    // Everything downstream — printing, simulation, verification —
    // runs the winning decomposition.
    SP.Spec = SR.best().Cand.Spec;
  }

  CompiledProgram CP = compile(P, SP.Spec, Opts);
  if (!CP.Ok) {
    std::fprintf(stderr, "%s: error: %s\n", File,
                 CP.ErrorMessage.c_str());
    return ExitCompileError;
  }
  if (!CP.Diagnostics.empty())
    std::fprintf(stderr, "%s", CP.Diagnostics.c_str());
  if (PrintStats)
    printCompileStats(CP.Stats);
  if (PrintComm) {
    for (const CommPlan &Pl : CP.Comms)
      std::printf("[agg %u%s] %s\n", Pl.AggLevel,
                  Pl.Multicast ? ", multicast" : "",
                  Pl.Set.str().c_str());
  }
  if (PrintSpmd)
    std::printf("%s", CP.Spmd.str().c_str());

  if (SimProcs > 0) {
    // Every program parameter needs a value.
    for (unsigned I = 0; I != P.space().size(); ++I) {
      if (P.space().kind(I) != VarKind::Param)
        continue;
      if (!Params.count(P.space().name(I))) {
        std::fprintf(stderr,
                     "error: parameter '%s' needs --param %s=VALUE\n",
                     P.space().name(I).c_str(),
                     P.space().name(I).c_str());
        return ExitUsage;
      }
    }
    SimOptions SO;
    SO.PhysGrid = {SimProcs};
    SO.ParamValues = Params;
    SO.Functional = Functional;
    SO.CollapseLoops = !Functional;
    SO.Faults = Faults;
    SO.Checkpoint = Checkpoint;
    SO.Threads = SimThreads;
    SO.Engine = Engine;
    Simulator Sim(P, CP, SP.Spec, SO);
    SimResult R = Sim.run();
    const DurableResumeInfo &RI = Sim.resumeInfo();
    if (RI.Attempted) {
      if (RI.Resumed)
        std::printf("resume: restored '%s' at %llu events (%u "
                    "checkpoint file(s) seen, %u corrupt/torn "
                    "skipped)\n",
                    RI.File.c_str(),
                    static_cast<unsigned long long>(RI.ResumedAtEvents),
                    RI.FilesSeen, RI.CorruptSkipped);
      else
        std::printf("resume: no intact checkpoint in '%s' (%u file(s) "
                    "seen, %u corrupt/torn skipped); starting fresh\n",
                    Checkpoint.DurableDir.c_str(), RI.FilesSeen,
                    RI.CorruptSkipped);
    }
    if (!R.Ok) {
      std::fprintf(stderr, "simulation failed: %s\n", R.Error.c_str());
      // Retry exhaustion (hostile network beat the retry budget) is a
      // distinct, expected failure class; everything else that stalls
      // the schedule reports as a deadlock.
      return R.Diag.RetryExhausted.empty() ? ExitDeadlock
                                           : ExitRetryExhausted;
    }
    std::printf("simulated %lld processors: makespan %.6f s, %llu "
                "messages, %llu words, %llu flops\n",
                static_cast<long long>(SimProcs), R.MakespanSeconds,
                static_cast<unsigned long long>(R.Messages),
                static_cast<unsigned long long>(R.Words),
                static_cast<unsigned long long>(R.Flops));
    if (R.Overlap.EarlySends)
      std::printf("overlap: %llu early sends, %.6f s deferred, %.6f s "
                  "exposed, %.6f s hidden\n",
                  static_cast<unsigned long long>(R.Overlap.EarlySends),
                  R.Overlap.DeferredSeconds, R.Overlap.ExposedSeconds,
                  R.Overlap.hiddenSeconds());
    if (Faults.transportActive() || Faults.faulty())
      std::printf("transport (%u channels): %llu retransmissions, %llu "
                  "dropped, %llu duplicates suppressed, %llu acks\n",
                  CP.Stats.NumCommChannels,
                  static_cast<unsigned long long>(R.Retransmissions),
                  static_cast<unsigned long long>(R.DroppedPackets),
                  static_cast<unsigned long long>(R.DuplicatesSuppressed),
                  static_cast<unsigned long long>(R.AcksSent));
    if (Faults.CorruptRate > 0 || Faults.PartitionRate > 0 ||
        Faults.slowLinks())
      std::printf("hostile: %llu corrupted (%llu nacks), %llu partition "
                  "drops, %llu slow-link messages\n",
                  static_cast<unsigned long long>(R.CorruptedPackets),
                  static_cast<unsigned long long>(R.NacksSent),
                  static_cast<unsigned long long>(R.PartitionDrops),
                  static_cast<unsigned long long>(R.SlowLinkMessages));
    if (Faults.CrashRate > 0 || Checkpoint.enabled()) {
      std::printf(
          "recovery: %llu checkpoints (%llu bytes), %llu crashes, %llu "
          "rollbacks, %llu steps replayed\n",
          static_cast<unsigned long long>(R.Recovery.CheckpointsTaken),
          static_cast<unsigned long long>(R.Recovery.CheckpointBytes),
          static_cast<unsigned long long>(R.Recovery.Crashes),
          static_cast<unsigned long long>(R.Recovery.Rollbacks),
          static_cast<unsigned long long>(R.Recovery.ReplayedSteps));
      std::printf("time split: compute %.6f s, protocol %.6f s, "
                  "checkpoint %.6f s, recovery %.6f s\n",
                  R.Recovery.ComputeSeconds, R.Recovery.ProtocolSeconds,
                  R.Recovery.CheckpointSeconds,
                  R.Recovery.RecoverySeconds);
    }
    if (Functional) {
      SeqInterpreter Gold(P, Params);
      Gold.run();
      unsigned Wrong = 0, Missing = 0, Checked = 0;
      std::vector<IntT> Env(P.space().size(), 0);
      for (unsigned I = 0; I != P.space().size(); ++I)
        if (P.space().kind(I) == VarKind::Param)
          Env[I] = Params.at(P.space().name(I));
      for (const auto &[AId, FD] : SP.Spec.FinalData) {
        (void)FD;
        const ArrayDecl &AD = P.array(AId);
        std::vector<IntT> Sizes;
        for (const AffineExpr &D : AD.DimSizes)
          Sizes.push_back(D.evaluate(Env));
        std::vector<IntT> Idx(Sizes.size(), 0);
        bool Done = Sizes.empty();
        for (IntT S2 : Sizes)
          if (S2 <= 0)
            Done = true;
        while (!Done) {
          ++Checked;
          auto Got = Sim.finalValue(AId, Idx);
          if (!Got)
            ++Missing;
          else if (*Got != Gold.arrayValue(AId, Idx))
            ++Wrong;
          for (unsigned K = Idx.size(); K-- > 0;) {
            if (++Idx[K] < Sizes[K])
              break;
            Idx[K] = 0;
            if (K == 0)
              Done = true;
          }
        }
      }
      std::printf("verification: %u checked, %u missing, %u wrong\n",
                  Checked, Missing, Wrong);
      if (Missing || Wrong)
        return ExitVerifyMismatch;
    }
  }
  return ExitSuccess;
}
