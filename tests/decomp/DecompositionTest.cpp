//===- tests/decomp/DecompositionTest.cpp ---------------------*- C++ -*-===//

#include "decomp/Decomposition.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

Program shiftProgram() {
  return parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
}

} // namespace

TEST(DecompositionTest, BlockDataOwnership) {
  Program P = shiftProgram();
  // Rows of X in blocks of 32, as in the paper's running example.
  Decomposition D = blockData(P, 0, 0, 32);
  EXPECT_FALSE(D.dim(0).Replicated);
  EXPECT_TRUE(D.isUnique());
  // Source vals: (a0, T, N).
  EXPECT_EQ(D.gridCoordinate({0, 0, 100})[0], 0);
  EXPECT_EQ(D.gridCoordinate({31, 0, 100})[0], 0);
  EXPECT_EQ(D.gridCoordinate({32, 0, 100})[0], 1);
  EXPECT_TRUE(D.owns({33, 0, 100}, {1}));
  EXPECT_FALSE(D.owns({33, 0, 100}, {0}));
}

TEST(DecompositionTest, OverlapReplicatesBorders) {
  Program P = shiftProgram();
  // Blocks of 8 with one replicated element on each side (Section 2.2.1's
  // stencil border replication).
  Decomposition D = blockData(P, 0, 0, 8, /*OverlapLo=*/1, /*OverlapHi=*/1);
  EXPECT_FALSE(D.isUnique());
  EXPECT_TRUE(D.owns({8, 0, 100}, {1}));
  EXPECT_TRUE(D.owns({8, 0, 100}, {0})); // border also on processor 0
  EXPECT_TRUE(D.owns({7, 0, 100}, {1})); // and below
  EXPECT_FALSE(D.owns({6, 0, 100}, {1}));
}

TEST(DecompositionTest, ReplicatedData) {
  Program P = shiftProgram();
  Decomposition D = replicatedData(P, 0);
  EXPECT_FALSE(D.isUnique());
  EXPECT_TRUE(D.owns({5, 0, 100}, {0}));
  EXPECT_TRUE(D.owns({5, 0, 100}, {17}));
}

TEST(DecompositionTest, CyclicComputation) {
  Program P = shiftProgram();
  // Iterations of the i loop (position 1) distributed cyclically over a
  // virtual grid: iteration (t, i) runs on virtual processor i.
  Decomposition C = cyclicComputation(P, 0, 1);
  EXPECT_TRUE(C.isUnique());
  // Source vals: (t, i, T, N).
  EXPECT_EQ(C.gridCoordinate({0, 7, 3, 100})[0], 7);
}

TEST(DecompositionTest, BlockComputationConstraints) {
  Program P = shiftProgram();
  Decomposition C = blockComputation(P, 0, 1, 32);
  // Build the computation-set system of Section 5.3: (p, t, i, params).
  Space Sp;
  unsigned PV = Sp.add("p", VarKind::Proc);
  Sp.add("t", VarKind::Loop);
  Sp.add("i", VarKind::Loop);
  Sp.add("T", VarKind::Param);
  Sp.add("N", VarKind::Param);
  System S(std::move(Sp));
  C.addConstraintsByName(S, {PV});
  // (p, t, i, T, N): processor p executes iteration i iff
  // 32p <= i <= 32p + 31.
  EXPECT_TRUE(S.holds({0, 0, 3, 9, 100}));
  EXPECT_TRUE(S.holds({1, 0, 32, 9, 100}));
  EXPECT_FALSE(S.holds({0, 0, 32, 9, 100}));
  EXPECT_FALSE(S.holds({2, 0, 32, 9, 100}));
}

TEST(DecompositionTest, OwnerComputesTheorem1) {
  // LU: X distributed cyclically by rows; the owner-computes rule places
  // iteration (i1, i2[, i3]) on the owner of row i2.
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
  Decomposition D = cyclicData(P, 0, /*Dim=*/0); // by rows
  Decomposition C0 = ownerComputes(P, 0, D);
  Decomposition C1 = ownerComputes(P, 1, D);
  EXPECT_TRUE(C0.isUnique());
  // S0 writes X[i2][i1]: owner of row i2. Source vals: (i1, i2, N).
  EXPECT_EQ(C0.gridCoordinate({2, 5, 8})[0], 5);
  // S1 writes X[i2][i3]: also row i2. Source vals: (i1, i2, i3, N).
  EXPECT_EQ(C1.gridCoordinate({2, 5, 7, 8})[0], 5);
}

TEST(DecompositionTest, SkewedDecomposition) {
  // Figure 4(d)-style skewed blocks: blocks along i + j.
  Program P = parseProgramOrDie(R"(
param N;
array A[N][N];
for i = 0 to N - 1 {
  for j = 0 to N - 1 {
    A[i][j] = i;
  }
}
)");
  Space ASp = arraySourceSpace(P, 0);
  Decomposition D(ASp, 1);
  AffineExpr Skew = AffineExpr::var(ASp.size(), 0) +
                    AffineExpr::var(ASp.size(), 1); // a0 + a1
  D.setBlock(0, std::move(Skew), 4);
  // (a0, a1, N) = (3, 2, 8): a0 + a1 = 5 -> block 1.
  EXPECT_EQ(D.gridCoordinate({3, 2, 8})[0], 1);
  EXPECT_TRUE(D.owns({1, 2, 8}, {0}));
}

TEST(DecompositionTest, ShiftedDecomposition) {
  // Figure 4(c): blocks shifted right by one.
  Program P = shiftProgram();
  Space ASp = arraySourceSpace(P, 0);
  Decomposition D(ASp, 1);
  D.setBlock(0, AffineExpr::var(ASp.size(), 0).plusConst(-1), 8);
  EXPECT_EQ(D.gridCoordinate({0, 0, 100})[0], -1); // before the shift
  EXPECT_EQ(D.gridCoordinate({1, 0, 100})[0], 0);
  EXPECT_EQ(D.gridCoordinate({8, 0, 100})[0], 0);
  EXPECT_EQ(D.gridCoordinate({9, 0, 100})[0], 1);
}

TEST(DecompositionTest, CyclicFoldConstraints) {
  // pi: virtual processor 13 on a 4-processor machine is physical 1.
  Space Sp;
  unsigned V = Sp.add("v", VarKind::Proc);
  unsigned Ph = Sp.add("ph", VarKind::Proc);
  System S(std::move(Sp));
  addCyclicFold(S, V, Ph, 4);
  System Pinned = S;
  Pinned.addEQ(Pinned.varExpr(V).plusConst(-13));
  Pinned.addEQ(Pinned.varExpr(Ph).plusConst(-1));
  EXPECT_EQ(Pinned.checkIntegerFeasible(), Feasibility::Feasible);
  System Wrong = S;
  Wrong.addEQ(Wrong.varExpr(V).plusConst(-13));
  Wrong.addEQ(Wrong.varExpr(Ph).plusConst(-2));
  EXPECT_EQ(Wrong.checkIntegerFeasible(), Feasibility::Empty);
}

TEST(DecompositionTest, TwoDimensionalGrid) {
  // Square blocks on a 2-D grid (Figure 4, top right).
  Program P = parseProgramOrDie(R"(
param N;
array A[N][N];
for i = 0 to N - 1 {
  for j = 0 to N - 1 {
    A[i][j] = i;
  }
}
)");
  Space ASp = arraySourceSpace(P, 0);
  Decomposition D(ASp, 2);
  D.setBlock(0, AffineExpr::var(ASp.size(), 0), 4);
  D.setBlock(1, AffineExpr::var(ASp.size(), 1), 4);
  std::vector<IntT> C = D.gridCoordinate({5, 11, 16});
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C[0], 1);
  EXPECT_EQ(C[1], 2);
}
