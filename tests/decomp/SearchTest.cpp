//===- tests/decomp/SearchTest.cpp - Decomposition auto-search ----------===//
//
// Pins the decomposition search contract (decomp/Search.h): the bounded
// enumeration keeps the hand-written hint as candidate 0, the scorer
// reports infeasible candidates instead of dying on them, and — the
// acceptance criterion of the subsystem — the winner's simulated
// makespan is never worse than the hand-written spec's on any of the
// five shipped workloads.
//
//===----------------------------------------------------------------------===//

#include "core/SpecParser.h"
#include "decomp/Search.h"
#include "frontend/Parser.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>

using namespace dmcc;

namespace {

std::string repoPath(const std::string &Rel) {
  return std::string(DMCC_REPO_ROOT) + "/" + Rel;
}

SpecParseOutput loadWorkload(const std::string &Name) {
  std::ifstream In(repoPath("examples/" + Name + ".dm"));
  EXPECT_TRUE(In.good()) << Name;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  SpecParseOutput SP = parseWithSpec(Buf.str());
  EXPECT_TRUE(SP.ok()) << Name << ": " << SP.Error;
  return SP;
}

Program lu() {
  return parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

SearchOptions fastOpts(std::map<std::string, IntT> Params) {
  SearchOptions SO;
  SO.Procs = 4;
  SO.Params = std::move(Params);
  SO.Jobs = 4;
  SO.TimeoutSeconds = 120; // generous: CI machines can be slow
  return SO;
}

} // namespace

//===----------------------------------------------------------------------===//
// Enumeration contract
//===----------------------------------------------------------------------===//

TEST(DecompSearch, HintIsCandidateZeroAndSpaceIsBounded) {
  Program P = lu();
  CompileSpec Hint = luSpec(P);
  SearchOptions SO = fastOpts({{"N", 16}});
  std::vector<DecompCandidate> Cands =
      enumerateDecompositions(P, &Hint, SO);
  ASSERT_FALSE(Cands.empty());
  EXPECT_TRUE(Cands[0].IsHint);
  EXPECT_EQ(Cands[0].Desc, "hint (hand-written spec)");
  // 2-D array, <= MaxBlockChoices block sizes per dimension, plus the
  // hint: the space stays a handful of compiles.
  EXPECT_LE(Cands.size(), 1 + 2 * SO.MaxBlockChoices);
  // Both classic styles must be in the race for each dimension.
  bool SawCyclic0 = false, SawBlock1 = false;
  for (const DecompCandidate &C : Cands) {
    if (C.IsHint)
      continue;
    EXPECT_FALSE(C.Spec.Stmts.empty()) << C.Desc;
    if (C.Dim == 0 && C.Block == 1)
      SawCyclic0 = true;
    if (C.Dim == 1 && C.Block > 1)
      SawBlock1 = true;
  }
  EXPECT_TRUE(SawCyclic0);
  EXPECT_TRUE(SawBlock1);
}

TEST(DecompSearch, EnumerationWithoutHintStillCoversTheSpace) {
  Program P = lu();
  SearchOptions SO = fastOpts({{"N", 16}});
  std::vector<DecompCandidate> NoHint =
      enumerateDecompositions(P, nullptr, SO);
  CompileSpec Hint = luSpec(P);
  std::vector<DecompCandidate> WithHint =
      enumerateDecompositions(P, &Hint, SO);
  ASSERT_FALSE(NoHint.empty());
  EXPECT_FALSE(NoHint[0].IsHint);
  EXPECT_EQ(NoHint.size() + 1, WithHint.size());
}

TEST(DecompSearch, UnboundParameterFallsBackToHintOnly) {
  Program P = lu();
  CompileSpec Hint = luSpec(P);
  SearchOptions SO = fastOpts({}); // N unbound: extents can't evaluate
  std::vector<DecompCandidate> Cands =
      enumerateDecompositions(P, &Hint, SO);
  ASSERT_EQ(Cands.size(), 1u);
  EXPECT_TRUE(Cands[0].IsHint);
}

//===----------------------------------------------------------------------===//
// Scoring contract
//===----------------------------------------------------------------------===//

TEST(DecompSearch, InfeasibleCandidatesAreReportedNotFatal) {
  Program P = lu();
  CompileSpec Good = luSpec(P);
  CompileSpec Broken; // no statement plans: the compiler must reject it
  ScoreOptions SO;
  SO.Params = {{"N", 16}};
  SO.Jobs = 2;
  std::vector<SpecScore> Scores = scoreSpecs(P, {Good, Broken}, SO);
  ASSERT_EQ(Scores.size(), 2u);
  EXPECT_TRUE(Scores[0].Ok) << Scores[0].Error;
  EXPECT_GT(Scores[0].MakespanSeconds, 0.0);
  EXPECT_FALSE(Scores[1].Ok);
  EXPECT_FALSE(Scores[1].Error.empty());
}

TEST(DecompSearch, SearchOnLUFindsAFeasibleWinner) {
  Program P = lu();
  CompileSpec Hint = luSpec(P);
  SearchResult SR =
      searchDecompositions(P, &Hint, fastOpts({{"N", 16}}));
  ASSERT_TRUE(SR.ok()) << SR.Error;
  EXPECT_TRUE(SR.best().Score.Ok);
  ASSERT_TRUE(SR.Candidates[0].Score.Ok) << SR.Candidates[0].Score.Error;
  EXPECT_LE(SR.best().Score.MakespanSeconds,
            SR.Candidates[0].Score.MakespanSeconds);
}

//===----------------------------------------------------------------------===//
// Acceptance criterion: winner <= hand-written spec on every workload
//===----------------------------------------------------------------------===//

class SearchWorkload : public ::testing::TestWithParam<const char *> {};

TEST_P(SearchWorkload, WinnerIsNeverWorseThanTheHandWrittenSpec) {
  SpecParseOutput SP = loadWorkload(GetParam());
  ASSERT_TRUE(SP.ok());
  SearchResult SR =
      searchDecompositions(*SP.Prog, &SP.Spec, fastOpts(SP.ParamDefaults));
  ASSERT_TRUE(SR.ok()) << GetParam() << ": " << SR.Error;
  // The hand-written spec is candidate 0 and must itself be feasible.
  ASSERT_TRUE(SR.Candidates[0].Cand.IsHint);
  ASSERT_TRUE(SR.Candidates[0].Score.Ok)
      << GetParam() << ": " << SR.Candidates[0].Score.Error;
  EXPECT_LE(SR.best().Score.MakespanSeconds,
            SR.Candidates[0].Score.MakespanSeconds)
      << GetParam() << ": winner '" << SR.best().Cand.Desc
      << "' is worse than the hand-written spec";
}

INSTANTIATE_TEST_SUITE_P(Workloads, SearchWorkload,
                         ::testing::Values("cholesky", "jacobi2d",
                                           "jacobi3d", "adi", "floyd"),
                         [](const ::testing::TestParamInfo<const char *>
                                &I) { return std::string(I.param); });
