//===- tests/integration/GroupReuseTest.cpp -------------------*- C++ -*-===//
//
// Section 6.1.2: uniformly generated references (a 5-point stencil) fetch
// overlapping boundary values; group-reuse elimination must move each
// boundary value once, and the functional result must stay identical.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

Program fivePoint() {
  return parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
array Y[N + 1];
for t = 0 to T {
  for i = 2 to N - 2 {
    Y[i] = X[i - 2] + X[i - 1] + X[i] + X[i + 1] + X[i + 2];
  }
  for i2 = 2 to N - 2 {
    X[i2] = Y[i2];
  }
}
)");
}

CompileSpec spec(const Program &P) {
  CompileSpec Spec;
  Decomposition DX = blockData(P, 0, 0, 8);
  Decomposition DY = blockData(P, 1, 0, 8);
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 8)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 8)});
  Spec.InitialData.emplace(0, DX);
  Spec.InitialData.emplace(1, DY);
  Spec.FinalData.emplace(0, DX);
  Spec.FinalData.emplace(1, DY);
  return Spec;
}

SimResult simulate(const Program &P, const CompiledProgram &CP,
                   const CompileSpec &Spec, bool Functional) {
  SimOptions SO;
  SO.PhysGrid = {3};
  SO.ParamValues = {{"T", 3}, {"N", 23}};
  SO.Functional = Functional;
  SO.CollapseLoops = !Functional;
  Simulator Sim(P, CP, Spec, SO);
  return Sim.run();
}

} // namespace

TEST(GroupReuseTest, EliminationReducesTraffic) {
  Program P = fivePoint();
  CompileSpec Spec = spec(P);
  CompilerOptions On;
  CompilerOptions Off;
  Off.EliminateGroupReuse = false;
  CompiledProgram CPOn = compile(P, Spec, On);
  CompiledProgram CPOff = compile(P, Spec, Off);
  SimResult ROn = simulate(P, CPOn, Spec, /*Functional=*/false);
  SimResult ROff = simulate(P, CPOff, Spec, /*Functional=*/false);
  ASSERT_TRUE(ROn.Ok) << ROn.Error;
  ASSERT_TRUE(ROff.Ok) << ROff.Error;
  // Each block boundary needs 2 left + 2 right halo values; without
  // group-reuse elimination the overlapping reads re-fetch them.
  EXPECT_LT(ROn.Words, ROff.Words);
  EXPECT_GT(ROn.Words, 0u);
}

TEST(GroupReuseTest, FunctionalResultUnchanged) {
  Program P = fivePoint();
  CompileSpec Spec = spec(P);
  CompiledProgram CP = compile(P, Spec);
  EXPECT_TRUE(CP.Stats.AllExact) << CP.Diagnostics;

  SeqInterpreter Gold(P, {{"T", 3}, {"N", 23}});
  Gold.run();
  SimResult R = simulate(P, CP, Spec, /*Functional=*/true);
  ASSERT_TRUE(R.Ok) << R.Error;

  SimOptions SO;
  SO.PhysGrid = {3};
  SO.ParamValues = {{"T", 3}, {"N", 23}};
  Simulator Sim(P, CP, Spec, SO);
  SimResult RF = Sim.run();
  ASSERT_TRUE(RF.Ok) << RF.Error;
  unsigned Wrong = 0;
  for (IntT K = 0; K <= 23; ++K) {
    auto Got = Sim.finalValue(0, {K});
    ASSERT_TRUE(Got.has_value()) << "X[" << K << "] missing";
    if (*Got != Gold.arrayValue(0, {K}))
      ++Wrong;
  }
  EXPECT_EQ(Wrong, 0u);
}
