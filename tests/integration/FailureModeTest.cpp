//===- tests/integration/FailureModeTest.cpp ------------------*- C++ -*-===//
//
// Failure injection: hard errors must be loud (abort with a diagnostic),
// never silent corruption. Uses gtest death tests.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "math/LexOpt.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

Program shift() {
  return parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
}

} // namespace

TEST(FailureModeTest, UnboundedLexMaxAborts) {
  // max i subject to i >= 0 only: no upper bound.
  Space Sp;
  Sp.add("i", VarKind::Loop);
  System S(std::move(Sp));
  S.addGE(S.varExpr(0));
  EXPECT_DEATH(lexMax(S, {0}), "unbounded");
}

TEST(FailureModeTest, LocalityViolationAborts) {
  // Strip the initial-data layout the program relies on: processors
  // read boundary values they never owned nor received. The simulator
  // must abort with a locality diagnostic, not fabricate data.
  Program P = shift();
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 8)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 8));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 8));
  CompiledProgram CP = compile(P, Spec);

  // Sabotage: pretend a different (shifted) initial ownership at
  // simulation time, so the compiled communication no longer matches.
  CompileSpec Lying = Spec;
  Lying.InitialData.clear();
  Space ASp = arraySourceSpace(P, 0);
  Decomposition Shifted(ASp, 1);
  Shifted.setBlock(0, AffineExpr::var(ASp.size(), 0).plusConst(-17), 8);
  Lying.InitialData.emplace(0, Shifted);

  SimOptions SO;
  SO.PhysGrid = {2};
  SO.ParamValues = {{"T", 2}, {"N", 31}};
  SO.Functional = true;
  EXPECT_DEATH(
      {
        Simulator Sim(P, CP, Lying, SO);
        (void)Sim.run();
      },
      "locality violation");
}

TEST(FailureModeTest, MissingParameterAborts) {
  Program P = shift();
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 8)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 8));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 8));
  CompiledProgram CP = compile(P, Spec);
  SimOptions SO;
  SO.PhysGrid = {2};
  SO.ParamValues = {{"T", 2}}; // N missing
  EXPECT_DEATH(Simulator(P, CP, Spec, SO), "parameter");
}

TEST(FailureModeTest, MissingInitialLayoutAborts) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array B[N + 1];
for i = 0 to N {
  A[i] = B[i];
}
)");
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 0, 4)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 4));
  // B (read before written) has no layout.
  EXPECT_DEATH(compile(P, Spec), "initial data decomposition");
}

TEST(FailureModeTest, ParseErrorsAreDiagnosed) {
  EXPECT_DEATH(parseProgramOrDie("for i = 0 to N { }"), "parse failed");
}

TEST(FailureModeTest, FourierMotzkinOverflowIsDiagnosed) {
  // Cross-multiplying a lower bound (2x + Ky >= 0) with an upper bound
  // (-3x + Ky >= 0) produces a y coefficient of 5K. With K chosen so
  // that 3K fits in int64 but 5K does not, the scaling steps succeed
  // and the addition overflows — it must die with a named diagnostic,
  // not wrap silently.
  constexpr IntT K = 3'000'000'000'000'000'001; // odd: gcds stay 1
  Space Sp;
  Sp.add("x", VarKind::Loop);
  Sp.add("y", VarKind::Loop);
  System S(std::move(Sp));
  AffineExpr Lower = S.varExpr(0);
  Lower.scale(2);
  AffineExpr Ky = S.varExpr(1);
  Ky.scale(K);
  Lower += Ky;
  S.addGE(Lower);
  AffineExpr Upper = S.varExpr(0);
  Upper.scale(-3);
  Upper += Ky;
  S.addGE(Upper);
  EXPECT_DEATH(S.fmEliminated(0), "Fourier-Motzkin");
}

TEST(FailureModeTest, FourierMotzkinLargeButSafeCoefficients) {
  // Same shape with coefficients that stay inside int64: elimination
  // must succeed and keep the surviving bound on y.
  constexpr IntT K = 1'000'000'000'000'000'001;
  Space Sp;
  Sp.add("x", VarKind::Loop);
  Sp.add("y", VarKind::Loop);
  System S(std::move(Sp));
  AffineExpr Lower = S.varExpr(0);
  Lower.scale(2);
  AffineExpr Ky = S.varExpr(1);
  Ky.scale(K);
  Lower += Ky;
  S.addGE(Lower);
  AffineExpr Upper = S.varExpr(0);
  Upper.scale(-3);
  Upper += Ky;
  S.addGE(Upper);
  System R = S.fmEliminated(0);
  EXPECT_FALSE(R.involves(0));
  ASSERT_EQ(R.numConstraints(), 1u);
  // 5K*y >= 0, gcd-normalized to y >= 0.
  EXPECT_EQ(R.constraints()[0].Expr.coeff(1), 1);
}
