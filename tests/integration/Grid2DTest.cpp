//===- tests/integration/Grid2DTest.cpp -----------------------*- C++ -*-===//
//
// Two-dimensional processor grids (Figure 4's square-block layouts): a
// 2-D Jacobi sweep with both array dimensions distributed in blocks over
// a 2-D grid, executed on 2x2 and 3x2 physical machines and verified
// against sequential execution.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

Program jacobi2D() {
  return parseProgramOrDie(R"(
param T;
param N;
array A[N][N];
array B[N][N];
for t = 0 to T {
  for i = 1 to N - 2 {
    for j = 1 to N - 2 {
      B[i][j] = A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1];
    }
  }
  for i2 = 1 to N - 2 {
    for j2 = 1 to N - 2 {
      A[i2][j2] = B[i2][j2];
    }
  }
}
)");
}

/// 2-D block decomposition of array \p Id: Block x Block tiles.
Decomposition tiles(const Program &P, unsigned Id, IntT Block) {
  Space Sp = arraySourceSpace(P, Id);
  Decomposition D(Sp, 2);
  D.setBlock(0, AffineExpr::var(Sp.size(), 0), Block);
  D.setBlock(1, AffineExpr::var(Sp.size(), 1), Block);
  return D;
}

/// 2-D block computation decomposition over loop positions 1 and 2.
Decomposition tileComp(const Program &P, unsigned Stmt, IntT Block) {
  Space Sp = stmtSourceSpace(P, Stmt);
  Decomposition D(Sp, 2);
  D.setBlock(0, AffineExpr::var(Sp.size(), 1), Block);
  D.setBlock(1, AffineExpr::var(Sp.size(), 2), Block);
  return D;
}

class Grid2D : public ::testing::TestWithParam<std::pair<IntT, IntT>> {};

} // namespace

TEST_P(Grid2D, JacobiTilesMatchSequential) {
  auto [PX, PY] = GetParam();
  Program P = jacobi2D();
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, tileComp(P, 0, 4)});
  Spec.Stmts.push_back(StmtPlan{1, tileComp(P, 1, 4)});
  Spec.InitialData.emplace(0, tiles(P, 0, 4));
  Spec.InitialData.emplace(1, tiles(P, 1, 4));
  Spec.FinalData.emplace(0, tiles(P, 0, 4));
  Spec.FinalData.emplace(1, tiles(P, 1, 4));
  CompilerOptions Opts;
  Opts.GridDims = 2;
  CompiledProgram CP = compile(P, Spec, Opts);
  EXPECT_TRUE(CP.Stats.AllExact) << CP.Diagnostics;
  EXPECT_GT(CP.Comms.size(), 0u);

  std::map<std::string, IntT> Params{{"T", 2}, {"N", 12}};
  SeqInterpreter Gold(P, Params);
  Gold.run();

  SimOptions SO;
  SO.PhysGrid = {PX, PY};
  SO.ParamValues = Params;
  Simulator Sim(P, CP, Spec, SO);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Messages + R.IntraMessages, 0u);

  unsigned Wrong = 0, Missing = 0;
  for (IntT I = 0; I < 12; ++I)
    for (IntT J = 0; J < 12; ++J) {
      auto Got = Sim.finalValue(0, {I, J});
      if (!Got)
        ++Missing;
      else if (*Got != Gold.arrayValue(0, {I, J}))
        ++Wrong;
    }
  EXPECT_EQ(Missing, 0u);
  EXPECT_EQ(Wrong, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Grid2D,
    ::testing::Values(std::make_pair<IntT, IntT>(2, 2),
                      std::make_pair<IntT, IntT>(3, 2),
                      std::make_pair<IntT, IntT>(1, 3)),
    [](const ::testing::TestParamInfo<std::pair<IntT, IntT>> &I) {
      return std::to_string(I.param.first) + "x" +
             std::to_string(I.param.second);
    });

TEST(Grid2D2, TransposedReadNeedsDiagonalCommunication) {
  // B[i][j] = A[j][i] with both arrays tiled: every off-diagonal tile
  // fetches from its transposed peer.
  Program P = parseProgramOrDie(R"(
param N;
array A[N][N];
array B[N][N];
for i = 0 to N - 1 {
  for j = 0 to N - 1 {
    B[i][j] = A[j][i];
  }
}
)");
  CompileSpec Spec;
  {
    Space Sp = stmtSourceSpace(P, 0);
    Decomposition C(Sp, 2);
    C.setBlock(0, AffineExpr::var(Sp.size(), 0), 4);
    C.setBlock(1, AffineExpr::var(Sp.size(), 1), 4);
    Spec.Stmts.push_back(StmtPlan{0, std::move(C)});
  }
  Spec.InitialData.emplace(0, tiles(P, 0, 4));
  Spec.InitialData.emplace(1, tiles(P, 1, 4));
  Spec.FinalData.emplace(1, tiles(P, 1, 4));
  CompilerOptions Opts;
  Opts.GridDims = 2;
  CompiledProgram CP = compile(P, Spec, Opts);

  std::map<std::string, IntT> Params{{"N", 8}};
  SeqInterpreter Gold(P, Params);
  Gold.run();
  SimOptions SO;
  SO.PhysGrid = {2, 2};
  SO.ParamValues = Params;
  Simulator Sim(P, CP, Spec, SO);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  unsigned Wrong = 0;
  for (IntT I = 0; I < 8; ++I)
    for (IntT J = 0; J < 8; ++J) {
      auto Got = Sim.finalValue(1, {I, J});
      if (!Got || *Got != Gold.arrayValue(1, {I, J}))
        ++Wrong;
    }
  EXPECT_EQ(Wrong, 0u);
  // The off-diagonal tiles genuinely communicated.
  EXPECT_GT(R.Messages + R.IntraMessages, 0u);
}
