//===- tests/integration/EndToEndTest.cpp ---------------------*- C++ -*-===//
//
// The whole pipeline: parse -> analyze -> derive communication ->
// optimize -> generate SPMD -> execute on the simulated machine -> every
// array element under the final layout must be bitwise identical to the
// sequential interpreter's result, and no locality violation or deadlock
// may occur.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

struct E2ECase {
  const char *Name;
  const char *Source;
  std::map<std::string, IntT> Params;
  IntT PhysProcs;
  /// Builds the compile spec once the program is parsed.
  CompileSpec (*MakeSpec)(const Program &P);
};

CompileSpec shiftSpec(const Program &P) {
  CompileSpec Spec;
  // Iterations of the i loop in blocks of 4; X in matching blocks.
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 4)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 4));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 4));
  return Spec;
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  // The paper's Section 7 configuration: cyclic rows.
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

CompileSpec stencilSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition DX = blockData(P, 0, 0, 4);
  Decomposition DY = blockData(P, 1, 0, 4);
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 4)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 4)});
  Spec.InitialData.emplace(0, DX);
  Spec.InitialData.emplace(1, DY);
  Spec.FinalData.emplace(0, DX);
  Spec.FinalData.emplace(1, DY);
  return Spec;
}

CompileSpec pipelineSpec(const Program &P) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 0, 3)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 3)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 3));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, 3));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 3));
  Spec.FinalData.emplace(1, blockData(P, 1, 0, 3));
  return Spec;
}

CompileSpec killChainSpec(const Program &P) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 0, 4)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 0, 4)});
  Spec.Stmts.push_back(StmtPlan{2, blockComputation(P, 2, 0, 4)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 4));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, 4));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 4));
  Spec.FinalData.emplace(1, blockData(P, 1, 0, 4));
  return Spec;
}

CompileSpec backwardSpec(const Program &P) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 4)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 4)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 4));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, 4));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 4));
  Spec.FinalData.emplace(1, blockData(P, 1, 0, 4));
  return Spec;
}

CompileSpec reversalSpec(const Program &P) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 0, 4)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 4));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, 4));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 4));
  Spec.FinalData.emplace(1, blockData(P, 1, 0, 4));
  return Spec;
}

const E2ECase Cases[] = {
    {"shift3",
     R"(param T; param N; array X[N + 1];
        for t = 0 to T { for i = 3 to N { X[i] = X[i - 3] + 1; } })",
     {{"T", 3}, {"N", 15}}, 2, shiftSpec},
    {"lu",
     R"(param N; array X[N + 1][N + 1];
        for i1 = 0 to N { for i2 = i1 + 1 to N {
          X[i2][i1] = X[i2][i1] / X[i1][i1];
          for i3 = i1 + 1 to N {
            X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3]; } } })",
     {{"N", 7}}, 3, luSpec},
    {"stencil",
     R"(param T; param N; array X[N + 1]; array Y[N + 1];
        for t = 0 to T { for i = 1 to N - 1 {
            Y[i] = X[i - 1] + X[i] + X[i + 1]; }
          for i2 = 1 to N - 1 { X[i2] = Y[i2]; } })",
     {{"T", 2}, {"N", 12}}, 2, stencilSpec},
    {"pipeline",
     R"(param N; array X[N + 1]; array Y[N + 1];
        for i = 1 to N { X[i] = i;
          for j = 1 to N { Y[j] = Y[j] + X[i - 1]; } })",
     {{"N", 8}}, 2, pipelineSpec},
    {"kill_chain",
     R"(param N; array A[N + 1]; array B[N + 1];
        for i = 0 to N { A[i] = i; }
        for k = 2 to N { A[k] = A[k - 1] + 1; }
        for j = 0 to N { B[j] = A[N - j]; })",
     {{"N", 10}}, 3, killChainSpec},
    {"reversal",
     R"(param N; array A[N + 1]; array B[N + 1];
        for i = 0 to N { A[i] = B[N - i] + 1; })",
     {{"N", 11}}, 3, reversalSpec},
    // A textually-backward flow carried by the inner loop: S0 reads the
    // B value S1 wrote one i earlier, so the i loop must stay
    // interleaved (loop distribution would reorder the phases and read
    // stale data). Exercises the distribution-legality test.
    {"backward_carried",
     R"(param T; param N; array A[N + 1]; array B[N + 1];
        for t = 0 to T { for i = 1 to N {
          A[i] = B[i - 1] + 1;
          B[i] = A[i] + 2; } })",
     {{"T", 2}, {"N", 11}}, 2, backwardSpec},
};

class EndToEnd : public ::testing::TestWithParam<E2ECase> {};

} // namespace

TEST_P(EndToEnd, SimulatedSpmdMatchesSequential) {
  const E2ECase &C = GetParam();
  Program P = parseProgramOrDie(C.Source);
  CompileSpec Spec = C.MakeSpec(P);
  CompiledProgram CP = compile(P, Spec);
  EXPECT_TRUE(CP.Stats.AllExact) << CP.Diagnostics;

  // Golden sequential execution.
  SeqInterpreter Gold(P, C.Params);
  Gold.run();

  SimOptions SO;
  SO.PhysGrid = {C.PhysProcs};
  SO.ParamValues = C.Params;
  SO.Functional = true;
  Simulator Sim(P, CP, Spec, SO);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << C.Name << ": " << R.Error;

  // Every element under a final layout must match bit for bit.
  for (const auto &[ArrayId, FD] : Spec.FinalData) {
    (void)FD;
    const ArrayDecl &AD = P.array(ArrayId);
    std::vector<IntT> Env(P.space().size(), 0);
    for (unsigned I = 0; I != P.space().size(); ++I)
      if (P.space().kind(I) == VarKind::Param)
        Env[I] = C.Params.at(P.space().name(I));
    std::vector<IntT> Sizes;
    for (const AffineExpr &D : AD.DimSizes)
      Sizes.push_back(D.evaluate(Env));
    std::vector<IntT> Idx(Sizes.size(), 0);
    bool Done = false;
    unsigned Checked = 0, Missing = 0, Wrong = 0;
    while (!Done) {
      double Want = Gold.arrayValue(ArrayId, Idx);
      auto Got = Sim.finalValue(ArrayId, Idx);
      ++Checked;
      if (!Got)
        ++Missing;
      else if (*Got != Want)
        ++Wrong;
      for (unsigned K = Idx.size(); K-- > 0;) {
        if (++Idx[K] < Sizes[K])
          break;
        Idx[K] = 0;
        if (K == 0)
          Done = true;
      }
    }
    EXPECT_EQ(Missing, 0u)
        << C.Name << " array " << AD.Name << ": missing final values";
    EXPECT_EQ(Wrong, 0u)
        << C.Name << " array " << AD.Name << ": wrong final values";
    EXPECT_GT(Checked, 0u);
  }
}

TEST_P(EndToEnd, PerformanceModeAgreesOnCounts) {
  const E2ECase &C = GetParam();
  Program P = parseProgramOrDie(C.Source);
  CompileSpec Spec = C.MakeSpec(P);
  CompiledProgram CP = compile(P, Spec);

  SimOptions Fn;
  Fn.PhysGrid = {C.PhysProcs};
  Fn.ParamValues = C.Params;
  Fn.Functional = true;
  SimResult RF = Simulator(P, CP, Spec, Fn).run();
  ASSERT_TRUE(RF.Ok) << RF.Error;

  SimOptions Pf = Fn;
  Pf.Functional = false;
  Pf.CollapseLoops = true;
  SimResult RP = Simulator(P, CP, Spec, Pf).run();
  ASSERT_TRUE(RP.Ok) << RP.Error;

  EXPECT_EQ(RF.Messages, RP.Messages);
  EXPECT_EQ(RF.Words, RP.Words);
  EXPECT_EQ(RF.Flops, RP.Flops);
  EXPECT_EQ(RF.ComputeIterations, RP.ComputeIterations);
  EXPECT_NEAR(RF.MakespanSeconds, RP.MakespanSeconds,
              1e-9 + 0.01 * RF.MakespanSeconds);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EndToEnd, ::testing::ValuesIn(Cases),
    [](const ::testing::TestParamInfo<E2ECase> &I) { return I.param.Name; });
