//===- tests/integration/IfConversionTest.cpp -----------------*- C++ -*-===//
//
// Section 4.1: conditional statements without loops are if-converted —
// the guarded assignment reads its own current value, so the exact data
// flow (and therefore the communication) remains correct whichever way
// the condition goes at run time.
//
//===----------------------------------------------------------------------===//

#include "dataflow/LastWriteTree.h"
#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace dmcc;

TEST(IfConversionTest, ParseAndSelfRead) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array B[N + 1];
for i = 0 to N {
  if (B[i] - 1) {
    A[i] = B[i] * 2;
  }
}
)");
  ASSERT_EQ(P.numStatements(), 1u);
  const Statement &S = P.statement(0);
  // Reads: B[i] (condition), B[i] (then-value), A[i] (current value).
  ASSERT_EQ(S.Reads.size(), 3u);
  EXPECT_EQ(S.Reads.back().ArrayId, S.Write.ArrayId);
  EXPECT_EQ(S.RPool[S.RRoot].K, RVal::Kind::Select);
  // Pretty-printing shows the if-converted form.
  EXPECT_NE(P.str().find("?"), std::string::npos);
}

TEST(IfConversionTest, SequentialSemantics) {
  // Condition (i - 5): negative for i < 5, so only i >= 5 updates land.
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
for i = 0 to N {
  if (i - 5) {
    A[i] = 7;
  }
}
)");
  SeqInterpreter I(P, {{"N", 9}});
  I.run();
  for (IntT K = 0; K <= 9; ++K) {
    if (K >= 5)
      EXPECT_DOUBLE_EQ(I.arrayValue(0, {K}), 7.0) << K;
    else
      EXPECT_DOUBLE_EQ(I.arrayValue(0, {K}), initialArrayValue(0, K)) << K;
  }
}

TEST(IfConversionTest, DataFlowSeesTheSelfRead) {
  // Because the guarded statement may keep the old value, a later read
  // must see a flow from BOTH the guarded writer and whatever wrote the
  // location before it — which the self-read models exactly.
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array C[N + 1];
for i = 0 to N {
  A[i] = 1;
}
for k = 0 to N {
  if (C[k] - 1) {
    A[k] = 2;
  }
}
for j = 0 to N {
  C[j] = A[j];
}
)");
  // The final read A[j] is produced by the guarded statement (which
  // itself read the first loop's value through the self-read).
  LastWriteTree T = buildLWT(P, 2, 0);
  ASSERT_TRUE(T.Exact);
  for (const LWTContext &Ctx : T.Contexts) {
    ASSERT_TRUE(Ctx.HasWriter);
    EXPECT_EQ(Ctx.WriteStmtId, 1u);
  }
  // And the guarded statement's self-read (read #1: A[k]) flows from the
  // first loop.
  int SelfRead = -1;
  const Statement &S1 = P.statement(1);
  for (unsigned R = 0; R != S1.Reads.size(); ++R)
    if (S1.Reads[R].ArrayId == S1.Write.ArrayId)
      SelfRead = static_cast<int>(R);
  ASSERT_GE(SelfRead, 0);
  LastWriteTree TS = buildLWT(P, 1, static_cast<unsigned>(SelfRead));
  ASSERT_TRUE(TS.Exact);
  for (const LWTContext &Ctx : TS.Contexts) {
    ASSERT_TRUE(Ctx.HasWriter);
    EXPECT_EQ(Ctx.WriteStmtId, 0u);
  }
}

TEST(IfConversionTest, DistributedExecutionMatchesSequential) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array C[N + 1];
for i = 0 to N {
  A[i] = i;
}
for k = 0 to N {
  if (C[N - k] - 1) {
    A[k] = A[k] + 100;
  }
}
)");
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 0, 4)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 0, 4)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 4));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, 4));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 4));
  CompiledProgram CP = compile(P, Spec);
  EXPECT_TRUE(CP.Stats.AllExact) << CP.Diagnostics;

  std::map<std::string, IntT> Params{{"N", 14}};
  SeqInterpreter Gold(P, Params);
  Gold.run();
  SimOptions SO;
  SO.PhysGrid = {3};
  SO.ParamValues = Params;
  Simulator Sim(P, CP, Spec, SO);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  unsigned Wrong = 0;
  for (IntT K = 0; K <= 14; ++K) {
    auto Got = Sim.finalValue(0, {K});
    if (!Got || *Got != Gold.arrayValue(0, {K}))
      ++Wrong;
  }
  EXPECT_EQ(Wrong, 0u);
  // The condition array C is read from the mirrored block: real
  // communication happened for the guard values too.
  EXPECT_GT(R.Messages + R.IntraMessages, 0u);
}

TEST(IfConversionTest, NestedControlIsRejected) {
  EXPECT_FALSE(parseProgram(R"(
param N;
array A[N];
if (1) {
  for i = 0 to N - 1 { A[i] = 1; }
}
)").ok());
}
