//===- tests/integration/FuzzPipelineTest.cpp -----------------*- C++ -*-===//
//
// Randomized end-to-end validation: generate affine programs from
// structural templates with random subscripts, bounds, block sizes and
// machine sizes; compile; execute on the simulated machine in functional
// mode; demand bitwise-identical final arrays. Any analysis bug —
// wrong last-write, missing transfer, bad scan bounds, broken
// aggregation — surfaces as a verification failure, a locality
// violation, or a deadlock.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace dmcc;

namespace {

struct Generated {
  std::string Source;
  IntT BlockA = 4, BlockB = 4;
  IntT Procs = 2;
  std::map<std::string, IntT> Params;
};

/// Draws one program from a family of two-array templates.
Generated generate(std::mt19937 &Rng) {
  std::uniform_int_distribution<int> Off(1, 3);
  std::uniform_int_distribution<int> Tmpl(0, 4);
  std::uniform_int_distribution<int> BlockD(2, 6);
  std::uniform_int_distribution<int> ProcD(2, 4);
  std::uniform_int_distribution<int> ND(10, 25);
  std::uniform_int_distribution<int> TD(1, 4);

  Generated G;
  G.BlockA = BlockD(Rng);
  G.BlockB = BlockD(Rng);
  G.Procs = ProcD(Rng);
  IntT N = ND(Rng), T = TD(Rng);
  G.Params = {{"N", N}, {"T", T}};
  int O1 = Off(Rng), O2 = Off(Rng);
  std::ostringstream S;
  S << "param T;\nparam N;\narray A[N + 8];\narray B[N + 8];\n";
  switch (Tmpl(Rng)) {
  case 0: // time-iterated shift
    S << "for t = 0 to T {\n  for i = " << O1 << " to N {\n"
      << "    A[i] = A[i - " << O1 << "] + 1;\n  }\n}\n";
    break;
  case 1: // sweep + copy-back stencil
    S << "for t = 0 to T {\n  for i = " << O1 << " to N {\n"
      << "    B[i] = A[i - " << O1 << "] + A[i];\n  }\n"
      << "  for i2 = " << O1 << " to N {\n    A[i2] = B[i2];\n  }\n}\n";
    break;
  case 2: // producer + consumer with offset
    S << "for i = 0 to N {\n  A[i] = i;\n}\n"
      << "for j = " << O1 << " to N {\n  B[j] = A[j - " << O1
      << "] + A[j];\n}\n";
    break;
  case 3: // reversal through an updated array
    S << "for i = 0 to N {\n  A[i] = i + 1;\n}\n"
      << "for j = 0 to N {\n  B[j] = A[N - j];\n}\n";
    break;
  default: // forward and backward offsets in one statement
    S << "for t = 0 to T {\n  for i = " << std::max(O1, O2) << " to N - "
      << O2 << " {\n    B[i] = A[i - " << O1 << "] + A[i + " << O2
      << "];\n  }\n  for i2 = 0 to N {\n    A[i2] = B[i2] + 1;\n  }\n}\n";
    break;
  }
  G.Source = S.str();
  return G;
}

class FuzzPipeline : public ::testing::TestWithParam<unsigned> {};

/// Compiles the generated program, runs it under the given fault and
/// checkpoint configuration, and demands bitwise-identical final
/// arrays against the sequential interpreter. Accumulates recovery
/// telemetry into *Stats when non-null so callers can check the crash
/// schedule actually fired.
void compileRunAndVerify(const Generated &G, const FaultOptions &Faults,
                         const CheckpointOptions &Checkpoint,
                         RecoveryStats *Stats = nullptr) {
  ParseOutput PO = parseProgram(G.Source);
  ASSERT_TRUE(PO.ok()) << PO.Error;
  Program &P = *PO.Prog;

  CompileSpec Spec;
  Spec.InitialData.emplace(0, blockData(P, 0, 0, G.BlockA));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, G.BlockB));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, G.BlockA));
  Spec.FinalData.emplace(1, blockData(P, 1, 0, G.BlockB));
  for (unsigned S = 0; S != P.numStatements(); ++S) {
    unsigned A = P.statement(S).Write.ArrayId;
    Spec.Stmts.push_back(
        StmtPlan{S, ownerComputes(P, S, Spec.InitialData.at(A))});
  }

  CompiledProgram CP = compile(P, Spec);
  ASSERT_TRUE(CP.Ok) << CP.ErrorMessage;
  if (!CP.Stats.AllExact)
    return; // approximate analyses are exercised elsewhere

  SeqInterpreter Gold(P, G.Params);
  Gold.run();

  SimOptions SO;
  SO.PhysGrid = {G.Procs};
  SO.ParamValues = G.Params;
  SO.Functional = true;
  SO.Faults = Faults;
  SO.Checkpoint = Checkpoint;
  Simulator Sim(P, CP, Spec, SO);
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  if (Stats) {
    Stats->Crashes += R.Recovery.Crashes;
    Stats->Rollbacks += R.Recovery.Rollbacks;
    Stats->CheckpointsTaken += R.Recovery.CheckpointsTaken;
  }

  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = G.Params.at(P.space().name(I));
  for (unsigned AId = 0; AId != P.numArrays(); ++AId) {
    IntT Size = P.array(AId).DimSizes[0].evaluate(Env);
    for (IntT K = 0; K != Size; ++K) {
      auto Got = Sim.finalValue(AId, {K});
      ASSERT_TRUE(Got.has_value())
          << P.array(AId).Name << "[" << K << "] missing";
      ASSERT_EQ(*Got, Gold.arrayValue(AId, {K}))
          << P.array(AId).Name << "[" << K << "]";
    }
  }
}

} // namespace

TEST_P(FuzzPipeline, CompiledProgramsMatchSequential) {
  std::mt19937 Rng(GetParam() * 7919 + 13);
  for (int Trial = 0; Trial != 6; ++Trial) {
    Generated G = generate(Rng);
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " trial " +
                 std::to_string(Trial) + "\n" + G.Source);
    compileRunAndVerify(G, FaultOptions{}, CheckpointOptions{});
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

// The crash slice (labeled `fault` in ctest): the same random programs
// under a random crash-stop schedule with checkpointing — recovery via
// rollback/replay must still produce bitwise-identical final arrays.
TEST_P(FuzzPipeline, CrashScheduledProgramsMatchSequential) {
  std::mt19937 Rng(GetParam() * 7919 + 13);
  RecoveryStats Total;
  for (int Trial = 0; Trial != 4; ++Trial) {
    Generated G = generate(Rng);
    FaultOptions F;
    F.CrashRate = 2e-3;
    F.CrashSeed = Rng();
    CheckpointOptions CK;
    CK.IntervalSteps = 100 + Rng() % 400;
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " trial " +
                 std::to_string(Trial) + " crash-seed " +
                 std::to_string(F.CrashSeed) + " interval " +
                 std::to_string(CK.IntervalSteps) + "\n" + G.Source);
    compileRunAndVerify(G, F, CK, &Total);
    if (::testing::Test::HasFatalFailure())
      return;
  }
  // The schedule must not be vacuous: across the trials of a seed, at
  // least one processor dies and at least one rollback replays.
  EXPECT_GT(Total.Crashes, 0u);
  EXPECT_GT(Total.Rollbacks, 0u);
  EXPECT_GT(Total.CheckpointsTaken, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));
