//===- tests/codegen/LoopSplitTest.cpp ------------------------*- C++ -*-===//
//
// Section 5.4 static loop splitting: guards on the loop variable become
// segment bounds; semantics (the multiset of executed statements per
// env) must be preserved.
//
//===----------------------------------------------------------------------===//

#include "codegen/LoopSplit.h"
#include "frontend/Parser.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

/// Interprets an SPMD statement list, recording (marker, env-var) events
/// for Compute leaves; enough to compare pre/post-splitting behaviour.
void interpret(const std::vector<SpmdStmt> &Stmts, std::vector<IntT> &Env,
               std::vector<std::pair<unsigned, IntT>> &Trace,
               unsigned TraceVar) {
  for (const SpmdStmt &S : Stmts) {
    switch (S.K) {
    case SpmdStmt::Kind::For: {
      IntT Lo = INT64_MIN, Hi = INT64_MAX;
      for (const SpmdBound &B : S.Lower)
        Lo = std::max(Lo, ceilDiv(B.Num.evaluate(Env), B.Den));
      for (const SpmdBound &B : S.Upper)
        Hi = std::min(Hi, floorDiv(B.Num.evaluate(Env), B.Den));
      for (IntT I = Lo; I <= Hi; ++I) {
        Env[S.Var] = I;
        interpret(S.Body, Env, Trace, TraceVar);
      }
      break;
    }
    case SpmdStmt::Kind::If: {
      bool Holds = true;
      for (const Constraint &C : S.Conds) {
        IntT V = C.Expr.evaluate(Env);
        if (C.isEquality() ? V != 0 : V < 0)
          Holds = false;
      }
      if (Holds)
        interpret(S.Body, Env, Trace, TraceVar);
      break;
    }
    case SpmdStmt::Kind::SetVar:
      Env[S.Var] = S.Value.evaluate(Env);
      break;
    case SpmdStmt::Kind::Compute:
      Trace.emplace_back(S.StmtId, Env[TraceVar]);
      break;
    default:
      break;
    }
  }
}

SpmdStmt makeCompute(unsigned Id) {
  SpmdStmt C;
  C.K = SpmdStmt::Kind::Compute;
  C.StmtId = Id;
  return C;
}

} // namespace

TEST(LoopSplitTest, PaperSection54Example) {
  // for i = 0..300 { if (i <= 200) recv; if (i >= 100) send; } becomes
  // three guard-free segments.
  SpmdProgram Prog;
  unsigned I = Prog.Sp.add("i", VarKind::Loop);
  Prog.MyProcVars = {};
  SpmdStmt For;
  For.K = SpmdStmt::Kind::For;
  For.Var = I;
  For.Lower = {SpmdBound{AffineExpr::constant(1, 0), 1}};
  For.Upper = {SpmdBound{AffineExpr::constant(1, 300), 1}};
  SpmdStmt IfRecv;
  IfRecv.K = SpmdStmt::Kind::If;
  IfRecv.Conds = {Constraint::ge(
      AffineExpr::var(1, I, -1).plusConst(200))}; // i <= 200
  IfRecv.Body.push_back(makeCompute(0));
  SpmdStmt IfSend;
  IfSend.K = SpmdStmt::Kind::If;
  IfSend.Conds = {
      Constraint::ge(AffineExpr::var(1, I).plusConst(-100))}; // i >= 100
  IfSend.Body.push_back(makeCompute(1));
  For.Body.push_back(std::move(IfRecv));
  For.Body.push_back(std::move(IfSend));
  Prog.Top.push_back(std::move(For));

  std::vector<IntT> Env(1, 0);
  std::vector<std::pair<unsigned, IntT>> Before;
  interpret(Prog.Top, Env, Before, I);

  LoopSplitStats St = splitLoops(Prog);
  EXPECT_GE(St.LoopsSplit, 1u);
  EXPECT_GE(St.GuardsEliminated, 2u); // the 2nd guard splits per segment
  // No If with loop-var conditions remains at loop level.
  for (const SpmdStmt &S : Prog.Top) {
    ASSERT_EQ(S.K, SpmdStmt::Kind::For);
    for (const SpmdStmt &B : S.Body)
      EXPECT_NE(B.K, SpmdStmt::Kind::If);
  }

  std::vector<std::pair<unsigned, IntT>> After;
  interpret(Prog.Top, Env, After, I);
  EXPECT_EQ(Before, After);
}

TEST(LoopSplitTest, EqualityGuardMakesThreeSegments) {
  SpmdProgram Prog;
  unsigned I = Prog.Sp.add("i", VarKind::Loop);
  SpmdStmt For;
  For.K = SpmdStmt::Kind::For;
  For.Var = I;
  For.Lower = {SpmdBound{AffineExpr::constant(1, 0), 1}};
  For.Upper = {SpmdBound{AffineExpr::constant(1, 9), 1}};
  SpmdStmt If;
  If.K = SpmdStmt::Kind::If;
  If.Conds = {Constraint::eq(AffineExpr::var(1, I).plusConst(-4))};
  If.Body.push_back(makeCompute(7));
  For.Body.push_back(makeCompute(0));
  For.Body.push_back(std::move(If));
  Prog.Top.push_back(std::move(For));

  std::vector<IntT> Env(1, 0);
  std::vector<std::pair<unsigned, IntT>> Before;
  interpret(Prog.Top, Env, Before, I);
  splitLoops(Prog);
  std::vector<std::pair<unsigned, IntT>> After;
  interpret(Prog.Top, Env, After, I);
  EXPECT_EQ(Before, After);
  EXPECT_EQ(Prog.Top.size(), 3u);
}

TEST(LoopSplitTest, GuardsOnBodyAssignedVarsAreKept) {
  // if (q <= 5) with q assigned inside the loop must NOT move to bounds.
  SpmdProgram Prog;
  unsigned I = Prog.Sp.add("i", VarKind::Loop);
  unsigned Q = Prog.Sp.add("q", VarKind::Proc);
  SpmdStmt For;
  For.K = SpmdStmt::Kind::For;
  For.Var = I;
  For.Lower = {SpmdBound{AffineExpr::constant(2, 0), 1}};
  For.Upper = {SpmdBound{AffineExpr::constant(2, 9), 1}};
  SpmdStmt Set;
  Set.K = SpmdStmt::Kind::SetVar;
  Set.Var = Q;
  Set.Value = AffineExpr::var(2, I); // q = i
  SpmdStmt If;
  If.K = SpmdStmt::Kind::If;
  If.Conds = {Constraint::ge(
      AffineExpr::var(2, Q, -1).plusConst(5) + AffineExpr::var(2, I, 1) -
      AffineExpr::var(2, I, 1))}; // q <= 5 (involves q only)
  If.Body.push_back(makeCompute(3));
  For.Body.push_back(std::move(Set));
  For.Body.push_back(std::move(If));
  Prog.Top.push_back(std::move(For));

  LoopSplitStats St = splitLoops(Prog);
  EXPECT_EQ(St.LoopsSplit, 0u);
  EXPECT_EQ(St.GuardsEliminated, 0u);
}

TEST(LoopSplitTest, CompilerAppliesSplitting) {
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 8)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 8));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 8));
  CompilerOptions On, Off;
  Off.SplitLoops = false;
  CompiledProgram CPOn = compile(P, Spec, On);
  CompiledProgram CPOff = compile(P, Spec, Off);
  EXPECT_GT(CPOn.Stats.GuardsEliminated, 0u);
  EXPECT_EQ(CPOff.Stats.GuardsEliminated, 0u);

  // Both variants must behave identically on the machine.
  SimOptions SO;
  SO.PhysGrid = {2};
  SO.ParamValues = {{"T", 3}, {"N", 31}};
  SO.Functional = true;
  SimResult ROn = Simulator(P, CPOn, Spec, SO).run();
  SimResult ROff = Simulator(P, CPOff, Spec, SO).run();
  ASSERT_TRUE(ROn.Ok) << ROn.Error;
  ASSERT_TRUE(ROff.Ok) << ROff.Error;
  EXPECT_EQ(ROn.Messages, ROff.Messages);
  EXPECT_EQ(ROn.Words, ROff.Words);
  EXPECT_EQ(ROn.Flops, ROff.Flops);
}
