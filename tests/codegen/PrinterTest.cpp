//===- tests/codegen/PrinterTest.cpp --------------------------*- C++ -*-===//
//
// The C-like SPMD pretty printer (Figures 7/10/13 style): structural
// checks on real compiled programs.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

std::string compileShift(bool Split) {
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 32)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 32));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 32));
  CompilerOptions Opts;
  Opts.SplitLoops = Split;
  return compile(P, Spec, Opts).Spmd.str();
}

unsigned countOf(const std::string &Hay, const std::string &Needle) {
  unsigned N = 0;
  for (size_t Pos = Hay.find(Needle); Pos != std::string::npos;
       Pos = Hay.find(Needle, Pos + 1))
    ++N;
  return N;
}

} // namespace

TEST(PrinterTest, ShiftProgramShowsAllPieces) {
  std::string S = compileShift(false);
  // Executing-processor header.
  EXPECT_NE(S.find("executing processor = (myp0)"), std::string::npos);
  // The shared time loop over the source bounds.
  EXPECT_NE(S.find("for t = 0 to T {"), std::string::npos);
  // Sends and receives with peers and packing bodies.
  EXPECT_GT(countOf(S, "send message[c"), 0u);
  EXPECT_GT(countOf(S, "receive message[c"), 0u);
  EXPECT_GT(countOf(S, "buffer[idx++]"), 0u);
  // The compute statement.
  EXPECT_GT(countOf(S, "execute S0("), 0u);
  // Degenerate neighbour assignment (Figure 7's ps = pr - 1 shape).
  EXPECT_TRUE(S.find("ps0 = pr0 - 1") != std::string::npos ||
              S.find("pr0 = ps0 + 1") != std::string::npos)
      << S;
}

TEST(PrinterTest, FloorDivisionBoundsUseCeildFloord) {
  // Synthetic loop with divided bounds: for i = ceild(N,3) to floord(M,2).
  SpmdProgram Prog;
  unsigned I = Prog.Sp.add("i", VarKind::Loop);
  unsigned N = Prog.Sp.add("N", VarKind::Param);
  unsigned M = Prog.Sp.add("M", VarKind::Param);
  SpmdStmt For;
  For.K = SpmdStmt::Kind::For;
  For.Var = I;
  For.Lower = {SpmdBound{AffineExpr::var(3, N), 3}};
  For.Upper = {SpmdBound{AffineExpr::var(3, M), 2},
               SpmdBound{AffineExpr::var(3, N), 1}};
  Prog.Top.push_back(std::move(For));
  std::string S = Prog.str();
  EXPECT_NE(S.find("ceild(N, 3)"), std::string::npos) << S;
  EXPECT_NE(S.find("min(floord(M, 2), N)"), std::string::npos) << S;
}

TEST(PrinterTest, SplittingTradesGuardsForSegments) {
  std::string Unsplit = compileShift(false);
  std::string Split = compileShift(true);
  // Splitting duplicates loop bodies into segments (code growth) in
  // exchange for guard-free iteration ranges: more loops, and the
  // communication statements are never lost.
  EXPECT_GT(countOf(Split, "for t = "), countOf(Unsplit, "for t = "));
  EXPECT_GE(countOf(Split, "send message[c"),
            countOf(Unsplit, "send message[c"));
  EXPECT_GE(countOf(Split, "receive message[c"),
            countOf(Unsplit, "receive message[c"));
}

TEST(PrinterTest, MulticastIsLabelled) {
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  std::string S = compile(P, Spec).Spmd.str();
  EXPECT_GT(countOf(S, "multicast message[c"), 0u);
  EXPECT_GT(countOf(S, "A0[el0][el1]"), 0u); // 2-D element packing
}
