//===- tests/codegen/ScanTest.cpp -----------------------------*- C++ -*-===//
//
// Polyhedron scanning (Section 5.2, Figure 6) and local memory boxes
// (Section 5.5).
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"
#include "codegen/Scan.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

/// Interprets a scanned loop nest, collecting the (i, j) points the body
/// would visit, to compare against direct enumeration.
void interpret(const std::vector<SpmdStmt> &Stmts, std::vector<IntT> &Env,
               const std::vector<unsigned> &Collect,
               std::vector<std::vector<IntT>> &Out) {
  for (const SpmdStmt &S : Stmts) {
    switch (S.K) {
    case SpmdStmt::Kind::For: {
      IntT Lo = 0, Hi = -1;
      bool First = true;
      for (const SpmdBound &B : S.Lower) {
        IntT V = ceilDiv(B.Num.evaluate(Env), B.Den);
        Lo = First ? V : std::max(Lo, V);
        First = false;
      }
      First = true;
      for (const SpmdBound &B : S.Upper) {
        IntT V = floorDiv(B.Num.evaluate(Env), B.Den);
        Hi = First ? V : std::min(Hi, V);
        First = false;
      }
      for (IntT I = Lo; I <= Hi; ++I) {
        Env[S.Var] = I;
        interpret(S.Body, Env, Collect, Out);
      }
      break;
    }
    case SpmdStmt::Kind::If: {
      bool Holds = true;
      for (const Constraint &C : S.Conds) {
        IntT V = C.Expr.evaluate(Env);
        if (C.isEquality() ? V != 0 : V < 0)
          Holds = false;
      }
      if (Holds)
        interpret(S.Body, Env, Collect, Out);
      break;
    }
    case SpmdStmt::Kind::SetVar:
      Env[S.Var] = S.ValueDen == 1
                       ? S.Value.evaluate(Env)
                       : floorDiv(S.Value.evaluate(Env), S.ValueDen);
      break;
    case SpmdStmt::Kind::Compute: {
      std::vector<IntT> Pt;
      for (unsigned V : Collect)
        Pt.push_back(Env[V]);
      Out.push_back(std::move(Pt));
      break;
    }
    default:
      FAIL() << "unexpected statement kind in scan test";
    }
  }
}

/// Scans \p S over \p Order and returns the visited points.
std::vector<std::vector<IntT>> runScan(const System &S,
                                       const std::vector<unsigned> &Order) {
  std::vector<ScanVarPlan> Plan;
  for (unsigned V : Order)
    Plan.push_back(ScanVarPlan{V, false, AffineExpr()});
  std::vector<SpmdStmt> Code = scanPolyhedron(S, Plan, [&]() {
    SpmdStmt C;
    C.K = SpmdStmt::Kind::Compute;
    std::vector<SpmdStmt> B;
    B.push_back(std::move(C));
    return B;
  });
  std::vector<IntT> Env(S.numVars(), 0);
  std::vector<std::vector<IntT>> Out;
  interpret(Code, Env, Order, Out);
  return Out;
}

} // namespace

TEST(ScanTest, PaperFigure6BothOrders) {
  // Figure 6's 2-D polyhedron: 16 - i <= j, 2j <= i + 12, j >= 1, i <= 14
  // (reconstructed from the picture's bounding constraints).
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("j", VarKind::Loop);
  System S(std::move(Sp));
  S.addGE(S.varExpr(1) - S.constExpr(16) + S.varExpr(0)); // i + j >= 16
  S.addGE(S.varExpr(0).plusConst(12) - S.varExpr(1).scale(2));
  S.addGE(S.varExpr(1).plusConst(-1));
  S.addGE(S.constExpr(14) - S.varExpr(0));

  // Ground truth.
  std::vector<std::vector<IntT>> Expect;
  S.enumeratePoints(
      [&](const std::vector<IntT> &P) { Expect.push_back(P); });
  ASSERT_FALSE(Expect.empty());

  // (i, j) order visits exactly the same points, in the same order.
  auto IJ = runScan(S, {0, 1});
  EXPECT_EQ(IJ, Expect);

  // (j, i) order: same set, lexicographic in (j, i).
  auto JI = runScan(S, {1, 0});
  ASSERT_EQ(JI.size(), Expect.size());
  for (unsigned K = 1; K < JI.size(); ++K)
    EXPECT_TRUE(JI[K - 1] < JI[K]);
}

TEST(ScanTest, DegenerateVariableBecomesAssignment) {
  // ps == pr - 1 (Figure 7c): scanning ps emits an assignment, not a
  // loop.
  Space Sp;
  Sp.add("pr", VarKind::Proc);
  Sp.add("ps", VarKind::Proc);
  System S(std::move(Sp));
  S.addEq(S.varExpr(1), S.varExpr(0).plusConst(-1));
  S.addRange(0, 1, 3);
  std::vector<ScanVarPlan> Plan{ScanVarPlan{0, false, AffineExpr()},
                                ScanVarPlan{1, false, AffineExpr()}};
  auto Code = scanPolyhedron(S, Plan, [&]() {
    SpmdStmt C;
    C.K = SpmdStmt::Kind::Compute;
    std::vector<SpmdStmt> B;
    B.push_back(std::move(C));
    return B;
  });
  // Expect: for pr { ps = pr - 1; compute; }.
  ASSERT_EQ(Code.size(), 1u);
  ASSERT_EQ(Code[0].K, SpmdStmt::Kind::For);
  ASSERT_GE(Code[0].Body.size(), 2u);
  EXPECT_EQ(Code[0].Body[0].K, SpmdStmt::Kind::SetVar);
  EXPECT_EQ(Code[0].Body[0].Var, 1u);
}

TEST(ScanTest, EmptySystemScansToNothing) {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  System S(std::move(Sp));
  S.addRange(0, 5, 2); // empty
  std::vector<ScanVarPlan> Plan{ScanVarPlan{0, false, AffineExpr()}};
  auto Out = runScan(S, {0});
  EXPECT_TRUE(Out.empty());
}

TEST(ScanTest, StridedSetViaAuxiliaryVariable) {
  // Multiples of 3 in [0, 10]: i == 3q with q existential; scanning
  // (q, i) enumerates i in {0, 3, 6, 9}.
  Space Sp;
  Sp.add("q", VarKind::Aux);
  Sp.add("i", VarKind::Loop);
  System S(std::move(Sp));
  S.addEq(S.varExpr(1), S.varExpr(0).scale(3));
  S.addRange(1, 0, 10);
  auto Out = runScan(S, {0, 1});
  std::vector<std::vector<IntT>> Expect{{0, 0}, {1, 3}, {2, 6}, {3, 9}};
  EXPECT_EQ(Out, Expect);
}

TEST(ScanTest, LULocalMemoryBox) {
  // Section 5.5 / Section 7: under the cyclic row decomposition each
  // processor's write accesses to X touch one row per owned virtual
  // processor; the bounding box of the write access X[i2][i3] for
  // virtual processor p is row p, columns p+1..N.
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
  Decomposition D = cyclicData(P, 0, 0);
  StmtPlan SP{1, ownerComputes(P, 1, D)};
  SpmdSpace SS(P, 1);
  LocalBox Box;
  ASSERT_TRUE(computeLocalBox(SS, SP, P.statement(1).Write, Box));
  ASSERT_EQ(Box.Lower.size(), 2u);
  // Row dimension: exactly myp0 (lower == upper == p).
  std::vector<IntT> Env(SS.prog().Sp.size(), 0);
  int MyP = SS.prog().MyProcVars[0];
  int NV = SS.prog().Sp.indexOf("N");
  ASSERT_GE(NV, 0);
  Env[MyP] = 5;
  Env[NV] = 12;
  auto EvalLo = [&](unsigned Dim) {
    IntT R = INT64_MIN;
    for (const SpmdBound &B : Box.Lower[Dim])
      R = std::max(R, ceilDiv(B.Num.evaluate(Env), B.Den));
    return R;
  };
  auto EvalHi = [&](unsigned Dim) {
    IntT R = INT64_MAX;
    for (const SpmdBound &B : Box.Upper[Dim])
      R = std::min(R, floorDiv(B.Num.evaluate(Env), B.Den));
    return R;
  };
  EXPECT_EQ(EvalLo(0), 5);
  EXPECT_EQ(EvalHi(0), 5);
  EXPECT_EQ(EvalLo(1), 1);  // columns i1+1 with i1 >= 0
  EXPECT_EQ(EvalHi(1), 12); // ..N
}
