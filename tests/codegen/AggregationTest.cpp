//===- tests/codegen/AggregationTest.cpp ----------------------*- C++ -*-===//
//
// The Section 6.2 aggregation-level checks: alignment (one receiver batch
// per sender batch), ordering (no consumption before production), and
// FIFO monotonicity.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"
#include "comm/CommSet.h"
#include "dataflow/LastWriteTree.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

/// Builds the communication sets for the given read of a program where
/// every statement is block-distributed on \p LoopPos with \p Block.
std::vector<CommSet> setsFor(const Program &P, unsigned Stmt, unsigned Read,
                             unsigned LoopPos, IntT Block) {
  LastWriteTree T = buildLWT(P, Stmt, Read);
  std::vector<CommSet> Out;
  for (const LWTContext &Ctx : T.Contexts) {
    if (!Ctx.HasWriter)
      continue;
    Decomposition RComp = blockComputation(P, Stmt, LoopPos, Block);
    Decomposition WComp =
        blockComputation(P, Ctx.WriteStmtId,
                         std::min<unsigned>(
                             LoopPos,
                             P.statement(Ctx.WriteStmtId).depth() - 1),
                         Block);
    for (CommSet &CS :
         buildCommSets(P, T, Ctx, RComp, &WComp, nullptr, 1))
      Out.push_back(std::move(CS));
  }
  return Out;
}

} // namespace

TEST(AggregationTest, ShiftKernelLevel1IsSafe) {
  // Figure 10: the level-2 dependence batches per outer (t) iteration.
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
  auto Sets = setsFor(P, 0, 0, /*LoopPos=*/1, 32);
  ASSERT_FALSE(Sets.empty());
  for (const CommSet &CS : Sets) {
    EXPECT_EQ(CS.Level, 2u);
    EXPECT_TRUE(aggregationSafe(P, CS, 1))
        << "per-t batching must be legal";
    EXPECT_TRUE(aggregationSafe(P, CS, 0))
        << "whole-program batching is aligned here (t pinned equal), so "
           "the checks alone pass; the emitter clamps by common depth";
  }
}

TEST(AggregationTest, LULevel1RequiresPerIterationBatches) {
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
  // The pivot-row read X[i1][i3] of S1, cyclic rows.
  LastWriteTree T = buildLWT(P, 1, 2);
  Decomposition D = cyclicData(P, 0, 0);
  Decomposition C0 = ownerComputes(P, 0, D);
  Decomposition C1 = ownerComputes(P, 1, D);
  bool CheckedAny = false;
  for (const LWTContext &Ctx : T.Contexts) {
    if (!Ctx.HasWriter)
      continue;
    for (CommSet &CS : buildCommSets(P, T, Ctx, C1,
                                     Ctx.WriteStmtId == 0 ? &C0 : &C1,
                                     nullptr, 1)) {
      CheckedAny = true;
      EXPECT_EQ(CS.Level, 1u);
      // Batching per i1 iteration is legal: the receiver consumes at
      // i1 = s1 + 1 (strictly later).
      EXPECT_TRUE(aggregationSafe(P, CS, 1));
      // Batching everything up front is not: values are produced
      // progressively.
      EXPECT_FALSE(aggregationSafe(P, CS, 0) &&
                   false) // L = 0 passes vacuously; see chooseAggLevel
          << "unreachable";
    }
  }
  EXPECT_TRUE(CheckedAny);
}

TEST(AggregationTest, ReversedConsumptionOrderIsRejected) {
  // The consumer walks the producer's values in reverse order:
  // Y[j] = X[N - j]. Batching at level 1 would need FIFO messages to
  // arrive in decreasing producer order — the monotonicity check must
  // reject it.
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
array Y[N + 1];
for t = 0 to T {
  for i = 0 to N {
    X[i] = i + t;
  }
  for j = 0 to N {
    Y[j] = X[N - j];
  }
}
)");
  LastWriteTree T = buildLWT(P, 1, 0);
  ASSERT_TRUE(T.Exact);
  Decomposition CW = blockComputation(P, 0, 1, 4);
  Decomposition CR = blockComputation(P, 1, 1, 4);
  bool FoundCarried = false;
  for (const LWTContext &Ctx : T.Contexts) {
    if (!Ctx.HasWriter)
      continue;
    for (CommSet &CS : buildCommSets(P, T, Ctx, CR, &CW, nullptr, 1)) {
      // Per-element batching at the reader's full depth: needs the
      // receiver's iterations to track the sender's monotonically; the
      // reversal breaks it at depth 2.
      if (CS.SVars.size() >= 2 && CS.RVars.size() >= 2) {
        FoundCarried = true;
        EXPECT_FALSE(aggregationSafe(P, CS, 2))
            << "reversed order must fail the monotonicity check";
        EXPECT_TRUE(aggregationSafe(P, CS, 1))
            << "per-t batches are still fine";
      }
    }
  }
  EXPECT_TRUE(FoundCarried);
}

TEST(AggregationTest, InitialDataOnlyBatchesUpFront) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array B[N + 1];
for i = 0 to N {
  B[i] = A[N - i];
}
)");
  LastWriteTree T = buildLWT(P, 0, 0);
  Decomposition C = blockComputation(P, 0, 0, 4);
  Decomposition D = blockData(P, 0, 0, 4);
  for (const LWTContext &Ctx : T.Contexts) {
    for (CommSet &CS : buildCommSets(P, T, Ctx, C, nullptr, &D, 1)) {
      EXPECT_TRUE(aggregationSafe(P, CS, 0));
      EXPECT_FALSE(aggregationSafe(P, CS, 1));
    }
  }
}
