//===- tests/codegen/GoldenPrinterTest.cpp - SPMD printer snapshots ------===//
//
// Golden-file tests pinning the exact Printer output for the shipped
// examples, with and without --early-sends. Any codegen change that
// moves a fragment, renames a variable, or flips a send between
// blocking and nonblocking shows up here as a readable diff.
//
// Regenerating the snapshots after an INTENDED output change:
//
//   ./build/tests/dmcc_golden_test --update-golden
//
// (or set DMCC_UPDATE_GOLDEN=1 in the environment). This rewrites the
// files under tests/codegen/golden/ in the source tree; review the diff
// and commit them together with the codegen change.
//
//===----------------------------------------------------------------------===//

#include "GoldenDiff.h"
#include "core/SpecParser.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace dmcc;

namespace {

bool UpdateGolden = false;

// DMCC_GOLDEN_ROOT overrides the compiled-in source root so the drift
// smoke test can point the binary at a tampered copy of the tree.
std::string repoPath(const std::string &Rel) {
  std::string Root = DMCC_REPO_ROOT;
  if (const char *Env = std::getenv("DMCC_GOLDEN_ROOT"))
    if (Env[0])
      Root = Env;
  return Root + "/" + Rel;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

struct GoldenCase {
  const char *Name;       // test parameter name
  const char *Source;     // .dm file, relative to the repo root
  bool EarlySends;        // compile with CompilerOptions::EarlySends
  const char *Golden;     // snapshot, relative to the repo root
};

class Golden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(Golden, PrinterOutputMatchesSnapshot) {
  const GoldenCase &C = GetParam();
  std::string Src;
  ASSERT_TRUE(readFile(repoPath(C.Source), Src))
      << "cannot read " << repoPath(C.Source);
  SpecParseOutput SP = parseWithSpec(Src);
  ASSERT_TRUE(SP.ok()) << SP.Error;

  CompilerOptions Opts;
  Opts.EarlySends = C.EarlySends;
  CompiledProgram CP = compile(*SP.Prog, SP.Spec, Opts);
  ASSERT_TRUE(CP.Ok) << CP.ErrorMessage;
  std::string Got = CP.Spmd.str();

  const std::string GoldenPath = repoPath(C.Golden);
  if (UpdateGolden) {
    std::ofstream Out(GoldenPath);
    ASSERT_TRUE(Out.good()) << "cannot write " << GoldenPath;
    Out << Got;
    return;
  }
  std::string Want;
  ASSERT_TRUE(readFile(GoldenPath, Want))
      << "missing snapshot " << GoldenPath
      << "; run dmcc_golden_test --update-golden to create it";
  std::string Diff = golden::renderGoldenDiff(Want, Got, C.Golden);
  EXPECT_TRUE(Diff.empty()) << Diff;
}

INSTANTIATE_TEST_SUITE_P(
    Snapshots, Golden,
    ::testing::Values(
        GoldenCase{"lu", "examples/lu.dm", false,
                   "tests/codegen/golden/lu.spmd.txt"},
        GoldenCase{"lu_early", "examples/lu.dm", true,
                   "tests/codegen/golden/lu.early.spmd.txt"},
        GoldenCase{"stencil", "examples/stencil.dm", false,
                   "tests/codegen/golden/stencil.spmd.txt"},
        GoldenCase{"stencil_early", "examples/stencil.dm", true,
                   "tests/codegen/golden/stencil.early.spmd.txt"},
        GoldenCase{"cholesky", "examples/cholesky.dm", false,
                   "tests/codegen/golden/cholesky.spmd.txt"},
        GoldenCase{"cholesky_early", "examples/cholesky.dm", true,
                   "tests/codegen/golden/cholesky.early.spmd.txt"},
        GoldenCase{"jacobi2d", "examples/jacobi2d.dm", false,
                   "tests/codegen/golden/jacobi2d.spmd.txt"},
        GoldenCase{"jacobi2d_early", "examples/jacobi2d.dm", true,
                   "tests/codegen/golden/jacobi2d.early.spmd.txt"},
        GoldenCase{"jacobi3d", "examples/jacobi3d.dm", false,
                   "tests/codegen/golden/jacobi3d.spmd.txt"},
        GoldenCase{"jacobi3d_early", "examples/jacobi3d.dm", true,
                   "tests/codegen/golden/jacobi3d.early.spmd.txt"},
        GoldenCase{"adi", "examples/adi.dm", false,
                   "tests/codegen/golden/adi.spmd.txt"},
        GoldenCase{"adi_early", "examples/adi.dm", true,
                   "tests/codegen/golden/adi.early.spmd.txt"},
        GoldenCase{"floyd", "examples/floyd.dm", false,
                   "tests/codegen/golden/floyd.spmd.txt"},
        GoldenCase{"floyd_early", "examples/floyd.dm", true,
                   "tests/codegen/golden/floyd.early.spmd.txt"}),
    [](const ::testing::TestParamInfo<GoldenCase> &I) {
      return std::string(I.param.Name);
    });

} // namespace

int main(int argc, char **argv) {
  // Strip our flag before gtest sees it; gtest rejects unknown flags.
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "--update-golden") {
      UpdateGolden = true;
      for (int J = I; J + 1 < argc; ++J)
        argv[J] = argv[J + 1];
      --argc;
      break;
    }
  if (const char *Env = std::getenv("DMCC_UPDATE_GOLDEN"))
    if (Env[0] && Env[0] != '0')
      UpdateGolden = true;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
