//===- tests/codegen/GoldenDiffTest.cpp - Diff renderer unit tests -------===//
//
// The golden suite fails through renderGoldenDiff, so its output format
// is itself pinned here: empty on equality, line-numbered -/+ region on
// drift, elision counters for long tails, and the regeneration hint.
//
//===----------------------------------------------------------------------===//

#include "GoldenDiff.h"

#include "gtest/gtest.h"

using dmcc::golden::renderGoldenDiff;
using dmcc::golden::splitLines;

namespace {

TEST(GoldenDiff, SplitLinesHandlesTrailingNewlineAndFragments) {
  EXPECT_TRUE(splitLines("").empty());
  EXPECT_EQ(splitLines("a\nb\n"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(splitLines("a\nb"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(splitLines("\n\n"), (std::vector<std::string>{"", ""}));
}

TEST(GoldenDiff, EqualInputsRenderEmpty) {
  EXPECT_EQ("", renderGoldenDiff("", "", "x.txt"));
  EXPECT_EQ("", renderGoldenDiff("a\nb\n", "a\nb\n", "x.txt"));
}

TEST(GoldenDiff, FirstDifferenceIsNumberedWithContext) {
  std::string Want = "line one\nline two\nline three\nline four\n";
  std::string Got = "line one\nline two\nline CHANGED\nline four\n";
  std::string D = renderGoldenDiff(Want, Got, "golden/x.spmd.txt");
  EXPECT_NE(D.find("golden snapshot mismatch: golden/x.spmd.txt"),
            std::string::npos);
  EXPECT_NE(D.find("first difference at line 3"), std::string::npos);
  EXPECT_NE(D.find("snapshot has 4 line(s), regenerated output has 4"),
            std::string::npos);
  // Shared context keeps plain markers; the divergent region gets -/+.
  EXPECT_NE(D.find("   1 | line one"), std::string::npos);
  EXPECT_NE(D.find("-   3 | line three"), std::string::npos);
  EXPECT_NE(D.find("+   3 | line CHANGED"), std::string::npos);
  EXPECT_NE(D.find("--update-golden"), std::string::npos);
}

TEST(GoldenDiff, LongTailsAreElidedWithCounts) {
  std::string Want, Got = "zzz\n";
  for (int I = 0; I != 20; ++I)
    Want += "w" + std::to_string(I) + "\n";
  std::string D = renderGoldenDiff(Want, Got, "x", /*MaxShow=*/2);
  EXPECT_NE(D.find("-   1 | w0"), std::string::npos);
  EXPECT_NE(D.find("-   2 | w1"), std::string::npos);
  EXPECT_EQ(D.find("w2"), std::string::npos);
  EXPECT_NE(D.find("(18 more snapshot line(s))"), std::string::npos);
  EXPECT_NE(D.find("+   1 | zzz"), std::string::npos);
}

TEST(GoldenDiff, PureAppendDiffersPastCommonPrefix) {
  // Got extends Want: the first "difference" is one past the last line.
  std::string Want = "a\nb\n", Got = "a\nb\nc\n";
  std::string D = renderGoldenDiff(Want, Got, "x");
  EXPECT_NE(D.find("first difference at line 3"), std::string::npos);
  EXPECT_NE(D.find("+   3 | c"), std::string::npos);
  EXPECT_EQ(D.find("-   3"), std::string::npos);
}

} // namespace
