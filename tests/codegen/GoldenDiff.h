//===- tests/codegen/GoldenDiff.h - Readable snapshot diffs -----*- C++ -*-===//
//
// Renders a golden-snapshot mismatch as a compact, line-numbered diff:
// the first differing line with a little context, want/got markers, the
// line counts of both sides, and the --update-golden regeneration hint.
// Pure string-to-string so it unit-tests without any files.
//
//===----------------------------------------------------------------------===//

#ifndef DMCC_TESTS_CODEGEN_GOLDENDIFF_H
#define DMCC_TESTS_CODEGEN_GOLDENDIFF_H

#include <cstdio>
#include <string>
#include <vector>

namespace dmcc {
namespace golden {

inline std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Nl = S.find('\n', Pos);
    if (Nl == std::string::npos) {
      // A trailing fragment without a newline still counts as a line;
      // a final newline does not create an extra empty one.
      if (Pos != S.size())
        Out.push_back(S.substr(Pos));
      break;
    }
    Out.push_back(S.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Out;
}

/// Renders the mismatch between \p Want (the committed snapshot) and
/// \p Got (the freshly generated output). Returns the empty string when
/// they are byte-identical. \p SnapshotRel names the snapshot in the
/// header; \p MaxShow bounds the differing lines shown per side.
inline std::string renderGoldenDiff(const std::string &Want,
                                    const std::string &Got,
                                    const std::string &SnapshotRel,
                                    unsigned MaxShow = 4) {
  if (Want == Got)
    return "";
  std::vector<std::string> W = splitLines(Want), G = splitLines(Got);
  size_t First = 0;
  while (First < W.size() && First < G.size() && W[First] == G[First])
    ++First;

  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof Buf,
                "golden snapshot mismatch: %s\n"
                "  snapshot has %zu line(s), regenerated output has %zu "
                "line(s); first difference at line %zu\n",
                SnapshotRel.c_str(), W.size(), G.size(), First + 1);
  Out += Buf;

  // Two lines of shared context, then the differing region of each side
  // with -/+ markers and 1-based line numbers.
  size_t CtxFrom = First >= 2 ? First - 2 : 0;
  for (size_t I = CtxFrom; I < First; ++I) {
    std::snprintf(Buf, sizeof Buf, "   %4zu | ", I + 1);
    Out += Buf;
    Out += W[I];
    Out += '\n';
  }
  for (size_t I = First; I < W.size() && I < First + MaxShow; ++I) {
    std::snprintf(Buf, sizeof Buf, "  -%4zu | ", I + 1);
    Out += Buf;
    Out += W[I];
    Out += '\n';
  }
  if (W.size() > First + MaxShow) {
    std::snprintf(Buf, sizeof Buf, "  -.... | (%zu more snapshot line(s))\n",
                  W.size() - First - MaxShow);
    Out += Buf;
  }
  for (size_t I = First; I < G.size() && I < First + MaxShow; ++I) {
    std::snprintf(Buf, sizeof Buf, "  +%4zu | ", I + 1);
    Out += Buf;
    Out += G[I];
    Out += '\n';
  }
  if (G.size() > First + MaxShow) {
    std::snprintf(Buf, sizeof Buf,
                  "  +.... | (%zu more generated line(s))\n",
                  G.size() - First - MaxShow);
    Out += Buf;
  }
  Out += "If the change is intended, regenerate the snapshot with:\n"
         "  dmcc_golden_test --update-golden\n"
         "and commit it together with the codegen change.\n";
  return Out;
}

} // namespace golden
} // namespace dmcc

#endif // DMCC_TESTS_CODEGEN_GOLDENDIFF_H
