//===- tests/core/SpecParserTest.cpp --------------------------*- C++ -*-===//

#include "core/SpecParser.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

const char *Annotated = R"(
param N = 32;
array X[N + 1];
array Y[N + 1];
decompose X block(0, 8) overlap(1, 1);
decompose Y block(0, 8);
final Y block(0, 4);
compute S0 block(1, 8);
compute S1 cyclic(0);
for t = 0 to 3 {
  for i = 1 to N - 1 {
    Y[i] = X[i - 1] + X[i + 1];
  }
}
for i2 = 0 to N {
  X[i2] = Y[i2];
}
)";

} // namespace

TEST(SpecParserTest, ParsesDirectivesAndProgram) {
  SpecParseOutput Out = parseWithSpec(Annotated);
  ASSERT_TRUE(Out.ok()) << Out.Error;
  EXPECT_EQ(Out.Prog->numStatements(), 2u);
  EXPECT_EQ(Out.ParamDefaults.at("N"), 32);
  ASSERT_EQ(Out.Spec.Stmts.size(), 2u);
  // S0: blocks of 8 on loop position 1.
  EXPECT_EQ(Out.Spec.Stmts[0].Comp.dim(0).Block, 8);
  // S1: cyclic = block 1.
  EXPECT_EQ(Out.Spec.Stmts[1].Comp.dim(0).Block, 1);
  // X's initial layout has the overlap; Y's final layout differs.
  const Decomposition &DX = Out.Spec.InitialData.at(0);
  EXPECT_EQ(DX.dim(0).OverlapLo, 1);
  EXPECT_EQ(DX.dim(0).OverlapHi, 1);
  EXPECT_EQ(Out.Spec.FinalData.at(1).dim(0).Block, 4);
  // X's final layout defaults to its initial one.
  EXPECT_EQ(Out.Spec.FinalData.at(0).dim(0).Block, 8);
}

TEST(SpecParserTest, OwnerComputesDefault) {
  SpecParseOutput Out = parseWithSpec(R"(
param N;
array A[N + 1];
decompose A block(0, 4);
for i = 0 to N { A[i] = i; }
)");
  ASSERT_TRUE(Out.ok()) << Out.Error;
  ASSERT_EQ(Out.Spec.Stmts.size(), 1u);
  // Owner-computes on A: iteration i in blocks of 4.
  EXPECT_TRUE(Out.Spec.Stmts[0].Comp.isUnique());
  EXPECT_EQ(Out.Spec.Stmts[0].Comp.dim(0).Block, 4);
}

TEST(SpecParserTest, ExplicitOwnerDirective) {
  SpecParseOutput Out = parseWithSpec(R"(
param N;
array A[N + 1];
decompose A cyclic(0);
compute S0 owner(A);
for i = 0 to N { A[i] = i; }
)");
  ASSERT_TRUE(Out.ok()) << Out.Error;
  EXPECT_EQ(Out.Spec.Stmts[0].Comp.dim(0).Block, 1);
}

TEST(SpecParserTest, Replicated) {
  SpecParseOutput Out = parseWithSpec(R"(
param N;
array A[N + 1];
array B[N + 1];
decompose A replicated;
decompose B block(0, 4);
for i = 0 to N { B[i] = A[i]; }
)");
  ASSERT_TRUE(Out.ok()) << Out.Error;
  EXPECT_TRUE(Out.Spec.InitialData.at(0).dim(0).Replicated);
}

TEST(SpecParserTest, Errors) {
  // Unknown array.
  EXPECT_FALSE(parseWithSpec(R"(
param N;
array A[N];
decompose Z block(0, 4);
for i = 0 to N - 1 { A[i] = 1; }
)").ok());
  // Statement out of range.
  EXPECT_FALSE(parseWithSpec(R"(
param N;
array A[N];
decompose A block(0, 4);
compute S7 block(0, 4);
for i = 0 to N - 1 { A[i] = 1; }
)").ok());
  // Dimension out of range.
  EXPECT_FALSE(parseWithSpec(R"(
param N;
array A[N];
decompose A block(3, 4);
for i = 0 to N - 1 { A[i] = 1; }
)").ok());
  // Owner-computes on an overlapped layout must be rejected.
  EXPECT_FALSE(parseWithSpec(R"(
param N;
array A[N];
decompose A block(0, 4) overlap(1, 1);
for i = 0 to N - 1 { A[i] = 1; }
)").ok());
  // Replicated computation is meaningless.
  EXPECT_FALSE(parseWithSpec(R"(
param N;
array A[N];
decompose A block(0, 4);
compute S0 replicated;
for i = 0 to N - 1 { A[i] = 1; }
)").ok());
  // Bad mapping syntax.
  SpecParseOutput Bad = parseWithSpec(R"(
param N;
array A[N];
decompose A block(0);
for i = 0 to N - 1 { A[i] = 1; }
)");
  EXPECT_FALSE(Bad.ok());
  EXPECT_FALSE(Bad.Error.empty());
}

TEST(SpecParserTest, ErrorsCarrySourcePosition) {
  // A directive syntax error names its line (1-based, counting the
  // leading blank line of the raw string) and the column where parsing
  // stopped in the original, indented line.
  SpecParseOutput Bad = parseWithSpec(R"(
param N;
array A[N];
  decompose A block(0);
for i = 0 to N - 1 { A[i] = 1; }
)");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.ErrorLine, 4u);
  // "  decompose A block(0" stops at the ')' where ',' was expected.
  EXPECT_EQ(Bad.ErrorCol, 22u);

  // An unknown array in a directive points at the directive line.
  Bad = parseWithSpec(R"(
param N;
array A[N];
decompose Z block(0, 4);
for i = 0 to N - 1 { A[i] = 1; }
)");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.ErrorLine, 4u);
  EXPECT_GT(Bad.ErrorCol, 0u);

  // A resolution-phase failure blames the compute directive's line,
  // with no column (it concerns the whole clause).
  Bad = parseWithSpec(R"(
param N;
array A[N];
decompose A block(0, 4);
compute S0 replicated;
for i = 0 to N - 1 { A[i] = 1; }
)");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.ErrorLine, 5u);
  EXPECT_EQ(Bad.ErrorCol, 0u);

  // Frontend program errors flow through with their line intact
  // (directive lines are blanked, not removed, so numbering matches).
  Bad = parseWithSpec(R"(
param N;
array A[N];
decompose A block(0, 4);
for i = 0 to N - 1 { A[i] = ; }
)");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.ErrorLine, 5u);
}

TEST(SpecParserTest, NonUniqueComputationRejectedByCompiler) {
  // A hand-built spec with a replicated computation decomposition must
  // be rejected with a structured diagnostic in every build type, not
  // a debug-only assert.
  SpecParseOutput Out = parseWithSpec(R"(
param N = 16;
array A[N];
decompose A block(0, 4);
for i = 0 to N - 1 { A[i] = 1; }
)");
  ASSERT_TRUE(Out.ok()) << Out.Error;
  Out.Spec.Stmts[0].Comp.setReplicated(0);
  ASSERT_FALSE(Out.Spec.Stmts[0].Comp.isUnique());
  CompiledProgram CP = compile(*Out.Prog, Out.Spec);
  EXPECT_FALSE(CP.Ok);
  EXPECT_NE(CP.ErrorMessage.find("S0"), std::string::npos)
      << CP.ErrorMessage;
  EXPECT_NE(CP.ErrorMessage.find("not unique"), std::string::npos)
      << CP.ErrorMessage;
  EXPECT_TRUE(CP.Spmd.Top.empty());
}

TEST(SpecParserTest, CompiledAndSimulatable) {
  SpecParseOutput Out = parseWithSpec(R"(
param N = 15;
array A[N + 1];
array B[N + 1];
decompose A block(0, 4);
decompose B block(0, 4);
for i = 0 to N { A[i] = i; }
for j = 0 to N { B[j] = A[N - j]; }
)");
  ASSERT_TRUE(Out.ok()) << Out.Error;
  CompiledProgram CP = compile(*Out.Prog, Out.Spec);
  EXPECT_TRUE(CP.Stats.AllExact);
  EXPECT_GT(CP.Comms.size(), 0u);
}
