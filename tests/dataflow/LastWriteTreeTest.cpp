//===- tests/dataflow/LastWriteTreeTest.cpp -------------------*- C++ -*-===//
//
// Reproduces the paper's worked data-flow examples: Figure 3 (the 2-deep
// shift loop), the Section 2.2.2 producer/consumer, Figure 12 (LU), and
// the array privatization example.
//
//===----------------------------------------------------------------------===//

#include "dataflow/LastWriteTree.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

/// Looks up the tree at (anchor values) and asserts a writer.
void expectWriter(const LastWriteTree &T, const std::vector<IntT> &Anchor,
                  unsigned Stmt, const std::vector<IntT> &Iter) {
  LastWriteTree::Lookup L = T.lookup(Anchor);
  ASSERT_TRUE(L.Covered) << "read instance not covered by any context";
  ASSERT_TRUE(L.HasWriter) << "expected a producer";
  EXPECT_EQ(L.WriteStmtId, Stmt);
  EXPECT_EQ(L.WriteIter, Iter);
}

void expectBottom(const LastWriteTree &T, const std::vector<IntT> &Anchor) {
  LastWriteTree::Lookup L = T.lookup(Anchor);
  ASSERT_TRUE(L.Covered) << "read instance not covered by any context";
  EXPECT_FALSE(L.HasWriter) << "expected a bottom context";
}

} // namespace

TEST(LastWriteTreeTest, PaperFigure3ShiftLoop) {
  // Figure 2/3: for t = 0..T, for i = 3..N: X[i] = X[i-3].
  // Reads with ir < 6 in the first outer iteration read external values
  // only for i-3 < 3; the LWT of the paper distinguishes: first three
  // inner iterations of t=0 read data defined outside; all others read the
  // value written at [tw, iw] = [tr, ir-3] (level 2) or, for ir in 3..5
  // with tr > 0, at [tr-1, ir+N-... ]: careful: X[ir-3] with ir-3 < 3 was
  // last written... never (X[0..2] are never written). So contexts are:
  // ir >= 6 -> writer [tr, ir-3], level 2; ir < 6 -> bottom.
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
  LastWriteTree T = buildLWT(P, 0, 0);
  EXPECT_TRUE(T.Exact);
  // Anchor order: (t, i, T, N).
  expectWriter(T, {5, 9, 10, 12}, 0, {5, 6});
  expectWriter(T, {0, 6, 10, 12}, 0, {0, 3});
  expectBottom(T, {0, 3, 10, 12});
  expectBottom(T, {7, 5, 10, 12});
  // Not covered outside the read domain.
  EXPECT_FALSE(T.lookup({11, 3, 10, 12}).Covered);
}

TEST(LastWriteTreeTest, ProducerConsumerSingleValuePerIteration) {
  // Section 2.2.2: for i: X[i] = ...; for j = i..N: Y[j] += X[j-1].
  // The read X[j-1] in iteration (i, j) reads the value written by
  // statement 0 at iteration i' = j-1 if j-1 >= i is... statement 0 at
  // iteration (i'), where the last write of X[j-1] before (i,j) is the
  // write in outer iteration i if j-1 <= ... the write X[i''] happens at
  // outer iteration i'' writing X[i'']; before read (i,j) the writes with
  // i'' <= i (same outer iteration: S0 precedes the j loop textually).
  // Value read: X[j-1] last written at i'' = j-1 when j-1 <= i, else
  // external.
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1];
array Y[N + 1];
for i = 0 to N {
  X[i] = i;
  for j = max(i, 1) to N {
    Y[j] = Y[j] + X[j - 1];
  }
}
)");
  // Read #1 of statement 1 is X[j - 1].
  LastWriteTree T = buildLWT(P, 1, 1);
  EXPECT_TRUE(T.Exact);
  // Anchor order: (i, j, N).
  expectWriter(T, {5, 6, 9}, 0, {5}); // X[5] written this outer iteration
  expectWriter(T, {5, 5, 9}, 0, {4}); // X[4] written one iteration ago
  // X[8] is only written in outer iteration 8, which has not executed yet
  // at (i, j) = (5, 9): the read sees the initial array content. This is
  // precisely why only one fresh value per outer iteration needs to move.
  expectBottom(T, {5, 9, 9});
}

TEST(LastWriteTreeTest, PrivatizationExample) {
  // Section 2.2.2 privatization: the inner read of work[j] always reads
  // the value written in the same outer iteration (loop-independent).
  Program P = parseProgramOrDie(R"(
param N;
array work[N + 1];
array out[N + 1][N + 1];
for i = 0 to N {
  for j = 0 to N {
    work[j] = i + j;
  }
  for j2 = 0 to N {
    out[i][j2] = work[j2];
  }
}
)");
  LastWriteTree T = buildLWT(P, 1, 0);
  EXPECT_TRUE(T.Exact);
  // Every read is covered with a loop-independent (level 2) writer in the
  // same outer iteration.
  for (const LWTContext &C : T.Contexts) {
    if (!C.HasWriter)
      continue;
    EXPECT_EQ(C.Level, 2u);
  }
  // Anchor order: (i, j2, N).
  expectWriter(T, {4, 7, 9}, 0, {4, 7});
  expectWriter(T, {0, 0, 9}, 0, {0, 0});
  EXPECT_GE(T.numWriterContexts(), 1u);
}

TEST(LastWriteTreeTest, LUFigure12) {
  // Figure 12: the LWT for read X[i1][i3] in statement 2 of LU: values
  // come from the X[i2][i3] update (statement 1) of iteration
  // [i1-1, i1, i3] when i1 >= 1, and from outside when i1 == 0.
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
  // Statement 1 is the update; its read #2 is X[i1][i3].
  const Statement &S2 = P.statement(1);
  ASSERT_EQ(S2.Reads.size(), 3u);
  LastWriteTree T = buildLWT(P, 1, 2);
  EXPECT_TRUE(T.Exact);
  // Anchor order: (i1, i2, i3, N).
  // i1 = 0: external values.
  expectBottom(T, {0, 1, 1, 5});
  expectBottom(T, {0, 5, 5, 5});
  // i1 >= 1: X[i1][i3] was last updated by statement 1 at [i1-1, i1, i3]
  // (the final update of row i1 happened in outer iteration i1-1).
  expectWriter(T, {1, 2, 2, 5}, 1, {0, 1, 2});
  expectWriter(T, {3, 4, 5, 5}, 1, {2, 3, 5});
}

TEST(LastWriteTreeTest, TwoWritersSameLevelResolvedByValue) {
  // Both statements write A; the later-executing instance must win.
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array B[N + 1];
for i = 0 to N {
  A[i] = 1;
  A[i] = 2;
}
for j = 0 to N {
  B[j] = A[j];
}
)");
  LastWriteTree T = buildLWT(P, 2, 0);
  EXPECT_TRUE(T.Exact);
  // Anchor order: (j, N). The second write (statement 1) always wins.
  LastWriteTree::Lookup L = T.lookup({3, 9});
  ASSERT_TRUE(L.Covered);
  ASSERT_TRUE(L.HasWriter);
  EXPECT_EQ(L.WriteStmtId, 1u);
  EXPECT_EQ(L.WriteIter, std::vector<IntT>({3}));
}

TEST(LastWriteTreeTest, OverwritePrecedingLoop) {
  // A kill between producer and consumer: only the second loop's writes
  // are visible to the reader.
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array B[N + 1];
for i = 0 to N {
  A[i] = 1;
}
for k = 2 to N {
  A[k] = 3;
}
for j = 0 to N {
  B[j] = A[j];
}
)");
  LastWriteTree T = buildLWT(P, 2, 0);
  EXPECT_TRUE(T.Exact);
  // Anchor (j, N): j >= 2 reads statement 1; j < 2 reads statement 0.
  expectWriter(T, {5, 9}, 1, {5});
  expectWriter(T, {1, 9}, 0, {1});
  expectWriter(T, {0, 9}, 0, {0});
}

TEST(LastWriteTreeTest, ArrayLastWritesForFinalization) {
  // Section 4.4.3: which write instance leaves the final value of each
  // array element.
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
for i = 0 to N {
  A[i] = 1;
}
for k = 2 to N {
  A[k] = 3;
}
)");
  LastWriteTree T = buildArrayLastWrites(P, 0);
  EXPECT_TRUE(T.Exact);
  // Anchor order: (a0, N).
  expectWriter(T, {0, 9}, 0, {0});
  expectWriter(T, {1, 9}, 0, {1});
  expectWriter(T, {2, 9}, 1, {2});
  expectWriter(T, {9, 9}, 1, {9});
}

TEST(LastWriteTreeTest, SelfDependenceAccumulator) {
  // X[0] accumulates over the loop; each read sees the previous write.
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1];
for i = 1 to N {
  X[0] = X[0] + X[i];
}
)");
  LastWriteTree T = buildLWT(P, 0, 0);
  EXPECT_TRUE(T.Exact);
  // Anchor order: (i, N).
  expectBottom(T, {1, 9});
  expectWriter(T, {2, 9}, 0, {1});
  expectWriter(T, {9, 9}, 0, {8});
}
