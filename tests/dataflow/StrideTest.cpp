//===- tests/dataflow/StrideTest.cpp --------------------------*- C++ -*-===//
//
// Strided subscripts force modulo conditions in the last-write relations
// (the paper's auxiliary variables, Section 4.4.2). The tree must either
// be exact and correct, or honestly flagged approximate — never silently
// wrong.
//
//===----------------------------------------------------------------------===//

#include "dataflow/LastWriteTree.h"
#include "frontend/Parser.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

/// Checks a tree's predictions against the instrumented interpreter on
/// every dynamic read; exact trees must match everywhere.
void validateAgainstExecution(const Program &P, const LastWriteTree &T,
                              unsigned Stmt, unsigned Read,
                              const std::map<std::string, IntT> &Params) {
  if (!T.Exact)
    return; // approximate trees only promise conservative coverage
  SeqInterpreter I(P, Params);
  unsigned Checked = 0;
  I.setReadCallback([&](unsigned StmtId, unsigned ReadIdx,
                        const std::vector<IntT> &Iter,
                        const WriteInstance *Writer) {
    if (StmtId != Stmt || ReadIdx != Read)
      return;
    std::vector<IntT> Anchor = Iter;
    for (unsigned K = Iter.size(); K < T.AnchorSpace.size(); ++K)
      Anchor.push_back(Params.at(T.AnchorSpace.name(K)));
    LastWriteTree::Lookup L = T.lookup(Anchor);
    ++Checked;
    ASSERT_TRUE(L.Covered);
    ASSERT_EQ(L.HasWriter, Writer != nullptr);
    if (Writer) {
      EXPECT_EQ(L.WriteStmtId, Writer->StmtId);
      EXPECT_EQ(L.WriteIter, Writer->Iter);
    }
  });
  I.run();
  EXPECT_GT(Checked, 0u);
}

} // namespace

TEST(StrideTest, EvenElementsOnlyWriter) {
  // A[2i] written; A[j] read: even j read the write at i = j/2, odd j
  // read initial data. The relation needs j ≡ 0 (mod 2).
  Program P = parseProgramOrDie(R"(
param N;
array A[2 * N + 1];
array B[2 * N + 1];
for i = 0 to N {
  A[2 * i] = i;
}
for j = 0 to 2 * N {
  B[j] = A[j];
}
)");
  LastWriteTree T = buildLWT(P, 1, 0);
  std::map<std::string, IntT> Params{{"N", 6}};
  if (T.Exact) {
    validateAgainstExecution(P, T, 1, 0, Params);
    // Spot checks. Anchor order: (j, N).
    LastWriteTree::Lookup L = T.lookup({8, 6});
    ASSERT_TRUE(L.Covered);
    ASSERT_TRUE(L.HasWriter);
    EXPECT_EQ(L.WriteIter, std::vector<IntT>({4}));
    L = T.lookup({7, 6});
    ASSERT_TRUE(L.Covered);
    EXPECT_FALSE(L.HasWriter);
  } else {
    SUCCEED() << "tree honestly reported approximate";
  }
}

TEST(StrideTest, Stride3WithOffset) {
  Program P = parseProgramOrDie(R"(
param N;
array A[3 * N + 2];
array B[3 * N + 2];
for i = 0 to N {
  A[3 * i + 1] = i;
}
for j = 0 to 3 * N + 1 {
  B[j] = A[j];
}
)");
  LastWriteTree T = buildLWT(P, 1, 0);
  std::map<std::string, IntT> Params{{"N", 5}};
  validateAgainstExecution(P, T, 1, 0, Params);
  if (T.Exact) {
    LastWriteTree::Lookup L = T.lookup({10, 5}); // 3*3 + 1
    ASSERT_TRUE(L.Covered);
    ASSERT_TRUE(L.HasWriter);
    EXPECT_EQ(L.WriteIter, std::vector<IntT>({3}));
    EXPECT_FALSE(T.lookup({9, 5}).HasWriter);
  }
}

TEST(StrideTest, StridedReadOfDenseWrites) {
  // Dense writes, strided reads: every read instance has a writer at
  // i = 2j (no modulo needed on the read side).
  Program P = parseProgramOrDie(R"(
param N;
array A[2 * N + 1];
array B[N + 1];
for i = 0 to 2 * N {
  A[i] = i;
}
for j = 0 to N {
  B[j] = A[2 * j];
}
)");
  LastWriteTree T = buildLWT(P, 1, 0);
  EXPECT_TRUE(T.Exact);
  validateAgainstExecution(P, T, 1, 0, {{"N", 7}});
  LastWriteTree::Lookup L = T.lookup({5, 7});
  ASSERT_TRUE(L.HasWriter);
  EXPECT_EQ(L.WriteIter, std::vector<IntT>({10}));
}

TEST(StrideTest, InterleavedWritersByParity) {
  // Two writers cover even/odd elements respectively.
  Program P = parseProgramOrDie(R"(
param N;
array A[2 * N + 2];
array B[2 * N + 2];
for i = 0 to N {
  A[2 * i] = 1;
}
for k = 0 to N {
  A[2 * k + 1] = 2;
}
for j = 0 to 2 * N + 1 {
  B[j] = A[j];
}
)");
  LastWriteTree T = buildLWT(P, 2, 0);
  std::map<std::string, IntT> Params{{"N", 5}};
  validateAgainstExecution(P, T, 2, 0, Params);
  if (T.Exact) {
    EXPECT_EQ(T.lookup({4, 5}).WriteStmtId, 0u);
    EXPECT_EQ(T.lookup({5, 5}).WriteStmtId, 1u);
  }
}
