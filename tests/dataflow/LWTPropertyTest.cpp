//===- tests/dataflow/LWTPropertyTest.cpp ---------------------*- C++ -*-===//
//
// Property test: for a corpus of affine programs, every dynamic read
// instance observed by the instrumented sequential interpreter must agree
// with the Last Write Tree's prediction — same producing statement and
// iteration, or bottom exactly when the value was the initial content.
//
//===----------------------------------------------------------------------===//

#include "dataflow/LastWriteTree.h"
#include "frontend/Parser.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

struct Case {
  const char *Name;
  const char *Source;
  std::map<std::string, IntT> Params;
};

const Case Corpus[] = {
    {"shift3",
     R"(param T; param N; array X[N + 1];
        for t = 0 to T { for i = 3 to N { X[i] = X[i - 3]; } })",
     {{"T", 3}, {"N", 11}}},
    {"stencil",
     R"(param T; param N; array X[N + 1]; array Y[N + 1];
        for t = 0 to T { for i = 1 to N - 1 {
          Y[i] = X[i - 1] + X[i] + X[i + 1]; }
          for i2 = 1 to N - 1 { X[i2] = Y[i2]; } })",
     {{"T", 2}, {"N", 9}}},
    {"lu",
     R"(param N; array X[N + 1][N + 1];
        for i1 = 0 to N { for i2 = i1 + 1 to N {
          X[i2][i1] = X[i2][i1] / X[i1][i1];
          for i3 = i1 + 1 to N {
            X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3]; } } })",
     {{"N", 6}}},
    {"privatization",
     R"(param N; array w[N + 1]; array out[N + 1][N + 1];
        for i = 0 to N { for j = 0 to N { w[j] = i + j; }
          for j2 = 0 to N { out[i][j2] = w[j2]; } })",
     {{"N", 6}}},
    {"producer_consumer",
     R"(param N; array X[N + 1]; array Y[N + 1];
        for i = 0 to N { X[i] = i;
          for j = max(i, 1) to N { Y[j] = Y[j] + X[j - 1]; } })",
     {{"N", 8}}},
    {"kill_chain",
     R"(param N; array A[N + 1]; array B[N + 1];
        for i = 0 to N { A[i] = 1; }
        for k = 2 to N { A[k] = 3; }
        for j = 0 to N { B[j] = A[j] + A[N - j]; })",
     {{"N", 9}}},
    {"triangular",
     R"(param N; array A[N + 1][N + 1];
        for i = 0 to N { for j = i to N { A[i][j] = i + j; } }
        for i2 = 0 to N { for j2 = 0 to N {
          A[i2][j2] = A[i2][j2] + 1; } })",
     {{"N", 6}}},
    {"accumulator",
     R"(param N; array X[N + 1];
        for i = 1 to N { X[0] = X[0] + X[i]; })",
     {{"N", 9}}},
};

class LWTProperty : public ::testing::TestWithParam<Case> {};

} // namespace

TEST_P(LWTProperty, MatchesInterpreterLastWrites) {
  const Case &C = GetParam();
  Program P = parseProgramOrDie(C.Source);

  // Build one LWT per (statement, read).
  std::vector<std::vector<LastWriteTree>> Trees(P.numStatements());
  for (unsigned S = 0; S != P.numStatements(); ++S)
    for (unsigned R = 0; R != P.statement(S).Reads.size(); ++R)
      Trees[S].push_back(buildLWT(P, S, R));

  SeqInterpreter I(P, C.Params);
  // Parameter values in anchor order follow each tree's AnchorSpace:
  // reader loop indices first, then params.
  unsigned Checked = 0, Mismatches = 0;
  I.setReadCallback([&](unsigned StmtId, unsigned ReadIdx,
                        const std::vector<IntT> &Iter,
                        const WriteInstance *Writer) {
    const LastWriteTree &T = Trees[StmtId][ReadIdx];
    if (!T.Exact)
      return; // approximate trees are allowed to be conservative
    std::vector<IntT> Anchor = Iter;
    for (unsigned K = Iter.size(); K < T.AnchorSpace.size(); ++K)
      Anchor.push_back(C.Params.at(T.AnchorSpace.name(K)));
    LastWriteTree::Lookup L = T.lookup(Anchor);
    ++Checked;
    if (!L.Covered) {
      ++Mismatches;
      ADD_FAILURE() << C.Name << ": S" << StmtId << " read " << ReadIdx
                    << " not covered";
      return;
    }
    if (L.HasWriter != (Writer != nullptr)) {
      ++Mismatches;
      ADD_FAILURE() << C.Name << ": S" << StmtId << " read " << ReadIdx
                    << " writer presence mismatch";
      return;
    }
    if (Writer &&
        (L.WriteStmtId != Writer->StmtId || L.WriteIter != Writer->Iter)) {
      ++Mismatches;
      ADD_FAILURE() << C.Name << ": S" << StmtId << " read " << ReadIdx
                    << " wrong producer";
    }
  });
  I.run();
  EXPECT_GT(Checked, 0u) << "no reads were checked";
  EXPECT_EQ(Mismatches, 0u);
}

TEST_P(LWTProperty, ContextsAreDisjoint) {
  const Case &C = GetParam();
  Program P = parseProgramOrDie(C.Source);
  for (unsigned S = 0; S != P.numStatements(); ++S) {
    for (unsigned R = 0; R != P.statement(S).Reads.size(); ++R) {
      LastWriteTree T = buildLWT(P, S, R);
      if (!T.Exact)
        continue;
      // Sample the read domain and check exactly one context matches.
      System Dom = P.domainOf(S);
      for (unsigned I = 0; I != Dom.space().size(); ++I) {
        if (Dom.space().kind(I) != VarKind::Param)
          continue;
        Dom.addEQ(Dom.varExpr(I).plusConst(
            -C.Params.at(Dom.space().name(I))));
      }
      unsigned Samples = 0;
      Dom.enumeratePoints(
          [&](const std::vector<IntT> &Pt) {
            if (++Samples > 120)
              return;
            unsigned Hits = 0;
            for (const LWTContext &Ctx : T.Contexts) {
              System Pinned = Ctx.Domain;
              for (unsigned I = 0; I != T.AnchorSpace.size(); ++I) {
                int J = Pinned.space().indexOf(T.AnchorSpace.name(I));
                ASSERT_GE(J, 0);
                Pinned.addEQ(Pinned.varExpr(static_cast<unsigned>(J))
                                 .plusConst(-Pt[I]));
              }
              if (Pinned.sampleIntPoint())
                ++Hits;
            }
            EXPECT_EQ(Hits, 1u)
                << C.Name << " S" << S << " read " << R << ": read "
                << "instance in " << Hits << " contexts";
          },
          200000);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LWTProperty, ::testing::ValuesIn(Corpus),
    [](const ::testing::TestParamInfo<Case> &I) { return I.param.Name; });
