//===- tests/sim/EventSimTest.cpp -----------------------------*- C++ -*-===//
//
// Differential slice for the discrete-event simulator engine
// (DESIGN.md §14): LU and the Jacobi stencil pipeline under
// SimEngine::Event must be bit-identical — array contents, cost
// totals, per-phys busy time, transport counters, recovery telemetry,
// diagnostics — to both the sequential and the threaded round-barrier
// engines, across clean, lossy, hostile, crash/checkpoint and durable
// kill/resume schedules. Also pins the integer-overflow regressions of
// the same PR: a saturating checkpoint gate and a non-wrapping
// transport retry budget.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"
#include "support/StableStore.h"

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <optional>
#include <unistd.h>

using namespace dmcc;

namespace {

Program lu() {
  return parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

Program stencil() {
  return parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
array Y[N + 1];
for t = 0 to T {
  for i = 1 to N - 1 {
    Y[i] = X[i - 1] + X[i] + X[i + 1];
  }
  for i2 = 1 to N - 1 {
    X[i2] = Y[i2];
  }
}
)");
}

CompileSpec stencilSpec(const Program &P) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 16)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 16)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 16, /*OverlapLo=*/1,
                                        /*OverlapHi=*/1));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, 16));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 16));
  Spec.FinalData.emplace(1, blockData(P, 1, 0, 16));
  return Spec;
}

SimOptions opts(IntT Procs, std::map<std::string, IntT> Params,
                bool Functional, SimEngine Engine, unsigned Threads = 1,
                FaultOptions Faults = {},
                CheckpointOptions Checkpoint = {}) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = std::move(Params);
  SO.Functional = Functional;
  SO.CollapseLoops = !Functional;
  SO.Faults = Faults;
  SO.Checkpoint = Checkpoint;
  SO.Threads = Threads;
  SO.Engine = Engine;
  return SO;
}

/// One simulation leg: the full result plus every element of array 0
/// under the final layout (nullopt where nobody holds it).
struct RunOut {
  SimResult R;
  std::vector<std::optional<double>> A0;
};

RunOut runLeg(const Program &P, const CompiledProgram &CP,
              const CompileSpec &Spec, SimOptions SO,
              const std::map<std::string, IntT> &Params) {
  Simulator Sim(P, CP, Spec, std::move(SO));
  RunOut O;
  O.R = Sim.run();
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  std::vector<IntT> Sizes;
  for (const AffineExpr &D : P.array(0).DimSizes)
    Sizes.push_back(D.evaluate(Env));
  std::vector<IntT> Idx(Sizes.size(), 0);
  bool Done = Sizes.empty();
  while (!Done) {
    O.A0.push_back(Sim.finalValue(0, Idx));
    for (unsigned K = Idx.size(); K-- > 0;) {
      if (++Idx[K] < Sizes[K])
        break;
      Idx[K] = 0;
      if (K == 0)
        Done = true;
    }
  }
  return O;
}

/// Bit-identical comparison of two legs: exact double equality on every
/// clock and cost, exact integer equality on every counter, identical
/// diagnostics and array contents.
void expectIdentical(const RunOut &A, const RunOut &B,
                     const std::string &Tag) {
  EXPECT_EQ(A.R.Ok, B.R.Ok) << Tag;
  EXPECT_EQ(A.R.Error, B.R.Error) << Tag;
  EXPECT_EQ(A.R.MakespanSeconds, B.R.MakespanSeconds) << Tag;
  EXPECT_EQ(A.R.Messages, B.R.Messages) << Tag;
  EXPECT_EQ(A.R.IntraMessages, B.R.IntraMessages) << Tag;
  EXPECT_EQ(A.R.Words, B.R.Words) << Tag;
  EXPECT_EQ(A.R.Flops, B.R.Flops) << Tag;
  EXPECT_EQ(A.R.ComputeIterations, B.R.ComputeIterations) << Tag;
  EXPECT_EQ(A.R.TotalEvents, B.R.TotalEvents) << Tag;
  EXPECT_EQ(A.R.Retransmissions, B.R.Retransmissions) << Tag;
  EXPECT_EQ(A.R.DroppedPackets, B.R.DroppedPackets) << Tag;
  EXPECT_EQ(A.R.DuplicatesSuppressed, B.R.DuplicatesSuppressed) << Tag;
  EXPECT_EQ(A.R.AcksSent, B.R.AcksSent) << Tag;
  EXPECT_EQ(A.R.CorruptedPackets, B.R.CorruptedPackets) << Tag;
  EXPECT_EQ(A.R.NacksSent, B.R.NacksSent) << Tag;
  EXPECT_EQ(A.R.PartitionDrops, B.R.PartitionDrops) << Tag;
  EXPECT_EQ(A.R.SlowLinkMessages, B.R.SlowLinkMessages) << Tag;
  ASSERT_EQ(A.R.PhysBusy.size(), B.R.PhysBusy.size()) << Tag;
  for (unsigned I = 0; I != A.R.PhysBusy.size(); ++I)
    EXPECT_EQ(A.R.PhysBusy[I], B.R.PhysBusy[I]) << Tag << " phys " << I;
  EXPECT_EQ(A.R.Recovery.CheckpointsTaken, B.R.Recovery.CheckpointsTaken)
      << Tag;
  EXPECT_EQ(A.R.Recovery.CheckpointBytes, B.R.Recovery.CheckpointBytes)
      << Tag;
  EXPECT_EQ(A.R.Recovery.Crashes, B.R.Recovery.Crashes) << Tag;
  EXPECT_EQ(A.R.Recovery.Rollbacks, B.R.Recovery.Rollbacks) << Tag;
  EXPECT_EQ(A.R.Recovery.ReplayedSteps, B.R.Recovery.ReplayedSteps)
      << Tag;
  EXPECT_EQ(A.R.Recovery.ReplayedMessages, B.R.Recovery.ReplayedMessages)
      << Tag;
  EXPECT_EQ(A.R.Recovery.ComputeSeconds, B.R.Recovery.ComputeSeconds)
      << Tag;
  EXPECT_EQ(A.R.Recovery.ProtocolSeconds, B.R.Recovery.ProtocolSeconds)
      << Tag;
  EXPECT_EQ(A.R.Recovery.CheckpointSeconds,
            B.R.Recovery.CheckpointSeconds)
      << Tag;
  EXPECT_EQ(A.R.Recovery.RecoverySeconds, B.R.Recovery.RecoverySeconds)
      << Tag;
  ASSERT_EQ(A.A0.size(), B.A0.size()) << Tag;
  unsigned Bad = 0;
  for (unsigned I = 0; I != A.A0.size(); ++I)
    if (A.A0[I] != B.A0[I])
      ++Bad;
  EXPECT_EQ(Bad, 0u) << Tag << ": array contents diverge";
}

/// Runs the same schedule under the sequential round engine, the event
/// engine, and (optionally) the threaded engine, and requires all legs
/// bit-identical.
void expectEnginesAgree(const Program &P, const CompiledProgram &CP,
                        const CompileSpec &Spec, IntT Procs,
                        const std::map<std::string, IntT> &Pv,
                        bool Functional, FaultOptions F,
                        CheckpointOptions CK, const std::string &Tag,
                        bool AlsoThreaded = true) {
  RunOut Seq = runLeg(
      P, CP, Spec,
      opts(Procs, Pv, Functional, SimEngine::Rounds, 1, F, CK), Pv);
  RunOut Evt = runLeg(
      P, CP, Spec,
      opts(Procs, Pv, Functional, SimEngine::Event, 1, F, CK), Pv);
  expectIdentical(Seq, Evt, Tag + " event-vs-seq");
  if (AlsoThreaded) {
    RunOut Thr = runLeg(
        P, CP, Spec,
        opts(Procs, Pv, Functional, SimEngine::Rounds, 2, F, CK), Pv);
    expectIdentical(Evt, Thr, Tag + " event-vs-threaded");
  }
}

/// A scratch directory deleted (recursively, one level) on destruction.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/dmcc-event-XXXXXX";
    Path = mkdtemp(Buf);
    EXPECT_FALSE(Path.empty());
  }
  ~TempDir() {
    for (const std::string &F : stable::listFiles(Path, "", ""))
      ::unlink((Path + "/" + F).c_str());
    ::rmdir(Path.c_str());
  }
};

std::vector<uint8_t> slurp(const std::string &Path) {
  std::vector<uint8_t> Out;
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Out;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.insert(Out.end(), Buf, Buf + N);
  std::fclose(F);
  return Out;
}

void spit(const std::string &Path, const std::vector<uint8_t> &Data) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(std::fwrite(Data.data(), 1, Data.size(), F), Data.size());
  std::fclose(F);
}

/// Copies the first \p Keep checkpoint files of \p From into \p To —
/// the on-disk state a SIGKILL mid-run would have left behind.
unsigned copyPrefix(const std::string &From, const std::string &To,
                    unsigned Keep) {
  std::vector<std::string> Files =
      stable::listFiles(From, "ckpt-", ".dmc");
  unsigned Copied = 0;
  for (const std::string &F : Files) {
    if (Copied == Keep)
      break;
    spit(To + "/" + F, slurp(From + "/" + F));
    ++Copied;
  }
  return Copied;
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine differentials
//===----------------------------------------------------------------------===//

TEST(EventSim, CleanFunctionalLUMatchesAllEngines) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 48}};
  // Anchor the sequential leg against the gold interpreter first, so
  // cross-engine equality below implies the event engine is correct.
  RunOut Base =
      runLeg(P, CP, Spec, opts(8, Pv, true, SimEngine::Rounds), Pv);
  ASSERT_TRUE(Base.R.Ok) << Base.R.Error;
  SeqInterpreter Gold(P, Pv);
  Gold.run();
  unsigned Bad = 0, K = 0;
  for (IntT I = 0; I <= 48; ++I)
    for (IntT J = 0; J <= 48; ++J, ++K)
      if (!Base.A0[K] || *Base.A0[K] != Gold.arrayValue(0, {I, J}))
        ++Bad;
  ASSERT_EQ(Bad, 0u);
  expectEnginesAgree(P, CP, Spec, 8, Pv, true, {}, {}, "lu-clean");
}

TEST(EventSim, CleanFunctionalStencilMatchesAllEngines) {
  Program P = stencil();
  CompileSpec Spec = stencilSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 5}, {"N", 63}};
  expectEnginesAgree(P, CP, Spec, 4, Pv, true, {}, {}, "stencil-clean");
}

TEST(EventSim, PerformanceModeCostsMatchAllEngines) {
  // Performance mode collapses loops into closed-form costs; the event
  // engine must reproduce the clocks and counters exactly.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 96}};
  expectEnginesAgree(P, CP, Spec, 8, Pv, false, {}, {}, "lu-perf");
}

TEST(EventSim, LossyTransportMatchesAcrossSeeds) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  for (uint64_t Seed : {1u, 2u, 3u}) {
    FaultOptions F;
    F.Seed = Seed;
    F.DropRate = 0.05;
    F.DupRate = 0.05;
    F.MaxDelaySeconds = 2e-4;
    F.MaxSlowdown = 1.5;
    RunOut Base = runLeg(
        P, CP, Spec, opts(4, Pv, true, SimEngine::Rounds, 1, F), Pv);
    ASSERT_TRUE(Base.R.Ok) << "seed " << Seed << ": " << Base.R.Error;
    ASSERT_GT(Base.R.Retransmissions + Base.R.DuplicatesSuppressed, 0u)
        << "seed " << Seed << " exercised no transport machinery";
    expectEnginesAgree(P, CP, Spec, 4, Pv, true, F, {},
                       "lu-fault seed=" + std::to_string(Seed));
  }
}

TEST(EventSim, HostileModesMatchAllEngines) {
  // Corruption / transient-partition / straggler-link decisions are a
  // pure function of identity, never of scheduler interleaving — so the
  // event schedule must reproduce them bit-for-bit.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  for (uint64_t Seed : {4u, 5u}) {
    FaultOptions F;
    F.Seed = Seed;
    F.CorruptRate = 0.08;
    F.PartitionRate = 0.04;
    F.PartitionMaxOutage = 3;
    F.SlowLinkRate = 0.3;
    F.SlowLinkMaxFactor = 3.0;
    F.DropRate = 0.03;
    RunOut Base = runLeg(
        P, CP, Spec, opts(4, Pv, true, SimEngine::Rounds, 1, F), Pv);
    ASSERT_TRUE(Base.R.Ok) << "seed " << Seed << ": " << Base.R.Error;
    ASSERT_GT(Base.R.CorruptedPackets, 0u) << "seed " << Seed;
    ASSERT_GT(Base.R.PartitionDrops, 0u) << "seed " << Seed;
    ASSERT_GT(Base.R.SlowLinkMessages, 0u) << "seed " << Seed;
    expectEnginesAgree(P, CP, Spec, 4, Pv, true, F, {},
                       "lu-hostile seed=" + std::to_string(Seed));
  }
}

TEST(EventSim, CrashRecoveryMatchesAcrossSeeds) {
  // Crash + coordinated checkpoint/rollback: the event engine's
  // amortized checkpoint gate must cut rounds at exactly the sequential
  // statement, so the full recovery telemetry agrees.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 64}};
  for (uint64_t CrashSeed : {11u, 22u}) {
    FaultOptions F;
    F.CrashRate = 4e-5;
    F.CrashSeed = CrashSeed;
    CheckpointOptions CK;
    CK.IntervalSteps = 40000;
    RunOut Base = runLeg(
        P, CP, Spec, opts(4, Pv, true, SimEngine::Rounds, 1, F, CK),
        Pv);
    ASSERT_TRUE(Base.R.Ok) << "seed " << CrashSeed << ": "
                           << Base.R.Error;
    ASSERT_GE(Base.R.Recovery.Crashes, 1u) << "seed " << CrashSeed;
    ASSERT_GE(Base.R.Recovery.Rollbacks, 1u) << "seed " << CrashSeed;
    expectEnginesAgree(P, CP, Spec, 4, Pv, true, F, CK,
                       "lu-crash seed=" + std::to_string(CrashSeed));
  }
}

TEST(EventSim, UnrecoverableCrashDiagnosticsMatchAllEngines) {
  // No checkpointing: the first crash is terminal and the run ends in a
  // structured diagnostic. The rendered report (dead processors, stuck
  // receivers, buffered-ahead counts) must be identical.
  Program P = stencil();
  CompileSpec Spec = stencilSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 5}, {"N", 63}};
  FaultOptions F;
  F.CrashRate = 2e-3;
  F.CrashSeed = 5;
  RunOut Base = runLeg(
      P, CP, Spec, opts(4, Pv, true, SimEngine::Rounds, 1, F), Pv);
  ASSERT_FALSE(Base.R.Ok);
  ASSERT_GE(Base.R.Recovery.Crashes, 1u);
  expectEnginesAgree(P, CP, Spec, 4, Pv, true, F, {}, "stencil-dead");
}

//===----------------------------------------------------------------------===//
// Durable kill/resume under the event engine
//===----------------------------------------------------------------------===//

TEST(EventSim, DurableKillResumeIsBitIdentical) {
  // Run the schedule durably to completion under the event engine, keep
  // only a prefix of the images (the kill), resume — and require the
  // resumed run bit-identical both to the uninterrupted event run and
  // to the uninterrupted sequential run.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 24}};
  FaultOptions F;
  F.Seed = 42;
  F.DropRate = 0.05;
  F.CrashRate = 1e-3;
  F.CrashSeed = 7;
  CheckpointOptions CK;
  CK.IntervalSteps = 100;

  RunOut Seq = runLeg(
      P, CP, Spec, opts(4, Pv, true, SimEngine::Rounds, 1, F, CK), Pv);
  ASSERT_TRUE(Seq.R.Ok) << Seq.R.Error;

  TempDir Ref, Cut;
  CK.DurableDir = Ref.Path;
  RunOut Full = runLeg(
      P, CP, Spec, opts(4, Pv, true, SimEngine::Event, 1, F, CK), Pv);
  ASSERT_TRUE(Full.R.Ok) << Full.R.Error;
  expectIdentical(Seq, Full, "event-durable vs sequential");

  unsigned Files = stable::listFiles(Ref.Path, "ckpt-", ".dmc").size();
  ASSERT_GE(Files, 4u) << "schedule too short to cut";
  ASSERT_EQ(copyPrefix(Ref.Path, Cut.Path, Files / 2), Files / 2);

  CK.DurableDir = Cut.Path;
  CK.Resume = true;
  Simulator Res(P, CP, Spec,
                opts(4, Pv, true, SimEngine::Event, 1, F, CK));
  RunOut RRes;
  RRes.R = Res.run();
  ASSERT_TRUE(RRes.R.Ok) << RRes.R.Error;
  const DurableResumeInfo &RI = Res.resumeInfo();
  EXPECT_TRUE(RI.Attempted);
  EXPECT_TRUE(RI.Resumed);
  EXPECT_GT(RI.ResumedAtEvents, 0u);
  EXPECT_EQ(RI.CorruptSkipped, 0u);
  RRes.A0 = Full.A0; // compare results below; arrays checked elementwise
  std::vector<IntT> Idx = {0, 0};
  for (IntT I = 0; I <= 24; ++I)
    for (IntT J = 0; J <= 24; ++J) {
      Idx[0] = I;
      Idx[1] = J;
      EXPECT_EQ(Full.A0[static_cast<size_t>(I) * 25 + J],
                Res.finalValue(0, Idx))
          << "(" << I << "," << J << ")";
    }
  expectIdentical(Full, RRes, "event kill/resume");
}

//===----------------------------------------------------------------------===//
// Integer-overflow regressions (satellite fixes of the same PR)
//===----------------------------------------------------------------------===//

TEST(EventSim, HugeCheckpointIntervalSaturatesInsteadOfWrapping) {
  // Regression: `Events + IntervalSteps` used to wrap for a near-2^64
  // interval, making every round look checkpoint-imminent — the run
  // livelocked taking checkpoints forever. The saturating gate must
  // behave exactly like "checkpointing armed but never due".
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 24}};
  CheckpointOptions CK;
  CK.IntervalSteps = UINT64_MAX;
  for (SimEngine Eng : {SimEngine::Rounds, SimEngine::Event}) {
    RunOut Leg =
        runLeg(P, CP, Spec, opts(4, Pv, true, Eng, 1, {}, CK), Pv);
    ASSERT_TRUE(Leg.R.Ok) << Leg.R.Error;
    // Only the initial checkpoint is taken; the interval never elapses.
    EXPECT_EQ(Leg.R.Recovery.CheckpointsTaken, 1u);
    EXPECT_EQ(Leg.R.Recovery.Rollbacks, 0u);
  }
}

TEST(EventSim, MaxRetriesUintMaxDoesNotWrapTheAttemptBudget) {
  // Regression: `MaxRetries + 1` wrapped to 0 at UINT_MAX, so the
  // attempt loop never ran — packets silently vanished and the
  // retransmission counter underflowed (Made - 1 at Made == 0). An
  // unbounded budget must behave identically to a budget large enough
  // for the schedule.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  FaultOptions F;
  F.Seed = 2;
  F.DropRate = 0.1;
  F.MaxRetries = 8;
  RunOut Bounded = runLeg(
      P, CP, Spec, opts(4, Pv, true, SimEngine::Rounds, 1, F), Pv);
  ASSERT_TRUE(Bounded.R.Ok) << Bounded.R.Error;
  ASSERT_GT(Bounded.R.Retransmissions, 0u);
  EXPECT_LT(Bounded.R.Retransmissions, 1u << 20)
      << "retransmission counter wrapped";
  F.MaxRetries = UINT_MAX;
  for (SimEngine Eng : {SimEngine::Rounds, SimEngine::Event}) {
    RunOut Unbounded =
        runLeg(P, CP, Spec, opts(4, Pv, true, Eng, 1, F), Pv);
    expectIdentical(Bounded, Unbounded, "max-retries=UINT_MAX");
  }
}
