//===- tests/sim/SimulatorTest.cpp ----------------------------*- C++ -*-===//
//
// Machine-simulator behaviours beyond the end-to-end runs: deadlock
// detection, cost-model knobs, intra-physical folding, virtual-grid
// sizing, and failure injection.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>
#include <optional>

using namespace dmcc;

namespace {

Program shift() {
  return parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
}

CompileSpec shiftSpec(const Program &P, IntT Block) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, Block)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, Block));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, Block));
  return Spec;
}

SimOptions opts(IntT Procs, std::map<std::string, IntT> Params,
                bool Functional = false) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = std::move(Params);
  SO.Functional = Functional;
  SO.CollapseLoops = !Functional;
  return SO;
}

} // namespace

TEST(SimulatorTest, VirtualGridMatchesDecomposition) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  Simulator Sim(P, CP, Spec, opts(2, {{"T", 2}, {"N", 63}}));
  // Elements 0..63 in blocks of 8: virtual processors 0..7.
  EXPECT_EQ(Sim.virtGridLo()[0], 0);
  EXPECT_EQ(Sim.virtGridHi()[0], 7);
}

TEST(SimulatorTest, DeadlockIsDetectedNotHung) {
  // Sabotage a compiled program: make one receive wait for a message
  // that is never sent by pointing its peer at a non-existent sender.
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  bool Broke = false;
  std::function<void(std::vector<SpmdStmt> &)> Break =
      [&](std::vector<SpmdStmt> &Stmts) {
        for (SpmdStmt &S : Stmts) {
          if (S.K == SpmdStmt::Kind::Recv) {
            for (AffineExpr &E : S.Peer)
              E = E.plusConst(1000); // nobody sends from there
            Broke = true;
          }
          Break(S.Body);
        }
      };
  Break(CP.Spmd.Top);
  ASSERT_TRUE(Broke);
  Simulator Sim(P, CP, Spec, opts(2, {{"T", 2}, {"N", 63}}));
  SimResult R = Sim.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("deadlock"), std::string::npos) << R.Error;
}

TEST(SimulatorTest, UnconsumedMessagesAreReported) {
  // Dual sabotage: drop a receive entirely; its message stays queued.
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  bool Broke = false;
  std::function<void(std::vector<SpmdStmt> &)> Break =
      [&](std::vector<SpmdStmt> &Stmts) {
        for (unsigned I = 0; I < Stmts.size();) {
          if (Stmts[I].K == SpmdStmt::Kind::Recv) {
            Stmts.erase(Stmts.begin() + I);
            Broke = true;
            continue;
          }
          Break(Stmts[I].Body);
          ++I;
        }
      };
  Break(CP.Spmd.Top);
  ASSERT_TRUE(Broke);
  Simulator Sim(P, CP, Spec, opts(2, {{"T", 2}, {"N", 63}}));
  SimResult R = Sim.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unconsumed"), std::string::npos) << R.Error;
}

TEST(SimulatorTest, SingleProcessorHasNoNetworkTraffic) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  Simulator Sim(P, CP, Spec, opts(1, {{"T", 2}, {"N", 63}}));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Messages, 0u);
  EXPECT_EQ(R.Words, 0u);
  EXPECT_GT(R.IntraMessages, 0u); // folded messages still delivered
}

TEST(SimulatorTest, IntraPhysicalChargingToggle) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  SimOptions Free = opts(1, {{"T", 2}, {"N", 63}});
  SimOptions Charged = Free;
  Charged.FreeIntraPhysical = false;
  SimResult RF = Simulator(P, CP, Spec, Free).run();
  SimResult RC = Simulator(P, CP, Spec, Charged).run();
  ASSERT_TRUE(RF.Ok && RC.Ok);
  EXPECT_EQ(RF.Messages, 0u);
  EXPECT_GT(RC.Messages, 0u); // same transfers, now billed
  EXPECT_GT(RC.MakespanSeconds, RF.MakespanSeconds);
}

TEST(SimulatorTest, CostModelScalesMakespan) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  SimOptions Slow = opts(4, {{"T", 8}, {"N", 255}});
  SimOptions Fast = Slow;
  Fast.Cost.FlopTime = Slow.Cost.FlopTime / 10;
  Fast.Cost.MsgLatency = Slow.Cost.MsgLatency / 10;
  Fast.Cost.SendPerWord = Slow.Cost.SendPerWord / 10;
  Fast.Cost.RecvPerWord = Slow.Cost.RecvPerWord / 10;
  Fast.Cost.WireTimePerWord = Slow.Cost.WireTimePerWord / 10;
  Fast.Cost.IterOverhead = Slow.Cost.IterOverhead / 10;
  SimResult RS = Simulator(P, CP, Spec, Slow).run();
  SimResult RF = Simulator(P, CP, Spec, Fast).run();
  ASSERT_TRUE(RS.Ok && RF.Ok);
  EXPECT_NEAR(RS.MakespanSeconds / RF.MakespanSeconds, 10.0, 0.5);
  // Counters are cost-model independent.
  EXPECT_EQ(RS.Messages, RF.Messages);
  EXPECT_EQ(RS.Words, RF.Words);
  EXPECT_EQ(RS.Flops, RF.Flops);
}

TEST(SimulatorTest, PerfAndFunctionalCountersAgreeOnLargerRun) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 16);
  CompiledProgram CP = compile(P, Spec);
  SimResult RF =
      Simulator(P, CP, Spec, opts(4, {{"T", 5}, {"N", 127}}, true)).run();
  SimResult RP =
      Simulator(P, CP, Spec, opts(4, {{"T", 5}, {"N", 127}}, false)).run();
  ASSERT_TRUE(RF.Ok && RP.Ok);
  EXPECT_EQ(RF.Messages, RP.Messages);
  EXPECT_EQ(RF.Words, RP.Words);
  EXPECT_EQ(RF.ComputeIterations, RP.ComputeIterations);
}

TEST(SimulatorTest, FoldingBoundarySingleProcessorMatchesGold) {
  // P = 1 folding boundary: pi(v) = v mod 1 puts every virtual proc on
  // phys 0, so the whole schedule flows through the intra-physical
  // queues. The folded functional run must still match the sequential
  // interpreter exactly.
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 2}, {"N", 63}};
  Simulator Sim(P, CP, Spec, opts(1, Pv, true));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  SeqInterpreter Gold(P, Pv);
  Gold.run();
  for (IntT I = 0; I <= 63; ++I) {
    std::optional<double> V = Sim.finalValue(0, {I});
    ASSERT_TRUE(V.has_value()) << "X[" << I << "] unowned";
    EXPECT_EQ(*V, Gold.arrayValue(0, {I})) << "X[" << I << "]";
  }
}

TEST(SimulatorTest, FoldingBoundaryMoreProcessorsThanVirtual) {
  // P > numVirtual boundary: 37 physical processors for 8 virtual ones.
  // pi(v) = v mod 37 is injective here, so the run must behave exactly
  // like the saturated P = 8 machine plus 29 idle processors — same
  // traffic, same correct answers, zero busy time on the idle ranks.
  // (This is the regime where the virtual->physical index arithmetic
  // used to be most at risk: phys indices beyond the virtual extent.)
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 2}, {"N", 63}};

  Simulator Wide(P, CP, Spec, opts(37, Pv, true));
  SimResult RW = Wide.run();
  ASSERT_TRUE(RW.Ok) << RW.Error;
  SimResult R8 = Simulator(P, CP, Spec, opts(8, Pv, true)).run();
  ASSERT_TRUE(R8.Ok) << R8.Error;

  EXPECT_EQ(RW.Messages, R8.Messages);
  EXPECT_EQ(RW.Words, R8.Words);
  EXPECT_EQ(RW.ComputeIterations, R8.ComputeIterations);
  EXPECT_EQ(RW.IntraMessages, 0u) << "injective folding leaves nothing "
                                     "intra-physical";
  ASSERT_EQ(RW.PhysBusy.size(), 37u);
  for (unsigned I = 8; I < 37; ++I)
    EXPECT_EQ(RW.PhysBusy[I], 0.0) << "idle phys " << I;

  SeqInterpreter Gold(P, Pv);
  Gold.run();
  for (IntT I = 0; I <= 63; ++I) {
    std::optional<double> V = Wide.finalValue(0, {I});
    ASSERT_TRUE(V.has_value()) << "X[" << I << "] unowned";
    EXPECT_EQ(*V, Gold.arrayValue(0, {I})) << "X[" << I << "]";
  }

  // Perf-mode cost accumulation survives the same boundary.
  SimResult RP = Simulator(P, CP, Spec, opts(37, Pv, false)).run();
  ASSERT_TRUE(RP.Ok) << RP.Error;
  EXPECT_EQ(RP.Messages, RW.Messages);
  EXPECT_EQ(RP.Words, RW.Words);
}

TEST(SimulatorTest, BusyTimeNeverExceedsMakespan) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  SimResult R =
      Simulator(P, CP, Spec, opts(4, {{"T", 6}, {"N", 255}})).run();
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.PhysBusy.size(), 4u);
  for (double B : R.PhysBusy) {
    EXPECT_GE(B, 0.0);
    EXPECT_LE(B, R.MakespanSeconds * (1 + 1e-9));
  }
}
