//===- tests/sim/ThreadedSimTest.cpp --------------------------*- C++ -*-===//
//
// Differential slice for the threaded simulator engine (DESIGN.md §10):
// LU and the Jacobi stencil pipeline at --sim-threads in {1, 2, 8},
// across clean, lossy-transport and crash/checkpoint schedules. Every
// observable of the SimResult — array contents, cost totals, per-phys
// busy time, transport counters, recovery telemetry, diagnostics — must
// be bit-identical to the sequential engine.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>
#include <optional>

using namespace dmcc;

namespace {

Program lu() {
  return parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

Program stencil() {
  return parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
array Y[N + 1];
for t = 0 to T {
  for i = 1 to N - 1 {
    Y[i] = X[i - 1] + X[i] + X[i + 1];
  }
  for i2 = 1 to N - 1 {
    X[i2] = Y[i2];
  }
}
)");
}

CompileSpec stencilSpec(const Program &P) {
  // The Section 2.2.1 overlapped-border layout from the stencil
  // pipeline example: replicated borders, produced values cross later.
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 16)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 16)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 16, /*OverlapLo=*/1,
                                        /*OverlapHi=*/1));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, 16));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 16));
  Spec.FinalData.emplace(1, blockData(P, 1, 0, 16));
  return Spec;
}

SimOptions opts(IntT Procs, std::map<std::string, IntT> Params,
                bool Functional, unsigned Threads,
                FaultOptions Faults = {},
                CheckpointOptions Checkpoint = {}) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = std::move(Params);
  SO.Functional = Functional;
  SO.CollapseLoops = !Functional;
  SO.Faults = Faults;
  SO.Checkpoint = Checkpoint;
  SO.Threads = Threads;
  return SO;
}

/// One simulation leg: the full result plus every element of array 0
/// under the final layout (nullopt where nobody holds it).
struct RunOut {
  SimResult R;
  std::vector<std::optional<double>> A0;
};

RunOut runLeg(const Program &P, const CompiledProgram &CP,
              const CompileSpec &Spec, SimOptions SO,
              const std::map<std::string, IntT> &Params) {
  Simulator Sim(P, CP, Spec, std::move(SO));
  RunOut O;
  O.R = Sim.run();
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  std::vector<IntT> Sizes;
  for (const AffineExpr &D : P.array(0).DimSizes)
    Sizes.push_back(D.evaluate(Env));
  std::vector<IntT> Idx(Sizes.size(), 0);
  bool Done = Sizes.empty();
  while (!Done) {
    O.A0.push_back(Sim.finalValue(0, Idx));
    for (unsigned K = Idx.size(); K-- > 0;) {
      if (++Idx[K] < Sizes[K])
        break;
      Idx[K] = 0;
      if (K == 0)
        Done = true;
    }
  }
  return O;
}

/// Bit-identical comparison of two legs: exact double equality on every
/// clock and cost, exact integer equality on every counter, identical
/// diagnostics and array contents.
void expectIdentical(const RunOut &A, const RunOut &B,
                     const std::string &Tag) {
  EXPECT_EQ(A.R.Ok, B.R.Ok) << Tag;
  EXPECT_EQ(A.R.Error, B.R.Error) << Tag;
  EXPECT_EQ(A.R.MakespanSeconds, B.R.MakespanSeconds) << Tag;
  EXPECT_EQ(A.R.Messages, B.R.Messages) << Tag;
  EXPECT_EQ(A.R.IntraMessages, B.R.IntraMessages) << Tag;
  EXPECT_EQ(A.R.Words, B.R.Words) << Tag;
  EXPECT_EQ(A.R.Flops, B.R.Flops) << Tag;
  EXPECT_EQ(A.R.ComputeIterations, B.R.ComputeIterations) << Tag;
  EXPECT_EQ(A.R.TotalEvents, B.R.TotalEvents) << Tag;
  EXPECT_EQ(A.R.Retransmissions, B.R.Retransmissions) << Tag;
  EXPECT_EQ(A.R.DroppedPackets, B.R.DroppedPackets) << Tag;
  EXPECT_EQ(A.R.DuplicatesSuppressed, B.R.DuplicatesSuppressed) << Tag;
  EXPECT_EQ(A.R.AcksSent, B.R.AcksSent) << Tag;
  EXPECT_EQ(A.R.CorruptedPackets, B.R.CorruptedPackets) << Tag;
  EXPECT_EQ(A.R.NacksSent, B.R.NacksSent) << Tag;
  EXPECT_EQ(A.R.PartitionDrops, B.R.PartitionDrops) << Tag;
  EXPECT_EQ(A.R.SlowLinkMessages, B.R.SlowLinkMessages) << Tag;
  ASSERT_EQ(A.R.PhysBusy.size(), B.R.PhysBusy.size()) << Tag;
  for (unsigned I = 0; I != A.R.PhysBusy.size(); ++I)
    EXPECT_EQ(A.R.PhysBusy[I], B.R.PhysBusy[I]) << Tag << " phys " << I;
  EXPECT_EQ(A.R.Recovery.CheckpointsTaken, B.R.Recovery.CheckpointsTaken)
      << Tag;
  EXPECT_EQ(A.R.Recovery.CheckpointBytes, B.R.Recovery.CheckpointBytes)
      << Tag;
  EXPECT_EQ(A.R.Recovery.Crashes, B.R.Recovery.Crashes) << Tag;
  EXPECT_EQ(A.R.Recovery.Rollbacks, B.R.Recovery.Rollbacks) << Tag;
  EXPECT_EQ(A.R.Recovery.ReplayedSteps, B.R.Recovery.ReplayedSteps)
      << Tag;
  EXPECT_EQ(A.R.Recovery.ReplayedMessages, B.R.Recovery.ReplayedMessages)
      << Tag;
  EXPECT_EQ(A.R.Recovery.ComputeSeconds, B.R.Recovery.ComputeSeconds)
      << Tag;
  EXPECT_EQ(A.R.Recovery.ProtocolSeconds, B.R.Recovery.ProtocolSeconds)
      << Tag;
  EXPECT_EQ(A.R.Recovery.CheckpointSeconds,
            B.R.Recovery.CheckpointSeconds)
      << Tag;
  EXPECT_EQ(A.R.Recovery.RecoverySeconds, B.R.Recovery.RecoverySeconds)
      << Tag;
  ASSERT_EQ(A.A0.size(), B.A0.size()) << Tag;
  unsigned Bad = 0;
  for (unsigned I = 0; I != A.A0.size(); ++I)
    if (A.A0[I] != B.A0[I])
      ++Bad;
  EXPECT_EQ(Bad, 0u) << Tag << ": array contents diverge";
}

} // namespace

TEST(ThreadedSim, CleanFunctionalLUMatchesAcrossThreadCounts) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 48}};
  RunOut Base = runLeg(P, CP, Spec, opts(8, Pv, true, 1), Pv);
  ASSERT_TRUE(Base.R.Ok) << Base.R.Error;
  // The sequential leg itself is gold-verified, so cross-engine
  // equality below implies every threaded leg is correct too.
  SeqInterpreter Gold(P, Pv);
  Gold.run();
  unsigned Bad = 0, K = 0;
  for (IntT I = 0; I <= 48; ++I)
    for (IntT J = 0; J <= 48; ++J, ++K)
      if (!Base.A0[K] || *Base.A0[K] != Gold.arrayValue(0, {I, J}))
        ++Bad;
  ASSERT_EQ(Bad, 0u);
  for (unsigned T : {2u, 8u}) {
    RunOut Leg = runLeg(P, CP, Spec, opts(8, Pv, true, T), Pv);
    expectIdentical(Base, Leg, "lu threads=" + std::to_string(T));
  }
}

TEST(ThreadedSim, CleanFunctionalStencilMatchesAcrossThreadCounts) {
  Program P = stencil();
  CompileSpec Spec = stencilSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 5}, {"N", 63}};
  RunOut Base = runLeg(P, CP, Spec, opts(4, Pv, true, 1), Pv);
  ASSERT_TRUE(Base.R.Ok) << Base.R.Error;
  for (unsigned T : {2u, 8u}) { // 8 clamps to the 4 physical processors
    RunOut Leg = runLeg(P, CP, Spec, opts(4, Pv, true, T), Pv);
    expectIdentical(Base, Leg, "stencil threads=" + std::to_string(T));
  }
}

TEST(ThreadedSim, PerformanceModeCostsMatchAcrossThreadCounts) {
  // Performance mode collapses loops into closed-form costs; the
  // threaded engine must reproduce the clocks and counters exactly.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 96}};
  RunOut Base = runLeg(P, CP, Spec, opts(8, Pv, false, 1), Pv);
  ASSERT_TRUE(Base.R.Ok) << Base.R.Error;
  for (unsigned T : {2u, 8u}) {
    RunOut Leg = runLeg(P, CP, Spec, opts(8, Pv, false, T), Pv);
    expectIdentical(Base, Leg, "lu-perf threads=" + std::to_string(T));
  }
}

TEST(ThreadedSim, LossyTransportMatchesAcrossThreadCountsAndSeeds) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  for (uint64_t Seed : {1u, 2u, 3u}) {
    FaultOptions F;
    F.Seed = Seed;
    F.DropRate = 0.05;
    F.DupRate = 0.05;
    F.MaxDelaySeconds = 2e-4;
    F.MaxSlowdown = 1.5; // exercise the per-processor slow factors too
    RunOut Base = runLeg(P, CP, Spec, opts(4, Pv, true, 1, F), Pv);
    ASSERT_TRUE(Base.R.Ok) << "seed " << Seed << ": " << Base.R.Error;
    ASSERT_GT(Base.R.Retransmissions + Base.R.DuplicatesSuppressed, 0u)
        << "seed " << Seed << " exercised no transport machinery";
    for (unsigned T : {2u, 8u}) {
      RunOut Leg = runLeg(P, CP, Spec, opts(4, Pv, true, T, F), Pv);
      expectIdentical(Base, Leg,
                      "lu-fault seed=" + std::to_string(Seed) +
                          " threads=" + std::to_string(T));
    }
  }
}

TEST(ThreadedSim, LossyTransportStencilMatchesAcrossThreadCounts) {
  Program P = stencil();
  CompileSpec Spec = stencilSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 5}, {"N", 63}};
  FaultOptions F;
  F.Seed = 9;
  F.DropRate = 0.08;
  F.DupRate = 0.04;
  F.MaxDelaySeconds = 1e-4;
  RunOut Base = runLeg(P, CP, Spec, opts(4, Pv, true, 1, F), Pv);
  ASSERT_TRUE(Base.R.Ok) << Base.R.Error;
  for (unsigned T : {2u, 8u}) {
    RunOut Leg = runLeg(P, CP, Spec, opts(4, Pv, true, T, F), Pv);
    expectIdentical(Base, Leg,
                    "stencil-fault threads=" + std::to_string(T));
  }
}

TEST(ThreadedSim, HostileModesMatchAcrossThreadCountsAndSeeds) {
  // The corruption / transient-partition / straggler-link modes must be
  // bit-identical across engines: every decision is a pure function of
  // (seed, channel, seq, attempt) or (seed, src phys, dst phys), never
  // of scheduler interleaving.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  for (uint64_t Seed : {4u, 5u}) {
    FaultOptions F;
    F.Seed = Seed;
    F.CorruptRate = 0.08;
    F.PartitionRate = 0.04;
    F.PartitionMaxOutage = 3;
    F.SlowLinkRate = 0.3;
    F.SlowLinkMaxFactor = 3.0;
    F.DropRate = 0.03; // mixed with the classic loss mode
    RunOut Base = runLeg(P, CP, Spec, opts(4, Pv, true, 1, F), Pv);
    ASSERT_TRUE(Base.R.Ok) << "seed " << Seed << ": " << Base.R.Error;
    ASSERT_GT(Base.R.CorruptedPackets, 0u) << "seed " << Seed;
    ASSERT_GT(Base.R.PartitionDrops, 0u) << "seed " << Seed;
    ASSERT_GT(Base.R.SlowLinkMessages, 0u) << "seed " << Seed;
    for (unsigned T : {2u, 8u}) {
      RunOut Leg = runLeg(P, CP, Spec, opts(4, Pv, true, T, F), Pv);
      expectIdentical(Base, Leg,
                      "lu-hostile seed=" + std::to_string(Seed) +
                          " threads=" + std::to_string(T));
    }
  }
}

TEST(ThreadedSim, CrashRecoveryMatchesAcrossThreadCountsAndSeeds) {
  // Crash + coordinated checkpoint/rollback: the serialized
  // checkpoint-imminent rounds must draw every line at exactly the
  // sequential statement, so the full recovery telemetry agrees.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 64}};
  for (uint64_t CrashSeed : {11u, 22u}) {
    FaultOptions F;
    F.CrashRate = 4e-5;
    F.CrashSeed = CrashSeed;
    CheckpointOptions CK;
    CK.IntervalSteps = 40000;
    RunOut Base = runLeg(P, CP, Spec, opts(4, Pv, true, 1, F, CK), Pv);
    ASSERT_TRUE(Base.R.Ok) << "seed " << CrashSeed << ": "
                           << Base.R.Error;
    ASSERT_GE(Base.R.Recovery.Crashes, 1u) << "seed " << CrashSeed;
    ASSERT_GE(Base.R.Recovery.Rollbacks, 1u) << "seed " << CrashSeed;
    for (unsigned T : {2u, 8u}) {
      RunOut Leg = runLeg(P, CP, Spec, opts(4, Pv, true, T, F, CK), Pv);
      expectIdentical(Base, Leg,
                      "lu-crash seed=" + std::to_string(CrashSeed) +
                          " threads=" + std::to_string(T));
    }
  }
}

TEST(ThreadedSim, UnrecoverableCrashDiagnosticsMatchAcrossThreads) {
  // No checkpointing: the first crash is terminal and the run ends in a
  // structured diagnostic. The rendered report (dead processors, stuck
  // receivers, buffered-ahead counts) must be identical.
  Program P = stencil();
  CompileSpec Spec = stencilSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 5}, {"N", 63}};
  FaultOptions F;
  F.CrashRate = 2e-3;
  F.CrashSeed = 5;
  RunOut Base = runLeg(P, CP, Spec, opts(4, Pv, true, 1, F), Pv);
  ASSERT_FALSE(Base.R.Ok);
  ASSERT_GE(Base.R.Recovery.Crashes, 1u);
  for (unsigned T : {2u, 8u}) {
    RunOut Leg = runLeg(P, CP, Spec, opts(4, Pv, true, T, F), Pv);
    expectIdentical(Base, Leg,
                    "stencil-dead threads=" + std::to_string(T));
  }
}

TEST(ThreadedSim, ZeroThreadsPicksHardwareConcurrency) {
  Program P = stencil();
  CompileSpec Spec = stencilSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 3}, {"N", 63}};
  RunOut Base = runLeg(P, CP, Spec, opts(4, Pv, true, 1), Pv);
  ASSERT_TRUE(Base.R.Ok) << Base.R.Error;
  RunOut Auto = runLeg(P, CP, Spec, opts(4, Pv, true, 0), Pv);
  expectIdentical(Base, Auto, "stencil threads=auto");
}
