//===- tests/sim/FleetTest.cpp --------------------------------*- C++ -*-===//
//
// Supervision tests for the scenario fleet runner (DESIGN.md §12):
// workers that hang (watchdog), abort once (retry then succeed) or
// abort always (retry exhaustion) must each land in the right terminal
// status, every scenario must be accounted for, and surviving scenarios
// must hash bit-identical to the clean sequential run.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sim/Fleet.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

Program lu() {
  return parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

/// A small test fixture owning one compiled LU instance.
struct FleetEnv {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Params = {{"N", 16}};

  Fleet make(FleetOptions FO) {
    return Fleet(P, CP, Spec, Params, /*Procs=*/4, FO);
  }
};

/// One clean scenario with the given index and fault seed.
FleetScenario cleanScn(unsigned Index, uint64_t Seed = 1) {
  FleetScenario S;
  S.Index = Index;
  S.Faults.Seed = Seed;
  return S;
}

} // namespace

TEST(Fleet, HangingWorkerTripsTheWatchdog) {
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.TimeoutSeconds = 0.3;
  FO.MaxRetries = 0; // verdict is the raw failure, not retry-exhausted
  FO.HangScenarios = {0};
  Fleet F = E.make(FO);
  FleetReport Rep = F.run({cleanScn(0)});
  ASSERT_EQ(Rep.Outcomes.size(), 1u);
  EXPECT_EQ(Rep.Outcomes[0].Status, ScenarioStatus::Timeout);
  EXPECT_EQ(Rep.Outcomes[0].Attempts, 1u);
  EXPECT_NE(Rep.Outcomes[0].LastFailure.find("watchdog timeout"),
            std::string::npos)
      << Rep.Outcomes[0].LastFailure;
  EXPECT_EQ(Rep.count(ScenarioStatus::Timeout), 1u);
}

TEST(Fleet, AbortingWorkerIsRetriedAndSucceeds) {
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.MaxRetries = 2;
  FO.RetryBackoffSeconds = 0.01;
  FO.AbortOnceScenarios = {0}; // dies on attempt 1, succeeds on 2
  Fleet F = E.make(FO);
  FleetReport Rep = F.run({cleanScn(0)});
  ASSERT_EQ(Rep.Outcomes.size(), 1u);
  EXPECT_EQ(Rep.Outcomes[0].Status, ScenarioStatus::Ok);
  EXPECT_EQ(Rep.Outcomes[0].Attempts, 2u);
  EXPECT_NE(Rep.Outcomes[0].LastFailure.find("signal"),
            std::string::npos)
      << Rep.Outcomes[0].LastFailure;
  EXPECT_EQ(Rep.Outcomes[0].ResultHash, Rep.GoldenHash);
}

TEST(Fleet, PersistentCrasherExhaustsTheRetryBudget) {
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.MaxRetries = 1;
  FO.RetryBackoffSeconds = 0.01;
  FO.AbortScenarios = {0}; // dies on every attempt
  Fleet F = E.make(FO);
  FleetReport Rep = F.run({cleanScn(0)});
  ASSERT_EQ(Rep.Outcomes.size(), 1u);
  EXPECT_EQ(Rep.Outcomes[0].Status, ScenarioStatus::RetryExhausted);
  EXPECT_EQ(Rep.Outcomes[0].Attempts, 2u); // initial + 1 retry
  EXPECT_NE(Rep.Outcomes[0].LastFailure.find("signal"),
            std::string::npos)
      << Rep.Outcomes[0].LastFailure;
}

TEST(Fleet, DeterministicSimFailuresAreTerminalWithoutRetry) {
  // A transport that gives up (partition beyond the retry budget) is a
  // deterministic property of the scenario: one attempt, classified as
  // transport-exhausted, never respawned.
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.MaxRetries = 3;
  Fleet F = E.make(FO);
  FleetScenario S = cleanScn(0);
  S.Faults.PartitionRate = 1.0;
  S.Faults.PartitionMaxOutage = 30;
  S.Faults.MaxRetries = 2;
  FleetReport Rep = F.run({S});
  ASSERT_EQ(Rep.Outcomes.size(), 1u);
  EXPECT_EQ(Rep.Outcomes[0].Status, ScenarioStatus::TransportExhausted);
  EXPECT_EQ(Rep.Outcomes[0].Attempts, 1u);
  EXPECT_FALSE(Rep.Outcomes[0].LastFailure.empty());
}

TEST(Fleet, MatrixIsFullyAccountedAndBitExactUnderHostileFaults) {
  // A 12-scenario matrix mixing every hostile mode, both engines and a
  // sabotaged worker: every scenario must reach a terminal status and
  // every survivor must hash identical to the clean sequential run.
  FleetEnv E;
  FleetMatrixSpec MS;
  MS.FaultSeeds = {1, 2, 3};
  MS.CheckpointIntervals = {0, 4096};
  MS.ThreadCounts = {1, 2};
  MS.Base.DropRate = 0.04;
  MS.Base.CorruptRate = 0.05;
  MS.Base.PartitionRate = 0.03;
  MS.Base.SlowLinkRate = 0.3;
  MS.Base.SlowLinkMaxFactor = 2.0;
  MS.Base.CrashRate = 5e-4;
  MS.Base.CrashSeed = 7;
  std::vector<FleetScenario> Matrix = buildMatrix(MS);
  ASSERT_EQ(Matrix.size(), 12u);
  // Cells without checkpointing must have been scrubbed of crashes.
  for (const FleetScenario &S : Matrix)
    if (S.CheckpointInterval == 0)
      EXPECT_EQ(S.Faults.CrashRate, 0.0);

  FleetOptions FO;
  FO.Jobs = 4;
  FO.TimeoutSeconds = 60;
  FO.MaxRetries = 2;
  FO.RetryBackoffSeconds = 0.01;
  FO.AbortOnceScenarios = {5}; // one hostile worker in the middle
  Fleet F = E.make(FO);
  FleetReport Rep = F.run(Matrix);
  ASSERT_EQ(Rep.Outcomes.size(), Matrix.size());
  ASSERT_NE(Rep.GoldenHash, 0u);
  for (size_t I = 0; I != Rep.Outcomes.size(); ++I) {
    const ScenarioOutcome &O = Rep.Outcomes[I];
    EXPECT_EQ(O.Scn.Index, static_cast<unsigned>(I));
    if (O.ok())
      EXPECT_EQ(O.ResultHash, Rep.GoldenHash)
          << "scenario " << O.Scn.Index << " diverged";
  }
  EXPECT_EQ(Rep.count(ScenarioStatus::Ok), Matrix.size());
  // The sabotaged scenario recovered via retry.
  EXPECT_EQ(Rep.Outcomes[5].Attempts, 2u);
}

TEST(Fleet, JsonReportAccountsForEveryScenarioAndStatus) {
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 2;
  FO.MaxRetries = 1;
  FO.RetryBackoffSeconds = 0.01;
  FO.AbortScenarios = {1};
  Fleet F = E.make(FO);
  FleetReport Rep = F.run({cleanScn(0, 1), cleanScn(1, 2)});
  std::string J = Rep.json();
  EXPECT_NE(J.find("\"scenarios_total\": 2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"ok\": 1"), std::string::npos) << J;
  EXPECT_NE(J.find("\"retry-exhausted\": 1"), std::string::npos) << J;
  EXPECT_NE(J.find("\"status\": \"ok\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"status\": \"retry-exhausted\""), std::string::npos)
      << J;
  EXPECT_NE(J.find("\"hash_match\": true"), std::string::npos) << J;
  EXPECT_NE(J.find("\"golden_hash\": \"0x"), std::string::npos) << J;
}

TEST(Fleet, BuildMatrixDefaultsToOneCleanCell) {
  std::vector<FleetScenario> M = buildMatrix(FleetMatrixSpec());
  ASSERT_EQ(M.size(), 1u);
  EXPECT_EQ(M[0].Index, 0u);
  EXPECT_EQ(M[0].Threads, 1u);
  EXPECT_EQ(M[0].CheckpointInterval, 0u);
  EXPECT_FALSE(M[0].Faults.faulty());
}
