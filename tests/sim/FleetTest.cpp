//===- tests/sim/FleetTest.cpp --------------------------------*- C++ -*-===//
//
// Supervision tests for the scenario fleet runner (DESIGN.md §12):
// workers that hang (watchdog), abort once (retry then succeed) or
// abort always (retry exhaustion) must each land in the right terminal
// status, every scenario must be accounted for, and surviving scenarios
// must hash bit-identical to the clean sequential run.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sim/Fleet.h"
#include "support/StableStore.h"

#include <climits>
#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>
#include <limits>
#include <unistd.h>

using namespace dmcc;

namespace {

Program lu() {
  return parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

/// A small test fixture owning one compiled LU instance.
struct FleetEnv {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Params = {{"N", 16}};

  Fleet make(FleetOptions FO) {
    return Fleet(P, CP, Spec, Params, /*Procs=*/4, FO);
  }
};

/// One clean scenario with the given index and fault seed.
FleetScenario cleanScn(unsigned Index, uint64_t Seed = 1) {
  FleetScenario S;
  S.Index = Index;
  S.Faults.Seed = Seed;
  return S;
}

/// A journal path in /tmp removed on destruction.
struct TempJournal {
  std::string Path;
  TempJournal() {
    char Buf[] = "/tmp/dmcc-fleet-journal-XXXXXX";
    int Fd = mkstemp(Buf);
    EXPECT_GE(Fd, 0);
    if (Fd >= 0)
      ::close(Fd);
    ::unlink(Buf); // run() recreates it; keep only the unique name
    Path = Buf;
  }
  ~TempJournal() { ::unlink(Path.c_str()); }
};

/// The supervision-free comparison of two reports (ElapsedSeconds is
/// wall-clock and legitimately differs).
void expectSameOutcomes(const FleetReport &A, const FleetReport &B) {
  EXPECT_EQ(A.GoldenHash, B.GoldenHash);
  ASSERT_EQ(A.Outcomes.size(), B.Outcomes.size());
  for (size_t I = 0; I != A.Outcomes.size(); ++I) {
    EXPECT_EQ(A.Outcomes[I].Status, B.Outcomes[I].Status) << I;
    EXPECT_EQ(A.Outcomes[I].MakespanSeconds,
              B.Outcomes[I].MakespanSeconds)
        << I;
    EXPECT_EQ(A.Outcomes[I].Retransmissions,
              B.Outcomes[I].Retransmissions)
        << I;
    EXPECT_EQ(A.Outcomes[I].Crashes, B.Outcomes[I].Crashes) << I;
    EXPECT_EQ(A.Outcomes[I].Rollbacks, B.Outcomes[I].Rollbacks) << I;
    EXPECT_EQ(A.Outcomes[I].ResultHash, B.Outcomes[I].ResultHash) << I;
  }
}

} // namespace

TEST(Fleet, HangingWorkerTripsTheWatchdog) {
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.TimeoutSeconds = 0.3;
  FO.MaxRetries = 0; // verdict is the raw failure, not retry-exhausted
  FO.HangScenarios = {0};
  Fleet F = E.make(FO);
  FleetReport Rep = F.run({cleanScn(0)});
  ASSERT_EQ(Rep.Outcomes.size(), 1u);
  EXPECT_EQ(Rep.Outcomes[0].Status, ScenarioStatus::Timeout);
  EXPECT_EQ(Rep.Outcomes[0].Attempts, 1u);
  EXPECT_NE(Rep.Outcomes[0].LastFailure.find("watchdog timeout"),
            std::string::npos)
      << Rep.Outcomes[0].LastFailure;
  EXPECT_EQ(Rep.count(ScenarioStatus::Timeout), 1u);
}

TEST(Fleet, AbortingWorkerIsRetriedAndSucceeds) {
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.MaxRetries = 2;
  FO.RetryBackoffSeconds = 0.01;
  FO.AbortOnceScenarios = {0}; // dies on attempt 1, succeeds on 2
  Fleet F = E.make(FO);
  FleetReport Rep = F.run({cleanScn(0)});
  ASSERT_EQ(Rep.Outcomes.size(), 1u);
  EXPECT_EQ(Rep.Outcomes[0].Status, ScenarioStatus::Ok);
  EXPECT_EQ(Rep.Outcomes[0].Attempts, 2u);
  EXPECT_NE(Rep.Outcomes[0].LastFailure.find("signal"),
            std::string::npos)
      << Rep.Outcomes[0].LastFailure;
  EXPECT_EQ(Rep.Outcomes[0].ResultHash, Rep.GoldenHash);
}

TEST(Fleet, PersistentCrasherExhaustsTheRetryBudget) {
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.MaxRetries = 1;
  FO.RetryBackoffSeconds = 0.01;
  FO.AbortScenarios = {0}; // dies on every attempt
  Fleet F = E.make(FO);
  FleetReport Rep = F.run({cleanScn(0)});
  ASSERT_EQ(Rep.Outcomes.size(), 1u);
  EXPECT_EQ(Rep.Outcomes[0].Status, ScenarioStatus::RetryExhausted);
  EXPECT_EQ(Rep.Outcomes[0].Attempts, 2u); // initial + 1 retry
  EXPECT_NE(Rep.Outcomes[0].LastFailure.find("signal"),
            std::string::npos)
      << Rep.Outcomes[0].LastFailure;
}

TEST(Fleet, DeterministicSimFailuresAreTerminalWithoutRetry) {
  // A transport that gives up (partition beyond the retry budget) is a
  // deterministic property of the scenario: one attempt, classified as
  // transport-exhausted, never respawned.
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.MaxRetries = 3;
  Fleet F = E.make(FO);
  FleetScenario S = cleanScn(0);
  S.Faults.PartitionRate = 1.0;
  S.Faults.PartitionMaxOutage = 30;
  S.Faults.MaxRetries = 2;
  FleetReport Rep = F.run({S});
  ASSERT_EQ(Rep.Outcomes.size(), 1u);
  EXPECT_EQ(Rep.Outcomes[0].Status, ScenarioStatus::TransportExhausted);
  EXPECT_EQ(Rep.Outcomes[0].Attempts, 1u);
  EXPECT_FALSE(Rep.Outcomes[0].LastFailure.empty());
}

TEST(Fleet, MatrixIsFullyAccountedAndBitExactUnderHostileFaults) {
  // A 12-scenario matrix mixing every hostile mode, both engines and a
  // sabotaged worker: every scenario must reach a terminal status and
  // every survivor must hash identical to the clean sequential run.
  FleetEnv E;
  FleetMatrixSpec MS;
  MS.FaultSeeds = {1, 2, 3};
  MS.CheckpointIntervals = {0, 4096};
  MS.ThreadCounts = {1, 2};
  MS.Base.DropRate = 0.04;
  MS.Base.CorruptRate = 0.05;
  MS.Base.PartitionRate = 0.03;
  MS.Base.SlowLinkRate = 0.3;
  MS.Base.SlowLinkMaxFactor = 2.0;
  MS.Base.CrashRate = 5e-4;
  MS.Base.CrashSeed = 7;
  std::vector<FleetScenario> Matrix = buildMatrix(MS);
  ASSERT_EQ(Matrix.size(), 12u);
  // Cells without checkpointing must have been scrubbed of crashes.
  for (const FleetScenario &S : Matrix)
    if (S.CheckpointInterval == 0)
      EXPECT_EQ(S.Faults.CrashRate, 0.0);

  FleetOptions FO;
  FO.Jobs = 4;
  FO.TimeoutSeconds = 60;
  FO.MaxRetries = 2;
  FO.RetryBackoffSeconds = 0.01;
  FO.AbortOnceScenarios = {5}; // one hostile worker in the middle
  Fleet F = E.make(FO);
  FleetReport Rep = F.run(Matrix);
  ASSERT_EQ(Rep.Outcomes.size(), Matrix.size());
  ASSERT_NE(Rep.GoldenHash, 0u);
  for (size_t I = 0; I != Rep.Outcomes.size(); ++I) {
    const ScenarioOutcome &O = Rep.Outcomes[I];
    EXPECT_EQ(O.Scn.Index, static_cast<unsigned>(I));
    if (O.ok())
      EXPECT_EQ(O.ResultHash, Rep.GoldenHash)
          << "scenario " << O.Scn.Index << " diverged";
  }
  EXPECT_EQ(Rep.count(ScenarioStatus::Ok), Matrix.size());
  // The sabotaged scenario recovered via retry.
  EXPECT_EQ(Rep.Outcomes[5].Attempts, 2u);
}

TEST(Fleet, JsonReportAccountsForEveryScenarioAndStatus) {
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 2;
  FO.MaxRetries = 1;
  FO.RetryBackoffSeconds = 0.01;
  FO.AbortScenarios = {1};
  Fleet F = E.make(FO);
  FleetReport Rep = F.run({cleanScn(0, 1), cleanScn(1, 2)});
  std::string J = Rep.json();
  EXPECT_NE(J.find("\"scenarios_total\": 2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"ok\": 1"), std::string::npos) << J;
  EXPECT_NE(J.find("\"retry-exhausted\": 1"), std::string::npos) << J;
  EXPECT_NE(J.find("\"status\": \"ok\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"status\": \"retry-exhausted\""), std::string::npos)
      << J;
  EXPECT_NE(J.find("\"hash_match\": true"), std::string::npos) << J;
  EXPECT_NE(J.find("\"golden_hash\": \"0x"), std::string::npos) << J;
}

TEST(Fleet, GroupedJsonNestsPerProgramReportsAndAggregatesTotals) {
  // The dmcc-fleet --programs axis renders one grouped document: each
  // program's complete report under its file name, plus cross-program
  // totals. Pin the shape with two real (tiny) runs.
  FleetEnv E;
  FleetOptions FO;
  FO.Jobs = 2;
  FO.MaxRetries = 1;
  FO.RetryBackoffSeconds = 0.01;
  Fleet F1 = E.make(FO);
  FleetReport R1 = F1.run({cleanScn(0, 1)});
  FO.AbortScenarios = {0};
  Fleet F2 = E.make(FO);
  FleetReport R2 = F2.run({cleanScn(0, 1)});
  std::string J = groupedFleetJson(
      {NamedFleetReport{"examples/a.dm", R1},
       NamedFleetReport{"examples/b.dm", R2}});
  EXPECT_NE(J.find("\"programs\": ["), std::string::npos) << J;
  EXPECT_NE(J.find("\"file\": \"examples/a.dm\""), std::string::npos)
      << J;
  EXPECT_NE(J.find("\"file\": \"examples/b.dm\""), std::string::npos)
      << J;
  // Each nested report keeps its own full shape...
  EXPECT_NE(J.find("\"report\": {"), std::string::npos) << J;
  EXPECT_NE(J.find("\"golden_hash\": \"0x"), std::string::npos) << J;
  // ...and the totals aggregate across programs.
  EXPECT_NE(J.find("\"totals\": {\"programs\": 2, "
                   "\"scenarios_total\": 2"),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("\"retry-exhausted\": 1}}"), std::string::npos) << J;
}

TEST(Fleet, JournaledSweepResumesWithoutRerunningVerdicts) {
  // First sweep journals every verdict. The resumed sweep must restore
  // them all and re-run nothing: scenario 1 is sabotaged to abort on
  // EVERY attempt, so if it were re-run it could not come back Ok.
  FleetEnv E;
  TempJournal J;
  FleetOptions FO;
  FO.Jobs = 2;
  FO.RetryBackoffSeconds = 0.01;
  FO.JournalPath = J.Path;
  std::vector<FleetScenario> Matrix = {cleanScn(0, 1), cleanScn(1, 2),
                                       cleanScn(2, 3)};
  Fleet F1 = E.make(FO);
  FleetReport A = F1.run(Matrix);
  ASSERT_TRUE(A.Error.empty()) << A.Error;
  EXPECT_EQ(A.count(ScenarioStatus::Ok), 3u);
  EXPECT_EQ(A.ResumedFromJournal, 0u);

  FO.Resume = true;
  FO.AbortScenarios = {0, 1, 2}; // any re-run would end retry-exhausted
  Fleet F2 = E.make(FO);
  FleetReport B = F2.run(Matrix);
  ASSERT_TRUE(B.Error.empty()) << B.Error;
  EXPECT_EQ(B.ResumedFromJournal, 3u);
  EXPECT_EQ(B.count(ScenarioStatus::Ok), 3u);
  expectSameOutcomes(A, B);
}

TEST(Fleet, ResumeRequeuesScenariosWithoutAVerdict) {
  // A journal holding verdicts for only part of the matrix (what a
  // SIGKILL mid-sweep leaves behind): the resumed run must re-run
  // exactly the unjournaled scenarios and produce the full report.
  FleetEnv E;
  TempJournal J;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.JournalPath = J.Path;
  std::vector<FleetScenario> Matrix = {cleanScn(0, 1), cleanScn(1, 2),
                                       cleanScn(2, 3), cleanScn(3, 4)};
  Fleet F1 = E.make(FO);
  FleetReport A = F1.run(Matrix);
  ASSERT_TRUE(A.Error.empty()) << A.Error;
  EXPECT_EQ(A.count(ScenarioStatus::Ok), 4u);

  // Rewrite the journal keeping the meta record and the first two
  // verdicts — scenarios 2 and 3 are left with at most a start record.
  stable::ReadFramesResult RF = stable::readFrames(J.Path);
  ASSERT_TRUE(RF.intact()) << RF.Error;
  std::vector<uint8_t> Cut;
  unsigned Verdicts = 0;
  constexpr uint32_t VerdictType = 0x464C5644u; // "FLVD"
  for (const stable::Frame &Fr : RF.Frames) {
    if (Fr.Type == VerdictType && Verdicts == 2)
      continue;
    if (Fr.Type == VerdictType)
      ++Verdicts;
    std::vector<uint8_t> Enc = stable::encodeFrame(Fr.Type, Fr.Payload);
    Cut.insert(Cut.end(), Enc.begin(), Enc.end());
  }
  std::string Err;
  ASSERT_TRUE(stable::atomicWriteFile(J.Path, Cut, Err)) << Err;

  FO.Resume = true;
  Fleet F2 = E.make(FO);
  FleetReport B = F2.run(Matrix);
  ASSERT_TRUE(B.Error.empty()) << B.Error;
  EXPECT_EQ(B.ResumedFromJournal, 2u);
  EXPECT_EQ(B.count(ScenarioStatus::Ok), 4u);
  expectSameOutcomes(A, B);
}

TEST(Fleet, TornJournalTailIsDiscardedOnResume) {
  FleetEnv E;
  TempJournal J;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.JournalPath = J.Path;
  std::vector<FleetScenario> Matrix = {cleanScn(0, 1), cleanScn(1, 2)};
  Fleet F1 = E.make(FO);
  FleetReport A = F1.run(Matrix);
  ASSERT_TRUE(A.Error.empty()) << A.Error;

  // Tear the last record like a SIGKILL mid-append: its verdict is
  // lost, so that scenario re-runs; the report still converges.
  FILE *Fp = std::fopen(J.Path.c_str(), "rb");
  ASSERT_NE(Fp, nullptr);
  std::fseek(Fp, 0, SEEK_END);
  long Size = std::ftell(Fp);
  std::fclose(Fp);
  ASSERT_GT(Size, 4);
  ASSERT_EQ(truncate(J.Path.c_str(), Size - 4), 0);

  FO.Resume = true;
  Fleet F2 = E.make(FO);
  FleetReport B = F2.run(Matrix);
  ASSERT_TRUE(B.Error.empty()) << B.Error;
  EXPECT_EQ(B.ResumedFromJournal, 1u);
  EXPECT_EQ(B.count(ScenarioStatus::Ok), 2u);
  expectSameOutcomes(A, B);
}

TEST(Fleet, ForeignJournalIsRejectedNotSilentlyTrusted) {
  // A journal written for a different matrix (different scenario count)
  // must abort the sweep with a usage error instead of resuming bogus
  // verdicts into the report.
  FleetEnv E;
  TempJournal J;
  FleetOptions FO;
  FO.Jobs = 1;
  FO.JournalPath = J.Path;
  Fleet F1 = E.make(FO);
  FleetReport A = F1.run({cleanScn(0, 1)});
  ASSERT_TRUE(A.Error.empty()) << A.Error;

  FO.Resume = true;
  Fleet F2 = E.make(FO);
  FleetReport B = F2.run({cleanScn(0, 1), cleanScn(1, 2)});
  EXPECT_FALSE(B.Error.empty());
  EXPECT_FALSE(B.ErrorIsIo);
  EXPECT_NE(B.Error.find("does not belong"), std::string::npos)
      << B.Error;
}

TEST(Fleet, ResumeFromMissingJournalIsAFreshSweep) {
  FleetEnv E;
  TempJournal J; // never written: the path does not exist
  FleetOptions FO;
  FO.Jobs = 1;
  FO.JournalPath = J.Path;
  FO.Resume = true;
  Fleet F = E.make(FO);
  FleetReport Rep = F.run({cleanScn(0, 1)});
  ASSERT_TRUE(Rep.Error.empty()) << Rep.Error;
  EXPECT_EQ(Rep.ResumedFromJournal, 0u);
  EXPECT_EQ(Rep.count(ScenarioStatus::Ok), 1u);
}

TEST(Fleet, BuildMatrixDefaultsToOneCleanCell) {
  std::vector<FleetScenario> M = buildMatrix(FleetMatrixSpec());
  ASSERT_EQ(M.size(), 1u);
  EXPECT_EQ(M[0].Index, 0u);
  EXPECT_EQ(M[0].Threads, 1u);
  EXPECT_EQ(M[0].CheckpointInterval, 0u);
  EXPECT_EQ(M[0].Engine, SimEngine::Rounds);
  EXPECT_FALSE(M[0].Faults.faulty());
}

TEST(Fleet, BuildMatrixEmitsEventCellsOnlySingleThreaded) {
  // The engines axis: event cells exist only at thread count 1 (the
  // event scheduler is single-threaded), and indices stay contiguous.
  FleetMatrixSpec MS;
  MS.FaultSeeds = {1, 2};
  MS.ThreadCounts = {1, 2, 4};
  MS.Engines = {SimEngine::Rounds, SimEngine::Event};
  std::vector<FleetScenario> M = buildMatrix(MS);
  // 2 seeds x (3 rounds cells + 1 event cell) = 8.
  ASSERT_EQ(M.size(), 8u);
  unsigned EventCells = 0;
  for (size_t I = 0; I != M.size(); ++I) {
    EXPECT_EQ(M[I].Index, static_cast<unsigned>(I));
    if (M[I].Engine == SimEngine::Event) {
      ++EventCells;
      EXPECT_EQ(M[I].Threads, 1u);
    }
  }
  EXPECT_EQ(EventCells, 2u);
}

TEST(Fleet, EventEngineScenariosHashIdenticalToTheCleanRun) {
  // Event-engine cells through the full fork/supervise/hash pipeline:
  // every survivor must be bit-identical to the clean sequential run.
  FleetEnv E;
  FleetMatrixSpec MS;
  MS.FaultSeeds = {1, 2};
  MS.CheckpointIntervals = {0, 4096};
  MS.Engines = {SimEngine::Event};
  MS.Base.DropRate = 0.05;
  MS.Base.CrashRate = 5e-4;
  MS.Base.CrashSeed = 7;
  std::vector<FleetScenario> Matrix = buildMatrix(MS);
  ASSERT_EQ(Matrix.size(), 4u);
  FleetOptions FO;
  FO.Jobs = 2;
  FO.TimeoutSeconds = 60;
  Fleet F = E.make(FO);
  FleetReport Rep = F.run(Matrix);
  ASSERT_EQ(Rep.Outcomes.size(), 4u);
  EXPECT_EQ(Rep.count(ScenarioStatus::Ok), 4u);
  for (const ScenarioOutcome &O : Rep.Outcomes)
    EXPECT_EQ(O.ResultHash, Rep.GoldenHash)
        << "scenario " << O.Scn.Index << " diverged";
  EXPECT_NE(Rep.json().find("\"engine\": \"event\""), std::string::npos);
}

TEST(Fleet, BackoffAndDeadlineArithmeticIsClamped) {
  // Regression: the respawn backoff doubled unboundedly (2^attempt
  // overflows any clock for large budgets) and the watchdog deadline
  // cast an unchecked double into steady_clock ticks — UB past 63 bits
  // of nanoseconds. Both paths are now saturating and pinned here.
  EXPECT_EQ(clampedBackoffSeconds(0.05, 0), 0.05);
  EXPECT_EQ(clampedBackoffSeconds(0.05, 1), 0.05);
  EXPECT_EQ(clampedBackoffSeconds(0.05, 2), 0.10);
  EXPECT_EQ(clampedBackoffSeconds(0.05, 3), 0.20);
  EXPECT_EQ(clampedBackoffSeconds(0.05, 64), 60.0);
  EXPECT_EQ(clampedBackoffSeconds(0.05, UINT_MAX), 60.0);
  EXPECT_EQ(clampedBackoffSeconds(1e300, 2), 60.0);

  using Dur = std::chrono::steady_clock::duration;
  EXPECT_EQ(boundedSeconds(0.0), Dur::zero());
  EXPECT_EQ(boundedSeconds(-5.0), Dur::zero());
  EXPECT_EQ(boundedSeconds(std::nan("")), Dur::zero());
  EXPECT_EQ(boundedSeconds(1.5),
            std::chrono::duration_cast<Dur>(
                std::chrono::milliseconds(1500)));
  // Anything huge pins at the ~31-year cap instead of overflowing the
  // 63-bit tick range (1e18 s would be ~2^93 ns).
  Dur Cap = boundedSeconds(1e9);
  EXPECT_EQ(boundedSeconds(1e18), Cap);
  EXPECT_EQ(boundedSeconds(std::numeric_limits<double>::infinity()),
            Cap);
  EXPECT_GT(Cap, Dur::zero());
}
