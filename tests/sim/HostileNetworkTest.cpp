//===- tests/sim/HostileNetworkTest.cpp -----------------------*- C++ -*-===//
//
// The three hostile-network fault modes added with the fleet runner:
// payload corruption (checksum + NACK retransmission), transient
// partitions that heal after a seeded outage, and straggler links with
// per-link latency multipliers. Every mode must leave final arrays
// bit-identical to the sequential reference execution, report its
// telemetry, and behave as a pure function of the seed.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

Program lu() {
  return parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

SimOptions opts(IntT Procs, std::map<std::string, IntT> Params,
                FaultOptions Faults) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = std::move(Params);
  SO.Functional = true;
  SO.CollapseLoops = false;
  SO.Faults = Faults;
  return SO;
}

/// Every element of array 0 must equal the sequential reference.
void verifyArray0(const Program &P, Simulator &Sim,
                  const std::map<std::string, IntT> &Params) {
  SeqInterpreter Gold(P, Params);
  Gold.run();
  IntT N = Params.at("N");
  unsigned Bad = 0, Missing = 0;
  for (IntT I = 0; I <= N; ++I)
    for (IntT J = 0; J <= N; ++J) {
      auto Got = Sim.finalValue(0, {I, J});
      if (!Got)
        ++Missing;
      else if (*Got != Gold.arrayValue(0, {I, J}))
        ++Bad;
    }
  EXPECT_EQ(Missing, 0u);
  EXPECT_EQ(Bad, 0u);
}

} // namespace

TEST(HostileNetwork, CorruptionTriggersNacksAndStaysBitExact) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  FaultOptions F;
  F.Seed = 3;
  F.CorruptRate = 0.15;
  Simulator Sim(P, CP, Spec, opts(4, Pv, F));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.CorruptedPackets, 0u);
  // Every checksum failure produces exactly one NACK, and the sender
  // pays for the extra attempt.
  EXPECT_EQ(R.NacksSent, R.CorruptedPackets);
  EXPECT_GE(R.Retransmissions, R.CorruptedPackets);
  verifyArray0(P, Sim, Pv);
}

TEST(HostileNetwork, PartitionsHealWithinTheRetryBudget) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  FaultOptions F;
  F.Seed = 8;
  F.PartitionRate = 0.08;
  F.PartitionMaxOutage = 3; // within the default 8-retry budget
  Simulator Sim(P, CP, Spec, opts(4, Pv, F));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.PartitionDrops, 0u);
  EXPECT_GE(R.Retransmissions, R.PartitionDrops);
  verifyArray0(P, Sim, Pv);
}

TEST(HostileNetwork, PartitionBeyondRetryBudgetReportsExhaustion) {
  // An outage longer than the retry budget must surface as a structured
  // retry-exhaustion diagnostic, not a hang or a silent loss.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 16}};
  FaultOptions F;
  F.Seed = 1;
  F.PartitionRate = 1.0; // every packet partitioned...
  F.PartitionMaxOutage = 30;
  F.MaxRetries = 2; // ...for longer than the sender will retry
  Simulator Sim(P, CP, Spec, opts(4, Pv, F));
  SimResult R = Sim.run();
  ASSERT_FALSE(R.Ok);
  EXPECT_FALSE(R.Diag.RetryExhausted.empty());
  EXPECT_GT(R.PartitionDrops, 0u);
}

TEST(HostileNetwork, SlowLinksStretchClocksButNotValuesOrCounts) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  Simulator Clean(P, CP, Spec, opts(4, Pv, FaultOptions()));
  SimResult RC = Clean.run();
  ASSERT_TRUE(RC.Ok) << RC.Error;
  FaultOptions F;
  F.Seed = 2;
  F.SlowLinkRate = 0.5;
  F.SlowLinkMaxFactor = 4.0;
  // Slow links alone do not need the acked transport: delivery is
  // late, never lost.
  ASSERT_FALSE(F.transportActive());
  ASSERT_TRUE(F.faulty());
  Simulator Sim(P, CP, Spec, opts(4, Pv, F));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.SlowLinkMessages, 0u);
  EXPECT_LT(R.SlowLinkMessages, R.Messages); // only seeded links lag
  EXPECT_EQ(R.Messages, RC.Messages);
  EXPECT_EQ(R.Words, RC.Words);
  EXPECT_EQ(R.Flops, RC.Flops);
  EXPECT_GT(R.MakespanSeconds, RC.MakespanSeconds);
  verifyArray0(P, Sim, Pv);
}

TEST(HostileNetwork, LinkFactorsArePureAndBounded) {
  FaultOptions F;
  F.Seed = 42;
  F.SlowLinkRate = 0.5;
  F.SlowLinkMaxFactor = 4.0;
  FaultModel M(F);
  unsigned Slow = 0;
  for (unsigned S = 0; S != 16; ++S)
    for (unsigned D = 0; D != 16; ++D) {
      double F1 = M.linkFactor(S, D);
      EXPECT_EQ(F1, M.linkFactor(S, D)) << "not pure at " << S << "->"
                                        << D;
      EXPECT_GE(F1, 1.0);
      EXPECT_LE(F1, 4.0);
      if (S == D)
        EXPECT_EQ(F1, 1.0) << "self-link must never lag";
      else if (F1 > 1.0)
        ++Slow;
    }
  EXPECT_GT(Slow, 0u);
  // The directed link a->b draws independently of b->a.
  bool Asymmetric = false;
  for (unsigned S = 0; S != 16 && !Asymmetric; ++S)
    for (unsigned D = 0; D != 16 && !Asymmetric; ++D)
      if (M.linkFactor(S, D) != M.linkFactor(D, S))
        Asymmetric = true;
  EXPECT_TRUE(Asymmetric);
}

TEST(HostileNetwork, SameSeedReproducesBitIdenticalRuns) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 24}};
  FaultOptions F;
  F.Seed = 17;
  F.CorruptRate = 0.1;
  F.PartitionRate = 0.05;
  F.SlowLinkRate = 0.4;
  F.SlowLinkMaxFactor = 2.0;
  Simulator A(P, CP, Spec, opts(4, Pv, F));
  SimResult RA = A.run();
  Simulator B(P, CP, Spec, opts(4, Pv, F));
  SimResult RB = B.run();
  ASSERT_TRUE(RA.Ok) << RA.Error;
  EXPECT_EQ(RA.MakespanSeconds, RB.MakespanSeconds);
  EXPECT_EQ(RA.CorruptedPackets, RB.CorruptedPackets);
  EXPECT_EQ(RA.PartitionDrops, RB.PartitionDrops);
  EXPECT_EQ(RA.SlowLinkMessages, RB.SlowLinkMessages);
  EXPECT_EQ(RA.Retransmissions, RB.Retransmissions);
}

// Fuzz slice: a seed sweep across all three hostile modes mixed with
// classic loss/duplication. Every surviving schedule must verify
// bit-exact against the sequential reference.
TEST(HostileNetworkFuzz, MixedModeSeedSweepStaysBitExact) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 24}};
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    FaultOptions F;
    F.Seed = Seed;
    F.DropRate = 0.03;
    F.DupRate = 0.03;
    F.CorruptRate = 0.06;
    F.PartitionRate = 0.04;
    F.PartitionMaxOutage = 3;
    F.SlowLinkRate = 0.3;
    F.SlowLinkMaxFactor = 2.5;
    Simulator Sim(P, CP, Spec, opts(4, Pv, F));
    SimResult R = Sim.run();
    ASSERT_TRUE(R.Ok) << "seed " << Seed << ": " << R.Error;
    EXPECT_GT(R.CorruptedPackets + R.PartitionDrops + R.SlowLinkMessages,
              0u)
        << "seed " << Seed << " exercised nothing";
    verifyArray0(P, Sim, Pv);
  }
}
