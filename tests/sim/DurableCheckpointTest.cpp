//===- tests/sim/DurableCheckpointTest.cpp --------------------*- C++ -*-===//
//
// The durable-checkpoint layer (DESIGN.md §13): CRC-framed stable-store
// primitives, and the kill/resume differential — a run restored from
// the newest intact on-disk checkpoint must finish bit-identical to the
// uninterrupted run, under clean, lossy, crash-recovery and threaded
// schedules, with torn or bit-flipped images detected and skipped.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "sim/Simulator.h"
#include "support/StableStore.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace dmcc;

namespace {

Program lu() {
  return parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

/// A scratch directory deleted (recursively, one level) on destruction.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/dmcc-durable-XXXXXX";
    Path = mkdtemp(Buf);
    EXPECT_FALSE(Path.empty());
  }
  ~TempDir() {
    for (const std::string &F :
         stable::listFiles(Path, "", ""))
      ::unlink((Path + "/" + F).c_str());
    ::rmdir(Path.c_str());
  }
};

std::vector<uint8_t> slurp(const std::string &Path) {
  std::vector<uint8_t> Out;
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Out;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.insert(Out.end(), Buf, Buf + N);
  std::fclose(F);
  return Out;
}

void spit(const std::string &Path, const std::vector<uint8_t> &Data) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(std::fwrite(Data.data(), 1, Data.size(), F), Data.size());
  std::fclose(F);
}

/// Copies the first \p Keep checkpoint files of \p From into \p To —
/// the on-disk state a SIGKILL mid-run would have left behind.
unsigned copyPrefix(const std::string &From, const std::string &To,
                    unsigned Keep) {
  std::vector<std::string> Files =
      stable::listFiles(From, "ckpt-", ".dmc");
  unsigned Copied = 0;
  for (const std::string &F : Files) {
    if (Copied == Keep)
      break;
    spit(To + "/" + F, slurp(From + "/" + F));
    ++Copied;
  }
  return Copied;
}

SimOptions opts(std::map<std::string, IntT> Params, FaultOptions Faults,
                CheckpointOptions Checkpoint, unsigned Threads = 1) {
  SimOptions SO;
  SO.PhysGrid = {4};
  SO.ParamValues = std::move(Params);
  SO.Functional = true;
  SO.CollapseLoops = false;
  SO.Faults = Faults;
  SO.Checkpoint = Checkpoint;
  SO.Threads = Threads;
  return SO;
}

/// The bit-identity contract: every observable of the two results must
/// agree exactly, doubles included (they travel as bit patterns).
void expectSameResult(const SimResult &A, const SimResult &B) {
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.Error, B.Error);
  EXPECT_EQ(A.MakespanSeconds, B.MakespanSeconds);
  EXPECT_EQ(A.Messages, B.Messages);
  EXPECT_EQ(A.IntraMessages, B.IntraMessages);
  EXPECT_EQ(A.Words, B.Words);
  EXPECT_EQ(A.Flops, B.Flops);
  EXPECT_EQ(A.ComputeIterations, B.ComputeIterations);
  EXPECT_EQ(A.TotalEvents, B.TotalEvents);
  EXPECT_EQ(A.PhysBusy, B.PhysBusy);
  EXPECT_EQ(A.Retransmissions, B.Retransmissions);
  EXPECT_EQ(A.DroppedPackets, B.DroppedPackets);
  EXPECT_EQ(A.DuplicatesSuppressed, B.DuplicatesSuppressed);
  EXPECT_EQ(A.AcksSent, B.AcksSent);
  EXPECT_EQ(A.CorruptedPackets, B.CorruptedPackets);
  EXPECT_EQ(A.NacksSent, B.NacksSent);
  EXPECT_EQ(A.PartitionDrops, B.PartitionDrops);
  EXPECT_EQ(A.SlowLinkMessages, B.SlowLinkMessages);
  EXPECT_EQ(A.Recovery.CheckpointsTaken, B.Recovery.CheckpointsTaken);
  EXPECT_EQ(A.Recovery.CheckpointBytes, B.Recovery.CheckpointBytes);
  EXPECT_EQ(A.Recovery.Crashes, B.Recovery.Crashes);
  EXPECT_EQ(A.Recovery.Rollbacks, B.Recovery.Rollbacks);
  EXPECT_EQ(A.Recovery.ReplayedSteps, B.Recovery.ReplayedSteps);
  EXPECT_EQ(A.Recovery.ReplayedMessages, B.Recovery.ReplayedMessages);
  EXPECT_EQ(A.Recovery.ComputeSeconds, B.Recovery.ComputeSeconds);
  EXPECT_EQ(A.Recovery.ProtocolSeconds, B.Recovery.ProtocolSeconds);
  EXPECT_EQ(A.Recovery.CheckpointSeconds, B.Recovery.CheckpointSeconds);
  EXPECT_EQ(A.Recovery.RecoverySeconds, B.Recovery.RecoverySeconds);
  EXPECT_EQ(A.Overlap.EarlySends, B.Overlap.EarlySends);
  EXPECT_EQ(A.Overlap.DeferredSeconds, B.Overlap.DeferredSeconds);
  EXPECT_EQ(A.Overlap.ExposedSeconds, B.Overlap.ExposedSeconds);
}

/// Compares every element of array 0's final layout between two
/// functional runs (both must hold every element, bit-identical).
void expectSameArray(const Program &P, Simulator &SA, Simulator &SB,
                     const std::map<std::string, IntT> &Params) {
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  std::vector<IntT> Sizes;
  for (const AffineExpr &D : P.array(0).DimSizes)
    Sizes.push_back(D.evaluate(Env));
  std::vector<IntT> Idx(Sizes.size(), 0);
  bool Done = false;
  while (!Done) {
    auto A = SA.finalValue(0, Idx);
    auto B = SB.finalValue(0, Idx);
    ASSERT_TRUE(A.has_value());
    ASSERT_TRUE(B.has_value());
    EXPECT_EQ(*A, *B);
    for (unsigned K = Idx.size(); K-- > 0;) {
      if (++Idx[K] < Sizes[K])
        break;
      Idx[K] = 0;
      if (K == 0)
        Done = true;
    }
  }
}

/// The fixture the kill/resume differentials share: one compiled LU.
struct DurableEnv {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 24}};

  /// Runs the schedule durably to completion in Ref, keeps only a
  /// prefix of the images (the kill), resumes from the prefix and
  /// checks the resumed run against the uninterrupted one.
  void killResume(FaultOptions F, unsigned Threads) {
    CheckpointOptions CK;
    CK.IntervalSteps = 100;
    TempDir Ref, Cut;
    CK.DurableDir = Ref.Path;
    Simulator Full(P, CP, Spec, opts(Pv, F, CK, Threads));
    SimResult RFull = Full.run();
    ASSERT_TRUE(RFull.Ok) << RFull.Error;

    unsigned Files =
        stable::listFiles(Ref.Path, "ckpt-", ".dmc").size();
    ASSERT_GE(Files, 4u) << "schedule too short to cut";
    ASSERT_EQ(copyPrefix(Ref.Path, Cut.Path, Files / 2), Files / 2);

    CK.DurableDir = Cut.Path;
    CK.Resume = true;
    Simulator Res(P, CP, Spec, opts(Pv, F, CK, Threads));
    SimResult RRes = Res.run();
    ASSERT_TRUE(RRes.Ok) << RRes.Error;
    const DurableResumeInfo &RI = Res.resumeInfo();
    EXPECT_TRUE(RI.Attempted);
    EXPECT_TRUE(RI.Resumed);
    EXPECT_GT(RI.ResumedAtEvents, 0u);
    EXPECT_EQ(RI.CorruptSkipped, 0u);
    expectSameResult(RFull, RRes);
    expectSameArray(P, Full, Res, Pv);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// StableStore primitives
//===----------------------------------------------------------------------===//

TEST(StableStore, Crc32MatchesTheReferenceVector) {
  EXPECT_EQ(stable::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(stable::crc32("", 0), 0u);
}

TEST(StableStore, ByteIoRoundTripsEveryPrimitiveBitExact) {
  stable::ByteWriter W;
  W.u8(0xAB);
  W.u32(0xDEADBEEFu);
  W.u64(0x0123456789ABCDEFull);
  W.i64(-42);
  W.f64(0.1); // not exactly representable: must round-trip by bits
  W.f64(-0.0);
  W.str("hello");
  stable::ByteReader R(W.bytes());
  EXPECT_EQ(R.u8(), 0xAB);
  EXPECT_EQ(R.u32(), 0xDEADBEEFu);
  EXPECT_EQ(R.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.i64(), -42);
  EXPECT_EQ(R.f64(), 0.1);
  EXPECT_TRUE(std::signbit(R.f64()));
  EXPECT_EQ(R.str(), "hello");
  EXPECT_TRUE(R.atEnd());
}

TEST(StableStore, ReaderOverrunIsStickyNotUB) {
  stable::ByteWriter W;
  W.u32(7);
  stable::ByteReader R(W.bytes());
  EXPECT_EQ(R.u32(), 7u);
  EXPECT_EQ(R.u64(), 0u); // past the end: zero, flagged
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.str(), ""); // still failed, still no UB
  EXPECT_FALSE(R.atEnd());
}

TEST(StableStore, FramesRoundTripThroughAtomicWrite) {
  TempDir D;
  std::string Path = D.Path + "/frames.bin";
  stable::ByteWriter P1, P2;
  P1.str("first");
  P2.u64(99);
  std::vector<uint8_t> Bytes = stable::encodeFrame(1, P1.bytes());
  std::vector<uint8_t> F2 = stable::encodeFrame(2, P2.bytes());
  Bytes.insert(Bytes.end(), F2.begin(), F2.end());
  std::string Err;
  ASSERT_TRUE(stable::atomicWriteFile(Path, Bytes, Err)) << Err;

  stable::ReadFramesResult RF = stable::readFrames(Path);
  ASSERT_TRUE(RF.intact()) << RF.Error;
  ASSERT_EQ(RF.Frames.size(), 2u);
  EXPECT_EQ(RF.Frames[0].Type, 1u);
  EXPECT_EQ(RF.Frames[1].Type, 2u);
  EXPECT_EQ(RF.ValidBytes, Bytes.size());
  stable::ByteReader R(RF.Frames[0].Payload);
  EXPECT_EQ(R.str(), "first");
}

TEST(StableStore, TornTailIsDroppedAndTruncationPointReported) {
  TempDir D;
  std::string Path = D.Path + "/torn.bin";
  stable::ByteWriter P1, P2;
  P1.u64(1);
  P2.u64(2);
  std::vector<uint8_t> Whole = stable::encodeFrame(1, P1.bytes());
  size_t FirstLen = Whole.size();
  std::vector<uint8_t> F2 = stable::encodeFrame(1, P2.bytes());
  Whole.insert(Whole.end(), F2.begin(), F2.end());
  // A crash mid-append: the second frame loses its last 5 bytes.
  Whole.resize(Whole.size() - 5);
  spit(Path, Whole);

  stable::ReadFramesResult RF = stable::readFrames(Path);
  EXPECT_TRUE(RF.Error.empty()) << RF.Error;
  EXPECT_TRUE(RF.TornTail);
  ASSERT_EQ(RF.Frames.size(), 1u);
  EXPECT_EQ(RF.ValidBytes, FirstLen);
}

TEST(StableStore, BitFlipFailsTheCrcAndKillsTheFrame) {
  TempDir D;
  std::string Path = D.Path + "/flip.bin";
  stable::ByteWriter P1;
  P1.str("payload worth protecting");
  std::vector<uint8_t> Bytes = stable::encodeFrame(7, P1.bytes());
  Bytes.back() ^= 0x40; // damage one payload bit
  spit(Path, Bytes);

  stable::ReadFramesResult RF = stable::readFrames(Path);
  EXPECT_TRUE(RF.TornTail);
  EXPECT_TRUE(RF.Frames.empty());
  EXPECT_EQ(RF.ValidBytes, 0u);
}

TEST(StableStore, JournalAppendsSurviveAndTornTailIsCutOnReopen) {
  TempDir D;
  std::string Path = D.Path + "/journal.bin";
  std::string Err;
  stable::JournalWriter J;
  ASSERT_TRUE(J.open(Path, 0, Err)) << Err;
  stable::ByteWriter P1, P2;
  P1.u64(11);
  P2.u64(22);
  ASSERT_TRUE(J.append(1, P1.bytes(), Err)) << Err;
  ASSERT_TRUE(J.append(1, P2.bytes(), Err)) << Err;
  J.close();

  // Tear the tail like a SIGKILL mid-append would.
  std::vector<uint8_t> Bytes = slurp(Path);
  Bytes.resize(Bytes.size() - 3);
  spit(Path, Bytes);
  stable::ReadFramesResult RF = stable::readFrames(Path);
  EXPECT_TRUE(RF.TornTail);
  ASSERT_EQ(RF.Frames.size(), 1u);

  // Reopen at the valid prefix and append again: fully intact, the
  // re-appended record replacing the torn one.
  ASSERT_TRUE(J.open(Path, RF.ValidBytes, Err)) << Err;
  ASSERT_TRUE(J.append(1, P2.bytes(), Err)) << Err;
  J.close();
  RF = stable::readFrames(Path);
  ASSERT_TRUE(RF.intact()) << RF.Error;
  ASSERT_EQ(RF.Frames.size(), 2u);
  stable::ByteReader R(RF.Frames[1].Payload);
  EXPECT_EQ(R.u64(), 22u);
}

TEST(StableStore, MissingFileReadsAsErrorNotCrash) {
  stable::ReadFramesResult RF =
      stable::readFrames("/tmp/dmcc-definitely-not-there.bin");
  EXPECT_FALSE(RF.Error.empty());
  EXPECT_TRUE(RF.Frames.empty());
}

//===----------------------------------------------------------------------===//
// Kill/resume differentials
//===----------------------------------------------------------------------===//

TEST(DurableCheckpoint, DurableModeDoesNotPerturbTheSimulation) {
  // Persisting images is host-side I/O: the simulated telemetry must be
  // byte-for-byte what the in-memory checkpoint run reports.
  DurableEnv E;
  CheckpointOptions CK;
  CK.IntervalSteps = 100;
  Simulator InMem(E.P, E.CP, E.Spec, opts(E.Pv, {}, CK));
  SimResult A = InMem.run();
  ASSERT_TRUE(A.Ok) << A.Error;

  TempDir D;
  CK.DurableDir = D.Path;
  Simulator Dur(E.P, E.CP, E.Spec, opts(E.Pv, {}, CK));
  SimResult B = Dur.run();
  ASSERT_TRUE(B.Ok) << B.Error;
  expectSameResult(A, B);
  EXPECT_EQ(stable::listFiles(D.Path, "ckpt-", ".dmc").size(),
            A.Recovery.CheckpointsTaken);
}

TEST(DurableCheckpoint, KillResumeIsBitIdenticalClean) {
  DurableEnv E;
  E.killResume({}, /*Threads=*/1);
}

TEST(DurableCheckpoint, KillResumeIsBitIdenticalLossy) {
  DurableEnv E;
  FaultOptions F;
  F.Seed = 42;
  F.DropRate = 0.05;
  F.DupRate = 0.02;
  E.killResume(F, /*Threads=*/1);
}

TEST(DurableCheckpoint, KillResumeIsBitIdenticalCrashed) {
  DurableEnv E;
  FaultOptions F;
  F.CrashRate = 1e-3;
  F.CrashSeed = 7;
  E.killResume(F, /*Threads=*/1);
}

TEST(DurableCheckpoint, KillResumeIsBitIdenticalThreaded) {
  DurableEnv E;
  FaultOptions F;
  F.Seed = 42;
  F.DropRate = 0.05;
  F.CrashRate = 1e-3;
  F.CrashSeed = 7;
  E.killResume(F, /*Threads=*/2);
}

TEST(DurableCheckpoint, TornNewestImageIsSkippedOnResume) {
  DurableEnv E;
  CheckpointOptions CK;
  CK.IntervalSteps = 100;
  TempDir Ref, Cut;
  CK.DurableDir = Ref.Path;
  Simulator Full(E.P, E.CP, E.Spec, opts(E.Pv, {}, CK));
  SimResult RFull = Full.run();
  ASSERT_TRUE(RFull.Ok) << RFull.Error;
  unsigned Files = stable::listFiles(Ref.Path, "ckpt-", ".dmc").size();
  ASSERT_GE(Files, 4u);
  copyPrefix(Ref.Path, Cut.Path, Files / 2);

  // The newest surviving image is torn mid-write (truncated) — the
  // resume must fall back to its predecessor, still bit-identical.
  std::vector<std::string> Kept =
      stable::listFiles(Cut.Path, "ckpt-", ".dmc");
  std::string Newest = Cut.Path + "/" + Kept.back();
  std::vector<uint8_t> Bytes = slurp(Newest);
  Bytes.resize(Bytes.size() / 2);
  spit(Newest, Bytes);

  CK.DurableDir = Cut.Path;
  CK.Resume = true;
  Simulator Res(E.P, E.CP, E.Spec, opts(E.Pv, {}, CK));
  SimResult RRes = Res.run();
  ASSERT_TRUE(RRes.Ok) << RRes.Error;
  EXPECT_TRUE(Res.resumeInfo().Resumed);
  EXPECT_EQ(Res.resumeInfo().CorruptSkipped, 1u);
  expectSameResult(RFull, RRes);
}

TEST(DurableCheckpoint, BitFlippedImageIsSkippedOnResume) {
  DurableEnv E;
  CheckpointOptions CK;
  CK.IntervalSteps = 100;
  TempDir Ref, Cut;
  CK.DurableDir = Ref.Path;
  Simulator Full(E.P, E.CP, E.Spec, opts(E.Pv, {}, CK));
  SimResult RFull = Full.run();
  ASSERT_TRUE(RFull.Ok) << RFull.Error;
  unsigned Files = stable::listFiles(Ref.Path, "ckpt-", ".dmc").size();
  ASSERT_GE(Files, 4u);
  copyPrefix(Ref.Path, Cut.Path, Files / 2);

  std::vector<std::string> Kept =
      stable::listFiles(Cut.Path, "ckpt-", ".dmc");
  std::string Newest = Cut.Path + "/" + Kept.back();
  std::vector<uint8_t> Bytes = slurp(Newest);
  Bytes[Bytes.size() / 2] ^= 0x01; // silent media corruption
  spit(Newest, Bytes);

  CK.DurableDir = Cut.Path;
  CK.Resume = true;
  Simulator Res(E.P, E.CP, E.Spec, opts(E.Pv, {}, CK));
  SimResult RRes = Res.run();
  ASSERT_TRUE(RRes.Ok) << RRes.Error;
  EXPECT_TRUE(Res.resumeInfo().Resumed);
  EXPECT_EQ(Res.resumeInfo().CorruptSkipped, 1u);
  expectSameResult(RFull, RRes);
}

TEST(DurableCheckpoint, EmptyDirectoryResumesAsAFreshRun) {
  // A kill/restart loop passes --resume unconditionally; before the
  // first image lands that must behave exactly like a fresh start.
  DurableEnv E;
  CheckpointOptions CK;
  CK.IntervalSteps = 100;
  TempDir A, B;
  CK.DurableDir = A.Path;
  Simulator Fresh(E.P, E.CP, E.Spec, opts(E.Pv, {}, CK));
  SimResult RFresh = Fresh.run();
  ASSERT_TRUE(RFresh.Ok) << RFresh.Error;

  CK.DurableDir = B.Path;
  CK.Resume = true;
  Simulator Res(E.P, E.CP, E.Spec, opts(E.Pv, {}, CK));
  SimResult RRes = Res.run();
  ASSERT_TRUE(RRes.Ok) << RRes.Error;
  EXPECT_TRUE(Res.resumeInfo().Attempted);
  EXPECT_FALSE(Res.resumeInfo().Resumed);
  EXPECT_EQ(Res.resumeInfo().FilesSeen, 0u);
  expectSameResult(RFresh, RRes);
}
