//===- tests/sim/CrashRecoveryTest.cpp ------------------------*- C++ -*-===//
//
// Crash-stop processor failures and the coordinated checkpoint/restart
// protocol: deterministic crash schedules, bit-exact recovery of LU
// under multiple crash seeds, structured diagnostics for unrecoverable
// schedules, rewound logical counters, and a zero-overhead default.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace dmcc;

namespace {

Program shift() {
  return parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
}

CompileSpec shiftSpec(const Program &P, IntT Block) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, Block)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, Block));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, Block));
  return Spec;
}

Program lu() {
  return parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

SimOptions opts(IntT Procs, std::map<std::string, IntT> Params,
                bool Functional, FaultOptions Faults = {},
                CheckpointOptions Checkpoint = {}) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = std::move(Params);
  SO.Functional = Functional;
  SO.CollapseLoops = !Functional;
  SO.Faults = Faults;
  SO.Checkpoint = Checkpoint;
  return SO;
}

/// Checks every element of the final layout of array 0 against the
/// sequential interpreter; returns the number of mismatches/missing.
unsigned verifyArray0(const Program &P, Simulator &Sim,
                      const std::map<std::string, IntT> &Params) {
  SeqInterpreter Gold(P, Params);
  Gold.run();
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  std::vector<IntT> Sizes;
  for (const AffineExpr &D : P.array(0).DimSizes)
    Sizes.push_back(D.evaluate(Env));
  unsigned Bad = 0;
  std::vector<IntT> Idx(Sizes.size(), 0);
  bool Done = false;
  while (!Done) {
    auto Got = Sim.finalValue(0, Idx);
    if (!Got || *Got != Gold.arrayValue(0, Idx))
      ++Bad;
    for (unsigned K = Idx.size(); K-- > 0;) {
      if (++Idx[K] < Sizes[K])
        break;
      Idx[K] = 0;
      if (K == 0)
        Done = true;
    }
  }
  return Bad;
}

} // namespace

TEST(CrashRecoveryTest, CrashScheduleIsDeterministicAndSeedDriven) {
  FaultOptions F;
  F.CrashRate = 0.01;
  F.CrashSeed = 7;
  FaultModel A(F), B(F);
  F.CrashSeed = 8;
  FaultModel C(F);
  bool AnyHit = false, Differ = false;
  for (unsigned Vp = 0; Vp != 8; ++Vp)
    for (uint64_t Step = 0; Step != 512; ++Step) {
      EXPECT_EQ(A.crashAt(Vp, Step), B.crashAt(Vp, Step));
      AnyHit = AnyHit || A.crashAt(Vp, Step);
      Differ = Differ || A.crashAt(Vp, Step) != C.crashAt(Vp, Step);
    }
  EXPECT_TRUE(AnyHit);
  EXPECT_TRUE(Differ);
  // Independent of the network-fault seed.
  F.CrashSeed = 7;
  F.Seed = 999;
  FaultModel D(F);
  for (unsigned Vp = 0; Vp != 8; ++Vp)
    for (uint64_t Step = 0; Step != 128; ++Step)
      EXPECT_EQ(A.crashAt(Vp, Step), D.crashAt(Vp, Step));
}

// The tentpole acceptance test: LU at N=64 on 4 physical processors,
// five distinct crash seeds, each killing at least one virtual
// processor mid-run; every run must recover via rollback/replay and
// match the sequential interpreter bit-exact.
TEST(CrashRecoveryTest, LURecoversBitExactUnderFiveCrashSeeds) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 64}};
  for (uint64_t CrashSeed : {11u, 22u, 33u, 44u, 55u}) {
    FaultOptions F;
    F.CrashRate = 4e-5;
    F.CrashSeed = CrashSeed;
    CheckpointOptions CK;
    CK.IntervalSteps = 40000;
    Simulator Sim(P, CP, Spec, opts(4, Pv, true, F, CK));
    SimResult R = Sim.run();
    ASSERT_TRUE(R.Ok) << "seed " << CrashSeed << ": " << R.Error;
    EXPECT_GE(R.Recovery.Crashes, 1u) << "seed " << CrashSeed;
    EXPECT_GE(R.Recovery.Rollbacks, 1u) << "seed " << CrashSeed;
    EXPECT_GT(R.Recovery.CheckpointsTaken, 0u);
    EXPECT_GT(R.Recovery.ReplayedSteps, 0u);
    EXPECT_EQ(verifyArray0(P, Sim, Pv), 0u) << "seed " << CrashSeed;
  }
}

TEST(CrashRecoveryTest, RecoveredRunRewindsLogicalCounters) {
  // A recovered run must report the same logical traffic and arithmetic
  // as a fault-free one: rollbacks rewind Messages/Words/Flops, while
  // the wire-level overhead stays visible in the monotonic counters and
  // the recovery telemetry.
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 6}, {"N", 127}};
  SimResult Base = Simulator(P, CP, Spec, opts(4, Pv, true)).run();
  ASSERT_TRUE(Base.Ok) << Base.Error;

  FaultOptions F;
  F.CrashRate = 2e-3;
  F.CrashSeed = 3;
  CheckpointOptions CK;
  CK.IntervalSteps = 400;
  Simulator Sim(P, CP, Spec, opts(4, Pv, true, F, CK));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_GE(R.Recovery.Rollbacks, 1u);
  EXPECT_EQ(R.Messages, Base.Messages);
  EXPECT_EQ(R.Words, Base.Words);
  EXPECT_EQ(R.Flops, Base.Flops);
  EXPECT_EQ(R.ComputeIterations, Base.ComputeIterations);
  EXPECT_GT(R.Recovery.RecoverySeconds, 0.0);
  EXPECT_GT(R.MakespanSeconds, Base.MakespanSeconds);
  EXPECT_EQ(verifyArray0(P, Sim, Pv), 0u);
}

TEST(CrashRecoveryTest, UnrecoverableCrashYieldsStructuredDiagnostic) {
  // Checkpointing disabled: the first crash is permanent. The run must
  // end in a structured diagnostic naming the dead processor and the
  // (absent) rollback line — never a hang.
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  FaultOptions F;
  F.CrashRate = 5e-4;
  F.CrashSeed = 1;
  SimResult R =
      Simulator(P, CP, Spec, opts(4, {{"T", 6}, {"N", 127}}, true, F))
          .run();
  ASSERT_FALSE(R.Ok);
  ASSERT_FALSE(R.Diag.DeadProcs.empty());
  EXPECT_GE(R.Recovery.Crashes, 1u);
  EXPECT_EQ(R.Recovery.Rollbacks, 0u);
  EXPECT_FALSE(R.Diag.RecoveryEnabled);
  const CrashEvent &C = R.Diag.DeadProcs.front();
  std::string Name = "vp(" + std::to_string(C.Coord[0]) + ")";
  EXPECT_NE(R.Error.find("crash-stop failure"), std::string::npos)
      << R.Error;
  EXPECT_NE(R.Error.find("dead: " + Name), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("rollback line: none"), std::string::npos)
      << R.Error;
}

TEST(CrashRecoveryTest, PeerDeathIsMarkedOnStuckReceivers) {
  // In the shift stencil every processor receives from its left
  // neighbor each time step, so a dead processor leaves its direct
  // neighbor blocked on it: the diagnostic must mark that receive as
  // waiting on a crashed peer.
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  FaultOptions F;
  F.CrashRate = 5e-4;
  F.CrashSeed = 1;
  SimResult R =
      Simulator(P, CP, Spec, opts(4, {{"T", 6}, {"N", 127}}, true, F))
          .run();
  ASSERT_FALSE(R.Ok);
  ASSERT_FALSE(R.Diag.DeadProcs.empty());
  ASSERT_FALSE(R.Diag.StuckProcs.empty());
  bool AnyPeerDead = std::any_of(
      R.Diag.StuckProcs.begin(), R.Diag.StuckProcs.end(),
      [](const PendingRecv &Pr) { return Pr.PeerDead; });
  EXPECT_TRUE(AnyPeerDead);
  EXPECT_NE(R.Error.find("(peer crashed)"), std::string::npos)
      << R.Error;
}

TEST(CrashRecoveryTest, RollbackBudgetExhaustionNamesTheLine) {
  // Recovery enabled but the budget is too small for the schedule: the
  // diagnostic must name the rollback line instead of thrashing.
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  FaultOptions F;
  F.CrashRate = 5e-4;
  F.CrashSeed = 1;
  CheckpointOptions CK;
  CK.IntervalSteps = 500;
  CK.MaxRollbacks = 0;
  SimResult R = Simulator(P, CP, Spec,
                          opts(4, {{"T", 6}, {"N", 127}}, true, F, CK))
                    .run();
  ASSERT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diag.RecoveryEnabled);
  EXPECT_TRUE(R.Diag.HasRollbackLine);
  EXPECT_NE(R.Error.find("rollback line: global step"),
            std::string::npos)
      << R.Error;
}

TEST(CrashRecoveryTest, PartialRecoveryThenBudgetExhaustionIsNamed) {
  // The budget exhausts AFTER real recoveries, not only at zero: find a
  // schedule needing R >= 2 rollbacks, grant it R - 1, and require the
  // structured diagnostic to report exactly R - 1 performed before the
  // budget bit the run.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  uint64_t NeededRollbacks = 0, ChosenSeed = 0;
  for (uint64_t Seed : {7u, 9u, 13u, 21u, 35u}) {
    FaultOptions F;
    F.CrashRate = 4e-4;
    F.CrashSeed = Seed;
    CheckpointOptions CK;
    CK.IntervalSteps = 4000;
    SimResult R =
        Simulator(P, CP, Spec, opts(4, Pv, true, F, CK)).run();
    if (R.Ok && R.Recovery.Rollbacks >= 2) {
      NeededRollbacks = R.Recovery.Rollbacks;
      ChosenSeed = Seed;
      break;
    }
  }
  ASSERT_GE(NeededRollbacks, 2u)
      << "no candidate seed produced a multi-rollback schedule";

  FaultOptions F;
  F.CrashRate = 4e-4;
  F.CrashSeed = ChosenSeed;
  CheckpointOptions CK;
  CK.IntervalSteps = 4000;
  CK.MaxRollbacks = static_cast<unsigned>(NeededRollbacks - 1);
  SimResult R = Simulator(P, CP, Spec, opts(4, Pv, true, F, CK)).run();
  ASSERT_FALSE(R.Ok);
  EXPECT_TRUE(R.Diag.RecoveryEnabled);
  EXPECT_TRUE(R.Diag.HasRollbackLine);
  EXPECT_EQ(R.Diag.RollbacksDone, NeededRollbacks - 1);
  EXPECT_EQ(R.Recovery.Rollbacks, NeededRollbacks - 1);
  EXPECT_NE(R.Error.find("rollback budget exhausted"),
            std::string::npos)
      << R.Error;
  EXPECT_NE(R.Error.find(std::to_string(NeededRollbacks - 1) +
                         " rollback(s) performed"),
            std::string::npos)
      << R.Error;
}

TEST(CrashRecoveryTest, IntervalBeyondRunLengthRollsBackToStepZero) {
  // A checkpoint interval larger than the whole run's event count:
  // only the free initial snapshot exists, so every recovery replays
  // from the very beginning — and must still end bit-exact.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 24}};
  // Baseline with the transport engaged (crash rates engage it in the
  // recovery run, and the transport unicasts multicast traffic, which
  // changes the logical message count) but nothing failing.
  FaultOptions Reliable;
  Reliable.AlwaysReliable = true;
  SimResult Clean =
      Simulator(P, CP, Spec, opts(4, Pv, true, Reliable)).run();
  ASSERT_TRUE(Clean.Ok) << Clean.Error;

  FaultOptions F;
  F.CrashRate = 8e-4;
  F.CrashSeed = 11;
  CheckpointOptions CK;
  CK.IntervalSteps = Clean.TotalEvents * 10; // never fires mid-run
  Simulator Sim(P, CP, Spec, opts(4, Pv, true, F, CK));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Recovery.CheckpointsTaken, 1u); // the initial one only
  ASSERT_GE(R.Recovery.Rollbacks, 1u);
  // Rolling back to the initial snapshot replays everything executed
  // before the crash: at least one full pre-crash prefix re-runs.
  EXPECT_GT(R.Recovery.ReplayedSteps, 0u);
  EXPECT_EQ(R.Messages, Clean.Messages);
  EXPECT_EQ(R.Words, Clean.Words);
  EXPECT_EQ(verifyArray0(P, Sim, Pv), 0u);
}

TEST(CrashRecoveryTest, SameCrashSeedIdenticalRecovery) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  FaultOptions F;
  F.CrashRate = 2e-4;
  F.CrashSeed = 9;
  CheckpointOptions CK;
  CK.IntervalSteps = 5000;
  SimResult A = Simulator(P, CP, Spec, opts(4, Pv, true, F, CK)).run();
  SimResult B = Simulator(P, CP, Spec, opts(4, Pv, true, F, CK)).run();
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  EXPECT_EQ(A.MakespanSeconds, B.MakespanSeconds);
  EXPECT_EQ(A.Recovery.Crashes, B.Recovery.Crashes);
  EXPECT_EQ(A.Recovery.Rollbacks, B.Recovery.Rollbacks);
  EXPECT_EQ(A.Recovery.CheckpointsTaken, B.Recovery.CheckpointsTaken);
  EXPECT_EQ(A.Recovery.CheckpointBytes, B.Recovery.CheckpointBytes);
  EXPECT_EQ(A.Recovery.ReplayedSteps, B.Recovery.ReplayedSteps);
  EXPECT_EQ(A.MakespanSeconds, B.MakespanSeconds);
}

TEST(CrashRecoveryTest, CrashesCombineWithPacketLoss) {
  // Crash-stop recovery on top of a lossy network: drops, duplicated
  // packets and rollback replay all in play, still bit-exact.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  FaultOptions F;
  F.Seed = 42;
  F.DropRate = 0.05;
  F.DupRate = 0.02;
  F.CrashRate = 2e-4;
  F.CrashSeed = 9;
  CheckpointOptions CK;
  CK.IntervalSteps = 5000;
  Simulator Sim(P, CP, Spec, opts(4, Pv, true, F, CK));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.Recovery.Crashes, 1u);
  EXPECT_GT(R.Retransmissions, 0u);
  EXPECT_EQ(verifyArray0(P, Sim, Pv), 0u);
}

TEST(CrashRecoveryTest, CheckpointOnlyOverheadIsAccounted) {
  // Checkpointing with no crashes: snapshots cost time, nothing rolls
  // back, results stay bit-exact, and the telemetry separates the
  // checkpoint share from compute and protocol.
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 6}, {"N", 127}};
  SimResult Base = Simulator(P, CP, Spec, opts(4, Pv, true)).run();
  ASSERT_TRUE(Base.Ok) << Base.Error;
  CheckpointOptions CK;
  CK.IntervalSteps = 400;
  Simulator Sim(P, CP, Spec, opts(4, Pv, true, {}, CK));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GE(R.Recovery.CheckpointsTaken, 2u); // initial + >= 1 periodic
  EXPECT_GT(R.Recovery.CheckpointBytes, 0u);
  EXPECT_EQ(R.Recovery.Crashes, 0u);
  EXPECT_EQ(R.Recovery.Rollbacks, 0u);
  EXPECT_EQ(R.Recovery.RecoverySeconds, 0.0);
  EXPECT_GT(R.Recovery.CheckpointSeconds, 0.0);
  EXPECT_GT(R.Recovery.ComputeSeconds, 0.0);
  EXPECT_GT(R.MakespanSeconds, Base.MakespanSeconds);
  // Logical traffic untouched by checkpointing.
  EXPECT_EQ(R.Messages, Base.Messages);
  EXPECT_EQ(R.Words, Base.Words);
  EXPECT_EQ(verifyArray0(P, Sim, Pv), 0u);
}

TEST(CrashRecoveryTest, DefaultPathReportsNoRecoveryTelemetry) {
  // With --crash-rate 0 and checkpointing off the new layer must be
  // invisible: identical costs, all recovery telemetry zero.
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 4}, {"N", 127}};
  SimResult R = Simulator(P, CP, Spec, opts(4, Pv, false)).run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Recovery.CheckpointsTaken, 0u);
  EXPECT_EQ(R.Recovery.CheckpointBytes, 0u);
  EXPECT_EQ(R.Recovery.Crashes, 0u);
  EXPECT_EQ(R.Recovery.Rollbacks, 0u);
  EXPECT_EQ(R.Recovery.ReplayedSteps, 0u);
  EXPECT_EQ(R.Recovery.CheckpointSeconds, 0.0);
  EXPECT_EQ(R.Recovery.RecoverySeconds, 0.0);
  // The busy split still covers the makespan's work.
  EXPECT_GT(R.Recovery.ComputeSeconds, 0.0);
}
