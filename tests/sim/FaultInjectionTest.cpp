//===- tests/sim/FaultInjectionTest.cpp -----------------------*- C++ -*-===//
//
// The fault-injection harness and reliable transport: deterministic
// seed-driven schedules, bit-exact functional verification under drops,
// duplicates, delays and slowdowns, structured diagnostics on retry
// exhaustion and deadlock, and a provably untouched zero-fault path.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

Program shift() {
  return parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
}

CompileSpec shiftSpec(const Program &P, IntT Block) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, Block)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, Block));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, Block));
  return Spec;
}

Program lu() {
  return parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

SimOptions opts(IntT Procs, std::map<std::string, IntT> Params,
                bool Functional, FaultOptions Faults = {}) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = std::move(Params);
  SO.Functional = Functional;
  SO.CollapseLoops = !Functional;
  SO.Faults = Faults;
  return SO;
}

/// Checks every element of the final layout of array 0 against the
/// sequential interpreter; returns the number of mismatches/missing.
unsigned verifyArray0(const Program &P, Simulator &Sim,
                      const std::map<std::string, IntT> &Params) {
  SeqInterpreter Gold(P, Params);
  Gold.run();
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  std::vector<IntT> Sizes;
  for (const AffineExpr &D : P.array(0).DimSizes)
    Sizes.push_back(D.evaluate(Env));
  unsigned Bad = 0;
  std::vector<IntT> Idx(Sizes.size(), 0);
  bool Done = false;
  while (!Done) {
    auto Got = Sim.finalValue(0, Idx);
    if (!Got || *Got != Gold.arrayValue(0, Idx))
      ++Bad;
    for (unsigned K = Idx.size(); K-- > 0;) {
      if (++Idx[K] < Sizes[K])
        break;
      Idx[K] = 0;
      if (K == 0)
        Done = true;
    }
  }
  return Bad;
}

} // namespace

TEST(FaultInjectionTest, SameSeedIdenticalResult) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  FaultOptions F;
  F.Seed = 1234;
  F.DropRate = 0.15;
  F.DupRate = 0.05;
  F.MaxDelaySeconds = 300e-6;
  std::map<std::string, IntT> Pv = {{"T", 4}, {"N", 127}};
  SimResult A = Simulator(P, CP, Spec, opts(4, Pv, true, F)).run();
  SimResult B = Simulator(P, CP, Spec, opts(4, Pv, true, F)).run();
  ASSERT_TRUE(A.Ok) << A.Error;
  ASSERT_TRUE(B.Ok) << B.Error;
  EXPECT_EQ(A.MakespanSeconds, B.MakespanSeconds);
  EXPECT_EQ(A.Messages, B.Messages);
  EXPECT_EQ(A.Words, B.Words);
  EXPECT_EQ(A.Retransmissions, B.Retransmissions);
  EXPECT_EQ(A.DroppedPackets, B.DroppedPackets);
  EXPECT_EQ(A.DuplicatesSuppressed, B.DuplicatesSuppressed);
  EXPECT_EQ(A.AcksSent, B.AcksSent);
  EXPECT_GT(A.Retransmissions, 0u); // faults actually occurred
}

TEST(FaultInjectionTest, DifferentSeedsDifferentSchedule) {
  FaultOptions F;
  F.DropRate = 0.3;
  F.Seed = 1;
  FaultModel M1(F);
  F.Seed = 2;
  FaultModel M2(F);
  uint64_t Chan = FaultModel::channelId(0, {0}, {1});
  bool Differ = false;
  for (uint64_t Seq = 0; Seq != 256 && !Differ; ++Seq)
    Differ = M1.dropData(Chan, Seq, 0) != M2.dropData(Chan, Seq, 0);
  EXPECT_TRUE(Differ);
}

TEST(FaultInjectionTest, ScheduleIndependentOfQueryOrder) {
  FaultOptions F;
  F.DropRate = 0.5;
  F.Seed = 99;
  FaultModel M(F);
  uint64_t Chan = FaultModel::channelId(3, {1, 2}, {0, 1});
  bool Forward[32], Backward[32];
  for (unsigned I = 0; I != 32; ++I)
    Forward[I] = M.dropData(Chan, I, 0);
  for (unsigned I = 32; I-- > 0;)
    Backward[I] = M.dropData(Chan, I, 0);
  for (unsigned I = 0; I != 32; ++I)
    EXPECT_EQ(Forward[I], Backward[I]);
}

TEST(FaultInjectionTest, ShiftVerifiesUnderTenPercentDrop) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  FaultOptions F;
  F.Seed = 42;
  F.DropRate = 0.1;
  std::map<std::string, IntT> Pv = {{"T", 4}, {"N", 127}};
  Simulator Sim(P, CP, Spec, opts(4, Pv, true, F));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(verifyArray0(P, Sim, Pv), 0u);
}

TEST(FaultInjectionTest, LUVerifiesUnderTenPercentDrop) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram CP = compile(P, Spec);
  FaultOptions F;
  F.Seed = 42;
  F.DropRate = 0.1;
  std::map<std::string, IntT> Pv = {{"N", 24}};
  Simulator Sim(P, CP, Spec, opts(4, Pv, true, F));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Retransmissions, 0u);
  EXPECT_EQ(verifyArray0(P, Sim, Pv), 0u);
}

TEST(FaultInjectionTest, DuplicatesAreSuppressed) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  FaultOptions F;
  F.Seed = 7;
  F.DupRate = 0.5;
  std::map<std::string, IntT> Pv = {{"T", 4}, {"N", 127}};
  Simulator Sim(P, CP, Spec, opts(4, Pv, true, F));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.DuplicatesSuppressed, 0u);
  EXPECT_EQ(R.Retransmissions, 0u); // no drops: no retries needed
  EXPECT_EQ(verifyArray0(P, Sim, Pv), 0u);
}

TEST(FaultInjectionTest, DelayedDeliveryStillVerifies) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  FaultOptions F;
  F.Seed = 11;
  F.MaxDelaySeconds = 2e-3; // far beyond the retry timeout
  std::map<std::string, IntT> Pv = {{"T", 4}, {"N", 127}};
  Simulator Sim(P, CP, Spec, opts(4, Pv, true, F));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(verifyArray0(P, Sim, Pv), 0u);
}

TEST(FaultInjectionTest, RetryExhaustionYieldsStructuredDiagnostic) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  FaultOptions F;
  F.Seed = 5;
  F.DropRate = 1.0; // every transmission lost
  F.MaxRetries = 2;
  SimResult R = Simulator(P, CP, Spec,
                          opts(2, {{"T", 2}, {"N", 63}}, true, F))
                    .run();
  ASSERT_FALSE(R.Ok);
  ASSERT_FALSE(R.Diag.RetryExhausted.empty());
  EXPECT_EQ(R.Diag.RetryExhausted.front().Attempts, 3u); // 1 + 2 retries
  ASSERT_FALSE(R.Diag.StuckProcs.empty());
  EXPECT_NE(R.Error.find("retry exhausted"), std::string::npos)
      << R.Error;
  EXPECT_NE(R.Error.find("deadlock"), std::string::npos) << R.Error;
}

TEST(FaultInjectionTest, DeadlockDiagnosticNamesStuckProcessors) {
  // Non-fault deadlock (sabotaged peer) must also produce the structured
  // report: which processors, which channel, which peer.
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  std::function<void(std::vector<SpmdStmt> &)> Break =
      [&](std::vector<SpmdStmt> &Stmts) {
        for (SpmdStmt &S : Stmts) {
          if (S.K == SpmdStmt::Kind::Recv)
            for (AffineExpr &E : S.Peer)
              E = E.plusConst(1000);
          Break(S.Body);
        }
      };
  Break(CP.Spmd.Top);
  SimResult R =
      Simulator(P, CP, Spec, opts(2, {{"T", 2}, {"N", 63}}, false)).run();
  ASSERT_FALSE(R.Ok);
  ASSERT_FALSE(R.Diag.StuckProcs.empty());
  const PendingRecv &Pr = R.Diag.StuckProcs.front();
  EXPECT_FALSE(Pr.Coord.empty());
  EXPECT_FALSE(Pr.Peer.empty());
  // The rendering names the stuck processor's coordinate.
  std::string Name = "vp(" + std::to_string(Pr.Coord[0]) + ")";
  EXPECT_NE(R.Error.find(Name), std::string::npos) << R.Error;
  EXPECT_GT(R.Diag.TotalProcs, 0u);
}

TEST(FaultInjectionTest, ZeroFaultPathIsBitExact) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 4}, {"N", 127}};
  SimResult Base = Simulator(P, CP, Spec, opts(4, Pv, false)).run();
  FaultOptions F; // all defaults: transport bypassed
  F.Seed = 77;    // an unused seed must change nothing
  SimResult Same = Simulator(P, CP, Spec, opts(4, Pv, false, F)).run();
  ASSERT_TRUE(Base.Ok && Same.Ok);
  EXPECT_EQ(Base.MakespanSeconds, Same.MakespanSeconds);
  EXPECT_EQ(Base.Messages, Same.Messages);
  EXPECT_EQ(Base.Words, Same.Words);
  EXPECT_EQ(Same.Retransmissions, 0u);
  EXPECT_EQ(Same.AcksSent, 0u);
  EXPECT_EQ(Same.DuplicatesSuppressed, 0u);
  EXPECT_EQ(Same.DroppedPackets, 0u);
}

TEST(FaultInjectionTest, DropsInflateMakespan) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 4}, {"N", 127}};
  FaultOptions Reliable;
  Reliable.AlwaysReliable = true; // protocol overhead only
  FaultOptions Lossy = Reliable;
  Lossy.Seed = 42;
  Lossy.DropRate = 0.2;
  SimResult R0 =
      Simulator(P, CP, Spec, opts(4, Pv, true, Reliable)).run();
  SimResult R1 = Simulator(P, CP, Spec, opts(4, Pv, true, Lossy)).run();
  ASSERT_TRUE(R0.Ok && R1.Ok) << R0.Error << R1.Error;
  EXPECT_EQ(R0.Retransmissions, 0u);
  EXPECT_GT(R1.Retransmissions, 0u);
  EXPECT_GT(R1.MakespanSeconds, R0.MakespanSeconds);
  // Counters stay logical: the same app-level messages flow.
  EXPECT_EQ(R0.Messages, R1.Messages);
  EXPECT_EQ(R0.Words, R1.Words);
}

TEST(FaultInjectionTest, IntraPhysicalChannelsSequencedUnderTransport) {
  // Regression: messages between virtual processors folded onto the
  // same physical processor bypass the lossy network, but the receive
  // path still matches sequence numbers whenever the transport is
  // active. They must therefore be sequenced too, or the second message
  // on an intra-physical channel never matches and the run deadlocks.
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 16 to N {
    X[i] = X[i - 16];
  }
}
)");
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 4)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 4));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 4));
  CompiledProgram CP = compile(P, Spec);
  // 16 virtual processors on 4 physical: the distance-16 shift crosses
  // exactly 4 virtual processors, so every message is intra-physical.
  FaultOptions F;
  F.Seed = 21;
  F.DropRate = 0.05;
  std::map<std::string, IntT> Pv = {{"T", 3}, {"N", 63}};
  Simulator Sim(P, CP, Spec, opts(4, Pv, true, F));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.IntraMessages, 0u);
  EXPECT_EQ(verifyArray0(P, Sim, Pv), 0u);
}

TEST(FaultInjectionTest, SlowdownInflatesMakespanOnly) {
  Program P = shift();
  CompileSpec Spec = shiftSpec(P, 8);
  CompiledProgram CP = compile(P, Spec);
  std::map<std::string, IntT> Pv = {{"T", 4}, {"N", 127}};
  SimResult Base = Simulator(P, CP, Spec, opts(4, Pv, false)).run();
  FaultOptions F;
  F.Seed = 3;
  F.MaxSlowdown = 4.0;
  SimResult Slow = Simulator(P, CP, Spec, opts(4, Pv, false, F)).run();
  ASSERT_TRUE(Base.Ok && Slow.Ok);
  EXPECT_GT(Slow.MakespanSeconds, Base.MakespanSeconds);
  // A compute slowdown neither drops nor retransmits anything.
  EXPECT_EQ(Slow.Retransmissions, 0u);
  EXPECT_EQ(Slow.Messages, Base.Messages);
  EXPECT_EQ(Slow.Words, Base.Words);
  EXPECT_EQ(Slow.Flops, Base.Flops);
}
