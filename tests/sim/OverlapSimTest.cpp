//===- tests/sim/OverlapSimTest.cpp ---------------------------*- C++ -*-===//
//
// Differential suite for early sends (DESIGN.md §11): compiling with
// CompilerOptions::EarlySends changes WHEN messages cost time, never
// WHAT they carry. Early-on and early-off runs must produce identical
// final arrays, identical logical counters (messages, words, flops,
// events), identical transport totals under lossy schedules, and
// identical crash/recovery telemetry — while the clean makespan
// strictly improves. Early-on runs must additionally stay bit-identical
// across --sim-threads counts, and SimOptions::EarlySends=false must
// reduce a marked program to exactly the blocking engine.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>
#include <optional>

using namespace dmcc;

namespace {

Program lu() {
  return parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
}

CompileSpec luSpec(const Program &P) {
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);
  return Spec;
}

Program stencil() {
  return parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
array Y[N + 1];
for t = 0 to T {
  for i = 1 to N - 1 {
    Y[i] = X[i - 1] + X[i] + X[i + 1];
  }
  for i2 = 1 to N - 1 {
    X[i2] = Y[i2];
  }
}
)");
}

CompileSpec stencilSpec(const Program &P) {
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 16)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 16)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 16, /*OverlapLo=*/1,
                                        /*OverlapHi=*/1));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, 16));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 16));
  Spec.FinalData.emplace(1, blockData(P, 1, 0, 16));
  return Spec;
}

CompiledProgram compileLeg(const Program &P, const CompileSpec &Spec,
                           bool Early) {
  CompilerOptions Opts;
  Opts.EarlySends = Early;
  return compile(P, Spec, Opts);
}

SimOptions opts(IntT Procs, std::map<std::string, IntT> Params,
                bool Functional, unsigned Threads,
                FaultOptions Faults = {},
                CheckpointOptions Checkpoint = {}) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = std::move(Params);
  SO.Functional = Functional;
  SO.CollapseLoops = !Functional;
  SO.Faults = Faults;
  SO.Checkpoint = Checkpoint;
  SO.Threads = Threads;
  return SO;
}

/// One simulation leg: the full result plus every element of array 0
/// under the final layout (nullopt where nobody holds it).
struct RunOut {
  SimResult R;
  std::vector<std::optional<double>> A0;
};

RunOut runLeg(const Program &P, const CompiledProgram &CP,
              const CompileSpec &Spec, SimOptions SO,
              const std::map<std::string, IntT> &Params) {
  Simulator Sim(P, CP, Spec, std::move(SO));
  RunOut O;
  O.R = Sim.run();
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  std::vector<IntT> Sizes;
  for (const AffineExpr &D : P.array(0).DimSizes)
    Sizes.push_back(D.evaluate(Env));
  std::vector<IntT> Idx(Sizes.size(), 0);
  bool Done = Sizes.empty();
  while (!Done) {
    O.A0.push_back(Sim.finalValue(0, Idx));
    for (unsigned K = Idx.size(); K-- > 0;) {
      if (++Idx[K] < Sizes[K])
        break;
      Idx[K] = 0;
      if (K == 0)
        Done = true;
    }
  }
  return O;
}

/// What early sends must NOT change: array contents, logical cost
/// counters, transport totals, recovery telemetry, diagnostics. Clocks
/// (makespan, busy time) are deliberately excluded — moving latency off
/// the critical path is the whole point.
void expectSameObservables(const RunOut &A, const RunOut &B,
                           const std::string &Tag) {
  EXPECT_EQ(A.R.Ok, B.R.Ok) << Tag;
  EXPECT_EQ(A.R.Error, B.R.Error) << Tag;
  EXPECT_EQ(A.R.Messages, B.R.Messages) << Tag;
  EXPECT_EQ(A.R.IntraMessages, B.R.IntraMessages) << Tag;
  EXPECT_EQ(A.R.Words, B.R.Words) << Tag;
  EXPECT_EQ(A.R.Flops, B.R.Flops) << Tag;
  EXPECT_EQ(A.R.ComputeIterations, B.R.ComputeIterations) << Tag;
  EXPECT_EQ(A.R.TotalEvents, B.R.TotalEvents) << Tag;
  EXPECT_EQ(A.R.Retransmissions, B.R.Retransmissions) << Tag;
  EXPECT_EQ(A.R.DroppedPackets, B.R.DroppedPackets) << Tag;
  EXPECT_EQ(A.R.DuplicatesSuppressed, B.R.DuplicatesSuppressed) << Tag;
  EXPECT_EQ(A.R.AcksSent, B.R.AcksSent) << Tag;
  EXPECT_EQ(A.R.Recovery.CheckpointsTaken, B.R.Recovery.CheckpointsTaken)
      << Tag;
  EXPECT_EQ(A.R.Recovery.CheckpointBytes, B.R.Recovery.CheckpointBytes)
      << Tag;
  EXPECT_EQ(A.R.Recovery.Crashes, B.R.Recovery.Crashes) << Tag;
  EXPECT_EQ(A.R.Recovery.Rollbacks, B.R.Recovery.Rollbacks) << Tag;
  EXPECT_EQ(A.R.Recovery.ReplayedSteps, B.R.Recovery.ReplayedSteps)
      << Tag;
  EXPECT_EQ(A.R.Recovery.ReplayedMessages, B.R.Recovery.ReplayedMessages)
      << Tag;
  ASSERT_EQ(A.A0.size(), B.A0.size()) << Tag;
  unsigned Bad = 0;
  for (unsigned I = 0; I != A.A0.size(); ++I)
    if (A.A0[I] != B.A0[I])
      ++Bad;
  EXPECT_EQ(Bad, 0u) << Tag << ": array contents diverge";
}

/// Bit-identical comparison (the ThreadedSimTest contract) plus the
/// overlap telemetry: used for early-on legs across thread counts and
/// for the SimOptions::EarlySends=false reduction.
void expectIdentical(const RunOut &A, const RunOut &B,
                     const std::string &Tag) {
  expectSameObservables(A, B, Tag);
  EXPECT_EQ(A.R.MakespanSeconds, B.R.MakespanSeconds) << Tag;
  ASSERT_EQ(A.R.PhysBusy.size(), B.R.PhysBusy.size()) << Tag;
  for (unsigned I = 0; I != A.R.PhysBusy.size(); ++I)
    EXPECT_EQ(A.R.PhysBusy[I], B.R.PhysBusy[I]) << Tag << " phys " << I;
  EXPECT_EQ(A.R.Recovery.ComputeSeconds, B.R.Recovery.ComputeSeconds)
      << Tag;
  EXPECT_EQ(A.R.Recovery.ProtocolSeconds, B.R.Recovery.ProtocolSeconds)
      << Tag;
  EXPECT_EQ(A.R.Recovery.CheckpointSeconds,
            B.R.Recovery.CheckpointSeconds)
      << Tag;
  EXPECT_EQ(A.R.Recovery.RecoverySeconds, B.R.Recovery.RecoverySeconds)
      << Tag;
  EXPECT_EQ(A.R.Overlap.EarlySends, B.R.Overlap.EarlySends) << Tag;
  EXPECT_EQ(A.R.Overlap.DeferredSeconds, B.R.Overlap.DeferredSeconds)
      << Tag;
  EXPECT_EQ(A.R.Overlap.ExposedSeconds, B.R.Overlap.ExposedSeconds)
      << Tag;
}

} // namespace

TEST(OverlapSim, CompilerMarksSafeSendsNonblocking) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram Off = compileLeg(P, Spec, false);
  CompiledProgram On = compileLeg(P, Spec, true);
  EXPECT_EQ(Off.Stats.NumEarlySends, 0u);
  EXPECT_GT(On.Stats.NumEarlySends, 0u);
  // The analysis is an annotation pass: same comm plans, same fragments
  // modulo the nonblocking marks.
  EXPECT_EQ(Off.Comms.size(), On.Comms.size());
  // LU's pivot-row broadcasts print as imulticast; plain early sends
  // would print as isend.
  EXPECT_NE(On.Spmd.str().find("imulticast"), std::string::npos);
  EXPECT_EQ(Off.Spmd.str().find("imulticast"), std::string::npos);
  EXPECT_EQ(Off.Spmd.str().find("isend"), std::string::npos);
}

TEST(OverlapSim, CleanLUIdenticalArraysFasterMakespan) {
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram Off = compileLeg(P, Spec, false);
  CompiledProgram On = compileLeg(P, Spec, true);
  std::map<std::string, IntT> Pv = {{"N", 48}};
  RunOut A = runLeg(P, Off, Spec, opts(8, Pv, true, 1), Pv);
  RunOut B = runLeg(P, On, Spec, opts(8, Pv, true, 1), Pv);
  ASSERT_TRUE(A.R.Ok) << A.R.Error;
  ASSERT_TRUE(B.R.Ok) << B.R.Error;
  // The blocking leg is gold-verified, so observable equality proves
  // the early leg correct too.
  SeqInterpreter Gold(P, Pv);
  Gold.run();
  unsigned Bad = 0, K = 0;
  for (IntT I = 0; I <= 48; ++I)
    for (IntT J = 0; J <= 48; ++J, ++K)
      if (!A.A0[K] || *A.A0[K] != Gold.arrayValue(0, {I, J}))
        ++Bad;
  ASSERT_EQ(Bad, 0u);
  expectSameObservables(A, B, "lu clean");
  EXPECT_LT(B.R.MakespanSeconds, A.R.MakespanSeconds);
  EXPECT_EQ(A.R.Overlap.EarlySends, 0u);
  EXPECT_GT(B.R.Overlap.EarlySends, 0u);
  EXPECT_GT(B.R.Overlap.DeferredSeconds, 0.0);
  EXPECT_GE(B.R.Overlap.hiddenSeconds(), 0.0);
}

TEST(OverlapSim, CleanStencilIdenticalArraysFasterMakespan) {
  Program P = stencil();
  CompileSpec Spec = stencilSpec(P);
  CompiledProgram Off = compileLeg(P, Spec, false);
  CompiledProgram On = compileLeg(P, Spec, true);
  std::map<std::string, IntT> Pv = {{"T", 5}, {"N", 63}};
  RunOut A = runLeg(P, Off, Spec, opts(4, Pv, true, 1), Pv);
  RunOut B = runLeg(P, On, Spec, opts(4, Pv, true, 1), Pv);
  ASSERT_TRUE(A.R.Ok) << A.R.Error;
  ASSERT_TRUE(B.R.Ok) << B.R.Error;
  expectSameObservables(A, B, "stencil clean");
  EXPECT_LT(B.R.MakespanSeconds, A.R.MakespanSeconds);
  EXPECT_GT(B.R.Overlap.EarlySends, 0u);
}

TEST(OverlapSim, PerformanceModeMakespanImproves) {
  // Performance mode collapses loops into closed-form costs; the
  // overlap accounting must hold there too (this is the bench path).
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram Off = compileLeg(P, Spec, false);
  CompiledProgram On = compileLeg(P, Spec, true);
  std::map<std::string, IntT> Pv = {{"N", 96}};
  RunOut A = runLeg(P, Off, Spec, opts(8, Pv, false, 1), Pv);
  RunOut B = runLeg(P, On, Spec, opts(8, Pv, false, 1), Pv);
  ASSERT_TRUE(A.R.Ok) << A.R.Error;
  ASSERT_TRUE(B.R.Ok) << B.R.Error;
  expectSameObservables(A, B, "lu perf");
  EXPECT_LT(B.R.MakespanSeconds, A.R.MakespanSeconds);
  EXPECT_GT(B.R.Overlap.DeferredSeconds, 0.0);
}

TEST(OverlapSim, LossyTransportSameTotalsAcrossSeeds) {
  // The fault schedule is keyed by (channel, sequence, attempt) — all
  // unchanged by early issue — so drops, duplicates and retransmission
  // totals must match the blocking engine exactly, per seed.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram Off = compileLeg(P, Spec, false);
  CompiledProgram On = compileLeg(P, Spec, true);
  std::map<std::string, IntT> Pv = {{"N", 32}};
  for (uint64_t Seed : {1u, 2u, 3u}) {
    FaultOptions F;
    F.Seed = Seed;
    F.DropRate = 0.05;
    F.DupRate = 0.05;
    F.MaxDelaySeconds = 2e-4;
    F.MaxSlowdown = 1.5;
    RunOut A = runLeg(P, Off, Spec, opts(4, Pv, true, 1, F), Pv);
    RunOut B = runLeg(P, On, Spec, opts(4, Pv, true, 1, F), Pv);
    ASSERT_TRUE(A.R.Ok) << "seed " << Seed << ": " << A.R.Error;
    ASSERT_TRUE(B.R.Ok) << "seed " << Seed << ": " << B.R.Error;
    ASSERT_GT(A.R.Retransmissions + A.R.DuplicatesSuppressed, 0u)
        << "seed " << Seed << " exercised no transport machinery";
    expectSameObservables(A, B, "lu-fault seed=" + std::to_string(Seed));
    EXPECT_GT(B.R.Overlap.EarlySends, 0u) << "seed " << Seed;
  }
}

TEST(OverlapSim, EarlyLegsBitIdenticalAcrossThreadCounts) {
  // The NIC clocks are per-physical single-writer state and the overlap
  // telemetry is summed in fixed processor order, so the threaded
  // engine must reproduce every early-send observable bit-for-bit.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram On = compileLeg(P, Spec, true);
  std::map<std::string, IntT> Pv = {{"N", 48}};
  RunOut Base = runLeg(P, On, Spec, opts(8, Pv, true, 1), Pv);
  ASSERT_TRUE(Base.R.Ok) << Base.R.Error;
  ASSERT_GT(Base.R.Overlap.EarlySends, 0u);
  for (unsigned T : {2u, 8u}) {
    RunOut Leg = runLeg(P, On, Spec, opts(8, Pv, true, T), Pv);
    expectIdentical(Base, Leg, "lu-early threads=" + std::to_string(T));
  }
}

TEST(OverlapSim, LossyEarlyLegsBitIdenticalAcrossThreadCounts) {
  Program P = stencil();
  CompileSpec Spec = stencilSpec(P);
  CompiledProgram On = compileLeg(P, Spec, true);
  std::map<std::string, IntT> Pv = {{"T", 5}, {"N", 63}};
  FaultOptions F;
  F.Seed = 9;
  F.DropRate = 0.08;
  F.DupRate = 0.04;
  F.MaxDelaySeconds = 1e-4;
  RunOut Base = runLeg(P, On, Spec, opts(4, Pv, true, 1, F), Pv);
  ASSERT_TRUE(Base.R.Ok) << Base.R.Error;
  for (unsigned T : {2u, 8u}) {
    RunOut Leg = runLeg(P, On, Spec, opts(4, Pv, true, T, F), Pv);
    expectIdentical(Base, Leg,
                    "stencil-early-fault threads=" + std::to_string(T));
  }
}

TEST(OverlapSim, CrashRecoverySameTelemetryAcrossSeeds) {
  // Crash schedules fire on logical steps and checkpoint lines are
  // drawn at step counts; early sends change neither, so the recovery
  // telemetry (and the recovered arrays) must match the blocking run.
  // In-flight early sends replay through the same sequence-number
  // window after rollback.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram Off = compileLeg(P, Spec, false);
  CompiledProgram On = compileLeg(P, Spec, true);
  std::map<std::string, IntT> Pv = {{"N", 64}};
  for (uint64_t CrashSeed : {11u, 22u}) {
    FaultOptions F;
    F.CrashRate = 4e-5;
    F.CrashSeed = CrashSeed;
    CheckpointOptions CK;
    CK.IntervalSteps = 40000;
    RunOut A = runLeg(P, Off, Spec, opts(4, Pv, true, 1, F, CK), Pv);
    RunOut B = runLeg(P, On, Spec, opts(4, Pv, true, 1, F, CK), Pv);
    ASSERT_TRUE(A.R.Ok) << "seed " << CrashSeed << ": " << A.R.Error;
    ASSERT_TRUE(B.R.Ok) << "seed " << CrashSeed << ": " << B.R.Error;
    ASSERT_GE(A.R.Recovery.Crashes, 1u) << "seed " << CrashSeed;
    ASSERT_GE(A.R.Recovery.Rollbacks, 1u) << "seed " << CrashSeed;
    expectSameObservables(A, B,
                          "lu-crash seed=" + std::to_string(CrashSeed));
    for (unsigned T : {2u, 8u}) {
      RunOut Leg = runLeg(P, On, Spec, opts(4, Pv, true, T, F, CK), Pv);
      expectIdentical(B, Leg,
                      "lu-crash-early seed=" + std::to_string(CrashSeed) +
                          " threads=" + std::to_string(T));
    }
  }
}

TEST(OverlapSim, UnrecoverableCrashSameDiagnostics) {
  // No checkpointing: the first crash is terminal. The structured
  // diagnostic (dead processors, stuck receivers, buffered-ahead
  // counts) is built from logical state only and must not change.
  Program P = stencil();
  CompileSpec Spec = stencilSpec(P);
  CompiledProgram Off = compileLeg(P, Spec, false);
  CompiledProgram On = compileLeg(P, Spec, true);
  std::map<std::string, IntT> Pv = {{"T", 5}, {"N", 63}};
  FaultOptions F;
  F.CrashRate = 2e-3;
  F.CrashSeed = 5;
  RunOut A = runLeg(P, Off, Spec, opts(4, Pv, true, 1, F), Pv);
  RunOut B = runLeg(P, On, Spec, opts(4, Pv, true, 1, F), Pv);
  ASSERT_FALSE(A.R.Ok);
  ASSERT_FALSE(B.R.Ok);
  ASSERT_GE(A.R.Recovery.Crashes, 1u);
  expectSameObservables(A, B, "stencil-dead");
}

TEST(OverlapSim, SimKnobOffReducesToBlockingEngine) {
  // SimOptions::EarlySends=false on a marked program must be
  // bit-identical — clocks included — to running the unmarked program:
  // the runtime knob fully disables the NIC model.
  Program P = lu();
  CompileSpec Spec = luSpec(P);
  CompiledProgram Off = compileLeg(P, Spec, false);
  CompiledProgram On = compileLeg(P, Spec, true);
  std::map<std::string, IntT> Pv = {{"N", 48}};
  RunOut A = runLeg(P, Off, Spec, opts(8, Pv, true, 1), Pv);
  SimOptions SO = opts(8, Pv, true, 1);
  SO.EarlySends = false;
  RunOut B = runLeg(P, On, Spec, SO, Pv);
  ASSERT_TRUE(A.R.Ok) << A.R.Error;
  expectIdentical(A, B, "early-sim-knob-off");
  EXPECT_EQ(B.R.Overlap.EarlySends, 0u);
}
