//===- tests/baseline/LocationCentricTest.cpp -----------------*- C++ -*-===//
//
// The Section 2 baseline: dependence levels, regular sections, and the
// quantitative comparisons of Sections 2.2.2/2.2.3.
//
//===----------------------------------------------------------------------===//

#include "baseline/LocationCentric.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace dmcc;

TEST(LocationCentricTest, ShiftLoopDependenceLevels) {
  // X[i] = X[i-3]: dependence carried at level 2 (the i loop) and, across
  // outer iterations, at level 1.
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
  auto Deps = dependencesOnto(P, 0, 0);
  unsigned Levels = 0;
  for (const Dependence &D : Deps)
    Levels |= 1u << D.Level;
  EXPECT_TRUE(Levels & (1u << 1));
  EXPECT_TRUE(Levels & (1u << 2));
  EXPECT_EQ(maxDependenceLevel(P, 0, 0), 2u);
}

TEST(LocationCentricTest, PrivatizationFalseLevel1Dependence) {
  // Section 2.2.2: alias analysis reports a level-1 dependence between
  // the two inner loops (locations overlap across outer iterations) even
  // though no value flows across them — exactly the imprecision that
  // serializes the outer loop.
  Program P = parseProgramOrDie(R"(
param N;
array w[N + 1];
array out[N + 1][N + 1];
for i = 0 to N {
  for j = 0 to N {
    w[j] = i + j;
  }
  for j2 = 0 to N {
    out[i][j2] = w[j2];
  }
}
)");
  auto Deps = dependencesOnto(P, 1, 0);
  bool Level1 = false;
  for (const Dependence &D : Deps)
    if (D.Level == 1)
      Level1 = true;
  EXPECT_TRUE(Level1);
}

TEST(LocationCentricTest, SectionOfTriangleRead) {
  Program P = parseProgramOrDie(R"(
param N;
array A[2 * N];
array B[2 * N];
for i = 0 to N {
  for j = i to N {
    B[j] = A[i + j];
  }
}
)");
  std::map<std::string, IntT> Params{{"N", 10}};
  // With i pinned to 4: A[8..14].
  RegularSection S = sectionOf(P, 0, 0, {4}, Params);
  ASSERT_FALSE(S.Empty);
  EXPECT_EQ(S.Lo[0], 8);
  EXPECT_EQ(S.Hi[0], 14);
  EXPECT_EQ(S.volume(), 7u);
}

TEST(LocationCentricTest, ProducerConsumerValueVsLocation) {
  // Section 2.2.2: "at most one word needs to be transferred in each
  // iteration of the outermost loop" under value analysis, while the
  // location-centric scheme re-fetches the whole non-local section every
  // outer iteration.
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1];
array Y[N + 1];
for i = 0 to N {
  X[i] = i;
  for j = max(i, 1) to N {
    Y[j] = Y[j] + X[j - 1];
  }
}
)");
  std::map<std::string, IntT> Params{{"N", 15}};
  Decomposition DataD = blockData(P, 0, 0, 4); // X in blocks of 4
  TrafficEstimate Loc = locationCentricTraffic(P, 1, 1, DataD, Params);
  TrafficEstimate Val = valueCentricTraffic(P, 1, 1, DataD, Params);
  EXPECT_GT(Loc.Words, Val.Words * 4);
  EXPECT_GT(Val.Words, 0u);
}

TEST(LocationCentricTest, SparseAccessSectionBlowup) {
  // Section 2.2.3: A[1000i + j] summarized as one regular section
  // transfers ~20x more data than is accessed.
  Program P = parseProgramOrDie(R"(
param M;
array A[101000];
array B[200];
for i = 1 to 100 {
  for j = i to 100 {
    B[i + j] = A[1000 * i + j];
  }
}
)");
  std::map<std::string, IntT> Params{{"M", 0}};
  // No dependence: the whole access is hoisted into one prefetch whose
  // section spans [1001, 100100].
  EXPECT_EQ(maxDependenceLevel(P, 0, 0), 0u);
  RegularSection S = sectionOf(P, 0, 0, {}, Params);
  EXPECT_EQ(S.Lo[0], 1001);
  EXPECT_EQ(S.Hi[0], 100100);
  uint64_t Accessed = 0;
  for (IntT I = 1; I <= 100; ++I)
    Accessed += static_cast<uint64_t>(100 - I + 1);
  double Blowup = static_cast<double>(S.volume()) /
                  static_cast<double>(Accessed);
  EXPECT_GT(Blowup, 15.0);
  EXPECT_LT(Blowup, 25.0);
}

TEST(LocationCentricTest, WasteIsZeroForDenseAccesses) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array B[N + 1];
for i = 0 to N {
  B[i] = A[N - i];
}
)");
  std::map<std::string, IntT> Params{{"N", 11}};
  Decomposition DataD = blockData(P, 0, 0, 4);
  TrafficEstimate Loc = locationCentricTraffic(P, 0, 0, DataD, Params);
  EXPECT_EQ(Loc.WastedWords, 0u);
  EXPECT_GT(Loc.Words, 0u);
  // Dense reversal: both schemes move the same volume.
  TrafficEstimate Val = valueCentricTraffic(P, 0, 0, DataD, Params);
  EXPECT_EQ(Loc.Words, Val.Words);
}
