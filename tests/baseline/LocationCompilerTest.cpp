//===- tests/baseline/LocationCompilerTest.cpp ----------------*- C++ -*-===//
//
// The location-centric compiler must be *correct* (bitwise-identical
// results on the simulator) and measurably *worse* in traffic than the
// value-centric compiler on the Section 2.2 workloads — that is the
// paper's whole point.
//
//===----------------------------------------------------------------------===//

#include "baseline/LocationCompiler.h"
#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

struct RunOut {
  SimResult R;
  bool Verified = false;
};

RunOut runAndVerify(const Program &P, const CompiledProgram &CP,
                    const CompileSpec &Spec, IntT Procs,
                    const std::map<std::string, IntT> &Params) {
  SeqInterpreter Gold(P, Params);
  Gold.run();
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = Params;
  Simulator Sim(P, CP, Spec, SO);
  RunOut Out;
  Out.R = Sim.run();
  if (!Out.R.Ok)
    return Out;
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  for (const auto &[AId, FD] : Spec.FinalData) {
    (void)FD;
    std::vector<IntT> Sizes;
    for (const AffineExpr &D : P.array(AId).DimSizes)
      Sizes.push_back(D.evaluate(Env));
    std::vector<IntT> Idx(Sizes.size(), 0);
    bool Done = Sizes.empty();
    while (!Done) {
      auto Got = Sim.finalValue(AId, Idx);
      if (!Got || *Got != Gold.arrayValue(AId, Idx))
        return Out;
      for (unsigned K = Idx.size(); K-- > 0;) {
        if (++Idx[K] < Sizes[K])
          break;
        Idx[K] = 0;
        if (K == 0)
          Done = true;
      }
    }
  }
  Out.Verified = true;
  return Out;
}

} // namespace

TEST(LocationCompilerTest, ShiftKernelCorrectAndChattier) {
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3] + 1;
  }
}
)");
  std::map<std::string, IntT> Params{{"T", 4}, {"N", 31}};
  LocationSpec LS;
  LS.Data.emplace(0, blockData(P, 0, 0, 4));
  CompileSpec LocSpec;
  CompiledProgram Loc = compileLocationCentric(P, LS, LocSpec);
  RunOut RL = runAndVerify(P, Loc, LocSpec, 2, Params);
  ASSERT_TRUE(RL.R.Ok) << RL.R.Error;
  EXPECT_TRUE(RL.Verified);

  // Value-centric on the same configuration.
  CompileSpec VSpec = LocSpec;
  CompiledProgram Val = compile(P, VSpec);
  RunOut RV = runAndVerify(P, Val, VSpec, 2, Params);
  ASSERT_TRUE(RV.R.Ok) << RV.R.Error;
  EXPECT_TRUE(RV.Verified);
  // Identical needs here: both fetch the 3 boundary words per t. The
  // location-centric one must not be better.
  EXPECT_GE(RL.R.Words, RV.R.Words);
}

TEST(LocationCompilerTest, ProducerConsumerRefetchesEveryIteration) {
  // Section 2.2.2: the baseline re-fetches the section each outer
  // iteration; exact data flow moves one fresh word.
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1];
array Y[N + 1];
for i = 1 to N {
  X[i] = i;
  for j = 1 to N {
    Y[j] = Y[j] + X[j - 1];
  }
}
)");
  std::map<std::string, IntT> Params{{"N", 15}};
  LocationSpec LS;
  LS.Data.emplace(0, blockData(P, 0, 0, 4));
  LS.Data.emplace(1, blockData(P, 1, 0, 4));
  CompileSpec LocSpec;
  CompiledProgram Loc = compileLocationCentric(P, LS, LocSpec);
  RunOut RL = runAndVerify(P, Loc, LocSpec, 4, Params);
  ASSERT_TRUE(RL.R.Ok) << RL.R.Error;
  EXPECT_TRUE(RL.Verified);

  CompileSpec VSpec = LocSpec;
  CompiledProgram Val = compile(P, VSpec);
  RunOut RV = runAndVerify(P, Val, VSpec, 4, Params);
  ASSERT_TRUE(RV.R.Ok) << RV.R.Error;
  EXPECT_TRUE(RV.Verified);
  // The baseline moves strictly more data.
  EXPECT_GT(RL.R.Words, RV.R.Words);
  EXPECT_GT(RV.R.Words, 0u);
}

TEST(LocationCompilerTest, ReversalPrefetchIsOneShot) {
  // No dependence: one up-front prefetch of the whole non-local section.
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array B[N + 1];
for i = 0 to N {
  A[i] = B[N - i] + 1;
}
)");
  std::map<std::string, IntT> Params{{"N", 15}};
  LocationSpec LS;
  LS.Data.emplace(0, blockData(P, 0, 0, 4));
  LS.Data.emplace(1, blockData(P, 1, 0, 4));
  CompileSpec LocSpec;
  CompiledProgram Loc = compileLocationCentric(P, LS, LocSpec);
  RunOut RL = runAndVerify(P, Loc, LocSpec, 4, Params);
  ASSERT_TRUE(RL.R.Ok) << RL.R.Error;
  EXPECT_TRUE(RL.Verified);
  // The mirrored element of every read lives on the opposite block, so
  // all 16 words cross, one message per (owner, reader) pair.
  EXPECT_EQ(RL.R.Messages, 4u);
  EXPECT_EQ(RL.R.Words, 16u);
}

TEST(LocationCompilerTest, LUCorrectUnderLocationScheme) {
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
  std::map<std::string, IntT> Params{{"N", 9}};
  LocationSpec LS;
  LS.Data.emplace(0, cyclicData(P, 0, 0));
  CompileSpec LocSpec;
  CompiledProgram Loc = compileLocationCentric(P, LS, LocSpec);
  RunOut RL = runAndVerify(P, Loc, LocSpec, 3, Params);
  ASSERT_TRUE(RL.R.Ok) << RL.R.Error;
  EXPECT_TRUE(RL.Verified);

  CompileSpec VSpec = LocSpec;
  CompiledProgram Val = compile(P, VSpec);
  RunOut RV = runAndVerify(P, Val, VSpec, 3, Params);
  ASSERT_TRUE(RV.R.Ok) << RV.R.Error;
  EXPECT_TRUE(RV.Verified);
  // Both correct; the value-centric one must not move more data.
  EXPECT_LE(RV.R.Words, RL.R.Words);
}
