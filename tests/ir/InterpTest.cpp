//===- tests/ir/InterpTest.cpp --------------------------------*- C++ -*-===//

#include "frontend/Parser.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

using namespace dmcc;

TEST(InterpTest, SimpleAssignment) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N];
for i = 0 to N - 1 { A[i] = i + 1; }
)");
  SeqInterpreter I(P, {{"N", 5}});
  I.run();
  EXPECT_EQ(I.executedStatements(), 5u);
  for (IntT K = 0; K < 5; ++K)
    EXPECT_DOUBLE_EQ(I.arrayValue(0, {K}), static_cast<double>(K + 1));
}

TEST(InterpTest, ShiftReadsPriorValues) {
  // X[i] = X[i-3]: values propagate forward by 3 each t iteration.
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
  SeqInterpreter I(P, {{"T", 2}, {"N", 9}});
  I.run();
  // After any number of sweeps, X[i] ends up equal to the initial value of
  // X[i mod 3] (chains propagate the base cell forward).
  for (IntT K = 3; K <= 9; ++K)
    EXPECT_DOUBLE_EQ(I.arrayValue(0, {K}), initialArrayValue(0, K % 3));
}

TEST(InterpTest, LastWriterTracking) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N];
for i = 0 to N - 1 { A[i] = i; }
for j = 0 to N - 2 { A[j] = A[j + 1]; }
)");
  SeqInterpreter I(P, {{"N", 4}});
  I.run();
  // A[2] was last written by statement 1 at j = 2.
  const WriteInstance *W = I.lastWriter(0, {2});
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->StmtId, 1u);
  ASSERT_EQ(W->Iter.size(), 1u);
  EXPECT_EQ(W->Iter[0], 2);
  // A[3] was last written by statement 0 at i = 3.
  W = I.lastWriter(0, {3});
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->StmtId, 0u);
  EXPECT_EQ(W->Iter[0], 3);
}

TEST(InterpTest, ReadCallbackReportsWriters) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
for i = 1 to N { A[i] = A[i - 1]; }
)");
  SeqInterpreter I(P, {{"N", 3}});
  unsigned Reads = 0, FromInitial = 0, FromStmt = 0;
  I.setReadCallback([&](unsigned StmtId, unsigned ReadIdx,
                        const std::vector<IntT> &Iter,
                        const WriteInstance *Writer) {
    ++Reads;
    EXPECT_EQ(StmtId, 0u);
    EXPECT_EQ(ReadIdx, 0u);
    if (!Writer) {
      ++FromInitial;
      EXPECT_EQ(Iter[0], 1); // only A[0] is never written
    } else {
      ++FromStmt;
      EXPECT_EQ(Writer->Iter[0], Iter[0] - 1);
    }
  });
  I.run();
  EXPECT_EQ(Reads, 3u);
  EXPECT_EQ(FromInitial, 1u);
  EXPECT_EQ(FromStmt, 2u);
}

TEST(InterpTest, LUComputesFactorization) {
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
  SeqInterpreter I(P, {{"N", 3}});
  I.run();
  // Reconstruct A = L*U from the in-place factorization and compare with
  // the initial array contents.
  IntT N = 3;
  auto A0 = [&](IntT R, IntT C) {
    return initialArrayValue(0, R * (N + 1) + C);
  };
  auto LU = [&](IntT R, IntT C) { return I.arrayValue(0, {R, C}); };
  for (IntT R = 0; R <= N; ++R)
    for (IntT C = 0; C <= N; ++C) {
      double Sum = 0;
      for (IntT K = 0; K <= std::min(R, C); ++K) {
        double L = K == R ? 1.0 : LU(R, K);
        double U = LU(K, C);
        Sum += L * U;
      }
      EXPECT_NEAR(Sum, A0(R, C), 1e-9) << "at " << R << "," << C;
    }
}

TEST(InterpTest, ArrayContents) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N];
for i = 2 to N - 1 { A[i] = 7; }
)");
  SeqInterpreter I(P, {{"N", 4}});
  I.run();
  std::vector<double> C = I.arrayContents(0);
  ASSERT_EQ(C.size(), 4u);
  EXPECT_DOUBLE_EQ(C[0], initialArrayValue(0, 0));
  EXPECT_DOUBLE_EQ(C[1], initialArrayValue(0, 1));
  EXPECT_DOUBLE_EQ(C[2], 7);
  EXPECT_DOUBLE_EQ(C[3], 7);
}

TEST(InterpTest, InitialValuesAreDeterministic) {
  EXPECT_DOUBLE_EQ(initialArrayValue(0, 0), initialArrayValue(0, 0));
  EXPECT_NE(initialArrayValue(0, 1), initialArrayValue(0, 2));
  EXPECT_GE(initialArrayValue(3, 17), 1.0);
  EXPECT_LT(initialArrayValue(3, 17), 2.0);
}
