//===- tests/ir/ProgramTest.cpp -------------------------------*- C++ -*-===//

#include "frontend/Parser.h"
#include "ir/Program.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

const char *LUSource = R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)";

} // namespace

TEST(ProgramTest, LUStructure) {
  Program P = parseProgramOrDie(LUSource);
  EXPECT_EQ(P.numLoops(), 3u);
  EXPECT_EQ(P.numStatements(), 2u);
  EXPECT_EQ(P.numArrays(), 1u);
  const Statement &S1 = P.statement(0);
  const Statement &S2 = P.statement(1);
  EXPECT_EQ(S1.depth(), 2u);
  EXPECT_EQ(S2.depth(), 3u);
  EXPECT_EQ(S1.Reads.size(), 2u);
  EXPECT_EQ(S2.Reads.size(), 3u);
  EXPECT_EQ(P.commonLoopDepth(0, 1), 2u);
  EXPECT_TRUE(P.precedesTextually(0, 1));
  EXPECT_FALSE(P.precedesTextually(1, 0));
}

TEST(ProgramTest, LUDomain) {
  Program P = parseProgramOrDie(LUSource);
  // S2's domain: 0 <= i1 <= N, i1+1 <= i2 <= N, i1+1 <= i3 <= N.
  System D = P.domainOf(1);
  EXPECT_EQ(D.numVars(), 4u); // i1, i2, i3, N
  EXPECT_TRUE(D.holds({0, 1, 1, 4}));
  EXPECT_TRUE(D.holds({2, 3, 4, 4}));
  EXPECT_FALSE(D.holds({2, 2, 4, 4}));  // i2 <= i1
  EXPECT_FALSE(D.holds({0, 1, 5, 4})); // i3 > N
  // Count points for N = 3: sum over i1 of (N-i1)^2 = 9 + 4 + 1 = 14.
  System Pinned = D;
  Pinned.addEQ(Pinned.varExpr(3).plusConst(-3));
  unsigned Count = 0;
  Pinned.enumeratePoints([&](const std::vector<IntT> &) { ++Count; });
  EXPECT_EQ(Count, 14u);
}

TEST(ProgramTest, ImperfectNestPaths) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N];
array B[N];
for i = 0 to N - 1 {
  A[i] = 1;
}
for j = 0 to N - 1 {
  B[j] = A[j];
  A[j] = 2;
}
)");
  ASSERT_EQ(P.numStatements(), 3u);
  EXPECT_EQ(P.commonLoopDepth(0, 1), 0u);
  EXPECT_EQ(P.commonLoopDepth(1, 2), 1u);
  EXPECT_TRUE(P.precedesTextually(0, 1));
  EXPECT_TRUE(P.precedesTextually(1, 2));
  EXPECT_TRUE(P.precedesTextually(0, 2));
}

TEST(ProgramTest, LoopNameUniquification) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N];
for i = 0 to N - 1 { A[i] = 1; }
for i = 0 to N - 1 { A[i] = 2; }
)");
  EXPECT_EQ(P.numLoops(), 2u);
  // Both loops got distinct space names.
  EXPECT_NE(P.space().name(P.loop(0).VarIndex),
            P.space().name(P.loop(1).VarIndex));
}

TEST(ProgramTest, MinMaxBounds) {
  Program P = parseProgramOrDie(R"(
param N;
param M;
array A[N + M];
for i = max(0, M - 4) to min(N, M) {
  A[i] = i;
}
)");
  const Loop &L = P.loop(0);
  EXPECT_EQ(L.Lower.size(), 2u);
  EXPECT_EQ(L.Upper.size(), 2u);
}

TEST(ProgramTest, PrettyPrintRoundTrips) {
  Program P = parseProgramOrDie(LUSource);
  std::string Text = P.str();
  // The printed program must re-parse to an equivalent structure.
  Program P2 = parseProgramOrDie(Text);
  EXPECT_EQ(P2.numLoops(), P.numLoops());
  EXPECT_EQ(P2.numStatements(), P.numStatements());
  EXPECT_EQ(P2.str(), Text);
}

TEST(ProgramTest, ParseErrors) {
  EXPECT_FALSE(parseProgram("for i = 0 to N { }").ok()); // unknown N
  EXPECT_FALSE(parseProgram("param N; array A[N]; A[0] = B[0];").ok());
  EXPECT_FALSE(parseProgram("param N; array A[N]; A[i] = 1;").ok());
  EXPECT_FALSE(
      parseProgram("param N; array A[N]; for i = 0 to i { A[i] = 1; }")
          .ok()); // self-referential bound
  EXPECT_FALSE(parseProgram("param N; array A[N*N]; "
                            "for i = 0 to N { A[i*i] = 1; }")
                   .ok()); // non-linear subscript
  ParseOutput Bad = parseProgram("param N; $");
  EXPECT_FALSE(Bad.ok());
  EXPECT_FALSE(Bad.Error.empty());
}

TEST(ProgramTest, ParamDefaults) {
  ParseOutput Out = parseProgram(R"(
param N = 64;
param M = -3;
array A[N];
for i = 0 to N - 1 { A[i] = 1; }
)");
  ASSERT_TRUE(Out.ok());
  EXPECT_EQ(Out.ParamDefaults.at("N"), 64);
  EXPECT_EQ(Out.ParamDefaults.at("M"), -3);
}
