//===- tests/frontend/LexerTest.cpp ---------------------------*- C++ -*-===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

std::vector<TokKind> kindsOf(const std::string &Src) {
  std::vector<TokKind> Out;
  for (const Token &T : tokenize(Src))
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Toks = tokenize("param array for to min max foo param2");
  ASSERT_EQ(Toks.size(), 9u); // incl. Eof
  EXPECT_EQ(Toks[0].Kind, TokKind::KwParam);
  EXPECT_EQ(Toks[1].Kind, TokKind::KwArray);
  EXPECT_EQ(Toks[2].Kind, TokKind::KwFor);
  EXPECT_EQ(Toks[3].Kind, TokKind::KwTo);
  EXPECT_EQ(Toks[4].Kind, TokKind::KwMin);
  EXPECT_EQ(Toks[5].Kind, TokKind::KwMax);
  EXPECT_EQ(Toks[6].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[6].Text, "foo");
  EXPECT_EQ(Toks[7].Kind, TokKind::Ident); // param2 is not a keyword
  EXPECT_EQ(Toks[8].Kind, TokKind::Eof);
}

TEST(LexerTest, NumbersIntegerAndFloat) {
  auto Toks = tokenize("42 3.25 0 007");
  ASSERT_GE(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Integer);
  EXPECT_EQ(Toks[0].IntVal, 42);
  EXPECT_EQ(Toks[1].Kind, TokKind::Float);
  EXPECT_DOUBLE_EQ(Toks[1].FloatVal, 3.25);
  EXPECT_EQ(Toks[2].IntVal, 0);
  EXPECT_EQ(Toks[3].IntVal, 7);
}

TEST(LexerTest, PunctuationAndOperators) {
  EXPECT_EQ(kindsOf("{ } [ ] ( ) , ; = + - * /"),
            (std::vector<TokKind>{
                TokKind::LBrace, TokKind::RBrace, TokKind::LBracket,
                TokKind::RBracket, TokKind::LParen, TokKind::RParen,
                TokKind::Comma, TokKind::Semi, TokKind::Assign,
                TokKind::Plus, TokKind::Minus, TokKind::Star,
                TokKind::Slash, TokKind::Eof}));
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Toks = tokenize("a # whole line\nb // also\nc");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[2].Text, "c");
}

TEST(LexerTest, LineNumbersTrackNewlines) {
  auto Toks = tokenize("a\nb\n\nc");
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[1].Line, 2u);
  EXPECT_EQ(Toks[2].Line, 4u);
}

TEST(LexerTest, SlashVsComment) {
  auto Toks = tokenize("a / b // c");
  ASSERT_EQ(Toks.size(), 4u); // a, /, b, Eof
  EXPECT_EQ(Toks[1].Kind, TokKind::Slash);
}

TEST(LexerTest, ErrorTokenOnGarbage) {
  auto Toks = tokenize("a $ b");
  bool SawError = false;
  for (const Token &T : Toks)
    if (T.Kind == TokKind::Error)
      SawError = true;
  EXPECT_TRUE(SawError);
  EXPECT_EQ(Toks.back().Kind, TokKind::Eof);
}

TEST(LexerTest, TokKindNamesCovered) {
  for (TokKind K :
       {TokKind::Eof, TokKind::Ident, TokKind::Integer, TokKind::Float,
        TokKind::KwParam, TokKind::KwArray, TokKind::KwFor, TokKind::KwTo,
        TokKind::KwMin, TokKind::KwMax, TokKind::LBrace, TokKind::RBrace,
        TokKind::LBracket, TokKind::RBracket, TokKind::LParen,
        TokKind::RParen, TokKind::Comma, TokKind::Semi, TokKind::Assign,
        TokKind::Plus, TokKind::Minus, TokKind::Star, TokKind::Slash,
        TokKind::Error})
    EXPECT_STRNE(tokKindName(K), "?");
}
