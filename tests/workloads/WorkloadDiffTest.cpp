//===- tests/workloads/WorkloadDiffTest.cpp -------------------*- C++ -*-===//
//
// Differential suite for the workload specs under examples/ (cholesky,
// 2-D and 3-D Jacobi, ADI, Floyd-Warshall). Every workload must be
//
//  - correct: the functional simulation agrees element-for-element with
//    the sequential interpreter AND the independent plain-C++ reference
//    kernels (examples/WorkloadKernels.h);
//  - engine-independent: the sequential round engine, the threaded
//    round engine and the discrete-event engine are bit-identical on
//    clean, lossy, hostile and crash/checkpoint schedules;
//  - overlap-safe: compiling with early sends changes no array element;
//  - robust under random schedules: the *Fuzz* slice pushes random
//    sizes and random enumerated decompositions through rounds-vs-event
//    under mixed hostile-network schedules (registered under the
//    `fuzz;workloads` labels; everything else is plain `workloads`).
//
//===----------------------------------------------------------------------===//

#include "core/SpecParser.h"
#include "decomp/Search.h"
#include "examples/WorkloadKernels.h"
#include "sim/Simulator.h"

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace dmcc;

namespace {

std::string repoPath(const std::string &Rel) {
  return std::string(DMCC_REPO_ROOT) + "/" + Rel;
}

/// One workload, parsed and compiled once per process (both early-send
/// settings); the five specs are shared across every test below.
struct Workload {
  SpecParseOutput SP;
  CompiledProgram CP;      // EarlySends off
  CompiledProgram CPEarly; // EarlySends on
  const Program &prog() const { return *SP.Prog; }
  const std::map<std::string, IntT> &params() const {
    return SP.ParamDefaults;
  }
};

const Workload &workload(const std::string &Name) {
  static std::map<std::string, std::unique_ptr<Workload>> Cache;
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return *It->second;
  auto W = std::make_unique<Workload>();
  std::ifstream In(repoPath("examples/" + Name + ".dm"));
  EXPECT_TRUE(In.good()) << "cannot open examples/" << Name << ".dm";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  W->SP = parseWithSpec(Buf.str());
  EXPECT_TRUE(W->SP.ok()) << Name << ": " << W->SP.Error;
  if (W->SP.ok()) {
    CompilerOptions Opts;
    W->CP = compile(*W->SP.Prog, W->SP.Spec, Opts);
    EXPECT_TRUE(W->CP.Ok) << Name << ": " << W->CP.ErrorMessage;
    Opts.EarlySends = true;
    W->CPEarly = compile(*W->SP.Prog, W->SP.Spec, Opts);
    EXPECT_TRUE(W->CPEarly.Ok) << Name << ": " << W->CPEarly.ErrorMessage;
  }
  return *Cache.emplace(Name, std::move(W)).first->second;
}

SimOptions opts(IntT Procs, std::map<std::string, IntT> Params,
                bool Functional, SimEngine Engine, unsigned Threads = 1,
                FaultOptions Faults = {},
                CheckpointOptions Checkpoint = {}) {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = std::move(Params);
  SO.Functional = Functional;
  SO.CollapseLoops = !Functional;
  SO.Faults = Faults;
  SO.Checkpoint = Checkpoint;
  SO.Threads = Threads;
  SO.Engine = Engine;
  return SO;
}

std::vector<IntT> paramEnv(const Program &P,
                           const std::map<std::string, IntT> &Params) {
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  return Env;
}

/// One simulation leg: the full result plus every element of every
/// final-layout array, in FinalData (ArrayId) order.
struct RunOut {
  SimResult R;
  std::vector<std::optional<double>> Elems;
};

RunOut runLeg(const Program &P, const CompiledProgram &CP,
              const CompileSpec &Spec, SimOptions SO,
              const std::map<std::string, IntT> &Params) {
  Simulator Sim(P, CP, Spec, std::move(SO));
  RunOut O;
  O.R = Sim.run();
  std::vector<IntT> Env = paramEnv(P, Params);
  for (const auto &[AId, FD] : Spec.FinalData) {
    (void)FD;
    std::vector<IntT> Sizes;
    for (const AffineExpr &D : P.array(AId).DimSizes)
      Sizes.push_back(D.evaluate(Env));
    std::vector<IntT> Idx(Sizes.size(), 0);
    bool Done = Sizes.empty();
    while (!Done) {
      O.Elems.push_back(Sim.finalValue(AId, Idx));
      for (unsigned K = Idx.size(); K-- > 0;) {
        if (++Idx[K] < Sizes[K])
          break;
        Idx[K] = 0;
        if (K == 0)
          Done = true;
      }
    }
  }
  return O;
}

/// Bit-identical comparison of two legs: exact double equality on every
/// clock and cost, exact integer equality on every counter, identical
/// array contents.
void expectIdentical(const RunOut &A, const RunOut &B,
                     const std::string &Tag) {
  EXPECT_EQ(A.R.Ok, B.R.Ok) << Tag;
  EXPECT_EQ(A.R.Error, B.R.Error) << Tag;
  EXPECT_EQ(A.R.MakespanSeconds, B.R.MakespanSeconds) << Tag;
  EXPECT_EQ(A.R.Messages, B.R.Messages) << Tag;
  EXPECT_EQ(A.R.IntraMessages, B.R.IntraMessages) << Tag;
  EXPECT_EQ(A.R.Words, B.R.Words) << Tag;
  EXPECT_EQ(A.R.Flops, B.R.Flops) << Tag;
  EXPECT_EQ(A.R.ComputeIterations, B.R.ComputeIterations) << Tag;
  EXPECT_EQ(A.R.Retransmissions, B.R.Retransmissions) << Tag;
  EXPECT_EQ(A.R.DroppedPackets, B.R.DroppedPackets) << Tag;
  EXPECT_EQ(A.R.DuplicatesSuppressed, B.R.DuplicatesSuppressed) << Tag;
  EXPECT_EQ(A.R.AcksSent, B.R.AcksSent) << Tag;
  EXPECT_EQ(A.R.CorruptedPackets, B.R.CorruptedPackets) << Tag;
  EXPECT_EQ(A.R.NacksSent, B.R.NacksSent) << Tag;
  EXPECT_EQ(A.R.PartitionDrops, B.R.PartitionDrops) << Tag;
  EXPECT_EQ(A.R.SlowLinkMessages, B.R.SlowLinkMessages) << Tag;
  ASSERT_EQ(A.R.PhysBusy.size(), B.R.PhysBusy.size()) << Tag;
  for (unsigned I = 0; I != A.R.PhysBusy.size(); ++I)
    EXPECT_EQ(A.R.PhysBusy[I], B.R.PhysBusy[I]) << Tag << " phys " << I;
  EXPECT_EQ(A.R.Recovery.CheckpointsTaken, B.R.Recovery.CheckpointsTaken)
      << Tag;
  EXPECT_EQ(A.R.Recovery.Crashes, B.R.Recovery.Crashes) << Tag;
  EXPECT_EQ(A.R.Recovery.Rollbacks, B.R.Recovery.Rollbacks) << Tag;
  EXPECT_EQ(A.R.Recovery.ReplayedSteps, B.R.Recovery.ReplayedSteps)
      << Tag;
  EXPECT_EQ(A.R.Recovery.ReplayedMessages, B.R.Recovery.ReplayedMessages)
      << Tag;
  ASSERT_EQ(A.Elems.size(), B.Elems.size()) << Tag;
  unsigned Bad = 0;
  for (unsigned I = 0; I != A.Elems.size(); ++I)
    if (A.Elems[I] != B.Elems[I])
      ++Bad;
  EXPECT_EQ(Bad, 0u) << Tag << ": array contents diverge";
}

/// Runs the same schedule under the sequential round engine, the event
/// engine and the 2-thread round engine; all legs must be identical.
void expectEnginesAgree(const Program &P, const CompiledProgram &CP,
                        const CompileSpec &Spec, IntT Procs,
                        const std::map<std::string, IntT> &Pv,
                        FaultOptions F, CheckpointOptions CK,
                        const std::string &Tag) {
  RunOut Seq = runLeg(P, CP, Spec,
                      opts(Procs, Pv, true, SimEngine::Rounds, 1, F, CK),
                      Pv);
  RunOut Evt = runLeg(P, CP, Spec,
                      opts(Procs, Pv, true, SimEngine::Event, 1, F, CK),
                      Pv);
  expectIdentical(Seq, Evt, Tag + " event-vs-seq");
  RunOut Thr = runLeg(P, CP, Spec,
                      opts(Procs, Pv, true, SimEngine::Rounds, 2, F, CK),
                      Pv);
  expectIdentical(Evt, Thr, Tag + " event-vs-threaded");
}

/// Expected array contents by independent reference kernel, keyed by
/// array id. Mirrors the table in examples/workload_suite.cpp.
std::map<unsigned, std::vector<double>>
referenceContents(const std::string &Name,
                  const std::map<std::string, IntT> &Pm) {
  using namespace dmcc::workloads;
  std::map<unsigned, std::vector<double>> Out;
  if (Name == "cholesky") {
    Out[0] = refCholesky(Pm.at("N"));
  } else if (Name == "jacobi2d") {
    auto AB = refJacobi2D(Pm.at("T"), Pm.at("N"));
    Out[0] = AB[0];
    Out[1] = AB[1];
  } else if (Name == "jacobi3d") {
    auto AB = refJacobi3D(Pm.at("N"));
    Out[0] = AB[0];
    Out[1] = AB[1];
  } else if (Name == "adi") {
    Out[0] = refADI(Pm.at("T"), Pm.at("N"));
  } else if (Name == "floyd") {
    Out[0] = refFloyd(Pm.at("N"));
  }
  return Out;
}

class WorkloadDiff : public ::testing::TestWithParam<const char *> {};

} // namespace

//===----------------------------------------------------------------------===//
// Correctness: simulator vs interpreter vs independent reference kernel
//===----------------------------------------------------------------------===//

TEST_P(WorkloadDiff, FunctionalRunMatchesInterpreterAndReference) {
  const Workload &W = workload(GetParam());
  ASSERT_TRUE(W.SP.ok() && W.CP.Ok);
  const Program &P = W.prog();
  const auto &Pv = W.params();

  Simulator Sim(P, W.CP, W.SP.Spec, opts(4, Pv, true, SimEngine::Rounds));
  SimResult R = Sim.run();
  ASSERT_TRUE(R.Ok) << R.Error;

  SeqInterpreter Gold(P, Pv);
  Gold.run();
  std::map<unsigned, std::vector<double>> Refs =
      referenceContents(GetParam(), Pv);
  std::vector<IntT> Env = paramEnv(P, Pv);
  unsigned Checked = 0, BadSim = 0, BadRef = 0;
  for (const auto &[AId, FD] : W.SP.Spec.FinalData) {
    (void)FD;
    const std::vector<double> &Ref = Refs.at(AId);
    std::vector<double> Interp = Gold.arrayContents(AId);
    ASSERT_EQ(Interp.size(), Ref.size()) << "array " << AId;
    std::vector<IntT> Sizes;
    for (const AffineExpr &D : P.array(AId).DimSizes)
      Sizes.push_back(D.evaluate(Env));
    std::vector<IntT> Idx(Sizes.size(), 0);
    size_t Flat = 0;
    bool Done = Sizes.empty();
    while (!Done) {
      ++Checked;
      std::optional<double> Got = Sim.finalValue(AId, Idx);
      if (!Got || *Got != Interp[Flat])
        ++BadSim;
      if (Interp[Flat] != Ref[Flat])
        ++BadRef;
      ++Flat;
      for (unsigned K = Idx.size(); K-- > 0;) {
        if (++Idx[K] < Sizes[K])
          break;
        Idx[K] = 0;
        if (K == 0)
          Done = true;
      }
    }
  }
  EXPECT_GT(Checked, 0u);
  EXPECT_EQ(BadSim, 0u) << "simulator vs interpreter";
  EXPECT_EQ(BadRef, 0u) << "interpreter vs reference kernel";
}

//===----------------------------------------------------------------------===//
// Cross-engine differentials: clean, lossy, hostile, crash/checkpoint
//===----------------------------------------------------------------------===//

TEST_P(WorkloadDiff, EnginesAgreeClean) {
  const Workload &W = workload(GetParam());
  ASSERT_TRUE(W.SP.ok() && W.CP.Ok);
  expectEnginesAgree(W.prog(), W.CP, W.SP.Spec, 4, W.params(), {}, {},
                     std::string(GetParam()) + "-clean");
}

TEST_P(WorkloadDiff, EnginesAgreeLossy) {
  const Workload &W = workload(GetParam());
  ASSERT_TRUE(W.SP.ok() && W.CP.Ok);
  for (uint64_t Seed : {1u, 2u}) {
    FaultOptions F;
    F.Seed = Seed;
    F.DropRate = 0.05;
    F.DupRate = 0.05;
    F.MaxDelaySeconds = 2e-4;
    F.MaxSlowdown = 1.5;
    RunOut Base =
        runLeg(W.prog(), W.CP, W.SP.Spec,
               opts(4, W.params(), true, SimEngine::Rounds, 1, F),
               W.params());
    ASSERT_TRUE(Base.R.Ok) << GetParam() << " seed " << Seed << ": "
                           << Base.R.Error;
    ASSERT_GT(Base.R.Messages, 0u)
        << GetParam() << " exchanges no messages; differential is vacuous";
    expectEnginesAgree(W.prog(), W.CP, W.SP.Spec, 4, W.params(), F, {},
                       std::string(GetParam()) + "-lossy seed=" +
                           std::to_string(Seed));
  }
}

TEST_P(WorkloadDiff, EnginesAgreeHostile) {
  const Workload &W = workload(GetParam());
  ASSERT_TRUE(W.SP.ok() && W.CP.Ok);
  FaultOptions F;
  F.Seed = 7;
  F.CorruptRate = 0.08;
  F.PartitionRate = 0.04;
  F.PartitionMaxOutage = 3;
  F.SlowLinkRate = 0.3;
  F.SlowLinkMaxFactor = 3.0;
  F.DropRate = 0.03;
  RunOut Base = runLeg(W.prog(), W.CP, W.SP.Spec,
                       opts(4, W.params(), true, SimEngine::Rounds, 1, F),
                       W.params());
  ASSERT_TRUE(Base.R.Ok) << GetParam() << ": " << Base.R.Error;
  expectEnginesAgree(W.prog(), W.CP, W.SP.Spec, 4, W.params(), F, {},
                     std::string(GetParam()) + "-hostile");
}

TEST_P(WorkloadDiff, EnginesAgreeUnderCrashRecovery) {
  // Crash + coordinated checkpoint/rollback. Each seed's schedule —
  // whether it crashes zero, one or more times — must replay
  // identically on every engine; across the seed set at least one
  // schedule must actually exercise recovery.
  const Workload &W = workload(GetParam());
  ASSERT_TRUE(W.SP.ok() && W.CP.Ok);
  uint64_t TotalCrashes = 0;
  for (uint64_t CrashSeed : {3u, 9u, 27u}) {
    FaultOptions F;
    F.CrashRate = 1e-3;
    F.CrashSeed = CrashSeed;
    CheckpointOptions CK;
    CK.IntervalSteps = 400;
    RunOut Base =
        runLeg(W.prog(), W.CP, W.SP.Spec,
               opts(4, W.params(), true, SimEngine::Rounds, 1, F, CK),
               W.params());
    ASSERT_TRUE(Base.R.Ok) << GetParam() << " seed " << CrashSeed << ": "
                           << Base.R.Error;
    TotalCrashes += Base.R.Recovery.Crashes;
    expectEnginesAgree(W.prog(), W.CP, W.SP.Spec, 4, W.params(), F, CK,
                       std::string(GetParam()) + "-crash seed=" +
                           std::to_string(CrashSeed));
  }
  EXPECT_GE(TotalCrashes, 1u)
      << GetParam() << ": no seed crashed; raise CrashRate";
}

//===----------------------------------------------------------------------===//
// Overlap differential: early sends change no observable array element
//===----------------------------------------------------------------------===//

TEST_P(WorkloadDiff, EarlySendsPreserveEveryArrayElement) {
  const Workload &W = workload(GetParam());
  ASSERT_TRUE(W.SP.ok() && W.CP.Ok && W.CPEarly.Ok);
  RunOut Plain = runLeg(W.prog(), W.CP, W.SP.Spec,
                        opts(4, W.params(), true, SimEngine::Rounds),
                        W.params());
  RunOut Early = runLeg(W.prog(), W.CPEarly, W.SP.Spec,
                        opts(4, W.params(), true, SimEngine::Rounds),
                        W.params());
  ASSERT_TRUE(Plain.R.Ok) << Plain.R.Error;
  ASSERT_TRUE(Early.R.Ok) << Early.R.Error;
  ASSERT_EQ(Plain.Elems.size(), Early.Elems.size());
  unsigned Bad = 0;
  for (unsigned I = 0; I != Plain.Elems.size(); ++I)
    if (Plain.Elems[I] != Early.Elems[I])
      ++Bad;
  EXPECT_EQ(Bad, 0u) << GetParam()
                     << ": early sends changed array contents";
  // The early-send build must itself be engine-independent.
  expectEnginesAgree(W.prog(), W.CPEarly, W.SP.Spec, 4, W.params(), {},
                     {}, std::string(GetParam()) + "-early-clean");
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadDiff,
                         ::testing::Values("cholesky", "jacobi2d",
                                           "jacobi3d", "adi", "floyd"),
                         [](const ::testing::TestParamInfo<const char *>
                                &I) { return std::string(I.param); });

//===----------------------------------------------------------------------===//
// Fuzz slice: random sizes x random enumerated decompositions x mixed
// hostile schedules, rounds vs event vs threaded (labels fuzz;workloads)
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic splitmix64; the whole slice replays from its seed.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  IntT range(IntT Lo, IntT Hi) { // inclusive
    return Lo + static_cast<IntT>(next() % static_cast<uint64_t>(
                                      Hi - Lo + 1));
  }
  double unit() { return (next() >> 11) * 0x1p-53; }
};

} // namespace

TEST(WorkloadFuzz, RandomDecompositionsAgreeAcrossEnginesUnderHostileNet) {
  // Round-robin the five workloads; for each case draw random problem
  // sizes, enumerate the bounded decomposition space at those sizes,
  // pick a random candidate (possibly the hand-written hint), compile
  // it, draw a random hostile-network mix, and require the sequential,
  // threaded and event engines bit-identical.
  const char *Names[] = {"cholesky", "jacobi2d", "jacobi3d", "adi",
                         "floyd"};
  Rng R(0xD15C0u);
  unsigned Cases = 6;
  for (unsigned Case = 0; Case != Cases; ++Case) {
    const std::string Name = Names[Case % 5];
    const Workload &W = workload(Name);
    ASSERT_TRUE(W.SP.ok());

    std::map<std::string, IntT> Pv = W.params();
    if (Name == "cholesky")
      Pv["N"] = R.range(8, 16);
    else if (Name == "jacobi2d")
      Pv = {{"T", R.range(1, 3)}, {"N", R.range(8, 14)}};
    else if (Name == "jacobi3d")
      Pv["N"] = R.range(5, 7);
    else if (Name == "adi")
      Pv = {{"T", R.range(1, 2)}, {"N", R.range(8, 14)}};
    else
      Pv["N"] = R.range(6, 10);

    SearchOptions SO;
    SO.Procs = R.range(2, 4);
    SO.Params = Pv;
    std::vector<DecompCandidate> Cands =
        enumerateDecompositions(W.prog(), &W.SP.Spec, SO);
    ASSERT_FALSE(Cands.empty()) << Name;
    const DecompCandidate &Cand =
        Cands[static_cast<size_t>(R.next() % Cands.size())];
    CompiledProgram CP = compile(W.prog(), Cand.Spec, CompilerOptions());
    ASSERT_TRUE(CP.Ok) << Name << " " << Cand.Desc << ": "
                       << CP.ErrorMessage;

    FaultOptions F;
    F.Seed = R.next() % 1000;
    F.DropRate = 0.08 * R.unit();
    F.DupRate = 0.08 * R.unit();
    F.CorruptRate = 0.08 * R.unit();
    F.PartitionRate = 0.04 * R.unit();
    F.PartitionMaxOutage = 3;
    F.SlowLinkRate = 0.5 * R.unit();
    F.SlowLinkMaxFactor = 1.0 + 2.0 * R.unit();
    F.MaxDelaySeconds = 2e-4 * R.unit();
    F.MaxSlowdown = 1.0 + R.unit();

    std::string Tag = "fuzz case " + std::to_string(Case) + " " + Name +
                      " " + Cand.Desc + " P=" + std::to_string(SO.Procs) +
                      " seed=" + std::to_string(F.Seed);
    RunOut Base = runLeg(W.prog(), CP, Cand.Spec,
                         opts(SO.Procs, Pv, true, SimEngine::Rounds, 1, F),
                         Pv);
    ASSERT_TRUE(Base.R.Ok) << Tag << ": " << Base.R.Error;
    expectEnginesAgree(W.prog(), CP, Cand.Spec, SO.Procs, Pv, F, {}, Tag);
  }
}
