//===- tests/comm/CommSetTest.cpp -----------------------------*- C++ -*-===//
//
// Communication-set construction (Theorems 3/4, Figure 5) and the
// Section 6 redundancy optimizations, validated against ground truth from
// the instrumented sequential interpreter.
//
//===----------------------------------------------------------------------===//

#include "comm/CommSet.h"
#include "frontend/Parser.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

/// Pins (ps, s, pr, r, el) and parameters; true if the set contains the
/// tuple (searching existential aux witnesses).
bool contains(const CommSet &CS, const std::vector<IntT> &Ps,
              const std::vector<IntT> &S, const std::vector<IntT> &Pr,
              const std::vector<IntT> &R, const std::vector<IntT> &El,
              const std::map<std::string, IntT> &Params) {
  // A set whose tuple shape differs (e.g. writer-produced vs initial
  // data) cannot contain the transfer.
  if (CS.PsVars.size() != Ps.size() || CS.SVars.size() != S.size() ||
      CS.PrVars.size() != Pr.size() || CS.RVars.size() != R.size() ||
      CS.ElVars.size() != El.size())
    return false;
  System Sys = CS.Sys;
  auto Pin = [&Sys](const std::vector<unsigned> &Vars,
                    const std::vector<IntT> &Vals) {
    for (unsigned K = 0; K != Vars.size(); ++K)
      Sys.addEQ(Sys.varExpr(Vars[K]).plusConst(-Vals[K]));
  };
  Pin(CS.PsVars, Ps);
  Pin(CS.SVars, S);
  Pin(CS.PrVars, Pr);
  Pin(CS.RVars, R);
  Pin(CS.ElVars, El);
  for (unsigned I = 0; I != Sys.space().size(); ++I)
    if (Sys.space().kind(I) == VarKind::Param)
      Sys.addEQ(Sys.varExpr(I).plusConst(
          -Params.at(Sys.space().name(I))));
  return Sys.checkIntegerFeasible() == Feasibility::Feasible;
}

bool anyContains(const std::vector<CommSet> &Sets,
                 const std::vector<IntT> &Ps, const std::vector<IntT> &S,
                 const std::vector<IntT> &Pr, const std::vector<IntT> &R,
                 const std::vector<IntT> &El,
                 const std::map<std::string, IntT> &Params) {
  for (const CommSet &CS : Sets)
    if (contains(CS, Ps, S, Pr, R, El, Params))
      return true;
  return false;
}

} // namespace

TEST(CommSetTest, PaperFigure5ShiftBlocks) {
  // Figure 2 with iterations of the i loop distributed in blocks of 32:
  // processor p executes iterations 32p..32p+31; the value X[i-3] read in
  // the first three iterations of a block was produced on the previous
  // processor (Figure 5's M2 set, nonempty only for ps < pr).
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
  LastWriteTree T = buildLWT(P, 0, 0);
  ASSERT_TRUE(T.Exact);
  Decomposition Comp = blockComputation(P, 0, /*LoopPos=*/1, 32);

  std::map<std::string, IntT> Params{{"T", 10}, {"N", 100}};
  std::vector<CommSet> All;
  for (const LWTContext &Ctx : T.Contexts) {
    if (!Ctx.HasWriter)
      continue; // M1 reads initial data; no producer communication
    auto Sets = buildCommSets(P, T, Ctx, Comp, &Comp, nullptr, 1);
    for (CommSet &CS : Sets)
      All.push_back(std::move(CS));
  }
  ASSERT_FALSE(All.empty());

  // Receiver p=1 at iteration (t=2, i=32) needs X[29] written by p=0 at
  // (2, 29) — the paper's boundary transfer.
  EXPECT_TRUE(anyContains(All, {0}, {2, 29}, {1}, {2, 32}, {29}, Params));
  // Iteration (2, 35) reads X[32], produced on the same processor: no
  // communication tuple may exist.
  EXPECT_FALSE(anyContains(All, {1}, {2, 32}, {1}, {2, 35}, {32}, Params));
  // And nothing flows backwards (ps > pr): receiver 0 never gets data
  // from processor 1.
  EXPECT_FALSE(anyContains(All, {1}, {2, 35}, {0}, {2, 38}, {35}, Params));
  // Per outer iteration, each of the 3 boundary elements of each interior
  // block moves once: senders 0..2 for 4 blocks of i in 3..100.
  uint64_t Transfers = 0;
  for (const CommSet &CS : All)
    Transfers += countDistinct(CS, {CS.PsVars, CS.SVars, CS.PrVars,
                                    CS.RVars, CS.ElVars},
                               Params);
  // 11 outer iterations * 3 receiving blocks (p = 1..3) * 3 elements.
  EXPECT_EQ(Transfers, 11u * 3u * 3u);
}

TEST(CommSetTest, InitialDataTheorem4) {
  // Bottom contexts fetch from the initial layout. X[0..2] are never
  // written; blocks of 32 mean those elements live on processor 0.
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
  LastWriteTree T = buildLWT(P, 0, 0);
  Decomposition Comp = blockComputation(P, 0, 1, 32);
  Decomposition Data = blockData(P, 0, 0, 32);

  std::map<std::string, IntT> Params{{"T", 4}, {"N", 100}};
  std::vector<CommSet> All;
  for (const LWTContext &Ctx : T.Contexts) {
    if (Ctx.HasWriter)
      continue;
    auto Sets = buildCommSets(P, T, Ctx, Comp, nullptr, &Data, 1);
    for (CommSet &CS : Sets)
      All.push_back(std::move(CS));
  }
  // The bottom context covers reads at i in 3..5 (t arbitrary): they read
  // X[0..2], owned by processor 0 and consumed by processor 0: with the
  // owner as the only sender and receiver 0 owning the data, no
  // communication sets survive.
  uint64_t Transfers = 0;
  for (const CommSet &CS : All)
    Transfers += countDistinct(CS, {CS.PsVars, CS.PrVars, CS.ElVars},
                               Params);
  EXPECT_EQ(Transfers, 0u);
}

TEST(CommSetTest, InitialDataCrossProcessorFetch) {
  // A reversal forces cross-processor initial fetches: iteration i reads
  // B[N - i] under block distribution of both.
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array B[N + 1];
for i = 0 to N {
  A[i] = B[N - i];
}
)");
  LastWriteTree T = buildLWT(P, 0, 0);
  ASSERT_EQ(T.numWriterContexts(), 0u);
  Decomposition Comp = blockComputation(P, 0, 0, 4);
  Decomposition Data = blockData(P, 1, 0, 4);
  std::map<std::string, IntT> Params{{"N", 7}};

  std::vector<CommSet> All;
  for (const LWTContext &Ctx : T.Contexts) {
    auto Sets = buildCommSets(P, T, Ctx, Comp, nullptr, &Data, 1);
    for (CommSet &CS : Sets)
      All.push_back(std::move(CS));
  }
  // N=7: processors 0 (i=0..3) and 1 (i=4..7). i=0 reads B[7] (owner 1):
  // cross transfer; i=4 reads B[3] (owner 0): cross transfer.
  EXPECT_TRUE(anyContains(All, {1}, {}, {0}, {0}, {7}, Params));
  EXPECT_TRUE(anyContains(All, {0}, {}, {1}, {4}, {3}, Params));
  // i=3 reads B[4]... owner 1, reader 0: cross as well.
  EXPECT_TRUE(anyContains(All, {1}, {}, {0}, {3}, {4}, Params));
  uint64_t Transfers = 0;
  for (const CommSet &CS : All)
    Transfers += countDistinct(CS, {CS.PrVars, CS.ElVars}, Params);
  EXPECT_EQ(Transfers, 8u); // every read is non-local here
}

TEST(CommSetTest, ReplicatedInitialDataNeedsNoCommunication) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
array B[N + 1];
for i = 0 to N {
  A[i] = B[N - i];
}
)");
  LastWriteTree T = buildLWT(P, 0, 0);
  Decomposition Comp = blockComputation(P, 0, 0, 4);
  Decomposition Data = replicatedData(P, 1);
  for (const LWTContext &Ctx : T.Contexts) {
    auto Sets = buildCommSets(P, T, Ctx, Comp, nullptr, &Data, 1);
    EXPECT_TRUE(Sets.empty());
  }
}

TEST(CommSetTest, SelfReuseElimination) {
  // The same X[i-1] value is read by every iteration of the inner loop;
  // without optimization it would be fetched once per read instance.
  // After self-reuse elimination (Section 6.1.1), each value crosses to
  // each consuming processor exactly once, at the earliest read.
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1];
array Y[N + 1];
for i = 1 to N {
  X[i] = i;
  for j = 0 to N {
    Y[j] = Y[j] + X[i - 1];
  }
}
)");
  LastWriteTree T = buildLWT(P, 1, 1);
  ASSERT_TRUE(T.Exact);
  // Producer runs on the owner of X[i] (blocks of 4); consumer iteration
  // (i, j) runs on the owner of Y[j].
  Decomposition ProdComp = blockComputation(P, 0, 0, 4);
  Decomposition ConsComp = blockComputation(P, 1, 1, 4);

  std::map<std::string, IntT> Params{{"N", 11}};
  uint64_t Before = 0, After = 0, Values = 0;
  for (const LWTContext &Ctx : T.Contexts) {
    if (!Ctx.HasWriter)
      continue;
    auto Sets = buildCommSets(P, T, Ctx, ConsComp, &ProdComp, nullptr, 1);
    for (CommSet &CS : Sets) {
      Before += countDistinct(CS, {CS.PsVars, CS.SVars, CS.PrVars,
                                   CS.RVars, CS.ElVars},
                              Params);
      Values += countDistinct(CS, {CS.PsVars, CS.SVars, CS.PrVars,
                                   CS.ElVars},
                              Params);
      for (CommSet &Thin : eliminateSelfReuse(CS))
        After += countDistinct(Thin, {Thin.PsVars, Thin.SVars, Thin.PrVars,
                                      Thin.RVars, Thin.ElVars},
                               Params);
    }
  }
  EXPECT_GT(Before, After);
  // After elimination there is exactly one receive iteration per value.
  EXPECT_EQ(After, Values);
  EXPECT_GT(After, 0u);
}

TEST(CommSetTest, MulticastDetection) {
  // In the accumulator X[0] = X[0] + X[i] with the reduction distributed
  // cyclically, the value X[0] produced at iteration i-1 goes to exactly
  // one next processor: content depends on nothing but the sender, yet
  // the element is fixed, so the message content is independent of the
  // receiver: multicast-eligible.
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1];
for i = 1 to N {
  X[0] = X[0] + X[i];
}
)");
  LastWriteTree T = buildLWT(P, 0, 0);
  Decomposition Comp = cyclicComputation(P, 0, 0);
  for (const LWTContext &Ctx : T.Contexts) {
    if (!Ctx.HasWriter)
      continue;
    auto Sets = buildCommSets(P, T, Ctx, Comp, &Comp, nullptr, 1);
    for (CommSet &CS : Sets)
      EXPECT_TRUE(detectMulticast(CS));
  }
}

TEST(CommSetTest, GroundTruthAgainstInterpreter) {
  // Every cross-processor (value producer, consumer) pair observed during
  // real execution must appear in some communication set, and every
  // communication tuple must correspond to a real cross-processor read.
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
  std::map<std::string, IntT> Params{{"T", 3}, {"N", 23}};
  LastWriteTree T = buildLWT(P, 0, 0);
  ASSERT_TRUE(T.Exact);
  Decomposition Comp = blockComputation(P, 0, 1, 4);
  Decomposition Data = blockData(P, 0, 0, 4);

  std::vector<CommSet> All;
  for (const LWTContext &Ctx : T.Contexts) {
    auto Sets = Ctx.HasWriter
                    ? buildCommSets(P, T, Ctx, Comp, &Comp, nullptr, 1)
                    : buildCommSets(P, T, Ctx, Comp, nullptr, &Data, 1);
    for (CommSet &CS : Sets)
      All.push_back(std::move(CS));
  }

  // Ground truth from execution.
  std::set<std::vector<IntT>> Needed; // (ps, s..., pr, r..., el)
  SeqInterpreter I(P, Params);
  I.setReadCallback([&](unsigned StmtId, unsigned ReadIdx,
                        const std::vector<IntT> &Iter,
                        const WriteInstance *Writer) {
    ASSERT_EQ(StmtId, 0u);
    ASSERT_EQ(ReadIdx, 0u);
    std::vector<IntT> RSrc = Iter;
    RSrc.push_back(Params.at("T"));
    RSrc.push_back(Params.at("N"));
    IntT Pr = Comp.gridCoordinate(RSrc)[0];
    IntT El = Iter[1] - 3;
    if (Writer) {
      std::vector<IntT> WSrc = Writer->Iter;
      WSrc.push_back(Params.at("T"));
      WSrc.push_back(Params.at("N"));
      IntT Ps = Comp.gridCoordinate(WSrc)[0];
      if (Ps == Pr)
        return;
      Needed.insert({Ps, Writer->Iter[0], Writer->Iter[1], Pr, Iter[0],
                     Iter[1], El});
    } else {
      IntT Ps = Data.gridCoordinate({El, Params.at("T"),
                                     Params.at("N")})[0];
      if (Ps == Pr)
        return;
      Needed.insert({Ps, Pr, Iter[0], Iter[1], El});
    }
  });
  I.run();
  ASSERT_FALSE(Needed.empty());

  // Soundness: every needed transfer is covered.
  for (const std::vector<IntT> &Tup : Needed) {
    bool Found = false;
    if (Tup.size() == 7) {
      Found = anyContains(All, {Tup[0]}, {Tup[1], Tup[2]}, {Tup[3]},
                          {Tup[4], Tup[5]}, {Tup[6]}, Params);
    } else {
      Found = anyContains(All, {Tup[0]}, {}, {Tup[1]}, {Tup[2], Tup[3]},
                          {Tup[4]}, Params);
    }
    EXPECT_TRUE(Found) << "missing transfer";
    if (!Found)
      break;
  }

  // Precision: every enumerated tuple is genuinely needed.
  for (const CommSet &CS : All) {
    System S = CS.Sys;
    for (unsigned I2 = 0; I2 != S.space().size(); ++I2)
      if (S.space().kind(I2) == VarKind::Param)
        S.addEQ(S.varExpr(I2).plusConst(
            -Params.at(S.space().name(I2))));
    S.enumeratePoints([&](const std::vector<IntT> &Pt) {
      std::vector<IntT> Key;
      Key.push_back(Pt[CS.PsVars[0]]);
      for (unsigned V : CS.SVars)
        Key.push_back(Pt[V]);
      Key.push_back(Pt[CS.PrVars[0]]);
      for (unsigned V : CS.RVars)
        Key.push_back(Pt[V]);
      Key.push_back(Pt[CS.ElVars[0]]);
      EXPECT_TRUE(Needed.count(Key)) << "spurious transfer";
    });
  }
}
