//===- tests/comm/FinalizationTest.cpp ------------------------*- C++ -*-===//
//
// Section 4.4.3: finalization communication — moving each element's final
// value (or untouched initial value) to its home under the final layout.
//
//===----------------------------------------------------------------------===//

#include "comm/CommSet.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

bool containsFinal(const std::vector<CommSet> &Sets,
                   const std::vector<IntT> &Ps, const std::vector<IntT> &S,
                   const std::vector<IntT> &Pr, const std::vector<IntT> &El,
                   const std::map<std::string, IntT> &Params) {
  for (const CommSet &CS : Sets) {
    if (CS.PsVars.size() != Ps.size() || CS.SVars.size() != S.size() ||
        CS.PrVars.size() != Pr.size() || CS.ElVars.size() != El.size())
      continue;
    System Sys = CS.Sys;
    auto Pin = [&Sys](const std::vector<unsigned> &Vars,
                      const std::vector<IntT> &Vals) {
      for (unsigned K = 0; K != Vars.size(); ++K)
        Sys.addEQ(Sys.varExpr(Vars[K]).plusConst(-Vals[K]));
    };
    Pin(CS.PsVars, Ps);
    Pin(CS.SVars, S);
    Pin(CS.PrVars, Pr);
    Pin(CS.ElVars, El);
    for (unsigned I = 0; I != Sys.space().size(); ++I)
      if (Sys.space().kind(I) == VarKind::Param)
        Sys.addEQ(
            Sys.varExpr(I).plusConst(-Params.at(Sys.space().name(I))));
    if (Sys.checkIntegerFeasible() == Feasibility::Feasible)
      return true;
  }
  return false;
}

} // namespace

TEST(FinalizationTest, RedistributionOfComputedValues) {
  // Values are computed under owner-computes on blocks of 4 but must end
  // up cyclic: every element moves from block owner to cyclic owner.
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
for i = 0 to N {
  A[i] = i;
}
)");
  LastWriteTree AT = buildArrayLastWrites(P, 0);
  ASSERT_TRUE(AT.Exact);
  Decomposition Blocks = blockData(P, 0, 0, 4);
  Decomposition Cyc = cyclicData(P, 0, 0);
  Decomposition Comp = ownerComputes(P, 0, Blocks);

  std::map<std::string, IntT> Params{{"N", 11}};
  std::vector<CommSet> All;
  for (const LWTContext &Ctx : AT.Contexts) {
    ASSERT_TRUE(Ctx.HasWriter); // every element is written
    for (CommSet &CS :
         buildFinalizationSets(P, AT, Ctx, &Comp, nullptr, Cyc, 1))
      All.push_back(std::move(CS));
  }
  ASSERT_FALSE(All.empty());
  // Element 5: computed on block owner 1, final home = cyclic owner 5.
  EXPECT_TRUE(containsFinal(All, {1}, {5}, {5}, {5}, Params));
  // Element 1: computed on 0, final home 1.
  EXPECT_TRUE(containsFinal(All, {0}, {1}, {1}, {1}, Params));
  // Element 0: computed on 0, final home 0: no transfer.
  EXPECT_FALSE(containsFinal(All, {0}, {0}, {0}, {0}, Params));
  // Total moved words = elements whose block owner != index.
  uint64_t Words = 0;
  for (const CommSet &CS : All)
    Words += countDistinct(CS, {CS.PrVars, CS.ElVars}, Params);
  uint64_t Expect = 0;
  for (IntT E = 0; E <= 11; ++E)
    if (E / 4 != E)
      ++Expect;
  EXPECT_EQ(Words, Expect);
}

TEST(FinalizationTest, UntouchedElementsMoveFromInitialOwners) {
  // Only half the array is written; the untouched half's initial values
  // must still reach the (different) final layout.
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
for i = 0 to 5 {
  A[i] = i;
}
)");
  LastWriteTree AT = buildArrayLastWrites(P, 0);
  Decomposition Init = blockData(P, 0, 0, 4);
  Decomposition Fin = blockData(P, 0, 0, 2);
  Decomposition Comp = ownerComputes(P, 0, Init);

  std::map<std::string, IntT> Params{{"N", 11}};
  std::vector<CommSet> All;
  unsigned BottomCtxs = 0;
  for (const LWTContext &Ctx : AT.Contexts) {
    if (!Ctx.HasWriter)
      ++BottomCtxs;
    for (CommSet &CS : buildFinalizationSets(
             P, AT, Ctx, Ctx.HasWriter ? &Comp : nullptr, &Init, Fin, 1))
      All.push_back(std::move(CS));
  }
  EXPECT_GE(BottomCtxs, 1u);
  // Untouched element 9: initial owner 9/4 = 2, final owner 9/2 = 4.
  EXPECT_TRUE(containsFinal(All, {2}, {}, {4}, {9}, Params));
  // Written element 5: producer owner 1, final owner 2.
  EXPECT_TRUE(containsFinal(All, {1}, {5}, {2}, {5}, Params));
  // Untouched element 8: initial owner 2, final owner 4.
  EXPECT_TRUE(containsFinal(All, {2}, {}, {4}, {8}, Params));
  // Element 1: initial/producer owner 0, final owner 0: no move.
  EXPECT_FALSE(containsFinal(All, {0}, {1}, {0}, {1}, Params));
}

TEST(FinalizationTest, IdenticalLayoutsProduceNoTraffic) {
  Program P = parseProgramOrDie(R"(
param N;
array A[N + 1];
for i = 0 to N {
  A[i] = i;
}
)");
  LastWriteTree AT = buildArrayLastWrites(P, 0);
  Decomposition D = blockData(P, 0, 0, 4);
  Decomposition Comp = ownerComputes(P, 0, D);
  for (const LWTContext &Ctx : AT.Contexts) {
    auto Sets = buildFinalizationSets(P, AT, Ctx, &Comp, &D, D, 1);
    EXPECT_TRUE(Sets.empty());
  }
}
