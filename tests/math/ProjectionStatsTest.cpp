//===- tests/math/ProjectionStatsTest.cpp ---------------------*- C++ -*-===//
//
// The polyhedral fast path: memoization counters, the bounded-cache
// eviction policy, budget-qualified Unknown results, and the
// conservative behavior of removeRedundant when the node budget is
// starved mid-proof.
//
//===----------------------------------------------------------------------===//

#include "math/System.h"

#include <gtest/gtest.h>

#include <thread>

using namespace dmcc;

namespace {

/// Restores this thread's options, caches and counters on scope exit
/// so tests cannot leak settings into each other.
struct ProjectionSandbox {
  ProjectionSandbox() {
    Saved = projectionOptions();
    projectionOptions() = ProjectionOptions();
    clearProjectionCaches();
    resetProjectionStats();
  }
  ~ProjectionSandbox() {
    projectionOptions() = Saved;
    clearProjectionCaches();
    resetProjectionStats();
  }
  ProjectionOptions Saved;
};

System boxSystem(IntT Lo, IntT Hi) {
  Space Sp;
  Sp.add("x", VarKind::Loop);
  Sp.add("y", VarKind::Loop);
  System S(std::move(Sp));
  S.addRange(0, Lo, Hi);
  S.addRange(1, Lo, Hi);
  return S;
}

/// A system that is integer-empty but rationally feasible, and whose
/// emptiness proof must enumerate the whole y range: 2x + 3y == 1 has
/// no solution with 0 <= x, y (every candidate y leaves a fractional or
/// negative x), so branch-and-bound visits every y before concluding.
System parityGapSystem(IntT Hi) {
  System S = boxSystem(0, Hi);
  AffineExpr E(2);
  E.coeff(0) = 2;
  E.coeff(1) = 3;
  E.constant() = -1;
  S.addEQ(std::move(E));
  return S;
}

TEST(ProjectionStats, FeasibilityCacheHitsAreCounted) {
  ProjectionSandbox Sandbox;
  System S = boxSystem(0, 10);
  EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Feasible);
  EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Feasible);
  const ProjectionStats &PS = projectionStats();
  EXPECT_EQ(PS.FeasQueries, 2u);
  EXPECT_EQ(PS.FeasCacheMisses, 1u);
  EXPECT_EQ(PS.FeasCacheHits, 1u);
  EXPECT_DOUBLE_EQ(PS.feasHitRate(), 0.5);
}

TEST(ProjectionStats, CacheDisabledMeansNoHits) {
  ProjectionSandbox Sandbox;
  projectionOptions().Cache = false;
  System S = boxSystem(0, 10);
  EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Feasible);
  EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Feasible);
  EXPECT_EQ(projectionStats().FeasCacheHits, 0u);
  EXPECT_EQ(projectionCacheEntries(), 0u);
}

TEST(ProjectionStats, EvictionKeepsTheCacheBounded) {
  ProjectionSandbox Sandbox;
  projectionOptions().CacheCapacity = 2;
  for (IntT Hi = 1; Hi <= 20; ++Hi) {
    System S = boxSystem(0, Hi);
    EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Feasible);
  }
  EXPECT_GT(projectionStats().CacheEvictions, 0u);
  EXPECT_LE(projectionCacheEntries(), 2u);
}

TEST(ProjectionStats, StarvedBudgetReportsUnknown) {
  ProjectionSandbox Sandbox;
  System S = parityGapSystem(1000);
  EXPECT_EQ(S.checkIntegerFeasible(1), Feasibility::Unknown);
  EXPECT_EQ(projectionStats().FeasUnknown, 1u);
  // A cached Unknown must not satisfy a better-funded query: the full
  // budget re-runs the search and proves emptiness.
  EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Empty);
  // The definite verdict now serves every budget, including tiny ones.
  EXPECT_EQ(S.checkIntegerFeasible(1), Feasibility::Empty);
}

TEST(ProjectionStats, RemoveRedundantKeepsConstraintsOnUnknown) {
  ProjectionSandbox Sandbox;
  // Over x + 3y >= 4 with x, y >= 0, the rational minimum of 2x + 3y is
  // 4 (at the fractional vertex (0, 4/3)) but the integer minimum is 5,
  // so 2x + 3y >= 5 is redundant over the integers only. Its exact test
  // (2x + 3y <= 4 with the rest) is rationally nonempty, so only the
  // budgeted branch-and-bound can prove it away — and every other
  // constraint's test region contains an integer point, so nothing else
  // is removable. A starved budget must therefore keep everything.
  System S = boxSystem(0, 1000);
  AffineExpr C1(2);
  C1.coeff(0) = 1;
  C1.coeff(1) = 3;
  C1.constant() = -4;
  AffineExpr Gap(2);
  Gap.coeff(0) = 2;
  Gap.coeff(1) = 3;
  Gap.constant() = -5;
  S.addGE(std::move(C1));
  S.addGE(std::move(Gap));
  unsigned Before = S.numConstraints();
  projectionOptions().Cache = false; // no cross-talk between the runs

  auto hasGapRow = [](const System &Sys) {
    for (const Constraint &C : Sys.constraints())
      if (!C.isEquality() && C.Expr.coeff(0) == 2 &&
          C.Expr.coeff(1) == 3 && C.Expr.constant() == -5)
        return true;
    return false;
  };

  System Starved = S;
  Starved.removeRedundant(1);
  EXPECT_EQ(Starved.numConstraints(), Before)
      << "an exhausted budget must keep constraints conservatively";
  EXPECT_TRUE(hasGapRow(Starved));

  System Funded = S;
  Funded.removeRedundant(2000000);
  EXPECT_EQ(Funded.numConstraints(), Before - 1);
  EXPECT_FALSE(hasGapRow(Funded))
      << "a funded exact test proves the integer-gap constraint "
         "redundant";
}

TEST(ProjectionStats, RedundancyQuickKillsAreCounted) {
  ProjectionSandbox Sandbox;
  System S = boxSystem(0, 10);
  // Same coefficient row as x >= 0 with a weaker constant: a pure
  // syntactic kill, no exact test needed.
  S.addGE(S.varExpr(0).plusConst(5));
  S.removeRedundant();
  EXPECT_EQ(S.numConstraints(), 4u);
  EXPECT_GT(projectionStats().RedundancyQuickKills, 0u);
}

TEST(ProjectionStats, ProjectionCacheServesRepeatedQueries) {
  ProjectionSandbox Sandbox;
  System S = boxSystem(0, 10);
  S.addGE(S.varExpr(1) - S.varExpr(0)); // x <= y
  System P1 = S.projectedOnto({0});
  System P2 = S.projectedOnto({0});
  EXPECT_EQ(projectionStats().ProjectionCalls, 2u);
  EXPECT_EQ(projectionStats().ProjectionCacheHits, 1u);
  EXPECT_EQ(P1.numConstraints(), P2.numConstraints());
  EXPECT_EQ(P1.numVars(), 1u);
}

TEST(ProjectionStats, OrderHeuristicPreservesProjectionSemantics) {
  ProjectionSandbox Sandbox;
  projectionOptions().Cache = false;
  System S = boxSystem(-6, 6);
  S.addGE(S.varExpr(0).scale(2) - S.varExpr(1).plusConst(-1));
  S.addGE(S.varExpr(1).scale(3) - S.varExpr(0));

  projectionOptions().OrderHeuristic = true;
  bool ExactOn = true;
  System POn = S.projectedOnto({1}, &ExactOn);
  projectionOptions().OrderHeuristic = false;
  bool ExactOff = true;
  System POff = S.projectedOnto({1}, &ExactOff);

  // Every y of an integer point of S lies in both projections (they are
  // overapproximations at worst); when both legs are exact they must
  // agree everywhere.
  for (IntT X = -6; X <= 6; ++X)
    for (IntT Y = -6; Y <= 6; ++Y)
      if (S.holds({X, Y})) {
        EXPECT_TRUE(POn.holds({Y})) << "y = " << Y;
        EXPECT_TRUE(POff.holds({Y})) << "y = " << Y;
      }
  if (ExactOn && ExactOff) {
    for (IntT Y = -8; Y <= 8; ++Y)
      EXPECT_EQ(POn.holds({Y}), POff.holds({Y})) << "y = " << Y;
  }
}

TEST(ProjectionStats, PhaseTimerAttributesExclusiveTime) {
  ProjectionSandbox Sandbox;
  resetPhaseProfiles();
  {
    PhaseTimer Outer("test.outer");
    System S = boxSystem(0, 50);
    EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Feasible);
    PhaseTimer Inner("test.inner");
    EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Feasible);
  }
  const std::vector<PhaseProfile> &Ps = phaseProfiles();
  ASSERT_EQ(Ps.size(), 2u);
  const PhaseProfile *Outer = nullptr, *Inner = nullptr;
  for (const PhaseProfile &P : Ps) {
    if (P.Name == "test.outer")
      Outer = &P;
    if (P.Name == "test.inner")
      Inner = &P;
  }
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Outer->Invocations, 1u);
  EXPECT_EQ(Inner->Invocations, 1u);
  // The inner phase's query is attributed to the inner row only; the
  // rows partition the work instead of double-counting nested phases.
  EXPECT_EQ(Outer->Delta.FeasQueries, 1u) << "outer row is exclusive";
  EXPECT_EQ(Inner->Delta.FeasQueries, 1u);
  EXPECT_GE(Outer->Seconds, 0.0);
  EXPECT_GE(Inner->Seconds, 0.0);
  resetPhaseProfiles();
  EXPECT_TRUE(phaseProfiles().empty());
}

TEST(ProjectionStats, SequentialSiblingsPartitionUnderOneParent) {
  ProjectionSandbox Sandbox;
  resetPhaseProfiles();
  {
    PhaseTimer Parent("test.parent");
    {
      PhaseTimer A("test.a");
      EXPECT_EQ(boxSystem(0, 7).checkIntegerFeasible(),
                Feasibility::Feasible);
    }
    {
      PhaseTimer B("test.b");
      EXPECT_EQ(boxSystem(0, 8).checkIntegerFeasible(),
                Feasibility::Feasible);
      EXPECT_EQ(boxSystem(0, 9).checkIntegerFeasible(),
                Feasibility::Feasible);
    }
  }
  uint64_t Total = 0;
  for (const PhaseProfile &P : phaseProfiles())
    Total += P.Delta.FeasQueries;
  EXPECT_EQ(Total, projectionStats().FeasQueries)
      << "phase rows must sum to the thread totals";
  for (const PhaseProfile &P : phaseProfiles()) {
    if (P.Name == "test.parent")
      EXPECT_EQ(P.Delta.FeasQueries, 0u);
    if (P.Name == "test.a")
      EXPECT_EQ(P.Delta.FeasQueries, 1u);
    if (P.Name == "test.b")
      EXPECT_EQ(P.Delta.FeasQueries, 2u);
  }
  resetPhaseProfiles();
}

TEST(ProjectionStats, StateIsThreadLocal) {
  ProjectionSandbox Sandbox;
  projectionOptions().CacheCapacity = 4096; // distinctive main-thread value
  System S = boxSystem(0, 10);
  EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Feasible);
  uint64_t MainQueries = projectionStats().FeasQueries;
  std::size_t MainEntries = projectionCacheEntries();
  EXPECT_GT(MainEntries, 0u);

  unsigned PeerCapacity = 0;
  uint64_t PeerQueries = 0;
  std::size_t PeerEntriesBefore = 0, PeerEntriesAfter = 0;
  std::thread Peer([&] {
    // A fresh thread sees default options, zero counters, empty caches —
    // and whatever it does there stays there.
    PeerCapacity = projectionOptions().CacheCapacity;
    PeerEntriesBefore = projectionCacheEntries();
    for (IntT Hi = 1; Hi <= 5; ++Hi)
      (void)boxSystem(0, Hi).checkIntegerFeasible();
    PeerQueries = projectionStats().FeasQueries;
    PeerEntriesAfter = projectionCacheEntries();
  });
  Peer.join();

  EXPECT_EQ(PeerCapacity, ProjectionOptions().CacheCapacity)
      << "main-thread option edits must not leak into other threads";
  EXPECT_EQ(PeerEntriesBefore, 0u);
  EXPECT_EQ(PeerQueries, 5u);
  EXPECT_GT(PeerEntriesAfter, 0u);
  EXPECT_EQ(projectionStats().FeasQueries, MainQueries)
      << "peer-thread queries must not move main-thread counters";
  EXPECT_EQ(projectionCacheEntries(), MainEntries)
      << "peer-thread cache fills must not touch main-thread caches";
}

} // namespace
