//===- tests/math/ProjectionPropertyTest.cpp ------------------*- C++ -*-===//
//
// Randomized property tests: Fourier-Motzkin projection, feasibility,
// redundancy removal and enumeration are checked against brute-force
// enumeration over a bounding box.
//
//===----------------------------------------------------------------------===//

#include "math/System.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

using namespace dmcc;

namespace {

constexpr IntT BoxLo = -6;
constexpr IntT BoxHi = 6;
constexpr unsigned NumVars = 3;

/// A random system over NumVars variables, bounded by the box.
System randomSystem(std::mt19937 &Rng) {
  Space Sp;
  Sp.add("x", VarKind::Loop);
  Sp.add("y", VarKind::Loop);
  Sp.add("z", VarKind::Loop);
  System S(std::move(Sp));
  for (unsigned I = 0; I != NumVars; ++I)
    S.addRange(I, BoxLo, BoxHi);
  std::uniform_int_distribution<int> NumCons(2, 5);
  std::uniform_int_distribution<int> Coef(-3, 3);
  std::uniform_int_distribution<int> Cst(-6, 6);
  std::uniform_int_distribution<int> EqDist(0, 4);
  for (int C = NumCons(Rng); C-- > 0;) {
    AffineExpr E(NumVars);
    for (unsigned I = 0; I != NumVars; ++I)
      E.coeff(I) = Coef(Rng);
    E.constant() = Cst(Rng);
    if (E.isConstant())
      continue;
    if (EqDist(Rng) == 0)
      S.addEQ(std::move(E));
    else
      S.addGE(std::move(E));
  }
  return S;
}

/// All integer points of S within the box.
std::set<std::vector<IntT>> bruteForcePoints(const System &S) {
  std::set<std::vector<IntT>> Pts;
  std::vector<IntT> V(NumVars);
  for (V[0] = BoxLo; V[0] <= BoxHi; ++V[0])
    for (V[1] = BoxLo; V[1] <= BoxHi; ++V[1])
      for (V[2] = BoxLo; V[2] <= BoxHi; ++V[2])
        if (S.holds(V))
          Pts.insert(V);
  return Pts;
}

class ProjectionProperty : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(ProjectionProperty, FMEliminationIsSoundAndTracksExactness) {
  std::mt19937 Rng(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    System S = randomSystem(Rng);
    auto Pts = bruteForcePoints(S);
    for (unsigned Elim = 0; Elim != NumVars; ++Elim) {
      bool Exact = true;
      System R = S.fmEliminated(Elim, &Exact);
      ASSERT_FALSE(R.involves(Elim));
      // Soundness: every point of S (with any value in the eliminated
      // coordinate) satisfies R.
      for (const auto &P : Pts)
        EXPECT_TRUE(R.holds(P))
            << "projection lost a point, seed " << GetParam();
      if (!Exact)
        continue;
      // Exactness: every point of R (within the box, eliminated coordinate
      // arbitrary) has a preimage in S for some integer value.
      std::vector<IntT> V(NumVars);
      for (V[0] = BoxLo; V[0] <= BoxHi; ++V[0])
        for (V[1] = BoxLo; V[1] <= BoxHi; ++V[1])
          for (V[2] = BoxLo; V[2] <= BoxHi; ++V[2]) {
            if (V[Elim] != 0)
              continue; // one representative per projected point
            if (!R.holds(V))
              continue;
            bool Found = false;
            std::vector<IntT> W = V;
            // The witness may lie slightly outside the box only if S
            // does not contain the box bounds; it does, so scan the box.
            for (W[Elim] = BoxLo; W[Elim] <= BoxHi && !Found; ++W[Elim])
              Found = S.holds(W);
            EXPECT_TRUE(Found)
                << "exact projection gained a point, seed " << GetParam();
          }
    }
  }
}

TEST_P(ProjectionProperty, IntegerFeasibilityMatchesBruteForce) {
  std::mt19937 Rng(GetParam() + 1000);
  for (int Trial = 0; Trial != 40; ++Trial) {
    System S = randomSystem(Rng);
    bool Any = !bruteForcePoints(S).empty();
    Feasibility F = S.checkIntegerFeasible();
    if (F == Feasibility::Unknown)
      continue; // budget exhausted; conservatively unchecked
    EXPECT_EQ(F == Feasibility::Feasible, Any)
        << "feasibility mismatch, seed " << GetParam();
    if (F == Feasibility::Feasible) {
      auto P = S.sampleIntPoint();
      ASSERT_TRUE(P.has_value());
      EXPECT_TRUE(S.holds(*P));
    }
  }
}

TEST_P(ProjectionProperty, EnumerationMatchesBruteForce) {
  std::mt19937 Rng(GetParam() + 2000);
  for (int Trial = 0; Trial != 20; ++Trial) {
    System S = randomSystem(Rng);
    auto Expected = bruteForcePoints(S);
    std::set<std::vector<IntT>> Got;
    std::vector<std::vector<IntT>> Order;
    S.enumeratePoints([&](const std::vector<IntT> &V) {
      Got.insert(V);
      Order.push_back(V);
    });
    EXPECT_EQ(Got, Expected) << "enumeration mismatch, seed " << GetParam();
    for (unsigned K = 1; K < Order.size(); ++K)
      EXPECT_TRUE(Order[K - 1] < Order[K]) << "not in lexicographic order";
  }
}

TEST_P(ProjectionProperty, RedundancyRemovalPreservesThePointSet) {
  std::mt19937 Rng(GetParam() + 3000);
  for (int Trial = 0; Trial != 20; ++Trial) {
    System S = randomSystem(Rng);
    auto Before = bruteForcePoints(S);
    System R = S;
    R.removeRedundant();
    auto After = bruteForcePoints(R);
    EXPECT_EQ(Before, After)
        << "redundancy removal changed the set, seed " << GetParam();
    EXPECT_LE(R.numConstraints(), S.numConstraints() + 1);
  }
}

TEST_P(ProjectionProperty, ProjectionOntoPrefixIsSound) {
  std::mt19937 Rng(GetParam() + 4000);
  for (int Trial = 0; Trial != 10; ++Trial) {
    System S = randomSystem(Rng);
    System R = S.projectedOnto({0, 1});
    ASSERT_EQ(R.numVars(), 2u);
    for (const auto &P : bruteForcePoints(S))
      EXPECT_TRUE(R.holds({P[0], P[1]}));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));
