//===- tests/math/RegionPropertyTest.cpp ----------------------*- C++ -*-===//
//
// Randomized properties of Region set algebra against brute force.
//
//===----------------------------------------------------------------------===//

#include "math/Region.h"

#include <gtest/gtest.h>

#include <random>

using namespace dmcc;

namespace {

constexpr IntT Lo = -5, Hi = 5;

Space xy() {
  Space Sp;
  Sp.add("x", VarKind::Loop);
  Sp.add("y", VarKind::Loop);
  return Sp;
}

System randomPiece(std::mt19937 &Rng) {
  std::uniform_int_distribution<int> Coef(-2, 2);
  std::uniform_int_distribution<int> Cst(-4, 4);
  std::uniform_int_distribution<int> NumC(1, 3);
  System S(xy());
  S.addRange(0, Lo, Hi);
  S.addRange(1, Lo, Hi);
  for (int C = NumC(Rng); C-- > 0;) {
    AffineExpr E(2);
    E.coeff(0) = Coef(Rng);
    E.coeff(1) = Coef(Rng);
    E.constant() = Cst(Rng);
    if (!E.isConstant())
      S.addGE(std::move(E));
  }
  return S;
}

bool bruteIn(const Region &R, IntT X, IntT Y) {
  return R.containsPoint({X, Y});
}

class RegionProperty : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(RegionProperty, SubtractMatchesBruteForce) {
  std::mt19937 Rng(GetParam() * 101 + 7);
  for (int Trial = 0; Trial != 12; ++Trial) {
    System A = randomPiece(Rng), B = randomPiece(Rng);
    Region RA = Region::fromSystem(A);
    Region RB = Region::fromSystem(B);
    Region D = RA.subtract(RB);
    ASSERT_TRUE(D.isExact());
    for (IntT X = Lo; X <= Hi; ++X)
      for (IntT Y = Lo; Y <= Hi; ++Y) {
        bool Expect = A.holds({X, Y}) && !B.holds({X, Y});
        EXPECT_EQ(bruteIn(D, X, Y), Expect)
            << "seed " << GetParam() << " trial " << Trial << " at ("
            << X << ", " << Y << ")";
      }
  }
}

TEST_P(RegionProperty, SubtractThenIntersectIsEmpty) {
  std::mt19937 Rng(GetParam() * 211 + 3);
  for (int Trial = 0; Trial != 10; ++Trial) {
    System A = randomPiece(Rng), B = randomPiece(Rng);
    Region D = Region::fromSystem(A).subtract(Region::fromSystem(B));
    D.intersectWith(B);
    EXPECT_TRUE(D.isIntegerEmpty())
        << "seed " << GetParam() << " trial " << Trial;
  }
}

TEST_P(RegionProperty, DoubleSubtractLeavesIntersection) {
  // A \ (A \ B) == A ∩ B.
  std::mt19937 Rng(GetParam() * 307 + 11);
  for (int Trial = 0; Trial != 8; ++Trial) {
    System A = randomPiece(Rng), B = randomPiece(Rng);
    Region RA = Region::fromSystem(A);
    Region D = RA.subtract(RA.subtract(Region::fromSystem(B)));
    for (IntT X = Lo; X <= Hi; ++X)
      for (IntT Y = Lo; Y <= Hi; ++Y) {
        bool Expect = A.holds({X, Y}) && B.holds({X, Y});
        EXPECT_EQ(bruteIn(D, X, Y), Expect)
            << "seed " << GetParam() << " trial " << Trial;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));
