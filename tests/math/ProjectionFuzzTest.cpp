//===- tests/math/ProjectionFuzzTest.cpp ----------------------*- C++ -*-===//
//
// Differential fuzzing of the polyhedral fast path: random constraint
// systems are solved twice, once with the memoization cache, syntactic
// quick-checks and elimination-order heuristic enabled and once with
// everything off. The accelerators must never change a definite
// feasibility verdict, the solution set survived by removeRedundant,
// or the overapproximation property of projections.
//
// Runs under its own binary (dmcc_projfuzz_test) with the `fuzz` ctest
// label so the default suite stays fast; DMCC_FUZZ_ITERS overrides the
// number of random systems.
//
//===----------------------------------------------------------------------===//

#include "math/System.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

using namespace dmcc;

namespace {

constexpr IntT BoxLo = -5;
constexpr IntT BoxHi = 5;

unsigned fuzzIters() {
  if (const char *E = std::getenv("DMCC_FUZZ_ITERS"))
    return static_cast<unsigned>(std::atoi(E));
  return 400;
}

/// Restores the process-wide projection state on scope exit.
struct ProjectionSandbox {
  ProjectionSandbox() {
    Saved = projectionOptions();
    projectionOptions() = ProjectionOptions();
    clearProjectionCaches();
    resetProjectionStats();
  }
  ~ProjectionSandbox() {
    projectionOptions() = Saved;
    clearProjectionCaches();
    resetProjectionStats();
  }
  ProjectionOptions Saved;
};

ProjectionOptions fastOptions() { return ProjectionOptions(); }

ProjectionOptions slowOptions() {
  ProjectionOptions O;
  O.Cache = false;
  O.QuickChecks = false;
  O.OrderHeuristic = false;
  return O;
}

/// A random system over 2-4 box-bounded variables with a few extra
/// random constraints (occasionally equalities).
System randomSystem(std::mt19937 &Rng) {
  std::uniform_int_distribution<unsigned> NumVarsDist(2, 4);
  unsigned NumVars = NumVarsDist(Rng);
  Space Sp;
  for (unsigned I = 0; I != NumVars; ++I)
    Sp.add("v" + std::to_string(I), VarKind::Loop);
  System S(std::move(Sp));
  for (unsigned I = 0; I != NumVars; ++I)
    S.addRange(I, BoxLo, BoxHi);
  std::uniform_int_distribution<int> NumCons(2, 6);
  std::uniform_int_distribution<int> Coef(-4, 4);
  std::uniform_int_distribution<int> Cst(-8, 8);
  std::uniform_int_distribution<int> EqDist(0, 5);
  for (int C = NumCons(Rng); C-- > 0;) {
    AffineExpr E(NumVars);
    for (unsigned I = 0; I != NumVars; ++I)
      E.coeff(I) = Coef(Rng);
    E.constant() = Cst(Rng);
    if (EqDist(Rng) == 0)
      S.addEQ(std::move(E));
    else
      S.addGE(std::move(E));
  }
  return S;
}

/// All integer points of \p S inside the bounding box.
std::vector<std::vector<IntT>> boxPoints(const System &S) {
  std::vector<std::vector<IntT>> Pts;
  unsigned N = S.numVars();
  std::vector<IntT> V(N, BoxLo);
  for (;;) {
    if (S.holds(V))
      Pts.push_back(V);
    unsigned K = N;
    while (K-- > 0) {
      if (++V[K] <= BoxHi)
        break;
      V[K] = BoxLo;
      if (K == 0)
        return Pts;
    }
  }
}

TEST(ProjectionFuzz, FeasibilityVerdictsAgree) {
  ProjectionSandbox Sandbox;
  std::mt19937 Rng(20260806);
  unsigned Iters = fuzzIters();
  for (unsigned It = 0; It != Iters; ++It) {
    System S = randomSystem(Rng);

    projectionOptions() = fastOptions();
    Feasibility Fast = S.checkIntegerFeasible();
    projectionOptions() = slowOptions();
    Feasibility Slow = S.checkIntegerFeasible();

    // Accelerators must not flip a definite verdict. (Unknown is legal
    // on either side: the search explores in the same order but the
    // shared budget can run out at different points across legs.)
    if (Fast != Feasibility::Unknown && Slow != Feasibility::Unknown) {
      EXPECT_EQ(Fast, Slow) << "iteration " << It << "\n" << S.str();
    }

    // Whatever either leg decided must match brute force.
    bool Any = !boxPoints(S).empty();
    if (Fast != Feasibility::Unknown) {
      EXPECT_EQ(Fast == Feasibility::Feasible, Any)
          << "iteration " << It << "\n" << S.str();
    }
  }
}

TEST(ProjectionFuzz, SampledPointsSatisfyTheSystem) {
  ProjectionSandbox Sandbox;
  std::mt19937 Rng(987654321);
  unsigned Iters = fuzzIters();
  for (unsigned It = 0; It != Iters; ++It) {
    System S = randomSystem(Rng);
    projectionOptions() = fastOptions();
    auto Fast = S.sampleIntPoint();
    projectionOptions() = slowOptions();
    auto Slow = S.sampleIntPoint();
    if (Fast) {
      EXPECT_TRUE(S.holds(*Fast)) << "iteration " << It << "\n" << S.str();
    }
    if (Slow) {
      EXPECT_TRUE(S.holds(*Slow)) << "iteration " << It << "\n" << S.str();
    }
    EXPECT_EQ(Fast.has_value(), Slow.has_value())
        << "iteration " << It << "\n" << S.str();
  }
}

TEST(ProjectionFuzz, RemoveRedundantPreservesTheSolutionSet) {
  ProjectionSandbox Sandbox;
  std::mt19937 Rng(13572468);
  unsigned Iters = fuzzIters();
  for (unsigned It = 0; It != Iters; ++It) {
    System S = randomSystem(Rng);

    System Fast = S;
    projectionOptions() = fastOptions();
    Fast.removeRedundant();
    System Slow = S;
    projectionOptions() = slowOptions();
    Slow.removeRedundant();

    // Both reduced systems must accept exactly the original points
    // over the box (removeRedundant never changes the solution set).
    unsigned N = S.numVars();
    std::vector<IntT> V(N, BoxLo);
    for (;;) {
      bool In = S.holds(V);
      EXPECT_EQ(Fast.holds(V), In) << "iteration " << It << "\n" << S.str();
      EXPECT_EQ(Slow.holds(V), In) << "iteration " << It << "\n" << S.str();
      unsigned K = N;
      bool Done = false;
      while (K-- > 0) {
        if (++V[K] <= BoxHi)
          break;
        V[K] = BoxLo;
        if (K == 0)
          Done = true;
      }
      if (Done)
        break;
    }
  }
}

TEST(ProjectionFuzz, ProjectionsContainTheTrueShadow) {
  ProjectionSandbox Sandbox;
  std::mt19937 Rng(24681357);
  unsigned Iters = fuzzIters();
  for (unsigned It = 0; It != Iters; ++It) {
    System S = randomSystem(Rng);
    // Project onto a strict prefix of the variables.
    std::uniform_int_distribution<unsigned> KeepDist(1, S.numVars() - 1);
    unsigned NumKeep = KeepDist(Rng);
    std::vector<unsigned> Keep;
    for (unsigned I = 0; I != NumKeep; ++I)
      Keep.push_back(I);

    projectionOptions() = fastOptions();
    bool FastExact = true;
    System Fast = S.projectedOnto(Keep, &FastExact);
    projectionOptions() = slowOptions();
    bool SlowExact = true;
    System Slow = S.projectedOnto(Keep, &SlowExact);

    // Every integer point of S projects into both results: projections
    // are overapproximations of the true shadow at worst.
    for (const std::vector<IntT> &P : boxPoints(S)) {
      std::vector<IntT> Sub(P.begin(), P.begin() + NumKeep);
      EXPECT_TRUE(Fast.holds(Sub)) << "iteration " << It << "\n" << S.str();
      EXPECT_TRUE(Slow.holds(Sub)) << "iteration " << It << "\n" << S.str();
    }

    // When both legs are exact they describe the same set: points
    // accepted by one must be accepted by the other.
    if (FastExact && SlowExact) {
      std::vector<IntT> V(NumKeep, BoxLo);
      for (;;) {
        EXPECT_EQ(Fast.holds(V), Slow.holds(V))
            << "iteration " << It << "\n" << S.str();
        unsigned K = NumKeep;
        bool Done = false;
        while (K-- > 0) {
          if (++V[K] <= BoxHi)
            break;
          V[K] = BoxLo;
          if (K == 0)
            Done = true;
        }
        if (Done)
          break;
      }
    }
  }
}

} // namespace
