//===- tests/math/SystemTest.cpp ------------------------------*- C++ -*-===//

#include "math/System.h"

#include <gtest/gtest.h>

#include <set>

using namespace dmcc;

namespace {

/// Builds a system over loop vars i, j and param N.
System ijN() {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("j", VarKind::Loop);
  Sp.add("N", VarKind::Param);
  return System(std::move(Sp));
}

} // namespace

TEST(SystemTest, NormalizeDropsTautologies) {
  System S = ijN();
  S.addGE(S.constExpr(5));
  S.addGE(S.varExpr(0));
  EXPECT_TRUE(S.normalize());
  EXPECT_EQ(S.numConstraints(), 1u);
}

TEST(SystemTest, NormalizeDetectsTrivialEmptiness) {
  System S = ijN();
  S.addGE(S.constExpr(-1));
  EXPECT_FALSE(S.normalize());
}

TEST(SystemTest, NormalizeGcdTightensInequalities) {
  // 2i - 5 >= 0 tightens to i - 3 >= 0 (i >= ceil(5/2) = 3).
  System S = ijN();
  S.addGE(S.varExpr(0).scale(2).plusConst(-5));
  EXPECT_TRUE(S.normalize());
  ASSERT_EQ(S.numConstraints(), 1u);
  EXPECT_EQ(S.constraints()[0].Expr.coeff(0), 1);
  EXPECT_EQ(S.constraints()[0].Expr.constant(), -3);
}

TEST(SystemTest, NormalizeGcdTestOnEqualities) {
  // 2i == 1 has no integer solution.
  System S = ijN();
  S.addEQ(S.varExpr(0).scale(2).plusConst(-1));
  EXPECT_FALSE(S.normalize());
}

TEST(SystemTest, NormalizeMergesOppositePairIntoEquality) {
  System S = ijN();
  AffineExpr E = S.varExpr(0) - S.varExpr(1); // i - j
  S.addGE(E);
  S.addGE(E.negated());
  EXPECT_TRUE(S.normalize());
  ASSERT_EQ(S.numConstraints(), 1u);
  EXPECT_TRUE(S.constraints()[0].isEquality());
}

TEST(SystemTest, NormalizeDeduplicates) {
  System S = ijN();
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(0).scale(3)); // same after gcd reduction
  EXPECT_TRUE(S.normalize());
  EXPECT_EQ(S.numConstraints(), 1u);
}

TEST(SystemTest, SubstituteAndRemoveVar) {
  System S = ijN();
  S.addGE(S.varExpr(0) - S.varExpr(1)); // i - j >= 0
  S.substitute(0, S.varExpr(2));        // i := N
  EXPECT_FALSE(S.involves(0));
  S.removeVar(0);
  EXPECT_EQ(S.numVars(), 2u);
  // Now: N - j >= 0 over [j, N].
  EXPECT_TRUE(S.holds({3, 5}));
  EXPECT_FALSE(S.holds({6, 5}));
}

TEST(SystemTest, FMEliminationTransitivity) {
  // i <= j, j <= N: eliminating j yields i <= N.
  System S = ijN();
  S.addLE(S.varExpr(0), S.varExpr(1));
  S.addLE(S.varExpr(1), S.varExpr(2));
  bool Exact = true;
  System R = S.fmEliminated(1, &Exact);
  EXPECT_TRUE(Exact);
  EXPECT_FALSE(R.involves(1));
  EXPECT_TRUE(R.holds({3, 0, 5}));
  EXPECT_FALSE(R.holds({6, 0, 5}));
}

TEST(SystemTest, FMEliminationUsesUnitEqualitySubstitution) {
  // j == i + 1 and j <= N: eliminating j gives i + 1 <= N.
  System S = ijN();
  S.addEq(S.varExpr(1), S.varExpr(0).plusConst(1));
  S.addLE(S.varExpr(1), S.varExpr(2));
  bool Exact = true;
  System R = S.fmEliminated(1, &Exact);
  EXPECT_TRUE(Exact);
  EXPECT_TRUE(R.holds({4, 0, 5}));
  EXPECT_FALSE(R.holds({5, 0, 5}));
}

TEST(SystemTest, FMEliminationInexactFlag) {
  // 2j >= i and 2j <= i + 1 constrain j to a width-1/2 rational window;
  // elimination with non-unit coefficients on both sides is inexact.
  System S = ijN();
  S.addGE(S.varExpr(1).scale(2) - S.varExpr(0));
  S.addGE(S.varExpr(0).plusConst(1) - S.varExpr(1).scale(2));
  bool Exact = true;
  (void)S.fmEliminated(1, &Exact);
  EXPECT_FALSE(Exact);
}

TEST(SystemTest, BoundsOf) {
  // 0 <= i, 2i <= N: bounds of i are lower (0)/1 and upper N/2.
  System S = ijN();
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(2) - S.varExpr(0).scale(2));
  std::vector<VarBound> Lo, Hi;
  S.boundsOf(0, Lo, Hi);
  ASSERT_EQ(Lo.size(), 1u);
  ASSERT_EQ(Hi.size(), 1u);
  EXPECT_EQ(Lo[0].Den, 1);
  EXPECT_TRUE(Lo[0].Num.isZero());
  EXPECT_EQ(Hi[0].Den, 2);
  EXPECT_EQ(Hi[0].Num.coeff(2), 1);
}

TEST(SystemTest, IntegerFeasibility) {
  // 0 <= i <= 5, i == j, j >= 4: feasible (i = j ∈ {4, 5}).
  System S = ijN();
  S.addRange(0, 0, 5);
  S.addEq(S.varExpr(0), S.varExpr(1));
  S.addGE(S.varExpr(1).plusConst(-4));
  S.addEQ(S.varExpr(2).plusConst(-10)); // pin N
  EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Feasible);

  S.addGE(S.varExpr(1).negated().plusConst(3)); // j <= 3: contradiction
  EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Empty);
}

TEST(SystemTest, IntegerFeasibilityCatchesParityGaps) {
  // 1 <= 2i <= 1 is rationally feasible (i = 1/2) but integer-empty.
  System S = ijN();
  S.addGE(S.varExpr(0).scale(2).plusConst(-1));
  S.addGE(S.constExpr(1) - S.varExpr(0).scale(2));
  S.addRange(1, 0, 0);
  S.addRange(2, 0, 0);
  EXPECT_EQ(S.checkIntegerFeasible(), Feasibility::Empty);
}

TEST(SystemTest, SampleIntPoint) {
  System S = ijN();
  S.addRange(0, 3, 7);
  S.addEq(S.varExpr(1), S.varExpr(0).scale(2)); // j = 2i
  S.addRange(2, 0, 0);
  auto P = S.sampleIntPoint();
  ASSERT_TRUE(P.has_value());
  EXPECT_TRUE(S.holds(*P));
  EXPECT_EQ((*P)[1], 2 * (*P)[0]);
}

TEST(SystemTest, EnumeratePointsTriangle) {
  // 0 <= i <= j <= 3 with N pinned: 10 points in lexicographic order.
  System S = ijN();
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(1) - S.varExpr(0));
  S.addGE(S.constExpr(3) - S.varExpr(1));
  S.addRange(2, 0, 0);
  std::vector<std::vector<IntT>> Pts;
  S.enumeratePoints([&](const std::vector<IntT> &V) { Pts.push_back(V); });
  ASSERT_EQ(Pts.size(), 10u);
  EXPECT_EQ(Pts.front()[0], 0);
  EXPECT_EQ(Pts.front()[1], 0);
  EXPECT_EQ(Pts.back()[0], 3);
  EXPECT_EQ(Pts.back()[1], 3);
  // Lexicographic order.
  for (unsigned K = 1; K < Pts.size(); ++K)
    EXPECT_TRUE(Pts[K - 1] < Pts[K]);
}

TEST(SystemTest, RemoveRedundant) {
  // i >= 0, i >= -5 (redundant), i <= N, i <= N + 3 (redundant).
  System S = ijN();
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(0).plusConst(5));
  S.addGE(S.varExpr(2) - S.varExpr(0));
  S.addGE(S.varExpr(2).plusConst(3) - S.varExpr(0));
  S.addRange(1, 0, 0);
  S.removeRedundant();
  // j's two range constraints merge to an equality; i keeps 2 constraints.
  unsigned CountI = 0;
  for (const Constraint &C : S.constraints())
    if (C.Expr.involves(0))
      ++CountI;
  EXPECT_EQ(CountI, 2u);
}

TEST(SystemTest, ProjectedOnto) {
  // 0 <= i <= j <= N; projecting onto (i, N) gives 0 <= i <= N.
  System S = ijN();
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(1) - S.varExpr(0));
  S.addGE(S.varExpr(2) - S.varExpr(1));
  System R = S.projectedOnto({0, 2});
  EXPECT_EQ(R.numVars(), 2u);
  EXPECT_EQ(R.space().name(0), "i");
  EXPECT_EQ(R.space().name(1), "N");
  EXPECT_TRUE(R.holds({0, 4}));
  EXPECT_TRUE(R.holds({4, 4}));
  EXPECT_FALSE(R.holds({5, 4}));
  EXPECT_FALSE(R.holds({-1, 4}));
}

TEST(SystemTest, AddMappedAlignsByName) {
  Space A;
  A.add("x", VarKind::Loop);
  A.add("y", VarKind::Loop);
  System SA(A);
  SA.addGE(SA.varExpr(0) - SA.varExpr(1)); // x - y >= 0

  Space B;
  B.add("y", VarKind::Loop);
  B.add("z", VarKind::Loop);
  B.add("x", VarKind::Loop);
  System SB(B);
  SB.addAllMapped(SA);
  ASSERT_EQ(SB.numConstraints(), 1u);
  // In B order (y, z, x): x - y >= 0.
  EXPECT_TRUE(SB.holds({1, 0, 2}));
  EXPECT_FALSE(SB.holds({2, 0, 1}));
}

TEST(SystemTest, MapExprRename) {
  Space A;
  A.add("i", VarKind::Loop);
  Space B;
  B.add("i_r", VarKind::Loop);
  AffineExpr E = AffineExpr::var(1, 0, 2).plusConst(1);
  AffineExpr M = mapExpr(E, A, B,
                         [](const std::string &N) { return N + "_r"; });
  EXPECT_EQ(M.coeff(0), 2);
  EXPECT_EQ(M.constant(), 1);
}

TEST(SystemTest, HoldsChecksAllConstraints) {
  System S = ijN();
  S.addRange(0, 0, 10);
  S.addEq(S.varExpr(0), S.varExpr(1));
  EXPECT_TRUE(S.holds({4, 4, 0}));
  EXPECT_FALSE(S.holds({4, 5, 0}));
  EXPECT_FALSE(S.holds({11, 11, 0}));
}
