//===- tests/math/RegionTest.cpp ------------------------------*- C++ -*-===//

#include "math/Region.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

System lineSegment(IntT Lo, IntT Hi) {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  System S(std::move(Sp));
  S.addRange(0, Lo, Hi);
  return S;
}

} // namespace

TEST(RegionTest, FromSystemAndContains) {
  Region R = Region::fromSystem(lineSegment(0, 9));
  EXPECT_TRUE(R.hasPieces());
  EXPECT_TRUE(R.containsPoint({0}));
  EXPECT_TRUE(R.containsPoint({9}));
  EXPECT_FALSE(R.containsPoint({10}));
  EXPECT_FALSE(R.containsPoint({-1}));
}

TEST(RegionTest, SubtractInterval) {
  Region A = Region::fromSystem(lineSegment(0, 9));
  Region B = Region::fromSystem(lineSegment(3, 5));
  Region D = A.subtract(B);
  EXPECT_TRUE(D.isExact());
  for (IntT I = 0; I <= 9; ++I)
    EXPECT_EQ(D.containsPoint({I}), I < 3 || I > 5) << "at " << I;
}

TEST(RegionTest, SubtractToEmpty) {
  Region A = Region::fromSystem(lineSegment(2, 4));
  Region B = Region::fromSystem(lineSegment(0, 9));
  Region D = A.subtract(B);
  EXPECT_TRUE(D.isIntegerEmpty());
}

TEST(RegionTest, SubtractEqualityPiece) {
  // [0,9] minus {i == 4} keeps everything except 4.
  System Pin = lineSegment(0, 9);
  System Eq(Pin.space());
  Eq.addEQ(Eq.varExpr(0).plusConst(-4));
  Region A = Region::fromSystem(Pin);
  Region B = Region::fromSystem(Eq);
  Region D = A.subtract(B);
  for (IntT I = 0; I <= 9; ++I)
    EXPECT_EQ(D.containsPoint({I}), I != 4) << "at " << I;
}

TEST(RegionTest, IntersectWith) {
  Region A = Region::fromSystem(lineSegment(0, 9));
  System Half(A.baseSpace());
  Half.addGE(Half.varExpr(0).plusConst(-6)); // i >= 6
  A.intersectWith(Half);
  EXPECT_FALSE(A.containsPoint({5}));
  EXPECT_TRUE(A.containsPoint({6}));
}

TEST(RegionTest, AuxVarsAreExistential) {
  // { i : exists q, i == 2q } = even numbers; containsPoint must search q.
  Space Sp;
  Sp.add("i", VarKind::Loop);
  System S(std::move(Sp));
  S.addRange(0, 0, 10);
  unsigned Q = S.addVar("@q", VarKind::Aux);
  S.addEq(S.varExpr(0), S.varExpr(Q).scale(2));
  Region R = Region::fromSystem(S);
  EXPECT_EQ(R.baseSpace().size(), 1u);
  EXPECT_TRUE(R.containsPoint({4}));
  EXPECT_FALSE(R.containsPoint({5}));
}

TEST(RegionTest, SubtractEvenNumbersViaAuxElimination) {
  // [0,10] minus the even numbers. The aux elimination here is inexact
  // (coefficient 2 on both sides), so the region must be marked inexact.
  Space Sp;
  Sp.add("i", VarKind::Loop);
  System Evens(Sp);
  Evens.addRange(0, 0, 10);
  unsigned Q = Evens.addVar("@q", VarKind::Aux);
  Evens.addEq(Evens.varExpr(0), Evens.varExpr(Q).scale(2));

  Region A = Region::fromSystem(lineSegment(0, 10));
  Region B = Region::fromSystem(Evens);
  Region D = A.subtract(B);
  EXPECT_FALSE(D.isExact());
}

TEST(RegionTest, EliminateAuxVarsExactCase) {
  // exists q: q == i + 1, q <= N  reduces exactly to i + 1 <= N.
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("N", VarKind::Param);
  System S(std::move(Sp));
  unsigned Q = S.addVar("@q", VarKind::Aux);
  S.addEq(S.varExpr(Q), S.varExpr(0).plusConst(1));
  S.addLE(S.varExpr(Q), S.varExpr(1));
  bool Exact = true;
  System R = eliminateAuxVars(S, &Exact);
  EXPECT_TRUE(Exact);
  EXPECT_EQ(R.numVars(), 2u);
  EXPECT_TRUE(R.holds({3, 4}));
  EXPECT_FALSE(R.holds({4, 4}));
}

TEST(RegionTest, PruneEmptyDropsContradictions) {
  Region R(lineSegment(0, 3).space());
  R.addPiece(lineSegment(0, 3));
  System Bad = lineSegment(5, 2); // empty
  R.addPiece(Bad);
  R.pruneEmpty();
  EXPECT_EQ(R.pieces().size(), 1u);
}
