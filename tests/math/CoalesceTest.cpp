//===- tests/math/CoalesceTest.cpp ----------------------------*- C++ -*-===//
//
// coalesceSystems: undoing case splits by entailment-based convex hulls.
//
//===----------------------------------------------------------------------===//

#include "math/Region.h"

#include <gtest/gtest.h>

#include <random>

using namespace dmcc;

namespace {

System interval(IntT Lo, IntT Hi) {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  System S(std::move(Sp));
  S.addRange(0, Lo, Hi);
  return S;
}

} // namespace

TEST(CoalesceTest, AdjacentIntervalsMerge) {
  auto U = coalesceSystems(interval(0, 4), interval(5, 9));
  ASSERT_TRUE(U.has_value());
  for (IntT I = -2; I <= 11; ++I)
    EXPECT_EQ(U->holds({I}), I >= 0 && I <= 9) << "at " << I;
}

TEST(CoalesceTest, OverlappingIntervalsMerge) {
  auto U = coalesceSystems(interval(0, 6), interval(4, 9));
  ASSERT_TRUE(U.has_value());
  EXPECT_TRUE(U->holds({5}));
  EXPECT_FALSE(U->holds({10}));
}

TEST(CoalesceTest, GapRefusesToMerge) {
  // {0..3} u {6..9} is not convex.
  EXPECT_FALSE(coalesceSystems(interval(0, 3), interval(6, 9)).has_value());
}

TEST(CoalesceTest, CaseSplitWithEntailedEquality) {
  // The pattern from self-reuse pieces: {p == 2, r == 2} u
  // {p >= 3, r == p}: the union is exactly {p >= 2, r == p} because the
  // first piece also satisfies r == p.
  Space Sp;
  Sp.add("p", VarKind::Proc);
  Sp.add("r", VarKind::Loop);
  Sp.add("N", VarKind::Param);
  System A(Sp), B(Sp);
  A.addEQ(A.varExpr(0).plusConst(-2));
  A.addEQ(A.varExpr(1).plusConst(-2));
  A.addGE(A.varExpr(2) - A.varExpr(0)); // p <= N
  B.addGE(B.varExpr(0).plusConst(-3));
  B.addEq(B.varExpr(1), B.varExpr(0));
  B.addGE(B.varExpr(2) - B.varExpr(0));
  auto U = coalesceSystems(A, B);
  ASSERT_TRUE(U.has_value());
  EXPECT_TRUE(U->holds({2, 2, 10}));
  EXPECT_TRUE(U->holds({7, 7, 10}));
  EXPECT_FALSE(U->holds({1, 1, 10}));
  EXPECT_FALSE(U->holds({5, 4, 10}));
}

TEST(CoalesceTest, DifferentSpacesRefuse) {
  Space SpA;
  SpA.add("i", VarKind::Loop);
  Space SpB;
  SpB.add("j", VarKind::Loop);
  System A(SpA), B(SpB);
  A.addRange(0, 0, 3);
  B.addRange(0, 0, 3);
  EXPECT_FALSE(coalesceSystems(A, B).has_value());
}

TEST(CoalesceTest, EmptyPieceYieldsOther) {
  System Bad = interval(5, 2); // empty
  auto U = coalesceSystems(interval(0, 3), Bad);
  ASSERT_TRUE(U.has_value());
  EXPECT_TRUE(U->holds({2}));
  EXPECT_FALSE(U->holds({4}));
}

TEST(CoalesceTest, RandomizedNeverGainsOrLosesPoints) {
  std::mt19937 Rng(7);
  std::uniform_int_distribution<int> D(-5, 5);
  for (int Trial = 0; Trial != 60; ++Trial) {
    IntT A0 = D(Rng), A1 = A0 + std::abs(D(Rng));
    IntT B0 = D(Rng), B1 = B0 + std::abs(D(Rng));
    System A = interval(A0, A1), B = interval(B0, B1);
    auto U = coalesceSystems(A, B);
    for (IntT I = -12; I <= 12; ++I) {
      bool InUnion = (I >= A0 && I <= A1) || (I >= B0 && I <= B1);
      if (U) {
        EXPECT_EQ(U->holds({I}), InUnion)
            << "trial " << Trial << " at " << I;
      }
    }
    // If the union is convex, coalescing must succeed.
    bool Convex = A1 + 1 >= B0 && B1 + 1 >= A0;
    if (Convex)
      EXPECT_TRUE(U.has_value()) << "trial " << Trial;
  }
}

TEST(CoalesceTest, TwoDimensionalStripes) {
  // Two half-planes of a rectangle split by a diagonal case: i <= j and
  // i >= j + 1 partition the box; the hull is the whole box.
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("j", VarKind::Loop);
  System A(Sp), B(Sp);
  for (System *S : {&A, &B}) {
    S->addRange(0, 0, 5);
    S->addRange(1, 0, 5);
  }
  A.addGE(A.varExpr(1) - A.varExpr(0));                // i <= j
  B.addGE(B.varExpr(0) - B.varExpr(1).plusConst(1));   // i >= j + 1
  auto U = coalesceSystems(A, B);
  ASSERT_TRUE(U.has_value());
  unsigned Count = 0;
  U->enumeratePoints([&](const std::vector<IntT> &) { ++Count; });
  EXPECT_EQ(Count, 36u);
}
