//===- tests/math/AffineTest.cpp ------------------------------*- C++ -*-===//

#include "math/Affine.h"

#include <gtest/gtest.h>

using namespace dmcc;

namespace {

Space twoVarSpace() {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("j", VarKind::Loop);
  return Sp;
}

} // namespace

TEST(AffineTest, Construction) {
  AffineExpr Z(3);
  EXPECT_TRUE(Z.isZero());
  AffineExpr C = AffineExpr::constant(3, 7);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constant(), 7);
  AffineExpr V = AffineExpr::var(3, 1, 2);
  EXPECT_EQ(V.coeff(1), 2);
  EXPECT_FALSE(V.isConstant());
}

TEST(AffineTest, Arithmetic) {
  AffineExpr A = AffineExpr::var(2, 0, 2).plusConst(3); // 2i + 3
  AffineExpr B = AffineExpr::var(2, 1, -1).plusConst(1); // -j + 1
  AffineExpr S = A + B; // 2i - j + 4
  EXPECT_EQ(S.coeff(0), 2);
  EXPECT_EQ(S.coeff(1), -1);
  EXPECT_EQ(S.constant(), 4);
  AffineExpr D = A - B; // 2i + j + 2
  EXPECT_EQ(D.coeff(1), 1);
  EXPECT_EQ(D.constant(), 2);
  AffineExpr N = A.negated();
  EXPECT_EQ(N.coeff(0), -2);
  EXPECT_EQ(N.constant(), -3);
  AffineExpr Sc = A;
  Sc.scale(3);
  EXPECT_EQ(Sc.coeff(0), 6);
  EXPECT_EQ(Sc.constant(), 9);
}

TEST(AffineTest, Evaluate) {
  // 2i - j + 4 at (i, j) = (5, 3) is 11.
  AffineExpr E = AffineExpr::var(2, 0, 2);
  E += AffineExpr::var(2, 1, -1);
  E = E.plusConst(4);
  EXPECT_EQ(E.evaluate({5, 3}), 11);
}

TEST(AffineTest, Substitute) {
  // E = 3i + j; substitute i := j + 2 gives 4j + 6.
  AffineExpr E = AffineExpr::var(2, 0, 3) + AffineExpr::var(2, 1);
  AffineExpr Repl = AffineExpr::var(2, 1).plusConst(2);
  E.substitute(0, Repl);
  EXPECT_EQ(E.coeff(0), 0);
  EXPECT_EQ(E.coeff(1), 4);
  EXPECT_EQ(E.constant(), 6);
}

TEST(AffineTest, AppendRemoveVar) {
  AffineExpr E = AffineExpr::var(2, 0, 5);
  E.appendVar();
  EXPECT_EQ(E.size(), 3u);
  EXPECT_EQ(E.coeff(2), 0);
  E.removeVar(1);
  EXPECT_EQ(E.size(), 2u);
  EXPECT_EQ(E.coeff(0), 5);
}

TEST(AffineTest, GcdAndDivExact) {
  AffineExpr E = AffineExpr::var(2, 0, 6) + AffineExpr::var(2, 1, -9);
  EXPECT_EQ(E.coeffGcd(), 3);
  AffineExpr F = E;
  F = F.plusConst(12);
  F.divExact(3);
  EXPECT_EQ(F.coeff(0), 2);
  EXPECT_EQ(F.coeff(1), -3);
  EXPECT_EQ(F.constant(), 4);
}

TEST(AffineTest, FirstVar) {
  AffineExpr E(3);
  unsigned Idx = 99;
  EXPECT_FALSE(E.firstVar(Idx));
  E.coeff(2) = -4;
  EXPECT_TRUE(E.firstVar(Idx));
  EXPECT_EQ(Idx, 2u);
}

TEST(AffineTest, Str) {
  Space Sp = twoVarSpace();
  AffineExpr E = AffineExpr::var(2, 0, 2) + AffineExpr::var(2, 1, -1);
  E = E.plusConst(-3);
  EXPECT_EQ(E.str(Sp), "2*i - j - 3");
  EXPECT_EQ(AffineExpr(2).str(Sp), "0");
  EXPECT_EQ(AffineExpr::constant(2, -5).str(Sp), "-5");
  EXPECT_EQ(AffineExpr::var(2, 1).str(Sp), "j");
}

TEST(AffineTest, ConstraintHolds) {
  // i - j >= 0.
  Constraint C = Constraint::ge(AffineExpr::var(2, 0) -
                                AffineExpr::var(2, 1));
  EXPECT_TRUE(C.holds({3, 2}));
  EXPECT_TRUE(C.holds({2, 2}));
  EXPECT_FALSE(C.holds({1, 2}));
  Constraint E = Constraint::eq(AffineExpr::var(2, 0) -
                                AffineExpr::var(2, 1));
  EXPECT_TRUE(E.holds({2, 2}));
  EXPECT_FALSE(E.holds({3, 2}));
}

TEST(AffineTest, ConstraintStr) {
  Space Sp = twoVarSpace();
  Constraint C = Constraint::ge(AffineExpr::var(2, 0).plusConst(-3));
  EXPECT_EQ(C.str(Sp), "i - 3 >= 0");
  Constraint E = Constraint::eq(AffineExpr::var(2, 1));
  EXPECT_EQ(E.str(Sp), "j == 0");
}

TEST(AffineTest, CheckedOps) {
  EXPECT_EQ(gcdInt(12, -18), 6);
  EXPECT_EQ(gcdInt(0, 5), 5);
  EXPECT_EQ(gcdInt(0, 0), 0);
  EXPECT_EQ(lcmInt(4, 6), 12);
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(floorMod(-7, 3), 2);
  EXPECT_EQ(floorMod(7, 3), 1);
}
