//===- tests/math/LexOptTest.cpp ------------------------------*- C++ -*-===//

#include "math/LexOpt.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>

using namespace dmcc;

namespace {

/// Space [i, j, N] with i, j objectives and N a parameter.
System ijN() {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("j", VarKind::Loop);
  Sp.add("N", VarKind::Param);
  return System(std::move(Sp));
}

Space paramSpaceN() {
  Space Sp;
  Sp.add("N", VarKind::Param);
  return Sp;
}

} // namespace

TEST(LexOptTest, ConstantBox) {
  System S = ijN();
  S.addRange(0, 0, 7);
  S.addRange(1, -2, 3);
  LexResult R = lexMax(S, {0, 1});
  ASSERT_EQ(R.Pieces.size(), 1u);
  auto V = evaluatePiecewise(R, paramSpaceN(), {0});
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ((*V)[0], 7);
  EXPECT_EQ((*V)[1], 3);
}

TEST(LexOptTest, ParametricUpperBound) {
  // 0 <= i <= N: max i = N, defined only when N >= 0.
  System S = ijN();
  S.addGE(S.varExpr(0));
  S.addLE(S.varExpr(0), S.varExpr(2));
  S.addRange(1, 0, 0);
  LexResult R = lexMax(S, {0});
  for (IntT N : {-3, 0, 5}) {
    auto V = evaluatePiecewise(R, paramSpaceN(), {N});
    if (N < 0) {
      EXPECT_FALSE(V.has_value());
    } else {
      ASSERT_TRUE(V.has_value());
      EXPECT_EQ((*V)[0], N);
    }
  }
}

TEST(LexOptTest, MinOfTwoBoundsSplitsIntoPieces) {
  // 0 <= i <= N and i <= 10: max i = min(N, 10).
  System S = ijN();
  S.addGE(S.varExpr(0));
  S.addLE(S.varExpr(0), S.varExpr(2));
  S.addGE(S.constExpr(10) - S.varExpr(0));
  S.addRange(1, 0, 0);
  LexResult R = lexMax(S, {0});
  EXPECT_GE(R.Pieces.size(), 2u);
  for (IntT N : {0, 4, 10, 11, 25}) {
    auto V = evaluatePiecewise(R, paramSpaceN(), {N});
    ASSERT_TRUE(V.has_value()) << "N = " << N;
    EXPECT_EQ((*V)[0], std::min<IntT>(N, 10)) << "N = " << N;
  }
}

TEST(LexOptTest, FloorDivisionIntroducesAuxVar) {
  // 0 <= 3i <= N: max i = floor(N/3).
  System S = ijN();
  S.addGE(S.varExpr(0));
  S.addLE(S.varExpr(0).scale(3), S.varExpr(2));
  S.addRange(1, 0, 0);
  LexResult R = lexMax(S, {0});
  for (IntT N : {0, 1, 2, 3, 7, 12}) {
    auto V = evaluatePiecewise(R, paramSpaceN(), {N});
    ASSERT_TRUE(V.has_value()) << "N = " << N;
    EXPECT_EQ((*V)[0], N / 3) << "N = " << N;
  }
}

TEST(LexOptTest, TwoObjectivesTriangle) {
  // 0 <= i <= j <= N: lexmax (i, j) = (N, N).
  System S = ijN();
  S.addGE(S.varExpr(0));
  S.addGE(S.varExpr(1) - S.varExpr(0));
  S.addGE(S.varExpr(2) - S.varExpr(1));
  LexResult R = lexMax(S, {0, 1});
  auto V = evaluatePiecewise(R, paramSpaceN(), {6});
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ((*V)[0], 6);
  EXPECT_EQ((*V)[1], 6);
}

TEST(LexOptTest, DependentSecondObjective) {
  // 0 <= i <= N, j == i - 3, j >= 0: lexmax = (N, N-3) for N >= 3.
  System S = ijN();
  S.addGE(S.varExpr(0));
  S.addLE(S.varExpr(0), S.varExpr(2));
  S.addEq(S.varExpr(1), S.varExpr(0).plusConst(-3));
  S.addGE(S.varExpr(1));
  LexResult R = lexMax(S, {0, 1});
  auto V = evaluatePiecewise(R, paramSpaceN(), {10});
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ((*V)[0], 10);
  EXPECT_EQ((*V)[1], 7);
  EXPECT_FALSE(evaluatePiecewise(R, paramSpaceN(), {2}).has_value());
}

TEST(LexOptTest, LexMinMirrorsLexMax) {
  // 2 <= i <= N, 3 <= j <= N: lexmin (i, j) = (2, 3).
  System S = ijN();
  S.addRange(0, 2, 100);
  S.addLE(S.varExpr(0), S.varExpr(2));
  S.addGE(S.varExpr(1).plusConst(-3));
  S.addLE(S.varExpr(1), S.varExpr(2));
  LexResult R = lexMin(S, {0, 1});
  auto V = evaluatePiecewise(R, paramSpaceN(), {9});
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ((*V)[0], 2);
  EXPECT_EQ((*V)[1], 3);
}

TEST(LexOptTest, LexMinWithFloor) {
  // 2i >= N, i <= 100: min i = ceil(N/2).
  System S = ijN();
  S.addGE(S.varExpr(0).scale(2) - S.varExpr(2));
  S.addGE(S.constExpr(100) - S.varExpr(0));
  S.addRange(1, 0, 0);
  LexResult R = lexMin(S, {0});
  for (IntT N : {0, 1, 5, 8}) {
    auto V = evaluatePiecewise(R, paramSpaceN(), {N});
    ASSERT_TRUE(V.has_value()) << "N = " << N;
    EXPECT_EQ((*V)[0], (N + 1) / 2) << "N = " << N;
  }
}

TEST(LexOptTest, PaperFigure2LastWriteRelation) {
  // The last write for read [tr, ir] in "for t: for i = 3..N: X[i]=X[i-3]"
  // is the write [tw, iw] with X-index iw == ir - 3, at the deepest level:
  // same tw == tr, iw == ir - 3, valid iff iw >= 3, i.e. ir >= 6.
  Space Sp;
  Sp.add("tw", VarKind::Loop);
  Sp.add("iw", VarKind::Loop);
  Sp.add("tr", VarKind::Param);
  Sp.add("ir", VarKind::Param);
  Sp.add("T", VarKind::Param);
  Sp.add("N", VarKind::Param);
  System S(std::move(Sp));
  // Write bounds: 0 <= tw <= T, 3 <= iw <= N.
  S.addGE(S.varExpr(0));
  S.addLE(S.varExpr(0), S.varExpr(4));
  S.addGE(S.varExpr(1).plusConst(-3));
  S.addLE(S.varExpr(1), S.varExpr(5));
  // Same array location: iw == ir - 3.
  S.addEq(S.varExpr(1), S.varExpr(3).plusConst(-3));
  // Execution order: write precedes read at level 2: tw == tr, iw < ir
  // (iw = ir - 3 < ir always holds).
  S.addEq(S.varExpr(0), S.varExpr(2));
  LexResult R = lexMax(S, {0, 1});

  Space PS;
  PS.add("tr", VarKind::Param);
  PS.add("ir", VarKind::Param);
  PS.add("T", VarKind::Param);
  PS.add("N", VarKind::Param);
  // Read [1, 8]: writer exists, [tw, iw] = [1, 5].
  auto V = evaluatePiecewise(R, PS, {1, 8, 4, 10});
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ((*V)[0], 1);
  EXPECT_EQ((*V)[1], 5);
  // Read [1, 4]: X[1] is never written (iw = 1 < 3): no writer.
  EXPECT_FALSE(evaluatePiecewise(R, PS, {1, 4, 4, 10}).has_value());
}

TEST(LexOptTest, RandomizedAgainstBruteForce) {
  std::mt19937 Rng(42);
  std::uniform_int_distribution<int> Coef(-2, 2);
  std::uniform_int_distribution<int> Cst(-4, 4);
  for (int Trial = 0; Trial != 30; ++Trial) {
    System S = ijN();
    S.addRange(0, -5, 5);
    S.addRange(1, -5, 5);
    for (int C = 0; C != 3; ++C) {
      AffineExpr E(3);
      E.coeff(0) = Coef(Rng);
      E.coeff(1) = Coef(Rng);
      E.coeff(2) = Coef(Rng);
      E.constant() = Cst(Rng);
      if (!E.isConstant())
        S.addGE(std::move(E));
    }
    LexResult R = lexMax(S, {0, 1});
    if (!R.Exact)
      continue; // approximate results are exercised by curated tests
    for (IntT N = -2; N <= 2; ++N) {
      // Brute-force lexmax over the box with N pinned.
      std::optional<std::vector<IntT>> Best;
      for (IntT I = -5; I <= 5; ++I)
        for (IntT J = -5; J <= 5; ++J)
          if (S.holds({I, J, N})) {
            std::vector<IntT> P{I, J};
            if (!Best || P > *Best)
              Best = P;
          }
      auto Got = evaluatePiecewise(R, paramSpaceN(), {N});
      ASSERT_EQ(Got.has_value(), Best.has_value())
          << "trial " << Trial << " N " << N;
      if (Best)
        EXPECT_EQ(*Got, *Best) << "trial " << Trial << " N " << N;
    }
  }
}
