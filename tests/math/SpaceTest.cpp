//===- tests/math/SpaceTest.cpp -------------------------------*- C++ -*-===//

#include "math/Space.h"

#include <gtest/gtest.h>

using namespace dmcc;

TEST(SpaceTest, AddAndLookup) {
  Space Sp;
  EXPECT_EQ(Sp.size(), 0u);
  unsigned I = Sp.add("i", VarKind::Loop);
  unsigned N = Sp.add("N", VarKind::Param);
  EXPECT_EQ(I, 0u);
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(Sp.indexOf("i"), 0);
  EXPECT_EQ(Sp.indexOf("N"), 1);
  EXPECT_EQ(Sp.indexOf("j"), -1);
  EXPECT_TRUE(Sp.contains("i"));
  EXPECT_FALSE(Sp.contains("j"));
  EXPECT_EQ(Sp.name(0), "i");
  EXPECT_EQ(Sp.kind(1), VarKind::Param);
}

TEST(SpaceTest, Remove) {
  Space Sp;
  Sp.add("a", VarKind::Loop);
  Sp.add("b", VarKind::Loop);
  Sp.add("c", VarKind::Loop);
  Sp.remove(1);
  EXPECT_EQ(Sp.size(), 2u);
  EXPECT_EQ(Sp.indexOf("a"), 0);
  EXPECT_EQ(Sp.indexOf("c"), 1);
  EXPECT_EQ(Sp.indexOf("b"), -1);
}

TEST(SpaceTest, IndicesOfKind) {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("N", VarKind::Param);
  Sp.add("j", VarKind::Loop);
  Sp.add("q", VarKind::Aux);
  std::vector<unsigned> Loops = Sp.indicesOfKind(VarKind::Loop);
  ASSERT_EQ(Loops.size(), 2u);
  EXPECT_EQ(Loops[0], 0u);
  EXPECT_EQ(Loops[1], 2u);
  EXPECT_EQ(Sp.indicesOfKind(VarKind::Aux).size(), 1u);
  EXPECT_TRUE(Sp.indicesOfKind(VarKind::Proc).empty());
}

TEST(SpaceTest, FreshNameAvoidsCollisions) {
  Space Sp;
  Sp.add("q", VarKind::Aux);
  std::string F = Sp.freshName("q");
  EXPECT_NE(F, "q");
  EXPECT_FALSE(Sp.contains(F));
  EXPECT_EQ(Sp.freshName("r"), "r");
}

TEST(SpaceTest, Equality) {
  Space A, B;
  A.add("i", VarKind::Loop);
  B.add("i", VarKind::Loop);
  EXPECT_EQ(A, B);
  B.add("j", VarKind::Loop);
  EXPECT_NE(A, B);
}

TEST(SpaceTest, Str) {
  Space Sp;
  Sp.add("i", VarKind::Loop);
  Sp.add("N", VarKind::Param);
  EXPECT_EQ(Sp.str(), "[i, N]");
}

TEST(SpaceTest, VarKindNames) {
  EXPECT_STREQ(varKindName(VarKind::Loop), "loop");
  EXPECT_STREQ(varKindName(VarKind::Param), "param");
  EXPECT_STREQ(varKindName(VarKind::Proc), "proc");
  EXPECT_STREQ(varKindName(VarKind::Data), "data");
  EXPECT_STREQ(varKindName(VarKind::Aux), "aux");
}
