# LU decomposition (paper Section 7) in the dmcc mini-language with
# decomposition directives. Try:
#   dmcc-cli examples/lu.dm --print-spmd
#   dmcc-cli examples/lu.dm --simulate 8 --param N=64 --functional
param N = 64;
array X[N + 1][N + 1];

decompose X cyclic(0);     # row k of X on virtual processor k

for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
