# Floyd-Warshall-shaped transitive-closure nest in the algebraic
# (add-multiply) semiring: iteration k updates every path count
# through vertex k, reading the in-place pivot row and column. The
# exact data-flow analysis has to separate the k-th row/column written
# inside iteration k from the values carried from iteration k-1. The
# damping divisor keeps the doubly-exponential path counts finite in
# double precision. Try:
#   dmcc-cli examples/floyd.dm --print-spmd
#   dmcc-cli examples/floyd.dm --simulate 4 --functional
param N = 11;
array D[N + 1][N + 1];

decompose D cyclic(0);     # row i of D on virtual processor i

for k = 0 to N {
  for i = 0 to N {
    for j = 0 to N {
      D[i][j] = D[i][j] + D[i][k] * D[k][j] / 64;
    }
  }
}
