# 2-D Jacobi five-point relaxation with ping-pong arrays, rows
# block-distributed with replicated borders (Figure 4's overlap
# layout). Try:
#   dmcc-cli examples/jacobi2d.dm --print-spmd
#   dmcc-cli examples/jacobi2d.dm --simulate 4 --functional
param T = 4;
param N = 15;
array A[N + 1][N + 1];
array B[N + 1][N + 1];

decompose A block(0, 4) overlap(1, 1);
final A block(0, 4);
decompose B block(0, 4);
compute S0 block(1, 4);    # sweep row i on the owner of B[i][*]
compute S1 block(1, 4);

for t = 0 to T {
  for i = 1 to N - 1 {
    for j = 1 to N - 1 {
      B[i][j] = A[i - 1][j] + A[i][j - 1] + A[i][j] + A[i][j + 1]
                + A[i + 1][j];
    }
  }
  for i2 = 1 to N - 1 {
    for j2 = 1 to N - 1 {
      A[i2][j2] = B[i2][j2];
    }
  }
}
