//===- examples/matmul.cpp ------------------------------------*- C++ -*-===//
//
// Dense matrix multiplication on a 2-D processor grid: C += A * B with
// all three matrices in square tiles. The compiler derives the panel
// communication automatically from the initial data layout: each tile
// owner fetches the A row-panel and B column-panel it needs (the
// classical broadcast structure of distributed matmul), and the result
// tiles never move.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace dmcc;

int main() {
  Program P = parseProgramOrDie(R"(
param N;
array A[N][N];
array B[N][N];
array C[N][N];
for i = 0 to N - 1 {
  for j = 0 to N - 1 {
    for k = 0 to N - 1 {
      C[i][j] = C[i][j] + A[i][k] * B[k][j];
    }
  }
}
)");
  std::printf("== C += A * B on a 2-D grid of 4x4-element tiles ==\n");

  auto Tiles = [&](unsigned Id) {
    Space Sp = arraySourceSpace(P, Id);
    Decomposition D(Sp, 2);
    D.setBlock(0, AffineExpr::var(Sp.size(), 0), 4);
    D.setBlock(1, AffineExpr::var(Sp.size(), 1), 4);
    return D;
  };
  CompileSpec Spec;
  {
    // Iteration (i, j, k) runs on the owner of C[i][j].
    Space Sp = stmtSourceSpace(P, 0);
    Decomposition Comp(Sp, 2);
    Comp.setBlock(0, AffineExpr::var(Sp.size(), 0), 4);
    Comp.setBlock(1, AffineExpr::var(Sp.size(), 1), 4);
    Spec.Stmts.push_back(StmtPlan{0, std::move(Comp)});
  }
  Spec.InitialData.emplace(0, Tiles(0));
  Spec.InitialData.emplace(1, Tiles(1));
  Spec.InitialData.emplace(2, Tiles(2));
  Spec.FinalData.emplace(2, Tiles(2));

  CompilerOptions Opts;
  Opts.GridDims = 2;
  CompiledProgram CP = compile(P, Spec, Opts);
  std::printf("compiled in %.2f s: %u communication sets\n",
              CP.Stats.CompileSeconds,
              CP.Stats.NumCommSetsAfterSelfReuse);

  std::map<std::string, IntT> Params{{"N", 12}};
  SeqInterpreter Gold(P, Params);
  Gold.run();

  SimOptions SO;
  SO.PhysGrid = {3, 3}; // one physical processor per 4x4 tile
  SO.ParamValues = Params;
  Simulator Sim(P, CP, Spec, SO);
  SimResult R = Sim.run();
  if (!R.Ok) {
    std::printf("simulation failed: %s\n", R.Error.c_str());
    return 1;
  }
  unsigned Wrong = 0;
  for (IntT I = 0; I < 12; ++I)
    for (IntT J = 0; J < 12; ++J) {
      auto Got = Sim.finalValue(2, {I, J});
      if (!Got || *Got != Gold.arrayValue(2, {I, J}))
        ++Wrong;
    }
  std::printf("3x3 grid run: %llu messages, %llu words, makespan %.5f s\n",
              static_cast<unsigned long long>(R.Messages),
              static_cast<unsigned long long>(R.Words), R.MakespanSeconds);
  std::printf("verification vs sequential: %s (%u wrong of 144)\n",
              Wrong ? "FAILED" : "ok", Wrong);
  std::printf("each tile owner fetched its A row-panel and B column-panel (4 "
              "remote tiles, %d words) once: the panel "
              "broadcast was derived, not hand-written.\n",
              2 * 4 * 12 - 2 * 16);
  return Wrong == 0 ? 0 : 1;
}
