//===- examples/privatization.cpp -----------------------------*- C++ -*-===//
//
// The array-privatization example of Section 2.2.2: a work array written
// and read within each outer iteration. Alias-based dependence analysis
// reports a level-1 dependence and would serialize the outer loop; exact
// data flow proves every read's producer is in the same outer iteration,
// so the outer loop parallelizes with a private copy per processor — on
// a distributed-memory machine that copy is simply the processor's local
// memory, and the compiled program moves zero words.
//
//===----------------------------------------------------------------------===//

#include "baseline/LocationCentric.h"
#include "dataflow/LastWriteTree.h"
#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace dmcc;

int main() {
  Program P = parseProgramOrDie(R"(
param N;
array w[N + 1];
array out[N + 1][N + 1];
for i = 0 to N {
  for j = 0 to N {
    w[j] = i + j;
  }
  for j2 = 0 to N {
    out[i][j2] = w[j2];
  }
}
)");
  std::printf("== source ==\n%s\n", P.str().c_str());

  // What alias analysis sees: a loop-carried dependence at level 1.
  unsigned MaxLevel = maxDependenceLevel(P, /*ReadStmt=*/1, /*ReadIdx=*/0);
  std::printf("alias-based dependence analysis: max level %u "
              "(the outer loop looks serial)\n\n",
              MaxLevel);

  // What exact data flow sees: every read's producer shares the outer
  // iteration (loop-independent, level 2).
  LastWriteTree T = buildLWT(P, 1, 0);
  std::printf("== Last Write Tree for w[j2] ==\n%s\n", T.str(P).c_str());

  // Compile with the outer loop distributed cyclically: both inner loops
  // of an outer iteration run on the same processor, so w is naturally
  // private and no communication is generated for it.
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, cyclicComputation(P, 0, /*LoopPos=*/0)});
  Spec.Stmts.push_back(StmtPlan{1, cyclicComputation(P, 1, 0)});
  Spec.InitialData.emplace(0, replicatedData(P, 0));
  Spec.FinalData.emplace(1, cyclicData(P, 1, /*Dim=*/0));
  CompiledProgram CP = compile(P, Spec);
  std::printf("communication sets generated: %u\n",
              CP.Stats.NumCommSetsAfterSelfReuse);

  std::map<std::string, IntT> Params{{"N", 19}};
  SeqInterpreter Gold(P, Params);
  Gold.run();
  SimOptions SO;
  SO.PhysGrid = {4};
  SO.ParamValues = Params;
  Simulator Sim(P, CP, Spec, SO);
  SimResult R = Sim.run();
  if (!R.Ok) {
    std::printf("run failed: %s\n", R.Error.c_str());
    return 1;
  }
  unsigned Wrong = 0;
  for (IntT I = 0; I <= 19; ++I)
    for (IntT J = 0; J <= 19; ++J) {
      auto Got = Sim.finalValue(1, {I, J});
      if (!Got || *Got != Gold.arrayValue(1, {I, J}))
        ++Wrong;
    }
  std::printf("simulated on 4 processors: %llu messages, %llu words; "
              "verification %s\n",
              static_cast<unsigned long long>(R.Messages),
              static_cast<unsigned long long>(R.Words),
              Wrong ? "FAILED" : "ok");
  std::printf("(the work array never crosses the network: it is private "
              "per processor)\n");
  return Wrong == 0 ? 0 : 1;
}
