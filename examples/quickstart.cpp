//===- examples/quickstart.cpp --------------------------------*- C++ -*-===//
//
// Quickstart: compile the paper's running example (Figure 2) end to end.
//
//   for t = 0..T:  for i = 3..N:  X[i] = X[i-3]
//
// with iterations distributed in blocks of 32 across a 1-D processor
// grid. Shows every stage: the exact data-flow analysis (the Last Write
// Tree of Figure 3), the derived communication sets (Figure 5), the
// generated SPMD program (Figures 7/10), and a simulated run verified
// against sequential execution.
//
//===----------------------------------------------------------------------===//

#include "dataflow/LastWriteTree.h"
#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace dmcc;

int main() {
  // 1. Write the kernel in the affine mini-language.
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
for t = 0 to T {
  for i = 3 to N {
    X[i] = X[i - 3];
  }
}
)");
  std::printf("== source ==\n%s\n", P.str().c_str());

  // 2. Exact array data flow: who produced the value each read consumes?
  LastWriteTree LWT = buildLWT(P, /*ReadStmt=*/0, /*ReadIdx=*/0);
  std::printf("== Last Write Tree (Figure 3) ==\n%s\n",
              LWT.str(P).c_str());

  // 3. Decompositions: blocks of 32 iterations / 32 array elements.
  CompileSpec Spec;
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 32)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 32));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 32));

  // 4. Compile: communication sets, optimizations, SPMD generation.
  CompiledProgram CP = compile(P, Spec);
  std::printf("== compiled in %.3f s: %u communication sets ==\n",
              CP.Stats.CompileSeconds, CP.Stats.NumCommSetsAfterSelfReuse);
  std::printf("%s\n", CP.Spmd.str().c_str());

  // 5. Execute on the simulated distributed-memory machine and verify
  // against the sequential interpreter.
  std::map<std::string, IntT> Params{{"T", 6}, {"N", 127}};
  SeqInterpreter Gold(P, Params);
  Gold.run();

  SimOptions SO;
  SO.PhysGrid = {4};
  SO.ParamValues = Params;
  Simulator Sim(P, CP, Spec, SO);
  SimResult R = Sim.run();
  if (!R.Ok) {
    std::printf("simulation failed: %s\n", R.Error.c_str());
    return 1;
  }
  unsigned Wrong = 0, Checked = 0;
  for (IntT K = 0; K <= 127; ++K) {
    auto Got = Sim.finalValue(0, {K});
    ++Checked;
    if (!Got || *Got != Gold.arrayValue(0, {K}))
      ++Wrong;
  }
  std::printf("== simulated run ==\n");
  std::printf("processors: 4 physical; messages: %llu (%llu words); "
              "makespan %.4f s\n",
              static_cast<unsigned long long>(R.Messages),
              static_cast<unsigned long long>(R.Words),
              R.MakespanSeconds);
  std::printf("verification: %u/%u final elements identical to "
              "sequential execution\n",
              Checked - Wrong, Checked);
  return Wrong == 0 ? 0 : 1;
}
