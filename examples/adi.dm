# ADI (alternating-direction implicit) integration kernel: a local
# forward sweep along each row, then a pipelined forward sweep down
# the columns. Under the row-block layout the row sweep is entirely
# local and the column sweep communicates one block-boundary row per
# step — the paper's classic pipelining example. Try:
#   dmcc-cli examples/adi.dm --print-spmd
#   dmcc-cli examples/adi.dm --simulate 4 --functional
param T = 2;
param N = 15;
array X[N + 1][N + 1];

decompose X block(0, 4);   # row blocks

for t = 0 to T {
  for i = 0 to N {
    for j = 1 to N {
      X[i][j] = X[i][j] + X[i][j - 1];
    }
  }
  for i2 = 1 to N {
    for j2 = 0 to N {
      X[i2][j2] = X[i2][j2] + X[i2 - 1][j2];
    }
  }
}
