//===- examples/stencil_pipeline.cpp --------------------------*- C++ -*-===//
//
// The two motivating parallelization patterns of Section 2.2.1:
//
//  1. A 1-D Jacobi stencil whose block decomposition replicates border
//     elements (overlap) — written data is replicated, so the
//     owner-computes rule alone could not express it, but value-centric
//     communication handles it directly.
//
//  2. A doacross pipeline: X[i][0] accumulates across a row distributed
//     by blocks of columns, so the partial sum flows processor to
//     processor during the computation.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace dmcc;

static int runStencil() {
  Program P = parseProgramOrDie(R"(
param T;
param N;
array X[N + 1];
array Y[N + 1];
for t = 0 to T {
  for i = 1 to N - 1 {
    Y[i] = X[i - 1] + X[i] + X[i + 1];
  }
  for i2 = 1 to N - 1 {
    X[i2] = Y[i2];
  }
}
)");
  std::printf("== 1-D Jacobi stencil, blocks of 16 with overlapped "
              "borders ==\n");
  CompileSpec Spec;
  // The initial layout replicates one element on each side of every
  // block (Section 2.2.1's border replication): boundary reads start
  // local; only produced values cross later.
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 16)});
  Spec.Stmts.push_back(StmtPlan{1, blockComputation(P, 1, 1, 16)});
  Spec.InitialData.emplace(0, blockData(P, 0, 0, 16, /*OverlapLo=*/1,
                                        /*OverlapHi=*/1));
  Spec.InitialData.emplace(1, blockData(P, 1, 0, 16));
  Spec.FinalData.emplace(0, blockData(P, 0, 0, 16));
  Spec.FinalData.emplace(1, blockData(P, 1, 0, 16));
  CompiledProgram CP = compile(P, Spec);
  std::printf("communication sets: %u (initial-data fetches eliminated "
              "by the overlap)\n",
              CP.Stats.NumCommSetsAfterSelfReuse);

  std::map<std::string, IntT> Params{{"T", 5}, {"N", 63}};
  SeqInterpreter Gold(P, Params);
  Gold.run();
  SimOptions SO;
  SO.PhysGrid = {4};
  SO.ParamValues = Params;
  Simulator Sim(P, CP, Spec, SO);
  SimResult R = Sim.run();
  if (!R.Ok) {
    std::printf("stencil run failed: %s\n", R.Error.c_str());
    return 1;
  }
  unsigned Wrong = 0;
  for (IntT K = 0; K <= 63; ++K) {
    auto Got = Sim.finalValue(0, {K});
    if (!Got || *Got != Gold.arrayValue(0, {K}))
      ++Wrong;
  }
  std::printf("verified %s: %llu messages, %llu words, makespan %.4f s\n\n",
              Wrong ? "FAILED" : "ok",
              static_cast<unsigned long long>(R.Messages),
              static_cast<unsigned long long>(R.Words), R.MakespanSeconds);
  return Wrong == 0 ? 0 : 1;
}

static int runPipeline() {
  // Section 2.2.1: for i: for j: X[i][0] += X[i][j], with X distributed
  // in blocks of columns. The accumulator X[i][0] is written by every
  // column block in turn: the computation decomposition pipelines the
  // inner loop across processors — impossible to express with the
  // owner-computes rule, natural with explicit computation
  // decompositions.
  Program P = parseProgramOrDie(R"(
param N;
array X[N][N];
for i = 0 to N - 1 {
  for j = 1 to N - 1 {
    X[i][0] = X[i][0] + X[i][j];
  }
}
)");
  std::printf("== doacross pipeline: row sums into X[i][0], blocks of "
              "columns ==\n");
  CompileSpec Spec;
  // Iteration (i, j) executes on the owner of column j.
  Spec.Stmts.push_back(StmtPlan{0, blockComputation(P, 0, 1, 8)});
  Spec.InitialData.emplace(0, blockData(P, 0, /*Dim=*/1, 8));
  Spec.FinalData.emplace(0, blockData(P, 0, 1, 8));
  CompiledProgram CP = compile(P, Spec);
  std::printf("communication sets: %u (the partial sum passes from "
              "processor to processor)\n",
              CP.Stats.NumCommSetsAfterSelfReuse);

  std::map<std::string, IntT> Params{{"N", 32}};
  SeqInterpreter Gold(P, Params);
  Gold.run();
  SimOptions SO;
  SO.PhysGrid = {4};
  SO.ParamValues = Params;
  Simulator Sim(P, CP, Spec, SO);
  SimResult R = Sim.run();
  if (!R.Ok) {
    std::printf("pipeline run failed: %s\n", R.Error.c_str());
    return 1;
  }
  unsigned Wrong = 0;
  for (IntT Row = 0; Row < 32; ++Row) {
    auto Got = Sim.finalValue(0, {Row, 0});
    if (!Got || *Got != Gold.arrayValue(0, {Row, 0}))
      ++Wrong;
  }
  std::printf("verified %s: %llu messages, makespan %.5f s\n",
              Wrong ? "FAILED" : "ok",
              static_cast<unsigned long long>(R.Messages),
              R.MakespanSeconds);
  return Wrong == 0 ? 0 : 1;
}

int main() {
  int Rc = runStencil();
  if (Rc)
    return Rc;
  return runPipeline();
}
