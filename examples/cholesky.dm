# Cholesky-style right-looking factorization (square-root-free LDL'
# shape: the pivot scaling stands in for the sqrt, which keeps the
# kernel inside the affine mini-language while preserving the paper's
# dependence structure: a pivot-row broadcast feeding a triangular
# trailing update). Try:
#   dmcc-cli examples/cholesky.dm --print-spmd
#   dmcc-cli examples/cholesky.dm --simulate 4 --functional
param N = 24;
array A[N + 1][N + 1];

decompose A cyclic(0);     # row i of A on virtual processor i

for k = 0 to N {
  for i = k + 1 to N {
    A[i][k] = A[i][k] / A[k][k];
  }
  for j = k + 1 to N {
    for i2 = j to N {
      A[i2][j] = A[i2][j] - A[i2][k] * A[j][k];
    }
  }
}
