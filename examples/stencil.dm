# 1-D Jacobi stencil with explicit computation decompositions.
#   dmcc-cli examples/stencil.dm --simulate 4 --param T=8 --param N=63 --functional
param T = 8;
param N = 63;
array X[N + 1];
array Y[N + 1];

decompose X block(0, 16);
decompose Y block(0, 16);
compute S0 block(1, 16);   # iteration i of the sweep on the owner of Y[i]
compute S1 block(1, 16);

for t = 0 to T {
  for i = 1 to N - 1 {
    Y[i] = X[i - 1] + X[i] + X[i + 1];
  }
  for i2 = 1 to N - 1 {
    X[i2] = Y[i2];
  }
}
