//===- examples/WorkloadKernels.h - Reference workload kernels -*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-C++ reference kernels matching the workload specs under
/// examples/ (cholesky.dm, jacobi2d.dm, jacobi3d.dm, adi.dm,
/// floyd.dm). Each kernel seeds its arrays with initialArrayValue()
/// — the same deterministic pattern the sequential interpreter and
/// the SPMD simulator use — and evaluates the statements in exactly
/// the mini-language order and association, so the expected contents
/// are bit-identical doubles, not approximations. Shared by the
/// workload_suite example and the `workloads`-labeled differential
/// test suites.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_EXAMPLES_WORKLOADKERNELS_H
#define DMCC_EXAMPLES_WORKLOADKERNELS_H

#include "ir/Interp.h"

#include <vector>

namespace dmcc {
namespace workloads {

/// Row-major array of extent per dimension, seeded like the simulator.
inline std::vector<double> seedArray(unsigned ArrayId, IntT Flat) {
  std::vector<double> A(static_cast<size_t>(Flat));
  for (IntT I = 0; I != Flat; ++I)
    A[static_cast<size_t>(I)] = initialArrayValue(ArrayId, I);
  return A;
}

/// examples/cholesky.dm: square-root-free right-looking factorization.
/// Returns the final contents of A ((N+1) x (N+1), row-major).
inline std::vector<double> refCholesky(IntT N) {
  const IntT M = N + 1;
  std::vector<double> A = seedArray(0, M * M);
  auto At = [&](IntT I, IntT J) -> double & {
    return A[static_cast<size_t>(I * M + J)];
  };
  for (IntT K = 0; K <= N; ++K) {
    for (IntT I = K + 1; I <= N; ++I)
      At(I, K) = At(I, K) / At(K, K);
    for (IntT J = K + 1; J <= N; ++J)
      for (IntT I = J; I <= N; ++I)
        At(I, J) = At(I, J) - At(I, K) * At(J, K);
  }
  return A;
}

/// examples/jacobi2d.dm: five-point relaxation with ping-pong arrays.
/// Returns {A, B} final contents ((N+1) x (N+1) each).
inline std::vector<std::vector<double>> refJacobi2D(IntT T, IntT N) {
  const IntT M = N + 1;
  std::vector<double> A = seedArray(0, M * M), B = seedArray(1, M * M);
  auto At = [&](std::vector<double> &X, IntT I, IntT J) -> double & {
    return X[static_cast<size_t>(I * M + J)];
  };
  for (IntT t = 0; t <= T; ++t) {
    for (IntT I = 1; I <= N - 1; ++I)
      for (IntT J = 1; J <= N - 1; ++J)
        At(B, I, J) = At(A, I - 1, J) + At(A, I, J - 1) + At(A, I, J) +
                      At(A, I, J + 1) + At(A, I + 1, J);
    for (IntT I = 1; I <= N - 1; ++I)
      for (IntT J = 1; J <= N - 1; ++J)
        At(A, I, J) = At(B, I, J);
  }
  return {A, B};
}

/// examples/jacobi3d.dm: one seven-point smoothing sweep into B, then
/// a copy-back into A. Returns {A, B} final contents ((N+1)^3 each).
inline std::vector<std::vector<double>> refJacobi3D(IntT N) {
  const IntT M = N + 1;
  std::vector<double> A = seedArray(0, M * M * M),
                      B = seedArray(1, M * M * M);
  auto At = [&](std::vector<double> &X, IntT I, IntT J,
                IntT K) -> double & {
    return X[static_cast<size_t>((I * M + J) * M + K)];
  };
  for (IntT I = 1; I <= N - 1; ++I)
    for (IntT J = 1; J <= N - 1; ++J)
      for (IntT K = 1; K <= N - 1; ++K)
        At(B, I, J, K) = At(A, I - 1, J, K) + At(A, I + 1, J, K) +
                         At(A, I, J - 1, K) + At(A, I, J + 1, K) +
                         At(A, I, J, K - 1) + At(A, I, J, K + 1) +
                         At(A, I, J, K);
  for (IntT I = 1; I <= N - 1; ++I)
    for (IntT J = 1; J <= N - 1; ++J)
      for (IntT K = 1; K <= N - 1; ++K)
        At(A, I, J, K) = At(B, I, J, K);
  return {A, B};
}

/// examples/adi.dm: row sweep then pipelined column sweep, in place.
/// Returns the final contents of X ((N+1) x (N+1)).
inline std::vector<double> refADI(IntT T, IntT N) {
  const IntT M = N + 1;
  std::vector<double> X = seedArray(0, M * M);
  auto At = [&](IntT I, IntT J) -> double & {
    return X[static_cast<size_t>(I * M + J)];
  };
  for (IntT t = 0; t <= T; ++t) {
    for (IntT I = 0; I <= N; ++I)
      for (IntT J = 1; J <= N; ++J)
        At(I, J) = At(I, J) + At(I, J - 1);
    for (IntT I = 1; I <= N; ++I)
      for (IntT J = 0; J <= N; ++J)
        At(I, J) = At(I, J) + At(I - 1, J);
  }
  return X;
}

/// examples/floyd.dm: transitive-closure nest in the add-multiply
/// semiring with the damping divisor. Returns the final contents of D.
inline std::vector<double> refFloyd(IntT N) {
  const IntT M = N + 1;
  std::vector<double> D = seedArray(0, M * M);
  auto At = [&](IntT I, IntT J) -> double & {
    return D[static_cast<size_t>(I * M + J)];
  };
  for (IntT K = 0; K <= N; ++K)
    for (IntT I = 0; I <= N; ++I)
      for (IntT J = 0; J <= N; ++J)
        At(I, J) = At(I, J) + At(I, K) * At(K, J) / 64.0;
  return D;
}

} // namespace workloads
} // namespace dmcc

#endif // DMCC_EXAMPLES_WORKLOADKERNELS_H
