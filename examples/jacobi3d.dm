# 3-D Jacobi seven-point relaxation, planes (dimension 0)
# block-distributed with replicated boundary planes: one smoothing
# sweep into B, then a copy-back into A's final layout. (The
# time-iterated variant of the same stencil lives in jacobi2d.dm; in
# three dimensions the time-carried exact data-flow analysis is
# exponentially costlier, so this workload exercises the 3-D overlap
# communication on a single sweep.) Try:
#   dmcc-cli examples/jacobi3d.dm --print-spmd
#   dmcc-cli examples/jacobi3d.dm --simulate 4 --functional
param N = 7;
array A[N + 1][N + 1][N + 1];
array B[N + 1][N + 1][N + 1];

decompose A block(0, 2) overlap(1, 1);
final A block(0, 2);
decompose B block(0, 2);
compute S0 block(0, 2);    # plane i on the owner of B[i][*][*]
compute S1 block(0, 2);

for i = 1 to N - 1 {
  for j = 1 to N - 1 {
    for k = 1 to N - 1 {
      B[i][j][k] = A[i - 1][j][k] + A[i + 1][j][k] + A[i][j - 1][k]
                   + A[i][j + 1][k] + A[i][j][k - 1] + A[i][j][k + 1]
                   + A[i][j][k];
    }
  }
}
for i2 = 1 to N - 1 {
  for j2 = 1 to N - 1 {
    for k2 = 1 to N - 1 {
      A[i2][j2][k2] = B[i2][j2][k2];
    }
  }
}
