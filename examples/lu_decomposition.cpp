//===- examples/lu_decomposition.cpp --------------------------*- C++ -*-===//
//
// The paper's Section 7 case study, end to end: LU decomposition with a
// cyclic row decomposition for load balance.
//
//   * the Last Write Tree for the pivot-row read X[i1][i3] (Figure 12);
//   * derived, optimized communication (multicast pivot rows);
//   * the generated SPMD program (the analogue of Figure 13);
//   * a functional simulated run verified against sequential LU;
//   * a performance-mode run reporting achieved MFLOPS (Figure 14).
//
//===----------------------------------------------------------------------===//

#include "dataflow/LastWriteTree.h"
#include "frontend/Parser.h"
#include "ir/Interp.h"
#include "sim/Simulator.h"

#include <cmath>
#include <cstdio>

using namespace dmcc;

int main() {
  Program P = parseProgramOrDie(R"(
param N;
array X[N + 1][N + 1];
for i1 = 0 to N {
  for i2 = i1 + 1 to N {
    X[i2][i1] = X[i2][i1] / X[i1][i1];
    for i3 = i1 + 1 to N {
      X[i2][i3] = X[i2][i3] - X[i2][i1] * X[i1][i3];
    }
  }
}
)");
  std::printf("== LU kernel (Figure 11) ==\n%s\n", P.str().c_str());

  // Figure 12: the data flow of the pivot-row read X[i1][i3].
  LastWriteTree LWT = buildLWT(P, /*ReadStmt=*/1, /*ReadIdx=*/2);
  std::printf("== Last Write Tree for X[i1][i3] (Figure 12) ==\n%s\n",
              LWT.str(P).c_str());

  // The paper's decomposition: row k of X lives on virtual processor k
  // (cyclic onto the physical machine); owner-computes places iteration
  // (i1, i2[, i3]) on the owner of row i2.
  CompileSpec Spec;
  Decomposition D = cyclicData(P, 0, 0);
  Spec.Stmts.push_back(StmtPlan{0, ownerComputes(P, 0, D)});
  Spec.Stmts.push_back(StmtPlan{1, ownerComputes(P, 1, D)});
  Spec.InitialData.emplace(0, D);
  Spec.FinalData.emplace(0, D);

  CompiledProgram CP = compile(P, Spec);
  std::printf("== compiled in %.2f s: %u communication sets, "
              "%u multicast ==\n",
              CP.Stats.CompileSeconds,
              CP.Stats.NumCommSetsAfterSelfReuse,
              CP.Stats.NumMulticastSets);
  std::printf("== generated SPMD program (cf. Figure 13) ==\n%s\n",
              CP.Spmd.str().c_str());

  // Functional verification at N = 24 against sequential execution,
  // reconstructing L*U to confirm a genuine factorization.
  {
    IntT N = 24;
    std::map<std::string, IntT> Params{{"N", N}};
    SeqInterpreter Gold(P, Params);
    Gold.run();
    SimOptions SO;
    SO.PhysGrid = {5};
    SO.ParamValues = Params;
    Simulator Sim(P, CP, Spec, SO);
    SimResult R = Sim.run();
    if (!R.Ok) {
      std::printf("functional run failed: %s\n", R.Error.c_str());
      return 1;
    }
    unsigned Wrong = 0;
    double MaxResidual = 0;
    for (IntT Row = 0; Row <= N; ++Row)
      for (IntT Col = 0; Col <= N; ++Col) {
        auto Got = Sim.finalValue(0, {Row, Col});
        if (!Got || *Got != Gold.arrayValue(0, {Row, Col}))
          ++Wrong;
        // Residual of A = L*U against the original contents.
        double Sum = 0;
        for (IntT K = 0; K <= std::min(Row, Col); ++K) {
          double L = K == Row ? 1.0 : Gold.arrayValue(0, {Row, K});
          double U = Gold.arrayValue(0, {K, Col});
          Sum += L * U;
        }
        MaxResidual = std::max(
            MaxResidual,
            std::fabs(Sum - initialArrayValue(0, Row * (N + 1) + Col)));
      }
    std::printf("== functional verification (N = 24, 5 processors) ==\n");
    std::printf("elements differing from sequential execution: %u\n",
                Wrong);
    std::printf("max |A - L*U| residual: %.2e\n\n", MaxResidual);
    if (Wrong)
      return 1;
  }

  // Performance mode: the Figure 14 story in one line per machine size.
  std::printf("== simulated performance (N = 512) ==\n");
  for (IntT Procs : {1, 8, 32}) {
    SimOptions SO;
    SO.PhysGrid = {Procs};
    SO.ParamValues = {{"N", 512}};
    SO.Functional = false;
    SO.CollapseLoops = true;
    Simulator Sim(P, CP, Spec, SO);
    SimResult R = Sim.run();
    if (!R.Ok) {
      std::printf("performance run failed: %s\n", R.Error.c_str());
      return 1;
    }
    std::printf("P = %2lld: %8.3f s, %6.1f MFLOPS, %llu messages\n",
                static_cast<long long>(Procs), R.MakespanSeconds,
                static_cast<double>(R.Flops) / R.MakespanSeconds / 1e6,
                static_cast<unsigned long long>(R.Messages));
  }
  return 0;
}
