//===- examples/workload_suite.cpp ----------------------------*- C++ -*-===//
//
// Runs every workload spec under examples/ (cholesky, 2-D and 3-D
// Jacobi, ADI, Floyd-Warshall) end to end: parse the annotated .dm
// source, compile to SPMD, simulate functionally on four physical
// processors, and verify the distributed result bit-for-bit against
// BOTH the sequential interpreter and the plain-C++ reference kernels
// in WorkloadKernels.h. The double check matters: the interpreter
// shares the evaluator with the simulator, so a shared evaluator bug
// would slip through an interpreter-only differential; the reference
// kernels are independent C++.
//
//===----------------------------------------------------------------------===//

#include "WorkloadKernels.h"
#include "core/SpecParser.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

using namespace dmcc;
using namespace dmcc::workloads;

namespace {

/// One expected array: id and its full final contents.
struct RefArray {
  unsigned ArrayId;
  std::vector<double> Contents;
};

struct Workload {
  const char *Name; ///< file stem under examples/
  /// Builds the reference contents from the bound parameter values.
  std::function<std::vector<RefArray>(const std::map<std::string, IntT> &)>
      Refs;
};

std::string repoPath(const std::string &Rel) {
  return std::string(DMCC_REPO_ROOT) + "/" + Rel;
}

/// Runs one workload; returns true on bit-exact agreement everywhere.
bool runWorkload(const Workload &W) {
  std::ifstream In(repoPath("examples/" + std::string(W.Name) + ".dm"));
  if (!In) {
    std::printf("%-10s FAILED: cannot open spec\n", W.Name);
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  SpecParseOutput SP = parseWithSpec(Buf.str());
  if (!SP.ok()) {
    std::printf("%-10s FAILED: %s\n", W.Name, SP.Error.c_str());
    return false;
  }
  Program &P = *SP.Prog;
  const std::map<std::string, IntT> &Params = SP.ParamDefaults;

  CompiledProgram CP = compile(P, SP.Spec, CompilerOptions());
  if (!CP.Ok) {
    std::printf("%-10s FAILED: %s\n", W.Name, CP.ErrorMessage.c_str());
    return false;
  }

  SimOptions SO;
  SO.PhysGrid = {4};
  SO.ParamValues = Params;
  SO.Functional = true;
  Simulator Sim(P, CP, SP.Spec, SO);
  SimResult R = Sim.run();
  if (!R.Ok) {
    std::printf("%-10s FAILED: %s\n", W.Name, R.Error.c_str());
    return false;
  }

  // Leg 1: the simulator's final layout vs the sequential interpreter.
  SeqInterpreter Gold(P, Params);
  Gold.run();
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  unsigned Checked = 0, Bad = 0;
  for (const auto &[AId, FD] : SP.Spec.FinalData) {
    (void)FD;
    std::vector<IntT> Sizes;
    for (const AffineExpr &D : P.array(AId).DimSizes)
      Sizes.push_back(D.evaluate(Env));
    std::vector<IntT> Idx(Sizes.size(), 0);
    bool Done = Sizes.empty();
    while (!Done) {
      ++Checked;
      auto Got = Sim.finalValue(AId, Idx);
      if (!Got || *Got != Gold.arrayValue(AId, Idx))
        ++Bad;
      for (unsigned K = Idx.size(); K-- > 0;) {
        if (++Idx[K] < Sizes[K])
          break;
        Idx[K] = 0;
        if (K == 0)
          Done = true;
      }
    }
  }

  // Leg 2: the interpreter vs the independent reference kernel.
  unsigned RefBad = 0;
  for (const RefArray &RA : W.Refs(Params)) {
    std::vector<double> Got = Gold.arrayContents(RA.ArrayId);
    if (Got.size() != RA.Contents.size()) {
      ++RefBad;
      continue;
    }
    for (size_t I = 0; I != Got.size(); ++I)
      if (Got[I] != RA.Contents[I])
        ++RefBad;
  }

  std::printf("%-10s %4u elements vs interpreter (%u bad), reference "
              "kernel %s, makespan %.5f s, %llu messages\n",
              W.Name, Checked, Bad, RefBad ? "MISMATCH" : "bit-exact",
              R.MakespanSeconds,
              static_cast<unsigned long long>(R.Messages));
  return Bad == 0 && RefBad == 0;
}

} // namespace

int main() {
  std::printf("== workload suite: compile, simulate on 4 processors, "
              "verify ==\n");
  const std::vector<Workload> Workloads = {
      {"cholesky",
       [](const std::map<std::string, IntT> &Pm) {
         return std::vector<RefArray>{{0, refCholesky(Pm.at("N"))}};
       }},
      {"jacobi2d",
       [](const std::map<std::string, IntT> &Pm) {
         auto AB = refJacobi2D(Pm.at("T"), Pm.at("N"));
         return std::vector<RefArray>{{0, AB[0]}, {1, AB[1]}};
       }},
      {"jacobi3d",
       [](const std::map<std::string, IntT> &Pm) {
         auto AB = refJacobi3D(Pm.at("N"));
         return std::vector<RefArray>{{0, AB[0]}, {1, AB[1]}};
       }},
      {"adi",
       [](const std::map<std::string, IntT> &Pm) {
         return std::vector<RefArray>{{0, refADI(Pm.at("T"), Pm.at("N"))}};
       }},
      {"floyd",
       [](const std::map<std::string, IntT> &Pm) {
         return std::vector<RefArray>{{0, refFloyd(Pm.at("N"))}};
       }},
  };
  bool AllOk = true;
  for (const Workload &W : Workloads)
    AllOk = runWorkload(W) && AllOk;
  std::printf("workload suite: %s\n", AllOk ? "ok" : "FAILED");
  return AllOk ? 0 : 1;
}
