//===- codegen/CodeGen.cpp ------------------------------------*- C++ -*-===//

#include "codegen/CodeGen.h"

#include "codegen/Scan.h"

#include <map>

using namespace dmcc;

SpmdSpace::SpmdSpace(const Program &P, unsigned GridDims) : P(P) {
  Out.GridDims = GridDims;
  for (unsigned D = 0; D != GridDims; ++D)
    Out.MyProcVars.push_back(
        Out.Sp.add("myp" + std::to_string(D), VarKind::Proc));
  for (unsigned I = 0, E = P.space().size(); I != E; ++I)
    if (P.space().kind(I) == VarKind::Param)
      Out.Sp.add(P.space().name(I), VarKind::Param);
}

unsigned SpmdSpace::ensureVar(const std::string &Name, VarKind Kind) {
  int I = Out.Sp.indexOf(Name);
  if (I >= 0)
    return static_cast<unsigned>(I);
  return Out.Sp.add(Name, Kind);
}

System SpmdSpace::importSystem(
    const System &S,
    const std::function<std::string(const std::string &)> &Rename) {
  std::map<std::string, std::string> NameMap;
  for (unsigned I = 0, E = S.space().size(); I != E; ++I) {
    const std::string &N = S.space().name(I);
    if (S.space().kind(I) == VarKind::Aux) {
      std::string Fresh = Out.Sp.freshName(N);
      Out.Sp.add(Fresh, VarKind::Aux);
      NameMap[N] = Fresh;
      continue;
    }
    std::string Target = Rename ? Rename(N) : N;
    ensureVar(Target, S.space().kind(I));
    NameMap[N] = Target;
  }
  System R((Space(Out.Sp)));
  auto Map = [&NameMap](const std::string &N) { return NameMap.at(N); };
  for (const Constraint &C : S.constraints())
    R.addConstraint(
        Constraint(mapExpr(C.Expr, S.space(), R.space(), Map), C.Rel));
  return R;
}

std::vector<SpmdStmt> dmcc::genComputeFragment(SpmdSpace &SS,
                                               const StmtPlan &SP,
                                               unsigned SkipLoops) {
  const Program &P = SS.program();
  const Statement &St = P.statement(SP.StmtId);
  System Dom = P.domainOf(SP.StmtId);
  System Sys = SS.importSystem(Dom);
  SP.Comp.addConstraintsByName(Sys, SS.prog().MyProcVars);

  std::vector<ScanVarPlan> Plan;
  std::vector<AffineExpr> IterExprs;
  for (unsigned K = 0, E = St.Loops.size(); K != E; ++K) {
    const std::string &Name = P.space().name(P.loop(St.Loops[K]).VarIndex);
    unsigned V = SS.ensureVar(Name, VarKind::Loop);
    IterExprs.push_back(AffineExpr::var(Sys.numVars(), V));
    if (K >= SkipLoops)
      Plan.push_back(ScanVarPlan{V, false, AffineExpr()});
  }

  unsigned StmtId = SP.StmtId;
  return scanPolyhedron(Sys, Plan, [&]() {
    SpmdStmt C;
    C.K = SpmdStmt::Kind::Compute;
    C.StmtId = StmtId;
    C.IterExprs = IterExprs;
    std::vector<SpmdStmt> B;
    B.push_back(std::move(C));
    return B;
  });
}

namespace {

/// Node budget for guard-pruning emptiness probes during emission.
unsigned feasBudget() { return projectionOptions().FeasibilityBudget; }

/// Shared pieces of send/receive generation.
struct CommVars {
  System Sys; ///< comm-set system in the program space
  std::vector<unsigned> Ps, S, Pr, R, El;
};

/// Partitions the set's variables for a message boundary: \p InnerVars
/// (the item coordinates) plus any auxiliary variable transitively
/// coupled to them. Returns the closure and appends the discovered aux
/// variables to \p InnerPlan (the paper places auxiliaries last in the
/// scan order).
std::vector<unsigned> innerClosure(const System &Sys,
                                   std::vector<unsigned> InnerVars,
                                   std::vector<ScanVarPlan> &InnerPlan) {
  std::vector<bool> In(Sys.numVars(), false);
  for (unsigned V : InnerVars)
    In[V] = true;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Constraint &C : Sys.constraints()) {
      bool Touches = false;
      for (unsigned V = 0; V != Sys.numVars(); ++V)
        if (In[V] && C.Expr.involves(V)) {
          Touches = true;
          break;
        }
      if (!Touches)
        continue;
      for (unsigned V = 0; V != Sys.numVars(); ++V) {
        if (In[V] || !C.Expr.involves(V))
          continue;
        if (Sys.space().kind(V) != VarKind::Aux)
          continue;
        In[V] = true;
        InnerVars.push_back(V);
        InnerPlan.push_back(ScanVarPlan{V, false, AffineExpr()});
        Changed = true;
      }
    }
  }
  return InnerVars;
}

/// The message-set projection for the outer scan: all item coordinates
/// eliminated.
System outerProjection(const System &Sys,
                       const std::vector<unsigned> &InnerVars) {
  System R = Sys;
  for (unsigned V : InnerVars)
    if (R.involves(V))
      R = R.fmEliminated(V);
  R.normalize();
  R.removeRedundant();
  return R;
}

/// Imports the set with the executing side's iteration variables renamed
/// to the bare source loop names ("r." for receivers, "s." for senders).
CommVars importComm(SpmdSpace &SS, const CommSet &CS, bool SendSide) {
  const char *Strip = SendSide ? "s." : "r.";
  auto Rename = [Strip](const std::string &N) -> std::string {
    if (N.rfind(Strip, 0) == 0)
      return N.substr(2);
    return N;
  };
  CommVars V;
  V.Sys = SS.importSystem(CS.Sys, Rename);
  auto Reindex = [&](const std::vector<unsigned> &Old,
                     std::vector<unsigned> &New) {
    for (unsigned I : Old) {
      std::string N = Rename(CS.Sys.space().name(I));
      int J = V.Sys.space().indexOf(N);
      assert(J >= 0 && "comm variable missing after import");
      New.push_back(static_cast<unsigned>(J));
    }
  };
  Reindex(CS.PsVars, V.Ps);
  Reindex(CS.SVars, V.S);
  Reindex(CS.PrVars, V.Pr);
  Reindex(CS.RVars, V.R);
  Reindex(CS.ElVars, V.El);
  return V;
}

} // namespace

std::vector<SpmdStmt> dmcc::genRecvFragment(SpmdSpace &SS,
                                            const CommPlan &CP,
                                            unsigned CommId) {
  const CommSet &CS = CP.Set;
  unsigned L = CP.AggLevel;
  assert(L <= CS.RVars.size() && "aggregation deeper than the reader");
  CommVars V = importComm(SS, CS, /*SendSide=*/false);

  // Outer scan: bind pr to myp, then locate the sender. The first L
  // reader loops are outer scope (the caller's shared loops).
  std::vector<ScanVarPlan> Outer;
  for (unsigned D = 0, E = V.Pr.size(); D != E; ++D)
    Outer.push_back(ScanVarPlan{
        V.Pr[D], true,
        AffineExpr::var(V.Sys.numVars(), SS.prog().MyProcVars[D])});
  for (unsigned PS : V.Ps)
    Outer.push_back(ScanVarPlan{PS, false, AffineExpr()});

  // Inner scan (the message body): the sender's instance coordinates,
  // the reader's post-prefix loops, then the element, then auxiliary
  // witnesses. The order must match the sender's pack order;
  // single-valued coordinates do not perturb the enumeration.
  std::vector<ScanVarPlan> Inner;
  std::vector<unsigned> InnerVars;
  for (unsigned SV : V.S) {
    Inner.push_back(ScanVarPlan{SV, false, AffineExpr()});
    InnerVars.push_back(SV);
  }
  for (unsigned K = L, E = V.R.size(); K != E; ++K) {
    Inner.push_back(ScanVarPlan{V.R[K], false, AffineExpr()});
    InnerVars.push_back(V.R[K]);
  }
  for (unsigned EV : V.El) {
    Inner.push_back(ScanVarPlan{EV, false, AffineExpr()});
    InnerVars.push_back(EV);
  }
  InnerVars = innerClosure(V.Sys, std::move(InnerVars), Inner);

  unsigned ArrayId = CS.ArrayId;
  std::vector<AffineExpr> ElExprs;
  for (unsigned EV : V.El)
    ElExprs.push_back(AffineExpr::var(V.Sys.numVars(), EV));

  std::vector<SpmdStmt> Unpack = scanPolyhedron(V.Sys, Inner, [&]() {
    SpmdStmt U;
    U.K = SpmdStmt::Kind::UnpackElem;
    U.ArrayId = ArrayId;
    U.Indices = ElExprs;
    std::vector<SpmdStmt> B;
    B.push_back(std::move(U));
    return B;
  });

  std::vector<AffineExpr> Peer;
  for (unsigned PS : V.Ps)
    Peer.push_back(AffineExpr::var(V.Sys.numVars(), PS));
  bool Multicast = CP.Multicast && CS.Multicast;
  System OuterSys = outerProjection(V.Sys, InnerVars);
  return scanPolyhedron(OuterSys, Outer, [&]() {
    SpmdStmt Rv;
    Rv.K = SpmdStmt::Kind::Recv;
    Rv.Peer = Peer;
    Rv.CommId = CommId;
    Rv.IsMulticast = Multicast;
    Rv.Body = Unpack;
    std::vector<SpmdStmt> B;
    B.push_back(std::move(Rv));
    return B;
  });
}

std::vector<SpmdStmt> dmcc::genSendFragment(SpmdSpace &SS,
                                            const CommPlan &CP,
                                            unsigned CommId) {
  const CommSet &CS = CP.Set;
  unsigned L = CP.AggLevel;
  assert(L <= CS.SVars.size() ||
         (CS.SVars.empty() && L == 0) ||
         CS.FromInitialData);
  CommVars V = importComm(SS, CS, /*SendSide=*/true);

  std::vector<ScanVarPlan> Outer;
  for (unsigned D = 0, E = V.Ps.size(); D != E; ++D)
    Outer.push_back(ScanVarPlan{
        V.Ps[D], true,
        AffineExpr::var(V.Sys.numVars(), SS.prog().MyProcVars[D])});
  for (unsigned PR : V.Pr)
    Outer.push_back(ScanVarPlan{PR, false, AffineExpr()});

  // Pack order mirrors the receiver's unpack order: the sender's
  // post-prefix instance coordinates, the reader coordinates, the
  // element, auxiliary witnesses last.
  std::vector<ScanVarPlan> Inner;
  std::vector<unsigned> InnerVars;
  for (unsigned K = L, E = V.S.size(); K != E; ++K) {
    Inner.push_back(ScanVarPlan{V.S[K], false, AffineExpr()});
    InnerVars.push_back(V.S[K]);
  }
  for (unsigned RV : V.R) {
    Inner.push_back(ScanVarPlan{RV, false, AffineExpr()});
    InnerVars.push_back(RV);
  }
  for (unsigned EV : V.El) {
    Inner.push_back(ScanVarPlan{EV, false, AffineExpr()});
    InnerVars.push_back(EV);
  }
  InnerVars = innerClosure(V.Sys, std::move(InnerVars), Inner);

  unsigned ArrayId = CS.ArrayId;
  std::vector<AffineExpr> ElExprs;
  for (unsigned EV : V.El)
    ElExprs.push_back(AffineExpr::var(V.Sys.numVars(), EV));

  std::vector<SpmdStmt> Pack = scanPolyhedron(V.Sys, Inner, [&]() {
    SpmdStmt Pk;
    Pk.K = SpmdStmt::Kind::PackElem;
    Pk.ArrayId = ArrayId;
    Pk.Indices = ElExprs;
    std::vector<SpmdStmt> B;
    B.push_back(std::move(Pk));
    return B;
  });

  std::vector<AffineExpr> Peer;
  for (unsigned PR : V.Pr)
    Peer.push_back(AffineExpr::var(V.Sys.numVars(), PR));
  bool Multicast = CP.Multicast && CS.Multicast;
  System OuterSys = outerProjection(V.Sys, InnerVars);
  return scanPolyhedron(OuterSys, Outer, [&]() {
    SpmdStmt Sd;
    Sd.K = SpmdStmt::Kind::Send;
    Sd.Peer = Peer;
    Sd.CommId = CommId;
    Sd.IsMulticast = Multicast;
    Sd.Nonblocking = CP.earlySend();
    Sd.Body = Pack;
    std::vector<SpmdStmt> B;
    B.push_back(std::move(Sd));
    return B;
  });
}

SpmdStmt dmcc::makeSharedLoop(SpmdSpace &SS, unsigned LoopId) {
  const Program &P = SS.program();
  const Loop &L = P.loop(LoopId);
  const std::string &Name = P.space().name(L.VarIndex);
  unsigned V = SS.ensureVar(Name, VarKind::Loop);
  SpmdStmt For;
  For.K = SpmdStmt::Kind::For;
  For.Var = V;
  for (const AffineExpr &E : L.Lower)
    For.Lower.push_back(SpmdBound{
        mapExpr(E, P.space(), SS.prog().Sp,
                [&SS](const std::string &N) {
                  SS.ensureVar(N, VarKind::Loop);
                  return N;
                }),
        1});
  for (const AffineExpr &E : L.Upper)
    For.Upper.push_back(SpmdBound{
        mapExpr(E, P.space(), SS.prog().Sp,
                [&SS](const std::string &N) {
                  SS.ensureVar(N, VarKind::Loop);
                  return N;
                }),
        1});
  return For;
}

bool dmcc::aggregationSafe(const Program &P, const CommSet &CS,
                           unsigned AggLevel) {
  (void)P;
  if (CS.FromInitialData)
    return AggLevel == 0;
  if (AggLevel > CS.SVars.size() || AggLevel > CS.RVars.size())
    return false;

  // Two-copy system: x1 uses the original variables, x2 a primed copy.
  System T = CS.Sys;
  std::map<std::string, std::string> Prime;
  unsigned OrigVars = CS.Sys.space().size();
  for (unsigned I = 0; I != OrigVars; ++I) {
    if (T.space().kind(I) == VarKind::Param) {
      Prime[CS.Sys.space().name(I)] = CS.Sys.space().name(I);
      continue;
    }
    std::string N = CS.Sys.space().name(I) + "$2";
    T.addVar(N, CS.Sys.space().kind(I));
    Prime[CS.Sys.space().name(I)] = N;
  }
  auto MapPrime = [&Prime](const std::string &N) { return Prime.at(N); };
  for (const Constraint &C : CS.Sys.constraints())
    T.addConstraint(Constraint(
        mapExpr(C.Expr, CS.Sys.space(), T.space(), MapPrime), C.Rel));
  auto PrimedOf = [&](unsigned V) {
    return static_cast<unsigned>(
        T.space().indexOf(Prime.at(CS.Sys.space().name(V))));
  };
  // Same message: equal peers, equal sender prefix.
  for (unsigned Vv : CS.PsVars)
    T.addEq(T.varExpr(Vv), T.varExpr(PrimedOf(Vv)));
  for (unsigned Vv : CS.PrVars)
    T.addEq(T.varExpr(Vv), T.varExpr(PrimedOf(Vv)));
  for (unsigned K = 0; K != AggLevel; ++K)
    T.addEq(T.varExpr(CS.SVars[K]), T.varExpr(PrimedOf(CS.SVars[K])));

  // Alignment: the receiver prefix must be single-valued per message.
  for (unsigned K = 0; K != AggLevel; ++K) {
    System Q = T;
    Q.addGE(Q.varExpr(CS.RVars[K]) -
            Q.varExpr(PrimedOf(CS.RVars[K])).plusConst(1));
    if (Q.checkIntegerFeasible(feasBudget()) != Feasibility::Empty)
      return false;
    // Earlier receiver coordinates must match for this test; add the
    // equality before probing the next position.
    T.addEq(T.varExpr(CS.RVars[K]), T.varExpr(PrimedOf(CS.RVars[K])));
  }

  // Ordering: no item may be consumed at a shared iteration preceding the
  // message's sending iteration (r-prefix >= s-prefix lexicographically).
  for (unsigned J = 0; J != AggLevel; ++J) {
    System Q = T;
    for (unsigned K = 0; K != J; ++K)
      Q.addEq(Q.varExpr(CS.RVars[K]), Q.varExpr(CS.SVars[K]));
    Q.addGE(Q.varExpr(CS.SVars[J]) -
            Q.varExpr(CS.RVars[J]).plusConst(1)); // r_J < s_J
    if (Q.checkIntegerFeasible(feasBudget()) != Feasibility::Empty)
      return false;
  }

  // Monotonicity: along one channel, messages must arrive in the order
  // the receiver expects (s-prefix increasing implies r-prefix
  // non-decreasing); otherwise FIFO delivery would mismatch.
  {
    // Rebuild the two-copy system without the s-prefix/r-prefix pinning.
    System M = CS.Sys;
    for (unsigned I = 0; I != OrigVars; ++I) {
      if (M.space().kind(I) == VarKind::Param)
        continue;
      M.addVar(CS.Sys.space().name(I) + "$2", CS.Sys.space().kind(I));
    }
    for (const Constraint &C : CS.Sys.constraints())
      M.addConstraint(Constraint(
          mapExpr(C.Expr, CS.Sys.space(), M.space(), MapPrime), C.Rel));
    auto P2 = [&](unsigned V) {
      return static_cast<unsigned>(
          M.space().indexOf(Prime.at(CS.Sys.space().name(V))));
    };
    for (unsigned Vv : CS.PsVars)
      M.addEq(M.varExpr(Vv), M.varExpr(P2(Vv)));
    for (unsigned Vv : CS.PrVars)
      M.addEq(M.varExpr(Vv), M.varExpr(P2(Vv)));
    for (unsigned J1 = 0; J1 != AggLevel; ++J1) {
      for (unsigned J2 = 0; J2 != AggLevel; ++J2) {
        System Q = M;
        for (unsigned K = 0; K != J1; ++K)
          Q.addEq(Q.varExpr(CS.SVars[K]), Q.varExpr(P2(CS.SVars[K])));
        Q.addGE(Q.varExpr(P2(CS.SVars[J1])) -
                Q.varExpr(CS.SVars[J1]).plusConst(1)); // s < s'
        for (unsigned K = 0; K != J2; ++K)
          Q.addEq(Q.varExpr(CS.RVars[K]), Q.varExpr(P2(CS.RVars[K])));
        Q.addGE(Q.varExpr(CS.RVars[J2]) -
                Q.varExpr(P2(CS.RVars[J2])).plusConst(1)); // r > r'
        if (Q.checkIntegerFeasible(feasBudget()) != Feasibility::Empty)
          return false;
      }
    }
  }
  return true;
}

bool dmcc::earlySendSafe(const Program &P, const CommSet &CS,
                         unsigned Level) {
  // Initial data exists before any statement runs: issuing its sends
  // asynchronously can never outrun a producer.
  if (CS.FromInitialData)
    return Level == 0;
  // A batch at this level holds exactly the writer's iterations sharing
  // the level-long prefix, so right after the writer's fragment the
  // content is complete by construction. What remains to verify is the
  // level reasoning itself: per-message single-valued receiver prefix
  // (alignment), no consumption at a shared iteration preceding the
  // send (ordering), and FIFO-consistent arrival order (monotonicity).
  // These are exactly the aggregationSafe() probes at the issue level;
  // when chooseAggLevel() fell back to runtime FIFO order without a
  // verified level, the probes fail here too and the send stays
  // blocking.
  return aggregationSafe(P, CS, Level);
}

bool dmcc::computeLocalBox(SpmdSpace &SS, const StmtPlan &SP,
                           const Access &A, LocalBox &Box) {
  const Program &P = SS.program();
  System Dom = P.domainOf(SP.StmtId);
  System Sys = SS.importSystem(Dom);
  SP.Comp.addConstraintsByName(Sys, SS.prog().MyProcVars);
  // Element variables for this access.
  std::vector<unsigned> ElVars;
  auto MapLoop = [&SS](const std::string &N) -> std::string {
    return N; // loop names are shared with the program space
    (void)SS;
  };
  for (unsigned K = 0, E = A.Indices.size(); K != E; ++K) {
    unsigned V = Sys.addVar(Sys.space().freshName("box.a"), VarKind::Data);
    AffineExpr F = mapExpr(A.Indices[K], P.space(), Sys.space(), MapLoop);
    Sys.addEq(Sys.varExpr(V), F);
    ElVars.push_back(V);
  }
  Box.Lower.clear();
  Box.Upper.clear();
  // Project out the iteration variables so the bounds mention only the
  // processor identity and parameters.
  const Statement &St = P.statement(SP.StmtId);
  System Proj = Sys;
  for (unsigned L : St.Loops) {
    int J = Proj.space().indexOf(P.space().name(P.loop(L).VarIndex));
    if (J >= 0 && Proj.involves(static_cast<unsigned>(J)))
      Proj = Proj.fmEliminated(static_cast<unsigned>(J));
  }
  Proj.removeRedundant();
  for (unsigned K = 0, E = ElVars.size(); K != E; ++K) {
    std::vector<VarBound> Lo, Hi;
    Proj.boundsOf(ElVars[K], Lo, Hi);
    if (Lo.empty() || Hi.empty())
      return false;
    std::vector<SpmdBound> LB, UB;
    for (VarBound &B : Lo)
      LB.push_back(SpmdBound{std::move(B.Num), B.Den});
    for (VarBound &B : Hi)
      UB.push_back(SpmdBound{std::move(B.Num), B.Den});
    Box.Lower.push_back(std::move(LB));
    Box.Upper.push_back(std::move(UB));
  }
  return true;
}
