//===- codegen/Scan.cpp ---------------------------------------*- C++ -*-===//

#include "codegen/Scan.h"

using namespace dmcc;

namespace {

/// Recursive generator over the projection chain.
class Scanner {
public:
  Scanner(const std::vector<System> &Proj,
          const std::vector<ScanVarPlan> &Plan,
          const std::function<std::vector<SpmdStmt>()> &MakeBody)
      : Proj(Proj), Plan(Plan), MakeBody(MakeBody) {}

  std::vector<SpmdStmt> run() {
    // Constraints not involving any scanned variable become one outer
    // guard (e.g. "if p >= 0 and p <= N/32" in Figure 7).
    std::vector<SpmdStmt> Inner = emitFrom(0);
    const System &Base = Proj[0];
    std::vector<Constraint> Guard;
    for (const Constraint &C : Base.constraints())
      Guard.push_back(C);
    if (Guard.empty())
      return Inner;
    SpmdStmt If;
    If.K = SpmdStmt::Kind::If;
    If.Conds = std::move(Guard);
    If.Body = std::move(Inner);
    std::vector<SpmdStmt> Out;
    Out.push_back(std::move(If));
    return Out;
  }

private:
  std::vector<SpmdStmt> emitFrom(unsigned J) {
    if (J == Plan.size())
      return MakeBody();

    const ScanVarPlan &VP = Plan[J];
    const System &S = Proj[J + 1];
    std::vector<SpmdStmt> Inner = emitFrom(J + 1);

    // Constraints of this level that involve the variable.
    std::vector<Constraint> Involving;
    for (const Constraint &C : S.constraints())
      if (C.Expr.involves(VP.Var))
        Involving.push_back(C);

    std::vector<SpmdStmt> Out;
    if (VP.BindTo) {
      // Pin the variable to the executing processor's coordinate and
      // guard with its constraints.
      SpmdStmt Set;
      Set.K = SpmdStmt::Kind::SetVar;
      Set.Var = VP.Var;
      Set.Value = VP.BoundValue;
      SpmdStmt If;
      If.K = SpmdStmt::Kind::If;
      If.Conds = std::move(Involving);
      If.Body = std::move(Inner);
      Out.push_back(std::move(Set));
      Out.push_back(std::move(If));
      return Out;
    }

    // Degenerate loop: a unit-coefficient equality pins the variable.
    for (const Constraint &C : Involving) {
      if (!C.isEquality())
        continue;
      IntT A = C.Expr.coeff(VP.Var);
      if (A != 1 && A != -1)
        continue;
      AffineExpr V = C.Expr;
      V.coeff(VP.Var) = 0;
      if (A == 1)
        V = V.negated();
      SpmdStmt Set;
      Set.K = SpmdStmt::Kind::SetVar;
      Set.Var = VP.Var;
      Set.Value = std::move(V);
      Out.push_back(std::move(Set));
      std::vector<Constraint> Rest;
      for (const Constraint &R : Involving)
        if (!(R == C))
          Rest.push_back(R);
      if (Rest.empty()) {
        for (SpmdStmt &St : Inner)
          Out.push_back(std::move(St));
      } else {
        SpmdStmt If;
        If.K = SpmdStmt::Kind::If;
        If.Conds = std::move(Rest);
        If.Body = std::move(Inner);
        Out.push_back(std::move(If));
      }
      return Out;
    }

    // General loop with max/min bounds.
    std::vector<VarBound> Lo, Hi;
    S.boundsOf(VP.Var, Lo, Hi);
    if (Lo.empty() || Hi.empty())
      fatalError("scanPolyhedron: scanned variable is unbounded");
    SpmdStmt For;
    For.K = SpmdStmt::Kind::For;
    For.Var = VP.Var;
    for (VarBound &B : Lo)
      For.Lower.push_back(SpmdBound{std::move(B.Num), B.Den});
    for (VarBound &B : Hi)
      For.Upper.push_back(SpmdBound{std::move(B.Num), B.Den});
    For.Body = std::move(Inner);
    Out.push_back(std::move(For));
    return Out;
  }

  const std::vector<System> &Proj;
  const std::vector<ScanVarPlan> &Plan;
  const std::function<std::vector<SpmdStmt>()> &MakeBody;
};

} // namespace

std::vector<SpmdStmt> dmcc::scanPolyhedron(
    const System &S, const std::vector<ScanVarPlan> &Plan,
    const std::function<std::vector<SpmdStmt>()> &MakeBody) {
  PhaseTimer Timer("codegen.scan");
  ++projectionStats().ScanCalls;
  System Base = S;
  if (!Base.normalize()) {
    // Empty set: no code.
    return {};
  }
  unsigned N = Plan.size();
  // Proj[j] bounds Plan[j-1].Var; Proj[0] holds the no-plan-var guard.
  std::vector<System> Proj(N + 1);
  unsigned Budget = projectionOptions().ScanBudget;
  Proj[N] = std::move(Base);
  Proj[N].removeRedundant(Budget);
  for (unsigned J = N; J-- > 0;) {
    Proj[J] = Proj[J + 1].fmEliminated(Plan[J].Var);
    Proj[J].removeRedundant(Budget);
  }
  // Each level's system should only mention its own and earlier plan
  // variables plus parameters and outer-scope variables.
  Scanner Sc(Proj, Plan, MakeBody);
  return Sc.run();
}
