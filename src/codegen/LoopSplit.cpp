//===- codegen/LoopSplit.cpp ----------------------------------*- C++ -*-===//

#include "codegen/LoopSplit.h"

#include <set>

using namespace dmcc;

namespace {

/// Collects every variable assigned anywhere inside \p Stmts (loop
/// indices and SetVar targets). Guards depending on these cannot move to
/// loop bounds.
void assignedVars(const std::vector<SpmdStmt> &Stmts,
                  std::set<unsigned> &Out) {
  for (const SpmdStmt &S : Stmts) {
    if (S.K == SpmdStmt::Kind::For || S.K == SpmdStmt::Kind::SetVar)
      Out.insert(S.Var);
    assignedVars(S.Body, Out);
  }
}

/// Rebuilds the loop body with condition \p CondIdx of the If at
/// \p IfIdx removed (Keep == true) or the whole If dropped (Keep ==
/// false, the guard is false throughout the segment).
std::vector<SpmdStmt> segmentBody(const std::vector<SpmdStmt> &Body,
                                  unsigned IfIdx, unsigned CondIdx,
                                  bool Keep) {
  std::vector<SpmdStmt> Out;
  for (unsigned I = 0; I != Body.size(); ++I) {
    if (I != IfIdx) {
      Out.push_back(Body[I]);
      continue;
    }
    if (!Keep)
      continue; // guard statically false: drop the whole If
    SpmdStmt If = Body[I];
    If.Conds.erase(If.Conds.begin() + CondIdx);
    if (If.Conds.empty()) {
      for (SpmdStmt &C : If.Body)
        Out.push_back(std::move(C));
    } else {
      Out.push_back(std::move(If));
    }
  }
  return Out;
}

class Splitter {
public:
  explicit Splitter(unsigned MaxSegments) : MaxSegments(MaxSegments) {}

  LoopSplitStats Stats;

  void processList(std::vector<SpmdStmt> &Stmts) {
    std::vector<SpmdStmt> Out;
    for (SpmdStmt &S : Stmts) {
      processList(S.Body);
      if (S.K == SpmdStmt::Kind::For) {
        std::vector<SpmdStmt> Segs = splitLoop(std::move(S), MaxSegments);
        if (Segs.size() > 1)
          ++Stats.LoopsSplit;
        for (SpmdStmt &Seg : Segs)
          Out.push_back(std::move(Seg));
      } else {
        Out.push_back(std::move(S));
      }
    }
    Stmts = std::move(Out);
  }

private:
  /// Returns the loop split into guard-free(er) segments; a singleton
  /// when nothing is eligible.
  std::vector<SpmdStmt> splitLoop(SpmdStmt For, unsigned Budget) {
    std::set<unsigned> Assigned;
    assignedVars(For.Body, Assigned);
    Assigned.insert(For.Var);

    // Find a top-level guard condition affine in the loop variable and
    // free of body-assigned variables.
    for (unsigned IfIdx = 0; IfIdx != For.Body.size(); ++IfIdx) {
      const SpmdStmt &If = For.Body[IfIdx];
      if (If.K != SpmdStmt::Kind::If)
        continue;
      for (unsigned CI = 0; CI != If.Conds.size(); ++CI) {
        const Constraint &C = If.Conds[CI];
        IntT A = C.Expr.coeff(For.Var);
        if (A == 0)
          continue;
        bool Clean = true;
        for (unsigned V = 0; V != C.Expr.size(); ++V)
          if (V != For.Var && C.Expr.involves(V) && Assigned.count(V))
            Clean = false;
        if (!Clean)
          continue;
        if (C.isEquality() && (A != 1 && A != -1))
          continue; // divisibility: keep as a run-time test
        unsigned Need = C.isEquality() ? 3 : 2;
        if (Budget < Need) {
          ++Stats.GuardsKept;
          continue;
        }

        // Rest of the condition without the loop variable.
        AffineExpr R = C.Expr;
        R.coeff(For.Var) = 0;
        std::vector<SpmdStmt> Segs;
        auto MakeSeg = [&](bool CondHolds,
                           std::vector<SpmdBound> ExtraLo,
                           std::vector<SpmdBound> ExtraHi) {
          SpmdStmt Seg = For;
          Seg.Body = segmentBody(For.Body, IfIdx, CI, CondHolds);
          for (SpmdBound &B : ExtraLo)
            Seg.Lower.push_back(std::move(B));
          for (SpmdBound &B : ExtraHi)
            Seg.Upper.push_back(std::move(B));
          Segs.push_back(std::move(Seg));
        };

        if (C.isEquality()) {
          // A*v + R == 0 with A = +/-1: v == -R/A.
          AffineExpr Val = A == 1 ? R.negated() : R;
          MakeSeg(false, {}, {SpmdBound{Val.plusConst(-1), 1}});
          MakeSeg(true, {SpmdBound{Val, 1}}, {SpmdBound{Val, 1}});
          MakeSeg(false, {SpmdBound{Val.plusConst(1), 1}}, {});
        } else if (A > 0) {
          // Holds iff v >= ceil(-R/A); false iff v <= floor((-R-1)/A).
          MakeSeg(false, {},
                  {SpmdBound{R.negated().plusConst(-1), A}});
          MakeSeg(true, {SpmdBound{R.negated(), A}}, {});
        } else {
          // Holds iff v <= floor(R/-A); false iff v >= ceil((R+1)/-A).
          MakeSeg(true, {}, {SpmdBound{R, -A}});
          MakeSeg(false, {SpmdBound{R.plusConst(1), -A}}, {});
        }
        ++Stats.GuardsEliminated;

        // Recursively split each segment on the remaining guards.
        std::vector<SpmdStmt> Final;
        unsigned SubBudget = Budget / Segs.size();
        for (SpmdStmt &Seg : Segs)
          for (SpmdStmt &Sub :
               splitLoop(std::move(Seg), std::max(1u, SubBudget)))
            Final.push_back(std::move(Sub));
        return Final;
      }
    }
    std::vector<SpmdStmt> One;
    One.push_back(std::move(For));
    return One;
  }

  unsigned MaxSegments;
};

} // namespace

LoopSplitStats dmcc::splitLoops(SpmdProgram &Prog, unsigned MaxSegments) {
  Splitter Sp(MaxSegments);
  Sp.processList(Prog.Top);
  return Sp.Stats;
}
