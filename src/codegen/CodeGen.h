//===- codegen/CodeGen.h - SPMD code generation ----------------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the per-processor SPMD fragments (Section 5.3) that the
/// driver merges along the source loop tree (Section 5.4):
///
///  * computation fragments — scans of a statement's computation
///    decomposition, with the executing processor's coordinates bound;
///  * receive fragments — scans of a communication set in
///    (pr, r-prefix | ps, s, r-suffix, el) order, the message boundary
///    placed after the prefix (aggregation, Section 6.2);
///  * send fragments — scans in (ps, s-prefix | pr, s-suffix, r, el)
///    order, with multicast emission when the content is
///    receiver-independent (Section 6.2.1).
///
/// Fragments assume the shared sequential loops (the aggregation prefix)
/// are emitted by the caller; constraints on those outer variables become
/// guards inside the fragment.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_CODEGEN_CODEGEN_H
#define DMCC_CODEGEN_CODEGEN_H

#include "codegen/SpmdAst.h"
#include "comm/CommSet.h"
#include "decomp/Decomposition.h"
#include "ir/Program.h"

#include <vector>

namespace dmcc {

/// Per-statement compilation plan.
struct StmtPlan {
  unsigned StmtId = 0;
  Decomposition Comp; ///< computation decomposition (must be unique)
};

/// One communication action to emit.
struct CommPlan {
  CommSet Set;
  /// Number of outer (source) loops per message batch: messages are
  /// emitted per (peer pair, first AggLevel loop indices). The paper's
  /// aggregation at dependence level k corresponds to AggLevel == k-1;
  /// AggLevel == k is always deadlock-free (see aggregationSafe()).
  unsigned AggLevel = 0;
  bool Multicast = false;
  /// Early-send plan (paper Section 6, DESIGN.md §11). EarlyLevel is
  /// the earliest loop level at which the send fragment may be issued
  /// — equal to AggLevel when earlySendSafe() holds (the batch content
  /// is complete as soon as the producing statement's fragment at that
  /// depth has run), or the NoEarly sentinel when the send must stay
  /// blocking at its default position. HoistEarly additionally moves
  /// the fragment to immediately after the producer inside a
  /// distributed subtree; it is set only when no later statement of
  /// the subtree can overwrite the communicated array.
  static constexpr unsigned NoEarly = ~0u;
  unsigned EarlyLevel = NoEarly;
  bool HoistEarly = false;
  bool earlySend() const { return EarlyLevel != NoEarly; }
};

/// Manages the single variable space of a generated SPMD program.
class SpmdSpace {
public:
  SpmdSpace(const Program &P, unsigned GridDims);

  SpmdProgram &prog() { return Out; }
  const Program &program() const { return P; }

  /// Ensures a variable exists; returns its index in the program space.
  unsigned ensureVar(const std::string &Name, VarKind Kind);

  /// Imports \p S into the program space: variables are matched by name
  /// after applying \p Rename (aux variables are renamed apart
  /// unconditionally). Missing variables are created.
  System importSystem(const System &S,
                      const std::function<std::string(const std::string &)>
                          &Rename = nullptr);

  /// Fresh communication tag.
  unsigned nextCommId() { return Out.NumCommIds++; }

private:
  const Program &P;
  SpmdProgram Out;
};

/// Computation fragment for one statement: loops over the iterations the
/// executing processor owns, skipping the first \p SkipLoops source loops
/// (they are emitted by the caller as shared sequential loops).
std::vector<SpmdStmt> genComputeFragment(SpmdSpace &SS, const StmtPlan &SP,
                                         unsigned SkipLoops);

/// Receive fragment for one communication set (executed by receivers).
/// The first CP.AggLevel reader loops must enclose the fragment.
std::vector<SpmdStmt> genRecvFragment(SpmdSpace &SS, const CommPlan &CP,
                                      unsigned CommId);

/// Send fragment (executed by senders); mirrors genRecvFragment.
std::vector<SpmdStmt> genSendFragment(SpmdSpace &SS, const CommPlan &CP,
                                      unsigned CommId);

/// Shared sequential loop over a source loop's global bounds.
SpmdStmt makeSharedLoop(SpmdSpace &SS, unsigned LoopId);

/// True if batching the set's messages per (peer pair, first \p AggLevel
/// sender loops) cannot stall a consumer behind its producer: no item's
/// production follows another item's consumption within one message.
bool aggregationSafe(const Program &P, const CommSet &CS,
                     unsigned AggLevel);

/// Early-send safety (paper Section 6, DESIGN.md §11): true if the
/// set's sends may be issued nonblocking at loop level \p Level — the
/// sender continues computing while the message is in flight. Reuses
/// the aggregationSafe() level reasoning: the batch for a level-Level
/// prefix contains exactly the items the writer produced at iterations
/// sharing that prefix, so its content is complete the moment the
/// writer's fragment at that depth has run (the LWT guarantees no
/// later statement rewrites a communicated element before its read),
/// and the alignment/ordering/monotonicity probes rule out a consumer
/// stalling behind its producer or FIFO-order mismatch once issue is
/// decoupled from completion. Initial-data sets are safe at level 0:
/// their content exists before the program runs.
bool earlySendSafe(const Program &P, const CommSet &CS, unsigned Level);

/// Section 5.5: the local bounding box of array data that one processor
/// touches through the given access: per-dimension bounds over
/// (myp*, params). Returns false if some dimension is unbounded.
struct LocalBox {
  std::vector<std::vector<SpmdBound>> Lower, Upper;
};
bool computeLocalBox(SpmdSpace &SS, const StmtPlan &SP, const Access &A,
                     LocalBox &Box);

} // namespace dmcc

#endif // DMCC_CODEGEN_CODEGEN_H
