//===- codegen/LoopSplit.h - Static loop splitting -------------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5.4's static loop splitting: instead of testing affine guards
/// in every iteration of a merged loop, split the iteration range at the
/// guards' breakpoints so each sub-range runs guard-free:
///
///     for i = 0 to 300 {            for i = 0 to 99    { recv; }
///       if (i <= 200) recv;   ==>   for i = 100 to 200 { recv; send; }
///       if (i >= 100) send;         for i = 201 to 300 { send; }
///     }
///
/// Like the paper's compiler, splitting is applied when the relative
/// order of the breakpoints is known — here, when the loop bounds and the
/// guard breakpoints differ only in their constant terms (the common case
/// after merging: the shared loop's bounds and every guard are affine in
/// the same outer variables). Guards that do not meet the criterion stay
/// as run-time tests (the paper's dynamic fallback).
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_CODEGEN_LOOPSPLIT_H
#define DMCC_CODEGEN_LOOPSPLIT_H

#include "codegen/SpmdAst.h"

namespace dmcc {

/// Statistics of one splitting pass.
struct LoopSplitStats {
  unsigned LoopsSplit = 0;
  unsigned GuardsEliminated = 0;
  unsigned GuardsKept = 0;
};

/// Splits eligible loops in place. \p MaxSegments bounds code growth per
/// loop; loops whose guard structure would need more segments are left
/// untouched.
LoopSplitStats splitLoops(SpmdProgram &Prog, unsigned MaxSegments = 8);

} // namespace dmcc

#endif // DMCC_CODEGEN_LOOPSPLIT_H
