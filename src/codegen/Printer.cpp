//===- codegen/Printer.cpp - C-like SPMD pretty printing -------*- C++ -*-===//
//
// Renders generated SPMD programs in the style of the paper's Figures 7,
// 10 and 13.
//
//===----------------------------------------------------------------------===//

#include "codegen/SpmdAst.h"

using namespace dmcc;

namespace {

/// Prints an expression that may be over a prefix of \p Sp (the program
/// space grows append-only while fragments are generated).
std::string exprStr(const AffineExpr &E, const Space &Sp) {
  std::string S;
  bool First = true;
  auto Term = [&](IntT C, const std::string &Name) {
    if (C == 0)
      return;
    if (First) {
      if (C < 0)
        S += "-";
      First = false;
    } else {
      S += C < 0 ? " - " : " + ";
    }
    IntT A = C < 0 ? -C : C;
    if (A != 1 || Name.empty()) {
      S += std::to_string(A);
      if (!Name.empty())
        S += "*";
    }
    S += Name;
  };
  for (unsigned I = 0, N = E.size(); I != N; ++I)
    Term(E.coeff(I), I < Sp.size() ? Sp.name(I) : "?");
  if (E.constant() != 0 || First)
    Term(E.constant(), "");
  if (First)
    S = "0";
  return S;
}

std::string boundStr(const std::vector<SpmdBound> &Bs, const Space &Sp,
                     bool IsLower) {
  auto One = [&](const SpmdBound &B) {
    std::string E = exprStr(B.Num, Sp);
    if (B.Den == 1)
      return E;
    return std::string(IsLower ? "ceild(" : "floord(") + E + ", " +
           std::to_string(B.Den) + ")";
  };
  if (Bs.size() == 1)
    return One(Bs[0]);
  std::string S = IsLower ? "max(" : "min(";
  for (unsigned I = 0; I != Bs.size(); ++I) {
    if (I)
      S += ", ";
    S += One(Bs[I]);
  }
  return S + ")";
}

std::string condStr(const Constraint &C, const Space &Sp) {
  return exprStr(C.Expr, Sp) + (C.isEquality() ? " == 0" : " >= 0");
}

std::string peerStr(const std::vector<AffineExpr> &Peer, const Space &Sp) {
  std::string S = "(";
  for (unsigned I = 0; I != Peer.size(); ++I) {
    if (I)
      S += ", ";
    S += exprStr(Peer[I], Sp);
  }
  return S + ")";
}

void printStmt(const SpmdStmt &St, const Space &Sp, unsigned Indent,
               std::string &Out) {
  std::string Pad(2 * Indent, ' ');
  switch (St.K) {
  case SpmdStmt::Kind::Seq:
    for (const SpmdStmt &C : St.Body)
      printStmt(C, Sp, Indent, Out);
    return;
  case SpmdStmt::Kind::For: {
    Out += Pad + "for " + Sp.name(St.Var) + " = " +
           boundStr(St.Lower, Sp, true) + " to " +
           boundStr(St.Upper, Sp, false) + " {\n";
    for (const SpmdStmt &C : St.Body)
      printStmt(C, Sp, Indent + 1, Out);
    Out += Pad + "}\n";
    return;
  }
  case SpmdStmt::Kind::If: {
    Out += Pad + "if (";
    for (unsigned I = 0; I != St.Conds.size(); ++I) {
      if (I)
        Out += " && ";
      Out += condStr(St.Conds[I], Sp);
    }
    Out += ") {\n";
    for (const SpmdStmt &C : St.Body)
      printStmt(C, Sp, Indent + 1, Out);
    Out += Pad + "}\n";
    return;
  }
  case SpmdStmt::Kind::SetVar: {
    Out += Pad + Sp.name(St.Var) + " = ";
    if (St.ValueDen == 1)
      Out += exprStr(St.Value, Sp);
    else
      Out += "floord(" + exprStr(St.Value, Sp) + ", " +
             std::to_string(St.ValueDen) + ")";
    Out += ";\n";
    return;
  }
  case SpmdStmt::Kind::Compute: {
    Out += Pad + "execute S" + std::to_string(St.StmtId) + "(";
    for (unsigned I = 0; I != St.IterExprs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += exprStr(St.IterExprs[I], Sp);
    }
    Out += ");\n";
    return;
  }
  case SpmdStmt::Kind::Send: {
    // Early (nonblocking) sends print with an "i" prefix, MPI-style:
    // isend issues and continues, the plain form blocks for the wire.
    const char *Verb = St.IsMulticast
                           ? (St.Nonblocking ? "imulticast" : "multicast")
                           : (St.Nonblocking ? "isend" : "send");
    Out += Pad + Verb + std::string(" message[c") +
           std::to_string(St.CommId) + "] to " + peerStr(St.Peer, Sp) +
           " packed as {\n";
    for (const SpmdStmt &C : St.Body)
      printStmt(C, Sp, Indent + 1, Out);
    Out += Pad + "}\n";
    return;
  }
  case SpmdStmt::Kind::Recv: {
    Out += Pad + "receive message[c" + std::to_string(St.CommId) +
           "] from " + peerStr(St.Peer, Sp) + " unpacked as {\n";
    for (const SpmdStmt &C : St.Body)
      printStmt(C, Sp, Indent + 1, Out);
    Out += Pad + "}\n";
    return;
  }
  case SpmdStmt::Kind::PackElem: {
    Out += Pad + "buffer[idx++] = A" + std::to_string(St.ArrayId);
    for (const AffineExpr &E : St.Indices)
      Out += "[" + exprStr(E, Sp) + "]";
    Out += ";\n";
    return;
  }
  case SpmdStmt::Kind::UnpackElem: {
    Out += Pad + "A" + std::to_string(St.ArrayId);
    for (const AffineExpr &E : St.Indices)
      Out += "[" + exprStr(E, Sp) + "]";
    Out += " = buffer[idx++];\n";
    return;
  }
  }
}

} // namespace

std::string SpmdProgram::str() const {
  std::string Out = "// SPMD program; executing processor = (";
  for (unsigned I = 0; I != MyProcVars.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Sp.name(MyProcVars[I]);
  }
  Out += ")\n";
  for (const SpmdStmt &St : Top)
    printStmt(St, Sp, 0, Out);
  return Out;
}
