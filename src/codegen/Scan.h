//===- codegen/Scan.h - Scanning polyhedra with DO loops -------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ancourt-Irigoin polyhedron scanning (Section 5.2): given a system of
/// inequalities and a variable order, produce a loop nest that enumerates
/// exactly the integer solutions in lexicographic order. Loop bounds come
/// from Fourier-Motzkin projections; single-valued variables become
/// assignments instead of loops (the degenerate-loop elimination the
/// paper describes).
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_CODEGEN_SCAN_H
#define DMCC_CODEGEN_SCAN_H

#include "codegen/SpmdAst.h"
#include "math/System.h"

#include <functional>
#include <vector>

namespace dmcc {

/// Options for scanning one variable.
struct ScanVarPlan {
  unsigned Var = 0;
  /// Instead of looping, pin the variable to this expression and guard
  /// with its bounds (used to bind pr/ps to the executing processor).
  bool BindTo = false;
  AffineExpr BoundValue;
};

/// Scans \p S lexicographically in the order given by \p Plan. Every
/// non-parameter variable of S that appears in constraints must occur in
/// the plan. \p MakeBody produces the innermost statements; it receives
/// the fully projected system for reference. Returns the outermost
/// statement list.
///
/// Variables bound via BindTo generate an If guard (their bound
/// constraints) plus a SetVar; single-valued variables generate SetVar
/// with a floor division when needed.
std::vector<SpmdStmt> scanPolyhedron(
    const System &S, const std::vector<ScanVarPlan> &Plan,
    const std::function<std::vector<SpmdStmt>()> &MakeBody);

} // namespace dmcc

#endif // DMCC_CODEGEN_SCAN_H
