//===- codegen/SpmdAst.h - SPMD program representation ---------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPMD program emitted by the code generator (Section 5): one loop
/// tree executed by every processor, with the processor's grid coordinate
/// bound to the variables myp0.. All loop bounds and guards are affine in
/// a single variable space, so the program can be both pretty-printed as
/// C-like text (Figures 7/10/13) and executed directly by the machine
/// simulator in src/sim.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_CODEGEN_SPMDAST_H
#define DMCC_CODEGEN_SPMDAST_H

#include "math/System.h"

#include <string>
#include <vector>

namespace dmcc {

/// ceil(Num/Den) (lower) or floor(Num/Den) (upper) loop bound.
struct SpmdBound {
  AffineExpr Num;
  IntT Den = 1;
};

/// One SPMD statement.
struct SpmdStmt {
  enum class Kind {
    Seq,     ///< sequence of Body statements
    For,     ///< for Var = max(Lower) .. min(Upper) { Body }
    If,      ///< if (Conds) { Body }
    SetVar,  ///< Var = Value (degenerate loop, Section 5.2)
    Compute, ///< execute source statement StmtId at iteration IterExprs
    Send,    ///< pack Body's PackElem leaves, send to processor Peer
    Recv,    ///< receive from Peer, unpack via Body's UnpackElem leaves
    PackElem,   ///< append Array[Indices] to the outgoing buffer
    UnpackElem, ///< store next buffer word into local Array[Indices]
  };

  Kind K = Kind::Seq;
  std::vector<SpmdStmt> Body;

  // For / SetVar.
  unsigned Var = 0;
  std::vector<SpmdBound> Lower, Upper;
  AffineExpr Value; ///< SetVar; with Den for floor: Value = floor(Num/Den)
  IntT ValueDen = 1;

  // If.
  std::vector<Constraint> Conds;

  // Compute.
  unsigned StmtId = 0;
  std::vector<AffineExpr> IterExprs;

  // Send / Recv.
  std::vector<AffineExpr> Peer; ///< grid coordinate of the peer
  unsigned CommId = 0;          ///< communication-set identifier (tag)
  bool IsMulticast = false;     ///< send once, delivered to all receivers
  /// Early send (paper Section 6, DESIGN.md §11): the sender may issue
  /// this message asynchronously and keep computing while it is in
  /// flight. Set only on Send statements whose communication set passed
  /// the early-send safety analysis; the simulator honors it when
  /// SimOptions::EarlySends is on. Never changes message contents or
  /// delivery order — only when the sender's clock advances.
  bool Nonblocking = false;

  // PackElem / UnpackElem.
  unsigned ArrayId = 0;
  std::vector<AffineExpr> Indices;
};

/// A complete generated SPMD program.
struct SpmdProgram {
  /// Space of every variable used by bounds/exprs: processor-identity
  /// variables myp*, scanned loop/processor/element variables, parameters,
  /// auxiliary variables.
  Space Sp;
  /// Indices of the executing processor's grid coordinates (myp*).
  std::vector<unsigned> MyProcVars;
  unsigned GridDims = 1;
  /// Number of virtual processors along each grid dimension is not fixed
  /// here; the simulator supplies the physical grid and the fold factor.
  std::vector<SpmdStmt> Top;

  /// Communication-set tags used by Send/Recv, for reporting.
  unsigned NumCommIds = 0;

  std::string str() const;
};

} // namespace dmcc

#endif // DMCC_CODEGEN_SPMDAST_H
