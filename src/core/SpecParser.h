//===- core/SpecParser.h - Decomposition directive parsing -----*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the decomposition directives that accompany a mini-language
/// program, in the spirit of HPF/FORTRAN-D annotations (Section 1):
///
///   decompose X cyclic(0);                 -- array X, dim 0 cyclic
///   decompose X block(0, 32);              -- blocks of 32 along dim 0
///   decompose X block(0, 8) overlap(1, 1); -- replicated borders
///   decompose X replicated;
///   final X block(0, 32);                  -- final layout (optional;
///                                             defaults to the initial)
///   compute S0 owner(X);                   -- owner-computes (Theorem 1)
///   compute S1 block(1, 32);               -- loop position 1 in blocks
///   compute S1 cyclic(0);                  -- loop position 0 cyclic
///
/// Statements are numbered S0, S1, ... in textual order. Directives may
/// be interleaved with the program source; parseWithSpec() separates
/// them, parses both, and returns a ready CompileSpec.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_CORE_SPECPARSER_H
#define DMCC_CORE_SPECPARSER_H

#include "core/Compiler.h"
#include "ir/Program.h"

#include <optional>
#include <string>

namespace dmcc {

/// Result of parsing an annotated source file.
struct SpecParseOutput {
  std::optional<Program> Prog;
  CompileSpec Spec;
  std::map<std::string, IntT> ParamDefaults;
  std::string Error; ///< empty on success
  /// Source position of the error, matching the frontend Parser's
  /// ErrorLine convention: 1-based line in the annotated source
  /// (directive lines keep their original numbering), 0 when unknown.
  /// ErrorCol is the 1-based column within that line, 0 when the error
  /// spans the whole directive (e.g. a resolution-phase failure).
  unsigned ErrorLine = 0;
  unsigned ErrorCol = 0;

  bool ok() const { return Prog.has_value(); }
};

/// Parses mini-language source with embedded decomposition directives.
/// Statements without an explicit `compute` directive default to
/// owner-computes on the decomposition of the array they write.
SpecParseOutput parseWithSpec(const std::string &Source);

} // namespace dmcc

#endif // DMCC_CORE_SPECPARSER_H
