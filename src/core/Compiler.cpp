//===- core/Compiler.cpp --------------------------------------*- C++ -*-===//

#include "core/Compiler.h"

#include "codegen/LoopSplit.h"
#include "dataflow/LastWriteTree.h"

#include <chrono>
#include <set>

using namespace dmcc;

namespace {

/// One communication action with its placement bookkeeping.
struct Placed {
  CommPlan Plan;
  unsigned CommId = 0;
  bool IsFinal = false;
  bool RecvEmitted = false;
  bool SendEmitted = false;
};

/// Chooses the message batching depth for a writer-produced set:
/// prefer dependence level - 1 (the paper's aggregation) when the
/// alignment/ordering checks pass, else fall back to the dependence
/// level (clamped to the loops the statements share).
unsigned chooseAggLevel(const Program &P, const CommSet &CS,
                        const CompilerOptions &Opts, std::string &Diag) {
  if (CS.FromInitialData)
    return 0;
  unsigned CD = P.commonLoopDepth(CS.WriteStmtId, CS.ReadStmtId);
  auto Clamp = [&](int L) -> unsigned {
    int MinL = CD == 0 ? 0 : 1;
    if (L < MinL)
      L = MinL;
    if (L > static_cast<int>(CD))
      L = static_cast<int>(CD);
    return static_cast<unsigned>(L);
  };
  unsigned Coarse = Clamp(static_cast<int>(CS.Level) - 1);
  unsigned Fine = Clamp(static_cast<int>(CS.Level));
  if (Opts.AggressiveAggregation && aggregationSafe(P, CS, Coarse))
    return Coarse;
  if (aggregationSafe(P, CS, Fine))
    return Fine;
  Diag += "note: aggregation checks failed for a set of S" +
          std::to_string(CS.ReadStmtId) +
          "; relying on runtime FIFO order\n";
  return Fine;
}

/// A value flow recorded during analysis, used for the loop-distribution
/// legality test in the emitter.
struct FlowDep {
  unsigned Writer = 0, Reader = 0;
  DepLevel Level = BottomLevel;
};

/// Walks the source tree, interleaving computation fragments with the
/// receives that feed them and the sends that publish their results.
class Emitter {
public:
  Emitter(const Program &P, SpmdSpace &SS, const CompileSpec &Spec,
          std::vector<Placed> &Comms, const std::vector<FlowDep> &Deps)
      : P(P), SS(SS), Spec(Spec), Comms(Comms), Deps(Deps) {}

  std::vector<SpmdStmt> run() {
    std::vector<SpmdStmt> Out;
    // Initial-data sends precede everything (Figure 13: "first processor
    // sends initial data").
    for (Placed &Pl : Comms) {
      if (Pl.IsFinal || !Pl.Plan.Set.FromInitialData)
        continue;
      append(Out, genSendFragment(SS, Pl.Plan, Pl.CommId));
      Pl.SendEmitted = true;
    }
    append(Out, emitList(P.topLevel(), 0));
    // Finalization: everyone publishes final values, then collects.
    for (Placed &Pl : Comms) {
      if (!Pl.IsFinal)
        continue;
      append(Out, genSendFragment(SS, Pl.Plan, Pl.CommId));
      Pl.SendEmitted = true;
    }
    for (Placed &Pl : Comms) {
      if (!Pl.IsFinal)
        continue;
      append(Out, genRecvFragment(SS, Pl.Plan, Pl.CommId));
      Pl.RecvEmitted = true;
    }
    return Out;
  }

private:
  static void append(std::vector<SpmdStmt> &Out,
                     std::vector<SpmdStmt> Frag) {
    for (SpmdStmt &S : Frag)
      Out.push_back(std::move(S));
  }

  void collectStmts(const Node &N, std::set<unsigned> &Stmts) const {
    if (N.K == Node::Kind::Stmt) {
      Stmts.insert(N.Index);
      return;
    }
    for (const Node &C : P.childrenOf(N.Index))
      collectStmts(C, Stmts);
  }

  void collectStmtsOrdered(const Node &N, std::vector<unsigned> &S) const {
    if (N.K == Node::Kind::Stmt) {
      S.push_back(N.Index);
      return;
    }
    for (const Node &C : P.childrenOf(N.Index))
      collectStmtsOrdered(C, S);
  }

  const StmtPlan &planOf(unsigned StmtId) const {
    for (const StmtPlan &SP : Spec.Stmts)
      if (SP.StmtId == StmtId)
        return SP;
    fatalError("missing computation decomposition for a statement");
  }

  std::vector<SpmdStmt> emitList(const std::vector<Node> &Children,
                                 unsigned Depth) {
    std::vector<SpmdStmt> Out;
    for (const Node &Child : Children) {
      std::set<unsigned> Here;
      collectStmts(Child, Here);

      // Receives feeding statements in this subtree, batched at this
      // depth, go right before it.
      for (Placed &Pl : Comms) {
        if (Pl.IsFinal || Pl.RecvEmitted || Pl.Plan.AggLevel != Depth)
          continue;
        if (!Here.count(Pl.Plan.Set.ReadStmtId))
          continue;
        append(Out, genRecvFragment(SS, Pl.Plan, Pl.CommId));
        Pl.RecvEmitted = true;
      }

      if (Child.K == Node::Kind::Stmt) {
        append(Out, genComputeFragment(SS, planOf(Child.Index), Depth));
      } else {
        // The loop must stay shared (interleaved) if a communication
        // batch boundary lies deeper, or if separating its statements
        // would break a textually-backward loop-carried flow
        // (distribution legality, cf. Section 5.4).
        bool Shared = false;
        for (const Placed &Pl : Comms) {
          if (Pl.IsFinal || Pl.Plan.AggLevel <= Depth)
            continue;
          bool Reads = Here.count(Pl.Plan.Set.ReadStmtId) != 0;
          bool Writes = !Pl.Plan.Set.FromInitialData &&
                        Here.count(Pl.Plan.Set.WriteStmtId) != 0;
          if (Reads || Writes) {
            Shared = true;
            break;
          }
        }
        for (const FlowDep &D : Deps) {
          if (Shared)
            break;
          if (D.Writer == D.Reader || D.Level <= Depth)
            continue;
          if (!Here.count(D.Writer) || !Here.count(D.Reader))
            continue;
          if (D.Level > P.commonLoopDepth(D.Writer, D.Reader))
            continue; // loop-independent: textual order is preserved
          if (P.precedesTextually(D.Writer, D.Reader))
            continue; // forward flow: phases keep it satisfied
          Shared = true;
        }
        if (Shared) {
          SpmdStmt For = makeSharedLoop(SS, Child.Index);
          For.Body = emitList(P.childrenOf(Child.Index), Depth + 1);
          Out.push_back(std::move(For));
        } else {
          std::vector<unsigned> Inner;
          collectStmtsOrdered(Child, Inner);
          for (unsigned S : Inner) {
            append(Out, genComputeFragment(SS, planOf(S), Depth));
            // Early-send hoist (Section 6, DESIGN.md §11): a batch
            // whose content is complete once this statement's fragment
            // has run is issued here, ahead of the sibling fragments,
            // instead of after the whole subtree. HoistEarly guarantees
            // none of those siblings writes the communicated array, so
            // the packed values are the ones the blocking placement
            // would pack.
            for (Placed &Pl : Comms) {
              if (Pl.IsFinal || Pl.SendEmitted ||
                  Pl.Plan.AggLevel != Depth || !Pl.Plan.HoistEarly)
                continue;
              if (Pl.Plan.Set.FromInitialData ||
                  Pl.Plan.Set.WriteStmtId != S)
                continue;
              append(Out, genSendFragment(SS, Pl.Plan, Pl.CommId));
              Pl.SendEmitted = true;
            }
          }
        }
      }

      // Sends publishing values produced in this subtree, batched at
      // this depth, go right after it.
      for (Placed &Pl : Comms) {
        if (Pl.IsFinal || Pl.SendEmitted || Pl.Plan.AggLevel != Depth)
          continue;
        if (Pl.Plan.Set.FromInitialData)
          continue;
        if (!Here.count(Pl.Plan.Set.WriteStmtId))
          continue;
        append(Out, genSendFragment(SS, Pl.Plan, Pl.CommId));
        Pl.SendEmitted = true;
      }
    }
    return Out;
  }

  const Program &P;
  SpmdSpace &SS;
  const CompileSpec &Spec;
  std::vector<Placed> &Comms;
  const std::vector<FlowDep> &Deps;
};

} // namespace

CompiledProgram dmcc::compile(const Program &P, const CompileSpec &Spec,
                              const CompilerOptions &Opts) {
  auto T0 = std::chrono::steady_clock::now();
  // Install this compile's polyhedral-core settings process-wide and
  // snapshot the counters so Stats.Proj covers exactly this compile.
  ProjectionOptions SavedOpts = projectionOptions();
  projectionOptions() = Opts.Projection;
  resetPhaseProfiles();
  ProjectionStats Before = projectionStats();

  CompiledProgram Out;
  SpmdSpace SS(P, Opts.GridDims);

  auto finish = [&](CompiledProgram &R) -> CompiledProgram & {
    R.Stats.Proj = projectionStats() - Before;
    R.Stats.Phases = phaseProfiles();
    projectionOptions() = SavedOpts;
    R.Stats.CompileSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      T0)
            .count();
    return R;
  };

  auto planOf = [&Spec](unsigned StmtId) -> const StmtPlan & {
    for (const StmtPlan &SP : Spec.Stmts)
      if (SP.StmtId == StmtId)
        return SP;
    fatalError("compile: missing computation decomposition");
  };
  // A computation decomposition must map each iteration to exactly one
  // processor (Definition 2). A replicated dimension would silently run
  // every iteration on multiple processors, so reject the spec loudly
  // in every build type instead of asserting in debug only.
  for (const StmtPlan &SP : Spec.Stmts)
    if (!SP.Comp.isUnique()) {
      Out.Ok = false;
      Out.ErrorMessage =
          "computation decomposition for S" + std::to_string(SP.StmtId) +
          " is not unique: every iteration must map to exactly one "
          "processor (Definition 2)";
      return finish(Out);
    }

  std::vector<Placed> Comms;
  std::vector<FlowDep> Deps;
  // Analysis and communication-set derivation.
  for (unsigned S = 0, E = P.numStatements(); S != E; ++S) {
    const Statement &St = P.statement(S);
    const StmtPlan &ReaderPlan = planOf(S);
    std::vector<CommSet> StmtPieces;
    for (unsigned R = 0, RE = St.Reads.size(); R != RE; ++R) {
      LastWriteTree T = buildLWT(P, S, R);
      Out.Stats.NumLWTContexts += T.Contexts.size();
      if (!T.Exact) {
        Out.Stats.AllExact = false;
        Out.Diagnostics += "warning: approximate data flow for S" +
                           std::to_string(S) + " read " +
                           std::to_string(R) + "\n";
      }
      for (const LWTContext &Ctx : T.Contexts)
        if (Ctx.HasWriter)
          Deps.push_back(FlowDep{Ctx.WriteStmtId, S, Ctx.Level});
      std::vector<CommSet> &Pieces = StmtPieces;
      for (const LWTContext &Ctx : T.Contexts) {
        const Decomposition *Init = nullptr;
        auto It = Spec.InitialData.find(St.Reads[R].ArrayId);
        if (It != Spec.InitialData.end())
          Init = &It->second;
        std::vector<CommSet> Sets;
        if (Ctx.HasWriter) {
          Sets = buildCommSets(P, T, Ctx, ReaderPlan.Comp,
                               &planOf(Ctx.WriteStmtId).Comp, Init,
                               Opts.GridDims);
        } else {
          if (!Init)
            fatalError("compile: array read before written needs an "
                       "initial data decomposition");
          Sets = buildCommSets(P, T, Ctx, ReaderPlan.Comp, nullptr, Init,
                               Opts.GridDims);
        }
        Out.Stats.NumCommSets += Sets.size();
        for (CommSet &CS : Sets) {
          if (!Opts.EliminateSelfReuse) {
            Pieces.push_back(std::move(CS));
            continue;
          }
          for (CommSet &Thin : eliminateSelfReuse(CS))
            Pieces.push_back(std::move(Thin));
        }
      }
    }
    if (Opts.EliminateGroupReuse)
      eliminateGroupReuse(StmtPieces);
    coalesceCommSets(StmtPieces);
    for (CommSet &Piece : StmtPieces) {
      ++Out.Stats.NumCommSetsAfterSelfReuse;
      if (Opts.DetectMulticast && detectMulticast(Piece))
        ++Out.Stats.NumMulticastSets;
      Placed Pl;
      Pl.Plan.AggLevel = chooseAggLevel(P, Piece, Opts, Out.Diagnostics);
      Pl.Plan.Multicast = Piece.Multicast;
      Pl.Plan.Set = std::move(Piece);
      Comms.push_back(std::move(Pl));
    }
  }

  // Finalization.
  if (Opts.Finalize) {
    for (const auto &[ArrayId, FinalD] : Spec.FinalData) {
      LastWriteTree AT = buildArrayLastWrites(P, ArrayId);
      if (!AT.Exact) {
        Out.Stats.AllExact = false;
        Out.Diagnostics += "warning: approximate finalization for array " +
                           std::to_string(ArrayId) + "\n";
      }
      for (const LWTContext &Ctx : AT.Contexts) {
        const Decomposition *Init = nullptr;
        auto It = Spec.InitialData.find(ArrayId);
        if (It != Spec.InitialData.end())
          Init = &It->second;
        if (!Ctx.HasWriter && !Init)
          continue; // untouched data with no known home: nothing to move
        std::vector<CommSet> Sets = buildFinalizationSets(
            P, AT, Ctx, Ctx.HasWriter ? &planOf(Ctx.WriteStmtId).Comp
                                      : nullptr,
            Init, FinalD, Opts.GridDims);
        for (CommSet &CS : Sets) {
          ++Out.Stats.NumFinalizationSets;
          Placed Pl;
          Pl.Plan.Set = std::move(CS);
          Pl.Plan.AggLevel = 0;
          Pl.IsFinal = true;
          Comms.push_back(std::move(Pl));
        }
      }
    }
  }

  // Early sends (Section 6, DESIGN.md §11): decide per set whether its
  // sends may issue nonblocking, and whether the fragment may also be
  // hoisted to right after its producer. Hoisting moves the pack across
  // the sibling fragments that follow the writer inside its subtree, so
  // it additionally requires that none of them writes the communicated
  // array there (a conservative, syntactic stand-in for the LWT's
  // element-level guarantee) and that every data-flow tree was exact.
  if (Opts.EarlySends) {
    auto HoistSafe = [&](const CommSet &CS, unsigned Level) {
      for (unsigned S = 0, E = P.numStatements(); S != E; ++S) {
        if (S == CS.WriteStmtId ||
            P.statement(S).Write.ArrayId != CS.ArrayId)
          continue;
        if (P.commonLoopDepth(S, CS.WriteStmtId) <= Level)
          continue; // outside the batch subtree: the hoist never
                    // crosses it
        if (P.precedesTextually(CS.WriteStmtId, S))
          return false;
      }
      return true;
    };
    for (Placed &Pl : Comms) {
      CommPlan &Plan = Pl.Plan;
      if (Pl.IsFinal) {
        // Finalization sets run after every write of the program:
        // trivially complete, always safe to issue asynchronously.
        Plan.EarlyLevel = 0;
        ++Out.Stats.NumEarlySends;
        continue;
      }
      if (!earlySendSafe(P, Plan.Set, Plan.AggLevel))
        continue;
      Plan.EarlyLevel = Plan.AggLevel;
      ++Out.Stats.NumEarlySends;
      if (!Plan.Set.FromInitialData && Out.Stats.AllExact &&
          HoistSafe(Plan.Set, Plan.AggLevel)) {
        Plan.HoistEarly = true;
        ++Out.Stats.NumEarlyHoisted;
      }
    }
  }

  for (unsigned I = 0; I != Comms.size(); ++I)
    Comms[I].CommId = SS.nextCommId();

  {
    PhaseTimer Timer("codegen.emit");
    Emitter Em(P, SS, Spec, Comms, Deps);
    SS.prog().Top = Em.run();
  }
  Out.Spmd = std::move(SS.prog());
  Out.Stats.NumCommChannels = Out.Spmd.NumCommIds;
  if (Opts.SplitLoops) {
    PhaseTimer Timer("codegen.split");
    LoopSplitStats LS = splitLoops(Out.Spmd);
    Out.Stats.LoopsSplit = LS.LoopsSplit;
    Out.Stats.GuardsEliminated = LS.GuardsEliminated;
  }
  for (Placed &Pl : Comms)
    Out.Comms.push_back(std::move(Pl.Plan));

  return finish(Out);
}
