//===- core/SpecParser.cpp ------------------------------------*- C++ -*-===//

#include "core/SpecParser.h"

#include "frontend/Parser.h"

#include <cctype>
#include <sstream>

using namespace dmcc;

namespace {

/// Tiny tokenizer for directive lines: words, integers, punctuation.
struct DirectiveLexer {
  std::string Text;
  size_t Pos = 0;

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  std::string word() {
    skipSpace();
    size_t S = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    return Text.substr(S, Pos - S);
  }

  std::optional<IntT> integer() {
    skipSpace();
    size_t S = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == S)
      return std::nullopt;
    return std::stoll(Text.substr(S, Pos - S));
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size() || Text[Pos] == '#';
  }
};

/// A parsed mapping clause: block(d, b), cyclic(d), replicated, owner(X).
struct MappingClause {
  enum class Kind { Block, Cyclic, Replicated, Owner } K = Kind::Block;
  IntT Dim = 0;
  IntT BlockSize = 1;
  IntT OverlapLo = 0, OverlapHi = 0;
  std::string OwnerArray;
};

bool parseMapping(DirectiveLexer &L, MappingClause &M, std::string &Err) {
  std::string W = L.word();
  if (W == "replicated") {
    M.K = MappingClause::Kind::Replicated;
  } else if (W == "owner") {
    M.K = MappingClause::Kind::Owner;
    if (!L.eat('(')) {
      Err = "expected '(' after owner";
      return false;
    }
    M.OwnerArray = L.word();
    if (M.OwnerArray.empty() || !L.eat(')')) {
      Err = "expected owner(ARRAY)";
      return false;
    }
  } else if (W == "cyclic" || W == "block") {
    M.K = W == "cyclic" ? MappingClause::Kind::Cyclic
                        : MappingClause::Kind::Block;
    if (!L.eat('(')) {
      Err = "expected '(' after " + W;
      return false;
    }
    auto D = L.integer();
    if (!D) {
      Err = "expected dimension in " + W + "(...)";
      return false;
    }
    M.Dim = *D;
    if (M.K == MappingClause::Kind::Block) {
      if (!L.eat(',')) {
        Err = "expected block(dim, size)";
        return false;
      }
      auto B = L.integer();
      if (!B || *B < 1) {
        Err = "expected positive block size";
        return false;
      }
      M.BlockSize = *B;
    }
    if (!L.eat(')')) {
      Err = "expected ')'";
      return false;
    }
  } else {
    Err = "unknown mapping '" + W + "'";
    return false;
  }
  // Optional overlap(lo, hi).
  DirectiveLexer Save = L;
  std::string Next = L.word();
  if (Next == "overlap") {
    if (!L.eat('(')) {
      Err = "expected overlap(lo, hi)";
      return false;
    }
    auto Lo = L.integer();
    if (!Lo || !L.eat(',')) {
      Err = "expected overlap(lo, hi)";
      return false;
    }
    auto Hi = L.integer();
    if (!Hi || !L.eat(')')) {
      Err = "expected overlap(lo, hi)";
      return false;
    }
    M.OverlapLo = *Lo;
    M.OverlapHi = *Hi;
  } else {
    L = Save;
  }
  return true;
}

Decomposition dataDecompOf(const Program &P, unsigned ArrayId,
                           const MappingClause &M) {
  switch (M.K) {
  case MappingClause::Kind::Replicated:
    return replicatedData(P, ArrayId);
  case MappingClause::Kind::Cyclic:
    return cyclicData(P, ArrayId, static_cast<unsigned>(M.Dim));
  case MappingClause::Kind::Block:
    return blockData(P, ArrayId, static_cast<unsigned>(M.Dim),
                     M.BlockSize, M.OverlapLo, M.OverlapHi);
  case MappingClause::Kind::Owner:
    break;
  }
  fatalError("owner() is not a data mapping");
}

} // namespace

SpecParseOutput dmcc::parseWithSpec(const std::string &Source) {
  SpecParseOutput Out;

  // Separate directive lines from program source. Each directive keeps
  // its line number and leading indent so errors can point at the
  // original source position.
  struct Directive {
    unsigned No = 0;     ///< 1-based source line
    unsigned Indent = 0; ///< columns stripped before the keyword
    std::string Text;
  };
  std::vector<Directive> Directives;
  std::string ProgSource;
  std::istringstream In(Source);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    size_t First = Line.find_first_not_of(" \t");
    std::string Trim =
        First == std::string::npos ? std::string() : Line.substr(First);
    if (Trim.rfind("decompose ", 0) == 0 || Trim.rfind("compute ", 0) == 0 ||
        Trim.rfind("final ", 0) == 0) {
      // Strip the trailing ';' if present.
      size_t Semi = Trim.find(';');
      if (Semi != std::string::npos)
        Trim = Trim.substr(0, Semi);
      Directives.push_back(
          Directive{LineNo, static_cast<unsigned>(First), Trim});
      ProgSource += "\n";
    } else {
      ProgSource += Line + "\n";
    }
  }

  // Directive lines became blank lines in ProgSource, so the frontend's
  // line numbers map 1:1 onto the annotated source.
  ParseOutput PO = parseProgram(ProgSource);
  if (!PO.ok()) {
    Out.Error = PO.Error;
    Out.ErrorLine = PO.ErrorLine;
    return Out;
  }
  Program &P = *PO.Prog;
  Out.ParamDefaults = std::move(PO.ParamDefaults);

  std::map<unsigned, MappingClause> ComputeClauses;
  std::map<unsigned, unsigned> ComputeLines; ///< SId -> directive line
  for (const Directive &Dir : Directives) {
    DirectiveLexer L{Dir.Text, 0};
    std::string Kw = L.word();
    auto fail = [&](const std::string &Msg) {
      Out.Error = Msg;
      Out.ErrorLine = Dir.No;
      // The lexer position where parsing stopped, back in the original
      // line's coordinates (1-based).
      Out.ErrorCol = Dir.Indent + static_cast<unsigned>(L.Pos) + 1;
    };
    if (Kw == "decompose" || Kw == "final") {
      std::string Arr = L.word();
      int AId = P.arrayIdOf(Arr);
      if (AId < 0) {
        fail("unknown array '" + Arr + "'");
        return Out;
      }
      MappingClause M;
      std::string Err;
      if (!parseMapping(L, M, Err)) {
        fail(Err);
        return Out;
      }
      if (M.K == MappingClause::Kind::Owner) {
        fail("owner() applies to compute directives only");
        return Out;
      }
      if (M.Dim < 0 ||
          static_cast<size_t>(M.Dim) >=
              P.array(static_cast<unsigned>(AId)).DimSizes.size()) {
        fail("array dimension out of range");
        return Out;
      }
      Decomposition DD = dataDecompOf(P, static_cast<unsigned>(AId), M);
      if (Kw == "decompose")
        Out.Spec.InitialData.insert_or_assign(static_cast<unsigned>(AId),
                                              std::move(DD));
      else
        Out.Spec.FinalData.insert_or_assign(static_cast<unsigned>(AId),
                                            std::move(DD));
    } else if (Kw == "compute") {
      std::string SName = L.word();
      if (SName.size() < 2 || SName[0] != 'S') {
        fail("expected statement name S<k>");
        return Out;
      }
      unsigned SId = 0;
      for (char C : SName.substr(1)) {
        if (!std::isdigit(static_cast<unsigned char>(C))) {
          fail("expected statement name S<k>");
          return Out;
        }
        SId = SId * 10 + static_cast<unsigned>(C - '0');
      }
      if (SId >= P.numStatements()) {
        fail("statement " + SName + " out of range");
        return Out;
      }
      MappingClause M;
      std::string Err;
      if (!parseMapping(L, M, Err)) {
        fail(Err);
        return Out;
      }
      if (M.OverlapLo || M.OverlapHi) {
        fail("computation decompositions cannot overlap");
        return Out;
      }
      ComputeClauses[SId] = M;
      ComputeLines[SId] = Dir.No;
    }
    if (!L.atEnd()) {
      fail("trailing characters in directive");
      return Out;
    }
  }

  // Resolve computation decompositions; default to owner-computes on the
  // written array.
  auto failResolve = [&](unsigned S, const std::string &Msg) {
    Out.Error = Msg;
    // Point at the compute directive when there is one; a defaulted
    // owner-computes has no source line to blame.
    auto It = ComputeLines.find(S);
    Out.ErrorLine = It == ComputeLines.end() ? 0 : It->second;
    Out.ErrorCol = 0;
  };
  for (unsigned S = 0; S != P.numStatements(); ++S) {
    auto It = ComputeClauses.find(S);
    MappingClause M;
    if (It == ComputeClauses.end()) {
      M.K = MappingClause::Kind::Owner;
      M.OwnerArray = P.array(P.statement(S).Write.ArrayId).Name;
    } else {
      M = It->second;
    }
    if (M.K == MappingClause::Kind::Owner) {
      int AId = P.arrayIdOf(M.OwnerArray);
      if (AId < 0) {
        failResolve(S, "compute S" + std::to_string(S) +
                           ": unknown array '" + M.OwnerArray + "'");
        return Out;
      }
      auto DIt = Out.Spec.InitialData.find(static_cast<unsigned>(AId));
      if (DIt == Out.Spec.InitialData.end()) {
        failResolve(S, "compute S" + std::to_string(S) + ": owner(" +
                           M.OwnerArray +
                           ") needs a decompose directive");
        return Out;
      }
      if (P.statement(S).Write.ArrayId != static_cast<unsigned>(AId)) {
        failResolve(S, "compute S" + std::to_string(S) +
                           ": owner() must name the written array");
        return Out;
      }
      if (!DIt->second.isUnique()) {
        failResolve(S, "compute S" + std::to_string(S) +
                           ": owner-computes requires the written data "
                           "not be replicated (Section 2.2.1); give an "
                           "explicit compute directive");
        return Out;
      }
      Out.Spec.Stmts.push_back(
          StmtPlan{S, ownerComputes(P, S, DIt->second)});
    } else if (M.K == MappingClause::Kind::Replicated) {
      failResolve(S, "compute S" + std::to_string(S) +
                         ": computation cannot be replicated");
      return Out;
    } else {
      unsigned Depth = P.statement(S).depth();
      if (M.Dim < 0 || static_cast<unsigned>(M.Dim) >= Depth) {
        failResolve(S, "compute S" + std::to_string(S) +
                           ": loop position out of range");
        return Out;
      }
      Out.Spec.Stmts.push_back(StmtPlan{
          S, blockComputation(P, S, static_cast<unsigned>(M.Dim),
                              M.K == MappingClause::Kind::Cyclic
                                  ? 1
                                  : M.BlockSize)});
    }
  }

  // Default final layouts to the initial ones.
  for (const auto &[AId, D] : Out.Spec.InitialData)
    if (!Out.Spec.FinalData.count(AId))
      Out.Spec.FinalData.emplace(AId, D);

  Out.Prog = std::move(P);
  return Out;
}
