//===- core/Compiler.h - The dmcc compiler driver --------------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end compiler of the paper: given a program, a computation
/// decomposition per statement, and initial/final data decompositions per
/// array, produce the optimized SPMD program:
///
///   1. exact data-flow analysis (Last Write Trees) per read access;
///   2. communication sets per LWT context (Theorems 3/4), plus
///      finalization sets (Section 4.4.3);
///   3. communication optimization: self-reuse redundancy elimination
///      (6.1.1), already-owned elimination (6.1.3), multicast detection
///      (6.2.1), and message aggregation with a safe level choice (6.2);
///   4. SPMD code generation by polyhedron scanning, merged along the
///      source loop tree with sends placed right after producers and
///      receives right before consumers (Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_CORE_COMPILER_H
#define DMCC_CORE_COMPILER_H

#include "codegen/CodeGen.h"
#include "comm/CommSet.h"
#include "decomp/Decomposition.h"
#include "ir/Program.h"
#include "math/Projection.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dmcc {

/// Compiler options; each optimization can be toggled for ablations.
struct CompilerOptions {
  unsigned GridDims = 1;
  /// Budgets and accelerator toggles for the polyhedral core. Installed
  /// as the process-wide projectionOptions() for the duration of the
  /// compile (the previous settings are restored on return).
  ProjectionOptions Projection;
  bool EliminateSelfReuse = true;
  /// Section 6.1.2: drop transfers whose value another read of the same
  /// statement already brought in within the same batch.
  bool EliminateGroupReuse = true;
  bool DetectMulticast = true;
  /// Prefer the coarse (dependence-level - 1) aggregation when legal;
  /// otherwise messages batch per dependence-level iteration.
  bool AggressiveAggregation = true;
  /// Emit finalization communication into the final data layout.
  bool Finalize = true;
  /// Section 5.4: statically split merged loops at guard breakpoints so
  /// iteration ranges run guard-free.
  bool SplitLoops = true;
  /// Section 6 "early sends" (DESIGN.md §11): mark sends whose
  /// communication set passes earlySendSafe() as nonblocking so the
  /// simulator overlaps message latency with the sender's remaining
  /// computation, and hoist a send fragment to immediately after its
  /// producing statement inside a distributed subtree when no later
  /// statement there can overwrite the communicated array. Array
  /// results are bit-identical with this on or off.
  bool EarlySends = false;
};

/// Everything the compiler derived, for reporting and benchmarks.
struct CompileStats {
  unsigned NumLWTContexts = 0;
  unsigned NumCommSets = 0;
  unsigned NumCommSetsAfterSelfReuse = 0;
  unsigned NumMulticastSets = 0;
  unsigned NumFinalizationSets = 0;
  /// Distinct communication tags in the emitted SPMD program — the
  /// directed-channel count the simulator's reliable transport tracks
  /// sequence numbers for (an upper bound per src/dst pair).
  unsigned NumCommChannels = 0;
  unsigned LoopsSplit = 0;
  unsigned GuardsEliminated = 0;
  /// Communication plans marked nonblocking by the early-send analysis,
  /// and the subset additionally hoisted to right after their producer.
  unsigned NumEarlySends = 0;
  unsigned NumEarlyHoisted = 0;
  bool AllExact = true;
  double CompileSeconds = 0;
  /// Polyhedral-core counters accumulated over this compile only
  /// (feasibility queries, cache hits, FM eliminations, ...).
  ProjectionStats Proj;
  /// Per-phase wall time and counter deltas ("dataflow.lwt",
  /// "comm.commsets", "codegen.scan", ...). Nested phases are excluded
  /// from their parents, so each row is exclusive (self) cost and the
  /// rows sum to the instrumented share of CompileSeconds.
  std::vector<PhaseProfile> Phases;
};

/// The compilation result.
struct CompiledProgram {
  /// False when the spec was rejected before compilation (e.g. a
  /// non-unique computation decomposition): Spmd/Comms are empty and
  /// ErrorMessage names the offending statement. Checked in all build
  /// types — never a release-silent assert.
  bool Ok = true;
  std::string ErrorMessage;
  SpmdProgram Spmd;
  std::vector<CommPlan> Comms; ///< indexed by CommId
  CompileStats Stats;
  std::string Diagnostics; ///< human-readable notes (fallbacks etc.)
};

/// The compiler input: which processor runs what, where data starts and
/// where it must end up.
struct CompileSpec {
  std::vector<StmtPlan> Stmts;            ///< one per statement
  /// Initial layout per array id (required for arrays whose values are
  /// read before being written).
  std::map<unsigned, Decomposition> InitialData;
  /// Final layout per array id (optional; enables finalization).
  std::map<unsigned, Decomposition> FinalData;
};

/// Runs the full pipeline. Fatal error on malformed specs; analysis
/// fallbacks are recorded in Diagnostics.
CompiledProgram compile(const Program &P, const CompileSpec &Spec,
                        const CompilerOptions &Opts = CompilerOptions());

} // namespace dmcc

#endif // DMCC_CORE_COMPILER_H
