//===- comm/CommSet.h - Communication sets ---------------------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Communication sets (Definition 3): sets of tuples
/// (ir, pr, is, ps, a) saying processor ps must send the value it writes
/// into location a at iteration is to processor pr for use at read
/// iteration ir. Theorem 3 derives them from Last-Write-Tree contexts and
/// computation decompositions; Theorem 4 handles contexts whose values
/// come from the initial data layout. The ps != pr condition is expanded
/// into disjoint disjuncts (one communication set each), exactly as the
/// paper does for Figure 5.
///
/// Variable naming inside a set's system: sender grid "ps<d>", sender
/// iteration "s.<loop>", receiver grid "pr<d>", receiver iteration
/// "r.<loop>", element "el<k>"; parameters keep their names.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_COMM_COMMSET_H
#define DMCC_COMM_COMMSET_H

#include "dataflow/LastWriteTree.h"
#include "decomp/Decomposition.h"
#include "ir/Program.h"

#include <map>
#include <string>
#include <vector>

namespace dmcc {

/// One convex communication set.
struct CommSet {
  System Sys;

  unsigned ArrayId = 0;
  /// Whether the data is produced by a statement (Theorem 3) or fetched
  /// from the initial data layout (Theorem 4).
  bool FromInitialData = false;
  unsigned WriteStmtId = 0; ///< valid when !FromInitialData
  unsigned ReadStmtId = 0;
  unsigned ReadIdx = 0;
  /// Dependence level of the underlying LWT context; messages can legally
  /// be batched per iteration of this loop (Section 6.2).
  DepLevel Level = BottomLevel;

  /// Cached variable indices in Sys, grouped by role.
  std::vector<unsigned> PsVars, SVars, PrVars, RVars, ElVars;

  /// True if the same message content can be multicast to every receiver
  /// (element range independent of the receiver, Section 6.2.1).
  bool Multicast = false;

  std::string str() const;
};

/// Derives the communication sets for one LWT context of a read access
/// (Theorem 3 for writer contexts, Theorem 4 for bottom contexts).
///
/// \p ReaderComp maps the reader's iterations to the grid; \p WriterComp
/// maps the producing statement's iterations (writer contexts), and
/// \p InitialData maps array elements to their initial owners (bottom
/// contexts). \p GridDims is the dimensionality of the processor grid.
/// When \p DropAlreadyOwned is set, transfers whose receiver already owns
/// a copy under \p InitialData are eliminated (Section 6.1.3).
std::vector<CommSet> buildCommSets(
    const Program &P, const LastWriteTree &T, const LWTContext &Ctx,
    const Decomposition &ReaderComp, const Decomposition *WriterComp,
    const Decomposition *InitialData, unsigned GridDims,
    bool DropAlreadyOwned = true);

/// Section 4.4.3 (finalization): communication sets moving each array
/// element's final value (for writer contexts of an array last-write
/// tree) or its untouched initial value (bottom contexts) to the
/// element's owners under the final layout. Tuples are (ps, s, pr, el);
/// there is no read iteration. \p WriterComp maps the producing
/// statement's iterations to the grid (writer contexts); \p InitialData
/// locates untouched values (bottom contexts). Replicated final
/// dimensions are not supported.
std::vector<CommSet> buildFinalizationSets(
    const Program &P, const LastWriteTree &ArrayT, const LWTContext &Ctx,
    const Decomposition *WriterComp, const Decomposition *InitialData,
    const Decomposition &FinalData, unsigned GridDims);

/// Section 6.1.1: redundant communication due to self reuse. Each value
/// (identified by sender, write instance, element, receiver) is
/// transferred once, to the lexicographically earliest receive iteration;
/// later reads of the same value on the same processor hit local memory.
/// Returns the thinned communication sets (pieces of the lexmin).
std::vector<CommSet> eliminateSelfReuse(const CommSet &CS);

/// Section 6.1.2: redundant communication due to group reuse. When two
/// reads of the same statement fetch the same value (same sender, write
/// instance, element and receiver) in the same dependence-level batch,
/// the later read slot's transfer is dropped: the first delivery leaves
/// the value in local memory. Pairs whose projection is integer-inexact
/// are left untouched (safe). Rewrites \p Sets in place.
void eliminateGroupReuse(std::vector<CommSet> &Sets);

/// Merges communication sets with identical metadata whose systems union
/// to a convex set (undoing analysis case splits); shrinks \p Sets in
/// place. Reduces both generated-code size and message counts.
void coalesceCommSets(std::vector<CommSet> &Sets);

/// Section 6.2.1: marks the set as a multicast when the element range is
/// independent of the receiver coordinates. Returns the updated flag.
bool detectMulticast(CommSet &CS);

/// Counts, under concrete parameter values, the number of distinct tuples
/// of the given variable groups (e.g. {PsVars, ElVars} to count distinct
/// words leaving each sender). Enumerates the full set; intended for
/// tests and benchmark reporting, not for compilation.
uint64_t countDistinct(const CommSet &CS,
                       const std::vector<std::vector<unsigned>> &Groups,
                       const std::map<std::string, IntT> &ParamValues,
                       unsigned Budget = 4000000);

} // namespace dmcc

#endif // DMCC_COMM_COMMSET_H
