//===- comm/CommSet.cpp ---------------------------------------*- C++ -*-===//

#include "comm/CommSet.h"

#include "math/LexOpt.h"

#include <algorithm>

#include <map>
#include <set>

using namespace dmcc;

namespace {

/// Node budget for the emptiness probes that prune communication pieces.
unsigned feasBudget() { return projectionOptions().FeasibilityBudget; }

/// Builds the base system of a communication set for one LWT context and
/// returns it with the variable-group indices filled in.
CommSet buildBase(const Program &P, const LastWriteTree &T,
                  const LWTContext &Ctx, const Decomposition &ReaderComp,
                  const Decomposition *WriterComp,
                  const Decomposition *InitialData, unsigned GridDims) {
  const Statement &Reader = P.statement(T.ReadStmtId);
  const Access &RA = Reader.Reads[T.ReadIdx];
  unsigned ElemDims = RA.Indices.size();

  CommSet CS;
  CS.ArrayId = RA.ArrayId;
  CS.FromInitialData = !Ctx.HasWriter;
  CS.WriteStmtId = Ctx.HasWriter ? Ctx.WriteStmtId : 0;
  CS.ReadStmtId = T.ReadStmtId;
  CS.ReadIdx = T.ReadIdx;
  CS.Level = Ctx.Level;

  // Canonical variable order: ps, s, pr, r, el, params (aux appended as
  // contexts are mapped in).
  Space Sp;
  for (unsigned D = 0; D != GridDims; ++D)
    CS.PsVars.push_back(Sp.add("ps" + std::to_string(D), VarKind::Proc));
  std::vector<std::string> WriterLoopNames;
  if (Ctx.HasWriter) {
    const Statement &W = P.statement(Ctx.WriteStmtId);
    for (unsigned L : W.Loops) {
      std::string N = "s." + P.space().name(P.loop(L).VarIndex);
      WriterLoopNames.push_back(N);
      CS.SVars.push_back(Sp.add(N, VarKind::Loop));
    }
  }
  for (unsigned D = 0; D != GridDims; ++D)
    CS.PrVars.push_back(Sp.add("pr" + std::to_string(D), VarKind::Proc));
  std::vector<std::string> ReaderLoopNames;
  for (unsigned L : Reader.Loops) {
    std::string N = "r." + P.space().name(P.loop(L).VarIndex);
    ReaderLoopNames.push_back(N);
    CS.RVars.push_back(Sp.add(N, VarKind::Loop));
  }
  for (unsigned K = 0; K != ElemDims; ++K)
    CS.ElVars.push_back(Sp.add("el" + std::to_string(K), VarKind::Data));
  for (unsigned I = 0, E = P.space().size(); I != E; ++I)
    if (P.space().kind(I) == VarKind::Param)
      Sp.add(P.space().name(I), VarKind::Param);

  System S(std::move(Sp));

  // The LWT context domain: anchor loop vars become the receive copies;
  // aux witnesses get fresh names.
  const Space &ASp = Ctx.Domain.space();
  std::map<std::string, std::string> NameMap;
  for (unsigned I = 0, E = ASp.size(); I != E; ++I) {
    const std::string &N = ASp.name(I);
    if (ASp.kind(I) == VarKind::Aux) {
      std::string Fresh = S.space().freshName(N);
      S.addVar(Fresh, VarKind::Aux);
      NameMap[N] = Fresh;
    } else if (ASp.kind(I) == VarKind::Param) {
      NameMap[N] = N;
    } else {
      NameMap[N] = "r." + N;
    }
  }
  auto MapName = [&NameMap](const std::string &N) { return NameMap.at(N); };
  for (const Constraint &C : Ctx.Domain.constraints())
    S.addConstraint(
        Constraint(mapExpr(C.Expr, ASp, S.space(), MapName), C.Rel));

  // Writer instance: s == the context's write-instance map.
  if (Ctx.HasWriter) {
    assert(Ctx.WriteInstance.size() == WriterLoopNames.size() &&
           "write instance arity mismatch");
    for (unsigned K = 0, E = WriterLoopNames.size(); K != E; ++K) {
      AffineExpr V = mapExpr(Ctx.WriteInstance[K], ASp, S.space(), MapName);
      unsigned SV = static_cast<unsigned>(
          S.space().indexOf(WriterLoopNames[K]));
      S.addEq(S.varExpr(SV), V);
    }
  }

  // Element identity: el == fr(r).
  auto MapRead = [&P](const std::string &N) -> std::string {
    int I = P.space().indexOf(N);
    if (I >= 0 && P.space().kind(static_cast<unsigned>(I)) == VarKind::Loop)
      return "r." + N;
    return N;
  };
  for (unsigned K = 0; K != ElemDims; ++K) {
    AffineExpr FR = mapExpr(RA.Indices[K], P.space(), S.space(), MapRead);
    S.addEq(S.varExpr(CS.ElVars[K]), FR);
  }

  // Computation decomposition of the reader: r -> pr.
  {
    const Space &RSp = ReaderComp.sourceSpace();
    std::vector<AffineExpr> Vals;
    for (unsigned K = 0, E = RSp.size(); K != E; ++K) {
      if (RSp.kind(K) == VarKind::Param) {
        Vals.push_back(AffineExpr(S.numVars()));
        continue;
      }
      int J = S.space().indexOf("r." + RSp.name(K));
      assert(J >= 0 && "reader decomposition variable missing");
      Vals.push_back(S.varExpr(static_cast<unsigned>(J)));
    }
    ReaderComp.addConstraints(S, Vals, CS.PrVars);
  }

  if (Ctx.HasWriter) {
    assert(WriterComp && "writer context needs a writer decomposition");
    const Space &WSp = WriterComp->sourceSpace();
    std::vector<AffineExpr> Vals;
    for (unsigned K = 0, E = WSp.size(); K != E; ++K) {
      if (WSp.kind(K) == VarKind::Param) {
        Vals.push_back(AffineExpr(S.numVars()));
        continue;
      }
      int J = S.space().indexOf("s." + WSp.name(K));
      assert(J >= 0 && "writer decomposition variable missing");
      Vals.push_back(S.varExpr(static_cast<unsigned>(J)));
    }
    WriterComp->addConstraints(S, Vals, CS.PsVars);
  } else {
    assert(InitialData && "bottom context needs an initial data layout");
    const Space &DSp = InitialData->sourceSpace();
    std::vector<AffineExpr> Vals;
    unsigned DataPos = 0;
    for (unsigned K = 0, E = DSp.size(); K != E; ++K) {
      if (DSp.kind(K) == VarKind::Param) {
        Vals.push_back(AffineExpr(S.numVars()));
        continue;
      }
      assert(DataPos < CS.ElVars.size() && "array arity mismatch");
      Vals.push_back(S.varExpr(CS.ElVars[DataPos++]));
    }
    InitialData->addConstraints(S, Vals, CS.PsVars);
    // Replicated grid dimensions: every coordinate owns a copy; pick the
    // receiver's own coordinate as the canonical sender (it is nearest,
    // and the ps != pr expansion then removes the transfer entirely).
    for (unsigned D = 0; D != GridDims; ++D)
      if (InitialData->dim(D).Replicated)
        S.addEq(S.varExpr(CS.PsVars[D]), S.varExpr(CS.PrVars[D]));
  }

  CS.Sys = std::move(S);
  return CS;
}

} // namespace

std::vector<CommSet> dmcc::buildCommSets(
    const Program &P, const LastWriteTree &T, const LWTContext &Ctx,
    const Decomposition &ReaderComp, const Decomposition *WriterComp,
    const Decomposition *InitialData, unsigned GridDims,
    bool DropAlreadyOwned) {
  PhaseTimer Timer("comm.commsets");
  CommSet Base = buildBase(P, T, Ctx, ReaderComp, WriterComp, InitialData,
                           GridDims);

  // Expand ps != pr into disjoint disjuncts: the first differing grid
  // dimension is either strictly below or strictly above.
  std::vector<CommSet> Out;
  for (unsigned D = 0; D != GridDims; ++D) {
    for (int Side = 0; Side != 2; ++Side) {
      CommSet CS = Base;
      System &S = CS.Sys;
      for (unsigned E = 0; E != D; ++E)
        S.addEq(S.varExpr(CS.PsVars[E]), S.varExpr(CS.PrVars[E]));
      AffineExpr Diff =
          S.varExpr(CS.PrVars[D]) - S.varExpr(CS.PsVars[D]);
      if (Side == 0)
        S.addGE(Diff.plusConst(-1)); // ps < pr
      else
        S.addGE(Diff.negated().plusConst(-1)); // ps > pr
      if (!S.normalize() ||
          S.checkIntegerFeasible(feasBudget()) == Feasibility::Empty)
        continue;
      Out.push_back(std::move(CS));
    }
  }

  // Section 6.1.3: if the receiver already owns a copy of the element
  // under the initial layout, the transfer is redundant.
  if (Ctx.HasWriter || !DropAlreadyOwned || !InitialData)
    return Out;
  std::vector<CommSet> Thinned;
  for (CommSet &CS : Out) {
    // Build the "receiver owns el" ownership system and subtract it.
    System Own(CS.Sys.space());
    const Space &DSp = InitialData->sourceSpace();
    std::vector<AffineExpr> Vals;
    unsigned DataPos = 0;
    for (unsigned K = 0, E = DSp.size(); K != E; ++K) {
      if (DSp.kind(K) == VarKind::Param) {
        Vals.push_back(AffineExpr(Own.numVars()));
        continue;
      }
      Vals.push_back(Own.varExpr(CS.ElVars[DataPos++]));
    }
    InitialData->addConstraints(Own, Vals, CS.PrVars);
    // CS.Sys \ Own: negate each ownership constraint in turn.
    System Prefix = CS.Sys;
    for (const Constraint &C : Own.constraints()) {
      assert(!C.isEquality() && "ownership constraints are inequalities");
      CommSet Piece = CS;
      Piece.Sys = Prefix;
      Piece.Sys.addGE(C.Expr.negated().plusConst(-1));
      if (Piece.Sys.normalize() &&
          Piece.Sys.checkIntegerFeasible(feasBudget()) != Feasibility::Empty)
        Thinned.push_back(std::move(Piece));
      Prefix.addGE(C.Expr);
    }
    if (Own.constraints().empty())
      Thinned.push_back(std::move(CS));
  }
  return Thinned;
}

std::vector<CommSet> dmcc::buildFinalizationSets(
    const Program &P, const LastWriteTree &ArrayT, const LWTContext &Ctx,
    const Decomposition *WriterComp, const Decomposition *InitialData,
    const Decomposition &FinalData, unsigned GridDims) {
  PhaseTimer Timer("comm.finalize");
  CommSet Base;
  Base.FromInitialData = !Ctx.HasWriter;
  Base.WriteStmtId = Ctx.HasWriter ? Ctx.WriteStmtId : 0;
  Base.ReadStmtId = 0;
  Base.Level = BottomLevel;

  Space Sp;
  for (unsigned D = 0; D != GridDims; ++D)
    Base.PsVars.push_back(Sp.add("ps" + std::to_string(D), VarKind::Proc));
  std::vector<std::string> WriterLoopNames;
  if (Ctx.HasWriter) {
    const Statement &W = P.statement(Ctx.WriteStmtId);
    for (unsigned L : W.Loops) {
      std::string N = "s." + P.space().name(P.loop(L).VarIndex);
      WriterLoopNames.push_back(N);
      Base.SVars.push_back(Sp.add(N, VarKind::Loop));
    }
  }
  for (unsigned D = 0; D != GridDims; ++D)
    Base.PrVars.push_back(Sp.add("pr" + std::to_string(D), VarKind::Proc));
  unsigned ElemDims = ArrayT.AnchorSpace.indicesOfKind(VarKind::Data).size();
  for (unsigned K = 0; K != ElemDims; ++K)
    Base.ElVars.push_back(Sp.add("el" + std::to_string(K), VarKind::Data));
  for (unsigned I = 0, E = P.space().size(); I != E; ++I)
    if (P.space().kind(I) == VarKind::Param)
      Sp.add(P.space().name(I), VarKind::Param);

  System S(std::move(Sp));
  // The context domain, with the array anchor variables a<k> -> el<k>.
  const Space &ASp = Ctx.Domain.space();
  std::map<std::string, std::string> NameMap;
  for (unsigned I = 0, E = ASp.size(); I != E; ++I) {
    const std::string &N = ASp.name(I);
    if (ASp.kind(I) == VarKind::Aux) {
      std::string Fresh = S.space().freshName(N);
      S.addVar(Fresh, VarKind::Aux);
      NameMap[N] = Fresh;
    } else if (ASp.kind(I) == VarKind::Data) {
      NameMap[N] = "el" + N.substr(1); // a<k> -> el<k>
    } else {
      NameMap[N] = N;
    }
  }
  auto MapName = [&NameMap](const std::string &N) { return NameMap.at(N); };
  for (const Constraint &C : Ctx.Domain.constraints())
    S.addConstraint(
        Constraint(mapExpr(C.Expr, ASp, S.space(), MapName), C.Rel));

  if (Ctx.HasWriter) {
    assert(WriterComp && "writer context needs a writer decomposition");
    for (unsigned K = 0, E = WriterLoopNames.size(); K != E; ++K) {
      AffineExpr V = mapExpr(Ctx.WriteInstance[K], ASp, S.space(), MapName);
      unsigned SV =
          static_cast<unsigned>(S.space().indexOf(WriterLoopNames[K]));
      S.addEq(S.varExpr(SV), V);
    }
    const Space &WSp = WriterComp->sourceSpace();
    std::vector<AffineExpr> Vals;
    for (unsigned K = 0, E = WSp.size(); K != E; ++K) {
      if (WSp.kind(K) == VarKind::Param) {
        Vals.push_back(AffineExpr(S.numVars()));
        continue;
      }
      int J = S.space().indexOf("s." + WSp.name(K));
      assert(J >= 0 && "writer decomposition variable missing");
      Vals.push_back(S.varExpr(static_cast<unsigned>(J)));
    }
    WriterComp->addConstraints(S, Vals, Base.PsVars);
  } else {
    assert(InitialData && "bottom context needs the initial layout");
    const Space &DSp = InitialData->sourceSpace();
    std::vector<AffineExpr> Vals;
    unsigned DataPos = 0;
    for (unsigned K = 0, E = DSp.size(); K != E; ++K) {
      if (DSp.kind(K) == VarKind::Param) {
        Vals.push_back(AffineExpr(S.numVars()));
        continue;
      }
      Vals.push_back(S.varExpr(Base.ElVars[DataPos++]));
    }
    InitialData->addConstraints(S, Vals, Base.PsVars);
    for (unsigned D = 0; D != GridDims; ++D)
      if (InitialData->dim(D).Replicated)
        S.addEq(S.varExpr(Base.PsVars[D]), S.varExpr(Base.PrVars[D]));
  }

  // Final owners of the element.
  {
    const Space &FSp = FinalData.sourceSpace();
    std::vector<AffineExpr> Vals;
    unsigned DataPos = 0;
    for (unsigned K = 0, E = FSp.size(); K != E; ++K) {
      if (FSp.kind(K) == VarKind::Param) {
        Vals.push_back(AffineExpr(S.numVars()));
        continue;
      }
      Vals.push_back(S.varExpr(Base.ElVars[DataPos++]));
    }
    for (unsigned D = 0; D != GridDims; ++D)
      assert(!FinalData.dim(D).Replicated &&
             "replicated final layouts are not supported");
    FinalData.addConstraints(S, Vals, Base.PrVars);
  }
  Base.Sys = std::move(S);

  std::vector<CommSet> Out;
  for (unsigned D = 0; D != GridDims; ++D) {
    for (int Side = 0; Side != 2; ++Side) {
      CommSet CS = Base;
      System &Sys = CS.Sys;
      for (unsigned E = 0; E != D; ++E)
        Sys.addEq(Sys.varExpr(CS.PsVars[E]), Sys.varExpr(CS.PrVars[E]));
      AffineExpr Diff =
          Sys.varExpr(CS.PrVars[D]) - Sys.varExpr(CS.PsVars[D]);
      if (Side == 0)
        Sys.addGE(Diff.plusConst(-1));
      else
        Sys.addGE(Diff.negated().plusConst(-1));
      if (!Sys.normalize() ||
          Sys.checkIntegerFeasible(feasBudget()) == Feasibility::Empty)
        continue;
      Out.push_back(std::move(CS));
    }
  }
  return Out;
}

std::vector<CommSet> dmcc::eliminateSelfReuse(const CommSet &CS) {
  if (CS.RVars.empty())
    return {CS};
  LexResult LR = lexMin(CS.Sys, CS.RVars);
  std::vector<CommSet> Out;
  for (const LexPiece &Piece : LR.Pieces) {
    CommSet NC = CS;
    // The piece context lives over the space without the r variables;
    // re-introduce them pinned to the lexmin values.
    System S = Piece.Context;
    std::vector<unsigned> NewR;
    for (unsigned K = 0, E = CS.RVars.size(); K != E; ++K) {
      const std::string &Name = CS.Sys.space().name(CS.RVars[K]);
      unsigned V = S.addVar(Name, VarKind::Loop);
      NewR.push_back(V);
    }
    for (unsigned K = 0, E = CS.RVars.size(); K != E; ++K) {
      AffineExpr Val = Piece.Values[K];
      for (unsigned A = 0; A != NewR.size(); ++A) {
        (void)A;
        Val.appendVar();
      }
      S.addEq(S.varExpr(NewR[K]), Val);
    }
    // Recompute cached indices (positions may have shifted).
    auto Reindex = [&S, &CS](const std::vector<unsigned> &Old) {
      std::vector<unsigned> New;
      for (unsigned V : Old) {
        int J = S.space().indexOf(CS.Sys.space().name(V));
        assert(J >= 0 && "variable lost during self-reuse elimination");
        New.push_back(static_cast<unsigned>(J));
      }
      return New;
    };
    NC.PsVars = Reindex(CS.PsVars);
    NC.SVars = Reindex(CS.SVars);
    NC.PrVars = Reindex(CS.PrVars);
    NC.RVars = Reindex(CS.RVars);
    NC.ElVars = Reindex(CS.ElVars);
    NC.Sys = std::move(S);
    if (NC.Sys.normalize() &&
        NC.Sys.checkIntegerFeasible(feasBudget()) != Feasibility::Empty)
      Out.push_back(std::move(NC));
  }
  return Out;
}

void dmcc::eliminateGroupReuse(std::vector<CommSet> &Sets) {
  // For each "authoritative" set A (lowest read slot first), subtract its
  // delivered values from the sets of later read slots of the same
  // statement. The delivery-batch prefix (the first Level-1 reader
  // loops) is kept in the projection so a value only counts as already
  // delivered within the same batch.
  std::stable_sort(Sets.begin(), Sets.end(),
                   [](const CommSet &A, const CommSet &B) {
                     return A.ReadIdx < B.ReadIdx;
                   });
  for (unsigned I = 0; I < Sets.size(); ++I) {
    const CommSet &A = Sets[I];
    if (A.Level == BottomLevel && !A.FromInitialData)
      continue;
    // Project A onto (ps, s, pr, el, r-prefix).
    unsigned Prefix = A.Level > 0 ? A.Level - 1 : 0;
    bool Exact = true;
    System Proj = A.Sys;
    for (unsigned K = Prefix; K < A.RVars.size(); ++K)
      if (Proj.involves(A.RVars[K]))
        Proj = Proj.fmEliminated(A.RVars[K], &Exact);
    Proj = eliminateAuxVars(Proj, &Exact);
    if (!Exact)
      continue;
    Proj.normalize();
    Proj.removeRedundant();

    std::vector<CommSet> Next(Sets.begin(), Sets.begin() + I + 1);
    for (unsigned J = I + 1; J < Sets.size(); ++J) {
      CommSet &B = Sets[J];
      bool SameGroup =
          B.ReadStmtId == A.ReadStmtId && B.ReadIdx != A.ReadIdx &&
          B.ArrayId == A.ArrayId &&
          B.FromInitialData == A.FromInitialData &&
          (B.FromInitialData || B.WriteStmtId == A.WriteStmtId) &&
          B.Level == A.Level;
      if (!SameGroup) {
        Next.push_back(std::move(B));
        continue;
      }
      // B \ Proj: negate each projected constraint in turn. Variables
      // match by name (canonical naming across sets of one statement).
      System PrefixSys = B.Sys;
      bool Mapped = true;
      std::vector<AffineExpr> Mappable;
      for (const Constraint &C : Proj.constraints()) {
        // All of Proj's variables must exist in B's space.
        bool Ok = true;
        for (unsigned V = 0; V != Proj.space().size(); ++V)
          if (C.Expr.involves(V) &&
              !B.Sys.space().contains(Proj.space().name(V)))
            Ok = false;
        if (!Ok) {
          Mapped = false;
          break;
        }
      }
      if (!Mapped) {
        Next.push_back(std::move(B));
        continue;
      }
      for (const Constraint &C : Proj.constraints()) {
        AffineExpr E = mapExpr(C.Expr, Proj.space(), PrefixSys.space());
        if (C.isEquality()) {
          CommSet PieceLt = B;
          PieceLt.Sys = PrefixSys;
          PieceLt.Sys.addGE(E.negated().plusConst(-1));
          if (PieceLt.Sys.normalize() &&
              PieceLt.Sys.checkIntegerFeasible(feasBudget()) !=
                  Feasibility::Empty)
            Next.push_back(std::move(PieceLt));
          CommSet PieceGt = B;
          PieceGt.Sys = PrefixSys;
          PieceGt.Sys.addGE(E.plusConst(-1));
          if (PieceGt.Sys.normalize() &&
              PieceGt.Sys.checkIntegerFeasible(feasBudget()) !=
                  Feasibility::Empty)
            Next.push_back(std::move(PieceGt));
          PrefixSys.addEQ(std::move(E));
        } else {
          CommSet Piece = B;
          Piece.Sys = PrefixSys;
          Piece.Sys.addGE(E.negated().plusConst(-1));
          if (Piece.Sys.normalize() &&
              Piece.Sys.checkIntegerFeasible(feasBudget()) !=
                  Feasibility::Empty)
            Next.push_back(std::move(Piece));
          PrefixSys.addGE(std::move(E));
        }
      }
    }
    Sets = std::move(Next);
  }
}

void dmcc::coalesceCommSets(std::vector<CommSet> &Sets) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0; I < Sets.size() && !Changed; ++I) {
      for (unsigned J = I + 1; J < Sets.size(); ++J) {
        CommSet &A = Sets[I];
        CommSet &B = Sets[J];
        if (A.ArrayId != B.ArrayId ||
            A.FromInitialData != B.FromInitialData ||
            A.WriteStmtId != B.WriteStmtId ||
            A.ReadStmtId != B.ReadStmtId || A.ReadIdx != B.ReadIdx ||
            A.Level != B.Level || A.PsVars != B.PsVars ||
            A.SVars != B.SVars || A.PrVars != B.PrVars ||
            A.RVars != B.RVars || A.ElVars != B.ElVars)
          continue;
        auto U = coalesceSystems(A.Sys, B.Sys);
        if (!U)
          continue;
        A.Sys = std::move(*U);
        Sets.erase(Sets.begin() + J);
        Changed = true;
        break;
      }
    }
  }
}

bool dmcc::detectMulticast(CommSet &CS) {
  // Eliminate iteration variables; if no remaining constraint couples an
  // element variable with a receiver coordinate, the message content is
  // receiver-independent and can be multicast.
  System S = CS.Sys;
  for (unsigned V : CS.RVars)
    if (S.involves(V))
      S = S.fmEliminated(V);
  for (unsigned V : CS.SVars)
    if (S.involves(V))
      S = S.fmEliminated(V);
  auto InGroup = [](const std::vector<unsigned> &G, unsigned V) {
    for (unsigned X : G)
      if (X == V)
        return true;
    return false;
  };
  for (const Constraint &C : S.constraints()) {
    bool HasEl = false, HasPr = false;
    for (unsigned V = 0; V != S.numVars(); ++V) {
      if (!C.Expr.involves(V))
        continue;
      if (InGroup(CS.ElVars, V))
        HasEl = true;
      if (InGroup(CS.PrVars, V))
        HasPr = true;
    }
    if (HasEl && HasPr) {
      CS.Multicast = false;
      return false;
    }
  }
  CS.Multicast = true;
  return true;
}

uint64_t dmcc::countDistinct(
    const CommSet &CS, const std::vector<std::vector<unsigned>> &Groups,
    const std::map<std::string, IntT> &ParamValues, unsigned Budget) {
  System S = CS.Sys;
  for (unsigned I = 0, E = S.space().size(); I != E; ++I) {
    if (S.space().kind(I) != VarKind::Param)
      continue;
    auto It = ParamValues.find(S.space().name(I));
    if (It == ParamValues.end())
      fatalError("countDistinct: missing parameter value");
    S.addEQ(S.varExpr(I).plusConst(-It->second));
  }
  std::set<std::vector<IntT>> Tuples;
  S.enumeratePoints(
      [&](const std::vector<IntT> &Pt) {
        std::vector<IntT> Key;
        for (const std::vector<unsigned> &G : Groups)
          for (unsigned V : G)
            Key.push_back(Pt[V]);
        Tuples.insert(std::move(Key));
      },
      Budget);
  return Tuples.size();
}

std::string CommSet::str() const {
  std::string S = "comm set for S" + std::to_string(ReadStmtId) + " read #" +
                  std::to_string(ReadIdx) + " of array " +
                  std::to_string(ArrayId);
  S += FromInitialData
           ? " (from initial data)"
           : " (produced by S" + std::to_string(WriteStmtId) + ")";
  S += ", level " + std::to_string(Level);
  if (Multicast)
    S += ", multicast";
  S += ":\n" + Sys.str();
  return S;
}
