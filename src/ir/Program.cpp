//===- ir/Program.cpp -----------------------------------------*- C++ -*-===//

#include "ir/Program.h"

using namespace dmcc;

unsigned Program::addParam(const std::string &Name) {
  return growSpace(Name, VarKind::Param);
}

unsigned Program::addArray(const std::string &Name,
                           std::vector<AffineExpr> DimSizes) {
#ifndef NDEBUG
  for (const AffineExpr &D : DimSizes)
    assert(D.size() == Sp.size() && "dimension size over a different space");
#endif
  Arrays.push_back(ArrayDecl{Name, std::move(DimSizes)});
  return Arrays.size() - 1;
}

unsigned Program::growSpace(const std::string &Name, VarKind Kind) {
  unsigned I = Sp.add(Name, Kind);
  for (ArrayDecl &A : Arrays)
    for (AffineExpr &D : A.DimSizes)
      D.appendVar();
  for (Loop &L : Loops) {
    for (AffineExpr &E : L.Lower)
      E.appendVar();
    for (AffineExpr &E : L.Upper)
      E.appendVar();
  }
  for (Statement &S : Stmts) {
    for (AffineExpr &E : S.Write.Indices)
      E.appendVar();
    for (Access &A : S.Reads)
      for (AffineExpr &E : A.Indices)
        E.appendVar();
    for (RVal &R : S.RPool)
      if (R.K == RVal::Kind::AffineVal)
        R.Aff.appendVar();
  }
  return I;
}

void Program::appendChild(int ParentLoop, Node N) {
  if (ParentLoop < 0) {
    Top.push_back(N);
    return;
  }
  assert(static_cast<unsigned>(ParentLoop) < Loops.size() &&
         "parent loop out of range");
  LoopChildren[ParentLoop].push_back(N);
}

unsigned Program::addLoop(const std::string &IndexName, int ParentLoop) {
  unsigned VarIdx = growSpace(IndexName, VarKind::Loop);
  Loop L;
  L.Id = Loops.size();
  L.VarIndex = VarIdx;
  L.ParentLoop = ParentLoop;
  appendChild(ParentLoop, Node{Node::Kind::Loop, L.Id});
  Loops.push_back(std::move(L));
  LoopChildren.emplace_back();
  return Loops.size() - 1;
}

unsigned Program::addStatement(int ParentLoop) {
  Statement S;
  S.Id = Stmts.size();
  // Enclosing loops, outermost first.
  std::vector<unsigned> Rev;
  for (int L = ParentLoop; L >= 0; L = Loops[L].ParentLoop)
    Rev.push_back(static_cast<unsigned>(L));
  S.Loops.assign(Rev.rbegin(), Rev.rend());
  // Textual path: child index at each tree level down to this statement.
  std::vector<unsigned> Path;
  for (unsigned L : S.Loops) {
    const std::vector<Node> &Siblings =
        Loops[L].ParentLoop < 0 ? Top : LoopChildren[Loops[L].ParentLoop];
    for (unsigned C = 0, E = Siblings.size(); C != E; ++C)
      if (Siblings[C].K == Node::Kind::Loop && Siblings[C].Index == L) {
        Path.push_back(C);
        break;
      }
  }
  Path.push_back(ParentLoop < 0 ? Top.size() : LoopChildren[ParentLoop].size());
  S.Path = std::move(Path);
  appendChild(ParentLoop, Node{Node::Kind::Stmt, S.Id});
  Stmts.push_back(std::move(S));
  return Stmts.size() - 1;
}

int Program::arrayIdOf(const std::string &Name) const {
  for (unsigned I = 0, E = Arrays.size(); I != E; ++I)
    if (Arrays[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

System Program::domainOf(unsigned StmtId) const {
  const Statement &S = Stmts[StmtId];
  Space DSp;
  for (unsigned L : S.Loops)
    DSp.add(Sp.name(Loops[L].VarIndex), VarKind::Loop);
  for (unsigned I = 0, E = Sp.size(); I != E; ++I)
    if (Sp.kind(I) == VarKind::Param)
      DSp.add(Sp.name(I), VarKind::Param);
  System D(std::move(DSp));
  for (unsigned L : S.Loops) {
    unsigned VI = static_cast<unsigned>(
        D.space().indexOf(Sp.name(Loops[L].VarIndex)));
    for (const AffineExpr &Lo : Loops[L].Lower)
      D.addGE(D.varExpr(VI) - mapExpr(Lo, Sp, D.space()));
    for (const AffineExpr &Hi : Loops[L].Upper)
      D.addGE(mapExpr(Hi, Sp, D.space()) - D.varExpr(VI));
  }
  return D;
}

unsigned Program::commonLoopDepth(unsigned A, unsigned B) const {
  const Statement &SA = Stmts[A], &SB = Stmts[B];
  unsigned D = 0;
  while (D < SA.Loops.size() && D < SB.Loops.size() &&
         SA.Loops[D] == SB.Loops[D])
    ++D;
  return D;
}

bool Program::precedesTextually(unsigned A, unsigned B) const {
  assert(A != B && "textual order of a statement with itself");
  return Stmts[A].Path < Stmts[B].Path;
}

std::string dmcc::accessStr(const Program &P, const Access &A) {
  std::string S = P.array(A.ArrayId).Name;
  for (const AffineExpr &I : A.Indices)
    S += "[" + I.str(P.space()) + "]";
  return S;
}

std::string dmcc::rvalStr(const Program &P, const Statement &S, int NodeId) {
  if (NodeId < 0)
    return "?";
  const RVal &R = S.RPool[NodeId];
  switch (R.K) {
  case RVal::Kind::ReadRef:
    return accessStr(P, S.Reads[R.ReadIdx]);
  case RVal::Kind::ConstF: {
    std::string V = std::to_string(R.Const);
    // Trim trailing zeros for readability.
    while (V.size() > 1 && V.back() == '0')
      V.pop_back();
    if (!V.empty() && V.back() == '.')
      V.pop_back();
    return V;
  }
  case RVal::Kind::AffineVal:
    return "(" + R.Aff.str(P.space()) + ")";
  case RVal::Kind::Add:
    return "(" + rvalStr(P, S, R.Lhs) + " + " + rvalStr(P, S, R.Rhs) + ")";
  case RVal::Kind::Sub:
    return "(" + rvalStr(P, S, R.Lhs) + " - " + rvalStr(P, S, R.Rhs) + ")";
  case RVal::Kind::Mul:
    return "(" + rvalStr(P, S, R.Lhs) + " * " + rvalStr(P, S, R.Rhs) + ")";
  case RVal::Kind::Div:
    return "(" + rvalStr(P, S, R.Lhs) + " / " + rvalStr(P, S, R.Rhs) + ")";
  case RVal::Kind::Select:
    return "(" + rvalStr(P, S, R.Cond) + " >= 0 ? " +
           rvalStr(P, S, R.Lhs) + " : " + rvalStr(P, S, R.Rhs) + ")";
  }
  return "?";
}

void Program::printNode(const Node &N, unsigned Indent,
                        std::string &Out) const {
  std::string Pad(Indent * 2, ' ');
  if (N.K == Node::Kind::Loop) {
    const Loop &L = Loops[N.Index];
    Out += Pad + "for " + Sp.name(L.VarIndex) + " = ";
    if (L.Lower.size() == 1) {
      Out += L.Lower[0].str(Sp);
    } else {
      Out += "max(";
      for (unsigned I = 0; I != L.Lower.size(); ++I)
        Out += (I ? ", " : "") + L.Lower[I].str(Sp);
      Out += ")";
    }
    Out += " to ";
    if (L.Upper.size() == 1) {
      Out += L.Upper[0].str(Sp);
    } else {
      Out += "min(";
      for (unsigned I = 0; I != L.Upper.size(); ++I)
        Out += (I ? ", " : "") + L.Upper[I].str(Sp);
      Out += ")";
    }
    Out += " {\n";
    for (const Node &C : LoopChildren[N.Index])
      printNode(C, Indent + 1, Out);
    Out += Pad + "}\n";
    return;
  }
  const Statement &S = Stmts[N.Index];
  Out += Pad + accessStr(*this, S.Write) + " = " +
         rvalStr(*this, S, S.RRoot) + ";\n";
}

std::string Program::str() const {
  std::string Out;
  for (unsigned I = 0, E = Sp.size(); I != E; ++I)
    if (Sp.kind(I) == VarKind::Param)
      Out += "param " + Sp.name(I) + ";\n";
  for (const ArrayDecl &A : Arrays) {
    Out += "array " + A.Name;
    for (const AffineExpr &D : A.DimSizes)
      Out += "[" + D.str(Sp) + "]";
    Out += ";\n";
  }
  for (const Node &N : Top)
    printNode(N, 0, Out);
  return Out;
}
