//===- ir/Program.h - Affine loop-nest intermediate form -------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input domain of the paper (Section 4.1): programs made of
/// (imperfectly) nested loops whose bounds and array subscripts are affine
/// functions of outer loop indices and symbolic constants. A Program owns
/// a single variable space covering every loop index and parameter; all
/// affine expressions in the IR are relative to that space.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_IR_PROGRAM_H
#define DMCC_IR_PROGRAM_H

#include "math/System.h"

#include <string>
#include <vector>

namespace dmcc {

/// An array declaration; dimension sizes are affine in the parameters.
/// The index set of dimension k is 0 .. DimSizes[k]-1.
struct ArrayDecl {
  std::string Name;
  std::vector<AffineExpr> DimSizes; ///< over the program space
};

/// One subscripted reference A[f1(i)]...[fm(i)].
struct Access {
  unsigned ArrayId = 0;
  std::vector<AffineExpr> Indices; ///< over the program space
};

/// A node of a statement's right-hand-side expression tree (stored in a
/// pool inside the Statement so statements stay copyable).
struct RVal {
  enum class Kind {
    ReadRef,   ///< value of Reads[ReadIdx]
    ConstF,    ///< floating constant
    AffineVal, ///< the value of an affine expression of loop indices
    Add,
    Sub,
    Mul,
    Div,
    Select,    ///< Cond >= 0 ? Lhs : Rhs (if-conversion, Section 4.1)
  };
  Kind K = Kind::ConstF;
  double Const = 0;
  unsigned ReadIdx = 0;
  AffineExpr Aff;
  int Lhs = -1, Rhs = -1; ///< pool indices for binary nodes
  int Cond = -1;          ///< pool index of a Select's condition
};

/// A single assignment statement.
struct Statement {
  unsigned Id = 0;
  std::vector<unsigned> Loops; ///< enclosing loop ids, outermost first
  std::vector<unsigned> Path;  ///< child indices from the root (textual
                               ///< position; shares prefixes with
                               ///< statements in the same subtree)
  Access Write;
  std::vector<Access> Reads;
  std::vector<RVal> RPool;
  int RRoot = -1;

  unsigned depth() const { return Loops.size(); }
};

/// A loop with affine bounds:  max(Lower) <= index <= min(Upper).
struct Loop {
  unsigned Id = 0;
  unsigned VarIndex = 0; ///< index of the loop variable in the space
  std::vector<AffineExpr> Lower, Upper; ///< over the program space
  int ParentLoop = -1;
};

/// A child of a loop body (or of the program top level).
struct Node {
  enum class Kind { Loop, Stmt };
  Kind K = Kind::Stmt;
  unsigned Index = 0;
};

/// A whole analyzable code region.
class Program {
public:
  Program() = default;

  const Space &space() const { return Sp; }

  /// Declares a symbolic constant; returns its space index.
  unsigned addParam(const std::string &Name);

  /// Declares an array; returns its id.
  unsigned addArray(const std::string &Name,
                    std::vector<AffineExpr> DimSizes);

  /// Creates a loop nested in \p ParentLoop (-1 for top level); the loop
  /// variable is added to the space. Bounds may be filled in afterwards
  /// (they may reference the new variable's siblings/outer loops only).
  unsigned addLoop(const std::string &IndexName, int ParentLoop);

  /// Creates a statement under \p ParentLoop (-1 for top level).
  unsigned addStatement(int ParentLoop);

  Loop &loop(unsigned Id) { return Loops[Id]; }
  const Loop &loop(unsigned Id) const { return Loops[Id]; }
  Statement &statement(unsigned Id) { return Stmts[Id]; }
  const Statement &statement(unsigned Id) const { return Stmts[Id]; }
  const ArrayDecl &array(unsigned Id) const { return Arrays[Id]; }

  unsigned numLoops() const { return Loops.size(); }
  unsigned numStatements() const { return Stmts.size(); }
  unsigned numArrays() const { return Arrays.size(); }
  int arrayIdOf(const std::string &Name) const;

  const std::vector<Node> &topLevel() const { return Top; }
  const std::vector<Node> &childrenOf(unsigned LoopId) const {
    return LoopChildren[LoopId];
  }

  /// Grows every expression in the program when the space is extended.
  /// (Used internally; exposed for builders.)
  unsigned growSpace(const std::string &Name, VarKind Kind);

  /// The iteration domain of \p StmtId: a system over the statement's own
  /// loop variables (outermost first) followed by all parameters.
  System domainOf(unsigned StmtId) const;

  /// Number of loops shared by the two statements (common nest prefix).
  unsigned commonLoopDepth(unsigned A, unsigned B) const;

  /// True if statement \p A comes before statement \p B in textual order
  /// within the same iteration of their common loops.
  bool precedesTextually(unsigned A, unsigned B) const;

  /// Maps an expression over the program space into \p Target (matching
  /// variables by name, optionally transformed by \p MapName).
  AffineExpr exprTo(const AffineExpr &E, const Space &Target,
                    const std::function<std::string(const std::string &)>
                        &MapName = nullptr) const {
    return mapExpr(E, Sp, Target, MapName);
  }

  /// Pretty-prints the whole program in the mini-language syntax.
  std::string str() const;

private:
  void appendChild(int ParentLoop, Node N);
  void printNode(const Node &N, unsigned Indent, std::string &Out) const;

  Space Sp;
  std::vector<ArrayDecl> Arrays;
  std::vector<Loop> Loops;
  std::vector<Statement> Stmts;
  std::vector<Node> Top;
  std::vector<std::vector<Node>> LoopChildren;
};

/// Renders an access like "X[i][j - 1]".
std::string accessStr(const Program &P, const Access &A);

/// Renders a statement's right-hand side.
std::string rvalStr(const Program &P, const Statement &S, int Node);

} // namespace dmcc

#endif // DMCC_IR_PROGRAM_H
