//===- ir/Interp.cpp ------------------------------------------*- C++ -*-===//

#include "ir/Interp.h"

#include <algorithm>

using namespace dmcc;

double dmcc::initialArrayValue(unsigned ArrayId, IntT Flat) {
  // A fixed pseudo-random but deterministic pattern, identical for the
  // sequential interpreter and the SPMD simulator.
  uint64_t H = (uint64_t)ArrayId * 0x9E3779B97F4A7C15ull +
               (uint64_t)Flat * 0xBF58476D1CE4E5B9ull;
  H ^= H >> 31;
  H *= 0x94D049BB133111EBull;
  H ^= H >> 29;
  return 1.0 + static_cast<double>(H % 1024) / 1024.0;
}

SeqInterpreter::SeqInterpreter(
    const Program &Prog, const std::map<std::string, IntT> &ParamValues)
    : P(Prog) {
  Env.assign(P.space().size(), 0);
  for (unsigned I = 0, E = P.space().size(); I != E; ++I) {
    if (P.space().kind(I) != VarKind::Param)
      continue;
    auto It = ParamValues.find(P.space().name(I));
    if (It == ParamValues.end())
      fatalError("SeqInterpreter: missing parameter value");
    Env[I] = It->second;
  }
  for (unsigned A = 0, E = P.numArrays(); A != E; ++A) {
    IntT Size = 1;
    for (const AffineExpr &D : P.array(A).DimSizes) {
      IntT DV = D.evaluate(Env);
      if (DV < 0)
        fatalError("SeqInterpreter: negative array dimension");
      Size = mulChk(Size, DV);
    }
    DimProd.push_back(Size);
    Arrays.emplace_back();
    WriterOf.emplace_back();
  }
}

IntT SeqInterpreter::arraySize(unsigned Id) const { return DimProd[Id]; }

IntT SeqInterpreter::evalExpr(const AffineExpr &E) const {
  return E.evaluate(Env);
}

IntT SeqInterpreter::flatIndex(const Access &A, bool &InBounds) const {
  const ArrayDecl &D = P.array(A.ArrayId);
  IntT Flat = 0;
  InBounds = true;
  for (unsigned K = 0, E = A.Indices.size(); K != E; ++K) {
    IntT Dim = D.DimSizes[K].evaluate(Env);
    IntT I = A.Indices[K].evaluate(Env);
    if (I < 0 || I >= Dim)
      InBounds = false;
    Flat = addChk(mulChk(Flat, Dim), I);
  }
  return Flat;
}

double SeqInterpreter::evalRVal(const Statement &S, int NodeId) {
  assert(NodeId >= 0 && "evaluating an empty expression");
  const RVal &R = S.RPool[NodeId];
  switch (R.K) {
  case RVal::Kind::ReadRef: {
    const Access &A = S.Reads[R.ReadIdx];
    bool InBounds = true;
    IntT Flat = flatIndex(A, InBounds);
    if (!InBounds)
      fatalError("SeqInterpreter: read access out of bounds");
    std::vector<double> &Store = Arrays[A.ArrayId];
    std::vector<int> &Writers = WriterOf[A.ArrayId];
    const WriteInstance *Writer = nullptr;
    double V;
    if (Flat < static_cast<IntT>(Store.size()) && Writers[Flat] >= 0) {
      Writer = &WriteLog[Writers[Flat]];
      V = Store[Flat];
    } else {
      V = initialArrayValue(A.ArrayId, Flat);
    }
    if (OnRead) {
      std::vector<IntT> Iter;
      const Statement &St = S;
      for (unsigned L : St.Loops)
        Iter.push_back(Env[P.loop(L).VarIndex]);
      OnRead(St.Id, R.ReadIdx, Iter, Writer);
    }
    return V;
  }
  case RVal::Kind::ConstF:
    return R.Const;
  case RVal::Kind::AffineVal:
    return static_cast<double>(R.Aff.evaluate(Env));
  case RVal::Kind::Add:
    return evalRVal(S, R.Lhs) + evalRVal(S, R.Rhs);
  case RVal::Kind::Sub:
    return evalRVal(S, R.Lhs) - evalRVal(S, R.Rhs);
  case RVal::Kind::Mul:
    return evalRVal(S, R.Lhs) * evalRVal(S, R.Rhs);
  case RVal::Kind::Div:
    return evalRVal(S, R.Lhs) / evalRVal(S, R.Rhs);
  case RVal::Kind::Select:
    return evalRVal(S, R.Cond) >= 0 ? evalRVal(S, R.Lhs)
                                    : evalRVal(S, R.Rhs);
  }
  return 0;
}

void SeqInterpreter::execStatement(const Statement &S) {
  ++ExecCount;
  double V = evalRVal(S, S.RRoot);
  bool InBounds = true;
  IntT Flat = flatIndex(S.Write, InBounds);
  if (!InBounds)
    fatalError("SeqInterpreter: write access out of bounds");
  std::vector<double> &Store = Arrays[S.Write.ArrayId];
  std::vector<int> &Writers = WriterOf[S.Write.ArrayId];
  if (Flat >= static_cast<IntT>(Store.size())) {
    IntT NewSize = std::min(DimProd[S.Write.ArrayId], Flat + 1);
    IntT Old = Store.size();
    Store.resize(NewSize);
    Writers.resize(NewSize, -1);
    for (IntT K = Old; K < NewSize; ++K)
      Store[K] = initialArrayValue(S.Write.ArrayId, K);
  }
  WriteInstance W;
  W.StmtId = S.Id;
  for (unsigned L : S.Loops)
    W.Iter.push_back(Env[P.loop(L).VarIndex]);
  WriteLog.push_back(std::move(W));
  Writers[Flat] = static_cast<int>(WriteLog.size() - 1);
  Store[Flat] = V;
}

void SeqInterpreter::execLoop(const Loop &L) {
  IntT Lo = 0, Hi = -1;
  bool First = true;
  for (const AffineExpr &E : L.Lower) {
    IntT V = E.evaluate(Env);
    Lo = First ? V : std::max(Lo, V);
    First = false;
  }
  if (First)
    fatalError("SeqInterpreter: loop without a lower bound");
  First = true;
  for (const AffineExpr &E : L.Upper) {
    IntT V = E.evaluate(Env);
    Hi = First ? V : std::min(Hi, V);
    First = false;
  }
  if (First)
    fatalError("SeqInterpreter: loop without an upper bound");
  for (IntT I = Lo; I <= Hi; ++I) {
    Env[L.VarIndex] = I;
    execNodes(P.childrenOf(L.Id));
  }
}

void SeqInterpreter::execNodes(const std::vector<Node> &Nodes) {
  for (const Node &N : Nodes) {
    if (N.K == Node::Kind::Loop)
      execLoop(P.loop(N.Index));
    else
      execStatement(P.statement(N.Index));
  }
}

void SeqInterpreter::run() { execNodes(P.topLevel()); }

double SeqInterpreter::arrayValue(unsigned Id,
                                  const std::vector<IntT> &Idx) const {
  const ArrayDecl &D = P.array(Id);
  assert(Idx.size() == D.DimSizes.size() && "wrong arity");
  IntT Flat = 0;
  for (unsigned K = 0, E = Idx.size(); K != E; ++K) {
    IntT Dim = D.DimSizes[K].evaluate(Env);
    assert(Idx[K] >= 0 && Idx[K] < Dim && "index out of bounds");
    Flat = addChk(mulChk(Flat, Dim), Idx[K]);
  }
  if (Flat < static_cast<IntT>(Arrays[Id].size()))
    return Arrays[Id][Flat];
  return initialArrayValue(Id, Flat);
}

std::vector<double> SeqInterpreter::arrayContents(unsigned Id) const {
  std::vector<double> Out(DimProd[Id]);
  for (IntT K = 0; K < DimProd[Id]; ++K)
    Out[K] = K < static_cast<IntT>(Arrays[Id].size())
                 ? Arrays[Id][K]
                 : initialArrayValue(Id, K);
  return Out;
}

const WriteInstance *SeqInterpreter::lastWriter(
    unsigned Id, const std::vector<IntT> &Idx) const {
  const ArrayDecl &D = P.array(Id);
  IntT Flat = 0;
  for (unsigned K = 0, E = Idx.size(); K != E; ++K)
    Flat = addChk(mulChk(Flat, D.DimSizes[K].evaluate(Env)), Idx[K]);
  if (Flat >= static_cast<IntT>(WriterOf[Id].size()) ||
      WriterOf[Id][Flat] < 0)
    return nullptr;
  return &WriteLog[WriterOf[Id][Flat]];
}
