//===- ir/Interp.h - Sequential reference interpreter ----------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a Program sequentially with concrete parameter values. This is
/// the golden model: the SPMD code produced by the code generator must
/// compute bitwise-identical arrays, and the instrumentation hooks record
/// the actual last-write instance of every read so Last Write Trees can be
/// property-tested against reality.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_IR_INTERP_H
#define DMCC_IR_INTERP_H

#include "ir/Program.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dmcc {

/// Identifies one dynamic write instance.
struct WriteInstance {
  unsigned StmtId = 0;
  std::vector<IntT> Iter; ///< values of the statement's loop indices
  bool operator==(const WriteInstance &O) const = default;
};

/// Deterministic initial value of array \p ArrayId at flat offset
/// \p Flat; used for data that the program reads but never wrote.
double initialArrayValue(unsigned ArrayId, IntT Flat);

/// Sequential executor with last-writer instrumentation.
class SeqInterpreter {
public:
  /// Called for every dynamic read: statement, read slot, the reading
  /// iteration, and the instance that last wrote the value (nullptr if the
  /// value is the initial array content).
  using ReadCallback = std::function<void(
      unsigned StmtId, unsigned ReadIdx, const std::vector<IntT> &Iter,
      const WriteInstance *Writer)>;

  SeqInterpreter(const Program &P,
                 const std::map<std::string, IntT> &ParamValues);

  void setReadCallback(ReadCallback CB) { OnRead = std::move(CB); }

  /// Runs the whole program.
  void run();

  /// Flat row-major size of array \p Id under the bound parameters.
  IntT arraySize(unsigned Id) const;

  /// Value of array \p Id at the (bounds-checked) indices.
  double arrayValue(unsigned Id, const std::vector<IntT> &Idx) const;

  /// The full contents of array \p Id (initials filled in).
  std::vector<double> arrayContents(unsigned Id) const;

  /// Who last wrote the given element, if anyone.
  const WriteInstance *lastWriter(unsigned Id,
                                  const std::vector<IntT> &Idx) const;

  /// Total number of dynamic statement executions.
  uint64_t executedStatements() const { return ExecCount; }

private:
  void execNodes(const std::vector<Node> &Nodes);
  void execLoop(const Loop &L);
  void execStatement(const Statement &S);
  double evalRVal(const Statement &S, int NodeId);
  IntT flatIndex(const Access &A, bool &InBounds) const;
  IntT evalExpr(const AffineExpr &E) const;

  const Program &P;
  std::vector<IntT> Env;        ///< value per program-space variable
  std::vector<std::vector<double>> Arrays;
  std::vector<std::vector<int>> WriterOf; ///< index into WriteLog, or -1
  std::vector<WriteInstance> WriteLog;
  std::vector<IntT> DimProd;    ///< per-array flat sizes
  ReadCallback OnRead;
  uint64_t ExecCount = 0;
};

} // namespace dmcc

#endif // DMCC_IR_INTERP_H
