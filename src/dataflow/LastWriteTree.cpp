//===- dataflow/LastWriteTree.cpp -----------------------------*- C++ -*-===//

#include "dataflow/LastWriteTree.h"

#include "math/LexOpt.h"

#include <algorithm>
#include <map>

using namespace dmcc;

namespace {

/// Prefix used for the write-instance copy of loop variables while setting
/// up the lexmax query.
std::string writeCopyName(const std::string &LoopVar) {
  return "w." + LoopVar;
}

/// Node budget for the emptiness probes of last-write resolution.
unsigned feasBudget() { return projectionOptions().FeasibilityBudget; }

/// One candidate "this write instance produced the value" piece.
struct Candidate {
  System Context; ///< over anchor space + aux witnesses
  unsigned StmtId = 0;
  std::vector<AffineExpr> Iw; ///< over Context space
  DepLevel Level = BottomLevel;
};

/// Builds Last Write Trees; see the header for the strategy.
class LWTBuilder {
public:
  LWTBuilder(const Program &P, const System &ReadDomain, unsigned ArrayId,
             std::vector<AffineExpr> ReadIndices, const Statement *Reader)
      : P(P), ReadDomain(ReadDomain), ArrayId(ArrayId),
        ReadIndices(std::move(ReadIndices)), Reader(Reader) {}

  LastWriteTree run() {
    Result.AnchorSpace = ReadDomain.space();
    if (Reader) {
      Result.ReadStmtId = Reader->Id;
    }

    // Gather candidate pieces for every writer statement and level.
    std::vector<std::vector<Candidate>> Lists;
    for (unsigned W = 0, E = P.numStatements(); W != E; ++W) {
      const Statement &WS = P.statement(W);
      if (WS.Write.ArrayId != ArrayId)
        continue;
      if (!Reader) {
        auto L = candidatesFor(WS, /*Level=*/1, /*LoopIndep=*/false,
                               /*SharedPrefix=*/0);
        if (!L.empty())
          Lists.push_back(std::move(L));
        continue;
      }
      unsigned C = P.commonLoopDepth(W, Reader->Id);
      for (unsigned L = 1; L <= C; ++L) {
        auto Cs = candidatesFor(WS, L, /*LoopIndep=*/false,
                                /*SharedPrefix=*/L - 1);
        if (!Cs.empty())
          Lists.push_back(std::move(Cs));
      }
      if (W != Reader->Id && P.precedesTextually(W, Reader->Id)) {
        auto Cs = candidatesFor(WS, C + 1, /*LoopIndep=*/true,
                                /*SharedPrefix=*/C);
        if (!Cs.empty())
          Lists.push_back(std::move(Cs));
      }
    }

    // Merge everything: the comparator compares actual execution times, so
    // level priorities fall out of the value comparison.
    std::vector<Candidate> Merged;
    for (std::vector<Candidate> &L : Lists)
      Merged = Merged.empty() ? std::move(L)
                              : mergeLists(std::move(Merged), std::move(L));

    // Whatever part of the read domain no candidate covers reads values
    // from outside the region.
    Region Covered(baseOf(ReadDomain.space()));
    for (const Candidate &C : Merged)
      Covered.addPiece(C.Context);
    Region Bottom = Region::fromSystem(ReadDomain).subtract(Covered);
    if (!Bottom.isExact())
      Result.Exact = false;

    for (Candidate &C : Merged) {
      LWTContext Ctx;
      Ctx.Domain = std::move(C.Context);
      Ctx.HasWriter = true;
      Ctx.WriteStmtId = C.StmtId;
      Ctx.WriteInstance = std::move(C.Iw);
      Ctx.Level = C.Level;
      Result.Contexts.push_back(std::move(Ctx));
    }
    for (const System &B : Bottom.pieces()) {
      LWTContext Ctx;
      Ctx.Domain = B;
      Ctx.HasWriter = false;
      Ctx.Level = BottomLevel;
      Result.Contexts.push_back(std::move(Ctx));
    }
    coalesce();
    return std::move(Result);
  }

  /// Undoes case splits: merges contexts with identical payloads whose
  /// domains union to a convex set.
  void coalesce() {
    std::vector<LWTContext> &Cs = Result.Contexts;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned I = 0; I < Cs.size() && !Changed; ++I) {
        for (unsigned J = I + 1; J < Cs.size(); ++J) {
          if (Cs[I].HasWriter != Cs[J].HasWriter ||
              Cs[I].WriteStmtId != Cs[J].WriteStmtId ||
              Cs[I].Level != Cs[J].Level ||
              Cs[I].WriteInstance != Cs[J].WriteInstance)
            continue;
          auto U = coalesceSystems(Cs[I].Domain, Cs[J].Domain);
          if (!U)
            continue;
          Cs[I].Domain = std::move(*U);
          Cs.erase(Cs.begin() + J);
          Changed = true;
          break;
        }
      }
    }
  }

private:
  static Space baseOf(const Space &Sp) {
    Space B;
    for (unsigned I = 0, E = Sp.size(); I != E; ++I)
      if (Sp.kind(I) != VarKind::Aux)
        B.add(Sp.name(I), Sp.kind(I));
    return B;
  }

  /// Lexmax of the write instances of \p WS matching the read, under the
  /// level constraints: positions [0, SharedPrefix) pinned to the reader's
  /// indices and, unless LoopIndep, a strict precedence at position
  /// SharedPrefix.
  std::vector<Candidate> candidatesFor(const Statement &WS, DepLevel Level,
                                       bool LoopIndep,
                                       unsigned SharedPrefix) {
    // Space: write-instance copies first, then the anchor space.
    Space FS;
    std::vector<std::string> WNames;
    for (unsigned L : WS.Loops) {
      std::string N = writeCopyName(P.space().name(P.loop(L).VarIndex));
      WNames.push_back(N);
      FS.add(N, VarKind::Loop);
    }
    for (unsigned I = 0, E = ReadDomain.space().size(); I != E; ++I)
      FS.add(ReadDomain.space().name(I), ReadDomain.space().kind(I));

    System S(std::move(FS));
    // Writer's iteration domain, with loop vars renamed to their copies.
    System WDom = P.domainOf(WS.Id);
    auto Rename = [&WDom, &WS, this](const std::string &N) -> std::string {
      int I = WDom.space().indexOf(N);
      (void)WS;
      if (I >= 0 && WDom.space().kind(static_cast<unsigned>(I)) ==
                        VarKind::Loop)
        return writeCopyName(N);
      return N;
    };
    for (const Constraint &C : WDom.constraints())
      S.addConstraint(
          Constraint(mapExpr(C.Expr, WDom.space(), S.space(), Rename),
                     C.Rel));
    // Reader's domain (anchor variables keep their names).
    S.addAllMapped(ReadDomain);
    // Same array element: fw(iw) == fr(ir), dimension by dimension.
    auto RenameProg = [this](const std::string &N) -> std::string {
      int I = P.space().indexOf(N);
      if (I >= 0 &&
          P.space().kind(static_cast<unsigned>(I)) == VarKind::Loop)
        return writeCopyName(N);
      return N;
    };
    assert(WS.Write.Indices.size() == ReadIndices.size() &&
           "access arity mismatch");
    for (unsigned D = 0, E = ReadIndices.size(); D != E; ++D) {
      AffineExpr FW =
          mapExpr(WS.Write.Indices[D], P.space(), S.space(), RenameProg);
      AffineExpr FR = mapExpr(ReadIndices[D], ReadDomain.space(), S.space());
      S.addEq(FW, FR);
    }
    // Execution-order constraints.
    for (unsigned Pfx = 0; Pfx != SharedPrefix; ++Pfx) {
      unsigned WV = static_cast<unsigned>(S.space().indexOf(WNames[Pfx]));
      unsigned RV = static_cast<unsigned>(S.space().indexOf(
          P.space().name(P.loop(WS.Loops[Pfx]).VarIndex)));
      S.addEq(S.varExpr(WV), S.varExpr(RV));
    }
    if (!LoopIndep) {
      if (SharedPrefix < WNames.size() && Reader &&
          SharedPrefix < Reader->Loops.size()) {
        unsigned WV = static_cast<unsigned>(
            S.space().indexOf(WNames[SharedPrefix]));
        unsigned RV = static_cast<unsigned>(S.space().indexOf(
            P.space().name(P.loop(WS.Loops[SharedPrefix]).VarIndex)));
        // iw[k] <= ir[k] - 1.
        S.addGE(S.varExpr(RV).plusConst(-1) - S.varExpr(WV));
      }
    }

    std::vector<unsigned> Objs;
    for (const std::string &N : WNames)
      Objs.push_back(static_cast<unsigned>(S.space().indexOf(N)));
    LexResult LR = lexMax(S, Objs);
    if (!LR.Exact)
      Result.Exact = false;

    std::vector<Candidate> Out;
    for (LexPiece &Piece : LR.Pieces) {
      Candidate C;
      C.Context = std::move(Piece.Context);
      C.StmtId = WS.Id;
      C.Iw = std::move(Piece.Values);
      C.Level = Level;
      Out.push_back(std::move(C));
    }
    return Out;
  }

  /// Conjoins B's context into A's, renaming B's aux witnesses apart.
  /// Returns the combined system and remaps \p IwB into its space.
  System conjoin(const System &A, const System &B,
                 std::vector<AffineExpr> &IwB) {
    System Out = A;
    std::map<std::string, std::string> NameMap;
    for (unsigned I = 0, E = B.space().size(); I != E; ++I) {
      const std::string &N = B.space().name(I);
      if (B.space().kind(I) == VarKind::Aux) {
        std::string Fresh = Out.space().freshName(N);
        Out.addVar(Fresh, VarKind::Aux);
        NameMap[N] = Fresh;
      } else {
        assert(Out.space().contains(N) && "anchor variable missing");
        NameMap[N] = N;
      }
    }
    auto Map = [&NameMap](const std::string &N) { return NameMap.at(N); };
    for (const Constraint &C : B.constraints())
      Out.addConstraint(
          Constraint(mapExpr(C.Expr, B.space(), Out.space(), Map), C.Rel));
    for (AffineExpr &E : IwB)
      E = mapExpr(E, B.space(), Out.space(), Map);
    return Out;
  }

  /// Splits \p Ctx into pieces according to which of A/B executes later,
  /// comparing the write instances coordinate by coordinate over the
  /// writers' shared loops and falling back to textual order.
  void splitCompare(System Ctx, const Candidate &A,
                    const std::vector<AffineExpr> &IwA, const Candidate &B,
                    const std::vector<AffineExpr> &IwB, unsigned Pos,
                    unsigned SharedDepth, std::vector<Candidate> &Out) {
    if (Ctx.checkIntegerFeasible(feasBudget()) == Feasibility::Empty)
      return;
    if (Pos == SharedDepth) {
      // Same shared-iteration values: textual order decides. Identical
      // statements cannot genuinely tie (their contexts are disjoint per
      // level); pick A to keep the recursion total.
      bool AWins =
          A.StmtId == B.StmtId || P.precedesTextually(B.StmtId, A.StmtId);
      Candidate C;
      C.Context = std::move(Ctx);
      C.StmtId = AWins ? A.StmtId : B.StmtId;
      C.Iw = AWins ? IwA : IwB;
      C.Level = AWins ? A.Level : B.Level;
      Out.push_back(std::move(C));
      return;
    }
    AffineExpr Diff = IwA[Pos] - IwB[Pos];
    {
      System SA = Ctx;
      SA.addGE(Diff.plusConst(-1)); // A later at this position
      if (SA.normalize() &&
          SA.checkIntegerFeasible(feasBudget()) != Feasibility::Empty) {
        Candidate C;
        C.Context = std::move(SA);
        C.StmtId = A.StmtId;
        C.Iw = IwA;
        C.Level = A.Level;
        Out.push_back(std::move(C));
      }
    }
    {
      System SB = Ctx;
      SB.addGE(Diff.negated().plusConst(-1)); // B later
      if (SB.normalize() &&
          SB.checkIntegerFeasible(feasBudget()) != Feasibility::Empty) {
        Candidate C;
        C.Context = std::move(SB);
        C.StmtId = B.StmtId;
        C.Iw = IwB;
        C.Level = B.Level;
        Out.push_back(std::move(C));
      }
    }
    System SEq = std::move(Ctx);
    SEq.addEQ(std::move(Diff));
    if (SEq.normalize())
      splitCompare(std::move(SEq), A, IwA, B, IwB, Pos + 1, SharedDepth,
                   Out);
  }

  std::vector<Candidate> mergeLists(std::vector<Candidate> AL,
                                    std::vector<Candidate> BL) {
    std::vector<Candidate> Out;
    Space Base = baseOf(ReadDomain.space());

    // Overlaps, resolved by execution-time comparison.
    for (const Candidate &A : AL) {
      for (const Candidate &B : BL) {
        std::vector<AffineExpr> IwB = B.Iw;
        System Ctx = conjoin(A.Context, B.Context, IwB);
        if (!Ctx.normalize() ||
            Ctx.checkIntegerFeasible(feasBudget()) == Feasibility::Empty)
          continue;
        std::vector<AffineExpr> IwA = A.Iw;
        for (AffineExpr &E : IwA)
          E = mapExpr(E, A.Context.space(), Ctx.space());
        unsigned Shared = P.commonLoopDepth(A.StmtId, B.StmtId);
        splitCompare(std::move(Ctx), A, IwA, B, IwB, 0, Shared, Out);
      }
    }

    // A-only and B-only residues.
    auto pushResidues = [&](const std::vector<Candidate> &Keep,
                            const std::vector<Candidate> &Minus) {
      for (const Candidate &K : Keep) {
        Region R(Base);
        R.addPiece(K.Context);
        for (const Candidate &M : Minus) {
          Region MR(Base);
          MR.addPiece(M.Context);
          R = R.subtract(MR);
        }
        if (!R.isExact())
          Result.Exact = false;
        for (const System &Piece : R.pieces()) {
          // Subtraction preserves the piece's own space, so K.Iw remains
          // valid over it.
          Candidate C;
          C.Context = Piece;
          C.StmtId = K.StmtId;
          C.Iw = K.Iw;
          C.Level = K.Level;
          Out.push_back(std::move(C));
        }
      }
    };
    pushResidues(AL, BL);
    pushResidues(BL, AL);
    return Out;
  }

  const Program &P;
  System ReadDomain;
  unsigned ArrayId;
  std::vector<AffineExpr> ReadIndices;
  const Statement *Reader;
  LastWriteTree Result;
};

} // namespace

LastWriteTree dmcc::buildLWTCore(const Program &P, const System &ReadDomain,
                                 unsigned ArrayId,
                                 const std::vector<AffineExpr> &ReadIndices,
                                 const Statement *Reader) {
  PhaseTimer Timer("dataflow.lwt");
  LWTBuilder B(P, ReadDomain, ArrayId, ReadIndices, Reader);
  return B.run();
}

LastWriteTree dmcc::buildLWT(const Program &P, unsigned ReadStmt,
                             unsigned ReadIdx) {
  const Statement &S = P.statement(ReadStmt);
  assert(ReadIdx < S.Reads.size() && "read index out of range");
  const Access &A = S.Reads[ReadIdx];
  System Domain = P.domainOf(ReadStmt);
  std::vector<AffineExpr> Idx;
  for (const AffineExpr &E : A.Indices)
    Idx.push_back(mapExpr(E, P.space(), Domain.space()));
  LastWriteTree T = buildLWTCore(P, Domain, A.ArrayId, Idx, &S);
  T.ReadStmtId = ReadStmt;
  T.ReadIdx = ReadIdx;
  return T;
}

LastWriteTree dmcc::buildArrayLastWrites(const Program &P,
                                         unsigned ArrayId) {
  const ArrayDecl &A = P.array(ArrayId);
  Space Sp;
  std::vector<unsigned> AVars;
  for (unsigned D = 0, E = A.DimSizes.size(); D != E; ++D)
    AVars.push_back(Sp.add("a" + std::to_string(D), VarKind::Data));
  for (unsigned I = 0, E = P.space().size(); I != E; ++I)
    if (P.space().kind(I) == VarKind::Param)
      Sp.add(P.space().name(I), VarKind::Param);
  System Domain(std::move(Sp));
  std::vector<AffineExpr> Idx;
  for (unsigned D = 0, E = A.DimSizes.size(); D != E; ++D) {
    Domain.addGE(Domain.varExpr(AVars[D]));
    Domain.addGE(mapExpr(A.DimSizes[D], P.space(), Domain.space())
                     .plusConst(-1) -
                 Domain.varExpr(AVars[D]));
    Idx.push_back(Domain.varExpr(AVars[D]));
  }
  return buildLWTCore(P, Domain, ArrayId, Idx, nullptr);
}

unsigned LastWriteTree::numWriterContexts() const {
  unsigned N = 0;
  for (const LWTContext &C : Contexts)
    if (C.HasWriter)
      ++N;
  return N;
}

LastWriteTree::Lookup LastWriteTree::lookup(
    const std::vector<IntT> &AnchorVals) const {
  assert(AnchorVals.size() == AnchorSpace.size() &&
         "anchor point over a different space");
  Lookup Out;
  for (const LWTContext &C : Contexts) {
    System Pinned = C.Domain;
    bool Mapped = true;
    for (unsigned I = 0, E = AnchorSpace.size(); I != E; ++I) {
      int J = Pinned.space().indexOf(AnchorSpace.name(I));
      if (J < 0) {
        Mapped = false;
        break;
      }
      Pinned.addEQ(Pinned.varExpr(static_cast<unsigned>(J))
                       .plusConst(-AnchorVals[I]));
    }
    if (!Mapped)
      continue;
    auto Point = Pinned.sampleIntPoint();
    if (!Point)
      continue;
    Out.Covered = true;
    Out.HasWriter = C.HasWriter;
    if (C.HasWriter) {
      Out.WriteStmtId = C.WriteStmtId;
      for (const AffineExpr &E : C.WriteInstance)
        Out.WriteIter.push_back(E.evaluate(*Point));
    }
    return Out;
  }
  return Out;
}

std::string LastWriteTree::str(const Program &P) const {
  std::string S = "LWT for statement " + std::to_string(ReadStmtId) +
                  " read #" + std::to_string(ReadIdx) +
                  (Exact ? "" : " (approximate)") + ":\n";
  for (unsigned I = 0, E = Contexts.size(); I != E; ++I) {
    const LWTContext &C = Contexts[I];
    S += "context " + std::to_string(I) + ": ";
    if (!C.HasWriter) {
      S += "reads values defined outside (bottom)\n";
    } else {
      S += "last write by S" + std::to_string(C.WriteStmtId) + " at (";
      for (unsigned K = 0, KE = C.WriteInstance.size(); K != KE; ++K) {
        if (K)
          S += ", ";
        S += C.WriteInstance[K].str(C.Domain.space());
      }
      S += "), level " + std::to_string(C.Level) + "\n";
    }
    S += C.Domain.str();
  }
  (void)P;
  return S;
}
