//===- dataflow/LastWriteTree.h - Exact array data flow --------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Last Write Trees (Section 3.1): for every dynamic instance of a read
/// access, the exact write instance that produced the value read. The
/// "tree" is materialized as a list of disjoint leaf contexts partitioning
/// the read iteration domain (the paper's Definition 4); each context
/// either names the producing statement with an affine map from read to
/// write instance and a dependence level, or is a bottom context whose
/// values come from outside the analyzed region.
///
/// Construction processes dependence levels from the deepest (latest
/// possible writer) outwards: at each level, each candidate write
/// statement contributes the parametric lexicographic maximum of its
/// matching write instances; candidates at the same level are merged by
/// explicit case splits on which instance executes later; reads already
/// claimed by a deeper level are subtracted out.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_DATAFLOW_LASTWRITETREE_H
#define DMCC_DATAFLOW_LASTWRITETREE_H

#include "ir/Program.h"
#include "math/Region.h"

#include <string>
#include <vector>

namespace dmcc {

/// Dependence level of a context. 0 denotes a bottom context (the value is
/// not produced inside the region); k in [1, c] means the last write is
/// carried by loop k (1-based, outermost first); c+1 denotes a
/// loop-independent producer, where c is the number of loops shared by
/// writer and reader.
using DepLevel = unsigned;
constexpr DepLevel BottomLevel = 0;

/// One leaf of a Last Write Tree.
struct LWTContext {
  /// The set of read instances of this context: a system over the read
  /// anchor variables (the reader's loop indices, or the array index
  /// variables in array mode), the program parameters, and any auxiliary
  /// existential variables.
  System Domain;
  bool HasWriter = false;
  unsigned WriteStmtId = 0;
  /// The write instance (writer's loop indices, outermost first) as
  /// affine expressions over Domain's space. Empty when !HasWriter.
  std::vector<AffineExpr> WriteInstance;
  DepLevel Level = BottomLevel;
};

/// The full analysis result for one read access.
struct LastWriteTree {
  unsigned ReadStmtId = 0;
  unsigned ReadIdx = 0;
  /// Anchor space: the reader's loop variables plus parameters.
  Space AnchorSpace;
  std::vector<LWTContext> Contexts;
  /// False if some set operation was integer-inexact; clients must fall
  /// back to conservative (location-centric) handling then.
  bool Exact = true;

  /// Contexts that actually have a writer.
  unsigned numWriterContexts() const;

  /// Result of evaluating the tree at one concrete read instance.
  struct Lookup {
    bool Covered = false;   ///< some context contains the point
    bool HasWriter = false; ///< that context names a producer
    unsigned WriteStmtId = 0;
    std::vector<IntT> WriteIter;
  };

  /// Evaluates the tree at a concrete anchor point (values for
  /// AnchorSpace's variables, in order); auxiliary witnesses are searched.
  Lookup lookup(const std::vector<IntT> &AnchorVals) const;

  std::string str(const Program &P) const;
};

/// Builds the Last Write Tree for Reads[ReadIdx] of statement ReadStmt.
LastWriteTree buildLWT(const Program &P, unsigned ReadStmt,
                       unsigned ReadIdx);

/// Generalized entry point: the read is described by an explicit domain
/// (over anchor variables + params) and subscript expressions; \p Reader,
/// when non-null, supplies the execution-order constraints (the anchor
/// variables must then start with the reader's loop variables). With a
/// null reader no precedence constraint is imposed: the result is the last
/// write of each array element over the whole region (used for
/// finalization, Section 4.4.3).
LastWriteTree buildLWTCore(const Program &P, const System &ReadDomain,
                           unsigned ArrayId,
                           const std::vector<AffineExpr> &ReadIndices,
                           const Statement *Reader);

/// Last writes of whole array elements (finalization): anchor variables
/// are fresh array-index variables a0..am-1.
LastWriteTree buildArrayLastWrites(const Program &P, unsigned ArrayId);

} // namespace dmcc

#endif // DMCC_DATAFLOW_LASTWRITETREE_H
