//===- math/LexOpt.cpp ----------------------------------------*- C++ -*-===//

#include "math/LexOpt.h"

#include <algorithm>

using namespace dmcc;

namespace {

/// Recursive solver for parametric lexicographic maxima. See the header
/// for the algorithm outline.
class LexMaxSolver {
public:
  LexMaxSolver(const System &S, std::vector<unsigned> Objs)
      : Input(S), Objs(std::move(Objs)) {}

  LexResult run() {
    std::vector<AffineExpr> Solved;
    recurse(Input, std::move(Solved), 0);
    return std::move(Result);
  }

private:
  void recurse(System S, std::vector<AffineExpr> Solved, unsigned Pos) {
    if (!S.normalize())
      return;
    if (S.checkIntegerFeasible(projectionOptions().FeasibilityBudget) ==
        Feasibility::Empty)
      return;
    if (Pos == Objs.size())
      return finish(std::move(S), std::move(Solved));

    unsigned Obj = Objs[Pos];
    // Project away the less significant objectives so the bounds on Obj
    // are expressed over parameters (and already-introduced aux vars).
    System Proj = S;
    for (unsigned Q = Pos + 1, E = Objs.size(); Q != E; ++Q)
      if (Proj.involves(Objs[Q]))
        Proj = Proj.fmEliminated(Objs[Q], &Result.Exact);
    Proj.normalize();
    Proj.removeRedundant();

    std::vector<VarBound> Lower, Upper;
    Proj.boundsOf(Obj, Lower, Upper);
    if (Upper.empty())
      fatalError("lexMax: objective variable is unbounded above");

    // Deduplicate identical bounds.
    std::vector<VarBound> Uniq;
    for (VarBound &B : Upper) {
      bool Dup = false;
      for (const VarBound &U : Uniq)
        if (U.Den == B.Den && U.Num == B.Num) {
          Dup = true;
          break;
        }
      if (!Dup)
        Uniq.push_back(std::move(B));
    }
    tournament(std::move(S), std::move(Solved), Pos, std::move(Uniq));
  }

  /// Case-splits on which upper bound is the rational minimum; rational
  /// dominance implies floor dominance, so the winner's floor is the
  /// integer maximum of the objective.
  void tournament(System S, std::vector<AffineExpr> Solved, unsigned Pos,
                  std::vector<VarBound> Uppers) {
    assert(!Uppers.empty() && "tournament requires at least one bound");
    if (Uppers.size() == 1)
      return bindObjective(std::move(S), std::move(Solved), Pos,
                           Uppers[0]);

    VarBound B0 = Uppers[0];
    VarBound B1 = Uppers[1];
    // Cond >= 0  <=>  B0.Num/B0.Den <= B1.Num/B1.Den.
    AffineExpr Cond = B1.Num;
    Cond.scale(B0.Den);
    AffineExpr R = B0.Num;
    R.scale(B1.Den);
    Cond -= R;

    {
      // Branch where B0 dominates: B1 can never be the strict minimum.
      System SA = S;
      SA.addGE(Cond);
      std::vector<VarBound> UA = Uppers;
      UA.erase(UA.begin() + 1);
      if (SA.normalize() &&
          SA.checkIntegerFeasible(projectionOptions().FeasibilityBudget) !=
              Feasibility::Empty)
        tournament(std::move(SA), Solved, Pos, std::move(UA));
    }
    {
      // Branch where B1 is strictly smaller: drop B0.
      System SB = std::move(S);
      SB.addGE(Cond.negated().plusConst(-1));
      std::vector<VarBound> UB = std::move(Uppers);
      UB.erase(UB.begin());
      if (SB.normalize() &&
          SB.checkIntegerFeasible(projectionOptions().FeasibilityBudget) !=
              Feasibility::Empty)
        tournament(std::move(SB), std::move(Solved), Pos, std::move(UB));
    }
  }

  void bindObjective(System S, std::vector<AffineExpr> Solved, unsigned Pos,
                     const VarBound &Bound) {
    unsigned Obj = Objs[Pos];
    AffineExpr Num = Bound.Num;
    AffineExpr Value(S.numVars());
    if (Bound.Den == 1) {
      Value = Num;
    } else {
      // Obj = floor(Num / Den): introduce an auxiliary witness exactly as
      // the paper does for modulo constraints (Section 4.4.2).
      std::string Name = S.space().freshName("@f");
      unsigned Q = S.addVar(Name, VarKind::Aux);
      Num.appendVar();
      for (AffineExpr &V : Solved)
        V.appendVar();
      AffineExpr QE = S.varExpr(Q);
      // Den*Q <= Num <= Den*Q + Den - 1.
      AffineExpr DQ = QE;
      DQ.scale(Bound.Den);
      S.addGE(Num - DQ);
      S.addGE(DQ.plusConst(Bound.Den - 1) - Num);
      Value = QE;
    }
    assert(!Value.involves(Obj) && "objective value must not be recursive");
    S.substitute(Obj, Value);
    Solved.push_back(std::move(Value));
    recurse(std::move(S), std::move(Solved), Pos + 1);
  }

  void finish(System S, std::vector<AffineExpr> Solved) {
    // All objectives have been substituted away; drop their dimensions in
    // descending index order to keep indices stable.
    std::vector<unsigned> Sorted = Objs;
    std::sort(Sorted.rbegin(), Sorted.rend());
    for (unsigned Idx : Sorted) {
      assert(!S.involves(Idx) && "objective survived substitution");
      S.removeVar(Idx);
      for (AffineExpr &V : Solved)
        V.removeVar(Idx);
    }
    S.normalize();
    S.removeRedundant();
    Result.Pieces.push_back(LexPiece{std::move(S), std::move(Solved)});
  }

  System Input;
  std::vector<unsigned> Objs;
  LexResult Result;
};

} // namespace

LexResult dmcc::lexMax(const System &S, const std::vector<unsigned> &Objs) {
#ifndef NDEBUG
  for (unsigned O : Objs)
    assert(O < S.numVars() && "objective index out of range");
#endif
  PhaseTimer Timer("math.lexopt");
  ++projectionStats().LexMaxCalls;
  LexMaxSolver Solver(S, Objs);
  return Solver.run();
}

LexResult dmcc::lexMin(const System &S, const std::vector<unsigned> &Objs) {
  // lexmin(x) = -lexmax(-x): flip the objective columns, maximize, negate.
  System Out(S.space());
  for (const Constraint &C : S.constraints()) {
    Constraint NC = C;
    for (unsigned O : Objs)
      NC.Expr.coeff(O) = -NC.Expr.coeff(O);
    Out.addConstraint(std::move(NC));
  }
  LexResult R = lexMax(Out, Objs);
  for (LexPiece &P : R.Pieces)
    for (AffineExpr &V : P.Values)
      V = V.negated();
  return R;
}

std::optional<std::vector<IntT>> dmcc::evaluatePiecewise(
    const LexResult &R, const Space &ParamSpace,
    const std::vector<IntT> &ParamVals) {
  assert(ParamVals.size() == ParamSpace.size() &&
         "parameter point over a different space");
  for (const LexPiece &P : R.Pieces) {
    System Pinned = P.Context;
    bool Mapped = true;
    for (unsigned I = 0, E = ParamSpace.size(); I != E; ++I) {
      int J = Pinned.space().indexOf(ParamSpace.name(I));
      if (J < 0) {
        Mapped = false;
        break;
      }
      Pinned.addEQ(Pinned.varExpr(static_cast<unsigned>(J))
                       .plusConst(-ParamVals[I]));
    }
    if (!Mapped)
      continue;
    auto Point = Pinned.sampleIntPoint();
    if (!Point)
      continue;
    std::vector<IntT> Out;
    Out.reserve(P.Values.size());
    for (const AffineExpr &V : P.Values)
      Out.push_back(V.evaluate(*Point));
    return Out;
  }
  return std::nullopt;
}

std::string LexResult::str() const {
  std::string S;
  for (unsigned I = 0, E = Pieces.size(); I != E; ++I) {
    const LexPiece &P = Pieces[I];
    S += "piece " + std::to_string(I) + ": values (";
    for (unsigned K = 0, KE = P.Values.size(); K != KE; ++K) {
      if (K)
        S += ", ";
      S += P.Values[K].str(P.Context.space());
    }
    S += ") when\n" + P.Context.str();
  }
  if (Pieces.empty())
    S = "(no solution anywhere)\n";
  if (!Exact)
    S += "(warning: result is approximate)\n";
  return S;
}
