//===- math/Projection.h - Polyhedral-core tuning and profiling -*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The knobs, counters and memoization caches of the polyhedral core.
/// Every question the compiler asks — communication sets (Section 4),
/// superfluous-constraint removal (Section 5.1), polyhedron scanning
/// (Section 5.2), last-write resolution — reduces to Fourier-Motzkin
/// projection plus integer-feasibility queries, so this one header
/// centralizes:
///
///   * ProjectionOptions — node budgets (previously magic numbers
///     scattered across every phase) and accelerator toggles;
///   * ProjectionStats  — global counters: feasibility queries, search
///     nodes, FM eliminations, cache hits/misses, quick-kills;
///   * PhaseTimer       — RAII wall-time + counter-delta attribution so
///     `--stats` can say where compile time goes;
///   * the canonicalizing memo caches used by System (keyed on the
///     normalized, sorted constraint matrix, with a bounded size).
///
/// Every piece of mutable state here — options, counters, caches, the
/// phase table — is thread_local: each thread gets a private instance,
/// so concurrent compilations (e.g. driven from the threaded simulator's
/// workers) never contend or corrupt each other, and the single-threaded
/// compiler sees exactly the historical process-global behavior. See
/// DESIGN.md sections 9 and 10.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_MATH_PROJECTION_H
#define DMCC_MATH_PROJECTION_H

#include "math/Affine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dmcc {

/// Three-valued answer for integer feasibility questions. Unknown results
/// arise only when the branch-and-bound search exceeds its node budget;
/// callers must treat Unknown conservatively (keep the constraint, keep
/// the piece, explore the branch).
enum class Feasibility { Empty, Feasible, Unknown };

/// Tuning for the polyhedral core. One instance per thread
/// (projectionOptions()); compile() installs the per-run copy carried in
/// CompilerOptions for its duration, and the CLI exposes the budget and
/// the accelerator toggles as flags.
struct ProjectionOptions {
  /// Node budget for the emptiness probes the analysis phases issue
  /// (last-write pruning, communication-set piece tests, guard checks).
  unsigned FeasibilityBudget = 6000;
  /// Node budget for each per-constraint superfluous test inside
  /// System::removeRedundant (the paper's Section 5.1 removal).
  unsigned RedundancyBudget = 5000;
  /// Node budget for redundancy removal on the projection chains of the
  /// polyhedron-scanning code generator (Section 5.2) — these systems
  /// shape emitted loop bounds, so they get the deepest search.
  unsigned ScanBudget = 20000;
  /// Default node budget for checkIntegerFeasible / sampleIntPoint when
  /// the caller does not pass one.
  unsigned SearchBudget = 20000;

  /// Memoize feasibility / redundancy / projection results keyed on the
  /// canonicalized constraint matrix.
  bool Cache = true;
  /// Syntactic accelerators in front of the exact tests (duplicate and
  /// dominated constraints, equality-implied inequalities).
  bool QuickChecks = true;
  /// Pick the Fourier-Motzkin elimination order that minimizes the
  /// pos*neg constraint product instead of highest-index-first.
  bool OrderHeuristic = true;
  /// Entries per cache before a wholesale eviction (bounds memory).
  unsigned CacheCapacity = 8192;
};

/// This thread's options instance (mutable, thread_local).
ProjectionOptions &projectionOptions();

/// Monotonic counters for everything the polyhedral core does. Each
/// thread accumulates its own; phases snapshot and subtract.
struct ProjectionStats {
  uint64_t FeasQueries = 0;       ///< checkIntegerFeasible entries
  uint64_t FeasCacheHits = 0;     ///< answered from the memo cache
  uint64_t FeasCacheMisses = 0;   ///< keyed but had to search
  uint64_t FeasUnknown = 0;       ///< budget-exhausted answers
  uint64_t NodesExpanded = 0;     ///< branch-and-bound nodes tried
  uint64_t FmEliminations = 0;    ///< System::fmEliminated calls
  uint64_t RedundancyCalls = 0;   ///< removeRedundant entries
  uint64_t RedundancyTests = 0;   ///< exact per-constraint tests run
  uint64_t RedundancyQuickKills = 0; ///< constraints dropped syntactically
  uint64_t RedundancyCacheHits = 0;  ///< whole-result cache hits
  uint64_t ProjectionCalls = 0;   ///< projectedOnto entries
  uint64_t ProjectionCacheHits = 0;
  uint64_t CacheEvictions = 0;    ///< wholesale cache clears on overflow
  uint64_t LexMaxCalls = 0;       ///< parametric lex-opt solves
  uint64_t ScanCalls = 0;         ///< polyhedron scans

  ProjectionStats operator-(const ProjectionStats &O) const;
  ProjectionStats &operator+=(const ProjectionStats &O);

  /// Feasibility-cache hit rate in [0,1]; 0 when no query was keyed.
  double feasHitRate() const {
    uint64_t T = FeasCacheHits + FeasCacheMisses;
    return T ? static_cast<double>(FeasCacheHits) / T : 0.0;
  }
};

/// This thread's counters (mutable; reset with resetProjectionStats).
ProjectionStats &projectionStats();
void resetProjectionStats();

/// Drops every memoized result (counters are unaffected).
void clearProjectionCaches();
/// Total entries currently held across all memo caches.
std::size_t projectionCacheEntries();

/// Wall time and counter deltas attributed to one named compile phase.
/// Phases may nest (lexMax runs inside last-write construction); a
/// nested phase's time and counters are attributed to the innermost
/// enclosing timer only, so each row is *exclusive* (self) cost and the
/// taxonomy is a partition: summing the rows gives the true total with
/// nothing double-counted.
struct PhaseProfile {
  std::string Name;
  double Seconds = 0;
  uint64_t Invocations = 0;
  ProjectionStats Delta; ///< counters accumulated while the phase ran
};

/// RAII phase scope: accumulates exclusive wall time and
/// ProjectionStats deltas into this thread's phase table under \p Name.
/// Timers form a per-thread stack; a closing child hands its inclusive
/// totals to its parent, which subtracts them from its own attribution.
class PhaseTimer {
public:
  explicit PhaseTimer(const char *Name);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

private:
  const char *Name;
  ProjectionStats Snap;
  double T0;
  PhaseTimer *Parent;          ///< enclosing timer on this thread
  double ChildSeconds = 0;     ///< inclusive seconds of closed children
  ProjectionStats ChildDelta;  ///< inclusive deltas of closed children
};

/// Snapshot of the accumulated phase table, in first-use order.
std::vector<PhaseProfile> phaseProfiles();
/// Clears the phase table (compile() calls this on entry).
void resetPhaseProfiles();

namespace detail {

/// A canonical constraint-matrix key: variable/constraint counts plus the
/// sorted, normalized rows, flattened to integers. Names and VarKinds do
/// not participate — feasibility and projection are matrix properties.
using CacheKey = std::vector<IntT>;

struct CacheKeyHash {
  std::size_t operator()(const CacheKey &K) const;
};

/// Feasibility memo. A Feasible/Empty entry is definite and served for
/// any budget; an Unknown entry is only served when the request's budget
/// does not exceed the budget that failed.
bool feasCacheLookup(const CacheKey &K, unsigned Budget, Feasibility &R);
void feasCacheStore(const CacheKey &K, unsigned Budget, Feasibility R);

/// System-shaped memo (removeRedundant results, projectedOnto results):
/// stores the resulting constraint rows plus an inexactness flag.
bool sysCacheLookup(const CacheKey &K, std::vector<Constraint> &Out,
                    bool &Inexact);
void sysCacheStore(const CacheKey &K, const std::vector<Constraint> &V,
                   bool Inexact);

} // namespace detail

} // namespace dmcc

#endif // DMCC_MATH_PROJECTION_H
