//===- math/System.cpp ----------------------------------------*- C++ -*-===//

#include "math/System.h"

#include <algorithm>

using namespace dmcc;

unsigned System::addVar(const std::string &Name, VarKind Kind) {
  unsigned I = Sp.add(Name, Kind);
  for (Constraint &C : Cons)
    C.Expr.appendVar();
  return I;
}

void System::addConstraint(Constraint C) {
  assert(C.Expr.size() == Sp.size() && "constraint over a different space");
  Cons.push_back(std::move(C));
}

void System::addRange(unsigned I, IntT Lo, IntT Hi) {
  addGE(varExpr(I).plusConst(-Lo));
  addGE(varExpr(I).negated().plusConst(Hi));
}

void System::addMapped(const Constraint &C, const Space &From) {
  Constraint M = C;
  M.Expr = mapExpr(C.Expr, From, Sp);
  addConstraint(std::move(M));
}

void System::addAllMapped(const System &Other) {
  for (const Constraint &C : Other.constraints())
    addMapped(C, Other.space());
}

bool System::normalize() {
  std::vector<Constraint> Out;
  for (Constraint &C : Cons) {
    AffineExpr &E = C.Expr;
    if (E.isConstant()) {
      if (C.isEquality() ? E.constant() != 0 : E.constant() < 0)
        return false;
      continue; // tautology
    }
    IntT G = E.coeffGcd();
    assert(G > 0 && "non-constant expression must have a nonzero gcd");
    if (C.isEquality()) {
      if (E.constant() % G != 0)
        return false; // GCD divisibility test: no integer solutions
      if (G > 1)
        E.divExact(G);
      // Canonicalize sign: first nonzero coefficient positive.
      unsigned FV;
      if (E.firstVar(FV) && E.coeff(FV) < 0)
        E.scale(-1);
    } else if (G > 1) {
      // Tighten:  G*e + c >= 0  <=>  e >= ceil(-c/G)  <=>  e + floor(c/G) >= 0
      IntT C0 = E.constant();
      E.constant() = 0;
      E.divExact(G);
      E.constant() = floorDiv(C0, G);
    }
    Out.push_back(C);
  }

  // Deduplicate, and merge GE pairs {E >= 0, -E >= 0} into E == 0.
  std::vector<Constraint> Final;
  Final.reserve(Out.size());
  for (Constraint &C : Out) {
    bool Skip = false;
    for (Constraint &F : Final) {
      if (F == C) {
        Skip = true;
        break;
      }
      if (!C.isEquality() && !F.isEquality() &&
          C.Expr.isNegationOf(F.Expr)) {
        // F says E >= 0 with E = -C.Expr; together they force C.Expr == 0.
        F.Rel = RelKind::EQ;
        unsigned FV;
        if (F.Expr.firstVar(FV) && F.Expr.coeff(FV) < 0)
          F.Expr.scale(-1);
        Skip = true;
        break;
      }
      // A GE implied by an existing EQ over the same expression.
      if (!C.isEquality() && F.isEquality() &&
          (F.Expr == C.Expr || C.Expr.isNegationOf(F.Expr))) {
        Skip = true;
        break;
      }
    }
    if (!Skip)
      Final.push_back(std::move(C));
  }
  Cons = std::move(Final);
  return true;
}

bool System::involves(unsigned I) const {
  for (const Constraint &C : Cons)
    if (C.Expr.involves(I))
      return true;
  return false;
}

void System::substitute(unsigned I, const AffineExpr &Repl) {
  for (Constraint &C : Cons)
    C.Expr.substitute(I, Repl);
}

void System::removeVar(unsigned I) {
  assert(!involves(I) && "removing a variable still in use");
  for (Constraint &C : Cons)
    C.Expr.removeVar(I);
  Sp.remove(I);
}

System System::fmEliminated(unsigned I, bool *Exact) const {
  assert(I < Sp.size() && "variable index out of range");
  ++projectionStats().FmEliminations;

  // Prefer an exact substitution through a unit-coefficient equality.
  for (unsigned CI = 0, CE = Cons.size(); CI != CE; ++CI) {
    const Constraint &C = Cons[CI];
    if (!C.isEquality())
      continue;
    IntT A = C.Expr.coeff(I);
    if (A != 1 && A != -1)
      continue;
    // A*v + R == 0  =>  v = -R/A. For A == 1: v = -R; for A == -1: v = R.
    AffineExpr Repl = C.Expr;
    Repl.coeff(I) = 0;
    if (A == 1)
      Repl.scale(-1);
    System R(Sp);
    R.Cons.reserve(Cons.size() - 1);
    for (unsigned CJ = 0, CF = Cons.size(); CJ != CF; ++CJ) {
      if (CJ == CI)
        continue;
      Constraint NC = Cons[CJ];
      NC.Expr.substitute(I, Repl);
      R.addConstraint(std::move(NC));
    }
    R.normalize();
    return R;
  }

  System R(Sp);
  std::vector<const Constraint *> Low, Up;
  Low.reserve(Cons.size());
  Up.reserve(Cons.size());
  for (const Constraint &C : Cons) {
    IntT A = C.Expr.coeff(I);
    if (A == 0) {
      R.addConstraint(C);
      continue;
    }
    if (C.isEquality()) {
      // Split a non-unit equality into two inequalities; this loses
      // divisibility information, so the elimination is inexact.
      if (Exact)
        *Exact = false;
    }
    if (A > 0 || C.isEquality())
      Low.push_back(&C);
    if (A < 0 || C.isEquality())
      Up.push_back(&C);
  }

  R.Cons.reserve(R.Cons.size() + Low.size() * Up.size());
  for (const Constraint *L : Low) {
    IntT AL = L->Expr.coeff(I);
    AffineExpr LE = AL > 0 ? L->Expr : L->Expr.negated();
    IntT A = AL > 0 ? AL : -AL; // coefficient of v in LE, > 0
    for (const Constraint *U : Up) {
      if (U == L)
        continue;
      IntT AU = U->Expr.coeff(I);
      AffineExpr UE = AU < 0 ? U->Expr : U->Expr.negated();
      IntT B = AU < 0 ? -AU : AU; // -coefficient of v in UE, > 0
      IntT G = gcdInt(A, B);
      // Dark-shadow condition: the combination is integer-exact when one
      // of the original coefficients is 1 (conservative otherwise).
      if (Exact && A != 1 && B != 1)
        *Exact = false;
      AffineExpr NE = LE;
      AffineExpr Scaled = UE;
      // Cross-multiplying bound pairs is where Fourier-Motzkin grows
      // coefficients; diagnose overflow here with its cause instead of
      // letting the raw arithmetic abort anonymously.
      if (!NE.scaleChecked(B / G) || !Scaled.scaleChecked(A / G) ||
          !NE.addChecked(Scaled))
        fatalError("coefficient overflow during Fourier-Motzkin "
                   "elimination: combining bounds exceeds the 64-bit "
                   "coefficient range (system too complex or input "
                   "coefficients too large)");
      assert(NE.coeff(I) == 0 && "elimination failed to cancel");
      R.addGE(std::move(NE));
    }
  }
  R.normalize();
  return R;
}

namespace {

/// Fourier-Motzkin growth estimate for eliminating \p I from \p S: 0 when
/// a unit-coefficient equality gives an exact substitution, otherwise the
/// pos*neg product of bounding-constraint counts (the number of combined
/// constraints the elimination would emit).
uint64_t eliminationScore(const System &S, unsigned I) {
  uint64_t Pos = 0, Neg = 0;
  for (const Constraint &C : S.constraints()) {
    IntT A = C.Expr.coeff(I);
    if (A == 0)
      continue;
    if (C.isEquality()) {
      if (A == 1 || A == -1)
        return 0; // exact substitution, no growth
      ++Pos;
      ++Neg;
      continue;
    }
    if (A > 0)
      ++Pos;
    else
      ++Neg;
  }
  return Pos * Neg;
}

} // namespace

System System::projectedOnto(const std::vector<unsigned> &Keep,
                             bool *Exact) const {
  assert(std::is_sorted(Keep.begin(), Keep.end()) &&
         "projection target must preserve variable order");
  const ProjectionOptions &PO = projectionOptions();
  ProjectionStats &PS = projectionStats();
  ++PS.ProjectionCalls;

  detail::CacheKey Key;
  bool Keyed = false;
  if (PO.Cache && canonicalKey(Key)) {
    Key.push_back(-2); // tag: projection (vs. -1 = redundancy removal)
    for (unsigned K : Keep)
      Key.push_back(static_cast<IntT>(K));
    std::vector<Constraint> Cached;
    bool Inexact = false;
    if (detail::sysCacheLookup(Key, Cached, Inexact)) {
      ++PS.ProjectionCacheHits;
      if (Inexact && Exact)
        *Exact = false;
      Space RS;
      for (unsigned K : Keep)
        RS.add(Sp.name(K), Sp.kind(K));
      System Out(std::move(RS));
      Out.Cons.reserve(Cached.size());
      for (Constraint &C : Cached)
        Out.addConstraint(std::move(C));
      return Out;
    }
    Keyed = true;
  }

  bool StillExact = true;
  System R = *this;
  R.normalize();
  if (PO.OrderHeuristic) {
    // Greedily eliminate the cheapest variable first (min pos*neg,
    // exact unit-equality substitutions free) to keep intermediate
    // constraint counts down.
    for (;;) {
      unsigned Best = Sp.size();
      uint64_t BestScore = 0;
      for (unsigned I = 0, E = Sp.size(); I != E; ++I) {
        if (std::binary_search(Keep.begin(), Keep.end(), I) ||
            !R.involves(I))
          continue;
        uint64_t Score = eliminationScore(R, I);
        if (Best == Sp.size() || Score < BestScore) {
          Best = I;
          BestScore = Score;
        }
      }
      if (Best == Sp.size())
        break;
      R = R.fmEliminated(Best, &StillExact);
    }
  } else {
    // Legacy order: eliminate in reverse index order.
    for (unsigned I = Sp.size(); I-- > 0;) {
      if (std::binary_search(Keep.begin(), Keep.end(), I))
        continue;
      if (R.involves(I))
        R = R.fmEliminated(I, &StillExact);
    }
  }
  for (unsigned I = Sp.size(); I-- > 0;)
    if (!std::binary_search(Keep.begin(), Keep.end(), I))
      R.removeVar(I);
  if (Keyed)
    detail::sysCacheStore(Key, R.Cons, !StillExact);
  if (!StillExact && Exact)
    *Exact = false;
  return R;
}

void System::boundsOf(unsigned I, std::vector<VarBound> &Lower,
                      std::vector<VarBound> &Upper) const {
  for (const Constraint &C : Cons) {
    IntT A = C.Expr.coeff(I);
    if (A == 0)
      continue;
    AffineExpr Rest = C.Expr;
    Rest.coeff(I) = 0;
    if (A > 0 || C.isEquality()) {
      // A*v + R >= 0  (A > 0)  =>  v >= ceil(-R / A)
      AffineExpr Num = A > 0 ? Rest.negated() : Rest;
      Lower.push_back(VarBound{std::move(Num), A > 0 ? A : -A});
    }
    if (A < 0 || C.isEquality()) {
      // A*v + R >= 0  (A < 0)  =>  v <= floor(R / -A)
      AffineExpr Num = A < 0 ? Rest : Rest.negated();
      Upper.push_back(VarBound{std::move(Num), A < 0 ? -A : A});
    }
  }
}

std::vector<Constraint> System::constraintsWithout(unsigned I) const {
  std::vector<Constraint> R;
  for (const Constraint &C : Cons)
    if (!C.Expr.involves(I))
      R.push_back(C);
  return R;
}

bool System::holds(const std::vector<IntT> &Vals) const {
  for (const Constraint &C : Cons)
    if (!C.holds(Vals))
      return false;
  return true;
}

namespace {

/// Shared depth-first search over a Fourier-Motzkin chain. Chain[K] has
/// constraints only over variables 0..K-1; values are assigned in index
/// order and checked against the original system at the leaves.
class IntSearch {
public:
  IntSearch(const System &S, unsigned NodeBudget)
      : Orig(S), Budget(NodeBudget) {}

  /// Window of values explored at a truncated or unbounded range end.
  static constexpr IntT Window = 72;

  bool prepare() {
    System Base = Orig;
    if (!Base.normalize())
      return false; // trivially empty
    unsigned N = Base.numVars();
    Chain.resize(N + 1);
    Chain[N] = std::move(Base);
    for (unsigned K = N; K-- > 0;)
      Chain[K] = Chain[K + 1].fmEliminated(K);
    // Chain[0] has only constant constraints; normalize() detects
    // rational emptiness of the whole chain.
    System C0 = Chain[0];
    if (!C0.normalize())
      return false;
    // The bound lists of each level are fixed for the whole search;
    // extract them once instead of re-walking constraints per node.
    LowerAt.resize(N);
    UpperAt.resize(N);
    for (unsigned K = 0; K != N; ++K)
      Chain[K + 1].boundsOf(K, LowerAt[K], UpperAt[K]);
    return true;
  }

  Feasibility run(std::vector<IntT> *Point) {
    unsigned N = Orig.numVars();
    Vals.assign(N, 0);
    Incomplete = false;
    BudgetHit = false;
    bool Found = dfs(0);
    projectionStats().NodesExpanded += Nodes;
    if (Found) {
      if (Point)
        *Point = Vals;
      return Feasibility::Feasible;
    }
    if (Incomplete || BudgetHit)
      return Feasibility::Unknown;
    return Feasibility::Empty;
  }

private:
  bool dfs(unsigned K) {
    unsigned N = Orig.numVars();
    if (K == N)
      return Orig.holds(Vals);
    if (Budget == 0) {
      BudgetHit = true;
      return false;
    }

    const std::vector<VarBound> &Lower = LowerAt[K];
    const std::vector<VarBound> &Upper = UpperAt[K];

    bool HasLo = !Lower.empty(), HasHi = !Upper.empty();
    IntT Lo = 0, Hi = 0;
    if (HasLo) {
      bool First = true;
      for (const VarBound &B : Lower) {
        IntT V = ceilDiv(B.Num.evaluate(Vals), B.Den);
        Lo = First ? V : std::max(Lo, V);
        First = false;
      }
    }
    if (HasHi) {
      bool First = true;
      for (const VarBound &B : Upper) {
        IntT V = floorDiv(B.Num.evaluate(Vals), B.Den);
        Hi = First ? V : std::min(Hi, V);
        First = false;
      }
    }

    if (!HasLo && !HasHi) {
      Lo = -Window / 2;
      Hi = Window / 2;
      Incomplete = true;
    } else if (!HasLo) {
      Lo = Hi - Window;
      Incomplete = true;
    } else if (!HasHi) {
      Hi = Lo + Window;
      Incomplete = true;
    }
    if (Lo > Hi)
      return false;

    if (Hi - Lo > 2 * Window) {
      // Explore both ends of an over-wide range.
      Incomplete = true;
      for (IntT V = Lo; V <= Lo + Window; ++V)
        if (tryValue(K, V))
          return true;
      for (IntT V = Hi - Window; V <= Hi; ++V)
        if (tryValue(K, V))
          return true;
      return false;
    }
    for (IntT V = Lo; V <= Hi; ++V)
      if (tryValue(K, V))
        return true;
    return false;
  }

  bool tryValue(unsigned K, IntT V) {
    if (Budget == 0) {
      BudgetHit = true;
      return false;
    }
    --Budget;
    ++Nodes;
    Vals[K] = V;
    return dfs(K + 1);
  }

  const System &Orig;
  std::vector<System> Chain;
  std::vector<std::vector<VarBound>> LowerAt, UpperAt;
  std::vector<IntT> Vals;
  unsigned Budget;
  uint64_t Nodes = 0;
  bool Incomplete = false;
  bool BudgetHit = false;
};

} // namespace

bool System::canonicalKey(detail::CacheKey &Key) const {
  // Normalize a copy so syntactic variants (ordering, scaling, merged
  // equalities) share one key; sort rows for order independence.
  System C = *this;
  if (!C.normalize())
    return false; // empty on its face — answer without searching
  std::vector<const Constraint *> Rows;
  Rows.reserve(C.Cons.size());
  for (const Constraint &Con : C.Cons)
    Rows.push_back(&Con);
  std::sort(Rows.begin(), Rows.end(),
            [](const Constraint *A, const Constraint *B) {
              if (A->Rel != B->Rel)
                return A->Rel < B->Rel;
              if (A->Expr.constant() != B->Expr.constant())
                return A->Expr.constant() < B->Expr.constant();
              for (unsigned I = 0, E = A->Expr.size(); I != E; ++I)
                if (A->Expr.coeff(I) != B->Expr.coeff(I))
                  return A->Expr.coeff(I) < B->Expr.coeff(I);
              return false;
            });
  Key.clear();
  Key.reserve(2 + Rows.size() * (2 + Sp.size()));
  Key.push_back(static_cast<IntT>(Sp.size()));
  Key.push_back(static_cast<IntT>(Rows.size()));
  for (const Constraint *R : Rows) {
    Key.push_back(R->Rel == RelKind::EQ ? 1 : 0);
    Key.push_back(R->Expr.constant());
    for (unsigned I = 0, E = R->Expr.size(); I != E; ++I)
      Key.push_back(R->Expr.coeff(I));
  }
  return true;
}

Feasibility System::checkIntegerFeasible(unsigned NodeBudget) const {
  const ProjectionOptions &PO = projectionOptions();
  ProjectionStats &PS = projectionStats();
  if (NodeBudget == 0)
    NodeBudget = PO.SearchBudget;
  ++PS.FeasQueries;

  detail::CacheKey Key;
  bool Keyed = false;
  if (PO.Cache) {
    if (!canonicalKey(Key))
      return Feasibility::Empty;
    Feasibility R;
    if (detail::feasCacheLookup(Key, NodeBudget, R)) {
      ++PS.FeasCacheHits;
      return R;
    }
    ++PS.FeasCacheMisses;
    Keyed = true;
  }

  IntSearch Search(*this, NodeBudget);
  Feasibility R = Search.prepare() ? Search.run(nullptr)
                                   : Feasibility::Empty;
  if (R == Feasibility::Unknown)
    ++PS.FeasUnknown;
  if (Keyed)
    detail::feasCacheStore(Key, NodeBudget, R);
  return R;
}

std::optional<std::vector<IntT>> System::sampleIntPoint(
    unsigned NodeBudget) const {
  const ProjectionOptions &PO = projectionOptions();
  if (NodeBudget == 0)
    NodeBudget = PO.SearchBudget;

  // A memoized Empty verdict saves the search; a Feasible one still
  // needs a point, so only the negative side short-circuits.
  detail::CacheKey Key;
  bool Keyed = false;
  if (PO.Cache) {
    if (!canonicalKey(Key))
      return std::nullopt;
    Feasibility Known;
    if (detail::feasCacheLookup(Key, NodeBudget, Known) &&
        Known == Feasibility::Empty)
      return std::nullopt;
    Keyed = true;
  }

  IntSearch Search(*this, NodeBudget);
  if (!Search.prepare())
    return std::nullopt;
  std::vector<IntT> Point;
  Feasibility R = Search.run(&Point);
  if (Keyed)
    detail::feasCacheStore(Key, NodeBudget, R);
  if (R == Feasibility::Feasible)
    return Point;
  return std::nullopt;
}

void System::enumeratePoints(
    const std::function<void(const std::vector<IntT> &)> &Fn,
    unsigned Budget) const {
  System Base = *this;
  if (!Base.normalize())
    return;
  unsigned N = Base.numVars();
  std::vector<System> Chain(N + 1);
  Chain[N] = std::move(Base);
  for (unsigned K = N; K-- > 0;)
    Chain[K] = Chain[K + 1].fmEliminated(K);

  std::vector<IntT> Vals(N, 0);
  unsigned Used = 0;
  std::function<void(unsigned)> Rec = [&](unsigned K) {
    if (Used >= Budget)
      fatalError("enumeratePoints budget exhausted (unbounded system?)");
    if (K == N) {
      ++Used;
      if (holds(Vals))
        Fn(Vals);
      return;
    }
    std::vector<VarBound> Lower, Upper;
    Chain[K + 1].boundsOf(K, Lower, Upper);
    if (Lower.empty() || Upper.empty())
      fatalError("enumeratePoints requires a bounded system");
    IntT Lo = 0, Hi = 0;
    bool First = true;
    for (const VarBound &B : Lower) {
      IntT V = ceilDiv(B.Num.evaluate(Vals), B.Den);
      Lo = First ? V : std::max(Lo, V);
      First = false;
    }
    First = true;
    for (const VarBound &B : Upper) {
      IntT V = floorDiv(B.Num.evaluate(Vals), B.Den);
      Hi = First ? V : std::min(Hi, V);
      First = false;
    }
    for (IntT V = Lo; V <= Hi; ++V) {
      ++Used;
      Vals[K] = V;
      Rec(K + 1);
    }
  };
  Rec(0);
}

namespace {

/// True iff A and B have identical coefficient rows (constants ignored).
bool sameCoeffRow(const AffineExpr &A, const AffineExpr &B) {
  for (unsigned I = 0, E = A.size(); I != E; ++I)
    if (A.coeff(I) != B.coeff(I))
      return false;
  return true;
}

/// True iff A's coefficient row is the negation of B's (constants
/// ignored); false on any non-representable negation.
bool negCoeffRow(const AffineExpr &A, const AffineExpr &B) {
  for (unsigned I = 0, E = A.size(); I != E; ++I) {
    IntT C = B.coeff(I);
    if (C == INT64_MIN || A.coeff(I) != -C)
      return false;
  }
  return true;
}

} // namespace

void System::removeRedundant(unsigned NodeBudget) {
  const ProjectionOptions &PO = projectionOptions();
  ProjectionStats &PS = projectionStats();
  if (NodeBudget == 0)
    NodeBudget = PO.RedundancyBudget;
  ++PS.RedundancyCalls;
  if (!normalize())
    return;

  detail::CacheKey Key;
  bool Keyed = false;
  if (PO.Cache && canonicalKey(Key)) {
    Key.push_back(-1); // tag: redundancy removal (vs. -2 = projection)
    Key.push_back(static_cast<IntT>(NodeBudget));
    std::vector<Constraint> Cached;
    bool Inexact = false;
    if (detail::sysCacheLookup(Key, Cached, Inexact)) {
      ++PS.RedundancyCacheHits;
      Cons = std::move(Cached);
      return;
    }
    Keyed = true;
  }

  if (PO.QuickChecks && Cons.size() > 1) {
    // Syntactic accelerators: drop inequalities dominated over identical
    // coefficient rows before paying for an exact feasibility test each.
    //   e + a >= 0 dominates e + b >= 0 whenever b >= a;
    //   e + a == 0 forces e = -a, so e + b >= 0 is implied when b >= a
    //   and -e + b >= 0 is implied when a + b >= 0.
    std::vector<bool> Drop(Cons.size(), false);
    for (unsigned J = 0; J != Cons.size(); ++J) {
      if (Cons[J].isEquality())
        continue;
      for (unsigned I = 0; I != Cons.size() && !Drop[J]; ++I) {
        if (I == J || Drop[I])
          continue;
        const Constraint &A = Cons[I];
        const Constraint &B = Cons[J];
        IntT CA = A.Expr.constant(), CB = B.Expr.constant();
        if (A.isEquality()) {
          if (sameCoeffRow(A.Expr, B.Expr) && CB >= CA)
            Drop[J] = true;
          else if (negCoeffRow(B.Expr, A.Expr)) {
            IntT Sum;
            if (!__builtin_add_overflow(CA, CB, &Sum) && Sum >= 0)
              Drop[J] = true;
          }
        } else if (sameCoeffRow(A.Expr, B.Expr) && CB > CA) {
          Drop[J] = true;
        }
      }
    }
    std::vector<Constraint> Kept;
    Kept.reserve(Cons.size());
    for (unsigned I = 0; I != Cons.size(); ++I) {
      if (Drop[I]) {
        ++PS.RedundancyQuickKills;
        continue;
      }
      Kept.push_back(std::move(Cons[I]));
    }
    Cons = std::move(Kept);
  }

  for (unsigned I = Cons.size(); I-- > 0;) {
    ++PS.RedundancyTests;
    const Constraint C = Cons[I];
    System Test(Sp);
    for (unsigned J = 0, E = Cons.size(); J != E; ++J)
      if (J != I)
        Test.addConstraint(Cons[J]);
    if (C.isEquality()) {
      // EQ is redundant iff both strict sides are empty.
      System TestLt = Test;
      TestLt.addGE(C.Expr.negated().plusConst(-1)); // Expr <= -1
      if (TestLt.checkIntegerFeasible(NodeBudget) != Feasibility::Empty)
        continue;
      Test.addGE(C.Expr.plusConst(-1)); // Expr >= 1
      if (Test.checkIntegerFeasible(NodeBudget) != Feasibility::Empty)
        continue;
    } else {
      Test.addGE(C.Expr.negated().plusConst(-1)); // Expr <= -1
      if (Test.checkIntegerFeasible(NodeBudget) != Feasibility::Empty)
        continue;
    }
    Cons.erase(Cons.begin() + I);
  }
  if (Keyed)
    detail::sysCacheStore(Key, Cons, false);
}

std::string System::str() const {
  std::string S;
  for (const Constraint &C : Cons) {
    S += "  ";
    S += C.str(Sp);
    S += "\n";
  }
  return S;
}

AffineExpr dmcc::mapExpr(
    const AffineExpr &E, const Space &From, const Space &To,
    const std::function<std::string(const std::string &)> &MapName) {
  assert(E.size() == From.size() && "expression over a different space");
  AffineExpr R(To.size());
  R.constant() = E.constant();
  for (unsigned I = 0, N = From.size(); I != N; ++I) {
    if (E.coeff(I) == 0)
      continue;
    std::string Name = MapName ? MapName(From.name(I)) : From.name(I);
    int J = To.indexOf(Name);
    if (J < 0)
      fatalError("mapExpr: variable missing in target space");
    R.coeff(static_cast<unsigned>(J)) = E.coeff(I);
  }
  return R;
}
