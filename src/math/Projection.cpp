//===- math/Projection.cpp ------------------------------------*- C++ -*-===//

#include "math/Projection.h"

#include <chrono>
#include <unordered_map>

using namespace dmcc;

namespace {

// All mutable state of the polyhedral core is thread_local: each thread
// owns private options, counters, caches and an active-phase chain, so
// threaded callers (e.g. the threaded simulator driving compilations
// from workers) cannot corrupt each other's entries or counters, with
// no locks on the compiler's hottest paths. Single-threaded behavior is
// unchanged — the main thread sees exactly the old globals.
thread_local ProjectionOptions GlobalOptions;
thread_local ProjectionStats GlobalStats;

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Accumulated phase table, in first-use order.
thread_local std::vector<PhaseProfile> Phases;

/// Innermost live PhaseTimer on this thread: the parent chain that lets
/// a closing child report its inclusive totals for exclusion.
thread_local PhaseTimer *ActiveTimer = nullptr;

PhaseProfile &phaseSlot(const char *Name) {
  for (PhaseProfile &P : Phases)
    if (P.Name == Name)
      return P;
  Phases.push_back(PhaseProfile{Name, 0, 0, ProjectionStats()});
  return Phases.back();
}

struct FeasEntry {
  Feasibility Result = Feasibility::Unknown;
  unsigned Budget = 0; ///< budget the result was computed under
};

struct SysEntry {
  std::vector<Constraint> Cons;
  bool Inexact = false;
};

/// Bounded memo: on overflow the whole map is dropped (cheap, keeps the
/// hot working set warm again within a few queries).
template <typename V> class BoundedCache {
public:
  V *find(const detail::CacheKey &K) {
    auto It = Map.find(K);
    return It == Map.end() ? nullptr : &It->second;
  }
  void insert(const detail::CacheKey &K, V Val) {
    if (Map.size() >= GlobalOptions.CacheCapacity) {
      Map.clear();
      ++GlobalStats.CacheEvictions;
    }
    Map[K] = std::move(Val);
  }
  void clear() { Map.clear(); }
  std::size_t size() const { return Map.size(); }

private:
  std::unordered_map<detail::CacheKey, V, detail::CacheKeyHash> Map;
};

thread_local BoundedCache<FeasEntry> FeasCache;
thread_local BoundedCache<SysEntry> SysCache;

} // namespace

ProjectionOptions &dmcc::projectionOptions() { return GlobalOptions; }

ProjectionStats &dmcc::projectionStats() { return GlobalStats; }

void dmcc::resetProjectionStats() { GlobalStats = ProjectionStats(); }

void dmcc::clearProjectionCaches() {
  FeasCache.clear();
  SysCache.clear();
}

std::size_t dmcc::projectionCacheEntries() {
  return FeasCache.size() + SysCache.size();
}

ProjectionStats ProjectionStats::operator-(const ProjectionStats &O) const {
  ProjectionStats R;
  R.FeasQueries = FeasQueries - O.FeasQueries;
  R.FeasCacheHits = FeasCacheHits - O.FeasCacheHits;
  R.FeasCacheMisses = FeasCacheMisses - O.FeasCacheMisses;
  R.FeasUnknown = FeasUnknown - O.FeasUnknown;
  R.NodesExpanded = NodesExpanded - O.NodesExpanded;
  R.FmEliminations = FmEliminations - O.FmEliminations;
  R.RedundancyCalls = RedundancyCalls - O.RedundancyCalls;
  R.RedundancyTests = RedundancyTests - O.RedundancyTests;
  R.RedundancyQuickKills = RedundancyQuickKills - O.RedundancyQuickKills;
  R.RedundancyCacheHits = RedundancyCacheHits - O.RedundancyCacheHits;
  R.ProjectionCalls = ProjectionCalls - O.ProjectionCalls;
  R.ProjectionCacheHits = ProjectionCacheHits - O.ProjectionCacheHits;
  R.CacheEvictions = CacheEvictions - O.CacheEvictions;
  R.LexMaxCalls = LexMaxCalls - O.LexMaxCalls;
  R.ScanCalls = ScanCalls - O.ScanCalls;
  return R;
}

ProjectionStats &ProjectionStats::operator+=(const ProjectionStats &O) {
  FeasQueries += O.FeasQueries;
  FeasCacheHits += O.FeasCacheHits;
  FeasCacheMisses += O.FeasCacheMisses;
  FeasUnknown += O.FeasUnknown;
  NodesExpanded += O.NodesExpanded;
  FmEliminations += O.FmEliminations;
  RedundancyCalls += O.RedundancyCalls;
  RedundancyTests += O.RedundancyTests;
  RedundancyQuickKills += O.RedundancyQuickKills;
  RedundancyCacheHits += O.RedundancyCacheHits;
  ProjectionCalls += O.ProjectionCalls;
  ProjectionCacheHits += O.ProjectionCacheHits;
  CacheEvictions += O.CacheEvictions;
  LexMaxCalls += O.LexMaxCalls;
  ScanCalls += O.ScanCalls;
  return *this;
}

PhaseTimer::PhaseTimer(const char *Name)
    : Name(Name), Snap(GlobalStats), T0(nowSeconds()),
      Parent(ActiveTimer) {
  ActiveTimer = this;
}

PhaseTimer::~PhaseTimer() {
  // Exclusive attribution: this phase keeps its own elapsed time and
  // counter delta minus what completed child phases already claimed;
  // the full inclusive totals are handed up to the parent for the same
  // exclusion there. The phase table is therefore a partition — summing
  // the rows gives the true total, with nothing double-counted.
  double Elapsed = nowSeconds() - T0;
  ProjectionStats D = GlobalStats - Snap;
  PhaseProfile &P = phaseSlot(Name);
  P.Seconds += Elapsed - ChildSeconds;
  ++P.Invocations;
  P.Delta += D - ChildDelta;
  if (Parent) {
    Parent->ChildSeconds += Elapsed;
    Parent->ChildDelta += D;
  }
  ActiveTimer = Parent;
}

std::vector<PhaseProfile> dmcc::phaseProfiles() { return Phases; }

void dmcc::resetPhaseProfiles() { Phases.clear(); }

std::size_t detail::CacheKeyHash::operator()(const CacheKey &K) const {
  // FNV-1a over the 64-bit words.
  uint64_t H = 1469598103934665603ull;
  for (IntT V : K) {
    H ^= static_cast<uint64_t>(V);
    H *= 1099511628211ull;
  }
  return static_cast<std::size_t>(H);
}

bool detail::feasCacheLookup(const CacheKey &K, unsigned Budget,
                             Feasibility &R) {
  FeasEntry *E = FeasCache.find(K);
  if (!E)
    return false;
  if (E->Result == Feasibility::Unknown && Budget > E->Budget)
    return false; // a deeper search might still resolve it
  R = E->Result;
  return true;
}

void detail::feasCacheStore(const CacheKey &K, unsigned Budget,
                            Feasibility R) {
  FeasEntry *E = FeasCache.find(K);
  if (E) {
    // Keep the strongest fact: definite answers win; among Unknowns the
    // larger failed budget subsumes the smaller.
    if (E->Result != Feasibility::Unknown)
      return;
    if (R == Feasibility::Unknown && Budget <= E->Budget)
      return;
  }
  FeasCache.insert(K, FeasEntry{R, Budget});
}

bool detail::sysCacheLookup(const CacheKey &K, std::vector<Constraint> &Out,
                            bool &Inexact) {
  SysEntry *E = SysCache.find(K);
  if (!E)
    return false;
  Out = E->Cons;
  Inexact = E->Inexact;
  return true;
}

void detail::sysCacheStore(const CacheKey &K,
                           const std::vector<Constraint> &V, bool Inexact) {
  SysCache.insert(K, SysEntry{V, Inexact});
}
