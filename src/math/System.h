//===- math/System.h - Systems of linear inequalities ----------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A System is a conjunction of linear constraints over a named Space: the
/// paper's uniform representation for iteration sets, decompositions,
/// access functions, last-write relations and communication sets
/// (Section 4). The projection operations implement Section 5.1
/// (Fourier-Motzkin elimination with superfluous-constraint removal via
/// integer feasibility tests), and boundsOf() feeds the polyhedron-scanning
/// code generator of Section 5.2.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_MATH_SYSTEM_H
#define DMCC_MATH_SYSTEM_H

#include "math/Affine.h"
#include "math/Projection.h"
#include "math/Space.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace dmcc {

/// A lower or upper bound on a variable extracted from a system:
///   lower:  v >= ceil(Num / Den)      upper:  v <= floor(Num / Den)
/// with Den >= 1. Num ranges over the other variables of the same space.
struct VarBound {
  AffineExpr Num;
  IntT Den = 1;
};

/// A conjunction of affine constraints over a Space.
class System {
public:
  System() = default;
  explicit System(Space Sp) : Sp(std::move(Sp)) {}

  const Space &space() const { return Sp; }
  unsigned numVars() const { return Sp.size(); }

  const std::vector<Constraint> &constraints() const { return Cons; }
  unsigned numConstraints() const { return Cons.size(); }

  /// Appends a variable to the space, extending every constraint with a
  /// zero coefficient. Returns the new variable's index.
  unsigned addVar(const std::string &Name, VarKind Kind);

  /// Creates the zero expression over this system's space.
  AffineExpr zero() const { return AffineExpr(Sp.size()); }
  /// Creates the expression  v_I.
  AffineExpr varExpr(unsigned I) const {
    return AffineExpr::var(Sp.size(), I);
  }
  /// Creates the constant expression \p C.
  AffineExpr constExpr(IntT C) const {
    return AffineExpr::constant(Sp.size(), C);
  }

  void addConstraint(Constraint C);
  /// Adds  E >= 0.
  void addGE(AffineExpr E) { addConstraint(Constraint::ge(std::move(E))); }
  /// Adds  E == 0.
  void addEQ(AffineExpr E) { addConstraint(Constraint::eq(std::move(E))); }
  /// Adds  A <= B  (i.e. B - A >= 0).
  void addLE(const AffineExpr &A, const AffineExpr &B) { addGE(B - A); }
  /// Adds  A == B.
  void addEq(const AffineExpr &A, const AffineExpr &B) { addEQ(B - A); }
  /// Adds  Lo <= v_I <= Hi  for constants.
  void addRange(unsigned I, IntT Lo, IntT Hi);

  /// Adds \p C, translating variable indices from \p From to this space by
  /// name. Every variable used by \p C must exist here.
  void addMapped(const Constraint &C, const Space &From);
  /// Adds every constraint of \p Other, mapped by name.
  void addAllMapped(const System &Other);

  /// Gcd-reduces constraints (with GE tightening and the EQ divisibility
  /// test), drops tautologies and duplicates. Returns false if a constraint
  /// is unsatisfiable on its face (the system is empty).
  bool normalize();

  /// True if any constraint mentions variable \p I.
  bool involves(unsigned I) const;

  /// Replaces variable \p I by \p Repl everywhere (Repl must not involve
  /// \p I). The variable remains in the space with zero coefficients.
  void substitute(unsigned I, const AffineExpr &Repl);

  /// Removes variable \p I from the space; asserts no constraint uses it.
  void removeVar(unsigned I);

  /// Fourier-Motzkin eliminates variable \p I, keeping the space unchanged
  /// (the variable simply no longer appears in any constraint). If the
  /// elimination is exact over the integers, *Exact is left unchanged;
  /// otherwise it is set to false. Equalities with a +/-1 coefficient are
  /// used as exact substitutions first.
  System fmEliminated(unsigned I, bool *Exact = nullptr) const;

  /// Eliminates every variable not in \p Keep (by FM), then removes the
  /// eliminated dimensions so the result's space is exactly the Keep
  /// variables in their original order.
  System projectedOnto(const std::vector<unsigned> &Keep,
                       bool *Exact = nullptr) const;

  /// Extracts all bounds on variable \p I. Equalities contribute to both
  /// sides. Bounds may reference any other variable of the space.
  void boundsOf(unsigned I, std::vector<VarBound> &Lower,
                std::vector<VarBound> &Upper) const;

  /// Constraints that do not mention \p I.
  std::vector<Constraint> constraintsWithout(unsigned I) const;

  /// True under the assignment \p Vals (one value per space variable).
  bool holds(const std::vector<IntT> &Vals) const;

  /// Exhaustive-by-construction integer feasibility (branch and bound over
  /// a Fourier-Motzkin chain). \p NodeBudget bounds the search; 0 means
  /// projectionOptions().SearchBudget. Results are memoized on the
  /// canonicalized constraint matrix when the projection cache is on.
  Feasibility checkIntegerFeasible(unsigned NodeBudget = 0) const;

  /// Convenience: checkIntegerFeasible() == Empty.
  bool isIntegerEmpty(unsigned NodeBudget = 0) const {
    return checkIntegerFeasible(NodeBudget) == Feasibility::Empty;
  }

  /// Finds one integer point, if the search succeeds within budget
  /// (0 = projectionOptions().SearchBudget).
  std::optional<std::vector<IntT>> sampleIntPoint(
      unsigned NodeBudget = 0) const;

  /// Enumerates every integer point in lexicographic variable order. The
  /// system must be bounded; aborts (via budget) otherwise. Intended for
  /// tests and for small exhaustive checks.
  void enumeratePoints(const std::function<void(const std::vector<IntT> &)>
                           &Fn,
                       unsigned Budget = 1000000) const;

  /// Drops constraints whose negation makes the system integer-empty
  /// (the superfluous-constraint test of Section 5.1). \p NodeBudget
  /// bounds each per-constraint test; 0 means
  /// projectionOptions().RedundancyBudget. Budget-exhausted (Unknown)
  /// tests conservatively keep the constraint. Syntactic quick-checks
  /// and a whole-result memo run in front of the exact tests when
  /// enabled in projectionOptions().
  void removeRedundant(unsigned NodeBudget = 0);

  /// Renders one constraint per line.
  std::string str() const;

private:
  Space Sp;
  std::vector<Constraint> Cons;

  /// Flattens the normalized, sorted constraint matrix into \p Key.
  /// Returns false when normalization proves the system empty on its
  /// face (callers should answer Empty without searching).
  bool canonicalKey(detail::CacheKey &Key) const;
};

/// Translates \p E from \p From to \p To, mapping variables by
/// \p MapName(name); every mapped name must exist in \p To. Passing the
/// identity function maps variables by equal name.
AffineExpr mapExpr(const AffineExpr &E, const Space &From, const Space &To,
                   const std::function<std::string(const std::string &)>
                       &MapName = nullptr);

} // namespace dmcc

#endif // DMCC_MATH_SYSTEM_H
