//===- math/Region.h - Unions of polyhedra ---------------------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Region is a finite union of constraint systems over a common base
/// space. Pieces may carry extra existentially quantified Aux variables
/// (the paper's auxiliary variables for modulo constraints, Section 4.4.2).
/// Regions support the set operations the Last-Write-Tree construction
/// needs: intersection, and subtraction (for "the reads not covered by any
/// deeper-level writer").
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_MATH_REGION_H
#define DMCC_MATH_REGION_H

#include "math/System.h"

#include <string>
#include <vector>

namespace dmcc {

/// A union of Systems over a shared base space.
class Region {
public:
  Region() = default;
  explicit Region(Space Base) : Base(std::move(Base)) {}

  /// A region consisting of the single system \p S. The base space is S's
  /// space with Aux variables considered existential.
  static Region fromSystem(const System &S);

  const Space &baseSpace() const { return Base; }
  const std::vector<System> &pieces() const { return Pieces; }
  bool hasPieces() const { return !Pieces.empty(); }

  /// True if every set operation performed so far was integer-exact.
  bool isExact() const { return Exact; }
  void markInexact() { Exact = false; }

  /// Adds \p S as a piece. S's non-Aux variables must match the base space
  /// by name (order may differ); Aux variables are existential witnesses.
  void addPiece(const System &S);

  /// Intersects every piece with the constraints of \p S (mapped by name;
  /// S must be over base-space variables only).
  void intersectWith(const System &S);

  /// Returns this \ Other. Requires eliminating Other's Aux variables; if
  /// that elimination is integer-inexact the result is marked inexact.
  Region subtract(const Region &Other) const;

  /// Removes integer-empty pieces (best effort under \p NodeBudget;
  /// 0 means the projectionOptions() search budget).
  void pruneEmpty(unsigned NodeBudget = 0);

  /// True if all pieces are provably integer-empty.
  bool isIntegerEmpty(unsigned NodeBudget = 0) const;

  /// True if the point (over base-space variables, in base order) lies in
  /// some piece; existential Aux variables are searched exhaustively.
  bool containsPoint(const std::vector<IntT> &Vals) const;

  std::string str() const;

private:
  /// Returns \p P \ \p S as pieces over P's space; sets *OK to false when
  /// S's Aux variables cannot be eliminated exactly.
  std::vector<System> subtractSystem(const System &P, const System &S,
                                     bool *ExactOut) const;

  Space Base;
  std::vector<System> Pieces;
  bool Exact = true;
};

/// Eliminates all Aux variables of \p S by projection, removing their
/// dimensions. Sets *Exact to false if any elimination step was inexact
/// over the integers.
System eliminateAuxVars(const System &S, bool *Exact);

/// Attempts to represent A union B as a single convex system: the
/// constraints common to both, provided they add no extra integer points.
/// Typical use: undoing case splits whose branches carry identical
/// payloads. Returns nullopt when the union is not exactly convex (or the
/// spaces differ).
std::optional<System> coalesceSystems(const System &A, const System &B);

} // namespace dmcc

#endif // DMCC_MATH_REGION_H
