//===- math/Affine.cpp ----------------------------------------*- C++ -*-===//

#include "math/Affine.h"

using namespace dmcc;

AffineExpr &AffineExpr::operator+=(const AffineExpr &O) {
  assert(O.size() == size() && "adding expressions over different spaces");
  for (unsigned I = 0, E = Coeffs.size(); I != E; ++I)
    Coeffs[I] = addChk(Coeffs[I], O.Coeffs[I]);
  Cst = addChk(Cst, O.Cst);
  return *this;
}

AffineExpr &AffineExpr::operator-=(const AffineExpr &O) {
  assert(O.size() == size() && "subtracting expressions over different spaces");
  for (unsigned I = 0, E = Coeffs.size(); I != E; ++I)
    Coeffs[I] = subChk(Coeffs[I], O.Coeffs[I]);
  Cst = subChk(Cst, O.Cst);
  return *this;
}

AffineExpr &AffineExpr::scale(IntT F) {
  for (IntT &C : Coeffs)
    C = mulChk(C, F);
  Cst = mulChk(Cst, F);
  return *this;
}

bool AffineExpr::scaleChecked(IntT F) {
  for (IntT &C : Coeffs)
    if (__builtin_mul_overflow(C, F, &C))
      return false;
  return !__builtin_mul_overflow(Cst, F, &Cst);
}

bool AffineExpr::addChecked(const AffineExpr &O) {
  assert(O.size() == size() && "adding expressions over different spaces");
  for (unsigned I = 0, E = Coeffs.size(); I != E; ++I)
    if (__builtin_add_overflow(Coeffs[I], O.Coeffs[I], &Coeffs[I]))
      return false;
  return !__builtin_add_overflow(Cst, O.Cst, &Cst);
}

AffineExpr AffineExpr::negated() const {
  AffineExpr R = *this;
  R.scale(-1);
  return R;
}

bool AffineExpr::isNegationOf(const AffineExpr &O) const {
  if (O.size() != size() || Cst == INT64_MIN || O.Cst != -Cst)
    return false;
  for (unsigned I = 0, E = Coeffs.size(); I != E; ++I)
    if (Coeffs[I] == INT64_MIN || O.Coeffs[I] != -Coeffs[I])
      return false;
  return true;
}

AffineExpr AffineExpr::plusConst(IntT C) const {
  AffineExpr R = *this;
  R.Cst = addChk(R.Cst, C);
  return R;
}

bool AffineExpr::isConstant() const {
  for (IntT C : Coeffs)
    if (C != 0)
      return false;
  return true;
}

bool AffineExpr::firstVar(unsigned &Idx) const {
  for (unsigned I = 0, E = Coeffs.size(); I != E; ++I)
    if (Coeffs[I] != 0) {
      Idx = I;
      return true;
    }
  return false;
}

void AffineExpr::substitute(unsigned I, const AffineExpr &Repl) {
  assert(Repl.size() == size() && "substitution over a different space");
  assert(!Repl.involves(I) && "substitution must not involve the variable");
  IntT C = coeff(I);
  if (C == 0)
    return;
  Coeffs[I] = 0;
  for (unsigned J = 0, E = Coeffs.size(); J != E; ++J)
    Coeffs[J] = addChk(Coeffs[J], mulChk(C, Repl.Coeffs[J]));
  Cst = addChk(Cst, mulChk(C, Repl.Cst));
}

void AffineExpr::removeVar(unsigned I) {
  assert(I < Coeffs.size() && "variable index out of range");
  assert(Coeffs[I] == 0 && "removing a variable still in use");
  Coeffs.erase(Coeffs.begin() + I);
}

IntT AffineExpr::coeffGcd() const {
  IntT G = 0;
  for (IntT C : Coeffs)
    G = gcdInt(G, C);
  return G;
}

void AffineExpr::divExact(IntT D) {
  assert(D != 0 && "division by zero");
  for (IntT &C : Coeffs) {
    assert(C % D == 0 && "inexact coefficient division");
    C /= D;
  }
  assert(Cst % D == 0 && "inexact constant division");
  Cst /= D;
}

IntT AffineExpr::evaluate(const std::vector<IntT> &Vals) const {
  assert(Vals.size() >= Coeffs.size() && "too few values for evaluation");
  IntT R = Cst;
  for (unsigned I = 0, E = Coeffs.size(); I != E; ++I)
    if (Coeffs[I] != 0)
      R = addChk(R, mulChk(Coeffs[I], Vals[I]));
  return R;
}

std::string AffineExpr::str(const Space &Sp) const {
  assert(Sp.size() == size() && "space does not match expression");
  std::string S;
  bool First = true;
  auto appendTerm = [&](IntT C, const std::string &Name) {
    if (C == 0)
      return;
    if (First) {
      if (C < 0)
        S += "-";
      First = false;
    } else {
      S += C < 0 ? " - " : " + ";
    }
    IntT A = C < 0 ? -C : C;
    if (A != 1 || Name.empty()) {
      S += std::to_string(A);
      if (!Name.empty())
        S += "*";
    }
    S += Name;
  };
  for (unsigned I = 0, E = Coeffs.size(); I != E; ++I)
    appendTerm(Coeffs[I], Sp.name(I));
  if (Cst != 0 || First)
    appendTerm(Cst == 0 ? IntT(0) : Cst, "");
  if (First)
    S = "0";
  return S;
}

std::string Constraint::str(const Space &Sp) const {
  return Expr.str(Sp) + (Rel == RelKind::EQ ? " == 0" : " >= 0");
}
