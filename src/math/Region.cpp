//===- math/Region.cpp ----------------------------------------*- C++ -*-===//

#include "math/Region.h"

using namespace dmcc;

System dmcc::eliminateAuxVars(const System &S, bool *Exact) {
  System R = S;
  R.normalize();
  for (unsigned I = R.space().size(); I-- > 0;) {
    if (R.space().kind(I) != VarKind::Aux)
      continue;
    if (R.involves(I))
      R = R.fmEliminated(I, Exact);
    R.removeVar(I);
  }
  return R;
}

Region Region::fromSystem(const System &S) {
  Space Base;
  for (unsigned I = 0, E = S.space().size(); I != E; ++I)
    if (S.space().kind(I) != VarKind::Aux)
      Base.add(S.space().name(I), S.space().kind(I));
  Region R(std::move(Base));
  R.addPiece(S);
  return R;
}

void Region::addPiece(const System &S) {
#ifndef NDEBUG
  for (unsigned I = 0, E = Base.size(); I != E; ++I)
    assert(S.space().contains(Base.name(I)) &&
           "piece is missing a base-space variable");
  for (unsigned I = 0, E = S.space().size(); I != E; ++I)
    assert((S.space().kind(I) == VarKind::Aux ||
            Base.contains(S.space().name(I))) &&
           "piece has a non-aux variable outside the base space");
#endif
  Pieces.push_back(S);
}

void Region::intersectWith(const System &S) {
  for (System &P : Pieces)
    P.addAllMapped(S);
}

std::vector<System> Region::subtractSystem(const System &P, const System &S,
                                           bool *ExactOut) const {
  // Existential witnesses in S must be eliminated before negating: a point
  // is outside S iff no witness exists, which projection expresses.
  bool ElimExact = true;
  System SB = eliminateAuxVars(S, &ElimExact);
  if (!ElimExact)
    *ExactOut = false;

  // P \ SB = union over j of  P /\ c_0 /\ ... /\ c_{j-1} /\ not(c_j).
  std::vector<System> Out;
  System Prefix = P;
  for (const Constraint &C : SB.constraints()) {
    AffineExpr E = mapExpr(C.Expr, SB.space(), P.space());
    if (C.isEquality()) {
      System Lt = Prefix;
      Lt.addGE(E.negated().plusConst(-1)); // E <= -1
      Out.push_back(std::move(Lt));
      System Gt = Prefix;
      Gt.addGE(E.plusConst(-1)); // E >= 1
      Out.push_back(std::move(Gt));
      Prefix.addEQ(E);
    } else {
      System Neg = Prefix;
      Neg.addGE(E.negated().plusConst(-1)); // E <= -1
      Out.push_back(std::move(Neg));
      Prefix.addGE(E);
    }
  }
  return Out;
}

Region Region::subtract(const Region &Other) const {
  Region R(Base);
  R.Exact = Exact && Other.Exact;
  R.Pieces = Pieces;
  for (const System &S : Other.Pieces) {
    std::vector<System> Next;
    for (const System &P : R.Pieces)
      for (System &D : subtractSystem(P, S, &R.Exact))
        Next.push_back(std::move(D));
    R.Pieces = std::move(Next);
    R.pruneEmpty();
  }
  return R;
}

void Region::pruneEmpty(unsigned NodeBudget) {
  std::vector<System> Kept;
  for (System &P : Pieces)
    if (P.checkIntegerFeasible(NodeBudget) != Feasibility::Empty)
      Kept.push_back(std::move(P));
  Pieces = std::move(Kept);
}

bool Region::isIntegerEmpty(unsigned NodeBudget) const {
  for (const System &P : Pieces)
    if (P.checkIntegerFeasible(NodeBudget) != Feasibility::Empty)
      return false;
  return true;
}

bool Region::containsPoint(const std::vector<IntT> &Vals) const {
  assert(Vals.size() == Base.size() && "point over a different space");
  for (const System &P : Pieces) {
    // Pin the base variables to the point and search for aux witnesses.
    System Pinned = P;
    bool BadMapping = false;
    for (unsigned I = 0, E = Base.size(); I != E; ++I) {
      int J = Pinned.space().indexOf(Base.name(I));
      if (J < 0) {
        BadMapping = true;
        break;
      }
      AffineExpr E2 = Pinned.varExpr(static_cast<unsigned>(J));
      Pinned.addEQ(E2.plusConst(-Vals[I]));
    }
    if (BadMapping)
      continue;
    if (Pinned.checkIntegerFeasible() == Feasibility::Feasible)
      return true;
  }
  return false;
}

namespace {

/// Expands equalities into inequality pairs.
std::vector<AffineExpr> asInequalities(const System &S) {
  std::vector<AffineExpr> Out;
  for (const Constraint &C : S.constraints()) {
    Out.push_back(C.Expr);
    if (C.isEquality())
      Out.push_back(C.Expr.negated());
  }
  return Out;
}

/// True if S entails E >= 0 (i.e. S and E <= -1 has no integer point).
bool entails(const System &S, const AffineExpr &E) {
  System Q = S;
  Q.addGE(E.negated().plusConst(-1));
  return Q.checkIntegerFeasible(projectionOptions().FeasibilityBudget) ==
         Feasibility::Empty;
}

} // namespace

std::optional<System> dmcc::coalesceSystems(const System &A,
                                            const System &B) {
  if (A.space() != B.space())
    return std::nullopt;
  System NA = A, NB = B;
  if (!NA.normalize())
    return B;
  if (!NB.normalize())
    return A;
  // The candidate hull: every face of one system that the other also
  // satisfies.
  System U(A.space());
  for (const AffineExpr &E : asInequalities(NA))
    if (entails(NB, E))
      U.addGE(E);
  for (const AffineExpr &E : asInequalities(NB))
    if (entails(NA, E))
      U.addGE(E);
  if (!U.normalize())
    return std::nullopt;
  // Exactness: the hull must not contain points outside A union B.
  Region R = Region::fromSystem(U);
  R = R.subtract(Region::fromSystem(NA));
  R = R.subtract(Region::fromSystem(NB));
  if (!R.isExact() || !R.isIntegerEmpty())
    return std::nullopt;
  System Out = std::move(U);
  Out.removeRedundant();
  return Out;
}

std::string Region::str() const {
  std::string S;
  for (unsigned I = 0, E = Pieces.size(); I != E; ++I) {
    S += "piece " + std::to_string(I) + " over " +
         Pieces[I].space().str() + ":\n";
    S += Pieces[I].str();
  }
  if (Pieces.empty())
    S = "(empty region)\n";
  return S;
}
