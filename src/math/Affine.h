//===- math/Affine.h - Affine expressions and constraints ------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer affine expressions over a Space, and the single-relation
/// constraints (Expr >= 0 / Expr == 0) that Section 4 of the paper uses to
/// represent iteration domains, access functions, decompositions and
/// last-write relations uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_MATH_AFFINE_H
#define DMCC_MATH_AFFINE_H

#include "math/Space.h"
#include "support/IntOps.h"

#include <string>
#include <vector>

namespace dmcc {

/// An integer affine expression  sum_i Coeffs[i] * v_i + Const  over the
/// first size() variables of some Space. The Space itself is not stored;
/// callers pair expressions with the System / Space they belong to.
class AffineExpr {
public:
  AffineExpr() = default;

  /// Creates the zero expression over \p NumVars variables.
  explicit AffineExpr(unsigned NumVars) : Coeffs(NumVars, 0) {}

  /// Creates the constant expression \p C.
  static AffineExpr constant(unsigned NumVars, IntT C) {
    AffineExpr E(NumVars);
    E.Cst = C;
    return E;
  }

  /// Creates the expression  C * v_I.
  static AffineExpr var(unsigned NumVars, unsigned I, IntT C = 1) {
    AffineExpr E(NumVars);
    E.coeff(I) = C;
    return E;
  }

  unsigned size() const { return Coeffs.size(); }

  IntT coeff(unsigned I) const {
    assert(I < Coeffs.size() && "coefficient index out of range");
    return Coeffs[I];
  }
  IntT &coeff(unsigned I) {
    assert(I < Coeffs.size() && "coefficient index out of range");
    return Coeffs[I];
  }

  IntT constant() const { return Cst; }
  IntT &constant() { return Cst; }

  AffineExpr &operator+=(const AffineExpr &O);
  AffineExpr &operator-=(const AffineExpr &O);

  friend AffineExpr operator+(AffineExpr A, const AffineExpr &B) {
    A += B;
    return A;
  }
  friend AffineExpr operator-(AffineExpr A, const AffineExpr &B) {
    A -= B;
    return A;
  }

  /// Multiplies every term by \p F.
  AffineExpr &scale(IntT F);

  /// Overflow-reporting variant of scale(): multiplies every term by
  /// \p F, returning false (leaving the expression partially scaled)
  /// instead of aborting when a term overflows. Callers that can name
  /// their context (e.g. Fourier-Motzkin combination) use this to fail
  /// with a better diagnostic than the raw arithmetic would.
  [[nodiscard]] bool scaleChecked(IntT F);

  /// Overflow-reporting variant of operator+=: returns false instead of
  /// aborting when a term overflows.
  [[nodiscard]] bool addChecked(const AffineExpr &O);

  /// Returns -this.
  AffineExpr negated() const;

  /// True iff O == -this, without materializing the negation.
  bool isNegationOf(const AffineExpr &O) const;

  /// Returns this + C.
  AffineExpr plusConst(IntT C) const;

  /// True if every coefficient is zero.
  bool isConstant() const;

  /// True if every coefficient and the constant are zero.
  bool isZero() const { return isConstant() && Cst == 0; }

  /// True if the coefficient of \p I is nonzero.
  bool involves(unsigned I) const { return coeff(I) != 0; }

  /// True if some coefficient is nonzero; returns its index in \p Idx.
  bool firstVar(unsigned &Idx) const;

  /// Replaces every occurrence of variable \p I with \p Repl (which must
  /// not itself involve \p I): this := this + coeff(I)*Repl, coeff(I) := 0.
  void substitute(unsigned I, const AffineExpr &Repl);

  /// Grows the expression for a newly appended variable (coefficient 0).
  void appendVar() { Coeffs.push_back(0); }

  /// Removes the coefficient slot of variable \p I; asserts it is zero.
  void removeVar(unsigned I);

  /// Gcd of all coefficients (not the constant); 0 for constant exprs.
  IntT coeffGcd() const;

  /// Divides every term (including the constant) by \p D; all terms must
  /// be divisible.
  void divExact(IntT D);

  /// Evaluates with Vals[i] as the value of v_i.
  IntT evaluate(const std::vector<IntT> &Vals) const;

  bool operator==(const AffineExpr &O) const = default;

  /// Renders e.g. "2*i - j + N - 1" using names from \p Sp.
  std::string str(const Space &Sp) const;

private:
  std::vector<IntT> Coeffs;
  IntT Cst = 0;
};

/// The relation a Constraint asserts about its expression.
enum class RelKind {
  GE, ///< Expr >= 0
  EQ, ///< Expr == 0
};

/// A single linear constraint  Expr >= 0  or  Expr == 0.
struct Constraint {
  AffineExpr Expr;
  RelKind Rel = RelKind::GE;

  Constraint() = default;
  Constraint(AffineExpr E, RelKind R) : Expr(std::move(E)), Rel(R) {}

  static Constraint ge(AffineExpr E) {
    return Constraint(std::move(E), RelKind::GE);
  }
  static Constraint eq(AffineExpr E) {
    return Constraint(std::move(E), RelKind::EQ);
  }

  bool isEquality() const { return Rel == RelKind::EQ; }

  /// True under the assignment \p Vals.
  bool holds(const std::vector<IntT> &Vals) const {
    IntT V = Expr.evaluate(Vals);
    return Rel == RelKind::EQ ? V == 0 : V >= 0;
  }

  bool operator==(const Constraint &O) const = default;

  /// Renders e.g. "i - 3 >= 0" using names from \p Sp.
  std::string str(const Space &Sp) const;
};

} // namespace dmcc

#endif // DMCC_MATH_AFFINE_H
