//===- math/Space.h - Named variable spaces --------------------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Space is an ordered list of named, typed variables. Every affine
/// expression and constraint system is interpreted relative to a Space.
/// The paper manipulates three base domains (iteration space, array space,
/// processor space) plus symbolic constants and the auxiliary variables
/// introduced for modulo/floor conditions (Section 4.4.2); VarKind tags
/// record which domain each dimension belongs to.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_MATH_SPACE_H
#define DMCC_MATH_SPACE_H

#include <cassert>
#include <string>
#include <vector>

namespace dmcc {

/// The role a variable plays. Purely informational except that Aux
/// variables are treated as existentially quantified when regions are
/// compared or subtracted.
enum class VarKind {
  Loop,  ///< a loop index (iteration-space dimension)
  Param, ///< a symbolic constant (unchanged within the analyzed region)
  Proc,  ///< a (virtual) processor dimension
  Data,  ///< an array-index dimension
  Aux,   ///< auxiliary existential variable (floor / modulo witness)
};

/// Returns a short human-readable tag for \p K ("loop", "param", ...).
const char *varKindName(VarKind K);

/// A single named variable.
struct Var {
  std::string Name;
  VarKind Kind;

  bool operator==(const Var &O) const = default;
};

/// An ordered list of variables; the coordinate system for AffineExpr and
/// System. Names must be unique within a Space.
class Space {
public:
  Space() = default;

  unsigned size() const { return Vars.size(); }
  bool empty() const { return Vars.empty(); }

  /// Appends a variable and returns its index. Asserts the name is unique.
  unsigned add(const std::string &Name, VarKind Kind);

  /// Returns the index of \p Name, or -1 if absent.
  int indexOf(const std::string &Name) const;

  /// Returns true if a variable named \p Name exists.
  bool contains(const std::string &Name) const { return indexOf(Name) >= 0; }

  const Var &var(unsigned I) const {
    assert(I < Vars.size() && "variable index out of range");
    return Vars[I];
  }

  const std::string &name(unsigned I) const { return var(I).Name; }
  VarKind kind(unsigned I) const { return var(I).Kind; }

  /// Removes the variable at index \p I (shifting later indices down).
  void remove(unsigned I);

  /// Returns the indices of all variables of kind \p K, in order.
  std::vector<unsigned> indicesOfKind(VarKind K) const;

  /// Returns a fresh variable name derived from \p Prefix that does not
  /// collide with any existing variable.
  std::string freshName(const std::string &Prefix) const;

  bool operator==(const Space &O) const = default;

  /// Renders as "[i:loop, N:param, ...]".
  std::string str() const;

private:
  std::vector<Var> Vars;
};

} // namespace dmcc

#endif // DMCC_MATH_SPACE_H
