//===- math/LexOpt.h - Parametric lexicographic optimization ---*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parametric lexicographic maximization/minimization over a polyhedron:
/// given a System over objective variables and parameters, compute, as a
/// piecewise affine function of the parameters, the lexicographically
/// extreme objective point. This is the engine behind Last Write Tree
/// construction (Section 3.1): the last write instance is the lex maximum
/// of the candidate write instances, and the case splits of the recursion
/// become the internal nodes of the tree.
///
/// The algorithm follows the paper's framework rather than Feautrier's
/// dual-simplex PIP: bounds on each objective are obtained by
/// Fourier-Motzkin projection, the active minimum upper bound is selected
/// by explicit case splits on rational bound comparisons (monotone under
/// floor, hence valid for integers), and non-unit divisors introduce
/// auxiliary floor variables exactly as Section 4.4.2 introduces auxiliary
/// variables for modulo constraints.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_MATH_LEXOPT_H
#define DMCC_MATH_LEXOPT_H

#include "math/System.h"

#include <string>
#include <vector>

namespace dmcc {

/// One leaf of the piecewise solution: within Context (over the parameter
/// variables plus any introduced Aux floor variables), the lexicographic
/// optimum assigns Values[k] to the k-th objective variable.
struct LexPiece {
  System Context;
  std::vector<AffineExpr> Values; ///< over Context.space()
};

/// A piecewise affine solution. Pieces are pairwise disjoint by
/// construction; parameter points in no piece have no solution (the
/// objective polyhedron is empty there).
struct LexResult {
  std::vector<LexPiece> Pieces;
  /// False if some Fourier-Motzkin step was inexact over the integers, in
  /// which case piece contexts may slightly over-approximate.
  bool Exact = true;

  std::string str() const;
};

/// Lexicographically maximizes the variables \p Objs (most significant
/// first) of \p S; all other variables are parameters. Every objective
/// must be bounded above within S (fatal error otherwise).
LexResult lexMax(const System &S, const std::vector<unsigned> &Objs);

/// Lexicographic minimum; same contract as lexMax with boundedness below.
LexResult lexMin(const System &S, const std::vector<unsigned> &Objs);

/// Evaluates a piecewise solution at a concrete parameter point. The point
/// assigns values to the variables of \p ParamSpace (matched by name in
/// each piece context); auxiliary floor variables are solved for
/// automatically. Returns the objective values, or nullopt if no piece
/// covers the point (no solution there).
std::optional<std::vector<IntT>> evaluatePiecewise(
    const LexResult &R, const Space &ParamSpace,
    const std::vector<IntT> &ParamVals);

} // namespace dmcc

#endif // DMCC_MATH_LEXOPT_H
