//===- math/Space.cpp -----------------------------------------*- C++ -*-===//

#include "math/Space.h"

using namespace dmcc;

const char *dmcc::varKindName(VarKind K) {
  switch (K) {
  case VarKind::Loop:
    return "loop";
  case VarKind::Param:
    return "param";
  case VarKind::Proc:
    return "proc";
  case VarKind::Data:
    return "data";
  case VarKind::Aux:
    return "aux";
  }
  return "?";
}

unsigned Space::add(const std::string &Name, VarKind Kind) {
  assert(indexOf(Name) < 0 && "duplicate variable name in space");
  Vars.push_back(Var{Name, Kind});
  return Vars.size() - 1;
}

int Space::indexOf(const std::string &Name) const {
  for (unsigned I = 0, E = Vars.size(); I != E; ++I)
    if (Vars[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

void Space::remove(unsigned I) {
  assert(I < Vars.size() && "variable index out of range");
  Vars.erase(Vars.begin() + I);
}

std::vector<unsigned> Space::indicesOfKind(VarKind K) const {
  std::vector<unsigned> Result;
  for (unsigned I = 0, E = Vars.size(); I != E; ++I)
    if (Vars[I].Kind == K)
      Result.push_back(I);
  return Result;
}

std::string Space::freshName(const std::string &Prefix) const {
  if (!contains(Prefix))
    return Prefix;
  for (unsigned N = 0;; ++N) {
    std::string Candidate = Prefix + "." + std::to_string(N);
    if (!contains(Candidate))
      return Candidate;
  }
}

std::string Space::str() const {
  std::string S = "[";
  for (unsigned I = 0, E = Vars.size(); I != E; ++I) {
    if (I)
      S += ", ";
    S += Vars[I].Name;
  }
  S += "]";
  return S;
}
