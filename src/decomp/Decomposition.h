//===- decomp/Decomposition.h - Data/computation decompositions *- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data and computation decompositions (Section 4.2/4.3). A decomposition
/// maps a source index space (array elements, or a statement's iterations)
/// onto a virtual processor grid; each mapped grid dimension d satisfies
///
///   Block*p_d - OverlapLo  <=  U_d(x) - Shift  <=  Block*(p_d+1) - 1 + OverlapHi
///
/// which covers the paper's block, cyclic (Block == 1 on a large virtual
/// grid, folded onto physical processors round-robin), shifted, skewed
/// (U_d with several nonzero entries) and overlapped/replicated layouts
/// (Figure 4). A dimension may also be fully replicated (no constraint):
/// every processor along it holds a copy. Computation decompositions use
/// the same shape without overlap or replication, so each iteration runs
/// on exactly one virtual processor (Definition 2).
///
/// Theorem 1 (owner-computes) is ownerComputes(): composing a data
/// decomposition with the write access function yields the computation
/// decomposition.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_DECOMP_DECOMPOSITION_H
#define DMCC_DECOMP_DECOMPOSITION_H

#include "ir/Program.h"
#include "math/System.h"

#include <optional>
#include <string>
#include <vector>

namespace dmcc {

/// One virtual-processor-grid dimension of a decomposition.
struct DecompDim {
  /// No constraint along this grid dimension: the data is replicated on
  /// every processor coordinate (data decompositions only).
  bool Replicated = false;
  /// U_d(x) - Shift, as an affine expression over the source space.
  AffineExpr Expr;
  /// Block size (>= 1). Cyclic layouts use Block == 1 over a virtual grid
  /// that is later folded onto the physical machine.
  IntT Block = 1;
  /// Extra elements owned below/above the block (border replication).
  IntT OverlapLo = 0, OverlapHi = 0;
};

/// A mapping of a source index space onto a virtual processor grid.
class Decomposition {
public:
  Decomposition() = default;
  Decomposition(Space SourceSpace, unsigned GridDims)
      : SourceSp(std::move(SourceSpace)),
        Dims(GridDims, DecompDim{true, AffineExpr(), 1, 0, 0}) {
    for (DecompDim &D : Dims)
      D.Expr = AffineExpr(SourceSp.size());
  }

  const Space &sourceSpace() const { return SourceSp; }
  unsigned numGridDims() const { return Dims.size(); }
  DecompDim &dim(unsigned D) { return Dims[D]; }
  const DecompDim &dim(unsigned D) const { return Dims[D]; }

  /// Maps grid dimension \p D by blocks of \p Block along \p Expr.
  void setBlock(unsigned D, AffineExpr Expr, IntT Block = 1,
                IntT OverlapLo = 0, IntT OverlapHi = 0);

  /// Replicates along grid dimension \p D.
  void setReplicated(unsigned D);

  /// True if an iteration/element is mapped to exactly one processor
  /// coordinate (no replication, no overlap): required of computation
  /// decompositions.
  bool isUnique() const;

  /// Emits the ownership constraints into \p S. SourceVals[k] gives the
  /// value (over S's space) of the k-th source-space variable; parameters
  /// are matched by name. ProcVars[d] is the index in S of the grid
  /// coordinate p_d.
  void addConstraints(System &S, const std::vector<AffineExpr> &SourceVals,
                      const std::vector<unsigned> &ProcVars) const;

  /// Convenience for the common case where S directly contains the source
  /// variables under their own names.
  void addConstraintsByName(System &S,
                            const std::vector<unsigned> &ProcVars) const;

  /// Concrete evaluation: the grid coordinate owning the given source
  /// point (values for every source-space variable, params included).
  /// Requires isUnique().
  std::vector<IntT> gridCoordinate(const std::vector<IntT> &SourceVals)
      const;

  /// Concrete evaluation: whether processor \p Coord holds a copy of the
  /// given source point (handles replication and overlap).
  bool owns(const std::vector<IntT> &SourceVals,
            const std::vector<IntT> &Coord) const;

  std::string str() const;

private:
  AffineExpr mapInto(const AffineExpr &E, const System &S,
                     const std::vector<AffineExpr> &SourceVals) const;

  Space SourceSp;
  std::vector<DecompDim> Dims;
};

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

/// Source space of array \p ArrayId: data dims a0..am-1 plus parameters.
Space arraySourceSpace(const Program &P, unsigned ArrayId);

/// Source space of statement \p StmtId: its loop variables plus params.
Space stmtSourceSpace(const Program &P, unsigned StmtId);

/// Distributes array dimension \p Dim in blocks of \p Block over a 1-D
/// grid; other dimensions are collapsed (owned whole).
Decomposition blockData(const Program &P, unsigned ArrayId, unsigned Dim,
                        IntT Block, IntT OverlapLo = 0, IntT OverlapHi = 0);

/// Cyclic distribution of array dimension \p Dim (virtual grid, block 1).
Decomposition cyclicData(const Program &P, unsigned ArrayId, unsigned Dim);

/// Full replication: every processor owns the whole array (1-D grid).
Decomposition replicatedData(const Program &P, unsigned ArrayId);

/// Distributes loop \p LoopPos (position in the statement's nest) of
/// statement \p StmtId in blocks of \p Block over a 1-D grid.
Decomposition blockComputation(const Program &P, unsigned StmtId,
                               unsigned LoopPos, IntT Block);

/// Cyclic distribution of loop \p LoopPos of statement \p StmtId.
Decomposition cyclicComputation(const Program &P, unsigned StmtId,
                                unsigned LoopPos);

/// Theorem 1: derives the computation decomposition of \p StmtId from the
/// data decomposition of the array it writes (owner-computes rule). The
/// data decomposition must not replicate written data (asserted).
Decomposition ownerComputes(const Program &P, unsigned StmtId,
                            const Decomposition &DataD);

/// The virtual-to-physical folding pi(p) = p mod PhysProcs (Section 4.1).
/// Emits, into \p S, constraints tying virtual coordinate \p VirtVar to
/// physical coordinate \p PhysVar via a fresh auxiliary quotient:
///   Virt == PhysProcs * q + Phys,  0 <= Phys < PhysProcs.
void addCyclicFold(System &S, unsigned VirtVar, unsigned PhysVar,
                   IntT PhysProcs);

} // namespace dmcc

#endif // DMCC_DECOMP_DECOMPOSITION_H
