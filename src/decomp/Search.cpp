//===- decomp/Search.cpp --------------------------------------*- C++ -*-===//

#include "decomp/Search.h"

#include <algorithm>
#include <cstdio>

using namespace dmcc;

namespace {

/// Block sizes to try along a dimension of extent \p E on \p Procs
/// processors: 1 (cyclic), doubling block-cyclic sizes, and the pure
/// block size ceil(E/Procs) — then trimmed from the middle down to
/// \p MaxChoices, so the cyclic and pure-block endpoints always stay
/// in the race.
std::vector<IntT> blockChoices(IntT E, IntT Procs, unsigned MaxChoices) {
  IntT Pure = std::max<IntT>(1, (E + Procs - 1) / Procs);
  std::vector<IntT> Out;
  for (IntT B = 1; B < Pure; B *= 2)
    Out.push_back(B);
  Out.push_back(Pure);
  if (MaxChoices < 2)
    MaxChoices = 2;
  while (Out.size() > MaxChoices)
    Out.erase(Out.begin() + static_cast<long>(Out.size() / 2));
  return Out;
}

} // namespace

std::vector<DecompCandidate>
dmcc::enumerateDecompositions(const Program &P, const CompileSpec *Hint,
                              const SearchOptions &SO) {
  std::vector<DecompCandidate> Out;
  if (Hint) {
    DecompCandidate C;
    C.Spec = *Hint;
    C.Desc = "hint (hand-written spec)";
    C.IsHint = true;
    Out.push_back(std::move(C));
  }

  // Extents need every parameter bound; with one missing the bounded
  // enumeration cannot size its blocks, so only the hint competes.
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I) {
    if (P.space().kind(I) != VarKind::Param)
      continue;
    auto It = SO.Params.find(P.space().name(I));
    if (It == SO.Params.end())
      return Out;
    Env[I] = It->second;
  }
  if (P.numArrays() == 0)
    return Out;

  // Final layouts cover what the hint asks to materialize — keeping the
  // finalization traffic a fixed part of every candidate's cost — or,
  // absent a hint, every written array.
  std::vector<unsigned> FinalIds;
  if (Hint) {
    for (const auto &[AId, FD] : Hint->FinalData) {
      (void)FD;
      FinalIds.push_back(AId);
    }
  } else {
    for (unsigned S = 0; S != P.numStatements(); ++S) {
      unsigned AId = P.statement(S).Write.ArrayId;
      if (std::find(FinalIds.begin(), FinalIds.end(), AId) ==
          FinalIds.end())
        FinalIds.push_back(AId);
    }
  }

  unsigned MaxRank = 0;
  for (unsigned A = 0; A != P.numArrays(); ++A)
    MaxRank = std::max<unsigned>(MaxRank, P.array(A).DimSizes.size());

  for (unsigned Dim = 0; Dim != MaxRank; ++Dim) {
    // The block axis is sized by the largest extent any array spans
    // along this (clamped) dimension, so one choice set serves all.
    IntT MaxExtent = 0;
    for (unsigned A = 0; A != P.numArrays(); ++A) {
      const ArrayDecl &AD = P.array(A);
      if (AD.DimSizes.empty())
        continue;
      unsigned D = std::min<unsigned>(Dim, AD.DimSizes.size() - 1);
      MaxExtent = std::max<IntT>(MaxExtent, AD.DimSizes[D].evaluate(Env));
    }
    if (MaxExtent <= 0)
      continue;
    for (IntT Block : blockChoices(MaxExtent, SO.Procs,
                                   SO.MaxBlockChoices)) {
      DecompCandidate C;
      C.Dim = Dim;
      C.Block = Block;
      IntT Pure =
          std::max<IntT>(1, (MaxExtent + SO.Procs - 1) / SO.Procs);
      char Buf[64];
      if (Block == 1)
        std::snprintf(Buf, sizeof Buf, "cyclic(dim %u)", Dim);
      else if (Block == Pure)
        std::snprintf(Buf, sizeof Buf, "block(dim %u, %lld)", Dim,
                      static_cast<long long>(Block));
      else
        std::snprintf(Buf, sizeof Buf, "block-cyclic(dim %u, %lld)", Dim,
                      static_cast<long long>(Block));
      C.Desc = Buf;
      bool Feasible = true;
      for (unsigned A = 0; A != P.numArrays(); ++A) {
        const ArrayDecl &AD = P.array(A);
        if (AD.DimSizes.empty()) {
          Feasible = false;
          break;
        }
        unsigned D = std::min<unsigned>(Dim, AD.DimSizes.size() - 1);
        C.Spec.InitialData.emplace(A,
                                   blockData(P, A, D, Block));
      }
      if (!Feasible)
        continue;
      for (unsigned AId : FinalIds)
        C.Spec.FinalData.emplace(AId, C.Spec.InitialData.at(AId));
      // Theorem 1: computation follows the written array's layout.
      // blockData never replicates, so the precondition always holds.
      for (unsigned S = 0; S != P.numStatements(); ++S) {
        unsigned AId = P.statement(S).Write.ArrayId;
        C.Spec.Stmts.push_back(
            StmtPlan{S, ownerComputes(P, S, C.Spec.InitialData.at(AId))});
      }
      Out.push_back(std::move(C));
    }
  }
  return Out;
}

SearchResult dmcc::searchDecompositions(const Program &P,
                                        const CompileSpec *Hint,
                                        const SearchOptions &SO) {
  SearchResult R;
  std::vector<DecompCandidate> Cands = enumerateDecompositions(P, Hint, SO);
  if (Cands.empty()) {
    R.Error = "no candidates: the program has no arrays and no hint "
              "was given";
    return R;
  }

  std::vector<CompileSpec> Specs;
  Specs.reserve(Cands.size());
  for (const DecompCandidate &C : Cands)
    Specs.push_back(C.Spec);

  ScoreOptions SC;
  SC.Procs = SO.Procs;
  SC.Params = SO.Params;
  SC.Compile = SO.Compile;
  SC.Jobs = SO.Jobs;
  SC.TimeoutSeconds = SO.TimeoutSeconds;
  SC.Engine = SO.Engine;
  std::vector<SpecScore> Scores = scoreSpecs(P, Specs, SC);

  R.Candidates.reserve(Cands.size());
  for (size_t I = 0; I != Cands.size(); ++I)
    R.Candidates.push_back(
        ScoredCandidate{std::move(Cands[I]), std::move(Scores[I])});

  for (size_t I = 0; I != R.Candidates.size(); ++I) {
    const SpecScore &S = R.Candidates[I].Score;
    if (!S.Ok)
      continue;
    // Strict comparison: ties keep the earliest candidate, so a hint
    // tied with an enumerated twin still wins.
    if (R.BestIndex < 0 ||
        S.MakespanSeconds <
            R.Candidates[static_cast<size_t>(R.BestIndex)]
                .Score.MakespanSeconds)
      R.BestIndex = static_cast<int>(I);
  }
  if (R.BestIndex < 0)
    R.Error = "no feasible candidate: every spec failed to compile or "
              "simulate";
  return R;
}
