//===- decomp/Search.h - Decomposition auto-search --------------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automatic decomposition selection. The paper (Section 4.2) assumes
/// the decompositions are given — by the programmer or by an earlier
/// alignment/distribution phase. This subsystem supplies a bounded
/// version of that phase: enumerate a candidate space of affine
/// decompositions, compile every candidate through the full pipeline,
/// score each by simulated makespan (sim/Score.h), and return the
/// argmin.
///
/// The candidate space, deliberately bounded so the search stays a few
/// dozen compiles:
///
///  - Distributed dimension: every array dimension position up to the
///    largest array rank; each array distributes the same position
///    (clamped to its own rank), which keeps co-indexed arrays aligned.
///  - Distribution style: block size along the virtual grid, covering
///    the classic trio — Block == 1 is cyclic, Block == ceil(E/P) is
///    pure block, anything between is block-cyclic. Sizes are powers
///    of two plus the pure-block size, trimmed to MaxBlockChoices.
///  - Computation decompositions follow by owner-computes (Theorem 1)
///    from the written array's candidate layout.
///  - Processor grid: 1-D only (the pipeline's default GridDims). The
///    physical processor count is fixed by the caller; multidimensional
///    grid shapes are out of scope for the bounded search and belong to
///    the caller via SearchOptions::Compile.GridDims == 1 candidates.
///
/// A hand-written hint spec (e.g. the directives parsed from a .dm
/// file) is always candidate 0, and ties break toward the lowest index
/// — so the search result is never worse than the hint: at minimum it
/// returns the hint itself. Overlapped/replicated hint layouts are
/// thereby kept in the race even though the enumerator itself never
/// proposes them.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_DECOMP_SEARCH_H
#define DMCC_DECOMP_SEARCH_H

#include "sim/Score.h"

#include <string>
#include <vector>

namespace dmcc {

/// One point of the candidate space.
struct DecompCandidate {
  CompileSpec Spec;
  std::string Desc; ///< human-readable, e.g. "block(dim 0, 4)"
  bool IsHint = false;
  unsigned Dim = 0; ///< distributed dimension (meaningless for hints)
  IntT Block = 0;   ///< block size (meaningless for hints)
};

/// Search tuning. Procs/Params/Jobs/TimeoutSeconds/Compile/Engine feed
/// straight into the scorer (sim/Score.h).
struct SearchOptions {
  IntT Procs = 4;
  std::map<std::string, IntT> Params;
  CompilerOptions Compile;
  unsigned Jobs = 4;
  double TimeoutSeconds = 60;
  /// Bound on the block-size axis per dimension (>= 2 keeps at least
  /// cyclic and pure block in the race).
  unsigned MaxBlockChoices = 4;
  SimEngine Engine = SimEngine::Rounds;
};

/// A candidate with its score attached.
struct ScoredCandidate {
  DecompCandidate Cand;
  SpecScore Score;
};

/// The outcome of a search.
struct SearchResult {
  /// Every candidate in enumeration order (hint first when given),
  /// scores attached — infeasible candidates included, with the reason
  /// in Score.Error.
  std::vector<ScoredCandidate> Candidates;
  /// Index of the makespan argmin among feasible candidates; ties break
  /// toward the lowest index. -1 when nothing was feasible.
  int BestIndex = -1;
  std::string Error; ///< non-empty iff BestIndex == -1

  bool ok() const { return BestIndex >= 0; }
  const ScoredCandidate &best() const {
    return Candidates[static_cast<size_t>(BestIndex)];
  }
};

/// Enumerates the bounded candidate space for \p P. \p Hint, when
/// non-null, becomes candidate 0. Every program parameter must be bound
/// in \p SO.Params (extents feed the block-size axis).
std::vector<DecompCandidate> enumerateDecompositions(
    const Program &P, const CompileSpec *Hint, const SearchOptions &SO);

/// Enumerates, scores (forking; the caller must not hold live
/// threads), and ranks. See SearchResult for the tie-breaking
/// guarantee that makes the result never worse than the hint.
SearchResult searchDecompositions(const Program &P, const CompileSpec *Hint,
                                  const SearchOptions &SO);

} // namespace dmcc

#endif // DMCC_DECOMP_SEARCH_H
