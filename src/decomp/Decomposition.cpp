//===- decomp/Decomposition.cpp -------------------------------*- C++ -*-===//

#include "decomp/Decomposition.h"

using namespace dmcc;

void Decomposition::setBlock(unsigned D, AffineExpr Expr, IntT Block,
                             IntT OverlapLo, IntT OverlapHi) {
  assert(D < Dims.size() && "grid dimension out of range");
  assert(Expr.size() == SourceSp.size() &&
         "expression over a different source space");
  assert(Block >= 1 && "block size must be positive");
  Dims[D] = DecompDim{false, std::move(Expr), Block, OverlapLo, OverlapHi};
}

void Decomposition::setReplicated(unsigned D) {
  assert(D < Dims.size() && "grid dimension out of range");
  Dims[D] = DecompDim{true, AffineExpr(SourceSp.size()), 1, 0, 0};
}

bool Decomposition::isUnique() const {
  for (const DecompDim &D : Dims)
    if (D.Replicated || D.OverlapLo != 0 || D.OverlapHi != 0)
      return false;
  return true;
}

AffineExpr Decomposition::mapInto(
    const AffineExpr &E, const System &S,
    const std::vector<AffineExpr> &SourceVals) const {
  AffineExpr R = S.constExpr(E.constant());
  for (unsigned K = 0, KE = SourceSp.size(); K != KE; ++K) {
    IntT C = E.coeff(K);
    if (C == 0)
      continue;
    if (SourceSp.kind(K) == VarKind::Param) {
      int J = S.space().indexOf(SourceSp.name(K));
      if (J < 0)
        fatalError("decomposition parameter missing in target space");
      R += AffineExpr::var(S.numVars(), static_cast<unsigned>(J), C);
    } else {
      AffineExpr V = SourceVals[K];
      V.scale(C);
      R += V;
    }
  }
  return R;
}

void Decomposition::addConstraints(
    System &S, const std::vector<AffineExpr> &SourceVals,
    const std::vector<unsigned> &ProcVars) const {
  assert(ProcVars.size() == Dims.size() && "wrong number of grid vars");
  assert(SourceVals.size() == SourceSp.size() &&
         "wrong number of source values");
  for (unsigned D = 0, E = Dims.size(); D != E; ++D) {
    const DecompDim &Dim = Dims[D];
    if (Dim.Replicated)
      continue;
    AffineExpr V = mapInto(Dim.Expr, S, SourceVals);
    AffineExpr BP = S.varExpr(ProcVars[D]);
    BP.scale(Dim.Block);
    // Block*p - OverlapLo <= V.
    S.addGE(V - BP.plusConst(-Dim.OverlapLo));
    // V <= Block*p + Block - 1 + OverlapHi.
    S.addGE(BP.plusConst(Dim.Block - 1 + Dim.OverlapHi) - V);
  }
}

void Decomposition::addConstraintsByName(
    System &S, const std::vector<unsigned> &ProcVars) const {
  std::vector<AffineExpr> Vals;
  for (unsigned K = 0, E = SourceSp.size(); K != E; ++K) {
    if (SourceSp.kind(K) == VarKind::Param) {
      Vals.push_back(AffineExpr(S.numVars())); // unused for params
      continue;
    }
    int J = S.space().indexOf(SourceSp.name(K));
    if (J < 0)
      fatalError("decomposition source variable missing in target space");
    Vals.push_back(S.varExpr(static_cast<unsigned>(J)));
  }
  addConstraints(S, Vals, ProcVars);
}

std::vector<IntT> Decomposition::gridCoordinate(
    const std::vector<IntT> &SourceVals) const {
  assert(isUnique() && "gridCoordinate requires a unique decomposition");
  std::vector<IntT> Out;
  for (const DecompDim &D : Dims)
    Out.push_back(floorDiv(D.Expr.evaluate(SourceVals), D.Block));
  return Out;
}

bool Decomposition::owns(const std::vector<IntT> &SourceVals,
                         const std::vector<IntT> &Coord) const {
  assert(Coord.size() == Dims.size() && "wrong grid arity");
  for (unsigned D = 0, E = Dims.size(); D != E; ++D) {
    const DecompDim &Dim = Dims[D];
    if (Dim.Replicated)
      continue;
    IntT V = Dim.Expr.evaluate(SourceVals);
    IntT Lo = Dim.Block * Coord[D] - Dim.OverlapLo;
    IntT Hi = Dim.Block * (Coord[D] + 1) - 1 + Dim.OverlapHi;
    if (V < Lo || V > Hi)
      return false;
  }
  return true;
}

std::string Decomposition::str() const {
  std::string Out = "decomposition over " + SourceSp.str() + ":\n";
  for (unsigned D = 0, E = Dims.size(); D != E; ++D) {
    Out += "  p" + std::to_string(D) + ": ";
    if (Dims[D].Replicated) {
      Out += "replicated\n";
      continue;
    }
    Out += "block " + std::to_string(Dims[D].Block) + " of " +
           Dims[D].Expr.str(SourceSp);
    if (Dims[D].OverlapLo || Dims[D].OverlapHi)
      Out += " overlap(" + std::to_string(Dims[D].OverlapLo) + ", " +
             std::to_string(Dims[D].OverlapHi) + ")";
    Out += "\n";
  }
  return Out;
}

Space dmcc::arraySourceSpace(const Program &P, unsigned ArrayId) {
  Space Sp;
  for (unsigned D = 0, E = P.array(ArrayId).DimSizes.size(); D != E; ++D)
    Sp.add("a" + std::to_string(D), VarKind::Data);
  for (unsigned I = 0, E = P.space().size(); I != E; ++I)
    if (P.space().kind(I) == VarKind::Param)
      Sp.add(P.space().name(I), VarKind::Param);
  return Sp;
}

Space dmcc::stmtSourceSpace(const Program &P, unsigned StmtId) {
  return P.domainOf(StmtId).space();
}

Decomposition dmcc::blockData(const Program &P, unsigned ArrayId,
                              unsigned Dim, IntT Block, IntT OverlapLo,
                              IntT OverlapHi) {
  Space Sp = arraySourceSpace(P, ArrayId);
  Decomposition D(Sp, 1);
  D.setBlock(0, AffineExpr::var(Sp.size(), Dim), Block, OverlapLo,
             OverlapHi);
  return D;
}

Decomposition dmcc::cyclicData(const Program &P, unsigned ArrayId,
                               unsigned Dim) {
  return blockData(P, ArrayId, Dim, /*Block=*/1);
}

Decomposition dmcc::replicatedData(const Program &P, unsigned ArrayId) {
  Space Sp = arraySourceSpace(P, ArrayId);
  Decomposition D(Sp, 1);
  D.setReplicated(0);
  return D;
}

Decomposition dmcc::blockComputation(const Program &P, unsigned StmtId,
                                     unsigned LoopPos, IntT Block) {
  Space Sp = stmtSourceSpace(P, StmtId);
  assert(LoopPos < P.statement(StmtId).depth() && "loop position invalid");
  Decomposition D(Sp, 1);
  D.setBlock(0, AffineExpr::var(Sp.size(), LoopPos), Block);
  return D;
}

Decomposition dmcc::cyclicComputation(const Program &P, unsigned StmtId,
                                      unsigned LoopPos) {
  return blockComputation(P, StmtId, LoopPos, /*Block=*/1);
}

Decomposition dmcc::ownerComputes(const Program &P, unsigned StmtId,
                                  const Decomposition &DataD) {
  const Statement &S = P.statement(StmtId);
  Space ISp = stmtSourceSpace(P, StmtId);
  Decomposition Out(ISp, DataD.numGridDims());
  // Write access indices as expressions over the iteration source space.
  std::vector<AffineExpr> FW;
  for (const AffineExpr &E : S.Write.Indices)
    FW.push_back(mapExpr(E, P.space(), ISp));
  for (unsigned D = 0, E = DataD.numGridDims(); D != E; ++D) {
    const DecompDim &DD = DataD.dim(D);
    assert(!DD.Replicated && DD.OverlapLo == 0 && DD.OverlapHi == 0 &&
           "owner-computes requires written data not be replicated "
           "(Section 2.2.1)");
    // Compose DD.Expr with the write access function.
    AffineExpr Composed = AffineExpr::constant(ISp.size(),
                                               DD.Expr.constant());
    const Space &ASp = DataD.sourceSpace();
    for (unsigned K = 0, KE = ASp.size(); K != KE; ++K) {
      IntT C = DD.Expr.coeff(K);
      if (C == 0)
        continue;
      if (ASp.kind(K) == VarKind::Param) {
        int J = ISp.indexOf(ASp.name(K));
        assert(J >= 0 && "parameter missing in iteration space");
        Composed += AffineExpr::var(ISp.size(), static_cast<unsigned>(J), C);
      } else {
        assert(K < FW.size() && "data dimension beyond access arity");
        AffineExpr V = FW[K];
        V.scale(C);
        Composed += V;
      }
    }
    Out.setBlock(D, std::move(Composed), DD.Block);
  }
  return Out;
}

void dmcc::addCyclicFold(System &S, unsigned VirtVar, unsigned PhysVar,
                         IntT PhysProcs) {
  assert(PhysProcs >= 1 && "need at least one physical processor");
  unsigned Q = S.addVar(S.space().freshName("@fold"), VarKind::Aux);
  // Virt == PhysProcs * q + Phys.
  AffineExpr E = S.varExpr(VirtVar);
  E -= AffineExpr::var(S.numVars(), Q, PhysProcs);
  E -= S.varExpr(PhysVar);
  S.addEQ(std::move(E));
  S.addGE(S.varExpr(PhysVar));
  S.addGE(S.constExpr(PhysProcs - 1) - S.varExpr(PhysVar));
  S.addGE(S.varExpr(Q));
}
