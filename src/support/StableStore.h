//===- support/StableStore.h - Durable CRC-framed state store --*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small durable-storage layer shared by the simulator's on-disk
/// checkpoints and the fleet runner's resume journal (DESIGN.md §13).
///
/// Everything on disk is a sequence of *frames*:
///
///   [u32 magic][u32 version][u32 type][u64 payload-len][u32 crc32][payload]
///
/// all fields little-endian, crc32 covering the payload bytes only. A
/// reader accepts the longest valid prefix of a file and reports whether
/// a torn or corrupt tail was discarded — the write paths guarantee that
/// a crash at any instant leaves at most one damaged trailing frame:
///
///  - atomicWriteFile: write temp file in the same directory, fsync it,
///    rename() over the target, fsync the directory. Readers never see a
///    partial file, only the old or the new content.
///  - JournalWriter: O_APPEND writes of whole frames, fdatasync after
///    each. A crash mid-append leaves a torn final frame which the
///    reader drops (and resume truncates before appending again).
///
/// Payloads are built with ByteWriter / parsed with ByteReader; doubles
/// travel as their IEEE-754 bit patterns so round-trips are bit-exact.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_SUPPORT_STABLESTORE_H
#define DMCC_SUPPORT_STABLESTORE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace dmcc {
namespace stable {

/// Bumped whenever the frame header layout changes. Payload layouts are
/// versioned separately by their owners (checkpoint image, journal).
constexpr uint32_t FormatVersion = 1;

/// "DMSF" — dmcc stable frame.
constexpr uint32_t FrameMagic = 0x444D5346u;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of \p N bytes at \p Data.
/// crc32("123456789") == 0xCBF43926.
uint32_t crc32(const void *Data, size_t N);

//===----------------------------------------------------------------------===//
// Payload encoding
//===----------------------------------------------------------------------===//

/// Appends little-endian primitives to a byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  /// Doubles are serialized as their raw bit pattern: the round-trip is
  /// bit-exact, which the durable differential tests rely on.
  void f64(double V) {
    uint64_t B;
    static_assert(sizeof(B) == sizeof(V));
    std::memcpy(&B, &V, sizeof(B));
    u64(B);
  }
  void str(const std::string &S) {
    u64(S.size());
    Buf.insert(Buf.end(), S.begin(), S.end());
  }

  const std::vector<uint8_t> &bytes() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Consumes little-endian primitives from a byte buffer. Reads past the
/// end set a sticky failure flag and return zeros instead of invoking
/// UB, so parsers can decode a whole record and check ok() once.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t N) : Data(Data), N(N) {}
  explicit ByteReader(const std::vector<uint8_t> &V)
      : Data(V.data()), N(V.size()) {}

  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[Pos++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t B = u64();
    double V;
    std::memcpy(&V, &B, sizeof(V));
    return V;
  }
  std::string str() {
    uint64_t Len = u64();
    if (Len > N - Pos || !need(static_cast<size_t>(Len)))
      return (Failed = true, std::string());
    std::string S(reinterpret_cast<const char *>(Data + Pos),
                  static_cast<size_t>(Len));
    Pos += static_cast<size_t>(Len);
    return S;
  }

  /// True iff every read so far was in bounds.
  bool ok() const { return !Failed; }
  /// True iff the whole buffer was consumed exactly.
  bool atEnd() const { return !Failed && Pos == N; }
  size_t remaining() const { return Failed ? 0 : N - Pos; }

private:
  bool need(size_t K) {
    if (Failed || N - Pos < K) {
      Failed = true;
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t N;
  size_t Pos = 0;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

/// One decoded frame: an application-defined type tag plus its payload.
struct Frame {
  uint32_t Type = 0;
  std::vector<uint8_t> Payload;
};

/// Encodes one frame (header + payload) ready to be written to disk.
std::vector<uint8_t> encodeFrame(uint32_t Type,
                                 const std::vector<uint8_t> &Payload);

/// Result of scanning a file for frames. The scan accepts the longest
/// prefix of structurally valid, CRC-clean frames and stops at the first
/// damage; \c ValidBytes is the byte length of that prefix (the safe
/// truncation point before appending).
struct ReadFramesResult {
  std::vector<Frame> Frames;
  /// True iff trailing bytes after the valid prefix were discarded
  /// (torn frame, bad magic/version, CRC mismatch, stray garbage).
  bool TornTail = false;
  /// Length in bytes of the valid frame prefix.
  uint64_t ValidBytes = 0;
  /// Non-empty iff the file could not be opened/read at all. A missing
  /// file is reported here (callers treat it as "no state yet").
  std::string Error;

  bool intact() const { return Error.empty() && !TornTail; }
};

/// Reads every intact frame from \p Path (see ReadFramesResult).
ReadFramesResult readFrames(const std::string &Path);

//===----------------------------------------------------------------------===//
// Durable writes
//===----------------------------------------------------------------------===//

/// Atomically replaces \p Path with \p N bytes at \p Data: temp file in
/// the same directory + fsync + rename + directory fsync. On failure
/// returns false with a description in \p Err and leaves any existing
/// \p Path untouched.
bool atomicWriteFile(const std::string &Path, const void *Data, size_t N,
                     std::string &Err);

inline bool atomicWriteFile(const std::string &Path,
                            const std::vector<uint8_t> &Data,
                            std::string &Err) {
  return atomicWriteFile(Path, Data.data(), Data.size(), Err);
}
bool atomicWriteFile(const std::string &Path, const std::string &Data,
                     std::string &Err);

/// Creates directory \p Dir if it does not exist (one level, like
/// mkdir). Returns false with \p Err on failure; an existing directory
/// is success.
bool ensureDir(const std::string &Dir, std::string &Err);

/// Lists regular files in \p Dir whose names start with \p Prefix and
/// end with \p Suffix, sorted ascending by name. Returns an empty list
/// for a missing directory.
std::vector<std::string> listFiles(const std::string &Dir,
                                   const std::string &Prefix,
                                   const std::string &Suffix);

/// Append-only frame journal. Each append writes one whole frame with a
/// single write(2) followed by fdatasync, so the on-disk file is always
/// a valid frame sequence plus at most one torn tail.
class JournalWriter {
public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter &) = delete;
  JournalWriter &operator=(const JournalWriter &) = delete;

  /// Opens (creating if needed) \p Path and truncates it to
  /// \p TruncateTo bytes first — pass ReadFramesResult::ValidBytes when
  /// resuming to cut a torn tail, or 0 to start a fresh journal.
  bool open(const std::string &Path, uint64_t TruncateTo, std::string &Err);

  /// Appends one frame and flushes it to stable storage.
  bool append(uint32_t Type, const std::vector<uint8_t> &Payload,
              std::string &Err);

  bool isOpen() const { return Fd >= 0; }
  void close();

private:
  int Fd = -1;
  std::string Path;
};

} // namespace stable
} // namespace dmcc

#endif // DMCC_SUPPORT_STABLESTORE_H
