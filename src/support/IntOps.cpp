//===- support/IntOps.cpp -------------------------------------*- C++ -*-===//

#include "support/IntOps.h"

#include <cstdio>

using namespace dmcc;

void dmcc::fatalError(const char *Msg) {
  std::fprintf(stderr, "dmcc fatal error: %s\n", Msg);
  std::abort();
}

void dmcc::overflowError(const char *Op, IntT A, IntT B) {
  std::fprintf(stderr,
               "dmcc fatal error: integer overflow: %lld %s %lld "
               "exceeds the 64-bit coefficient range\n",
               static_cast<long long>(A), Op, static_cast<long long>(B));
  std::abort();
}

IntT dmcc::gcdInt(IntT A, IntT B) {
  A = absChk(A);
  B = absChk(B);
  while (B != 0) {
    IntT T = A % B;
    A = B;
    B = T;
  }
  return A;
}

IntT dmcc::lcmInt(IntT A, IntT B) {
  if (A == 0 || B == 0)
    return 0;
  IntT G = gcdInt(A, B);
  return mulChk(absChk(A) / G, absChk(B));
}
