//===- support/IntOps.cpp -------------------------------------*- C++ -*-===//

#include "support/IntOps.h"

#include "support/ExitCodes.h"

#include <cstdio>

using namespace dmcc;

// Invariant violations exit with the taxonomy's internal-error code
// (ExitCodes.h) via _Exit: supervisors distinguish "dmcc bug" from
// compile/simulation failures by status alone, and skipping atexit
// handlers keeps the death as abrupt as the abort() it replaces.
void dmcc::fatalError(const char *Msg) {
  std::fprintf(stderr, "dmcc fatal error: %s\n", Msg);
  std::_Exit(ExitInternal);
}

void dmcc::overflowError(const char *Op, IntT A, IntT B) {
  std::fprintf(stderr,
               "dmcc fatal error: integer overflow: %lld %s %lld "
               "exceeds the 64-bit coefficient range\n",
               static_cast<long long>(A), Op, static_cast<long long>(B));
  std::_Exit(ExitInternal);
}

IntT dmcc::gcdInt(IntT A, IntT B) {
  A = absChk(A);
  B = absChk(B);
  while (B != 0) {
    IntT T = A % B;
    A = B;
    B = T;
  }
  return A;
}

IntT dmcc::lcmInt(IntT A, IntT B) {
  if (A == 0 || B == 0)
    return 0;
  IntT G = gcdInt(A, B);
  return mulChk(absChk(A) / G, absChk(B));
}
