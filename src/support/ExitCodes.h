//===- support/ExitCodes.h - Process exit-code taxonomy --------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process exit-code taxonomy shared by the dmcc command-line tools
/// and the fleet orchestrator. Scripted callers (the fleet runner, CI,
/// shell pipelines) classify a failed run by its exit status alone,
/// without parsing stderr — so these values are a stable contract:
/// append new codes, never renumber existing ones.
///
/// Signal deaths are reported by the OS (wait status / 128+N shells) and
/// deliberately do not overlap: every code here is below 128, and the
/// conventional sysexits range is avoided except for EX_SOFTWARE (70),
/// which we reuse for internal invariant violations.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_SUPPORT_EXITCODES_H
#define DMCC_SUPPORT_EXITCODES_H

namespace dmcc {

enum ExitCode : int {
  /// The requested work completed (for a simulation: every processor
  /// drained its program and, if verification ran, the results matched).
  ExitSuccess = 0,
  /// Bad invocation: unknown flag, missing or malformed flag value, a
  /// probability outside [0, 1], or an otherwise out-of-range knob.
  /// Nothing was compiled or simulated.
  ExitUsage = 2,
  /// The input program failed to parse or compile.
  ExitCompileError = 3,
  /// The simulation deadlocked: some processor blocked forever on a
  /// receive (or the scheduler made no progress), with no transport
  /// failure to blame.
  ExitDeadlock = 4,
  /// The reliable transport gave up on at least one packet after
  /// exhausting its retry budget (hostile network stronger than the
  /// configured MaxRetries/backoff could absorb).
  ExitRetryExhausted = 5,
  /// The simulation completed but its final arrays differ from the
  /// sequential reference execution.
  ExitVerifyMismatch = 6,
  /// A durable-storage operation failed: the fleet report or resume
  /// journal could not be written/fsynced/renamed, or a durable
  /// checkpoint directory could not be created. The simulation itself
  /// may have been fine; the host filesystem was not.
  ExitIo = 7,
  /// Internal invariant violation (fatalError/overflowError): a dmcc
  /// bug, not a property of the input. Matches sysexits EX_SOFTWARE.
  ExitInternal = 70,
};

} // namespace dmcc

#endif // DMCC_SUPPORT_EXITCODES_H
