//===- support/StableStore.cpp - Durable CRC-framed state store -----------===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//

#include "support/StableStore.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace dmcc {
namespace stable {

//===----------------------------------------------------------------------===//
// CRC-32
//===----------------------------------------------------------------------===//

namespace {

struct CrcTable {
  uint32_t T[256];
  CrcTable() {
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
  }
};

std::string errnoStr(const char *What, const std::string &Path) {
  return std::string(What) + " " + Path + ": " + std::strerror(errno);
}

/// Frame header: magic, version, type, payload length, payload crc.
constexpr size_t HeaderBytes = 4 + 4 + 4 + 8 + 4;

/// Upper bound on a single frame payload (1 GiB) — rejects absurd
/// lengths decoded from corrupt headers before any allocation.
constexpr uint64_t MaxPayloadBytes = uint64_t(1) << 30;

} // namespace

uint32_t crc32(const void *Data, size_t N) {
  static const CrcTable Tbl;
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I < N; ++I)
    C = Tbl.T[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

std::vector<uint8_t> encodeFrame(uint32_t Type,
                                 const std::vector<uint8_t> &Payload) {
  ByteWriter W;
  W.u32(FrameMagic);
  W.u32(FormatVersion);
  W.u32(Type);
  W.u64(Payload.size());
  W.u32(crc32(Payload.data(), Payload.size()));
  std::vector<uint8_t> Out = W.take();
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

ReadFramesResult readFrames(const std::string &Path) {
  ReadFramesResult R;
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    R.Error = errnoStr("open", Path);
    return R;
  }
  std::vector<uint8_t> Bytes;
  uint8_t Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + Got);
  bool ReadErr = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadErr) {
    R.Error = errnoStr("read", Path);
    return R;
  }

  size_t Pos = 0;
  while (Bytes.size() - Pos >= HeaderBytes) {
    ByteReader H(Bytes.data() + Pos, HeaderBytes);
    uint32_t Magic = H.u32(), Version = H.u32(), Type = H.u32();
    uint64_t Len = H.u64();
    uint32_t Crc = H.u32();
    if (Magic != FrameMagic || Version != FormatVersion ||
        Len > MaxPayloadBytes)
      break; // stray bytes or incompatible frame: stop, drop the tail
    if (Bytes.size() - Pos - HeaderBytes < Len)
      break; // torn frame: header written, payload incomplete
    const uint8_t *P = Bytes.data() + Pos + HeaderBytes;
    if (crc32(P, static_cast<size_t>(Len)) != Crc)
      break; // bit damage inside the payload
    Frame Fr;
    Fr.Type = Type;
    Fr.Payload.assign(P, P + Len);
    R.Frames.push_back(std::move(Fr));
    Pos += HeaderBytes + static_cast<size_t>(Len);
  }
  R.ValidBytes = Pos;
  R.TornTail = Pos != Bytes.size();
  return R;
}

//===----------------------------------------------------------------------===//
// Durable writes
//===----------------------------------------------------------------------===//

namespace {

/// fsyncs the directory containing \p Path so a rename/creation in it
/// survives a crash. Best-effort: some filesystems reject O_RDONLY
/// directory fsync; those errors are ignored.
void syncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    (void)::fsync(Fd);
    ::close(Fd);
  }
}

} // namespace

bool atomicWriteFile(const std::string &Path, const void *Data, size_t N,
                     std::string &Err) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Err = errnoStr("open", Tmp);
    return false;
  }
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  size_t Off = 0;
  while (Off < N) {
    ssize_t W = ::write(Fd, P + Off, N - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoStr("write", Tmp);
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  if (::fsync(Fd) != 0) {
    Err = errnoStr("fsync", Tmp);
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  }
  if (::close(Fd) != 0) {
    Err = errnoStr("close", Tmp);
    ::unlink(Tmp.c_str());
    return false;
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Err = errnoStr("rename", Tmp);
    ::unlink(Tmp.c_str());
    return false;
  }
  syncParentDir(Path);
  return true;
}

bool atomicWriteFile(const std::string &Path, const std::string &Data,
                     std::string &Err) {
  return atomicWriteFile(Path, Data.data(), Data.size(), Err);
}

bool ensureDir(const std::string &Dir, std::string &Err) {
  if (::mkdir(Dir.c_str(), 0755) == 0)
    return true;
  if (errno == EEXIST) {
    struct stat St;
    if (::stat(Dir.c_str(), &St) == 0 && S_ISDIR(St.st_mode))
      return true;
    Err = Dir + ": exists and is not a directory";
    return false;
  }
  Err = errnoStr("mkdir", Dir);
  return false;
}

std::vector<std::string> listFiles(const std::string &Dir,
                                   const std::string &Prefix,
                                   const std::string &Suffix) {
  std::vector<std::string> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() < Prefix.size() + Suffix.size())
      continue;
    if (Name.compare(0, Prefix.size(), Prefix) != 0)
      continue;
    if (Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
      continue;
    Out.push_back(Name);
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// JournalWriter
//===----------------------------------------------------------------------===//

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool JournalWriter::open(const std::string &P, uint64_t TruncateTo,
                         std::string &Err) {
  close();
  Fd = ::open(P.c_str(), O_WRONLY | O_CREAT, 0644);
  if (Fd < 0) {
    Err = errnoStr("open", P);
    return false;
  }
  // Cut any torn tail (or stale content when starting fresh) before the
  // O_APPEND-style writes below; callers pass the valid-prefix length
  // from readFrames.
  if (::ftruncate(Fd, static_cast<off_t>(TruncateTo)) != 0) {
    Err = errnoStr("ftruncate", P);
    close();
    return false;
  }
  if (::lseek(Fd, 0, SEEK_END) < 0) {
    Err = errnoStr("lseek", P);
    close();
    return false;
  }
  Path = P;
  syncParentDir(P);
  return true;
}

bool JournalWriter::append(uint32_t Type, const std::vector<uint8_t> &Payload,
                           std::string &Err) {
  if (Fd < 0) {
    Err = "journal not open";
    return false;
  }
  std::vector<uint8_t> Frame = encodeFrame(Type, Payload);
  size_t Off = 0;
  while (Off < Frame.size()) {
    ssize_t W = ::write(Fd, Frame.data() + Off, Frame.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoStr("write", Path);
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  if (::fdatasync(Fd) != 0) {
    Err = errnoStr("fdatasync", Path);
    return false;
  }
  return true;
}

} // namespace stable
} // namespace dmcc
