//===- support/IntOps.h - Checked integer arithmetic -----------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked 64-bit integer arithmetic used throughout the polyhedral layer.
/// Fourier-Motzkin elimination multiplies constraint coefficients, so every
/// arithmetic operation here aborts with a diagnostic naming the operation
/// and its operands — in all build types, never silently wrapping.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_SUPPORT_INTOPS_H
#define DMCC_SUPPORT_INTOPS_H

#include <cassert>
#include <cstdint>
#include <cstdlib>

namespace dmcc {

/// The integer type used for all polyhedral coefficients.
using IntT = int64_t;

/// Terminates the process with \p Msg and the internal-error exit code
/// (ExitCodes.h). Used for invariant violations that must be fatal even
/// in release builds (e.g. coefficient overflow).
[[noreturn]] void fatalError(const char *Msg);

/// Terminates reporting an overflowing operation with its operands, e.g.
/// "integer overflow: 3000000000000000000 * 5".
[[noreturn]] void overflowError(const char *Op, IntT A, IntT B);

/// Returns \p A + \p B, aborting on signed overflow.
inline IntT addChk(IntT A, IntT B) {
  IntT R;
  if (__builtin_add_overflow(A, B, &R))
    overflowError("+", A, B);
  return R;
}

/// Returns \p A - \p B, aborting on signed overflow.
inline IntT subChk(IntT A, IntT B) {
  IntT R;
  if (__builtin_sub_overflow(A, B, &R))
    overflowError("-", A, B);
  return R;
}

/// Returns \p A * \p B, aborting on signed overflow.
inline IntT mulChk(IntT A, IntT B) {
  IntT R;
  if (__builtin_mul_overflow(A, B, &R))
    overflowError("*", A, B);
  return R;
}

/// Returns |A|, aborting on INT64_MIN.
inline IntT absChk(IntT A) {
  if (A == INT64_MIN)
    overflowError("abs", A, 0);
  return A < 0 ? -A : A;
}

/// Returns \p A + \p B saturated at UINT64_MAX instead of wrapping.
/// For monotonic clock-like unsigned counters (event budgets, byte
/// totals) where the max reads as "never"/"unbounded": a checkpoint
/// interval near 2^64 must push the next trigger past the horizon, not
/// wrap it behind the current step count.
inline uint64_t addSat(uint64_t A, uint64_t B) {
  uint64_t R;
  return __builtin_add_overflow(A, B, &R) ? UINT64_MAX : R;
}

/// Returns \p A * \p B saturated at UINT64_MAX instead of wrapping.
inline uint64_t mulSat(uint64_t A, uint64_t B) {
  uint64_t R;
  return __builtin_mul_overflow(A, B, &R) ? UINT64_MAX : R;
}

/// Returns gcd(|A|, |B|); gcd(0, 0) == 0.
IntT gcdInt(IntT A, IntT B);

/// Returns lcm(|A|, |B|); aborts on overflow.
IntT lcmInt(IntT A, IntT B);

/// Returns floor(A / B) for B != 0 (rounds toward negative infinity).
inline IntT floorDiv(IntT A, IntT B) {
  assert(B != 0 && "division by zero");
  IntT Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

/// Returns ceil(A / B) for B != 0 (rounds toward positive infinity).
inline IntT ceilDiv(IntT A, IntT B) {
  assert(B != 0 && "division by zero");
  IntT Q = A / B;
  if ((A % B != 0) && ((A < 0) == (B < 0)))
    ++Q;
  return Q;
}

/// Returns A mod B in the range [0, B) for B > 0 (mathematical modulus).
inline IntT floorMod(IntT A, IntT B) {
  assert(B > 0 && "floorMod requires a positive modulus");
  IntT R = A % B;
  if (R < 0)
    R += B;
  return R;
}

} // namespace dmcc

#endif // DMCC_SUPPORT_INTOPS_H
