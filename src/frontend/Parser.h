//===- frontend/Parser.h - Mini-language parser ----------------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser lowering the affine mini-language to the IR.
///
/// Grammar:
///   program   := (paramdecl | arraydecl)* stmt*
///   paramdecl := "param" ID ("=" INT)? ";"
///   arraydecl := "array" ID ("[" aexpr "]")+ ";"
///   stmt      := loop | ifstmt | assign
///   ifstmt    := "if" "(" rexpr ")" "{" assign* "}"
///                (if-converted per Section 4.1: each guarded assignment
///                 becomes unconditional, selecting between the new value
///                 and the location's current value)
///   loop      := "for" ID "=" lbound "to" ubound "{" stmt* "}"
///   lbound    := aexpr | "max" "(" aexpr ("," aexpr)* ")"
///   ubound    := aexpr | "min" "(" aexpr ("," aexpr)* ")"
///   assign    := ID ("[" aexpr "]")+ "=" rexpr ";"
///   aexpr     := affine expression over loop indices and parameters
///   rexpr     := arithmetic over array reads, numbers, and loop indices
///
/// Loop index names are uniquified automatically when reused by sibling
/// nests, so the IR space stays well-formed.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_FRONTEND_PARSER_H
#define DMCC_FRONTEND_PARSER_H

#include "ir/Program.h"

#include <map>
#include <optional>
#include <string>

namespace dmcc {

/// Result of parsing: a Program on success, a diagnostic otherwise.
struct ParseOutput {
  std::optional<Program> Prog;
  std::string Error; ///< empty iff Prog is set
  unsigned ErrorLine = 0;
  /// Values supplied via "param N = 123;" defaults, for tools.
  std::map<std::string, IntT> ParamDefaults;

  bool ok() const { return Prog.has_value(); }
};

/// Parses mini-language source text into a Program.
ParseOutput parseProgram(const std::string &Source);

/// Convenience for tests and examples: parses and aborts on error.
Program parseProgramOrDie(const std::string &Source);

} // namespace dmcc

#endif // DMCC_FRONTEND_PARSER_H
