//===- frontend/Parser.cpp ------------------------------------*- C++ -*-===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

using namespace dmcc;

namespace {

/// Recursive-descent parser; see the header for the grammar.
class Parser {
public:
  explicit Parser(const std::string &Source) : Toks(tokenize(Source)) {}

  ParseOutput run() {
    ParseOutput Out;
    if (!parseProgram()) {
      Out.Error = Err.empty() ? "parse error" : Err;
      Out.ErrorLine = ErrLine;
      return Out;
    }
    Out.Prog = std::move(P);
    Out.ParamDefaults = std::move(Defaults);
    return Out;
  }

private:
  const Token &cur() const { return Toks[Pos]; }
  const Token &next() { return Toks[Pos++]; }
  bool is(TokKind K) const { return cur().Kind == K; }

  bool fail(const std::string &Msg) {
    if (Err.empty()) {
      Err = "line " + std::to_string(cur().Line) + ": " + Msg;
      ErrLine = cur().Line;
    }
    return false;
  }

  bool expect(TokKind K) {
    if (!is(K))
      return fail(std::string("expected ") + tokKindName(K) + ", found " +
                  tokKindName(cur().Kind));
    ++Pos;
    return true;
  }

  /// Resolves a source-level identifier to a space variable index.
  int resolveVar(const std::string &Name) const {
    for (auto It = Scope.rbegin(); It != Scope.rend(); ++It)
      if (It->first == Name)
        return static_cast<int>(It->second);
    int I = P.space().indexOf(Name);
    if (I >= 0 && P.space().kind(static_cast<unsigned>(I)) == VarKind::Param)
      return I;
    return -1;
  }

  //===--------------------------------------------------------------===//
  // Affine expressions
  //===--------------------------------------------------------------===//

  bool parseAFactor(AffineExpr &E) {
    unsigned N = P.space().size();
    if (is(TokKind::Minus)) {
      ++Pos;
      if (!parseAFactor(E))
        return false;
      E = E.negated();
      return true;
    }
    if (is(TokKind::Integer)) {
      E = AffineExpr::constant(N, next().IntVal);
      return true;
    }
    if (is(TokKind::Ident)) {
      int V = resolveVar(cur().Text);
      if (V < 0)
        return fail("unknown name '" + cur().Text +
                    "' in affine expression");
      ++Pos;
      E = AffineExpr::var(N, static_cast<unsigned>(V));
      return true;
    }
    if (is(TokKind::LParen)) {
      ++Pos;
      if (!parseAExpr(E))
        return false;
      return expect(TokKind::RParen);
    }
    return fail("expected an affine term");
  }

  bool parseATerm(AffineExpr &E) {
    if (!parseAFactor(E))
      return false;
    while (is(TokKind::Star)) {
      ++Pos;
      AffineExpr F(P.space().size());
      if (!parseAFactor(F))
        return false;
      if (E.isConstant())
        F.scale(E.constant()), E = F;
      else if (F.isConstant())
        E.scale(F.constant());
      else
        return fail("non-linear product in affine expression");
    }
    return true;
  }

  bool parseAExpr(AffineExpr &E) {
    if (!parseATerm(E))
      return false;
    while (is(TokKind::Plus) || is(TokKind::Minus)) {
      bool Neg = next().Kind == TokKind::Minus;
      AffineExpr T(P.space().size());
      if (!parseATerm(T))
        return false;
      if (Neg)
        E -= T;
      else
        E += T;
    }
    return true;
  }

  /// Parses "aexpr" or "min(...)"/"max(...)" bound lists.
  bool parseBoundList(std::vector<AffineExpr> &Out, bool IsLower) {
    TokKind Kw = IsLower ? TokKind::KwMax : TokKind::KwMin;
    if (is(Kw)) {
      ++Pos;
      if (!expect(TokKind::LParen))
        return false;
      do {
        AffineExpr E(P.space().size());
        if (!parseAExpr(E))
          return false;
        Out.push_back(std::move(E));
      } while (is(TokKind::Comma) && (++Pos, true));
      return expect(TokKind::RParen);
    }
    AffineExpr E(P.space().size());
    if (!parseAExpr(E))
      return false;
    Out.push_back(std::move(E));
    return true;
  }

  //===--------------------------------------------------------------===//
  // Right-hand sides
  //===--------------------------------------------------------------===//

  int addRVal(Statement &S, RVal R) {
    S.RPool.push_back(std::move(R));
    return static_cast<int>(S.RPool.size() - 1);
  }

  int parseRFactor(Statement &S) {
    if (is(TokKind::Minus)) {
      ++Pos;
      int Sub = parseRFactor(S);
      if (Sub < 0)
        return -1;
      RVal Zero;
      Zero.K = RVal::Kind::ConstF;
      Zero.Const = 0;
      int Z = addRVal(S, std::move(Zero));
      RVal R;
      R.K = RVal::Kind::Sub;
      R.Lhs = Z;
      R.Rhs = Sub;
      return addRVal(S, std::move(R));
    }
    if (is(TokKind::Integer) || is(TokKind::Float)) {
      RVal R;
      R.K = RVal::Kind::ConstF;
      R.Const = is(TokKind::Integer)
                    ? static_cast<double>(cur().IntVal)
                    : cur().FloatVal;
      ++Pos;
      return addRVal(S, std::move(R));
    }
    if (is(TokKind::LParen)) {
      ++Pos;
      int E = parseRExpr(S);
      if (E < 0)
        return -1;
      if (!expect(TokKind::RParen))
        return -1;
      return E;
    }
    if (is(TokKind::Ident)) {
      std::string Name = next().Text;
      if (is(TokKind::LBracket)) {
        int AId = P.arrayIdOf(Name);
        if (AId < 0) {
          fail("unknown array '" + Name + "'");
          return -1;
        }
        Access A;
        A.ArrayId = static_cast<unsigned>(AId);
        while (is(TokKind::LBracket)) {
          ++Pos;
          AffineExpr E(P.space().size());
          if (!parseAExpr(E))
            return -1;
          if (!expect(TokKind::RBracket))
            return -1;
          A.Indices.push_back(std::move(E));
        }
        if (A.Indices.size() != P.array(A.ArrayId).DimSizes.size()) {
          fail("wrong number of subscripts for array '" + Name + "'");
          return -1;
        }
        S.Reads.push_back(std::move(A));
        RVal R;
        R.K = RVal::Kind::ReadRef;
        R.ReadIdx = S.Reads.size() - 1;
        return addRVal(S, std::move(R));
      }
      int V = resolveVar(Name);
      if (V < 0) {
        fail("unknown name '" + Name + "'");
        return -1;
      }
      RVal R;
      R.K = RVal::Kind::AffineVal;
      R.Aff = AffineExpr::var(P.space().size(), static_cast<unsigned>(V));
      return addRVal(S, std::move(R));
    }
    fail("expected a value expression");
    return -1;
  }

  int parseRTerm(Statement &S) {
    int L = parseRFactor(S);
    if (L < 0)
      return -1;
    while (is(TokKind::Star) || is(TokKind::Slash)) {
      bool IsDiv = next().Kind == TokKind::Slash;
      int R = parseRFactor(S);
      if (R < 0)
        return -1;
      RVal N;
      N.K = IsDiv ? RVal::Kind::Div : RVal::Kind::Mul;
      N.Lhs = L;
      N.Rhs = R;
      L = addRVal(S, std::move(N));
    }
    return L;
  }

  int parseRExpr(Statement &S) {
    int L = parseRTerm(S);
    if (L < 0)
      return -1;
    while (is(TokKind::Plus) || is(TokKind::Minus)) {
      bool IsSub = next().Kind == TokKind::Minus;
      int R = parseRTerm(S);
      if (R < 0)
        return -1;
      RVal N;
      N.K = IsSub ? RVal::Kind::Sub : RVal::Kind::Add;
      N.Lhs = L;
      N.Rhs = R;
      L = addRVal(S, std::move(N));
    }
    return L;
  }

  //===--------------------------------------------------------------===//
  // Declarations and statements
  //===--------------------------------------------------------------===//

  bool parseParamDecl() {
    ++Pos; // 'param'
    if (!is(TokKind::Ident))
      return fail("expected parameter name");
    std::string Name = next().Text;
    if (P.space().contains(Name))
      return fail("redeclaration of '" + Name + "'");
    P.addParam(Name);
    if (is(TokKind::Assign)) {
      ++Pos;
      bool Neg = false;
      if (is(TokKind::Minus)) {
        Neg = true;
        ++Pos;
      }
      if (!is(TokKind::Integer))
        return fail("expected integer default value");
      IntT V = next().IntVal;
      Defaults[Name] = Neg ? -V : V;
    }
    return expect(TokKind::Semi);
  }

  bool parseArrayDecl() {
    ++Pos; // 'array'
    if (!is(TokKind::Ident))
      return fail("expected array name");
    std::string Name = next().Text;
    if (P.arrayIdOf(Name) >= 0)
      return fail("redeclaration of array '" + Name + "'");
    std::vector<AffineExpr> Dims;
    if (!is(TokKind::LBracket))
      return fail("array declaration needs at least one dimension");
    while (is(TokKind::LBracket)) {
      ++Pos;
      AffineExpr E(P.space().size());
      if (!parseAExpr(E))
        return false;
      if (!expect(TokKind::RBracket))
        return false;
      Dims.push_back(std::move(E));
    }
    P.addArray(Name, std::move(Dims));
    return expect(TokKind::Semi);
  }

  bool parseLoop(int Parent) {
    ++Pos; // 'for'
    if (!is(TokKind::Ident))
      return fail("expected loop index name");
    std::string SrcName = next().Text;
    std::string SpaceName = P.space().freshName(SrcName);
    unsigned LoopId = P.addLoop(SpaceName, Parent);
    unsigned VarIdx = P.loop(LoopId).VarIndex;
    if (!expect(TokKind::Assign))
      return false;
    std::vector<AffineExpr> Lower, Upper;
    if (!parseBoundList(Lower, /*IsLower=*/true))
      return false;
    if (!expect(TokKind::KwTo))
      return false;
    if (!parseBoundList(Upper, /*IsLower=*/false))
      return false;
    for (const AffineExpr &B : Lower)
      if (B.involves(VarIdx))
        return fail("loop bound references its own index");
    for (const AffineExpr &B : Upper)
      if (B.involves(VarIdx))
        return fail("loop bound references its own index");
    P.loop(LoopId).Lower = std::move(Lower);
    P.loop(LoopId).Upper = std::move(Upper);
    if (!expect(TokKind::LBrace))
      return false;
    Scope.emplace_back(SrcName, VarIdx);
    while (!is(TokKind::RBrace) && !is(TokKind::Eof))
      if (!parseStmt(static_cast<int>(LoopId)))
        return false;
    Scope.pop_back();
    return expect(TokKind::RBrace);
  }

  bool parseAssign(int Parent) {
    if (!is(TokKind::Ident))
      return fail("expected an assignment or loop");
    std::string Name = next().Text;
    int AId = P.arrayIdOf(Name);
    if (AId < 0)
      return fail("unknown array '" + Name + "'");
    Access W;
    W.ArrayId = static_cast<unsigned>(AId);
    while (is(TokKind::LBracket)) {
      ++Pos;
      AffineExpr E(P.space().size());
      if (!parseAExpr(E))
        return false;
      if (!expect(TokKind::RBracket))
        return false;
      W.Indices.push_back(std::move(E));
    }
    if (W.Indices.size() != P.array(W.ArrayId).DimSizes.size())
      return fail("wrong number of subscripts for array '" + Name + "'");
    if (!expect(TokKind::Assign))
      return false;
    unsigned SId = P.addStatement(Parent);
    Statement &S = P.statement(SId);
    S.Write = std::move(W);
    int Root = parseRExpr(S);
    if (Root < 0)
      return false;
    P.statement(SId).RRoot = Root;
    return expect(TokKind::Semi);
  }

  /// Clones the expression subtree rooted at \p Node of \p Src into
  /// \p Dst, appending the read accesses it references.
  int cloneRVal(const Statement &Src, int Node, Statement &Dst,
                std::vector<int> &ReadMap) {
    if (Node < 0)
      return -1;
    RVal R = Src.RPool[Node];
    if (R.K == RVal::Kind::ReadRef) {
      if (ReadMap[R.ReadIdx] < 0) {
        Dst.Reads.push_back(Src.Reads[R.ReadIdx]);
        ReadMap[R.ReadIdx] = static_cast<int>(Dst.Reads.size() - 1);
      }
      R.ReadIdx = static_cast<unsigned>(ReadMap[R.ReadIdx]);
    }
    R.Lhs = cloneRVal(Src, R.Lhs, Dst, ReadMap);
    R.Rhs = cloneRVal(Src, R.Rhs, Dst, ReadMap);
    R.Cond = cloneRVal(Src, R.Cond, Dst, ReadMap);
    return addRVal(Dst, std::move(R));
  }

  /// if (cond) { assignments }: each guarded assignment is if-converted
  /// (Section 4.1) into an unconditional one assigning either the new
  /// value or the variable's current value.
  bool parseIf(int Parent) {
    ++Pos; // 'if'
    if (!expect(TokKind::LParen))
      return false;
    Statement CondTmp;
    int CondRoot = parseRExpr(CondTmp);
    if (CondRoot < 0)
      return false;
    if (!expect(TokKind::RParen) || !expect(TokKind::LBrace))
      return false;
    while (!is(TokKind::RBrace) && !is(TokKind::Eof)) {
      if (is(TokKind::KwFor) || is(TokKind::KwIf))
        return fail("only assignments are allowed inside 'if' "
                    "(conditionals must not contain loops)");
      if (!is(TokKind::Ident))
        return fail("expected an assignment inside 'if'");
      std::string Name = next().Text;
      int AId = P.arrayIdOf(Name);
      if (AId < 0)
        return fail("unknown array '" + Name + "'");
      Access W;
      W.ArrayId = static_cast<unsigned>(AId);
      while (is(TokKind::LBracket)) {
        ++Pos;
        AffineExpr E(P.space().size());
        if (!parseAExpr(E))
          return false;
        if (!expect(TokKind::RBracket))
          return false;
        W.Indices.push_back(std::move(E));
      }
      if (W.Indices.size() != P.array(W.ArrayId).DimSizes.size())
        return fail("wrong number of subscripts for array '" + Name + "'");
      if (!expect(TokKind::Assign))
        return false;
      unsigned SId = P.addStatement(Parent);
      {
        Statement &S = P.statement(SId);
        S.Write = std::move(W);
        std::vector<int> ReadMap(CondTmp.Reads.size(), -1);
        int CondIdx = cloneRVal(CondTmp, CondRoot, S, ReadMap);
        int ThenIdx = parseRExpr(S);
        if (ThenIdx < 0)
          return false;
        // The "else" value is the location's current content: an
        // explicit self read, so the data-flow analysis sees it.
        S.Reads.push_back(S.Write);
        RVal SelfR;
        SelfR.K = RVal::Kind::ReadRef;
        SelfR.ReadIdx = S.Reads.size() - 1;
        int ElseIdx = addRVal(S, std::move(SelfR));
        RVal Sel;
        Sel.K = RVal::Kind::Select;
        Sel.Cond = CondIdx;
        Sel.Lhs = ThenIdx;
        Sel.Rhs = ElseIdx;
        S.RRoot = addRVal(S, std::move(Sel));
      }
      if (!expect(TokKind::Semi))
        return false;
    }
    return expect(TokKind::RBrace);
  }

  bool parseStmt(int Parent) {
    if (is(TokKind::KwFor))
      return parseLoop(Parent);
    if (is(TokKind::KwIf))
      return parseIf(Parent);
    return parseAssign(Parent);
  }

  bool parseProgram() {
    if (is(TokKind::Error))
      return fail(cur().Text);
    while (is(TokKind::KwParam) || is(TokKind::KwArray)) {
      if (is(TokKind::Error))
        return fail(cur().Text);
      if (is(TokKind::KwParam)) {
        if (!parseParamDecl())
          return false;
      } else if (!parseArrayDecl()) {
        return false;
      }
    }
    while (!is(TokKind::Eof)) {
      if (is(TokKind::Error))
        return fail(cur().Text);
      if (!parseStmt(-1))
        return false;
    }
    return true;
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  Program P;
  std::vector<std::pair<std::string, unsigned>> Scope;
  std::map<std::string, IntT> Defaults;
  std::string Err;
  unsigned ErrLine = 0;
};

} // namespace

ParseOutput dmcc::parseProgram(const std::string &Source) {
  Parser Ps(Source);
  return Ps.run();
}

Program dmcc::parseProgramOrDie(const std::string &Source) {
  ParseOutput Out = parseProgram(Source);
  if (!Out.ok()) {
    std::string Msg = "parse failed: " + Out.Error;
    fatalError(Msg.c_str());
  }
  return std::move(*Out.Prog);
}
