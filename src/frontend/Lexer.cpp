//===- frontend/Lexer.cpp -------------------------------------*- C++ -*-===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>

using namespace dmcc;

const char *dmcc::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::Integer:
    return "integer";
  case TokKind::Float:
    return "float";
  case TokKind::KwParam:
    return "'param'";
  case TokKind::KwArray:
    return "'array'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwTo:
    return "'to'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwMin:
    return "'min'";
  case TokKind::KwMax:
    return "'max'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Error:
    return "lexical error";
  }
  return "?";
}

std::vector<Token> dmcc::tokenize(const std::string &Source) {
  std::vector<Token> Toks;
  unsigned Line = 1;
  size_t I = 0, E = Source.size();
  auto push = [&](TokKind K, std::string Text) {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.Line = Line;
    Toks.push_back(std::move(T));
  };
  while (I < E) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '#' || (C == '/' && I + 1 < E && Source[I + 1] == '/')) {
      while (I < E && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
        C == '@') {
      size_t S = I;
      while (I < E && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_' || Source[I] == '@' ||
                       Source[I] == '.'))
        ++I;
      std::string Word = Source.substr(S, I - S);
      TokKind K = TokKind::Ident;
      if (Word == "param")
        K = TokKind::KwParam;
      else if (Word == "array")
        K = TokKind::KwArray;
      else if (Word == "for")
        K = TokKind::KwFor;
      else if (Word == "to")
        K = TokKind::KwTo;
      else if (Word == "if")
        K = TokKind::KwIf;
      else if (Word == "min")
        K = TokKind::KwMin;
      else if (Word == "max")
        K = TokKind::KwMax;
      push(K, std::move(Word));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t S = I;
      bool IsFloat = false;
      while (I < E && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      if (I < E && Source[I] == '.' && I + 1 < E &&
          std::isdigit(static_cast<unsigned char>(Source[I + 1]))) {
        IsFloat = true;
        ++I;
        while (I < E && std::isdigit(static_cast<unsigned char>(Source[I])))
          ++I;
      }
      std::string Num = Source.substr(S, I - S);
      Token T;
      T.Line = Line;
      T.Text = Num;
      if (IsFloat) {
        T.Kind = TokKind::Float;
        T.FloatVal = std::strtod(Num.c_str(), nullptr);
      } else {
        T.Kind = TokKind::Integer;
        T.IntVal = std::strtoll(Num.c_str(), nullptr, 10);
      }
      Toks.push_back(std::move(T));
      continue;
    }
    TokKind K;
    switch (C) {
    case '{':
      K = TokKind::LBrace;
      break;
    case '}':
      K = TokKind::RBrace;
      break;
    case '[':
      K = TokKind::LBracket;
      break;
    case ']':
      K = TokKind::RBracket;
      break;
    case '(':
      K = TokKind::LParen;
      break;
    case ')':
      K = TokKind::RParen;
      break;
    case ',':
      K = TokKind::Comma;
      break;
    case ';':
      K = TokKind::Semi;
      break;
    case '=':
      K = TokKind::Assign;
      break;
    case '+':
      K = TokKind::Plus;
      break;
    case '-':
      K = TokKind::Minus;
      break;
    case '*':
      K = TokKind::Star;
      break;
    case '/':
      K = TokKind::Slash;
      break;
    default:
      push(TokKind::Error, std::string("unexpected character '") + C + "'");
      push(TokKind::Eof, "");
      return Toks;
    }
    push(K, std::string(1, C));
    ++I;
  }
  push(TokKind::Eof, "");
  return Toks;
}
