//===- frontend/Lexer.h - Mini-language lexer ------------------*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the affine mini-language that stands in for the paper's
/// FORTRAN-77 front end. Comments run from '#' or '//' to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_FRONTEND_LEXER_H
#define DMCC_FRONTEND_LEXER_H

#include "support/IntOps.h"

#include <string>
#include <vector>

namespace dmcc {

/// Token kinds of the mini-language.
enum class TokKind {
  Eof,
  Ident,
  Integer,
  Float,
  KwParam,
  KwArray,
  KwFor,
  KwTo,
  KwIf,
  KwMin,
  KwMax,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  LParen,
  RParen,
  Comma,
  Semi,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Error,
};

/// One token with its source location (1-based line).
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  IntT IntVal = 0;
  double FloatVal = 0;
  unsigned Line = 0;
};

/// Returns a human-readable name for \p K ("identifier", "'{'", ...).
const char *tokKindName(TokKind K);

/// Tokenizes \p Source. On a lexical error the last token has kind Error
/// and Text holds a message; an Eof token always terminates the stream.
std::vector<Token> tokenize(const std::string &Source);

} // namespace dmcc

#endif // DMCC_FRONTEND_LEXER_H
