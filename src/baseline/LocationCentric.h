//===- baseline/LocationCentric.h - FORTRAN-D-style baseline ---*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conventional location-centric approach of Section 2, reimplemented
/// as a comparison baseline: data dependence analysis (aliasing of
/// locations, with loop-carry levels), regular section descriptors
/// (bounding boxes of the data touched between communication points), and
/// owner-computes communication placed at the boundaries of the deepest
/// dependence-carrying loop. The traffic estimator reproduces the
/// limitations Section 2.2 describes — values re-sent because dependence
/// analysis cannot tell which instances carry them, and section blowup
/// when the accessed set is not a dense box.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_BASELINE_LOCATIONCENTRIC_H
#define DMCC_BASELINE_LOCATIONCENTRIC_H

#include "decomp/Decomposition.h"
#include "ir/Program.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dmcc {

/// A data dependence between two accesses (classic alias-based analysis).
struct Dependence {
  unsigned FromStmt = 0; ///< source (the write)
  unsigned ToStmt = 0;   ///< sink (the read access under analysis)
  unsigned ReadIdx = 0;
  /// Loop level carrying the dependence: 1-based over the sink's common
  /// loops; CommonDepth+1 denotes loop-independent.
  unsigned Level = 0;
};

/// All dependences whose sink is the given read access, one entry per
/// (writer, level) with a witness pair of iterations.
std::vector<Dependence> dependencesOnto(const Program &P, unsigned ReadStmt,
                                        unsigned ReadIdx);

/// The deepest level at which any write is involved in a dependence with
/// the read (the paper's "maximum depth": communication may legally be
/// hoisted only outside loops deeper than this). 0 when no dependence
/// exists (communication can precede the whole nest).
unsigned maxDependenceLevel(const Program &P, unsigned ReadStmt,
                            unsigned ReadIdx);

/// A regular section descriptor: a per-dimension integer bounding box.
struct RegularSection {
  std::vector<IntT> Lo, Hi;
  bool Empty = true;

  /// Number of array elements the box covers.
  uint64_t volume() const;
};

/// The regular section of the data the read access touches while the
/// first \p PrefixLen loop indices are pinned to \p Prefix (the interval
/// between communication points). Exact via enumeration of the remaining
/// iterations (parameters supplied concretely).
RegularSection sectionOf(const Program &P, unsigned ReadStmt,
                         unsigned ReadIdx, const std::vector<IntT> &Prefix,
                         const std::map<std::string, IntT> &Params);

/// Traffic of one scheme, for head-to-head benches.
struct TrafficEstimate {
  uint64_t Messages = 0;
  uint64_t Words = 0;
  /// Words that name array elements the program never actually reads in
  /// the interval (section over-approximation, Section 2.2.3).
  uint64_t WastedWords = 0;
};

/// Estimated traffic of the location-centric scheme for one read access:
/// at every iteration of the loops enclosing the deepest dependence
/// level, each processor fetches the non-local part of the read's regular
/// section from the owners (one message per (owner, reader) pair per
/// interval). \p DataD must be a unique data decomposition; computation
/// follows the owner-computes rule on the statement's own write.
TrafficEstimate locationCentricTraffic(
    const Program &P, unsigned ReadStmt, unsigned ReadIdx,
    const Decomposition &DataD, const std::map<std::string, IntT> &Params);

/// Exact traffic of the value-centric scheme for the same configuration
/// (each live value crosses once per consuming processor), measured by
/// enumerating actual cross-processor reads in an instrumented run.
TrafficEstimate valueCentricTraffic(
    const Program &P, unsigned ReadStmt, unsigned ReadIdx,
    const Decomposition &DataD, const std::map<std::string, IntT> &Params);

} // namespace dmcc

#endif // DMCC_BASELINE_LOCATIONCENTRIC_H
