//===- baseline/LocationCompiler.cpp --------------------------*- C++ -*-===//

#include "baseline/LocationCompiler.h"

#include "baseline/LocationCentric.h"
#include "codegen/Scan.h"

#include <chrono>

using namespace dmcc;

namespace {

/// One read access's communication: fetch the non-local section from the
/// owners at every iteration of the first PrefixLen loops.
struct LocPlan {
  System Sys; ///< over (ps*, pr*, bare prefix loops, el*, params) in the
              ///< SPMD program space; iteration suffix already projected
  std::vector<unsigned> Ps, Pr, El;
  unsigned ReadStmt = 0, ReadIdx = 0;
  unsigned PrefixLen = 0;
  unsigned CommId = 0;
  bool Emitted = false;
};

/// Builds the Theorem 2 communication system for one read access and
/// projects away the post-prefix iteration variables (the polyhedral
/// regular section). Returns one LocPlan per ps != pr disjunct.
std::vector<LocPlan> buildLocationPlans(
    const Program &P, SpmdSpace &SS, unsigned Stmt, unsigned Read,
    const Decomposition &ReaderComp, const Decomposition &DataD,
    unsigned GridDims) {
  const Statement &St = P.statement(Stmt);
  const Access &RA = St.Reads[Read];
  unsigned MaxLevel = maxDependenceLevel(P, Stmt, Read);
  unsigned PrefixLen = std::min<unsigned>(MaxLevel, St.depth());

  // Space: ps, pr, reader loops (prefix bare = shared loop variables,
  // suffix under "r." to be projected), el, params.
  Space Sp;
  std::vector<unsigned> PsV, PrV, ElV;
  for (unsigned D = 0; D != GridDims; ++D)
    PsV.push_back(Sp.add("ps" + std::to_string(D), VarKind::Proc));
  for (unsigned D = 0; D != GridDims; ++D)
    PrV.push_back(Sp.add("pr" + std::to_string(D), VarKind::Proc));
  std::vector<std::string> LoopNames;
  std::vector<unsigned> LoopV;
  for (unsigned K = 0; K != St.Loops.size(); ++K) {
    std::string Base = P.space().name(P.loop(St.Loops[K]).VarIndex);
    std::string N = K < PrefixLen ? Base : "r." + Base;
    LoopNames.push_back(N);
    LoopV.push_back(Sp.add(N, VarKind::Loop));
  }
  for (unsigned K = 0; K != RA.Indices.size(); ++K)
    ElV.push_back(Sp.add("el" + std::to_string(K), VarKind::Data));
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Sp.add(P.space().name(I), VarKind::Param);

  System S(std::move(Sp));
  // Reader iteration domain.
  System Dom = P.domainOf(Stmt);
  auto MapLoop = [&](const std::string &N) -> std::string {
    for (unsigned K = 0; K != St.Loops.size(); ++K)
      if (P.space().name(P.loop(St.Loops[K]).VarIndex) == N)
        return LoopNames[K];
    return N;
  };
  for (const Constraint &C : Dom.constraints())
    S.addConstraint(
        Constraint(mapExpr(C.Expr, Dom.space(), S.space(), MapLoop), C.Rel));
  // el == fr(iteration).
  for (unsigned K = 0; K != RA.Indices.size(); ++K) {
    AffineExpr FR = mapExpr(RA.Indices[K], P.space(), S.space(), MapLoop);
    S.addEq(S.varExpr(ElV[K]), FR);
  }
  // Reader processor from the computation decomposition.
  {
    const Space &RSp = ReaderComp.sourceSpace();
    std::vector<AffineExpr> Vals;
    unsigned LPos = 0;
    for (unsigned K = 0; K != RSp.size(); ++K) {
      if (RSp.kind(K) == VarKind::Param) {
        Vals.push_back(AffineExpr(S.numVars()));
        continue;
      }
      Vals.push_back(S.varExpr(LoopV[LPos++]));
    }
    ReaderComp.addConstraints(S, Vals, PrV);
  }
  // Sender = the owner of the location (Theorem 2).
  {
    const Space &DSp = DataD.sourceSpace();
    std::vector<AffineExpr> Vals;
    unsigned EPos = 0;
    for (unsigned K = 0; K != DSp.size(); ++K) {
      if (DSp.kind(K) == VarKind::Param) {
        Vals.push_back(AffineExpr(S.numVars()));
        continue;
      }
      Vals.push_back(S.varExpr(ElV[EPos++]));
    }
    DataD.addConstraints(S, Vals, PsV);
  }

  // Project away the post-prefix iteration variables: the remaining set
  // of (owner, reader, elements) per prefix iteration is the polyhedral
  // regular section, over-approximation included.
  for (unsigned K = PrefixLen; K < LoopV.size(); ++K)
    if (S.involves(LoopV[K]))
      S = S.fmEliminated(LoopV[K]);
  S.normalize();
  S.removeRedundant(projectionOptions().ScanBudget);

  // ps != pr disjuncts.
  std::vector<LocPlan> Out;
  for (unsigned D = 0; D != GridDims; ++D) {
    for (int Side = 0; Side != 2; ++Side) {
      LocPlan Pl;
      Pl.Sys = S;
      for (unsigned E = 0; E != D; ++E)
        Pl.Sys.addEq(Pl.Sys.varExpr(PsV[E]), Pl.Sys.varExpr(PrV[E]));
      AffineExpr Diff = Pl.Sys.varExpr(PrV[D]) - Pl.Sys.varExpr(PsV[D]);
      if (Side == 0)
        Pl.Sys.addGE(Diff.plusConst(-1));
      else
        Pl.Sys.addGE(Diff.negated().plusConst(-1));
      if (!Pl.Sys.normalize() ||
          Pl.Sys.checkIntegerFeasible(
              projectionOptions().FeasibilityBudget) == Feasibility::Empty)
        continue;
      Pl.Ps = PsV;
      Pl.Pr = PrV;
      Pl.El = ElV;
      Pl.ReadStmt = Stmt;
      Pl.ReadIdx = Read;
      Pl.PrefixLen = PrefixLen;
      // Ensure the shared loop variables exist in the SPMD space.
      for (unsigned K = 0; K != PrefixLen; ++K)
        SS.ensureVar(LoopNames[K], VarKind::Loop);
      Out.push_back(std::move(Pl));
    }
  }
  return Out;
}

/// Emits the send (owner side) and receive (reader side) fragments for
/// one plan. The section itself is the inner scan over el.
void genLocationFragments(SpmdSpace &SS, LocPlan &Pl, unsigned ArrayId,
                          std::vector<SpmdStmt> &Send,
                          std::vector<SpmdStmt> &Recv) {
  System Sys = SS.importSystem(Pl.Sys);
  auto Reindex = [&](const std::vector<unsigned> &Old) {
    std::vector<unsigned> New;
    for (unsigned V : Old)
      New.push_back(static_cast<unsigned>(
          Sys.space().indexOf(Pl.Sys.space().name(V))));
    return New;
  };
  std::vector<unsigned> Ps = Reindex(Pl.Ps), Pr = Reindex(Pl.Pr),
                        El = Reindex(Pl.El);

  std::vector<AffineExpr> ElExprs;
  std::vector<ScanVarPlan> Inner;
  for (unsigned V : El) {
    Inner.push_back(ScanVarPlan{V, false, AffineExpr()});
    ElExprs.push_back(AffineExpr::var(Sys.numVars(), V));
  }

  auto MakeItems = [&](SpmdStmt::Kind K) {
    return scanPolyhedron(Sys, Inner, [&]() {
      SpmdStmt E;
      E.K = K;
      E.ArrayId = ArrayId;
      E.Indices = ElExprs;
      std::vector<SpmdStmt> B;
      B.push_back(std::move(E));
      return B;
    });
  };
  std::vector<SpmdStmt> Pack = MakeItems(SpmdStmt::Kind::PackElem);
  std::vector<SpmdStmt> Unpack = MakeItems(SpmdStmt::Kind::UnpackElem);

  System Outer = Sys;
  for (unsigned V : El)
    if (Outer.involves(V))
      Outer = Outer.fmEliminated(V);
  Outer.normalize();
  Outer.removeRedundant(projectionOptions().ScanBudget);

  // Sender side: bind ps to myp, enumerate readers.
  {
    std::vector<ScanVarPlan> Plan;
    for (unsigned D = 0; D != Ps.size(); ++D)
      Plan.push_back(ScanVarPlan{
          Ps[D], true,
          AffineExpr::var(Sys.numVars(), SS.prog().MyProcVars[D])});
    for (unsigned V : Pr)
      Plan.push_back(ScanVarPlan{V, false, AffineExpr()});
    std::vector<AffineExpr> Peer;
    for (unsigned V : Pr)
      Peer.push_back(AffineExpr::var(Sys.numVars(), V));
    unsigned CommId = Pl.CommId;
    Send = scanPolyhedron(Outer, Plan, [&]() {
      SpmdStmt Sd;
      Sd.K = SpmdStmt::Kind::Send;
      Sd.Peer = Peer;
      Sd.CommId = CommId;
      Sd.Body = Pack;
      std::vector<SpmdStmt> B;
      B.push_back(std::move(Sd));
      return B;
    });
  }
  // Receiver side: bind pr to myp, enumerate owners.
  {
    std::vector<ScanVarPlan> Plan;
    for (unsigned D = 0; D != Pr.size(); ++D)
      Plan.push_back(ScanVarPlan{
          Pr[D], true,
          AffineExpr::var(Sys.numVars(), SS.prog().MyProcVars[D])});
    for (unsigned V : Ps)
      Plan.push_back(ScanVarPlan{V, false, AffineExpr()});
    std::vector<AffineExpr> Peer;
    for (unsigned V : Ps)
      Peer.push_back(AffineExpr::var(Sys.numVars(), V));
    unsigned CommId = Pl.CommId;
    Recv = scanPolyhedron(Outer, Plan, [&]() {
      SpmdStmt Rv;
      Rv.K = SpmdStmt::Kind::Recv;
      Rv.Peer = Peer;
      Rv.CommId = CommId;
      Rv.Body = Unpack;
      std::vector<SpmdStmt> B;
      B.push_back(std::move(Rv));
      return B;
    });
  }
}

/// Tree walker: shared loops everywhere (the conservative original
/// interleaving), communication emitted just before the subtree holding
/// its reader at the plan's prefix depth — send first, then receive.
class LocEmitter {
public:
  LocEmitter(const Program &P, SpmdSpace &SS, const CompileSpec &Spec,
             std::vector<LocPlan> &Plans,
             const std::map<unsigned, unsigned> &ArrayOf)
      : P(P), SS(SS), Spec(Spec), Plans(Plans), ArrayOf(ArrayOf) {}

  std::vector<SpmdStmt> run() { return emitList(P.topLevel(), 0); }

private:
  const StmtPlan &planOf(unsigned StmtId) const {
    for (const StmtPlan &SP : Spec.Stmts)
      if (SP.StmtId == StmtId)
        return SP;
    fatalError("location compiler: missing statement plan");
  }

  void collect(const Node &N, std::vector<unsigned> &Stmts) const {
    if (N.K == Node::Kind::Stmt) {
      Stmts.push_back(N.Index);
      return;
    }
    for (const Node &C : P.childrenOf(N.Index))
      collect(C, Stmts);
  }

  std::vector<SpmdStmt> emitList(const std::vector<Node> &Children,
                                 unsigned Depth) {
    std::vector<SpmdStmt> Out;
    for (const Node &Child : Children) {
      std::vector<unsigned> Here;
      collect(Child, Here);
      for (LocPlan &Pl : Plans) {
        if (Pl.Emitted || Pl.PrefixLen != Depth)
          continue;
        bool Reads = false;
        for (unsigned S : Here)
          if (S == Pl.ReadStmt)
            Reads = true;
        if (!Reads)
          continue;
        std::vector<SpmdStmt> Send, Recv;
        genLocationFragments(SS, Pl, ArrayOf.at(Pl.CommId), Send, Recv);
        for (SpmdStmt &S : Send)
          Out.push_back(std::move(S));
        for (SpmdStmt &S : Recv)
          Out.push_back(std::move(S));
        Pl.Emitted = true;
      }
      if (Child.K == Node::Kind::Stmt) {
        for (SpmdStmt &S :
             genComputeFragment(SS, planOf(Child.Index), Depth))
          Out.push_back(std::move(S));
      } else {
        SpmdStmt For = makeSharedLoop(SS, Child.Index);
        For.Body = emitList(P.childrenOf(Child.Index), Depth + 1);
        Out.push_back(std::move(For));
      }
    }
    return Out;
  }

  const Program &P;
  SpmdSpace &SS;
  const CompileSpec &Spec;
  std::vector<LocPlan> &Plans;
  const std::map<unsigned, unsigned> &ArrayOf;
};

} // namespace

CompiledProgram dmcc::compileLocationCentric(const Program &P,
                                             const LocationSpec &Spec,
                                             CompileSpec &OutSpec,
                                             unsigned GridDims) {
  auto T0 = std::chrono::steady_clock::now();
  CompiledProgram Out;
  SpmdSpace SS(P, GridDims);

  // Owner-computes computation decompositions; data never moves, so the
  // final layouts equal the initial ones and no finalization is needed.
  OutSpec = CompileSpec();
  for (unsigned S = 0; S != P.numStatements(); ++S) {
    unsigned A = P.statement(S).Write.ArrayId;
    auto It = Spec.Data.find(A);
    if (It == Spec.Data.end())
      fatalError("location compiler: written array needs a decomposition");
    OutSpec.Stmts.push_back(StmtPlan{S, ownerComputes(P, S, It->second)});
  }
  for (const auto &[A, D] : Spec.Data) {
    OutSpec.InitialData.emplace(A, D);
    OutSpec.FinalData.emplace(A, D);
  }

  std::vector<LocPlan> Plans;
  std::map<unsigned, unsigned> ArrayOf; // CommId -> array
  for (unsigned S = 0; S != P.numStatements(); ++S) {
    const Statement &St = P.statement(S);
    const StmtPlan &SP = OutSpec.Stmts[S];
    for (unsigned R = 0; R != St.Reads.size(); ++R) {
      unsigned A = St.Reads[R].ArrayId;
      auto It = Spec.Data.find(A);
      if (It == Spec.Data.end())
        fatalError("location compiler: read array needs a decomposition");
      for (LocPlan &Pl :
           buildLocationPlans(P, SS, S, R, SP.Comp, It->second, GridDims)) {
        Pl.CommId = SS.nextCommId();
        ArrayOf[Pl.CommId] = A;
        Plans.push_back(std::move(Pl));
        ++Out.Stats.NumCommSets;
        ++Out.Stats.NumCommSetsAfterSelfReuse;
      }
    }
  }

  LocEmitter Em(P, SS, OutSpec, Plans, ArrayOf);
  SS.prog().Top = Em.run();
  Out.Spmd = std::move(SS.prog());
  Out.Stats.CompileSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return Out;
}
