//===- baseline/LocationCompiler.h - Location-centric codegen --*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A complete code-generation path for the conventional location-centric
/// scheme of Section 2 — the FORTRAN-D-style strategy the paper compares
/// against — built on the same polyhedral framework (the paper notes its
/// techniques "are applicable to both the value-centric approach ... as
/// well as the conventional location-centric approach"):
///
///   * computation decompositions from the owner-computes rule
///     (Theorem 1);
///   * communication derived from data decompositions (Theorem 2):
///     a processor fetches, from the owners, every non-local location its
///     reads touch;
///   * placement at the boundaries of the deepest dependence-carrying
///     loop (alias-based levels, Section 2.1);
///   * message contents summarized by projecting away the iteration
///     variables — the polyhedral equivalent of regular sections,
///     including their over-approximation.
///
/// The result is a CompiledProgram executable on the same simulator, so
/// the two schemes can be compared end to end.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_BASELINE_LOCATIONCOMPILER_H
#define DMCC_BASELINE_LOCATIONCOMPILER_H

#include "core/Compiler.h"

#include <map>

namespace dmcc {

/// Input: one (non-replicated, non-overlapped) data decomposition per
/// array; computation decompositions follow owner-computes.
struct LocationSpec {
  std::map<unsigned, Decomposition> Data;
};

/// Compiles \p P with the location-centric strategy. The returned
/// CompileSpec (owner-computes computation decompositions plus the given
/// layouts as initial and final) is written to \p OutSpec for use with
/// the Simulator.
CompiledProgram compileLocationCentric(const Program &P,
                                       const LocationSpec &Spec,
                                       CompileSpec &OutSpec,
                                       unsigned GridDims = 1);

} // namespace dmcc

#endif // DMCC_BASELINE_LOCATIONCOMPILER_H
