//===- baseline/LocationCentric.cpp ---------------------------*- C++ -*-===//

#include "baseline/LocationCentric.h"

#include "ir/Interp.h"

#include <algorithm>
#include <map>
#include <set>

using namespace dmcc;

std::vector<Dependence> dmcc::dependencesOnto(const Program &P,
                                              unsigned ReadStmt,
                                              unsigned ReadIdx) {
  const Statement &R = P.statement(ReadStmt);
  const Access &RA = R.Reads[ReadIdx];
  std::vector<Dependence> Out;
  for (unsigned W = 0, E = P.numStatements(); W != E; ++W) {
    const Statement &WS = P.statement(W);
    if (WS.Write.ArrayId != RA.ArrayId)
      continue;
    unsigned C = P.commonLoopDepth(W, ReadStmt);

    auto feasibleAt = [&](unsigned Level, bool LoopIndep) -> bool {
      // Space: writer iteration copies, then reader domain variables.
      Space Sp;
      std::vector<std::string> WNames;
      for (unsigned L : WS.Loops) {
        std::string N = "w." + P.space().name(P.loop(L).VarIndex);
        WNames.push_back(N);
        Sp.add(N, VarKind::Loop);
      }
      System RDom = P.domainOf(ReadStmt);
      for (unsigned I = 0; I != RDom.space().size(); ++I)
        Sp.add(RDom.space().name(I), RDom.space().kind(I));
      System S(std::move(Sp));
      System WDom = P.domainOf(W);
      auto RenW = [&WDom](const std::string &N) -> std::string {
        int I = WDom.space().indexOf(N);
        if (I >= 0 &&
            WDom.space().kind(static_cast<unsigned>(I)) == VarKind::Loop)
          return "w." + N;
        return N;
      };
      for (const Constraint &Cn : WDom.constraints())
        S.addConstraint(Constraint(
            mapExpr(Cn.Expr, WDom.space(), S.space(), RenW), Cn.Rel));
      S.addAllMapped(RDom);
      auto RenProg = [&P](const std::string &N) -> std::string {
        int I = P.space().indexOf(N);
        if (I >= 0 &&
            P.space().kind(static_cast<unsigned>(I)) == VarKind::Loop)
          return "w." + N;
        return N;
      };
      for (unsigned D = 0, DE = RA.Indices.size(); D != DE; ++D) {
        AffineExpr FW =
            mapExpr(WS.Write.Indices[D], P.space(), S.space(), RenProg);
        AffineExpr FR = mapExpr(RA.Indices[D], P.space(), S.space());
        S.addEq(FW, FR);
      }
      unsigned Pin = LoopIndep ? Level - 1 : Level - 1;
      for (unsigned K = 0; K != Pin; ++K) {
        unsigned WV = static_cast<unsigned>(S.space().indexOf(WNames[K]));
        unsigned RV = static_cast<unsigned>(S.space().indexOf(
            P.space().name(P.loop(WS.Loops[K]).VarIndex)));
        S.addEq(S.varExpr(WV), S.varExpr(RV));
      }
      if (!LoopIndep) {
        unsigned WV = static_cast<unsigned>(
            S.space().indexOf(WNames[Level - 1]));
        unsigned RV = static_cast<unsigned>(S.space().indexOf(
            P.space().name(P.loop(WS.Loops[Level - 1]).VarIndex)));
        S.addGE(S.varExpr(RV).plusConst(-1) - S.varExpr(WV));
      }
      return S.checkIntegerFeasible() != Feasibility::Empty;
    };

    for (unsigned L = 1; L <= C; ++L)
      if (feasibleAt(L, /*LoopIndep=*/false))
        Out.push_back(Dependence{W, ReadStmt, ReadIdx, L});
    if (W != ReadStmt && P.precedesTextually(W, ReadStmt) &&
        feasibleAt(C + 1, /*LoopIndep=*/true))
      Out.push_back(Dependence{W, ReadStmt, ReadIdx, C + 1});
  }
  return Out;
}

unsigned dmcc::maxDependenceLevel(const Program &P, unsigned ReadStmt,
                                  unsigned ReadIdx) {
  unsigned Max = 0;
  for (const Dependence &D : dependencesOnto(P, ReadStmt, ReadIdx))
    Max = std::max(Max, D.Level);
  return Max;
}

uint64_t RegularSection::volume() const {
  if (Empty)
    return 0;
  uint64_t V = 1;
  for (unsigned K = 0; K != Lo.size(); ++K)
    V *= static_cast<uint64_t>(Hi[K] - Lo[K] + 1);
  return V;
}

RegularSection dmcc::sectionOf(const Program &P, unsigned ReadStmt,
                               unsigned ReadIdx,
                               const std::vector<IntT> &Prefix,
                               const std::map<std::string, IntT> &Params) {
  const Statement &R = P.statement(ReadStmt);
  const Access &RA = R.Reads[ReadIdx];
  System Dom = P.domainOf(ReadStmt);
  for (unsigned I = 0; I != Dom.space().size(); ++I) {
    if (Dom.space().kind(I) == VarKind::Param)
      Dom.addEQ(Dom.varExpr(I).plusConst(
          -Params.at(Dom.space().name(I))));
    else if (I < Prefix.size())
      Dom.addEQ(Dom.varExpr(I).plusConst(-Prefix[I]));
  }
  std::vector<AffineExpr> Idx;
  for (const AffineExpr &E : RA.Indices)
    Idx.push_back(mapExpr(E, P.space(), Dom.space()));
  RegularSection Sec;
  Sec.Lo.assign(Idx.size(), 0);
  Sec.Hi.assign(Idx.size(), 0);
  Dom.enumeratePoints([&](const std::vector<IntT> &Pt) {
    for (unsigned K = 0; K != Idx.size(); ++K) {
      IntT V = Idx[K].evaluate(Pt);
      if (Sec.Empty) {
        Sec.Lo[K] = Sec.Hi[K] = V;
      } else {
        Sec.Lo[K] = std::min(Sec.Lo[K], V);
        Sec.Hi[K] = std::max(Sec.Hi[K], V);
      }
    }
    Sec.Empty = false;
  });
  return Sec;
}

namespace {

/// Iterates a read statement's concrete iterations, calling
/// Fn(iteration values including params).
void forEachIteration(const Program &P, unsigned Stmt,
                      const std::map<std::string, IntT> &Params,
                      const std::function<void(const std::vector<IntT> &)>
                          &Fn) {
  System Dom = P.domainOf(Stmt);
  for (unsigned I = 0; I != Dom.space().size(); ++I)
    if (Dom.space().kind(I) == VarKind::Param)
      Dom.addEQ(Dom.varExpr(I).plusConst(
          -Params.at(Dom.space().name(I))));
  Dom.enumeratePoints(Fn);
}

std::vector<IntT> elementOf(const Program &P, const Access &A,
                            const Space &DomSp,
                            const std::vector<IntT> &Iter) {
  std::vector<IntT> El;
  for (const AffineExpr &E : A.Indices)
    El.push_back(mapExpr(E, P.space(), DomSp).evaluate(Iter));
  return El;
}

} // namespace

TrafficEstimate dmcc::locationCentricTraffic(
    const Program &P, unsigned ReadStmt, unsigned ReadIdx,
    const Decomposition &DataD, const std::map<std::string, IntT> &Params) {
  const Statement &R = P.statement(ReadStmt);
  const Access &RA = R.Reads[ReadIdx];
  Decomposition CompD = ownerComputes(P, ReadStmt, DataD);
  unsigned MaxLevel = maxDependenceLevel(P, ReadStmt, ReadIdx);
  unsigned PrefixLen = std::min<unsigned>(MaxLevel, R.depth());

  // Elements actually read per (prefix, reader) — to measure waste — and
  // the per-reader sections.
  struct Group {
    std::set<std::vector<IntT>> Accessed;
    RegularSection Sec;
  };
  std::map<std::pair<std::vector<IntT>, std::vector<IntT>>, Group> Groups;
  System Dom = P.domainOf(ReadStmt);
  forEachIteration(P, ReadStmt, Params, [&](const std::vector<IntT> &It) {
    std::vector<IntT> Prefix(It.begin(), It.begin() + PrefixLen);
    std::vector<IntT> Reader = CompD.gridCoordinate(It);
    std::vector<IntT> El = elementOf(P, RA, Dom.space(), It);
    Group &G = Groups[{Prefix, Reader}];
    if (G.Sec.Empty) {
      G.Sec.Lo = El;
      G.Sec.Hi = El;
      G.Sec.Empty = false;
    } else {
      for (unsigned K = 0; K != El.size(); ++K) {
        G.Sec.Lo[K] = std::min(G.Sec.Lo[K], El[K]);
        G.Sec.Hi[K] = std::max(G.Sec.Hi[K], El[K]);
      }
    }
    G.Accessed.insert(std::move(El));
  });

  // Parameter tail for ownership queries.
  std::vector<IntT> SrcTail;
  for (unsigned I = 0; I != DataD.sourceSpace().size(); ++I)
    if (DataD.sourceSpace().kind(I) == VarKind::Param)
      SrcTail.push_back(Params.at(DataD.sourceSpace().name(I)));

  TrafficEstimate T;
  for (const auto &[Key, G] : Groups) {
    const std::vector<IntT> &Reader = Key.second;
    std::set<std::vector<IntT>> Owners;
    // Walk the box.
    std::vector<IntT> El = G.Sec.Lo;
    bool Done = G.Sec.Empty;
    while (!Done) {
      std::vector<IntT> Src = El;
      Src.insert(Src.end(), SrcTail.begin(), SrcTail.end());
      std::vector<IntT> Owner = DataD.gridCoordinate(Src);
      if (Owner != Reader) {
        ++T.Words;
        if (!G.Accessed.count(El))
          ++T.WastedWords;
        Owners.insert(std::move(Owner));
      }
      for (unsigned K = El.size(); K-- > 0;) {
        if (++El[K] <= G.Sec.Hi[K])
          break;
        El[K] = G.Sec.Lo[K];
        if (K == 0)
          Done = true;
      }
    }
    T.Messages += Owners.size();
  }
  return T;
}

TrafficEstimate dmcc::valueCentricTraffic(
    const Program &P, unsigned ReadStmt, unsigned ReadIdx,
    const Decomposition &DataD, const std::map<std::string, IntT> &Params) {
  // Owner-computes computation decomposition for every statement, as in
  // the baseline, so the comparison isolates the analysis quality.
  std::vector<Decomposition> Comp;
  for (unsigned S = 0; S != P.numStatements(); ++S)
    Comp.push_back(ownerComputes(P, S, DataD));

  std::vector<IntT> SrcTail;
  for (unsigned I = 0; I != DataD.sourceSpace().size(); ++I)
    if (DataD.sourceSpace().kind(I) == VarKind::Param)
      SrcTail.push_back(Params.at(DataD.sourceSpace().name(I)));

  // Each distinct (value identity, consumer processor) pair crosses once.
  std::set<std::vector<IntT>> Transfers; // (srcProc..., dstProc..., id...)
  std::set<std::vector<IntT>> Channels;  // (srcProc..., dstProc...)
  SeqInterpreter I(P, Params);
  System RDom = P.domainOf(ReadStmt);
  I.setReadCallback([&](unsigned StmtId, unsigned RIdx,
                        const std::vector<IntT> &Iter,
                        const WriteInstance *Writer) {
    if (StmtId != ReadStmt || RIdx != ReadIdx)
      return;
    std::vector<IntT> Full = Iter;
    for (unsigned K = 0; K != RDom.space().size(); ++K)
      if (RDom.space().kind(K) == VarKind::Param)
        Full.push_back(Params.at(RDom.space().name(K)));
    std::vector<IntT> Reader =
        Comp[ReadStmt].gridCoordinate(Full);
    std::vector<IntT> Src;
    std::vector<IntT> Id;
    if (Writer) {
      const Statement &WS = P.statement(Writer->StmtId);
      System WDom = P.domainOf(Writer->StmtId);
      std::vector<IntT> WFull = Writer->Iter;
      for (unsigned K = 0; K != WDom.space().size(); ++K)
        if (WDom.space().kind(K) == VarKind::Param)
          WFull.push_back(Params.at(WDom.space().name(K)));
      Src = Comp[Writer->StmtId].gridCoordinate(WFull);
      Id.push_back(static_cast<IntT>(Writer->StmtId) + 1);
      for (IntT V : Writer->Iter)
        Id.push_back(V);
      (void)WS;
    } else {
      // Initial value: owned by the data decomposition's owner.
      const Statement &RS = P.statement(ReadStmt);
      std::vector<IntT> El =
          elementOf(P, RS.Reads[ReadIdx], RDom.space(), Full);
      std::vector<IntT> SrcV = El;
      SrcV.insert(SrcV.end(), SrcTail.begin(), SrcTail.end());
      Src = DataD.gridCoordinate(SrcV);
      Id.push_back(0);
      for (IntT V : El)
        Id.push_back(V);
    }
    if (Src == Reader)
      return;
    std::vector<IntT> TKey = Src;
    TKey.insert(TKey.end(), Reader.begin(), Reader.end());
    std::vector<IntT> CKey = TKey;
    TKey.insert(TKey.end(), Id.begin(), Id.end());
    Transfers.insert(std::move(TKey));
    Channels.insert(std::move(CKey));
  });
  I.run();
  TrafficEstimate T;
  T.Words = Transfers.size();
  T.Messages = Channels.size();
  return T;
}
