//===- sim/Fleet.h - Crash-tolerant scenario fleet orchestration -*- C++ -*-===//
//
// Part of dmcc, a reproduction of Amarasinghe & Lam, PLDI 1993.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scenario fleet runner: compile a program once, then fan a matrix
/// of simulation scenarios (fault seed x crash seed x checkpoint
/// interval x engine/thread count) across a fork-based worker pool with
/// robust supervision (DESIGN.md §12):
///
///  - every scenario runs in its own forked child, so a wedged or
///    crashed simulation never takes the orchestrator down;
///  - a wall-clock watchdog SIGKILLs children past their deadline;
///  - children that die (signal or nonzero exit) or hang are respawned
///    with exponential backoff up to a bounded retry budget;
///  - scenario i is deterministically assigned to shard i mod Jobs and
///    each shard processes its scenarios in order, so a rerun of the
///    same matrix replays the same assignment;
///  - every scenario is accounted for in the final report, with one of
///    the statuses: ok / mismatch / deadlock / transport-exhausted /
///    timeout / worker-crash / retry-exhausted.
///
/// Surviving scenarios are checked against the clean run: the parent
/// executes the scenario matrix's program once, sequentially and
/// fault-free, and hashes every final-data array; each child hashes its
/// own final arrays the same way, and any difference is reported as a
/// `mismatch` — turning a fleet run into a standing bit-exactness proof
/// over hundreds of hostile fault schedules.
///
//===----------------------------------------------------------------------===//

#ifndef DMCC_SIM_FLEET_H
#define DMCC_SIM_FLEET_H

#include "sim/Simulator.h"

#include <chrono>
#include <set>
#include <string>
#include <vector>

namespace dmcc {

/// One cell of the scenario matrix: a complete fault/recovery/engine
/// configuration for a single simulated run.
struct FleetScenario {
  unsigned Index = 0;       ///< position in the matrix (report key)
  FaultOptions Faults;      ///< fault schedule, incl. Seed and CrashSeed
  uint64_t CheckpointInterval = 0; ///< logical steps; 0 = no checkpoints
  unsigned Threads = 1;     ///< simulator engine: 1 = sequential
  /// Scheduler choice (DESIGN.md §14); SimEngine::Event implies
  /// Threads == 1 (buildMatrix never emits the invalid combination).
  SimEngine Engine = SimEngine::Rounds;
};

/// Final classification of one scenario after supervision.
enum class ScenarioStatus {
  Ok,                 ///< completed, final arrays match the clean run
  Mismatch,           ///< completed but final arrays differ (dmcc bug)
  Deadlock,           ///< simulation stalled with no transport failure
  TransportExhausted, ///< transport gave up on a packet (deterministic)
  Timeout,            ///< watchdog killed the worker (after retries)
  WorkerCrash,        ///< worker died abnormally (after retries)
  RetryExhausted,     ///< respawn budget spent on timeouts/crashes
};

/// Stable lower-case name used in the JSON report.
const char *scenarioStatusName(ScenarioStatus S);

/// What happened to one scenario, including supervision metadata.
struct ScenarioOutcome {
  FleetScenario Scn;
  ScenarioStatus Status = ScenarioStatus::WorkerCrash;
  unsigned Attempts = 0;    ///< worker spawns consumed (1 = clean)
  std::string LastFailure;  ///< last retryable failure, if any
  double MakespanSeconds = 0;
  uint64_t Retransmissions = 0;
  uint64_t Crashes = 0;
  uint64_t Rollbacks = 0;
  uint64_t ResultHash = 0;  ///< final-array hash (0 if never completed)

  bool ok() const { return Status == ScenarioStatus::Ok; }
};

/// Orchestrator tuning plus the sabotage hooks the supervision tests
/// use to manufacture hostile workers deterministically.
struct FleetOptions {
  unsigned Jobs = 4;            ///< worker shards (concurrent children)
  double TimeoutSeconds = 30;   ///< per-scenario watchdog deadline
  unsigned MaxRetries = 2;      ///< respawns after a timeout/crash
  double RetryBackoffSeconds = 0.05; ///< first respawn delay; doubles
  /// Sabotage hooks: scenario indices whose worker hangs forever
  /// (exercises the watchdog), aborts on every attempt (exercises
  /// retry exhaustion), or aborts on the first attempt only (exercises
  /// retry-then-succeed). Applied in the child, after fork.
  std::set<unsigned> HangScenarios;
  std::set<unsigned> AbortScenarios;
  std::set<unsigned> AbortOnceScenarios;
  /// Append-only resume journal (DESIGN.md §13). When non-empty, run()
  /// records one CRC-framed record per supervision event at this path:
  /// a meta record binding the journal to this matrix (scenario count +
  /// golden hash), a start record when a scenario is first taken up,
  /// and a verdict record when it reaches a terminal status — each
  /// fdatasync'd, so a SIGKILL of the orchestrator loses at most one
  /// torn trailing record (discarded on resume).
  std::string JournalPath;
  /// Replay JournalPath before running: scenarios with a journaled
  /// verdict are restored into the report and never re-run; scenarios
  /// only started (in flight at the kill) are re-queued. The resumed
  /// report is identical to an uninterrupted sweep. A missing or empty
  /// journal resumes as a fresh sweep, so a kill/restart loop can pass
  /// Resume unconditionally.
  bool Resume = false;
};

/// Aggregated fleet result: one outcome per scenario (matrix order),
/// plus the clean-run reference hash and wall-clock totals.
struct FleetReport {
  std::vector<ScenarioOutcome> Outcomes;
  uint64_t GoldenHash = 0;   ///< clean sequential run's final-array hash
  double ElapsedSeconds = 0; ///< orchestrator wall-clock
  unsigned Jobs = 0;
  /// Scenarios whose verdicts were restored from the resume journal
  /// (FleetOptions::Resume) instead of being re-run.
  unsigned ResumedFromJournal = 0;
  /// Non-empty when the sweep aborted before completion: the journal
  /// could not be opened/appended (ErrorIsIo) or does not belong to
  /// this matrix (incompatible meta record; a usage error).
  std::string Error;
  bool ErrorIsIo = false;

  unsigned count(ScenarioStatus S) const;
  /// True when every scenario reached a terminal status (always holds
  /// after run(); exposed so tests can assert it independently).
  bool allAccounted() const { return true; }
  /// Renders the report as a single JSON document.
  std::string json() const;
};

/// Dimensions of a scenario matrix; the cross product of all vectors
/// becomes the fleet's work list. Empty vectors mean "one default cell"
/// on that axis.
struct FleetMatrixSpec {
  std::vector<uint64_t> FaultSeeds;           ///< default: {1}
  std::vector<uint64_t> CrashSeeds;           ///< default: {0}
  std::vector<uint64_t> CheckpointIntervals;  ///< default: {0}
  std::vector<unsigned> ThreadCounts;         ///< default: {1}
  /// Scheduler axis; default: {SimEngine::Rounds}. The event engine is
  /// single-threaded, so event cells are emitted only for the thread
  /// count 1 (other counts are skipped, keeping indices contiguous).
  std::vector<SimEngine> Engines;
  /// Rates shared by every scenario (Seed/CrashSeed overwritten per
  /// cell). CrashRate is zeroed in cells without checkpointing, where
  /// a crash would be unrecoverable by construction.
  FaultOptions Base;
};

/// Expands \p Spec's cross product into an indexed scenario list.
std::vector<FleetScenario> buildMatrix(const FleetMatrixSpec &Spec);

/// One program's report within a multi-program sweep (the dmcc-fleet
/// --programs axis): the program file it ran and its full report.
struct NamedFleetReport {
  std::string File;
  FleetReport Report;
};

/// Renders a multi-program sweep as one JSON document: a "programs"
/// array grouping each program's complete report under its file name,
/// plus a "totals" object aggregating scenario counts and wall-clock
/// across programs. A single-entry list still renders grouped — the
/// shape is decided by the --programs flag, not the program count.
std::string groupedFleetJson(const std::vector<NamedFleetReport> &Reports);

/// Saturating conversion from a seconds value to a steady_clock
/// duration for deadline arithmetic: NaN and non-positive inputs map to
/// zero, and anything above ~31 years pins at that cap — so
/// `Clock::now() + boundedSeconds(x)` can never shift past the clock's
/// 63-bit nanosecond range (duration_cast of an unrepresentable double
/// is undefined behavior, not merely a wrong deadline).
std::chrono::steady_clock::duration boundedSeconds(double Seconds);

/// Exponential respawn backoff, clamped: \p FirstSeconds doubles per
/// prior attempt but never exceeds 60 s, so an arbitrarily large retry
/// count cannot overflow the doubling into inf or push a deadline past
/// the clock range. Attempt counts from 0/1 (first spawn) upward.
double clampedBackoffSeconds(double FirstSeconds, unsigned Attempt);

/// The fleet orchestrator. Holds the once-compiled program; run() fans
/// a scenario list across the worker pool and aggregates the report.
/// The caller must not hold live threads across run(): the supervisor
/// forks, and only the children may go multi-threaded.
class Fleet {
public:
  Fleet(const Program &P, const CompiledProgram &CP,
        const CompileSpec &Spec, std::map<std::string, IntT> Params,
        IntT Procs, FleetOptions FO);

  /// Runs every scenario under supervision; blocks until all are
  /// terminal. Outcomes are returned in matrix (index) order.
  FleetReport run(const std::vector<FleetScenario> &Matrix);

  /// The clean reference: sequential, fault-free, functional run,
  /// hashed over every final-data array (computed once, cached).
  uint64_t goldenHash();

private:
  struct Shard;
  /// Runs one scenario in-process and fills the wire fields; factored
  /// out so the child body stays fork-safe and tiny.
  SimOptions scenarioOptions(const FleetScenario &S) const;

  const Program &P;
  const CompiledProgram &CP;
  const CompileSpec &Spec;
  std::map<std::string, IntT> Params;
  IntT Procs;
  FleetOptions FO;
  uint64_t Golden = 0;
  bool GoldenComputed = false;
};

} // namespace dmcc

#endif // DMCC_SIM_FLEET_H
