//===- sim/FaultModel.cpp -------------------------------------*- C++ -*-===//

#include "sim/FaultModel.h"

#include <cmath>

using namespace dmcc;

namespace {

/// SplitMix64 finalizer: a strong 64-bit mixer, used both to combine
/// identity words and to turn them into uniform variates.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t combine(uint64_t H, uint64_t X) { return mix64(H ^ mix64(X)); }

/// Distinct streams so the same (channel, seq, attempt) identity yields
/// independent drop/ack/dup/delay decisions.
enum Stream : uint64_t {
  DataStream = 0x11,
  AckStream = 0x22,
  DupStream = 0x33,
  DelayStream = 0x44,
  SlowStream = 0x55,
  CrashStream = 0x66,
  CorruptStream = 0x77,
  PartitionStream = 0x88,
  PartitionLenStream = 0x99,
  SlowLinkStream = 0xAA,
  SlowLinkFactorStream = 0xBB,
};

} // namespace

uint64_t FaultModel::channelId(unsigned CommId,
                               const std::vector<IntT> &Src,
                               const std::vector<IntT> &Dst) {
  uint64_t H = mix64(0xC0FFEEull + CommId);
  for (IntT C : Src)
    H = combine(H, static_cast<uint64_t>(C) + 1);
  H = combine(H, 0xD15C0ull); // separator: ((1),(2)) != ((1,2),())
  for (IntT C : Dst)
    H = combine(H, static_cast<uint64_t>(C) + 1);
  return H;
}

double FaultModel::unitWith(uint64_t SeedV, uint64_t A, uint64_t B,
                            uint64_t C, uint64_t D) const {
  uint64_t H = combine(combine(combine(combine(mix64(SeedV), A), B), C),
                       D);
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0);
}

double FaultModel::unit(uint64_t A, uint64_t B, uint64_t C,
                        uint64_t D) const {
  return unitWith(Opt.Seed, A, B, C, D);
}

bool FaultModel::dropData(uint64_t Chan, uint64_t Seq,
                          unsigned Attempt) const {
  return unit(DataStream, Chan, Seq, Attempt) < Opt.DropRate;
}

bool FaultModel::dropAck(uint64_t Chan, uint64_t Seq,
                         unsigned Attempt) const {
  return unit(AckStream, Chan, Seq, Attempt) < Opt.DropRate;
}

bool FaultModel::duplicate(uint64_t Chan, uint64_t Seq,
                           unsigned Attempt) const {
  return unit(DupStream, Chan, Seq, Attempt) < Opt.DupRate;
}

double FaultModel::deliveryDelay(uint64_t Chan, uint64_t Seq,
                                 unsigned Attempt, unsigned Copy) const {
  if (Opt.MaxDelaySeconds <= 0)
    return 0;
  return unit(DelayStream, Chan, Seq,
              (static_cast<uint64_t>(Attempt) << 32) | Copy) *
         Opt.MaxDelaySeconds;
}

double FaultModel::slowdown(unsigned Phys) const {
  if (Opt.MaxSlowdown <= 1.0)
    return 1.0;
  return 1.0 + unit(SlowStream, Phys, 0, 0) * (Opt.MaxSlowdown - 1.0);
}

bool FaultModel::corruptData(uint64_t Chan, uint64_t Seq,
                             unsigned Attempt) const {
  return unit(CorruptStream, Chan, Seq, Attempt) < Opt.CorruptRate;
}

unsigned FaultModel::partitionOutage(uint64_t Chan, uint64_t Seq) const {
  if (Opt.PartitionRate <= 0 || Opt.PartitionMaxOutage == 0)
    return 0;
  if (unit(PartitionStream, Chan, Seq, 0) >= Opt.PartitionRate)
    return 0;
  // Caught in a partition: the outage length is an independent draw in
  // [1, PartitionMaxOutage].
  double U = unit(PartitionLenStream, Chan, Seq, 0);
  unsigned Len = 1 + static_cast<unsigned>(
                         U * static_cast<double>(Opt.PartitionMaxOutage));
  return Len > Opt.PartitionMaxOutage ? Opt.PartitionMaxOutage : Len;
}

double FaultModel::linkFactor(unsigned SrcPhys, unsigned DstPhys) const {
  if (!Opt.slowLinks() || SrcPhys == DstPhys)
    return 1.0;
  if (unit(SlowLinkStream, SrcPhys, DstPhys, 0) >= Opt.SlowLinkRate)
    return 1.0;
  return 1.0 + unit(SlowLinkFactorStream, SrcPhys, DstPhys, 0) *
                   (Opt.SlowLinkMaxFactor - 1.0);
}

bool FaultModel::crashAt(unsigned Vp, uint64_t Step) const {
  if (Opt.CrashRate <= 0)
    return false;
  return unitWith(Opt.CrashSeed, CrashStream, Vp, Step, 0) < Opt.CrashRate;
}

double FaultModel::backoffDelay(unsigned Attempt) const {
  if (Attempt == 0)
    return 0;
  double D = Opt.RetryTimeoutSeconds *
             std::pow(Opt.BackoffFactor, static_cast<double>(Attempt - 1));
  // Clamp the exponential: a huge retry budget must not push the wait
  // to infinity (which would poison every ReadyTime downstream). The
  // cap — ~31 simulated years — is unreachable by any sane schedule,
  // so existing fault goldens are bit-identical.
  constexpr double MaxBackoffSeconds = 1e9;
  return D < MaxBackoffSeconds ? D : MaxBackoffSeconds;
}
