//===- sim/Score.cpp ------------------------------------------*- C++ -*-===//

#include "sim/Score.h"

#include "sim/Fleet.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <sys/wait.h>
#include <unistd.h>

using namespace dmcc;

namespace {

using Clock = std::chrono::steady_clock;

enum ChildStatus : int32_t {
  ChildOk = 0,
  ChildCompileError = 1,
  ChildSimError = 2,
};

/// Fixed-size record a scoring child writes to its pipe in one atomic
/// write (well under PIPE_BUF); a short or unmagic read is a crash.
struct WireScore {
  uint32_t Magic = 0;
  int32_t Status = 0;
  double Makespan = 0;
  uint64_t Messages = 0;
  uint64_t Words = 0;
  double CompileSeconds = 0;
  uint32_t CommSets = 0;
  char Error[96] = {};
};

constexpr uint32_t WireMagic = 0x53434F52; // "SCOR"

/// Compiles and simulates one candidate in the child process.
WireScore scoreOne(const Program &P, const CompileSpec &Spec,
                   const ScoreOptions &SO) {
  WireScore W;
  W.Magic = WireMagic;
  CompiledProgram CP = compile(P, Spec, SO.Compile);
  W.CompileSeconds = CP.Stats.CompileSeconds;
  W.CommSets = CP.Stats.NumCommSetsAfterSelfReuse;
  if (!CP.Ok) {
    W.Status = ChildCompileError;
    std::snprintf(W.Error, sizeof W.Error, "%s", CP.ErrorMessage.c_str());
    return W;
  }
  SimOptions Sim;
  Sim.PhysGrid = {SO.Procs};
  Sim.ParamValues = SO.Params;
  // Performance mode: symbolic values, collapsed compute loops. The
  // ranking only needs the schedule, and the collapsed run is what
  // makes scoring dozens of candidates affordable.
  Sim.Functional = false;
  Sim.CollapseLoops = true;
  Sim.Engine = SO.Engine;
  Simulator S(P, CP, Spec, Sim);
  SimResult R = S.run();
  W.Makespan = R.MakespanSeconds;
  W.Messages = R.Messages;
  W.Words = R.Words;
  if (!R.Ok) {
    W.Status = ChildSimError;
    std::snprintf(W.Error, sizeof W.Error, "%s", R.Error.c_str());
  }
  return W;
}

/// Per-shard supervision state, mirroring Fleet::Shard: shard k owns
/// candidates k, k+Jobs, ... and scores them in order, one child at a
/// time.
struct Shard {
  std::deque<unsigned> Queue;
  bool HasCur = false;
  unsigned Cur = 0;
  unsigned Attempt = 0;
  pid_t Pid = -1;
  int Fd = -1;
  Clock::time_point Deadline;
  Clock::time_point NextSpawn;
};

} // namespace

std::vector<SpecScore>
dmcc::scoreSpecs(const Program &P, const std::vector<CompileSpec> &Specs,
                 const ScoreOptions &SO) {
  std::vector<SpecScore> Out(Specs.size());
  if (Specs.empty())
    return Out;
  unsigned Jobs = SO.Jobs == 0 ? 1 : SO.Jobs;

  std::vector<Shard> Shards(Jobs);
  for (size_t I = 0; I != Specs.size(); ++I)
    Shards[I % Jobs].Queue.push_back(static_cast<unsigned>(I));

  signal(SIGPIPE, SIG_IGN);

  auto Spawn = [&](Shard &Sh) {
    int Fds[2];
    if (pipe(Fds) != 0) {
      Sh.NextSpawn = Clock::now() + std::chrono::milliseconds(10);
      return;
    }
    ++Sh.Attempt;
    pid_t Pid = fork();
    if (Pid == 0) {
      // --- child ---
      close(Fds[0]);
      WireScore W = scoreOne(P, Specs[Sh.Cur], SO);
      ssize_t N = write(Fds[1], &W, sizeof W);
      (void)N;
      _exit(0); // no stdio flush: the parent owns the terminal
    }
    // --- parent ---
    close(Fds[1]);
    if (Pid < 0) {
      close(Fds[0]);
      --Sh.Attempt;
      Sh.NextSpawn = Clock::now() + std::chrono::milliseconds(10);
      return;
    }
    Sh.Pid = Pid;
    Sh.Fd = Fds[0];
    Sh.Deadline = Clock::now() + boundedSeconds(SO.TimeoutSeconds);
  };

  unsigned Remaining = static_cast<unsigned>(Specs.size());

  auto Finish = [&](Shard &Sh, SpecScore S) {
    S.Attempts = Sh.Attempt;
    Out[Sh.Cur] = std::move(S);
    Sh.HasCur = false;
    Sh.Attempt = 0;
    --Remaining;
  };

  // A timeout or crash is retried within the budget (the failure may be
  // environmental: OOM kill, machine pause); after that the candidate
  // is scored infeasible with the last failure as the reason.
  auto FailRetryable = [&](Shard &Sh, std::string Why) {
    if (Sh.Attempt <= SO.MaxRetries) {
      Sh.NextSpawn =
          Clock::now() + boundedSeconds(clampedBackoffSeconds(
                             SO.RetryBackoffSeconds, Sh.Attempt));
      return;
    }
    SpecScore S;
    S.Error = std::move(Why);
    Finish(Sh, std::move(S));
  };

  auto Classify = [&](Shard &Sh, int WaitStatus, bool Timedout) {
    WireScore W;
    ssize_t N = 0;
    if (!Timedout) {
      char *Dst = reinterpret_cast<char *>(&W);
      while (N < static_cast<ssize_t>(sizeof W)) {
        ssize_t Got = read(Sh.Fd, Dst + N, sizeof W - N);
        if (Got <= 0)
          break;
        N += Got;
      }
    }
    close(Sh.Fd);
    Sh.Fd = -1;
    Sh.Pid = -1;
    if (Timedout) {
      char Buf[96];
      std::snprintf(Buf, sizeof Buf,
                    "watchdog timeout after %.3f s (attempt %u)",
                    SO.TimeoutSeconds, Sh.Attempt);
      FailRetryable(Sh, Buf);
      return;
    }
    bool Structured = N == static_cast<ssize_t>(sizeof W) &&
                      W.Magic == WireMagic && WIFEXITED(WaitStatus) &&
                      WEXITSTATUS(WaitStatus) == 0;
    if (!Structured) {
      char Buf[96];
      if (WIFSIGNALED(WaitStatus))
        std::snprintf(Buf, sizeof Buf,
                      "scoring worker killed by signal %d (attempt %u)",
                      WTERMSIG(WaitStatus), Sh.Attempt);
      else
        std::snprintf(Buf, sizeof Buf,
                      "scoring worker exited with status %d (attempt %u)",
                      WIFEXITED(WaitStatus) ? WEXITSTATUS(WaitStatus) : -1,
                      Sh.Attempt);
      FailRetryable(Sh, Buf);
      return;
    }
    SpecScore S;
    S.Ok = W.Status == ChildOk;
    S.Error = W.Error;
    S.MakespanSeconds = W.Makespan;
    S.Messages = W.Messages;
    S.Words = W.Words;
    S.CompileSeconds = W.CompileSeconds;
    S.CommSets = W.CommSets;
    Finish(Sh, std::move(S));
  };

  while (Remaining) {
    bool Progress = false;
    for (Shard &Sh : Shards) {
      if (Sh.Pid < 0) {
        if (!Sh.HasCur) {
          if (Sh.Queue.empty())
            continue;
          Sh.Cur = Sh.Queue.front();
          Sh.Queue.pop_front();
          Sh.HasCur = true;
          Sh.Attempt = 0;
          Sh.NextSpawn = Clock::now();
        }
        if (Clock::now() >= Sh.NextSpawn) {
          Spawn(Sh);
          Progress = true;
        }
        continue;
      }
      int WaitStatus = 0;
      pid_t Got = waitpid(Sh.Pid, &WaitStatus, WNOHANG);
      if (Got == Sh.Pid) {
        Classify(Sh, WaitStatus, /*Timedout=*/false);
        Progress = true;
      } else if (Got == 0 && Clock::now() > Sh.Deadline) {
        kill(Sh.Pid, SIGKILL);
        waitpid(Sh.Pid, &WaitStatus, 0);
        Classify(Sh, WaitStatus, /*Timedout=*/true);
        Progress = true;
      }
    }
    if (!Progress && Remaining) {
      struct timespec TS = {0, 2 * 1000 * 1000}; // 2 ms sweep
      nanosleep(&TS, nullptr);
    }
  }
  return Out;
}
