//===- sim/Fleet.cpp ------------------------------------------*- C++ -*-===//

#include "sim/Fleet.h"

#include "support/StableStore.h"

#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dmcc;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// SplitMix64 finalizer, as in FaultModel.cpp: the fleet's final-array
/// hash must be a pure function of the array contents so parent and
/// child agree without shipping the arrays over the pipe.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t combine(uint64_t H, uint64_t X) { return mix64(H ^ mix64(X)); }

/// Hashes every final-data array of a completed functional run, in
/// array-id order, element by element (bit pattern of the double, or a
/// sentinel for missing elements). Both the parent's clean run and each
/// child's scenario run sweep through this same code, so equal hashes
/// mean bit-identical final arrays.
uint64_t hashFinalArrays(Simulator &Sim, const Program &P,
                         const CompileSpec &Spec,
                         const std::map<std::string, IntT> &Params) {
  std::vector<IntT> Env(P.space().size(), 0);
  for (unsigned I = 0; I != P.space().size(); ++I)
    if (P.space().kind(I) == VarKind::Param)
      Env[I] = Params.at(P.space().name(I));
  uint64_t H = mix64(0xF1EE7ull);
  for (const auto &[AId, FD] : Spec.FinalData) {
    (void)FD;
    H = combine(H, AId + 1);
    const ArrayDecl &AD = P.array(AId);
    std::vector<IntT> Sizes;
    for (const AffineExpr &D : AD.DimSizes)
      Sizes.push_back(D.evaluate(Env));
    std::vector<IntT> Idx(Sizes.size(), 0);
    bool Done = Sizes.empty();
    for (IntT S : Sizes)
      if (S <= 0)
        Done = true;
    while (!Done) {
      auto Got = Sim.finalValue(AId, Idx);
      if (Got) {
        uint64_t Bits;
        double V = *Got;
        std::memcpy(&Bits, &V, sizeof Bits);
        H = combine(H, Bits);
      } else {
        H = combine(H, 0xDEADull); // distinct mark for a missing element
      }
      for (unsigned K = Idx.size(); K-- > 0;) {
        if (++Idx[K] < Sizes[K])
          break;
        Idx[K] = 0;
        if (K == 0)
          Done = true;
      }
    }
  }
  return H;
}

/// Child-side terminal classification, shipped through the pipe.
enum ChildStatus : int32_t {
  ChildOk = 0,
  ChildMismatch = 1,
  ChildDeadlock = 2,
  ChildTransportExhausted = 3,
};

/// Fixed-size result record a worker writes to its pipe in one atomic
/// write (well under PIPE_BUF). Anything short of a full record with
/// the right magic is treated as a worker crash.
struct WireResult {
  uint32_t Magic = 0;
  int32_t Status = 0;
  double Makespan = 0;
  uint64_t Retrans = 0;
  uint64_t Crashes = 0;
  uint64_t Rollbacks = 0;
  uint64_t Hash = 0;
  char Error[96] = {};
};

constexpr uint32_t WireMagic = 0x464C5452; // "FLTR"

/// Resume-journal frame types (DESIGN.md §13) and payload version.
constexpr uint32_t JrnlMetaType = 0x464C4D54;    // "FLMT"
constexpr uint32_t JrnlStartType = 0x464C5354;   // "FLST"
constexpr uint32_t JrnlVerdictType = 0x464C5644; // "FLVD"
constexpr uint32_t JournalVersion = 1;

/// Number of ScenarioStatus values, for validating journaled verdicts.
constexpr uint32_t NumScenarioStatuses = 7;

/// Appends minimally-escaped JSON string content.
void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      Out += ' ';
    } else {
      Out += C;
    }
  }
}

} // namespace

const char *dmcc::scenarioStatusName(ScenarioStatus S) {
  switch (S) {
  case ScenarioStatus::Ok:
    return "ok";
  case ScenarioStatus::Mismatch:
    return "mismatch";
  case ScenarioStatus::Deadlock:
    return "deadlock";
  case ScenarioStatus::TransportExhausted:
    return "transport-exhausted";
  case ScenarioStatus::Timeout:
    return "timeout";
  case ScenarioStatus::WorkerCrash:
    return "worker-crash";
  case ScenarioStatus::RetryExhausted:
    return "retry-exhausted";
  }
  return "unknown";
}

unsigned FleetReport::count(ScenarioStatus S) const {
  unsigned N = 0;
  for (const ScenarioOutcome &O : Outcomes)
    N += O.Status == S;
  return N;
}

std::string FleetReport::json() const {
  std::string Out;
  char Buf[512];
  std::snprintf(Buf, sizeof Buf,
                "{\n  \"golden_hash\": \"0x%016" PRIx64 "\",\n"
                "  \"elapsed_seconds\": %.3f,\n  \"jobs\": %u,\n"
                "  \"scenarios_total\": %zu,\n  \"counts\": {",
                GoldenHash, ElapsedSeconds, Jobs, Outcomes.size());
  Out += Buf;
  static const ScenarioStatus All[] = {
      ScenarioStatus::Ok,       ScenarioStatus::Mismatch,
      ScenarioStatus::Deadlock, ScenarioStatus::TransportExhausted,
      ScenarioStatus::Timeout,  ScenarioStatus::WorkerCrash,
      ScenarioStatus::RetryExhausted};
  for (unsigned I = 0; I != 7; ++I) {
    std::snprintf(Buf, sizeof Buf, "%s\"%s\": %u", I ? ", " : "",
                  scenarioStatusName(All[I]), count(All[I]));
    Out += Buf;
  }
  Out += "},\n  \"scenarios\": [\n";
  for (size_t I = 0; I != Outcomes.size(); ++I) {
    const ScenarioOutcome &O = Outcomes[I];
    const FaultOptions &F = O.Scn.Faults;
    std::snprintf(
        Buf, sizeof Buf,
        "    {\"index\": %u, \"fault_seed\": %" PRIu64
        ", \"crash_seed\": %" PRIu64 ", \"checkpoint_interval\": %" PRIu64
        ", \"threads\": %u, \"engine\": \"%s\", \"drop_rate\": %g, "
        "\"corrupt_rate\": %g, "
        "\"partition_rate\": %g, \"slow_link_rate\": %g, "
        "\"crash_rate\": %g, \"status\": \"%s\", \"attempts\": %u, "
        "\"makespan_seconds\": %.9f, \"retransmissions\": %" PRIu64
        ", \"crashes\": %" PRIu64 ", \"rollbacks\": %" PRIu64
        ", \"hash\": \"0x%016" PRIx64 "\", \"hash_match\": %s, "
        "\"last_failure\": \"",
        O.Scn.Index, F.Seed, F.CrashSeed, O.Scn.CheckpointInterval,
        O.Scn.Threads,
        O.Scn.Engine == SimEngine::Event ? "event" : "rounds",
        F.DropRate, F.CorruptRate, F.PartitionRate,
        F.SlowLinkRate, F.CrashRate, scenarioStatusName(O.Status),
        O.Attempts, O.MakespanSeconds, O.Retransmissions, O.Crashes,
        O.Rollbacks, O.ResultHash,
        O.ok() && O.ResultHash == GoldenHash ? "true" : "false");
    Out += Buf;
    appendEscaped(Out, O.LastFailure);
    Out += "\"}";
    Out += I + 1 != Outcomes.size() ? ",\n" : "\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

std::string
dmcc::groupedFleetJson(const std::vector<NamedFleetReport> &Reports) {
  size_t Total = 0;
  double Elapsed = 0;
  unsigned Counts[7] = {};
  static const ScenarioStatus All[] = {
      ScenarioStatus::Ok,       ScenarioStatus::Mismatch,
      ScenarioStatus::Deadlock, ScenarioStatus::TransportExhausted,
      ScenarioStatus::Timeout,  ScenarioStatus::WorkerCrash,
      ScenarioStatus::RetryExhausted};
  for (const NamedFleetReport &R : Reports) {
    Total += R.Report.Outcomes.size();
    Elapsed += R.Report.ElapsedSeconds;
    for (unsigned I = 0; I != 7; ++I)
      Counts[I] += R.Report.count(All[I]);
  }

  std::string Out = "{\n  \"programs\": [\n";
  char Buf[256];
  for (size_t I = 0; I != Reports.size(); ++I) {
    Out += "    {\"file\": \"";
    appendEscaped(Out, Reports[I].File);
    Out += "\",\n     \"report\": ";
    std::string Rep = Reports[I].Report.json();
    while (!Rep.empty() && Rep.back() == '\n')
      Rep.pop_back();
    Out += Rep;
    Out += I + 1 != Reports.size() ? "},\n" : "}\n";
  }
  std::snprintf(Buf, sizeof Buf,
                "  ],\n  \"totals\": {\"programs\": %zu, "
                "\"scenarios_total\": %zu, \"elapsed_seconds\": %.3f, "
                "\"counts\": {",
                Reports.size(), Total, Elapsed);
  Out += Buf;
  for (unsigned I = 0; I != 7; ++I) {
    std::snprintf(Buf, sizeof Buf, "%s\"%s\": %u", I ? ", " : "",
                  scenarioStatusName(All[I]), Counts[I]);
    Out += Buf;
  }
  Out += "}}\n}\n";
  return Out;
}

std::vector<FleetScenario> dmcc::buildMatrix(const FleetMatrixSpec &MS) {
  auto OrDefault = [](std::vector<uint64_t> V,
                      uint64_t D) -> std::vector<uint64_t> {
    return V.empty() ? std::vector<uint64_t>{D} : V;
  };
  std::vector<uint64_t> FSeeds = OrDefault(MS.FaultSeeds, 1);
  std::vector<uint64_t> CSeeds = OrDefault(MS.CrashSeeds, 0);
  std::vector<uint64_t> Intervals = OrDefault(MS.CheckpointIntervals, 0);
  std::vector<unsigned> Threads =
      MS.ThreadCounts.empty() ? std::vector<unsigned>{1} : MS.ThreadCounts;
  std::vector<SimEngine> Engines =
      MS.Engines.empty() ? std::vector<SimEngine>{SimEngine::Rounds}
                         : MS.Engines;

  std::vector<FleetScenario> Out;
  for (uint64_t FS : FSeeds)
    for (uint64_t CS : CSeeds)
      for (uint64_t IV : Intervals)
        for (SimEngine Eng : Engines)
          for (unsigned T : Threads) {
            // The event engine is single-threaded: emit its cells only
            // at thread count 1 (duplicates would re-run the identical
            // configuration under a different index).
            if (Eng == SimEngine::Event && T > 1)
              continue;
            FleetScenario S;
            S.Index = static_cast<unsigned>(Out.size());
            S.Faults = MS.Base;
            S.Faults.Seed = FS;
            S.Faults.CrashSeed = CS;
            // A crash without checkpointing is unrecoverable by
            // construction; keep those cells crash-free instead of
            // polluting the matrix with guaranteed losses.
            if (IV == 0)
              S.Faults.CrashRate = 0;
            S.CheckpointInterval = IV;
            S.Threads = T == 0 ? 1 : T;
            S.Engine = Eng;
            Out.push_back(std::move(S));
          }
  return Out;
}

std::chrono::steady_clock::duration dmcc::boundedSeconds(double Seconds) {
  // NaN fails every comparison, so `!(Seconds > 0)` also catches it.
  if (!(Seconds > 0))
    return {};
  // steady_clock counts nanoseconds in 63 bits (~292 years); casting a
  // double beyond that range is undefined behavior, not a saturated
  // deadline. ~31 years is far past any plausible watchdog or backoff.
  constexpr double MaxSeconds = 1e9;
  if (Seconds > MaxSeconds)
    Seconds = MaxSeconds;
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(Seconds));
}

double dmcc::clampedBackoffSeconds(double FirstSeconds, unsigned Attempt) {
  constexpr double MaxBackoffSeconds = 60;
  double Back = FirstSeconds;
  for (unsigned K = 1; K < Attempt && Back < MaxBackoffSeconds; ++K)
    Back *= 2;
  return Back < MaxBackoffSeconds ? Back : MaxBackoffSeconds;
}

Fleet::Fleet(const Program &Prog, const CompiledProgram &Comp,
             const CompileSpec &Sp, std::map<std::string, IntT> Par,
             IntT Pr, FleetOptions Opt)
    : P(Prog), CP(Comp), Spec(Sp), Params(std::move(Par)), Procs(Pr),
      FO(Opt) {
  if (FO.Jobs == 0)
    FO.Jobs = 1;
}

SimOptions Fleet::scenarioOptions(const FleetScenario &S) const {
  SimOptions SO;
  SO.PhysGrid = {Procs};
  SO.ParamValues = Params;
  SO.Functional = true;
  SO.CollapseLoops = false;
  SO.Faults = S.Faults;
  SO.Checkpoint.IntervalSteps = S.CheckpointInterval;
  SO.Threads = S.Threads;
  SO.Engine = S.Engine;
  return SO;
}

uint64_t Fleet::goldenHash() {
  if (!GoldenComputed) {
    FleetScenario Clean; // all fault knobs at defaults, sequential
    Simulator Sim(P, CP, Spec, scenarioOptions(Clean));
    SimResult R = Sim.run();
    Golden = R.Ok ? hashFinalArrays(Sim, P, Spec, Params) : 0;
    GoldenComputed = true;
  }
  return Golden;
}

/// Per-shard supervision state. Shard k owns scenarios k, k+Jobs,
/// k+2*Jobs, ... and runs them in order, one child at a time.
struct Fleet::Shard {
  std::deque<unsigned> Queue; ///< matrix positions still to run
  bool HasCur = false;
  unsigned Cur = 0;      ///< scenario currently being supervised
  unsigned Attempt = 0;  ///< spawns consumed for Cur
  pid_t Pid = -1;        ///< active child, or -1
  int Fd = -1;           ///< read end of the child's result pipe
  Clock::time_point Deadline;  ///< watchdog expiry for the child
  Clock::time_point NextSpawn; ///< earliest respawn (backoff)
};

FleetReport Fleet::run(const std::vector<FleetScenario> &Matrix) {
  Clock::time_point T0 = Clock::now();
  FleetReport Rep;
  Rep.Jobs = FO.Jobs;
  Rep.GoldenHash = goldenHash();
  Rep.Outcomes.resize(Matrix.size());
  for (size_t I = 0; I != Matrix.size(); ++I)
    Rep.Outcomes[I].Scn = Matrix[I];

  // Resume journal (DESIGN.md §13): replay verdicts already on disk,
  // then open for appending with any torn tail cut off.
  stable::JournalWriter Jrnl;
  std::vector<char> Done(Matrix.size(), 0);
  bool MetaOnDisk = false;
  if (!FO.JournalPath.empty()) {
    uint64_t TruncateTo = 0;
    if (FO.Resume) {
      stable::ReadFramesResult RF = stable::readFrames(FO.JournalPath);
      // A missing/unreadable journal resumes as a fresh sweep — the
      // kill may have landed before the journal was even created.
      if (RF.Error.empty()) {
        TruncateTo = RF.ValidBytes;
        for (const stable::Frame &F : RF.Frames) {
          stable::ByteReader Rd(F.Payload);
          if (F.Type == JrnlMetaType) {
            uint32_t Ver = Rd.u32();
            uint64_t Count = Rd.u64(), Golden = Rd.u64();
            if (Ver != JournalVersion || Count != Matrix.size() ||
                Golden != Rep.GoldenHash || !Rd.ok()) {
              Rep.Error = "resume journal does not belong to this "
                          "matrix (scenario count, golden hash or "
                          "version differ): " +
                          FO.JournalPath;
              return Rep;
            }
            MetaOnDisk = true;
          } else if (F.Type == JrnlVerdictType) {
            uint32_t Index = Rd.u32(), Status = Rd.u32(),
                     Attempts = Rd.u32();
            double Makespan = Rd.f64();
            uint64_t Retrans = Rd.u64(), Crashes = Rd.u64(),
                     Rollbacks = Rd.u64(), Hash = Rd.u64();
            std::string LastFailure = Rd.str();
            // Verdicts are trusted only under an intact, matching meta
            // record; anything malformed is ignored rather than fatal.
            if (!MetaOnDisk || !Rd.ok() || Index >= Matrix.size() ||
                Status >= NumScenarioStatuses)
              continue;
            ScenarioOutcome &O = Rep.Outcomes[Index];
            O.Status = static_cast<ScenarioStatus>(Status);
            O.Attempts = Attempts;
            O.MakespanSeconds = Makespan;
            O.Retransmissions = Retrans;
            O.Crashes = Crashes;
            O.Rollbacks = Rollbacks;
            O.ResultHash = Hash;
            O.LastFailure = std::move(LastFailure);
            if (!Done[Index]) {
              Done[Index] = 1;
              ++Rep.ResumedFromJournal;
            }
          }
          // Start records carry no verdict: a started-but-unverdicted
          // scenario was in flight at the kill and is simply re-queued.
        }
      }
    }
    std::string Err;
    if (!Jrnl.open(FO.JournalPath, TruncateTo, Err)) {
      Rep.Error = "resume journal: " + Err;
      Rep.ErrorIsIo = true;
      return Rep;
    }
  }
  // Any journal I/O failure after this point aborts the sweep: a fleet
  // asked to be durable must not silently run without its journal.
  auto JournalAppend = [&](uint32_t Type,
                           const stable::ByteWriter &W) -> bool {
    if (!Jrnl.isOpen())
      return true;
    std::string Err;
    if (Jrnl.append(Type, W.bytes(), Err))
      return true;
    Rep.Error = "resume journal: " + Err;
    Rep.ErrorIsIo = true;
    return false;
  };
  if (Jrnl.isOpen() && !MetaOnDisk) {
    stable::ByteWriter W;
    W.u32(JournalVersion);
    W.u64(Matrix.size());
    W.u64(Rep.GoldenHash);
    if (!JournalAppend(JrnlMetaType, W))
      return Rep;
  }

  std::vector<Shard> Shards(FO.Jobs);
  for (size_t I = 0; I != Matrix.size(); ++I)
    if (!Done[I])
      Shards[I % FO.Jobs].Queue.push_back(static_cast<unsigned>(I));

  // SIGPIPE would kill the orchestrator if a child's pipe went away
  // mid-write; the supervisor only reads, but be explicit.
  signal(SIGPIPE, SIG_IGN);

  auto Spawn = [&](Shard &Sh) {
    const FleetScenario &S = Matrix[Sh.Cur];
    int Fds[2];
    if (pipe(Fds) != 0) {
      Sh.NextSpawn = Clock::now() + std::chrono::milliseconds(10);
      return;
    }
    ++Sh.Attempt;
    pid_t Pid = fork();
    if (Pid == 0) {
      // --- child ---
      close(Fds[0]);
      if (FO.HangScenarios.count(S.Index))
        for (;;)
          pause(); // sabotage: wedge until the watchdog fires
      if (FO.AbortScenarios.count(S.Index) ||
          (FO.AbortOnceScenarios.count(S.Index) && Sh.Attempt == 1)) {
        struct rlimit RL = {0, 0};
        setrlimit(RLIMIT_CORE, &RL); // no core file for the sabotage
        std::abort();
      }
      WireResult W;
      W.Magic = WireMagic;
      Simulator Sim(P, CP, Spec, scenarioOptions(S));
      SimResult R = Sim.run();
      W.Makespan = R.MakespanSeconds;
      W.Retrans = R.Retransmissions;
      W.Crashes = R.Recovery.Crashes;
      W.Rollbacks = R.Recovery.Rollbacks;
      if (!R.Ok) {
        W.Status = R.Diag.RetryExhausted.empty()
                       ? ChildDeadlock
                       : ChildTransportExhausted;
        std::snprintf(W.Error, sizeof W.Error, "%s", R.Error.c_str());
      } else {
        W.Hash = hashFinalArrays(Sim, P, Spec, Params);
        W.Status = W.Hash == Golden ? ChildOk : ChildMismatch;
      }
      ssize_t N = write(Fds[1], &W, sizeof W);
      (void)N;
      _exit(0); // no stdio flush: the parent owns the terminal
    }
    // --- parent ---
    close(Fds[1]);
    if (Pid < 0) {
      close(Fds[0]);
      --Sh.Attempt;
      Sh.NextSpawn = Clock::now() + std::chrono::milliseconds(10);
      return;
    }
    Sh.Pid = Pid;
    Sh.Fd = Fds[0];
    Sh.Deadline = Clock::now() + boundedSeconds(FO.TimeoutSeconds);
  };

  unsigned Remaining =
      static_cast<unsigned>(Matrix.size()) - Rep.ResumedFromJournal;

  // Terminal bookkeeping for the shard's current scenario.
  auto Finish = [&](Shard &Sh, ScenarioOutcome O) {
    // Keep the failure trail of earlier retried attempts even when a
    // respawn eventually succeeded.
    if (O.LastFailure.empty())
      O.LastFailure = Rep.Outcomes[Sh.Cur].LastFailure;
    O.Scn = Matrix[Sh.Cur];
    O.Attempts = Sh.Attempt;
    Rep.Outcomes[Sh.Cur] = std::move(O);
    Sh.HasCur = false;
    Sh.Attempt = 0;
    --Remaining;
    // The verdict hits stable storage before the scenario is considered
    // done, so a resumed sweep never re-runs a verified scenario.
    const ScenarioOutcome &Fin = Rep.Outcomes[Sh.Cur];
    stable::ByteWriter W;
    W.u32(Fin.Scn.Index);
    W.u32(static_cast<uint32_t>(Fin.Status));
    W.u32(Fin.Attempts);
    W.f64(Fin.MakespanSeconds);
    W.u64(Fin.Retransmissions);
    W.u64(Fin.Crashes);
    W.u64(Fin.Rollbacks);
    W.u64(Fin.ResultHash);
    W.str(Fin.LastFailure);
    (void)JournalAppend(JrnlVerdictType, W);
  };

  // A retryable failure (timeout / worker crash): respawn with
  // exponential backoff until the budget runs out.
  auto FailRetryable = [&](Shard &Sh, ScenarioStatus Kind,
                           std::string Why) {
    ScenarioOutcome &O = Rep.Outcomes[Sh.Cur];
    O.LastFailure = std::move(Why);
    if (Sh.Attempt <= FO.MaxRetries) {
      Sh.NextSpawn =
          Clock::now() + boundedSeconds(clampedBackoffSeconds(
                             FO.RetryBackoffSeconds, Sh.Attempt));
      return;
    }
    ScenarioOutcome Fin;
    Fin.LastFailure = O.LastFailure;
    // With no retry budget the raw failure is the verdict; once
    // retries were attempted and spent, the scenario is classified as
    // retry-exhausted with the last failure recorded.
    Fin.Status = FO.MaxRetries == 0 ? Kind : ScenarioStatus::RetryExhausted;
    Finish(Sh, std::move(Fin));
  };

  // Reap one finished child (already waited on) and classify it.
  auto Classify = [&](Shard &Sh, int WaitStatus, bool Timedout) {
    WireResult W;
    ssize_t N = 0;
    if (!Timedout) {
      // Drain the (at most record-sized, atomic) result write.
      char *Dst = reinterpret_cast<char *>(&W);
      while (N < static_cast<ssize_t>(sizeof W)) {
        ssize_t Got = read(Sh.Fd, Dst + N, sizeof W - N);
        if (Got <= 0)
          break;
        N += Got;
      }
    }
    close(Sh.Fd);
    Sh.Fd = -1;
    Sh.Pid = -1;
    if (Timedout) {
      char Buf[96];
      std::snprintf(Buf, sizeof Buf,
                    "watchdog timeout after %.3f s (attempt %u)",
                    FO.TimeoutSeconds, Sh.Attempt);
      FailRetryable(Sh, ScenarioStatus::Timeout, Buf);
      return;
    }
    bool Structured = N == static_cast<ssize_t>(sizeof W) &&
                      W.Magic == WireMagic && WIFEXITED(WaitStatus) &&
                      WEXITSTATUS(WaitStatus) == 0;
    if (!Structured) {
      char Buf[96];
      if (WIFSIGNALED(WaitStatus))
        std::snprintf(Buf, sizeof Buf,
                      "worker killed by signal %d (attempt %u)",
                      WTERMSIG(WaitStatus), Sh.Attempt);
      else
        std::snprintf(Buf, sizeof Buf,
                      "worker exited with status %d (attempt %u)",
                      WIFEXITED(WaitStatus) ? WEXITSTATUS(WaitStatus)
                                            : -1,
                      Sh.Attempt);
      FailRetryable(Sh, ScenarioStatus::WorkerCrash, Buf);
      return;
    }
    ScenarioOutcome O;
    O.MakespanSeconds = W.Makespan;
    O.Retransmissions = W.Retrans;
    O.Crashes = W.Crashes;
    O.Rollbacks = W.Rollbacks;
    O.ResultHash = W.Hash;
    switch (W.Status) {
    case ChildOk:
      O.Status = ScenarioStatus::Ok;
      break;
    case ChildMismatch:
      O.Status = ScenarioStatus::Mismatch;
      break;
    case ChildTransportExhausted:
      O.Status = ScenarioStatus::TransportExhausted;
      O.LastFailure = W.Error;
      break;
    default:
      O.Status = ScenarioStatus::Deadlock;
      O.LastFailure = W.Error;
      break;
    }
    Finish(Sh, std::move(O));
  };

  while (Remaining) {
    bool Progress = false;
    for (Shard &Sh : Shards) {
      if (Sh.Pid < 0) {
        if (!Sh.HasCur) {
          if (Sh.Queue.empty())
            continue;
          Sh.Cur = Sh.Queue.front();
          Sh.Queue.pop_front();
          Sh.HasCur = true;
          Sh.Attempt = 0;
          Sh.NextSpawn = Clock::now();
          // Journal the take-up: a kill between here and the verdict
          // leaves a started-but-unverdicted record, which resume
          // re-queues.
          stable::ByteWriter W;
          W.u32(Matrix[Sh.Cur].Index);
          (void)JournalAppend(JrnlStartType, W);
        }
        if (Clock::now() >= Sh.NextSpawn) {
          Spawn(Sh);
          Progress = true;
        }
        continue;
      }
      int WaitStatus = 0;
      pid_t Got = waitpid(Sh.Pid, &WaitStatus, WNOHANG);
      if (Got == Sh.Pid) {
        Classify(Sh, WaitStatus, /*Timedout=*/false);
        Progress = true;
      } else if (Got == 0 && Clock::now() > Sh.Deadline) {
        kill(Sh.Pid, SIGKILL);
        waitpid(Sh.Pid, &WaitStatus, 0);
        Classify(Sh, WaitStatus, /*Timedout=*/true);
        Progress = true;
      }
    }
    if (!Rep.Error.empty()) {
      // A journal append failed: the durability contract is broken, so
      // stop the sweep instead of running on without it. Reap every
      // outstanding child first.
      for (Shard &Sh : Shards)
        if (Sh.Pid > 0) {
          kill(Sh.Pid, SIGKILL);
          int WS = 0;
          waitpid(Sh.Pid, &WS, 0);
          if (Sh.Fd >= 0)
            close(Sh.Fd);
          Sh.Pid = -1;
          Sh.Fd = -1;
        }
      break;
    }
    if (!Progress && Remaining) {
      struct timespec TS = {0, 2 * 1000 * 1000}; // 2 ms sweep
      nanosleep(&TS, nullptr);
    }
  }

  Rep.ElapsedSeconds = secondsSince(T0);
  return Rep;
}
